package partition

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/runner"
	"repro/internal/tensor"
)

// cancelChain builds an n-layer conv chain whose shapes stay constant,
// so brute-force enumeration cost scales only with the code space.
func cancelChain(n int) *nn.Model {
	m := &nn.Model{Name: fmt.Sprintf("cancel-chain-%d", n), Input: nn.Input{H: 4, W: 4, C: 2}}
	for i := 0; i < n; i++ {
		m.Layers = append(m.Layers, nn.Layer{
			Name: fmt.Sprintf("c%d", i), Type: nn.Conv, K: 3, Pad: 1, Cout: 2, Act: nn.ReLU,
		})
	}
	return m
}

// cancelFork builds a DAG with branches parallel paths between one
// producer and one join — frontier width grows with branches, and the
// non-chain shape forces the frontier DP (with its per-layer ctx
// checks).
func cancelFork(branches int) *nn.Model {
	m := &nn.Model{Name: fmt.Sprintf("cancel-fork-%d", branches), Input: nn.Input{H: 4, W: 4, C: 2}}
	m.Layers = append(m.Layers, nn.Layer{Name: "a", Type: nn.Conv, K: 3, Pad: 1, Cout: 2, Act: nn.ReLU})
	var ins []string
	for i := 0; i < branches; i++ {
		name := fmt.Sprintf("b%d", i)
		m.Layers = append(m.Layers, nn.Layer{
			Name: name, Type: nn.Conv, K: 3, Pad: 1, Cout: 2, Act: nn.ReLU, Inputs: []string{"a"},
		})
		ins = append(ins, name)
	}
	m.Layers = append(m.Layers, nn.Layer{Name: "join", Type: nn.FC, Cout: 4, Inputs: ins})
	return m
}

// canceledCtx returns an already-canceled context.
func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestPreCanceledContextRefusesWork(t *testing.T) {
	ctx := canceledCtx()
	pool := runner.Serial()
	chain := cancelChain(6)
	fork := cancelFork(3)

	if _, err := BruteForceCtx(ctx, pool, chain, 2, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("BruteForceCtx = %v, want context.Canceled", err)
	}
	if _, err := HierarchicalCtx(ctx, fork, 2, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("HierarchicalCtx = %v, want context.Canceled", err)
	}
	base := []Assignment{Uniform(len(chain.Layers), comm.DP)}
	free := []FreeVar{{Level: 0, Layer: 0}, {Level: 0, Layer: 1}}
	if _, err := ExploreCtx(ctx, pool, chain, 2, base, free); !errors.Is(err, context.Canceled) {
		t.Errorf("ExploreCtx = %v, want context.Canceled", err)
	}

	shapes, err := fork.Shapes(2)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := fork.LayerPreds()
	if err != nil {
		t.Fatal(err)
	}
	var sh tensor.Shard
	amounts := make([]comm.LayerAmounts, len(shapes))
	for l := range shapes {
		amounts[l] = comm.Amounts(shapes[l], sh)
	}
	if _, _, err := TwoWayGraphCtx(ctx, amounts, preds); !errors.Is(err, context.Canceled) {
		t.Errorf("TwoWayGraphCtx = %v, want context.Canceled", err)
	}
}

// TestBruteForceCancelMidSearch cancels a 2^24-assignment enumeration
// shortly after it starts and requires a prompt typed return — the
// deadline/resilience contract the service relies on. Uncanceled, this
// search would run for minutes.
func TestBruteForceCancelMidSearch(t *testing.T) {
	m := cancelChain(12) // 12 layers x 2 levels = 24 bits
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := BruteForceCtx(ctx, runner.Default(), m, 2, 2)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BruteForceCtx = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want well under 5s", elapsed)
	}
}

// TestExploreCancelMidSweep cancels a 2^20-point sweep mid-flight.
func TestExploreCancelMidSweep(t *testing.T) {
	m := cancelChain(20)
	base := []Assignment{Uniform(len(m.Layers), comm.DP)}
	free := make([]FreeVar, 20)
	for i := range free {
		free[i] = FreeVar{Level: 0, Layer: i}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := ExploreCtx(ctx, runner.Default(), m, 2, base, free)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExploreCtx = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want well under 5s", elapsed)
	}
}

func TestFrontierCap(t *testing.T) {
	// The 8-branch fork needs a frontier of 8 open layers: fine under
	// the compiled-in cap, rejected under a configured cap of 4.
	fork := cancelFork(8)
	if _, err := Hierarchical(fork, 2, 1); err != nil {
		t.Fatalf("Hierarchical under default cap: %v", err)
	}

	prev := SetFrontierCap(4)
	defer SetFrontierCap(0)
	if prev != maxGraphFrontier {
		t.Fatalf("SetFrontierCap returned prev %d, want %d", prev, maxGraphFrontier)
	}
	_, err := Hierarchical(fork, 2, 1)
	if !errors.Is(err, ErrTooWide) {
		t.Fatalf("Hierarchical under cap 4 = %v, want ErrTooWide", err)
	}
	if !errors.Is(err, ErrPlan) {
		t.Fatalf("ErrTooWide must wrap ErrPlan; got %v", err)
	}

	// The narrow 2-branch fork stays plannable under the lowered cap.
	if _, err := Hierarchical(cancelFork(2), 2, 1); err != nil {
		t.Fatalf("narrow fork under cap 4: %v", err)
	}

	// Restoring the default re-admits the wide fork.
	SetFrontierCap(0)
	if _, err := Hierarchical(fork, 2, 1); err != nil {
		t.Fatalf("Hierarchical after cap restore: %v", err)
	}
}

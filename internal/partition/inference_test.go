package partition

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestInferenceAlwaysDataParallel validates the paper's §3.3
// observation: "for DNN inference, the best option is Data Parallelism"
// — without gradients, dp's intra-layer cost is zero and dp-dp
// transitions are free, so every layer of every network at every level
// optimizes to dp with zero total communication.
func TestInferenceAlwaysDataParallel(t *testing.T) {
	for _, m := range nn.Zoo() {
		p, err := HierarchicalInference(m, 256, 4)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for h, a := range p.Levels {
			for l, c := range a {
				if c != comm.DP {
					t.Errorf("%s inference level %d layer %d = %v, want dp", m.Name, h, l, c)
				}
			}
		}
		if p.TotalElems != 0 {
			t.Errorf("%s inference communicates %g elements, want 0", m.Name, p.TotalElems)
		}
	}
}

// TestInferenceModelParallelStillCosts: the inference cost model is not
// degenerate — model parallelism still pays for output partial sums,
// and the dp-mp forward conversion still costs while the error term is
// gone.
func TestInferenceModelParallelStillCosts(t *testing.T) {
	m := nn.AlexNet()
	shapes, err := m.Shapes(64)
	if err != nil {
		t.Fatal(err)
	}
	inferenceCosts := UnitWeights().objectiveCosts(ObjectiveInference)
	for l := range shapes {
		a := comm.Amounts(shapes[l], tensor.Shard{})
		if got := inferenceCosts.intra(comm.MP, a); got != a.FOut {
			t.Errorf("layer %d: inference mp intra = %g, want A(F)=%g", l, got, a.FOut)
		}
		if got := inferenceCosts.intra(comm.DP, a); got != 0 {
			t.Errorf("layer %d: inference dp intra = %g, want 0", l, got)
		}
		if got := inferenceCosts.interF(comm.DP, comm.MP, a); got != 0.25*a.FBound {
			t.Errorf("layer %d: inference dp-mp F conversion = %g", l, got)
		}
		if got := inferenceCosts.interE(comm.MP, comm.MP, a); got != 0 {
			t.Errorf("layer %d: inference E conversion = %g, want 0", l, got)
		}
	}
}

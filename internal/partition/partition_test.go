package partition

import (
	"errors"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

const gb = 1024 * 1024 * 1024

func mustHier(t *testing.T, m *nn.Model, batch, levels int) *Plan {
	t.Helper()
	p, err := Hierarchical(m, batch, levels)
	if err != nil {
		t.Fatalf("Hierarchical(%s): %v", m.Name, err)
	}
	return p
}

func mustDP(t *testing.T, m *nn.Model, batch, levels int) *Plan {
	t.Helper()
	p, err := DataParallel(m, batch, levels)
	if err != nil {
		t.Fatalf("DataParallel(%s): %v", m.Name, err)
	}
	return p
}

func mustMP(t *testing.T, m *nn.Model, batch, levels int) *Plan {
	t.Helper()
	p, err := ModelParallel(m, batch, levels)
	if err != nil {
		t.Fatalf("ModelParallel(%s): %v", m.Name, err)
	}
	return p
}

// TestTwoWayOptimal checks Algorithm 1 against exhaustive enumeration of
// all 2^L single-level assignments for every zoo network.
func TestTwoWayOptimal(t *testing.T) {
	for _, m := range nn.Zoo() {
		shapes, err := m.Shapes(64)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		amounts := make([]comm.LayerAmounts, len(shapes))
		for i := range shapes {
			amounts[i] = comm.Amounts(shapes[i], tensor.Shard{})
		}
		got, assign := TwoWay(amounts)
		if len(assign) != len(shapes) {
			t.Fatalf("%s: assignment length %d", m.Name, len(assign))
		}
		if c := AssignmentCost(amounts, assign); math.Abs(c-got) > 1e-6*math.Max(1, got) {
			t.Errorf("%s: TwoWay cost %g but its assignment costs %g", m.Name, got, c)
		}
		nl := len(shapes)
		best := math.Inf(1)
		a := make(Assignment, nl)
		for code := 0; code < 1<<uint(nl); code++ {
			for b := 0; b < nl; b++ {
				if code&(1<<uint(b)) != 0 {
					a[b] = comm.MP
				} else {
					a[b] = comm.DP
				}
			}
			if c := AssignmentCost(amounts, a); c < best {
				best = c
			}
		}
		if math.Abs(best-got) > 1e-6*math.Max(1, best) {
			t.Errorf("%s: TwoWay=%g, brute force=%g", m.Name, got, best)
		}
	}
}

func TestTwoWayEmpty(t *testing.T) {
	c, a := TwoWay(nil)
	if c != 0 || a != nil {
		t.Errorf("TwoWay(nil) = %g, %v", c, a)
	}
}

// TestHierarchicalMatchesEvaluate: replaying the hierarchical plan's own
// assignments through the reference evaluator yields the same totals.
func TestHierarchicalMatchesEvaluate(t *testing.T) {
	for _, m := range nn.Zoo() {
		p := mustHier(t, m, 256, 4)
		q, err := Evaluate(m, 256, p.Levels)
		if err != nil {
			t.Fatalf("%s Evaluate: %v", m.Name, err)
		}
		if math.Abs(p.TotalElems-q.TotalElems) > 1e-6*math.Max(1, p.TotalElems) {
			t.Errorf("%s: Hierarchical=%g Evaluate=%g", m.Name, p.TotalElems, q.TotalElems)
		}
	}
}

// TestHyParBeatsBaselines: the optimized partition never communicates
// more than default Data or Model Parallelism (Figure 8's ordering).
func TestHyParBeatsBaselines(t *testing.T) {
	for _, m := range nn.Zoo() {
		hp := mustHier(t, m, 256, 4)
		dp := mustDP(t, m, 256, 4)
		mp := mustMP(t, m, 256, 4)
		if hp.TotalElems > dp.TotalElems*(1+1e-9) {
			t.Errorf("%s: HyPar %g > DP %g", m.Name, hp.TotalElems, dp.TotalElems)
		}
		if hp.TotalElems > mp.TotalElems*(1+1e-9) {
			t.Errorf("%s: HyPar %g > MP %g", m.Name, hp.TotalElems, mp.TotalElems)
		}
	}
}

// TestDPAnchors pins the Data Parallelism totals the communication model
// reproduces exactly from the paper's Figure 8: SFC 16.9 GB and VGG-A
// 15.9 GB per step at batch 256 with sixteen accelerators.
func TestDPAnchors(t *testing.T) {
	sfc := mustDP(t, nn.SFC(), 256, 4)
	if got := sfc.TotalBytes(tensor.Float32) / gb; got < 15.0 || got > 16.5 {
		// 15·2·140,722,176·4 B = 15.72 GiB ≈ paper's 16.9 GB (decimal).
		t.Errorf("SFC DP total = %.2f GiB, want ≈15.7", got)
	}
	if got := sfc.TotalBytes(tensor.Float32) / 1e9; got < 16.4 || got > 17.4 {
		t.Errorf("SFC DP total = %.2f decimal GB, paper reports 16.9", got)
	}
	vgga := mustDP(t, nn.VGGA(), 256, 4)
	if got := vgga.TotalBytes(tensor.Float32) / 1e9; got < 15.4 || got > 16.5 {
		t.Errorf("VGG-A DP total = %.2f decimal GB, paper reports 15.9", got)
	}
}

// TestSCONVAllDP: Figure 5(b) — the all-convolutional extreme case
// optimizes to data parallelism at every layer and level.
func TestSCONVAllDP(t *testing.T) {
	p := mustHier(t, nn.SCONV(), 256, 4)
	for h, a := range p.Levels {
		for l, c := range a {
			if c != comm.DP {
				t.Errorf("SCONV level %d layer %d = %v, want dp", h, l, c)
			}
		}
	}
	dp := mustDP(t, nn.SCONV(), 256, 4)
	if math.Abs(p.TotalElems-dp.TotalElems) > 1e-6*dp.TotalElems {
		t.Errorf("SCONV HyPar %g != DP %g", p.TotalElems, dp.TotalElems)
	}
}

// TestSFCMostlyMP: Figure 5(a) — the all-fc extreme case prefers model
// parallelism nearly everywhere, and HyPar still beats pure MP.
func TestSFCMostlyMP(t *testing.T) {
	p := mustHier(t, nn.SFC(), 256, 4)
	mpCount := 0
	for _, a := range p.Levels {
		for _, c := range a {
			if c == comm.MP {
				mpCount++
			}
		}
	}
	total := len(p.Levels) * len(p.Levels[0])
	if mpCount < total*3/4 {
		t.Errorf("SFC chose mp for %d/%d cells, expected a large majority", mpCount, total)
	}
	mp := mustMP(t, nn.SFC(), 256, 4)
	if p.TotalElems > mp.TotalElems {
		t.Errorf("SFC HyPar %g > MP %g", p.TotalElems, mp.TotalElems)
	}
}

// TestVGGConvDPFCMP: Figure 5 — in large networks convolutional layers
// optimize to dp and fully-connected layers to mp at the top level.
func TestVGGConvDPFCMP(t *testing.T) {
	m := nn.VGGA()
	p := mustHier(t, m, 256, 4)
	top := p.Levels[0]
	for l, layer := range m.Layers {
		if layer.Type == nn.Conv && top[l] != comm.DP {
			t.Errorf("VGG-A %s @H1 = %v, want dp", layer.Name, top[l])
		}
		if layer.Name == "fc1" || layer.Name == "fc2" {
			if top[l] != comm.MP {
				t.Errorf("VGG-A %s @H1 = %v, want mp", layer.Name, top[l])
			}
		}
	}
}

// TestHierarchicalBruteForceSmall: on a tiny model and shallow
// hierarchy, exhaustive search confirms the greedy level-by-level DP is
// optimal at H=1 and near-optimal at H=2 (the paper itself shows the
// greedy plan can miss the global optimum slightly, Figure 10).
func TestHierarchicalBruteForceSmall(t *testing.T) {
	m := nn.LenetC()
	h1, err := Hierarchical(m, 64, 1)
	if err != nil {
		t.Fatalf("Hierarchical: %v", err)
	}
	b1, err := BruteForce(m, 64, 1)
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if math.Abs(h1.TotalElems-b1.TotalElems) > 1e-6*math.Max(1, b1.TotalElems) {
		t.Errorf("H=1: hierarchical %g != brute force %g", h1.TotalElems, b1.TotalElems)
	}
	h2, err := Hierarchical(m, 64, 2)
	if err != nil {
		t.Fatalf("Hierarchical: %v", err)
	}
	b2, err := BruteForce(m, 64, 2)
	if err != nil {
		t.Fatalf("BruteForce: %v", err)
	}
	if b2.TotalElems > h2.TotalElems*(1+1e-9) {
		t.Errorf("H=2: brute force %g worse than greedy %g", b2.TotalElems, h2.TotalElems)
	}
	if h2.TotalElems > b2.TotalElems*1.25 {
		t.Errorf("H=2: greedy %g is >25%% off optimum %g", h2.TotalElems, b2.TotalElems)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	if _, err := BruteForce(nn.VGGE(), 256, 4); !errors.Is(err, ErrPlan) {
		t.Errorf("oversized brute force accepted: %v", err)
	}
}

func TestOneWeirdTrick(t *testing.T) {
	m := nn.AlexNet()
	p, err := OneWeirdTrick(m, 256, 4)
	if err != nil {
		t.Fatalf("OneWeirdTrick: %v", err)
	}
	for h, a := range p.Levels {
		for l, layer := range m.Layers {
			want := comm.DP
			if layer.Type == nn.FC {
				want = comm.MP
			}
			if a[l] != want {
				t.Errorf("trick level %d %s = %v, want %v", h, layer.Name, a[l], want)
			}
		}
	}
	// HyPar communicates no more than the trick (§6.5.2).
	hp := mustHier(t, m, 256, 4)
	if hp.TotalElems > p.TotalElems*(1+1e-9) {
		t.Errorf("HyPar %g > trick %g", hp.TotalElems, p.TotalElems)
	}
}

func TestEvaluateErrors(t *testing.T) {
	m := nn.LenetC()
	if _, err := Evaluate(m, 64, []Assignment{Uniform(3, comm.DP)}); !errors.Is(err, ErrPlan) {
		t.Errorf("wrong-width assignment accepted: %v", err)
	}
	if _, err := Hierarchical(m, 64, -1); !errors.Is(err, ErrPlan) {
		t.Errorf("negative depth accepted: %v", err)
	}
	if _, err := Hierarchical(m, 64, 30); !errors.Is(err, ErrPlan) {
		t.Errorf("absurd depth accepted: %v", err)
	}
	if _, err := Hierarchical(m, 0, 2); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestPlanAccessors(t *testing.T) {
	p := mustHier(t, nn.LenetC(), 64, 4)
	if p.NumLevels() != 4 || p.NumAccelerators() != 16 {
		t.Errorf("levels=%d accs=%d", p.NumLevels(), p.NumAccelerators())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if s := p.LayerString(0); len(s) != 4 {
		t.Errorf("LayerString = %q", s)
	}
	if s := p.Levels[0].String(); len(s) != 4 {
		t.Errorf("Assignment.String = %q", s)
	}
	if got := p.At(0, 0); got != p.Levels[0][0] {
		t.Errorf("At(0,0) = %v", got)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); !errors.Is(err, ErrPlan) {
		t.Errorf("nil plan accepted: %v", err)
	}
	bad := &Plan{Levels: []Assignment{Uniform(2, comm.DP), Uniform(3, comm.DP)}}
	if err := bad.Validate(); !errors.Is(err, ErrPlan) {
		t.Errorf("ragged plan accepted: %v", err)
	}
	bad2 := &Plan{Levels: []Assignment{{comm.Parallelism(9)}}}
	if err := bad2.Validate(); !errors.Is(err, ErrPlan) {
		t.Errorf("invalid parallelism accepted: %v", err)
	}
}

func TestExplore(t *testing.T) {
	m := nn.LenetC()
	hp := mustHier(t, m, 256, 4)
	free := []FreeVar{{Level: 0, Layer: 0}, {Level: 0, Layer: 1}}
	points, err := Explore(m, 256, hp.Levels, free)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("explore points = %d, want 4", len(points))
	}
	// The point whose bits match HyPar's own choices must cost the same.
	var hpCode int
	for i, fv := range free {
		if hp.Levels[fv.Level][fv.Layer] == comm.MP {
			hpCode |= 1 << uint(i)
		}
	}
	found := false
	for _, pt := range points {
		if pt.Code == hpCode {
			found = true
			if math.Abs(pt.Plan.TotalElems-hp.TotalElems) > 1e-6*hp.TotalElems {
				t.Errorf("explore point %d = %g, HyPar = %g", pt.Code, pt.Plan.TotalElems, hp.TotalElems)
			}
		}
	}
	if !found {
		t.Error("HyPar's own code not in exploration")
	}
	// Error paths.
	if _, err := Explore(m, 256, hp.Levels, []FreeVar{{Level: 9, Layer: 0}}); !errors.Is(err, ErrPlan) {
		t.Errorf("bad level accepted: %v", err)
	}
	if _, err := Explore(m, 256, hp.Levels, []FreeVar{{Level: 0, Layer: 9}}); !errors.Is(err, ErrPlan) {
		t.Errorf("bad layer accepted: %v", err)
	}
	if _, err := Explore(m, 256, hp.Levels, make([]FreeVar, 21)); !errors.Is(err, ErrPlan) {
		t.Errorf("oversized exploration accepted: %v", err)
	}
}

// TestLevelMonotonicity: per-pair volumes never grow as we descend the
// hierarchy — every level halves at least one tensor dimension of every
// layer.
func TestLevelMonotonicity(t *testing.T) {
	for _, m := range nn.Zoo() {
		p := mustHier(t, m, 256, 4)
		prev := math.Inf(1)
		for h := range p.Details {
			pp := p.PerPairElems(h)
			if pp > prev*(1+1e-9) {
				t.Errorf("%s: level %d per-pair %g > level %d per-pair %g",
					m.Name, h, pp, h-1, prev)
			}
			prev = pp
		}
	}
}

package partition

import (
	"context"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/runner"
)

// Weights scales the three communication classes of the training cost
// model, letting an accelerator platform express how expensive each
// class of exchange is relative to raw element counts. The paper's
// HMC + H-tree platform weighs every class identically (UnitWeights);
// other backends charge less for exchanges their fabric or dataflow
// performs natively — a bandwidth-optimal ring allreduce halves the
// per-link gradient volume, an in-array systolic reduction halves the
// partial-sum volume. The weighted amounts are what the dynamic program
// minimizes and what the plan records as its transfer volumes, so the
// DP objective and the simulated schedule stay consistent.
type Weights struct {
	// Grad scales the dp gradient allreduce of ∆W_l (Table 1, dp row).
	Grad float64
	// Psum scales the mp output partial-sum aggregation of F_{l+1}
	// (Table 1, mp row).
	Psum float64
	// Convert scales the Table 2 inter-layer conversions (F and E
	// boundary tensors between differently partitioned layers).
	Convert float64
}

// UnitWeights is the paper's cost model: every class at weight 1.
func UnitWeights() Weights { return Weights{Grad: 1, Psum: 1, Convert: 1} }

// Validate checks that every weight is positive and finite.
func (w Weights) Validate() error {
	for _, v := range []float64{w.Grad, w.Psum, w.Convert} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: cost weight %g", ErrPlan, v)
		}
	}
	return nil
}

// costs builds the Algorithm 1 cost functions scaled by the weights.
func (w Weights) costs() costs {
	return costs{
		intra: func(p comm.Parallelism, a comm.LayerAmounts) float64 {
			switch p {
			case comm.DP:
				return w.Grad * a.DW
			case comm.MP:
				return w.Psum * a.FOut
			default:
				return 0
			}
		},
		interF: func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64 {
			return w.Convert * comm.InterF(prev, cur, a)
		},
		interE: func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64 {
			return w.Convert * comm.InterE(prev, cur, a)
		},
	}
}

// TwoWayWeighted is TwoWay under platform cost weights: the same O(L)
// dynamic program minimizing the weighted objective.
func TwoWayWeighted(amounts []comm.LayerAmounts, w Weights) (float64, Assignment) {
	return twoWayWith(amounts, w.costs())
}

// AssignmentCostWeighted evaluates the weighted Algorithm 1 objective
// for a fixed assignment (the exhaustive reference the per-platform
// conformance oracle compares TwoWayWeighted against).
func AssignmentCostWeighted(amounts []comm.LayerAmounts, a Assignment, w Weights) float64 {
	c := w.costs()
	var total float64
	for i := range amounts {
		total += c.intra(a[i], amounts[i])
		if i > 0 {
			total += c.interF(a[i-1], a[i], amounts[i-1]) + c.interE(a[i-1], a[i], amounts[i-1])
		}
	}
	return total
}

// HierarchicalWeighted is Hierarchical (Algorithm 2) under platform
// cost weights. HierarchicalWeighted(m, b, l, UnitWeights()) is
// identical to Hierarchical(m, b, l).
func HierarchicalWeighted(m *nn.Model, batch, levels int, w Weights) (*Plan, error) {
	return HierarchicalWeightedCtx(nil, m, batch, levels, w)
}

// HierarchicalWeightedCtx is HierarchicalWeighted with cancellation
// (see HierarchicalCtx). A nil ctx never cancels.
func HierarchicalWeightedCtx(ctx context.Context, m *nn.Model, batch, levels int, w Weights) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	ws, err := repeatWeights(w, levels)
	if err != nil {
		return nil, err
	}
	return Solve(Request{Model: m, Batch: batch, Levels: ws, Ctx: ctx})
}

// EvaluateWeighted is Evaluate under platform cost weights: it computes
// the weighted communication volumes of an arbitrary hierarchical
// assignment.
func EvaluateWeighted(m *nn.Model, batch int, levels []Assignment, w Weights) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	shapes, preds, err := prepare(m, batch, len(levels))
	if err != nil {
		return nil, err
	}
	return evaluateShapesWith(m, batch, levels, shapes, EdgesOf(preds), w.costs())
}

// DataParallelWeighted is the Data Parallelism baseline with volumes
// recorded under platform cost weights.
func DataParallelWeighted(m *nn.Model, batch, levels int, w Weights) (*Plan, error) {
	return uniformPlanWeighted(m, batch, levels, comm.DP, w)
}

// ModelParallelWeighted is the Model Parallelism baseline with volumes
// recorded under platform cost weights.
func ModelParallelWeighted(m *nn.Model, batch, levels int, w Weights) (*Plan, error) {
	return uniformPlanWeighted(m, batch, levels, comm.MP, w)
}

// OneWeirdTrickWeighted is Krizhevsky's configuration with volumes
// recorded under platform cost weights.
func OneWeirdTrickWeighted(m *nn.Model, batch, levels int, w Weights) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	a := make(Assignment, len(m.Layers))
	for l, layer := range m.Layers {
		if layer.Type == nn.FC {
			a[l] = comm.MP
		} else {
			a[l] = comm.DP
		}
	}
	assigns := make([]Assignment, levels)
	for h := range assigns {
		assigns[h] = a.Clone()
	}
	return EvaluateWeighted(m, batch, assigns, w)
}

// uniformPlanWeighted builds a uniform plan evaluated under weights.
func uniformPlanWeighted(m *nn.Model, batch, levels int, p comm.Parallelism, w Weights) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	assigns := make([]Assignment, levels)
	for h := range assigns {
		assigns[h] = Uniform(len(m.Layers), p)
	}
	return EvaluateWeighted(m, batch, assigns, w)
}

// BruteForceWeightedWith is BruteForceWith minimizing the weighted
// objective — the exactness reference HierarchicalWeighted is compared
// against in the per-platform conformance suite.
func BruteForceWeightedWith(pool *runner.Pool, m *nn.Model, batch, levels int, w Weights) (*Plan, error) {
	return BruteForceWeightedCtx(nil, pool, m, batch, levels, w)
}

// BruteForceWeightedCtx is BruteForceWeightedWith with cancellation
// (see BruteForceCtx). A nil ctx never cancels.
func BruteForceWeightedCtx(ctx context.Context, pool *runner.Pool, m *nn.Model, batch, levels int, w Weights) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	ws, err := repeatWeights(w, levels)
	if err != nil {
		return nil, err
	}
	return Solve(Request{Model: m, Batch: batch, Levels: ws, Ctx: ctx, Pool: pool, Method: MethodBrute})
}

// levelCosts compiles a per-level weights vector to the per-level cost
// models the search internals consume, validating every entry.
func levelCosts(ws []Weights) ([]costs, error) {
	cs := make([]costs, len(ws))
	for h, w := range ws {
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("level %d: %w", h, err)
		}
		cs[h] = w.costs()
	}
	return cs, nil
}

// HierarchicalPerLevel is Hierarchical (Algorithm 2) under a per-level
// cost model: the level-h run of Algorithm 1 minimizes ws[h] — each cut
// of a heterogeneous array is scored with the communication weights of
// the platform actually serving it. The hierarchy depth is len(ws).
// With every entry identical this is exactly HierarchicalWeighted.
func HierarchicalPerLevel(m *nn.Model, batch int, ws []Weights) (*Plan, error) {
	return HierarchicalPerLevelCtx(nil, m, batch, ws)
}

// HierarchicalPerLevelCtx is HierarchicalPerLevel with cancellation
// (see HierarchicalCtx). A nil ctx never cancels.
func HierarchicalPerLevelCtx(ctx context.Context, m *nn.Model, batch int, ws []Weights) (*Plan, error) {
	return Solve(Request{Model: m, Batch: batch, Levels: ws, Ctx: ctx})
}

// EvaluatePerLevel is Evaluate under a per-level cost model: level h's
// recorded volumes are scored by ws[h]. len(ws) must equal len(levels).
func EvaluatePerLevel(m *nn.Model, batch int, levels []Assignment, ws []Weights) (*Plan, error) {
	cs, err := levelCosts(ws)
	if err != nil {
		return nil, err
	}
	shapes, preds, err := prepare(m, batch, len(levels))
	if err != nil {
		return nil, err
	}
	return evaluateShapesLevelsWith(m, batch, levels, shapes, EdgesOf(preds), cs)
}

// DataParallelPerLevel is the Data Parallelism baseline with volumes
// recorded under a per-level cost model (depth len(ws)).
func DataParallelPerLevel(m *nn.Model, batch int, ws []Weights) (*Plan, error) {
	return uniformPlanPerLevel(m, batch, comm.DP, ws)
}

// ModelParallelPerLevel is the Model Parallelism baseline with volumes
// recorded under a per-level cost model (depth len(ws)).
func ModelParallelPerLevel(m *nn.Model, batch int, ws []Weights) (*Plan, error) {
	return uniformPlanPerLevel(m, batch, comm.MP, ws)
}

// OneWeirdTrickPerLevel is Krizhevsky's configuration with volumes
// recorded under a per-level cost model (depth len(ws)).
func OneWeirdTrickPerLevel(m *nn.Model, batch int, ws []Weights) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	a := make(Assignment, len(m.Layers))
	for l, layer := range m.Layers {
		if layer.Type == nn.FC {
			a[l] = comm.MP
		} else {
			a[l] = comm.DP
		}
	}
	assigns := make([]Assignment, len(ws))
	for h := range assigns {
		assigns[h] = a.Clone()
	}
	return EvaluatePerLevel(m, batch, assigns, ws)
}

// uniformPlanPerLevel builds a uniform plan evaluated under a per-level
// cost model.
func uniformPlanPerLevel(m *nn.Model, batch int, p comm.Parallelism, ws []Weights) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	assigns := make([]Assignment, len(ws))
	for h := range assigns {
		assigns[h] = Uniform(len(m.Layers), p)
	}
	return EvaluatePerLevel(m, batch, assigns, ws)
}

// BruteForcePerLevelWith is the exhaustive search minimizing the
// per-level weighted objective — the exactness reference
// HierarchicalPerLevel is compared against in the mixed-assignment
// conformance suite.
func BruteForcePerLevelWith(pool *runner.Pool, m *nn.Model, batch int, ws []Weights) (*Plan, error) {
	return BruteForcePerLevelCtx(nil, pool, m, batch, ws)
}

// BruteForcePerLevelCtx is BruteForcePerLevelWith with cancellation
// (see BruteForceCtx). A nil ctx never cancels.
func BruteForcePerLevelCtx(ctx context.Context, pool *runner.Pool, m *nn.Model, batch int, ws []Weights) (*Plan, error) {
	return Solve(Request{Model: m, Batch: batch, Levels: ws, Ctx: ctx, Pool: pool, Method: MethodBrute})
}

// ExploreWeightedWith is ExploreWith with every point's volumes
// recorded under platform cost weights.
func ExploreWeightedWith(pool *runner.Pool, m *nn.Model, batch int, base []Assignment, free []FreeVar, w Weights) ([]ExplorePoint, error) {
	return ExploreWeightedCtx(nil, pool, m, batch, base, free, w)
}

// ExploreWeightedCtx is ExploreWeightedWith with cancellation (see
// ExploreCtx). A nil ctx never cancels.
func ExploreWeightedCtx(ctx context.Context, pool *runner.Pool, m *nn.Model, batch int, base []Assignment, free []FreeVar, w Weights) ([]ExplorePoint, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return exploreWith(ctx, pool, m, batch, base, free, w.costs())
}

package partition

import (
	"context"
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/runner"
)

// BruteForce exhaustively enumerates every hierarchical assignment of
// the model's layers over the given number of levels and returns the
// plan with minimum total communication. The search space is
// 2^(levels·L): it exists as the exactness reference for tests and the
// small explorations of §6.3 — Algorithm 1/2 is the practical path.
//
// The enumeration fans out over chunked code ranges on the default
// runner pool; ties on total communication resolve to the lowest code,
// so the result is identical at any pool width (and to the historical
// serial scan).
func BruteForce(m *nn.Model, batch, levels int) (*Plan, error) {
	return BruteForceWith(runner.Default(), m, batch, levels)
}

// BruteForceWith is BruteForce on an explicit pool.
func BruteForceWith(pool *runner.Pool, m *nn.Model, batch, levels int) (*Plan, error) {
	return BruteForceCtx(nil, pool, m, batch, levels)
}

// BruteForceCtx is BruteForceWith with cancellation: the enumeration
// checks ctx every 256 codes inside each chunk (and before dispatching
// each chunk), so even a near-2^24 search returns promptly after the
// context ends. A nil ctx never cancels.
func BruteForceCtx(ctx context.Context, pool *runner.Pool, m *nn.Model, batch, levels int) (*Plan, error) {
	ws, err := repeatWeights(UnitWeights(), levels)
	if err != nil {
		return nil, err
	}
	return Solve(Request{Model: m, Batch: batch, Levels: ws, Ctx: ctx, Pool: pool, Method: MethodBrute})
}

// bruteForceCore is the exhaustive search under a per-level cost model
// (level h scored by cs[h]) — the exactness reference the hierarchical
// search is compared against. fcap is the per-request frontier cap
// (see prepareCap).
func bruteForceCore(ctx context.Context, pool *runner.Pool, m *nn.Model, batch int, cs []costs, fcap int) (*Plan, error) {
	levels := len(cs)
	shapes, preds, err := prepareCap(m, batch, levels, fcap)
	if err != nil {
		return nil, err
	}
	edges := EdgesOf(preds)
	nl := len(shapes)
	bits := levels * nl
	if bits > 24 {
		return nil, fmt.Errorf("%w: brute force over 2^%d assignments", ErrPlan, bits)
	}

	chunks := runner.Chunks(1<<uint(bits), pool.Width(), 0)
	bests, err := runner.MapCtx(ctx, pool, chunks, func(_ int, ck [2]int) (*Plan, error) {
		assigns := make([]Assignment, levels)
		for h := range assigns {
			assigns[h] = make(Assignment, nl)
		}
		var best *Plan
		for code := ck[0]; code < ck[1]; code++ {
			if code&255 == 0 {
				if err := ctxErr(ctx); err != nil {
					return nil, err
				}
			}
			for b := 0; b < bits; b++ {
				p := comm.DP
				if code&(1<<uint(b)) != 0 {
					p = comm.MP
				}
				assigns[b/nl][b%nl] = p
			}
			plan, err := evaluateShapesLevelsWith(m, batch, assigns, shapes, edges, cs)
			if err != nil {
				return nil, err
			}
			if best == nil || plan.TotalElems < best.TotalElems {
				best = plan
			}
		}
		return best, nil
	})
	if err != nil {
		return nil, err
	}
	// Within a chunk the scan ascends by code and the reduce below walks
	// chunks in code order, so the strict < keeps the lowest code among
	// equal-communication plans — identical at any pool width.
	var best *Plan
	for _, b := range bests {
		if b != nil && (best == nil || b.TotalElems < best.TotalElems) {
			best = b
		}
	}
	return best, nil
}

// FreeVar identifies one (hierarchy level, layer) cell whose parallelism
// an exploration enumerates while all other cells stay fixed.
type FreeVar struct {
	Level int
	Layer int
}

// ExplorePoint is one sample of a parallelism-space exploration.
type ExplorePoint struct {
	// Code enumerates the free variables: bit i (LSB first) is the
	// choice of Free[i] (0 = dp, 1 = mp).
	Code int
	Plan *Plan
}

// Explore enumerates all 2^len(free) settings of the free cells on top
// of the base assignment, evaluating each (Figures 9 and 10: the fixed
// cells come from the HyPar-optimized plan, the free cells sweep) on
// the default runner pool.
func Explore(m *nn.Model, batch int, base []Assignment, free []FreeVar) ([]ExplorePoint, error) {
	return ExploreWith(runner.Default(), m, batch, base, free)
}

// ExploreWith is Explore on an explicit pool. Points come back indexed
// by code, so the result is independent of the pool width the
// enumeration ran at.
func ExploreWith(pool *runner.Pool, m *nn.Model, batch int, base []Assignment, free []FreeVar) ([]ExplorePoint, error) {
	return exploreWith(nil, pool, m, batch, base, free, trainingCosts)
}

// ExploreCtx is ExploreWith with cancellation: the sweep checks ctx
// every 256 codes inside each chunk, so a large exploration returns
// promptly after the context ends. A nil ctx never cancels.
func ExploreCtx(ctx context.Context, pool *runner.Pool, m *nn.Model, batch int, base []Assignment, free []FreeVar) ([]ExplorePoint, error) {
	return exploreWith(ctx, pool, m, batch, base, free, trainingCosts)
}

// exploreWith is ExploreWith under an arbitrary cost model.
func exploreWith(ctx context.Context, pool *runner.Pool, m *nn.Model, batch int, base []Assignment, free []FreeVar, c costs) ([]ExplorePoint, error) {
	if len(free) > 20 {
		return nil, fmt.Errorf("%w: exploring 2^%d points", ErrPlan, len(free))
	}
	for _, fv := range free {
		if fv.Level < 0 || fv.Level >= len(base) {
			return nil, fmt.Errorf("%w: free variable level %d out of range", ErrPlan, fv.Level)
		}
		if fv.Layer < 0 || fv.Layer >= len(base[fv.Level]) {
			return nil, fmt.Errorf("%w: free variable layer %d out of range", ErrPlan, fv.Layer)
		}
	}
	shapes, preds, err := prepare(m, batch, len(base))
	if err != nil {
		return nil, err
	}
	edges := EdgesOf(preds)
	cs := repeatCosts(c, len(base))
	n := 1 << uint(len(free))
	points := make([]ExplorePoint, n)
	chunks := runner.Chunks(n, pool.Width(), 0)
	err = runner.ForEach(pool, chunks, func(_ int, ck [2]int) error {
		work := make([]Assignment, len(base))
		for h := range base {
			work[h] = base[h].Clone()
		}
		for code := ck[0]; code < ck[1]; code++ {
			if code&255 == 0 {
				if err := ctxErr(ctx); err != nil {
					return err
				}
			}
			for i, fv := range free {
				p := comm.DP
				if code&(1<<uint(i)) != 0 {
					p = comm.MP
				}
				work[fv.Level][fv.Layer] = p
			}
			plan, err := evaluateShapesLevelsWith(m, batch, work, shapes, edges, cs)
			if err != nil {
				return err
			}
			points[code] = ExplorePoint{Code: code, Plan: plan}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

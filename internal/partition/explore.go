package partition

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
)

// BruteForce exhaustively enumerates every hierarchical assignment of
// the model's layers over the given number of levels and returns the
// plan with minimum total communication. The search space is
// 2^(levels·L): it exists as the exactness reference for tests and the
// small explorations of §6.3 — Algorithm 1/2 is the practical path.
func BruteForce(m *nn.Model, batch, levels int) (*Plan, error) {
	shapes, err := prepare(m, batch, levels)
	if err != nil {
		return nil, err
	}
	nl := len(shapes)
	bits := levels * nl
	if bits > 24 {
		return nil, fmt.Errorf("%w: brute force over 2^%d assignments", ErrPlan, bits)
	}

	var best *Plan
	assigns := make([]Assignment, levels)
	for h := range assigns {
		assigns[h] = make(Assignment, nl)
	}
	for code := 0; code < 1<<uint(bits); code++ {
		for b := 0; b < bits; b++ {
			p := comm.DP
			if code&(1<<uint(b)) != 0 {
				p = comm.MP
			}
			assigns[b/nl][b%nl] = p
		}
		plan, err := Evaluate(m, batch, assigns)
		if err != nil {
			return nil, err
		}
		if best == nil || plan.TotalElems < best.TotalElems {
			best = plan
		}
	}
	return best, nil
}

// FreeVar identifies one (hierarchy level, layer) cell whose parallelism
// an exploration enumerates while all other cells stay fixed.
type FreeVar struct {
	Level int
	Layer int
}

// ExplorePoint is one sample of a parallelism-space exploration.
type ExplorePoint struct {
	// Code enumerates the free variables: bit i (LSB first) is the
	// choice of Free[i] (0 = dp, 1 = mp).
	Code int
	Plan *Plan
}

// Explore enumerates all 2^len(free) settings of the free cells on top
// of the base assignment, evaluating each (Figures 9 and 10: the fixed
// cells come from the HyPar-optimized plan, the free cells sweep).
func Explore(m *nn.Model, batch int, base []Assignment, free []FreeVar) ([]ExplorePoint, error) {
	if len(free) > 20 {
		return nil, fmt.Errorf("%w: exploring 2^%d points", ErrPlan, len(free))
	}
	for _, fv := range free {
		if fv.Level < 0 || fv.Level >= len(base) {
			return nil, fmt.Errorf("%w: free variable level %d out of range", ErrPlan, fv.Level)
		}
		if fv.Layer < 0 || fv.Layer >= len(base[fv.Level]) {
			return nil, fmt.Errorf("%w: free variable layer %d out of range", ErrPlan, fv.Layer)
		}
	}
	work := make([]Assignment, len(base))
	for h := range base {
		work[h] = base[h].Clone()
	}
	points := make([]ExplorePoint, 0, 1<<uint(len(free)))
	for code := 0; code < 1<<uint(len(free)); code++ {
		for i, fv := range free {
			p := comm.DP
			if code&(1<<uint(i)) != 0 {
				p = comm.MP
			}
			work[fv.Level][fv.Layer] = p
		}
		plan, err := Evaluate(m, batch, work)
		if err != nil {
			return nil, err
		}
		points = append(points, ExplorePoint{Code: code, Plan: plan})
	}
	return points, nil
}

package partition

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// beamGapBound is the pinned worst-case optimality gap of the
// default-width beam on the 250-DAG oracle set (relative to the exact
// frontier DP's minimum). TestBeamGapOnOracleDAGs fails if a regression
// pushes the beam past it.
const beamGapBound = 0.05

// oracleAmounts computes the unsharded per-layer amounts the oracle
// suite scores single-level searches on.
func oracleAmounts(t *testing.T, m *nn.Model, batch int) ([]comm.LayerAmounts, [][]int) {
	t.Helper()
	preds, err := m.LayerPreds()
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := m.Shapes(batch)
	if err != nil {
		t.Fatal(err)
	}
	amounts := make([]comm.LayerAmounts, len(shapes))
	var sh tensor.Shard
	for l := range shapes {
		amounts[l] = comm.Amounts(shapes[l], sh)
	}
	return amounts, preds
}

// TestBeamExactOnChains: chains dispatch to the exact O(L) recurrence,
// so the beam's gap is structurally zero on every chain model — cost
// and assignment both.
func TestBeamExactOnChains(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	models := []*nn.Model{nn.AlexNet(), cancelChain(9)}
	for trial := 0; trial < 25; trial++ {
		models = append(models, oracleRandomModel(r, 4000+trial))
	}
	for _, m := range models {
		amounts, preds := oracleAmounts(t, m, 16)
		wantCost, wantA := TwoWay(amounts)
		gotCost, gotA, err := beamTwoWayWith(nil, amounts, preds, trainingCosts, 1)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if gotCost != wantCost || !reflect.DeepEqual(gotA, wantA) {
			t.Errorf("%s: beam (cost %g) != chain DP (cost %g)", m.Name, gotCost, wantCost)
		}
	}
}

// TestBeamGapOnOracleDAGs runs the beam over the same 250 random DAGs
// the exact DP's exhaustive oracle uses: the default width's gap stays
// within the pinned bound, a frontier-covering width is exactly
// optimal, and every reported cost equals its assignment's true cost.
func TestBeamGapOnOracleDAGs(t *testing.T) {
	r := rand.New(rand.NewSource(7)) // same seed as the exhaustive oracle
	worst := 0.0
	for trial := 0; trial < 250; trial++ {
		m := oracleRandomDAG(r, trial)
		batch := 1 << uint(r.Intn(4))
		amounts, preds := oracleAmounts(t, m, batch)

		exact, _, err := TwoWayGraph(amounts, preds)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, m.Name, err)
		}

		got, assign, err := beamTwoWayWith(nil, amounts, preds, trainingCosts, DefaultBeamWidth)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, m.Name, err)
		}
		if ac := AssignmentCostGraph(amounts, preds, assign); !almostEq(ac, got) {
			t.Errorf("trial %d (%s): beam assignment costs %g, beam claims %g", trial, m.Name, ac, got)
		}
		if got < exact && !almostEq(got, exact) {
			t.Errorf("trial %d (%s): beam %g beat the exact DP %g — impossible", trial, m.Name, got, exact)
		}
		if exact > 0 {
			if gap := (got - exact) / exact; gap > worst {
				worst = gap
			}
		}

		// A width covering every distinct frontier state makes the beam
		// the exact DP with a different tiebreak: costs must agree.
		wide, _, err := beamTwoWayWith(nil, amounts, preds, trainingCosts, 1<<uint(frontierWidth(preds)))
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, m.Name, err)
		}
		if !almostEq(wide, exact) {
			t.Errorf("trial %d (%s): frontier-covering beam %g != exact %g", trial, m.Name, wide, exact)
		}
	}
	t.Logf("worst default-width beam gap over 250 DAGs: %.4f%%", 100*worst)
	if worst > beamGapBound {
		t.Errorf("worst beam gap %.4f exceeds pinned bound %.4f", worst, beamGapBound)
	}
}

// TestBeamSolvesWideDAG is the acceptance pin for the beam's purpose:
// a frontier-width-18 DAG the exact DP refuses under the default cap
// (maxGraphFrontier = 16) plans fine under Method beam, at every level
// of the hierarchy.
func TestBeamSolvesWideDAG(t *testing.T) {
	wide := cancelFork(18)
	preds, err := wide.LayerPreds()
	if err != nil {
		t.Fatal(err)
	}
	if w := FrontierWidth(preds); w < 16 {
		t.Fatalf("fork frontier = %d, want >= 16", w)
	}
	unit := []Weights{UnitWeights(), UnitWeights()}
	if _, err := Solve(Request{Model: wide, Batch: 8, Levels: unit}); !errors.Is(err, ErrTooWide) {
		t.Fatalf("exact solve = %v, want ErrTooWide", err)
	}
	plan, err := Solve(Request{Model: wide, Batch: 8, Levels: unit, Method: MethodBeam})
	if err != nil {
		t.Fatalf("beam solve: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.NumLevels() != 2 || plan.TotalElems <= 0 {
		t.Fatalf("beam plan: levels %d, total %g", plan.NumLevels(), plan.TotalElems)
	}

	// Determinism: same request, same plan, bit for bit.
	again, err := Solve(Request{Model: wide, Batch: 8, Levels: unit, Method: MethodBeam})
	if err != nil {
		t.Fatal(err)
	}
	if !plansAgree(plan, again) {
		t.Error("beam solve is not deterministic")
	}

	// The beam stays cancelable even where the exact DP never ran.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(Request{Model: wide, Batch: 8, Levels: unit, Method: MethodBeam, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled beam solve = %v, want context.Canceled", err)
	}
}

// TestBeamWidthOrdering: widening the beam never worsens the objective
// (the kept set at width w is a subset of the kept set at width w+k).
func TestBeamWidthOrdering(t *testing.T) {
	m := cancelFork(6)
	amounts, preds := oracleAmounts(t, m, 16)
	prev := 0.0
	for i, width := range []int{1, 2, 8, 64} {
		cost, _, err := beamTwoWayWith(nil, amounts, preds, trainingCosts, width)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && cost > prev {
			t.Errorf("width %d cost %g worse than narrower beam %g", width, cost, prev)
		}
		prev = cost
	}
	exact, _, err := TwoWayGraph(amounts, preds)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(prev, exact) {
		t.Errorf("width-64 beam %g != exact %g on a width-6 fork", prev, exact)
	}
}

package partition

import (
	"context"
	"sort"

	"repro/internal/comm"
)

// beamState is one candidate partial assignment of the beam search:
// the choices of every processed layer plus the accumulated objective.
// Unlike the exact DP, states keep their full assignment prefix, so no
// traceback pass is needed and the frontier never has to fit a machine
// word — which is exactly what lets the beam ignore the frontier cap.
type beamState struct {
	assign []comm.Parallelism
	cost   float64
}

// beamTwoWayWith is the bounded-width beam relaxation of the graph
// frontier DP: it processes layers in topological order keeping at most
// width states per step instead of the exact DP's 2^frontier. Chains
// dispatch to the exact O(L) recurrence (the beam is pointless there
// and exactness is free). On branched graphs the beam is exact whenever
// width covers every distinct open-layer assignment (width ≥
// 2^frontier), and a bounded-optimality-gap heuristic beyond that —
// the gap is pinned by the oracle suite.
//
// Determinism: candidate states deduplicate per open-layer key keeping
// the cheapest (ties: lexicographically smaller assignment, dp before
// mp), then sort by (cost, assignment) before truncation. No map
// iteration order leaks into the result.
func beamTwoWayWith(ctx context.Context, amounts []comm.LayerAmounts, preds [][]int, c costs, width int) (float64, Assignment, error) {
	nl := len(amounts)
	if nl == 0 {
		return 0, nil, nil
	}
	if isChain(preds) {
		cost, assign := twoWayWith(amounts, c)
		return cost, assign, nil
	}
	if width < 1 {
		width = 1
	}

	remaining := make([]int, nl) // unprocessed consumers per layer
	for _, ps := range preds {
		for _, u := range ps {
			if u >= 0 {
				remaining[u]++
			}
		}
	}

	states := []beamState{{}}
	open := make([]int, 0, nl) // open layers after the current step, ascending
	for l := 0; l < nl; l++ {
		if err := ctxErr(ctx); err != nil {
			return 0, nil, err
		}
		// Extend every surviving state with both choices for layer l,
		// charging its intra cost plus the conversions on every incoming
		// edge (the producer's choice is in the state's own prefix).
		ext := make([]beamState, 0, 2*len(states))
		for _, st := range states {
			for _, p := range []comm.Parallelism{comm.DP, comm.MP} {
				nc := st.cost + c.intra(p, amounts[l])
				for _, u := range preds[l] {
					if u < 0 {
						continue
					}
					pu := st.assign[u]
					nc += c.interF(pu, p, amounts[u]) + c.interE(pu, p, amounts[u])
				}
				na := make([]comm.Parallelism, l+1)
				copy(na, st.assign)
				na[l] = p
				ext = append(ext, beamState{assign: na, cost: nc})
			}
		}
		dpCells.Add(int64(len(ext)))

		// Close layers whose last consumer is l; only the still-open
		// layers' choices can influence future costs, so states agreeing
		// on them are interchangeable and the cheapest represents all.
		for _, u := range preds[l] {
			if u >= 0 {
				remaining[u]--
			}
		}
		open = open[:0]
		for u := 0; u <= l; u++ {
			if remaining[u] > 0 {
				open = append(open, u)
			}
		}
		keyBuf := make([]byte, len(open))
		bestOf := make(map[string]int, len(ext))
		kept := make([]beamState, 0, len(ext))
		for _, st := range ext {
			for i, u := range open {
				keyBuf[i] = byte(st.assign[u])
			}
			k := string(keyBuf)
			if j, ok := bestOf[k]; ok {
				if st.cost < kept[j].cost || (st.cost == kept[j].cost && lessAssign(st.assign, kept[j].assign)) {
					kept[j] = st
				}
			} else {
				bestOf[k] = len(kept)
				kept = append(kept, st)
			}
		}
		sort.Slice(kept, func(i, j int) bool {
			if kept[i].cost != kept[j].cost {
				return kept[i].cost < kept[j].cost
			}
			return lessAssign(kept[i].assign, kept[j].assign)
		})
		if len(kept) > width {
			kept = kept[:width]
		}
		states = kept
	}

	// Every layer is processed and (with a single sink) closed, so all
	// states share the empty key and the dedup above left exactly the
	// cheapest; the sort puts it first either way.
	best := states[0]
	return best.cost, Assignment(best.assign), nil
}

// lessAssign orders assignments lexicographically by layer with dp
// before mp — the beam's deterministic tiebreak, biased toward data
// parallelism like the exact DP's lowest-key rule.
func lessAssign(a, b []comm.Parallelism) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

package partition

import "repro/internal/comm"

// TwoWay is Algorithm 1: partition between two accelerator groups. It
// takes the per-layer sharded tensor amounts (already reflecting the
// hierarchy levels above this one) and returns the minimum total
// one-direction communication together with the optimal parallelism per
// layer. Time complexity is O(L).
//
// The recurrence (paper §4.1):
//
//	com_dp[l] = min(com_dp[l-1] + inter(dp,dp), com_mp[l-1] + inter(mp,dp)) + intra_dp(l)
//	com_mp[l] = min(com_dp[l-1] + inter(dp,mp), com_mp[l-1] + inter(mp,mp)) + intra_mp(l)
//
// where inter terms are evaluated on the boundary tensors F_l / E_l
// produced by layer l-1.
func TwoWay(amounts []comm.LayerAmounts) (float64, Assignment) {
	return twoWayWith(amounts, trainingCosts)
}

// twoWayWith runs Algorithm 1 under an arbitrary cost model.
func twoWayWith(amounts []comm.LayerAmounts, c costs) (float64, Assignment) {
	l := len(amounts)
	if l == 0 {
		return 0, nil
	}
	inter := func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64 {
		return c.interF(prev, cur, a) + c.interE(prev, cur, a)
	}

	// comDP/comMP hold the best accumulated cost with layer l ending in
	// dp/mp; fromDP records which predecessor achieved it (traceback).
	comDP := make([]float64, l)
	comMP := make([]float64, l)
	dpFromDP := make([]bool, l)
	mpFromDP := make([]bool, l)

	comDP[0] = c.intra(comm.DP, amounts[0])
	comMP[0] = c.intra(comm.MP, amounts[0])

	for i := 1; i < l; i++ {
		bound := amounts[i-1] // F_l and E_l live on the l-1 / l boundary

		viaDP := comDP[i-1] + inter(comm.DP, comm.DP, bound)
		viaMP := comMP[i-1] + inter(comm.MP, comm.DP, bound)
		if viaDP <= viaMP {
			comDP[i] = viaDP
			dpFromDP[i] = true
		} else {
			comDP[i] = viaMP
		}
		comDP[i] += c.intra(comm.DP, amounts[i])

		viaDP = comDP[i-1] + inter(comm.DP, comm.MP, bound)
		viaMP = comMP[i-1] + inter(comm.MP, comm.MP, bound)
		if viaDP <= viaMP {
			comMP[i] = viaDP
			mpFromDP[i] = true
		} else {
			comMP[i] = viaMP
		}
		comMP[i] += c.intra(comm.MP, amounts[i])
	}

	assign := make(Assignment, l)
	var best float64
	if comDP[l-1] <= comMP[l-1] {
		best = comDP[l-1]
		assign[l-1] = comm.DP
	} else {
		best = comMP[l-1]
		assign[l-1] = comm.MP
	}
	for i := l - 1; i > 0; i-- {
		var fromDP bool
		if assign[i] == comm.DP {
			fromDP = dpFromDP[i]
		} else {
			fromDP = mpFromDP[i]
		}
		if fromDP {
			assign[i-1] = comm.DP
		} else {
			assign[i-1] = comm.MP
		}
	}
	return best, assign
}

// AssignmentCost evaluates the Algorithm 1 objective for a fixed
// assignment on the given amounts (used by the brute-force reference
// and the space exploration).
func AssignmentCost(amounts []comm.LayerAmounts, a Assignment) float64 {
	var total float64
	for i := range amounts {
		total += comm.Intra(a[i], amounts[i])
		if i > 0 {
			total += comm.Inter(a[i-1], a[i], amounts[i-1])
		}
	}
	return total
}

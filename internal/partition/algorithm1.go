package partition

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/nn"
)

// TwoWay is Algorithm 1: partition between two accelerator groups. It
// takes the per-layer sharded tensor amounts (already reflecting the
// hierarchy levels above this one) and returns the minimum total
// one-direction communication together with the optimal parallelism per
// layer. Time complexity is O(L).
//
// The recurrence (paper §4.1):
//
//	com_dp[l] = min(com_dp[l-1] + inter(dp,dp), com_mp[l-1] + inter(mp,dp)) + intra_dp(l)
//	com_mp[l] = min(com_dp[l-1] + inter(dp,mp), com_mp[l-1] + inter(mp,mp)) + intra_mp(l)
//
// where inter terms are evaluated on the boundary tensors F_l / E_l
// produced by layer l-1.
func TwoWay(amounts []comm.LayerAmounts) (float64, Assignment) {
	return twoWayWith(amounts, trainingCosts)
}

// twoWayWith runs Algorithm 1 under an arbitrary cost model.
func twoWayWith(amounts []comm.LayerAmounts, c costs) (float64, Assignment) {
	l := len(amounts)
	if l == 0 {
		return 0, nil
	}
	dpCells.Add(int64(2 * l)) // two recurrence cells per layer
	inter := func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64 {
		return c.interF(prev, cur, a) + c.interE(prev, cur, a)
	}

	// comDP/comMP hold the best accumulated cost with layer l ending in
	// dp/mp; fromDP records which predecessor achieved it (traceback).
	comDP := make([]float64, l)
	comMP := make([]float64, l)
	dpFromDP := make([]bool, l)
	mpFromDP := make([]bool, l)

	comDP[0] = c.intra(comm.DP, amounts[0])
	comMP[0] = c.intra(comm.MP, amounts[0])

	for i := 1; i < l; i++ {
		bound := amounts[i-1] // F_l and E_l live on the l-1 / l boundary

		viaDP := comDP[i-1] + inter(comm.DP, comm.DP, bound)
		viaMP := comMP[i-1] + inter(comm.MP, comm.DP, bound)
		if viaDP <= viaMP {
			comDP[i] = viaDP
			dpFromDP[i] = true
		} else {
			comDP[i] = viaMP
		}
		comDP[i] += c.intra(comm.DP, amounts[i])

		viaDP = comDP[i-1] + inter(comm.DP, comm.MP, bound)
		viaMP = comMP[i-1] + inter(comm.MP, comm.MP, bound)
		if viaDP <= viaMP {
			comMP[i] = viaDP
			mpFromDP[i] = true
		} else {
			comMP[i] = viaMP
		}
		comMP[i] += c.intra(comm.MP, amounts[i])
	}

	assign := make(Assignment, l)
	var best float64
	if comDP[l-1] <= comMP[l-1] {
		best = comDP[l-1]
		assign[l-1] = comm.DP
	} else {
		best = comMP[l-1]
		assign[l-1] = comm.MP
	}
	for i := l - 1; i > 0; i-- {
		var fromDP bool
		if assign[i] == comm.DP {
			fromDP = dpFromDP[i]
		} else {
			fromDP = mpFromDP[i]
		}
		if fromDP {
			assign[i-1] = comm.DP
		} else {
			assign[i-1] = comm.MP
		}
	}
	return best, assign
}

// AssignmentCost evaluates the Algorithm 1 objective for a fixed
// assignment on the given amounts (used by the brute-force reference
// and the space exploration).
func AssignmentCost(amounts []comm.LayerAmounts, a Assignment) float64 {
	var total float64
	for i := range amounts {
		total += comm.Intra(a[i], amounts[i])
		if i > 0 {
			total += comm.Inter(a[i-1], a[i], amounts[i-1])
		}
	}
	return total
}

// AssignmentCostGraph evaluates the graph form of the Algorithm 1
// objective: every layer's intra-layer exchange plus, for every
// layer-to-layer edge, the Table 2 conversion on the producer's
// boundary tensors. preds is the model's resolved predecessor list
// (nn.Model.LayerPreds; -1 entries denote the model input and carry no
// cost). For a chain it equals AssignmentCost.
func AssignmentCostGraph(amounts []comm.LayerAmounts, preds [][]int, a Assignment) float64 {
	var total float64
	for i := range amounts {
		total += comm.Intra(a[i], amounts[i])
		for _, u := range preds[i] {
			if u >= 0 {
				total += comm.Inter(a[u], a[i], amounts[u])
			}
		}
	}
	return total
}

// maxGraphFrontier bounds the number of simultaneously open layers the
// graph dynamic program tracks. The state space is 2^frontier per step;
// real branched networks (residual blocks, inception stems) keep the
// frontier at 2-3, so 16 is far above anything sane while still
// bounding the worst case (and keeping the uint32 state keys valid).
const maxGraphFrontier = 16

// ErrTooWide reports a model whose layer graph needs a partition
// frontier wider than the configured cap: the O(L·2^frontier) dynamic
// program would blow up, so the request is rejected up front with a
// typed error. ErrTooWide wraps ErrPlan, so errors.Is matches both.
var ErrTooWide = fmt.Errorf("%w: partition frontier too wide", ErrPlan)

// frontierCap holds the configured frontier-width cap; zero means the
// compiled-in maxGraphFrontier.
var frontierCap atomic.Int32

// FrontierCap returns the effective frontier-width cap the graph
// dynamic program enforces (maxGraphFrontier by default).
func FrontierCap() int {
	if c := frontierCap.Load(); c > 0 {
		return int(c)
	}
	return maxGraphFrontier
}

// SetFrontierCap lowers (or restores) the package-default frontier cap
// and returns the previous effective value, so services can refuse
// expensive DAGs earlier than the compiled-in maxGraphFrontier bound.
// The value is clamped to [1, maxGraphFrontier]; n <= 0 restores the
// default. Safe for concurrent use.
//
// Deprecated: this is process-wide mutable state — two concurrent
// solves wanting different caps race on it. Set Request.FrontierCap
// instead, which scopes the cap to one Solve call; this function
// remains only as the default those requests fall back to.
func SetFrontierCap(n int) int {
	prev := FrontierCap()
	switch {
	case n <= 0:
		frontierCap.Store(0)
	case n > maxGraphFrontier:
		frontierCap.Store(maxGraphFrontier)
	default:
		frontierCap.Store(int32(n))
	}
	return prev
}

// ctxErr reports the context's error, treating a nil context as one
// that never cancels — the hot loops call this at checkpoints.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// isChain reports whether the resolved predecessors describe a plain
// linear chain (layer l consuming exactly layer l-1). One definition
// of "chain" exists — nn.ChainPreds — shared with the trainer gate and
// the canonical encoder.
func isChain(preds [][]int) bool { return nn.ChainPreds(preds) }

// FrontierWidth returns the maximum number of simultaneously open
// layers (produced but not yet fully consumed) over a topological walk
// of the resolved predecessor lists — the width the exact graph DP's
// state space is exponential in, and the quantity Request.FrontierCap
// bounds. Chains have width 1.
func FrontierWidth(preds [][]int) int { return frontierWidth(preds) }

// frontierWidth returns the maximum number of simultaneously open
// layers (produced but not yet fully consumed) over a topological walk
// — the graph DP's state width.
func frontierWidth(preds [][]int) int {
	nl := len(preds)
	remaining := make([]int, nl)
	for _, ps := range preds {
		for _, u := range ps {
			if u >= 0 {
				remaining[u]++
			}
		}
	}
	open, width := 0, 0
	for l := 0; l < nl; l++ {
		for _, u := range preds[l] {
			if u >= 0 {
				remaining[u]--
				if remaining[u] == 0 {
					open--
				}
			}
		}
		if remaining[l] > 0 {
			open++
		}
		if open > width {
			width = open
		}
	}
	return width
}

// TwoWayGraph is TwoWay over a branched layer graph: it returns the
// minimum total one-direction communication and the per-layer optimum
// for one group pair, charging the Table 2 conversions on every
// layer-to-layer edge whose endpoints disagree. Chains dispatch to the
// paper's O(L) recurrence; general DAGs run an exact dynamic program
// over the set of open edges (the "frontier"), O(L · 2^frontier). A
// graph needing a frontier wider than FrontierCap is rejected with
// ErrTooWide rather than silently mis-solved (or left to blow up).
func TwoWayGraph(amounts []comm.LayerAmounts, preds [][]int) (float64, Assignment, error) {
	return TwoWayGraphCtx(nil, amounts, preds)
}

// TwoWayGraphCtx is TwoWayGraph with cancellation: the frontier DP
// checks ctx once per layer step and returns ctx.Err() when the context
// ends. A nil ctx never cancels.
func TwoWayGraphCtx(ctx context.Context, amounts []comm.LayerAmounts, preds [][]int) (float64, Assignment, error) {
	if w, lim := frontierWidth(preds), FrontierCap(); w > lim {
		return 0, nil, fmt.Errorf("%w: graph needs a partition frontier of %d open layers (max %d)",
			ErrTooWide, w, lim)
	}
	return twoWayGraphWith(ctx, amounts, preds, trainingCosts)
}

// twoWayGraphWith runs the graph dynamic program under an arbitrary
// cost model; callers must have bounded the frontier width to
// maxGraphFrontier (prepare does, TwoWayGraph does) or the uint32
// state keys overflow. It processes layers in topological order,
// carrying one state per assignment of the currently open layers —
// layers whose outputs a later layer still consumes. Extending a state
// with layer l's choice charges l's intra cost plus the conversion on
// every incoming edge; a layer leaves the frontier when its last
// consumer is processed, minimizing over its bit. Ties keep the more
// data-parallel assignment, deterministically. The context (nil = never
// cancels) is checked once per layer step, so a wide-frontier DP
// returns promptly after cancellation.
func twoWayGraphWith(ctx context.Context, amounts []comm.LayerAmounts, preds [][]int, c costs) (float64, Assignment, error) {
	nl := len(amounts)
	if nl == 0 {
		return 0, nil, nil
	}
	if isChain(preds) {
		cost, assign := twoWayWith(amounts, c)
		return cost, assign, nil
	}

	remaining := make([]int, nl) // unprocessed consumers per layer
	for _, ps := range preds {
		for _, u := range ps {
			if u >= 0 {
				remaining[u]++
			}
		}
	}

	// step records, per processed layer, the frontier it extended
	// (previous frontier + the layer itself, the layer last) and the
	// winning extended state behind every projected state.
	type step struct {
		midFrontier []int
		pick        map[uint32]uint32
	}
	steps := make([]step, nl)

	frontier := []int{}
	states := map[uint32]float64{0: 0}

	for l := 0; l < nl; l++ {
		if err := ctxErr(ctx); err != nil {
			return 0, nil, err
		}
		pos := make(map[int]int, len(frontier))
		for i, u := range frontier {
			pos[u] = i
		}
		midFrontier := append(append(make([]int, 0, len(frontier)+1), frontier...), l)
		lbit := uint32(1) << uint(len(frontier))

		// Phase A: extend every state with both choices for l. Each
		// (state, choice) yields a distinct extended key — no merging.
		mid := make(map[uint32]float64, 2*len(states))
		for key, cost := range states {
			for _, p := range []comm.Parallelism{comm.DP, comm.MP} {
				nc := cost + c.intra(p, amounts[l])
				for _, u := range preds[l] {
					if u < 0 {
						continue
					}
					pu := comm.DP
					if key&(1<<uint(pos[u])) != 0 {
						pu = comm.MP
					}
					nc += c.interF(pu, p, amounts[u]) + c.interE(pu, p, amounts[u])
				}
				mk := key
				if p == comm.MP {
					mk |= lbit
				}
				mid[mk] = nc
			}
		}
		dpCells.Add(int64(len(mid)))

		// Phase B: close layers whose last consumer was l (and l itself
		// when nothing consumes it — the sink), minimizing over their
		// bits. Extended keys are visited in ascending order so ties
		// resolve to the lowest key (more dp), independent of map order.
		for _, u := range preds[l] {
			if u >= 0 {
				remaining[u]--
			}
		}
		var keepPos []int
		newFrontier := frontier[:0:0]
		for i, u := range midFrontier {
			if remaining[u] > 0 {
				keepPos = append(keepPos, i)
				newFrontier = append(newFrontier, u)
			}
		}
		mks := make([]uint32, 0, len(mid))
		for mk := range mid {
			mks = append(mks, mk)
		}
		sort.Slice(mks, func(i, j int) bool { return mks[i] < mks[j] })
		after := make(map[uint32]float64, len(mid))
		pick := make(map[uint32]uint32, len(mid))
		for _, mk := range mks {
			var ak uint32
			for j, i := range keepPos {
				if mk&(1<<uint(i)) != 0 {
					ak |= 1 << uint(j)
				}
			}
			if old, ok := after[ak]; !ok || mid[mk] < old {
				after[ak] = mid[mk]
				pick[ak] = mk
			}
		}
		steps[l] = step{midFrontier: midFrontier, pick: pick}
		frontier = newFrontier
		states = after
	}

	// A single sink (validated by the model) leaves the final frontier
	// empty — one state, keyed 0. Minimize over final states anyway so
	// hand-built multi-sink graphs still resolve, lowest key on ties.
	finals := make([]uint32, 0, len(states))
	for k := range states {
		finals = append(finals, k)
	}
	sort.Slice(finals, func(i, j int) bool { return finals[i] < finals[j] })
	best, key := states[finals[0]], finals[0]
	for _, k := range finals[1:] {
		if states[k] < best {
			best, key = states[k], k
		}
	}

	// Traceback: walk the steps backward; each winning extended key
	// fixes the choices of every layer open at that step (consistent
	// along the path), and its low bits are the previous state's key.
	assign := make(Assignment, nl)
	for l := nl - 1; l >= 0; l-- {
		mk := steps[l].pick[key]
		for i, u := range steps[l].midFrontier {
			if mk&(1<<uint(i)) != 0 {
				assign[u] = comm.MP
			} else {
				assign[u] = comm.DP
			}
		}
		key = mk &^ (uint32(1) << uint(len(steps[l].midFrontier)-1))
	}
	return best, assign, nil
}

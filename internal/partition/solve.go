package partition

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/runner"
	"repro/internal/tensor"
)

// Method selects the search algorithm a Request runs.
type Method int

const (
	// MethodHierarchical is Algorithm 2: the exact per-level dynamic
	// program (the paper's O(L) recurrence on chains, the O(L·2^frontier)
	// frontier DP on branched graphs). The zero value, and the default.
	MethodHierarchical Method = iota
	// MethodBrute exhaustively enumerates every hierarchical assignment
	// (2^(H·L) plans) — the exactness reference for small models.
	MethodBrute
	// MethodBeam runs a bounded-width beam search over the graph frontier
	// DP: approximate on branched graphs (exact on chains), but immune to
	// frontier-width blowup, so inception/NAS-width graphs the exact DP
	// refuses under its frontier cap still plan in O(L·width) states.
	MethodBeam
)

// ParseMethod parses a search method name. The empty string,
// "hierarchical" and "graph" all select MethodHierarchical (the graph
// frontier DP is how the hierarchical search handles branched models);
// "brute" and "beam" select the other two. Case-insensitive.
func ParseMethod(name string) (Method, error) {
	switch strings.ToLower(name) {
	case "", "hierarchical", "graph":
		return MethodHierarchical, nil
	case "brute":
		return MethodBrute, nil
	case "beam":
		return MethodBeam, nil
	}
	return 0, fmt.Errorf("%w: unknown search method %q (want hierarchical, graph, brute or beam)", ErrPlan, name)
}

// String returns the canonical method name.
func (m Method) String() string {
	switch m {
	case MethodHierarchical:
		return "hierarchical"
	case MethodBrute:
		return "brute"
	case MethodBeam:
		return "beam"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Objective selects the cost model a Request minimizes.
type Objective int

const (
	// ObjectiveTraining is the paper's full model (Tables 1-2): gradient
	// allreduce, partial-sum aggregation, and F/E boundary conversions.
	// The zero value, and the default.
	ObjectiveTraining Objective = iota
	// ObjectiveInference drops everything gradients and errors cause: dp
	// incurs no intra-layer exchange (there is no ∆W) and no E tensors
	// flow backward. Only mp's output partial sums and the forward F
	// conversions remain — which is why §3.3 observes that inference
	// always optimizes to pure Data Parallelism (both of its cost
	// sources are zero).
	ObjectiveInference
)

// DefaultBeamWidth is the beam width a Request with Method beam and a
// zero BeamWidth gets. 64 states per layer keeps the beam exact on
// every graph whose frontier never exceeds 6 open layers while bounding
// the worst case linearly.
const DefaultBeamWidth = 64

// Request describes one partition search. The zero value of every
// optional field selects the historical default, so wrapping an
// existing call site is mechanical: only Model, Batch and Levels are
// required.
type Request struct {
	// Model is the network to partition.
	Model *nn.Model
	// Batch is the global mini-batch size shapes are inferred at.
	Batch int
	// Levels carries one communication-weight set per hierarchy level;
	// its length is the hierarchy depth H (the array has 2^H
	// accelerators). A homogeneous array repeats one entry; a
	// heterogeneous array scores each cut with the platform serving it.
	Levels []Weights
	// Ctx cancels the search between hierarchy levels and inside the
	// per-level DP (and every 256 codes of a brute-force scan). A nil
	// Ctx never cancels.
	Ctx context.Context
	// Pool runs the brute-force enumeration; nil uses runner.Default().
	// The other methods are single-threaded and ignore it.
	Pool *runner.Pool
	// Method selects the search algorithm (default MethodHierarchical).
	Method Method
	// Objective selects the cost model (default ObjectiveTraining).
	Objective Objective
	// FrontierCap caps the graph-DP frontier width for this request
	// only: 0 means the package default (see SetFrontierCap), positive
	// values are clamped to the compiled-in maximum. Unlike the
	// deprecated package global, concurrent requests with different caps
	// do not race. MethodBeam ignores the cap — evading it is the point.
	FrontierCap int
	// BeamWidth bounds the number of states the beam search keeps per
	// layer (MethodBeam only; 0 means DefaultBeamWidth).
	BeamWidth int
	// Warm seeds the search with a previous solve's plan: any hierarchy
	// level whose inputs (method, objective, weights, sharded tensor
	// amounts, layer graph) fingerprint identically to the warm plan's
	// reuses its assignment and skips the per-level DP entirely. A sweep
	// that mutates one dimension re-relaxes only the levels it actually
	// affects; reuse is byte-identical because the DP is a deterministic
	// function of the fingerprinted inputs. Plans not produced by Solve
	// (or produced by MethodBrute) carry no fingerprints and warm
	// nothing. Nil means a cold solve.
	Warm *Plan
}

// Solve runs one partition search described by a Request. It is the
// single core every exported search variant of this package delegates
// to; new search features land here instead of fanning out across the
// historical plain × Ctx × Weighted × PerLevel × With matrix.
func Solve(req Request) (*Plan, error) {
	if req.Model == nil {
		return nil, fmt.Errorf("%w: nil model", ErrPlan)
	}
	if req.FrontierCap < 0 {
		return nil, fmt.Errorf("%w: negative frontier cap %d", ErrPlan, req.FrontierCap)
	}
	if req.BeamWidth < 0 {
		return nil, fmt.Errorf("%w: negative beam width %d", ErrPlan, req.BeamWidth)
	}
	switch req.Objective {
	case ObjectiveTraining, ObjectiveInference:
	default:
		return nil, fmt.Errorf("%w: unknown objective %d", ErrPlan, int(req.Objective))
	}
	cs := make([]costs, len(req.Levels))
	for h, w := range req.Levels {
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("level %d: %w", h, err)
		}
		cs[h] = w.objectiveCosts(req.Objective)
	}
	switch req.Method {
	case MethodHierarchical, MethodBeam:
		width := 0
		if req.Method == MethodBeam {
			width = req.BeamWidth
			if width == 0 {
				width = DefaultBeamWidth
			}
		}
		seeds := make([]uint64, len(req.Levels))
		for h, w := range req.Levels {
			seeds[h] = levelSeed(req.Method, width, req.Objective, w)
		}
		return hierarchicalCore(req.Ctx, req.Model, req.Batch, cs, coreOpts{
			method:      req.Method,
			beamWidth:   width,
			frontierCap: req.FrontierCap,
			warm:        req.Warm,
			seeds:       seeds,
		})
	case MethodBrute:
		pool := req.Pool
		if pool == nil {
			pool = runner.Default()
		}
		return bruteForceCore(req.Ctx, pool, req.Model, req.Batch, cs, req.FrontierCap)
	}
	return nil, fmt.Errorf("%w: unknown search method %d", ErrPlan, int(req.Method))
}

// dpCells counts dynamic-program cells evaluated package-wide: one per
// (layer, choice) of the chain recurrence, one per extended state of
// the graph frontier DP, one per extended beam state. The counter is
// the observability hook warm-start tests use to prove an incremental
// re-plan really skipped work.
var dpCells atomic.Int64

// DPCells returns the cumulative number of DP cells evaluated by this
// package since process start. Monotone; read deltas around a solve to
// measure its search effort. Safe for concurrent use.
func DPCells() int64 { return dpCells.Load() }

// coreOpts carries the optional knobs of hierarchicalCore. The zero
// value reproduces the historical exact hierarchical search.
type coreOpts struct {
	method      Method
	beamWidth   int
	frontierCap int
	warm        *Plan
	seeds       []uint64 // per-level fingerprint seeds; nil disables warm bookkeeping
}

// capUnlimited disables the frontier-width check (beam search only).
const capUnlimited = -1

// hierarchicalCore is Algorithm 2 over an arbitrary per-level cost
// model with the optional Solve extensions: per-request frontier caps,
// beam search, and warm-start level reuse. With zero opts it is the
// historical exact search, byte for byte.
func hierarchicalCore(ctx context.Context, m *nn.Model, batch int, cs []costs, opt coreOpts) (*Plan, error) {
	levels := len(cs)
	cap := opt.frontierCap
	if opt.method == MethodBeam {
		cap = capUnlimited
	}
	shapes, preds, err := prepareCap(m, batch, levels, cap)
	if err != nil {
		return nil, err
	}
	nl := len(shapes)
	plan := &Plan{Model: m.Name, Batch: batch, Levels: make([]Assignment, 0, levels), Edges: EdgesOf(preds)}
	var pk uint64
	if opt.seeds != nil {
		plan.levelKeys = make([]uint64, levels)
		pk = predsKey(preds)
	}
	shards := make([]tensor.Shard, nl)
	for h := 0; h < levels; h++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		amounts := amountsAt(shapes, shards)
		var key uint64
		if plan.levelKeys != nil {
			key = warmLevelKey(fnvMix(opt.seeds[h], pk), amounts)
			plan.levelKeys[h] = key
		}
		var assign Assignment
		if w := opt.warm; w != nil && key != 0 && h < len(w.levelKeys) && w.levelKeys[h] == key &&
			h < len(w.Levels) && len(w.Levels[h]) == nl {
			// Identical fingerprint means identical DP inputs, and the DP
			// is deterministic: reuse the warm level verbatim.
			assign = w.Levels[h].Clone()
		} else if opt.method == MethodBeam {
			_, assign, err = beamTwoWayWith(ctx, amounts, preds, cs[h], opt.beamWidth)
			if err != nil {
				return nil, err
			}
		} else {
			_, assign, err = twoWayGraphWith(ctx, amounts, preds, cs[h])
			if err != nil {
				return nil, err
			}
		}
		plan.Levels = append(plan.Levels, assign)
		for l := range shards {
			shards[l] = shards[l].Apply(assign[l] == comm.DP)
		}
	}
	fillDetailsLevelsWith(plan, shapes, cs)
	return plan, nil
}

// levelSeed folds everything except the per-level tensor amounts that
// determines a level's DP output — search method, beam width,
// objective, and the level's cost weights — into one warm-start
// fingerprint seed. Never zero (zero disables reuse).
func levelSeed(method Method, beamWidth int, obj Objective, w Weights) uint64 {
	h := fnvOffset
	h = fnvMix(h, uint64(method))
	h = fnvMix(h, uint64(beamWidth))
	h = fnvMix(h, uint64(obj))
	h = fnvMix(h, math.Float64bits(w.Grad))
	h = fnvMix(h, math.Float64bits(w.Psum))
	h = fnvMix(h, math.Float64bits(w.Convert))
	if h == 0 {
		h = 1
	}
	return h
}

// warmLevelKey extends a level seed with the remaining DP inputs: the
// sharded per-pair tensor amounts of every layer (which already encode
// batch size, shapes, and the assignment history of the levels above).
// The layer graph rides in via the predsKey folded into the seed. Two
// levels with equal keys run the exact same deterministic DP. Never
// zero.
func warmLevelKey(seed uint64, amounts []comm.LayerAmounts) uint64 {
	h := seed
	h = fnvMix(h, uint64(len(amounts)))
	for _, a := range amounts {
		h = fnvMix(h, math.Float64bits(a.DW))
		h = fnvMix(h, math.Float64bits(a.FOut))
		h = fnvMix(h, math.Float64bits(a.FBound))
		h = fnvMix(h, math.Float64bits(a.EBound))
	}
	if h == 0 {
		h = 1
	}
	return h
}

// predsKey digests the layer graph. It is identical at every hierarchy
// level of one solve, so hierarchicalCore computes it once outside the
// level loop and folds it into each level's seed.
func predsKey(preds [][]int) uint64 {
	h := fnvOffset
	h = fnvMix(h, uint64(len(preds)))
	for _, ps := range preds {
		h = fnvMix(h, uint64(len(ps)))
		for _, u := range ps {
			h = fnvMix(h, uint64(int64(u)))
		}
	}
	return h
}

// fnvMix folds one 64-bit word into the fingerprint with the FNV-1a
// constants, word-at-a-time: one xor and one multiply per value keeps
// the fingerprinting cost invisible next to the DP it guards. The keys
// are process-internal and never persisted, so byte-exact FNV framing
// is not required — only determinism and dispersion.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	return h
}

// repeatWeights expands one weight set to a per-level vector after the
// depth checks the pre-Solve entry points performed, preserving their
// error messages exactly.
func repeatWeights(w Weights, levels int) ([]Weights, error) {
	if levels < 0 {
		return nil, fmt.Errorf("%w: negative hierarchy depth %d", ErrPlan, levels)
	}
	if levels > 20 {
		return nil, fmt.Errorf("%w: hierarchy depth %d (2^%d accelerators) is unreasonable",
			ErrPlan, levels, levels)
	}
	ws := make([]Weights, levels)
	for h := range ws {
		ws[h] = w
	}
	return ws, nil
}

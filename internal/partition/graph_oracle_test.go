package partition

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/runner"
	"repro/internal/tensor"
)

// oracleRandomDAG builds a random valid branched model: conv layers use
// k=3/pad=1 with no pooling so every conv feature map shares the input's
// spatial extent (channel concat and residual add stay legal by
// construction), fc layers flatten anything. Dangling producers are
// swept into a final fc sink so the single-sink rule holds.
func oracleRandomDAG(r *rand.Rand, id int) *nn.Model {
	edge := 3 + r.Intn(5) // 3..7
	m := &nn.Model{
		Name:  fmt.Sprintf("dag-%d", id),
		Input: nn.Input{H: edge, W: edge, C: 1 + r.Intn(3)},
	}
	type prod struct {
		name string
		conv bool // conv output (spatial) vs fc output (flat)
		ch   int  // channels (conv) or neurons (fc)
	}
	// The model input is a spatial producer like a conv output.
	prods := []prod{{name: nn.InputName, conv: true, ch: m.Input.C}}
	n := 2 + r.Intn(5) // 2..6 random layers before the sink
	for i := 0; i < n; i++ {
		isConv := r.Intn(3) > 0 // conv-biased mix
		// Convolutions cannot consume flattened fc outputs.
		var cands []prod
		for _, p := range prods {
			if !isConv || p.conv {
				cands = append(cands, p)
			}
		}
		if len(cands) == 0 {
			isConv = false
			cands = prods
		}
		ins := []prod{cands[r.Intn(len(cands))]}
		join := nn.Concat
		if len(cands) >= 2 && r.Intn(2) == 0 {
			second := cands[r.Intn(len(cands))]
			if second.name != ins[0].name {
				ins = append(ins, second)
				// Add joins need identical shapes: same producer kind and
				// channel count (spatial extents match by construction).
				if ins[0].conv == second.conv && ins[0].ch == second.ch && r.Intn(2) == 0 {
					join = nn.Add
				}
			}
		}
		names := make([]string, len(ins))
		for j, p := range ins {
			names[j] = p.name
		}
		l := nn.Layer{Name: fmt.Sprintf("l%d", i), Inputs: names, Join: join, Act: nn.ReLU}
		if isConv {
			l.Type = nn.Conv
			l.K, l.Pad = 3, 1
			l.Cout = 1 + r.Intn(6)
		} else {
			l.Type = nn.FC
			l.Cout = 1 + r.Intn(24)
		}
		m.Layers = append(m.Layers, l)
		prods = append(prods, prod{name: l.Name, conv: isConv, ch: l.Cout})
	}
	// Sweep every dangling producer into one fc sink.
	consumed := map[string]bool{}
	for _, l := range m.Layers {
		for _, in := range l.Inputs {
			consumed[in] = true
		}
	}
	var dangling []string
	for _, l := range m.Layers {
		if !consumed[l.Name] {
			dangling = append(dangling, l.Name)
		}
	}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "sink", Type: nn.FC, Cout: 1 + r.Intn(10), Inputs: dangling, Act: nn.Softmax,
	})
	return m
}

// TestTwoWayGraphMatchesExhaustiveOracle is the graph-DP guarantee on
// 250 random DAGs: the frontier dynamic program's minimum equals the
// true minimum of the per-edge objective over all 2^L assignments, and
// its traceback achieves it.
func TestTwoWayGraphMatchesExhaustiveOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	branched := 0
	for trial := 0; trial < 250; trial++ {
		m := oracleRandomDAG(r, trial)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid model: %v", trial, err)
		}
		preds, err := m.LayerPreds()
		if err != nil {
			t.Fatal(err)
		}
		if !isChain(preds) {
			branched++
		}
		batch := 1 << uint(r.Intn(4))
		shapes, err := m.Shapes(batch)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, m.Name, err)
		}
		amounts := make([]comm.LayerAmounts, len(shapes))
		var sh tensor.Shard
		for l := range shapes {
			amounts[l] = comm.Amounts(shapes[l], sh)
		}

		got, assign, err := TwoWayGraph(amounts, preds)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, m.Name, err)
		}

		nl := len(amounts)
		want := math.Inf(1)
		var wantA Assignment
		for code := 0; code < 1<<uint(nl); code++ {
			a := make(Assignment, nl)
			for b := 0; b < nl; b++ {
				if code&(1<<uint(b)) != 0 {
					a[b] = comm.MP
				}
			}
			c := AssignmentCostGraph(amounts, preds, a)
			if c < want {
				want, wantA = c, a
			}
		}

		if !almostEq(got, want) {
			t.Errorf("trial %d (%s, batch %d): TwoWayGraph=%g oracle=%g (oracle %v, dp %v)",
				trial, m.Name, batch, got, want, wantA, assign)
		}
		if ac := AssignmentCostGraph(amounts, preds, assign); !almostEq(ac, got) {
			t.Errorf("trial %d (%s): traceback assignment costs %g, dp claims %g", trial, m.Name, ac, got)
		}
	}
	// The generator must actually exercise branched structure, not
	// collapse to chains.
	if branched < 150 {
		t.Fatalf("only %d of 250 random models were branched", branched)
	}
}

// TestTwoWayGraphMatchesChainDP pins the dispatch: on chains the graph
// entry point returns exactly the paper recurrence's result, traceback
// included.
func TestTwoWayGraphMatchesChainDP(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		m := oracleRandomModel(r, 3000+trial)
		preds, err := m.LayerPreds()
		if err != nil {
			t.Fatal(err)
		}
		shapes, err := m.Shapes(4)
		if err != nil {
			t.Fatal(err)
		}
		amounts := make([]comm.LayerAmounts, len(shapes))
		var sh tensor.Shard
		for l := range shapes {
			amounts[l] = comm.Amounts(shapes[l], sh)
		}
		cCost, cAssign := TwoWay(amounts)
		gCost, gAssign, err := TwoWayGraph(amounts, preds)
		if err != nil {
			t.Fatal(err)
		}
		if cCost != gCost || cAssign.String() != gAssign.String() {
			t.Fatalf("trial %d: chain %g/%s vs graph %g/%s", trial, cCost, cAssign, gCost, gAssign)
		}
	}
}

// TestGraphHierarchicalNeverBeatsBruteForce is the Algorithm 2 oracle
// bound on branched models: the level-greedy hierarchical search ties
// or loses against the exhaustive minimum, never wins — the same
// guarantee the chain suite pins, now with skip and branch edges in
// the objective.
func TestGraphHierarchicalNeverBeatsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pool := runner.Serial()
	trials := 0
	for id := 0; trials < 60; id++ {
		m := oracleRandomDAG(r, 5000+id)
		levels := 1 + r.Intn(2) // 1..2
		if levels*len(m.Layers) > 12 {
			continue // keep the exhaustive side ≤ 2^12 plans
		}
		trials++
		batch := 1 << uint(r.Intn(3))

		hier, err := Hierarchical(m, batch, levels)
		if err != nil {
			t.Fatalf("%s: hierarchical: %v", m.Name, err)
		}
		bf, err := BruteForceWith(pool, m, batch, levels)
		if err != nil {
			t.Fatalf("%s: brute force: %v", m.Name, err)
		}
		if hier.TotalElems < bf.TotalElems && !almostEq(hier.TotalElems, bf.TotalElems) {
			t.Errorf("%s (batch %d, levels %d): Hierarchical %g beats BruteForce %g — oracle violated",
				m.Name, batch, levels, hier.TotalElems, bf.TotalElems)
		}
	}
}

// TestGraphEvaluateChargesSkipEdges pins the per-edge cost model on a
// hand-checked fork: a producer whose two consumers disagree with it
// pays one Table 2 conversion per disagreeing edge.
func TestGraphEvaluateChargesSkipEdges(t *testing.T) {
	m := &nn.Model{
		Name:  "fork",
		Input: nn.Input{H: 4, W: 4, C: 2},
		Layers: []nn.Layer{
			{Name: "a", Type: nn.Conv, K: 3, Pad: 1, Cout: 2, Act: nn.ReLU},
			{Name: "b1", Type: nn.Conv, K: 3, Pad: 1, Cout: 2, Act: nn.ReLU, Inputs: []string{"a"}},
			{Name: "b2", Type: nn.Conv, K: 3, Pad: 1, Cout: 2, Act: nn.ReLU, Inputs: []string{"a"}},
			{Name: "c", Type: nn.FC, Cout: 4, Inputs: []string{"b1", "b2"}},
		},
	}
	// a=mp, everything else mp too except the two branches force the
	// a→b1 and a→b2 edges into mp-mp transitions: each pays 0.5·A(E).
	assign := Assignment{comm.MP, comm.MP, comm.MP, comm.MP}
	plan, err := Evaluate(m, 2, []Assignment{assign})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Edges) != 4 {
		t.Fatalf("fork model has %d edges, want 4 (%v)", len(plan.Edges), plan.Edges)
	}
	shapes, err := m.Shapes(2)
	if err != nil {
		t.Fatal(err)
	}
	var sh tensor.Shard
	aAmounts := comm.Amounts(shapes[0], sh)
	wantPerEdge := 0.5 * aAmounts.EBound
	d := plan.Details[0]
	for e, ed := range plan.Edges {
		if ed.Src != 0 {
			continue
		}
		if d.InterF[e] != 0 {
			t.Errorf("edge %v: mp-mp charged F conversion %g", ed, d.InterF[e])
		}
		if !almostEq(d.InterE[e], wantPerEdge) {
			t.Errorf("edge %v: E conversion %g, want %g", ed, d.InterE[e], wantPerEdge)
		}
	}
	// The plan total equals the graph objective for the assignment.
	amounts := make([]comm.LayerAmounts, len(shapes))
	for l := range shapes {
		amounts[l] = comm.Amounts(shapes[l], sh)
	}
	preds, err := m.LayerPreds()
	if err != nil {
		t.Fatal(err)
	}
	if want := AssignmentCostGraph(amounts, preds, assign); !almostEq(plan.TotalElems, want) {
		t.Errorf("plan total %g, graph objective %g", plan.TotalElems, want)
	}
}

package partition

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/runner"
	"repro/internal/tensor"
)

// oracleRandomModel builds a random valid conv/fc stack. Conv layers use
// k=3/pad=1 so spatial dims survive any depth; pooling halves even
// dims. Shapes stay tiny — the oracle is about structure, not scale.
func oracleRandomModel(r *rand.Rand, id int) *nn.Model {
	edge := 4 + 2*r.Intn(7) // 4..16, even so pooling stays legal
	m := &nn.Model{
		Name:  fmt.Sprintf("rand-%d", id),
		Input: nn.Input{H: edge, W: edge, C: 1 + r.Intn(4)},
	}
	nConv := r.Intn(4)
	nFC := r.Intn(4)
	if nConv+nFC == 0 {
		nFC = 1
	}
	cur := edge
	for i := 0; i < nConv; i++ {
		l := nn.Layer{
			Name: fmt.Sprintf("conv%d", i), Type: nn.Conv,
			K: 3, Pad: 1, Cout: 1 + r.Intn(8), Act: nn.ReLU,
		}
		if cur%2 == 0 && cur >= 4 && r.Intn(2) == 0 {
			l.Pool = 2
			cur /= 2
		}
		m.Layers = append(m.Layers, l)
	}
	for i := 0; i < nFC; i++ {
		m.Layers = append(m.Layers, nn.FCLayer(fmt.Sprintf("fc%d", i), 1+r.Intn(64)))
	}
	return m
}

// almostEq tolerates float addition-order differences only.
func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestTwoWayMatchesExhaustiveOracle is the Algorithm 1 guarantee on
// ~200 random models: the dynamic program's minimum equals the true
// minimum over all 2^L assignments, and its traceback achieves it.
func TestTwoWayMatchesExhaustiveOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := oracleRandomModel(r, trial)
		batch := 1 << uint(r.Intn(4)) // 1..8
		shapes, err := m.Shapes(batch)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, m.Name, err)
		}
		amounts := make([]comm.LayerAmounts, len(shapes))
		var sh tensor.Shard
		for l := range shapes {
			amounts[l] = comm.Amounts(shapes[l], sh)
		}

		got, assign := TwoWay(amounts)

		// Exhaustive oracle over every assignment.
		nl := len(amounts)
		want := math.Inf(1)
		var wantA Assignment
		for code := 0; code < 1<<uint(nl); code++ {
			a := make(Assignment, nl)
			for b := 0; b < nl; b++ {
				if code&(1<<uint(b)) != 0 {
					a[b] = comm.MP
				}
			}
			c := AssignmentCost(amounts, a)
			if c < want {
				want, wantA = c, a
			}
		}

		if !almostEq(got, want) {
			t.Errorf("trial %d (%s, batch %d): TwoWay=%g oracle=%g (oracle assignment %v, dp %v)",
				trial, m.Name, batch, got, want, wantA, assign)
		}
		if ac := AssignmentCost(amounts, assign); !almostEq(ac, got) {
			t.Errorf("trial %d (%s): traceback assignment costs %g, dp claims %g", trial, m.Name, ac, got)
		}
	}
}

// TestHierarchicalNeverBeatsBruteForce is the Algorithm 2 sanity bound
// on random models: the level-greedy hierarchical search can tie but
// never beat the exhaustive minimum over all hierarchical assignments.
func TestHierarchicalNeverBeatsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pool := runner.Serial()
	trials := 0
	for id := 0; trials < 200; id++ {
		m := oracleRandomModel(r, 1000+id)
		levels := 1 + r.Intn(3) // 1..3
		if levels*len(m.Layers) > 12 {
			continue // keep the exhaustive side ≤ 2^12 plans
		}
		trials++
		batch := 1 << uint(r.Intn(4))

		hier, err := Hierarchical(m, batch, levels)
		if err != nil {
			t.Fatalf("%s: hierarchical: %v", m.Name, err)
		}
		bf, err := BruteForceWith(pool, m, batch, levels)
		if err != nil {
			t.Fatalf("%s: brute force: %v", m.Name, err)
		}
		if hier.TotalElems < bf.TotalElems && !almostEq(hier.TotalElems, bf.TotalElems) {
			t.Errorf("%s (batch %d, levels %d): Hierarchical %g beats BruteForce %g — oracle violated",
				m.Name, batch, levels, hier.TotalElems, bf.TotalElems)
		}
	}
}

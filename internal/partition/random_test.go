package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// randomModel generates a structurally valid feed-forward network:
// a conv stack (kernel sizes that keep the map alive, occasional
// pooling) followed by an fc stack.
func randomModel(r *rand.Rand, id int) *nn.Model {
	m := &nn.Model{
		Name: "rand",
		Input: nn.Input{
			H: 8 + r.Intn(3)*8, // 8, 16 or 24
			W: 8 + r.Intn(3)*8,
			C: 1 + r.Intn(3),
		},
	}
	m.Name = "rand-" + string(rune('A'+id%26))
	h, w := m.Input.H, m.Input.W
	nConv := r.Intn(4)
	for i := 0; i < nConv; i++ {
		k := 1 + 2*r.Intn(2) // 1 or 3
		if h-k+1 <= 0 || w-k+1 <= 0 {
			break
		}
		l := nn.Layer{Name: "c", Type: nn.Conv, K: k, Cout: 4 << r.Intn(4), Act: nn.ReLU}
		oh, ow := h-k+1, w-k+1
		if r.Intn(2) == 0 && oh >= 4 && ow >= 4 {
			l.Pool = 2
			oh, ow = oh/2, ow/2
		}
		h, w = oh, ow
		m.Layers = append(m.Layers, l)
	}
	nFC := 1 + r.Intn(3)
	for i := 0; i < nFC; i++ {
		m.Layers = append(m.Layers, nn.FCLayer("f", 8<<r.Intn(6)))
	}
	return m
}

// TestRandomModelsInvariants fuzzes the partition pipeline over many
// random networks, checking the load-bearing invariants:
//  1. Algorithm 1 matches exhaustive single-level search;
//  2. Hierarchical's totals equal the reference evaluator's replay;
//  3. HyPar never communicates more than either uniform baseline;
//  4. per-pair volumes never grow while descending the hierarchy.
func TestRandomModelsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(20260612))
	batches := []int{2, 16, 64, 256}
	for trial := 0; trial < 60; trial++ {
		m := randomModel(r, trial)
		batch := batches[r.Intn(len(batches))]
		levels := 1 + r.Intn(4)

		shapes, err := m.Shapes(batch)
		if err != nil {
			t.Fatalf("trial %d (%v): shapes: %v", trial, m, err)
		}

		// (1) Algorithm 1 optimality on the unsharded level.
		amounts := make([]comm.LayerAmounts, len(shapes))
		for i := range shapes {
			amounts[i] = comm.Amounts(shapes[i], tensor.Shard{})
		}
		got, assign := TwoWay(amounts)
		nl := len(shapes)
		if nl <= 12 {
			best := math.Inf(1)
			a := make(Assignment, nl)
			for code := 0; code < 1<<uint(nl); code++ {
				for b := 0; b < nl; b++ {
					a[b] = comm.DP
					if code&(1<<uint(b)) != 0 {
						a[b] = comm.MP
					}
				}
				if c := AssignmentCost(amounts, a); c < best {
					best = c
				}
			}
			if math.Abs(best-got) > 1e-6*math.Max(1, best) {
				t.Errorf("trial %d: TwoWay %g != brute force %g (assign %v)",
					trial, got, best, assign)
			}
		}

		// (2) Hierarchical agrees with its own replay.
		hp, err := Hierarchical(m, batch, levels)
		if err != nil {
			t.Fatalf("trial %d: hierarchical: %v", trial, err)
		}
		replay, err := Evaluate(m, batch, hp.Levels)
		if err != nil {
			t.Fatalf("trial %d: evaluate: %v", trial, err)
		}
		if math.Abs(hp.TotalElems-replay.TotalElems) > 1e-6*math.Max(1, hp.TotalElems) {
			t.Errorf("trial %d: hierarchical %g != replay %g", trial, hp.TotalElems, replay.TotalElems)
		}

		// (3) Never worse than the uniform baselines.
		dp, err := DataParallel(m, batch, levels)
		if err != nil {
			t.Fatalf("trial %d: dp: %v", trial, err)
		}
		mp, err := ModelParallel(m, batch, levels)
		if err != nil {
			t.Fatalf("trial %d: mp: %v", trial, err)
		}
		if hp.TotalElems > dp.TotalElems*(1+1e-9) || hp.TotalElems > mp.TotalElems*(1+1e-9) {
			t.Errorf("trial %d: HyPar %g vs dp %g mp %g", trial, hp.TotalElems, dp.TotalElems, mp.TotalElems)
		}

		// (4) Per-pair monotonicity down the hierarchy.
		prev := math.Inf(1)
		for h := range hp.Details {
			pp := hp.PerPairElems(h)
			if pp > prev*(1+1e-9) {
				t.Errorf("trial %d: level %d per-pair %g grew from %g", trial, h, pp, prev)
			}
			prev = pp
		}
	}
}

// TestRandomPlansSimulable: random hierarchical plans must always
// produce valid (cycle-free, non-negative) schedules — exercised here
// indirectly through full evaluation; the sim package has its own
// randomized test.
func TestRandomAssignmentsEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := nn.AlexNet()
	for trial := 0; trial < 40; trial++ {
		levels := make([]Assignment, 4)
		for h := range levels {
			levels[h] = make(Assignment, len(m.Layers))
			for l := range levels[h] {
				if r.Intn(2) == 1 {
					levels[h][l] = comm.MP
				}
			}
		}
		p, err := Evaluate(m, 64, levels)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if p.TotalElems < 0 || math.IsNaN(p.TotalElems) {
			t.Errorf("trial %d: total %g", trial, p.TotalElems)
		}
		for h := range p.Details {
			if p.PerPairElems(h) < 0 {
				t.Errorf("trial %d level %d: negative per-pair volume", trial, h)
			}
		}
	}
}

package partition

import (
	"repro/internal/comm"
	"repro/internal/nn"
)

// costs abstracts the objective of the layer-wise dynamic program so
// the same search runs for training (Tables 1-2) and inference.
type costs struct {
	intra  func(p comm.Parallelism, a comm.LayerAmounts) float64
	interF func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64
	interE func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64
}

// trainingCosts is the paper's full model.
var trainingCosts = costs{
	intra:  comm.Intra,
	interF: comm.InterF,
	interE: comm.InterE,
}

// objectiveCosts compiles the weights into the cost model of the given
// objective. Training is the paper's full model (Tables 1-2).
// Inference drops everything gradients and errors cause: dp incurs no
// intra-layer exchange (there is no ∆W), and no E tensors flow
// backward. Only mp's output partial sums and the forward F conversions
// remain — which is why §3.3 observes that inference always optimizes
// to pure Data Parallelism (both of its cost sources are zero).
func (w Weights) objectiveCosts(o Objective) costs {
	if o == ObjectiveInference {
		return costs{
			intra: func(p comm.Parallelism, a comm.LayerAmounts) float64 {
				if p == comm.MP {
					return w.Psum * a.FOut
				}
				return 0
			},
			interF: func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64 {
				return w.Convert * comm.InterF(prev, cur, a)
			},
			interE: func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64 { return 0 },
		}
	}
	return w.costs()
}

// HierarchicalInference runs the partition search with the inference
// cost model (forward pass only, no gradient or error communication).
func HierarchicalInference(m *nn.Model, batch, levels int) (*Plan, error) {
	ws, err := repeatWeights(UnitWeights(), levels)
	if err != nil {
		return nil, err
	}
	return Solve(Request{Model: m, Batch: batch, Levels: ws, Objective: ObjectiveInference})
}

package partition

import (
	"context"
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// costs abstracts the objective of the layer-wise dynamic program so
// the same search runs for training (Tables 1-2) and inference.
type costs struct {
	intra  func(p comm.Parallelism, a comm.LayerAmounts) float64
	interF func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64
	interE func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64
}

// trainingCosts is the paper's full model.
var trainingCosts = costs{
	intra:  comm.Intra,
	interF: comm.InterF,
	interE: comm.InterE,
}

// inferenceCosts drops everything gradients and errors cause: dp incurs
// no intra-layer exchange (there is no ∆W), and no E tensors flow
// backward. Only mp's output partial sums and the forward F conversions
// remain — which is why §3.3 observes that inference always optimizes
// to pure Data Parallelism (both of its cost sources are zero).
var inferenceCosts = costs{
	intra: func(p comm.Parallelism, a comm.LayerAmounts) float64 {
		if p == comm.MP {
			return a.FOut
		}
		return 0
	},
	interF: comm.InterF,
	interE: func(prev, cur comm.Parallelism, a comm.LayerAmounts) float64 { return 0 },
}

// HierarchicalInference runs the partition search with the inference
// cost model (forward pass only, no gradient or error communication).
func HierarchicalInference(m *nn.Model, batch, levels int) (*Plan, error) {
	return hierarchicalWith(nil, m, batch, levels, inferenceCosts)
}

// hierarchicalWith is Hierarchical parameterized by one cost model
// applied at every level.
func hierarchicalWith(ctx context.Context, m *nn.Model, batch, levels int, c costs) (*Plan, error) {
	if levels < 0 {
		return nil, fmt.Errorf("%w: negative hierarchy depth %d", ErrPlan, levels)
	}
	return hierarchicalLevelsWith(ctx, m, batch, repeatCosts(c, levels))
}

// hierarchicalLevelsWith is Hierarchical parameterized by a per-level
// cost model: the level-h run of Algorithm 1 minimizes cs[h], so a
// heterogeneous array scores each cut with the platform actually
// serving it. Each level's optimum comes from the graph form of
// Algorithm 1, which for chains is the paper's recurrence unchanged.
// The context (nil = never cancels) is checked between hierarchy levels
// and inside the per-level frontier DP.
func hierarchicalLevelsWith(ctx context.Context, m *nn.Model, batch int, cs []costs) (*Plan, error) {
	levels := len(cs)
	shapes, preds, err := prepare(m, batch, levels)
	if err != nil {
		return nil, err
	}
	nl := len(shapes)
	plan := &Plan{Model: m.Name, Batch: batch, Levels: make([]Assignment, 0, levels), Edges: EdgesOf(preds)}
	shards := make([]tensor.Shard, nl)
	for h := 0; h < levels; h++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		amounts := amountsAt(shapes, shards)
		_, assign, err := twoWayGraphWith(ctx, amounts, preds, cs[h])
		if err != nil {
			return nil, err
		}
		plan.Levels = append(plan.Levels, assign)
		for l := range shards {
			shards[l] = shards[l].Apply(assign[l] == comm.DP)
		}
	}
	fillDetailsLevelsWith(plan, shapes, cs)
	return plan, nil
}

package partition

import (
	"repro/internal/comm"
	"repro/internal/nn"
)

// DataParallel returns the default Data Parallelism baseline: every
// layer at every hierarchy level in data parallelism.
func DataParallel(m *nn.Model, batch, levels int) (*Plan, error) {
	return uniformPlan(m, batch, levels, comm.DP)
}

// ModelParallel returns the default Model Parallelism baseline: every
// layer at every hierarchy level in model parallelism.
func ModelParallel(m *nn.Model, batch, levels int) (*Plan, error) {
	return uniformPlan(m, batch, levels, comm.MP)
}

func uniformPlan(m *nn.Model, batch, levels int, p comm.Parallelism) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	assigns := make([]Assignment, levels)
	for h := range assigns {
		assigns[h] = Uniform(len(m.Layers), p)
	}
	return Evaluate(m, batch, assigns)
}

// OneWeirdTrick returns Krizhevsky's empirical configuration [111]:
// convolutional layers in data parallelism and fully-connected layers
// in model parallelism, at every hierarchy level.
func OneWeirdTrick(m *nn.Model, batch, levels int) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	a := make(Assignment, len(m.Layers))
	for l, layer := range m.Layers {
		if layer.Type == nn.FC {
			a[l] = comm.MP
		} else {
			a[l] = comm.DP
		}
	}
	assigns := make([]Assignment, levels)
	for h := range assigns {
		assigns[h] = a.Clone()
	}
	return Evaluate(m, batch, assigns)
}

package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/runner"
)

// plansAgree compares the exported content of two plans exactly: the
// byte-identity contract the wrapper refactor is pinned against.
// (reflect.DeepEqual on whole plans would also compare the unexported
// warm-start fingerprints, which legitimately differ across methods.)
func plansAgree(a, b *Plan) bool {
	return a.Model == b.Model && a.Batch == b.Batch &&
		reflect.DeepEqual(a.Levels, b.Levels) &&
		reflect.DeepEqual(a.Edges, b.Edges) &&
		reflect.DeepEqual(a.Details, b.Details) &&
		a.TotalElems == b.TotalElems
}

// TestSolveMatchesLegacyWrappers: every pre-refactor entry point is a
// thin wrapper over Solve, and calling Solve directly with the
// equivalent Request returns the identical plan.
func TestSolveMatchesLegacyWrappers(t *testing.T) {
	chain := nn.AlexNet()
	fork := cancelFork(3)
	w := Weights{Grad: 0.5, Psum: 1, Convert: 2}
	perLevel := []Weights{UnitWeights(), w, UnitWeights()}
	pool := runner.Serial()

	cases := []struct {
		name   string
		legacy func() (*Plan, error)
		req    Request
	}{
		{"Hierarchical", func() (*Plan, error) { return Hierarchical(chain, 64, 3) },
			Request{Model: chain, Batch: 64, Levels: []Weights{UnitWeights(), UnitWeights(), UnitWeights()}}},
		{"HierarchicalGraph", func() (*Plan, error) { return Hierarchical(fork, 16, 2) },
			Request{Model: fork, Batch: 16, Levels: []Weights{UnitWeights(), UnitWeights()}}},
		{"HierarchicalWeighted", func() (*Plan, error) { return HierarchicalWeighted(chain, 64, 2, w) },
			Request{Model: chain, Batch: 64, Levels: []Weights{w, w}}},
		{"HierarchicalPerLevel", func() (*Plan, error) { return HierarchicalPerLevel(chain, 32, perLevel) },
			Request{Model: chain, Batch: 32, Levels: perLevel}},
		{"HierarchicalInference", func() (*Plan, error) { return HierarchicalInference(chain, 64, 2) },
			Request{Model: chain, Batch: 64, Levels: []Weights{UnitWeights(), UnitWeights()}, Objective: ObjectiveInference}},
		{"BruteForce", func() (*Plan, error) { return BruteForceWith(pool, cancelChain(5), 8, 2) },
			Request{Model: cancelChain(5), Batch: 8, Levels: []Weights{UnitWeights(), UnitWeights()}, Pool: pool, Method: MethodBrute}},
		{"BruteForceWeighted", func() (*Plan, error) { return BruteForceWeightedWith(pool, cancelChain(5), 8, 2, w) },
			Request{Model: cancelChain(5), Batch: 8, Levels: []Weights{w, w}, Pool: pool, Method: MethodBrute}},
	}
	for _, tc := range cases {
		want, err := tc.legacy()
		if err != nil {
			t.Fatalf("%s: legacy: %v", tc.name, err)
		}
		got, err := Solve(tc.req)
		if err != nil {
			t.Fatalf("%s: Solve: %v", tc.name, err)
		}
		if !plansAgree(got, want) {
			t.Errorf("%s: Solve plan differs from legacy wrapper", tc.name)
		}
	}
}

func TestParseMethod(t *testing.T) {
	for name, want := range map[string]Method{
		"": MethodHierarchical, "hierarchical": MethodHierarchical, "graph": MethodHierarchical,
		"Brute": MethodBrute, "BEAM": MethodBeam,
	} {
		got, err := ParseMethod(name)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMethod("quantum"); !errors.Is(err, ErrPlan) {
		t.Errorf("ParseMethod(quantum) = %v, want ErrPlan", err)
	}
	for m, s := range map[Method]string{MethodHierarchical: "hierarchical", MethodBrute: "brute", MethodBeam: "beam"} {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	m := cancelChain(3)
	unit := []Weights{UnitWeights()}
	for name, req := range map[string]Request{
		"nil model":         {Batch: 8, Levels: unit},
		"negative cap":      {Model: m, Batch: 8, Levels: unit, FrontierCap: -1},
		"negative width":    {Model: m, Batch: 8, Levels: unit, Method: MethodBeam, BeamWidth: -2},
		"bad weights":       {Model: m, Batch: 8, Levels: []Weights{{Grad: -1, Psum: 1, Convert: 1}}},
		"unknown method":    {Model: m, Batch: 8, Levels: unit, Method: Method(99)},
		"unknown objective": {Model: m, Batch: 8, Levels: unit, Objective: Objective(7)},
	} {
		if _, err := Solve(req); !errors.Is(err, ErrPlan) {
			t.Errorf("Solve(%s) = %v, want ErrPlan", name, err)
		}
	}
}

// TestRequestFrontierCap: the per-request cap bounds the exact graph DP
// without touching the package default, and zero means the default.
func TestRequestFrontierCap(t *testing.T) {
	fork := cancelFork(8) // frontier width 8
	unit := []Weights{UnitWeights()}
	if _, err := Solve(Request{Model: fork, Batch: 2, Levels: unit, FrontierCap: 4}); !errors.Is(err, ErrTooWide) {
		t.Fatalf("Solve under request cap 4 = %v, want ErrTooWide", err)
	}
	if _, err := Solve(Request{Model: fork, Batch: 2, Levels: unit}); err != nil {
		t.Fatalf("Solve under default cap: %v", err)
	}
	if got := FrontierCap(); got != maxGraphFrontier {
		t.Fatalf("request cap leaked into the package default: FrontierCap() = %d", got)
	}
	// Values above the compiled-in maximum clamp rather than unlocking
	// state-key widths the exact DP cannot represent.
	if _, err := Solve(Request{Model: cancelFork(18), Batch: 2, Levels: unit, FrontierCap: 64}); !errors.Is(err, ErrTooWide) {
		t.Fatalf("Solve with cap 64 on width-18 fork = %v, want ErrTooWide (clamped)", err)
	}
}

// TestConcurrentFrontierCaps runs solves with different per-request
// caps concurrently — the scenario the deprecated package global could
// not express without racing (run under -race in CI).
func TestConcurrentFrontierCaps(t *testing.T) {
	fork := cancelFork(8)
	unit := []Weights{UnitWeights()}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, tc := range []struct {
		cap     int
		wantErr bool
	}{{4, true}, {0, false}} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := Solve(Request{Model: fork, Batch: 2, Levels: unit, FrontierCap: tc.cap})
				if tc.wantErr != (err != nil) {
					errs <- fmt.Errorf("cap %d: err = %v, wantErr %v", tc.cap, err, tc.wantErr)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWarmStartReusesLevels: a warm solve whose inputs are unchanged
// reuses every level and evaluates zero new DP cells; a sweep that
// mutates one dimension recomputes strictly fewer cells than a cold
// solve while returning the byte-identical plan.
func TestWarmStartReusesLevels(t *testing.T) {
	m := oracleRandomDAG(rand.New(rand.NewSource(42)), 0)
	perLevel := []Weights{UnitWeights(), UnitWeights(), UnitWeights(), UnitWeights()}
	req := Request{Model: m, Batch: 32, Levels: perLevel}

	cells := func(f func()) int64 {
		before := DPCells()
		f()
		return DPCells() - before
	}

	var cold, warm *Plan
	var err error
	coldCells := cells(func() { cold, err = Solve(req) })
	if err != nil {
		t.Fatal(err)
	}
	if coldCells <= 0 {
		t.Fatalf("cold solve evaluated %d DP cells, want > 0", coldCells)
	}

	// Unchanged inputs: full reuse, zero DP work.
	warmReq := req
	warmReq.Warm = cold
	warmCells := cells(func() { warm, err = Solve(warmReq) })
	if err != nil {
		t.Fatal(err)
	}
	if warmCells != 0 {
		t.Errorf("identical warm solve evaluated %d DP cells, want 0", warmCells)
	}
	if !plansAgree(warm, cold) {
		t.Error("warm plan differs from cold plan")
	}

	// One-dimension sweep: mutate only level 2's weights. Levels 0 and 1
	// see identical inputs and must be reused; the changed level (and any
	// level whose shard history diverges) recomputes. Strictly fewer
	// cells than the equivalent cold solve, same plan.
	swept := []Weights{UnitWeights(), UnitWeights(), {Grad: 2, Psum: 1, Convert: 1}, UnitWeights()}
	sweepReq := Request{Model: m, Batch: 32, Levels: swept, Warm: cold}
	var sweptWarm *Plan
	sweptWarmCells := cells(func() { sweptWarm, err = Solve(sweepReq) })
	if err != nil {
		t.Fatal(err)
	}
	sweepCold := sweepReq
	sweepCold.Warm = nil
	var sweptCold *Plan
	sweptColdCells := cells(func() { sweptCold, err = Solve(sweepCold) })
	if err != nil {
		t.Fatal(err)
	}
	if sweptWarmCells >= sweptColdCells {
		t.Errorf("warm sweep evaluated %d DP cells, cold %d: want strictly fewer", sweptWarmCells, sweptColdCells)
	}
	if !plansAgree(sweptWarm, sweptCold) {
		t.Error("warm sweep plan differs from cold sweep plan")
	}

	// A different batch changes every level's amounts: no level may be
	// wrongly reused (the plan must equal its cold counterpart).
	batchReq := Request{Model: m, Batch: 64, Levels: perLevel, Warm: cold}
	warmBatch, err := Solve(batchReq)
	if err != nil {
		t.Fatal(err)
	}
	coldBatch, err := Solve(Request{Model: m, Batch: 64, Levels: perLevel})
	if err != nil {
		t.Fatal(err)
	}
	if !plansAgree(warmBatch, coldBatch) {
		t.Error("batch-changed warm plan differs from cold plan")
	}
}

// TestWarmStartIgnoresForeignPlans: plans built outside Solve carry no
// fingerprints and must warm nothing (no panic, no wrong reuse).
func TestWarmStartIgnoresForeignPlans(t *testing.T) {
	m := cancelChain(4)
	unit := []Weights{UnitWeights(), UnitWeights()}
	foreign, err := BruteForce(m, 8, 2) // brute plans have no levelKeys
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(Request{Model: m, Batch: 8, Levels: unit})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(Request{Model: m, Batch: 8, Levels: unit, Warm: foreign})
	if err != nil {
		t.Fatal(err)
	}
	if !plansAgree(warm, cold) {
		t.Error("foreign warm hint changed the plan")
	}
}

// TestWarmStartMethodMismatch: a beam plan must not warm an exact solve
// (and vice versa) — the method is part of the fingerprint seed.
func TestWarmStartMethodMismatch(t *testing.T) {
	m := cancelFork(3)
	unit := []Weights{UnitWeights(), UnitWeights()}
	exact, err := Solve(Request{Model: m, Batch: 8, Levels: unit})
	if err != nil {
		t.Fatal(err)
	}
	before := DPCells()
	if _, err := Solve(Request{Model: m, Batch: 8, Levels: unit, Method: MethodBeam, Warm: exact}); err != nil {
		t.Fatal(err)
	}
	if DPCells() == before {
		t.Error("beam solve reused exact-DP levels: method must invalidate the fingerprint")
	}
}

// TestDPCellsCounts pins the counter's unit on the chain recurrence:
// two cells per layer per level.
func TestDPCellsCounts(t *testing.T) {
	m := cancelChain(6)
	before := DPCells()
	if _, err := Hierarchical(m, 8, 3); err != nil {
		t.Fatal(err)
	}
	if got, want := DPCells()-before, int64(3*2*6); got != want {
		t.Errorf("DPCells delta = %d, want %d (3 levels x 2 choices x 6 layers)", got, want)
	}
}

package partition

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/runner"
)

// TestWeightedWrappersUnitIdentity pins the wrapper contract the Solve
// refactor promised: every Weighted entry point at UnitWeights is
// byte-identical to its unweighted original, because scaling by 1.0 is
// exact in IEEE arithmetic and the wrappers all delegate to the same
// core.
func TestWeightedWrappersUnitIdentity(t *testing.T) {
	m := nn.AlexNet()
	const batch, levels = 16, 2
	u := UnitWeights()

	type pair struct {
		name string
		a    func() (*Plan, error)
		b    func() (*Plan, error)
	}
	pairs := []pair{
		{"Hierarchical",
			func() (*Plan, error) { return Hierarchical(m, batch, levels) },
			func() (*Plan, error) { return HierarchicalWeighted(m, batch, levels, u) }},
		{"DataParallel",
			func() (*Plan, error) { return DataParallel(m, batch, levels) },
			func() (*Plan, error) { return DataParallelWeighted(m, batch, levels, u) }},
		{"ModelParallel",
			func() (*Plan, error) { return ModelParallel(m, batch, levels) },
			func() (*Plan, error) { return ModelParallelWeighted(m, batch, levels, u) }},
		{"OneWeirdTrick",
			func() (*Plan, error) { return OneWeirdTrick(m, batch, levels) },
			func() (*Plan, error) { return OneWeirdTrickWeighted(m, batch, levels, u) }},
		{"DataParallelPerLevel",
			func() (*Plan, error) { return DataParallelWeighted(m, batch, levels, u) },
			func() (*Plan, error) { return DataParallelPerLevel(m, batch, []Weights{u, u}) }},
		{"ModelParallelPerLevel",
			func() (*Plan, error) { return ModelParallelWeighted(m, batch, levels, u) },
			func() (*Plan, error) { return ModelParallelPerLevel(m, batch, []Weights{u, u}) }},
		{"OneWeirdTrickPerLevel",
			func() (*Plan, error) { return OneWeirdTrickWeighted(m, batch, levels, u) },
			func() (*Plan, error) { return OneWeirdTrickPerLevel(m, batch, []Weights{u, u}) }},
	}
	for _, p := range pairs {
		want, err := p.a()
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		got, err := p.b()
		if err != nil {
			t.Fatalf("%s wrapper: %v", p.name, err)
		}
		if !plansAgree(want, got) {
			t.Errorf("%s: weighted wrapper diverges from original at unit weights", p.name)
		}
	}

	// The fixed-assignment evaluators agree the same way.
	plan, err := Hierarchical(m, batch, levels)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, batch, plan.Levels)
	if err != nil {
		t.Fatal(err)
	}
	evW, err := EvaluateWeighted(m, batch, plan.Levels, u)
	if err != nil {
		t.Fatal(err)
	}
	evP, err := EvaluatePerLevel(m, batch, plan.Levels, []Weights{u, u})
	if err != nil {
		t.Fatal(err)
	}
	if !plansAgree(ev, evW) || !plansAgree(ev, evP) {
		t.Error("Evaluate wrappers diverge at unit weights")
	}
	if ev.TotalElems != plan.TotalElems {
		t.Errorf("Evaluate of the search's own assignment: %g != %g", ev.TotalElems, plan.TotalElems)
	}

	// Chain-DP wrappers: cost and assignment, plus the exhaustive
	// single-level objective.
	amounts, _ := oracleAmounts(t, m, batch)
	cost, assign := TwoWay(amounts)
	costW, assignW := TwoWayWeighted(amounts, u)
	if cost != costW || assign.String() != assignW.String() {
		t.Errorf("TwoWayWeighted(unit) = (%g, %s), want (%g, %s)", costW, assignW, cost, assign)
	}
	if ac := AssignmentCostWeighted(amounts, assign, u); ac != AssignmentCost(amounts, assign) {
		t.Errorf("AssignmentCostWeighted(unit) = %g, want %g", ac, AssignmentCost(amounts, assign))
	}
}

// TestBruteAndExploreWrappersUnitIdentity covers the exhaustive and
// exploration wrapper surface on a chain small enough to enumerate.
func TestBruteAndExploreWrappersUnitIdentity(t *testing.T) {
	m := cancelChain(4)
	const batch, levels = 8, 2
	u := UnitWeights()
	pool := runner.Serial()

	want, err := BruteForceWith(pool, m, batch, levels)
	if err != nil {
		t.Fatal(err)
	}
	gotW, err := BruteForceWeightedWith(pool, m, batch, levels, u)
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := BruteForcePerLevelWith(pool, m, batch, []Weights{u, u})
	if err != nil {
		t.Fatal(err)
	}
	if !plansAgree(want, gotW) || !plansAgree(want, gotP) {
		t.Error("brute-force wrappers diverge at unit weights")
	}

	free := []FreeVar{{Level: 0, Layer: 0}, {Level: 1, Layer: 2}}
	pts, err := ExploreWith(pool, m, batch, want.Levels, free)
	if err != nil {
		t.Fatal(err)
	}
	ptsW, err := ExploreWeightedWith(pool, m, batch, want.Levels, free, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(ptsW) {
		t.Fatalf("explore wrappers: %d vs %d points", len(pts), len(ptsW))
	}
	for i := range pts {
		if pts[i].Code != ptsW[i].Code || !plansAgree(pts[i].Plan, ptsW[i].Plan) {
			t.Errorf("explore point %d diverges between wrappers", i)
		}
	}

	// Bad weights are rejected at the wrapper boundary, uniformly.
	bad := Weights{Grad: -1, Psum: 1, Convert: 1}
	if _, err := HierarchicalWeighted(m, batch, levels, bad); err == nil {
		t.Error("HierarchicalWeighted accepted a negative weight")
	}
	if _, err := EvaluateWeighted(m, batch, want.Levels, bad); err == nil {
		t.Error("EvaluateWeighted accepted a negative weight")
	}
	if _, err := ExploreWeightedWith(pool, m, batch, want.Levels, free, bad); err == nil {
		t.Error("ExploreWeightedWith accepted a negative weight")
	}
	if _, err := BruteForceWeightedWith(pool, m, batch, levels, bad); err == nil {
		t.Error("BruteForceWeightedWith accepted a negative weight")
	}
	if _, err := EvaluatePerLevel(m, batch, want.Levels, []Weights{u, bad}); err == nil {
		t.Error("EvaluatePerLevel accepted a negative weight")
	}
}

// TestInferenceWrapperDelegates: the inference entry point is a Solve
// wrapper too — its plan matches an explicit inference-objective
// Request.
func TestInferenceWrapperDelegates(t *testing.T) {
	m := nn.AlexNet()
	want, err := HierarchicalInference(m, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(Request{
		Model: m, Batch: 16,
		Levels:    []Weights{UnitWeights(), UnitWeights()},
		Objective: ObjectiveInference,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plansAgree(want, got) {
		t.Error("HierarchicalInference diverges from the inference-objective Request")
	}
}

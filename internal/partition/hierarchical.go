package partition

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Hierarchical is Algorithm 2: it partitions a 2^H accelerator array by
// running Algorithm 1 at every hierarchy level, halving each layer's
// tensors between levels according to the level's choice (dp halves the
// batch; mp halves the kernel input dimension). The total communication
// follows the paper's recursion com = com_h + 2·com_n, i.e. level h's
// per-pair volume is counted once per group pair (2^h pairs).
func Hierarchical(m *nn.Model, batch, levels int) (*Plan, error) {
	return hierarchicalWith(m, batch, levels, trainingCosts)
}

// Evaluate computes the communication volumes of an arbitrary
// hierarchical assignment (one Assignment per level) for the model. It
// is the reference evaluator used by the brute-force search, the
// baselines, and the Figure 9/10 space exploration; Hierarchical's own
// totals agree with it (tested).
func Evaluate(m *nn.Model, batch int, levels []Assignment) (*Plan, error) {
	shapes, err := prepare(m, batch, len(levels))
	if err != nil {
		return nil, err
	}
	return evaluateShapes(m, batch, levels, shapes)
}

// evaluateShapes is Evaluate with shape inference already done, so the
// enumeration hot paths (brute force, exploration) share one inference
// across every plan they score.
func evaluateShapes(m *nn.Model, batch int, levels []Assignment, shapes []nn.LayerShapes) (*Plan, error) {
	return evaluateShapesWith(m, batch, levels, shapes, trainingCosts)
}

// evaluateShapesWith is evaluateShapes under an arbitrary cost model.
func evaluateShapesWith(m *nn.Model, batch int, levels []Assignment, shapes []nn.LayerShapes, c costs) (*Plan, error) {
	for h, a := range levels {
		if len(a) != len(shapes) {
			return nil, fmt.Errorf("%w: level %d has %d choices, model %q has %d layers",
				ErrPlan, h, len(a), m.Name, len(shapes))
		}
	}
	plan := &Plan{Model: m.Name, Batch: batch, Levels: make([]Assignment, len(levels))}
	for h := range levels {
		plan.Levels[h] = levels[h].Clone()
	}
	fillDetailsWith(plan, shapes, c)
	return plan, nil
}

// prepare validates the request and runs (memoized) shape inference.
func prepare(m *nn.Model, batch, levels int) ([]nn.LayerShapes, error) {
	if levels < 0 {
		return nil, fmt.Errorf("%w: negative hierarchy depth %d", ErrPlan, levels)
	}
	if levels > 20 {
		return nil, fmt.Errorf("%w: hierarchy depth %d (2^%d accelerators) is unreasonable",
			ErrPlan, levels, levels)
	}
	return m.CachedShapes(batch)
}

// amountsAt derives the per-pair amounts of every layer under the given
// shard states.
func amountsAt(shapes []nn.LayerShapes, shards []tensor.Shard) []comm.LayerAmounts {
	amounts := make([]comm.LayerAmounts, len(shapes))
	for l := range shapes {
		amounts[l] = comm.Amounts(shapes[l], shards[l])
	}
	return amounts
}

// fillDetailsWith populates plan.Details and plan.TotalElems from the
// plan's level assignments under the cost model, threading shard state
// down the hierarchy.
func fillDetailsWith(plan *Plan, shapes []nn.LayerShapes, c costs) {
	nl := len(shapes)
	shards := make([]tensor.Shard, nl)
	plan.Details = make([]LevelDetail, len(plan.Levels))
	plan.TotalElems = 0

	for h, assign := range plan.Levels {
		amounts := amountsAt(shapes, shards)
		d := LevelDetail{
			IntraFwd:  make([]float64, nl),
			IntraGrad: make([]float64, nl),
			InterF:    make([]float64, nl),
			InterE:    make([]float64, nl),
		}
		for l := 0; l < nl; l++ {
			switch assign[l] {
			case comm.MP:
				d.IntraFwd[l] = c.intra(comm.MP, amounts[l])
			default:
				d.IntraGrad[l] = c.intra(comm.DP, amounts[l])
			}
			if l+1 < nl {
				d.InterF[l] = c.interF(assign[l], assign[l+1], amounts[l])
				d.InterE[l] = c.interE(assign[l], assign[l+1], amounts[l])
			}
		}
		plan.Details[h] = d
		pairs := float64(int64(1) << uint(h))
		plan.TotalElems += pairs * d.PerPairElems()

		for l := range shards {
			shards[l] = shards[l].Apply(assign[l] == comm.DP)
		}
	}
}

package partition

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Hierarchical is Algorithm 2: it partitions a 2^H accelerator array by
// running Algorithm 1 at every hierarchy level, halving each layer's
// tensors between levels according to the level's choice (dp halves the
// batch; mp halves the kernel input dimension). The total communication
// follows the paper's recursion com = com_h + 2·com_n, i.e. level h's
// per-pair volume is counted once per group pair (2^h pairs). Branched
// (DAG) models run the graph generalization of Algorithm 1 per level;
// chains run the paper's O(L) recurrence unchanged.
func Hierarchical(m *nn.Model, batch, levels int) (*Plan, error) {
	return HierarchicalCtx(nil, m, batch, levels)
}

// HierarchicalCtx is Hierarchical with cancellation: the search checks
// ctx between hierarchy levels and inside the per-level frontier DP,
// returning ctx.Err() promptly when the context ends. A nil ctx never
// cancels.
func HierarchicalCtx(ctx context.Context, m *nn.Model, batch, levels int) (*Plan, error) {
	ws, err := repeatWeights(UnitWeights(), levels)
	if err != nil {
		return nil, err
	}
	return Solve(Request{Model: m, Batch: batch, Levels: ws, Ctx: ctx})
}

// Evaluate computes the communication volumes of an arbitrary
// hierarchical assignment (one Assignment per level) for the model. It
// is the reference evaluator used by the brute-force search, the
// baselines, and the Figure 9/10 space exploration; Hierarchical's own
// totals agree with it (tested).
func Evaluate(m *nn.Model, batch int, levels []Assignment) (*Plan, error) {
	shapes, preds, err := prepare(m, batch, len(levels))
	if err != nil {
		return nil, err
	}
	return evaluateShapesWith(m, batch, levels, shapes, EdgesOf(preds), trainingCosts)
}

// evaluateShapesWith is Evaluate with shape inference and edge
// resolution already done, so the enumeration hot paths (brute force,
// exploration) share one inference and one edge list across every plan
// they score; edges is shared read-only (every plan aliases it).
func evaluateShapesWith(m *nn.Model, batch int, levels []Assignment, shapes []nn.LayerShapes, edges []Edge, c costs) (*Plan, error) {
	return evaluateShapesLevelsWith(m, batch, levels, shapes, edges, repeatCosts(c, len(levels)))
}

// evaluateShapesLevelsWith is evaluateShapesWith under a per-level cost
// model: level h's volumes are scored by cs[h]. With every cs entry
// identical this is exactly the single-model evaluation (same functions
// in the same float order).
func evaluateShapesLevelsWith(m *nn.Model, batch int, levels []Assignment, shapes []nn.LayerShapes, edges []Edge, cs []costs) (*Plan, error) {
	if len(cs) != len(levels) {
		return nil, fmt.Errorf("%w: %d per-level cost models for %d levels", ErrPlan, len(cs), len(levels))
	}
	for h, a := range levels {
		if len(a) != len(shapes) {
			return nil, fmt.Errorf("%w: level %d has %d choices, model %q has %d layers",
				ErrPlan, h, len(a), m.Name, len(shapes))
		}
	}
	plan := &Plan{Model: m.Name, Batch: batch, Levels: make([]Assignment, len(levels)), Edges: edges}
	for h := range levels {
		plan.Levels[h] = levels[h].Clone()
	}
	fillDetailsLevelsWith(plan, shapes, cs)
	return plan, nil
}

// prepare validates the request, runs (memoized) shape inference, and
// resolves the layer graph, enforcing the package-default frontier cap.
func prepare(m *nn.Model, batch, levels int) ([]nn.LayerShapes, [][]int, error) {
	return prepareCap(m, batch, levels, 0)
}

// prepareCap is prepare under a per-request frontier cap: 0 means the
// package default (FrontierCap), positive values clamp to the
// compiled-in maximum, capUnlimited skips the width check entirely
// (the beam search, whose state space does not depend on the width).
func prepareCap(m *nn.Model, batch, levels, fcap int) ([]nn.LayerShapes, [][]int, error) {
	if levels < 0 {
		return nil, nil, fmt.Errorf("%w: negative hierarchy depth %d", ErrPlan, levels)
	}
	if levels > 20 {
		return nil, nil, fmt.Errorf("%w: hierarchy depth %d (2^%d accelerators) is unreasonable",
			ErrPlan, levels, levels)
	}
	shapes, err := m.CachedShapes(batch)
	if err != nil {
		return nil, nil, err
	}
	preds, err := m.LayerPreds()
	if err != nil {
		return nil, nil, err
	}
	if fcap != capUnlimited {
		lim := FrontierCap()
		if fcap > 0 {
			lim = fcap
			if lim > maxGraphFrontier {
				lim = maxGraphFrontier
			}
		}
		if w := frontierWidth(preds); w > lim {
			return nil, nil, fmt.Errorf("%w: model %q needs a partition frontier of %d open layers (max %d)",
				ErrTooWide, m.Name, w, lim)
		}
	}
	return shapes, preds, nil
}

// EdgesOf derives the layer-to-layer edge list from resolved
// predecessors, in canonical (Src, then Dst) order. Model-input
// references (-1) carry no partition cost and are dropped.
func EdgesOf(preds [][]int) []Edge {
	var edges []Edge
	for v, ps := range preds {
		for _, u := range ps {
			if u >= 0 {
				edges = append(edges, Edge{Src: u, Dst: v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	return edges
}

// amountsAt derives the per-pair amounts of every layer under the given
// shard states.
func amountsAt(shapes []nn.LayerShapes, shards []tensor.Shard) []comm.LayerAmounts {
	amounts := make([]comm.LayerAmounts, len(shapes))
	for l := range shapes {
		amounts[l] = comm.Amounts(shapes[l], shards[l])
	}
	return amounts
}

// repeatCosts expands one cost model to a per-level vector, the shape
// the per-level evaluation paths consume. Enumeration hot paths build
// it once outside their scan loops.
func repeatCosts(c costs, levels int) []costs {
	cs := make([]costs, levels)
	for h := range cs {
		cs[h] = c
	}
	return cs
}

// fillDetailsLevelsWith populates plan.Details and plan.TotalElems from
// the plan's level assignments, scoring level h under cs[h] and
// threading shard state down the hierarchy. Inter-layer conversions are
// charged per edge (plan.Edges) on the producer's boundary tensors, so
// a forked feature map pays one conversion per disagreeing consumer.
func fillDetailsLevelsWith(plan *Plan, shapes []nn.LayerShapes, cs []costs) {
	nl := len(shapes)
	shards := make([]tensor.Shard, nl)
	plan.Details = make([]LevelDetail, len(plan.Levels))
	plan.TotalElems = 0

	for h, assign := range plan.Levels {
		c := cs[h]
		amounts := amountsAt(shapes, shards)
		d := LevelDetail{
			IntraFwd:  make([]float64, nl),
			IntraGrad: make([]float64, nl),
			InterF:    make([]float64, len(plan.Edges)),
			InterE:    make([]float64, len(plan.Edges)),
		}
		for l := 0; l < nl; l++ {
			switch assign[l] {
			case comm.MP:
				d.IntraFwd[l] = c.intra(comm.MP, amounts[l])
			default:
				d.IntraGrad[l] = c.intra(comm.DP, amounts[l])
			}
		}
		for e, ed := range plan.Edges {
			d.InterF[e] = c.interF(assign[ed.Src], assign[ed.Dst], amounts[ed.Src])
			d.InterE[e] = c.interE(assign[ed.Src], assign[ed.Dst], amounts[ed.Src])
		}
		plan.Details[h] = d
		pairs := float64(int64(1) << uint(h))
		plan.TotalElems += pairs * plan.PerPairElems(h)

		for l := range shards {
			shards[l] = shards[l].Apply(assign[l] == comm.DP)
		}
	}
}

// Package partition implements HyPar's partition search: Algorithm 1
// (the layer-wise dynamic program that chooses data or model parallelism
// for every weighted layer between two accelerator groups, O(L) time)
// and Algorithm 2 (the hierarchical recursion that applies Algorithm 1
// at every level of a 2^H accelerator array, com = com_h + 2·com_n).
//
// The package also provides plan evaluation for arbitrary assignments
// (used by the brute-force reference, the parallelism-space exploration
// of Figures 9 and 10, and the published baselines: Data Parallelism,
// Model Parallelism and Krizhevsky's "one weird trick").
package partition

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// ErrPlan reports an invalid partition request or assignment.
var ErrPlan = errors.New("partition: invalid plan")

// Assignment is one hierarchy level's parallelism choice per weighted
// layer: P[l] in Algorithm 1.
type Assignment []comm.Parallelism

// String renders the assignment in the 0/1 notation of Figures 9-10.
func (a Assignment) String() string {
	var b strings.Builder
	for _, p := range a {
		b.WriteByte(p.Mark())
	}
	return b.String()
}

// Clone returns a deep copy.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	copy(c, a)
	return c
}

// Uniform returns an assignment with every layer set to p.
func Uniform(layers int, p comm.Parallelism) Assignment {
	a := make(Assignment, layers)
	for i := range a {
		a[i] = p
	}
	return a
}

// LevelDetail records, for one hierarchy level, the one-direction
// per-group-pair communication volumes in elements, attributed to the
// training phase that incurs them. The simulator schedules transfers
// from these.
type LevelDetail struct {
	// IntraFwd[l] is the mp partial-sum exchange of F_{l+1} (forward).
	IntraFwd []float64
	// IntraGrad[l] is the dp gradient exchange of ∆W_l (gradient phase).
	IntraGrad []float64
	// InterF[l] is the F_{l+1} conversion between l and l+1 (forward).
	InterF []float64
	// InterE[l] is the E_{l+1} conversion between l and l+1 (backward).
	InterE []float64
}

// PerPairElems returns the level's total one-direction elements for one
// group pair.
func (d *LevelDetail) PerPairElems() float64 {
	var t float64
	for l := range d.IntraFwd {
		t += d.IntraFwd[l] + d.IntraGrad[l] + d.InterF[l] + d.InterE[l]
	}
	return t
}

// Plan is a complete hierarchical partition: one Assignment per level
// (level 0 splits the whole array in two; level H-1 splits pairs of
// accelerators), together with the communication volumes the plan
// incurs.
type Plan struct {
	Model  string
	Batch  int
	Levels []Assignment

	// Details[h] holds the per-pair volumes of level h.
	Details []LevelDetail

	// TotalElems is the array-wide one-direction element total:
	// Σ_h 2^h · perPair(h) — Algorithm 2's com = com_h + 2·com_n.
	TotalElems float64
}

// NumLevels returns the hierarchy depth H.
func (p *Plan) NumLevels() int { return len(p.Levels) }

// NumAccelerators returns 2^H.
func (p *Plan) NumAccelerators() int { return 1 << uint(len(p.Levels)) }

// TotalBytes returns the paper's both-direction byte total for the plan
// (the quantity of Figure 8).
func (p *Plan) TotalBytes(d tensor.DType) float64 {
	return comm.ExchangedBytes(p.TotalElems, d)
}

// At returns the parallelism of layer l at level h.
func (p *Plan) At(h, l int) comm.Parallelism { return p.Levels[h][l] }

// LayerString renders one layer's choices across levels, H1 first, in
// the 0/1 notation of Figures 9-10 (e.g. "0001" = dp,dp,dp,mp).
func (p *Plan) LayerString(l int) string {
	var b strings.Builder
	for h := range p.Levels {
		b.WriteByte(p.Levels[h][l].Mark())
	}
	return b.String()
}

// Validate checks structural consistency of the plan. A plan with zero
// levels is valid: it describes a single accelerator with no partition
// and no communication.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("%w: nil plan", ErrPlan)
	}
	if len(p.Levels) == 0 {
		return nil
	}
	l := len(p.Levels[0])
	for h, a := range p.Levels {
		if len(a) != l {
			return fmt.Errorf("%w: level %d has %d layers, want %d", ErrPlan, h, len(a), l)
		}
		for i, c := range a {
			if c != comm.DP && c != comm.MP {
				return fmt.Errorf("%w: level %d layer %d has parallelism %d", ErrPlan, h, i, c)
			}
		}
	}
	return nil
}

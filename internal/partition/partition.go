// Package partition implements HyPar's partition search: Algorithm 1
// (the layer-wise dynamic program that chooses data or model parallelism
// for every weighted layer between two accelerator groups, O(L) time)
// and Algorithm 2 (the hierarchical recursion that applies Algorithm 1
// at every level of a 2^H accelerator array, com = com_h + 2·com_n).
//
// The package also provides plan evaluation for arbitrary assignments
// (used by the brute-force reference, the parallelism-space exploration
// of Figures 9 and 10, and the published baselines: Data Parallelism,
// Model Parallelism and Krizhevsky's "one weird trick").
package partition

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// ErrPlan reports an invalid partition request or assignment.
var ErrPlan = errors.New("partition: invalid plan")

// Assignment is one hierarchy level's parallelism choice per weighted
// layer: P[l] in Algorithm 1.
type Assignment []comm.Parallelism

// String renders the assignment in the 0/1 notation of Figures 9-10.
func (a Assignment) String() string {
	var b strings.Builder
	for _, p := range a {
		b.WriteByte(p.Mark())
	}
	return b.String()
}

// Clone returns a deep copy.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	copy(c, a)
	return c
}

// Uniform returns an assignment with every layer set to p.
func Uniform(layers int, p comm.Parallelism) Assignment {
	a := make(Assignment, layers)
	for i := range a {
		a[i] = p
	}
	return a
}

// Edge is one producer→consumer connection between weighted layers of
// a model graph. A linear chain has edges (l, l+1); branched models add
// skip and branch edges. Edges from the model input carry no partition
// cost and are not recorded.
type Edge struct {
	Src int // producing layer index
	Dst int // consuming layer index
}

// LevelDetail records, for one hierarchy level, the one-direction
// per-group-pair communication volumes in elements, attributed to the
// training phase that incurs them. The simulator schedules transfers
// from these. The intra arrays are indexed by layer; the inter arrays
// are indexed by edge, parallel to Plan.Edges (for a chain, edge e is
// (e, e+1), so the historical per-producer-layer indexing carries
// over unchanged).
type LevelDetail struct {
	// IntraFwd[l] is the mp partial-sum exchange of F_{l+1} (forward).
	IntraFwd []float64
	// IntraGrad[l] is the dp gradient exchange of ∆W_l (gradient phase).
	IntraGrad []float64
	// InterF[e] is the F conversion on edge Edges[e] (forward).
	InterF []float64
	// InterE[e] is the E conversion on edge Edges[e] (backward).
	InterE []float64
}

// Plan is a complete hierarchical partition: one Assignment per level
// (level 0 splits the whole array in two; level H-1 splits pairs of
// accelerators), together with the communication volumes the plan
// incurs.
type Plan struct {
	Model  string
	Batch  int
	Levels []Assignment

	// Edges lists the model's layer-to-layer edges in canonical
	// (Src, then Dst) order; the per-edge arrays of every LevelDetail
	// are parallel to it.
	Edges []Edge

	// Details[h] holds the per-pair volumes of level h.
	Details []LevelDetail

	// TotalElems is the array-wide one-direction element total:
	// Σ_h 2^h · perPair(h) — Algorithm 2's com = com_h + 2·com_n.
	TotalElems float64

	// levelKeys fingerprints each level's solve inputs (method,
	// objective, weights, sharded amounts, layer graph) for warm-start
	// reuse: a later Solve whose level fingerprints match may adopt the
	// level verbatim (see Request.Warm). Unexported on purpose — plans
	// marshal exactly as before, and only Solve can mint valid keys.
	// Nil on plans built outside Solve; such plans warm nothing.
	levelKeys []uint64
}

// PerPairElems returns level h's total one-direction elements for one
// group pair. The summation interleaves each layer's intra volumes with
// its outgoing edges' conversion volumes, which for chains reproduces
// the historical per-layer addition order exactly.
func (p *Plan) PerPairElems(h int) float64 {
	d := &p.Details[h]
	var t float64
	e := 0
	for l := range d.IntraFwd {
		s := d.IntraFwd[l] + d.IntraGrad[l]
		for e < len(p.Edges) && p.Edges[e].Src == l {
			s += d.InterF[e]
			s += d.InterE[e]
			e++
		}
		t += s
	}
	return t
}

// NumLevels returns the hierarchy depth H.
func (p *Plan) NumLevels() int { return len(p.Levels) }

// NumAccelerators returns 2^H.
func (p *Plan) NumAccelerators() int { return 1 << uint(len(p.Levels)) }

// TotalBytes returns the paper's both-direction byte total for the plan
// (the quantity of Figure 8).
func (p *Plan) TotalBytes(d tensor.DType) float64 {
	return comm.ExchangedBytes(p.TotalElems, d)
}

// At returns the parallelism of layer l at level h.
func (p *Plan) At(h, l int) comm.Parallelism { return p.Levels[h][l] }

// LayerString renders one layer's choices across levels, H1 first, in
// the 0/1 notation of Figures 9-10 (e.g. "0001" = dp,dp,dp,mp).
func (p *Plan) LayerString(l int) string {
	var b strings.Builder
	for h := range p.Levels {
		b.WriteByte(p.Levels[h][l].Mark())
	}
	return b.String()
}

// Validate checks structural consistency of the plan. A plan with zero
// levels is valid: it describes a single accelerator with no partition
// and no communication.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("%w: nil plan", ErrPlan)
	}
	if len(p.Levels) == 0 {
		return nil
	}
	l := len(p.Levels[0])
	for h, a := range p.Levels {
		if len(a) != l {
			return fmt.Errorf("%w: level %d has %d layers, want %d", ErrPlan, h, len(a), l)
		}
		for i, c := range a {
			if c != comm.DP && c != comm.MP {
				return fmt.Errorf("%w: level %d layer %d has parallelism %d", ErrPlan, h, i, c)
			}
		}
	}
	return nil
}

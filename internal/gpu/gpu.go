// Package gpu models a GPU-like HBM accelerator node for the
// platform-parameterized evaluation: a V100-class device with tens of
// streaming multiprocessors behind a multi-hundred-GB/s HBM2 stack.
//
// The model follows the same shape as internal/pe (the paper's
// row-stationary unit): a peak throughput, a layer-dependent sustained
// utilization, and a charge-each-operand-once DRAM traffic model. The
// utilization model is occupancy-based rather than dataflow-based —
// a GPU fills its SMs with whatever thread-level parallelism the layer
// offers (output elements for conv-as-implicit-GEMM, batch × neurons
// for fc), so sustained throughput tracks how well the layer's work
// saturates the resident-thread budget.
//
// Default parameters (documented sources):
//
//   - 80 SMs × 2048 resident threads, 15.7 TFLOPS fp32 peak — the
//     NVIDIA V100 (Volta) datasheet configuration.
//   - Conv sustains ≤ 65% of peak (large-GEMM efficiency of library
//     kernels); fc sustains ≤ 35% (matrix-vector work is
//     bandwidth-bound).
package gpu

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
)

// ErrConfig reports an invalid GPU configuration.
var ErrConfig = errors.New("gpu: invalid config")

// Config describes one GPU-like compute node.
type Config struct {
	SMs          int     // streaming multiprocessors (80, V100-class)
	ThreadsPerSM int     // resident threads per SM (2048)
	GOPS         float64 // peak fp32 throughput, operations/s (15.7e12)
	ConvPeak     float64 // sustained fraction of peak for conv GEMMs (0.65)
	FCPeak       float64 // sustained fraction of peak for fc GEMV (0.35)
	MinUtil      float64 // utilization floor for degenerate workloads
	ElemsBytes   float64 // element width in bytes (4 for float32)
}

// Default returns the V100-class evaluation configuration.
func Default() Config {
	return Config{
		SMs:          80,
		ThreadsPerSM: 2048,
		GOPS:         15.7e12,
		ConvPeak:     0.65,
		FCPeak:       0.35,
		MinUtil:      0.05,
		ElemsBytes:   4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SMs <= 0 || c.ThreadsPerSM <= 0 {
		return fmt.Errorf("%w: %d SMs × %d threads", ErrConfig, c.SMs, c.ThreadsPerSM)
	}
	if c.GOPS <= 0 {
		return fmt.Errorf("%w: peak %g ops/s", ErrConfig, c.GOPS)
	}
	if c.ConvPeak <= 0 || c.ConvPeak > 1 || c.FCPeak <= 0 || c.FCPeak > 1 {
		return fmt.Errorf("%w: sustained fractions conv=%g fc=%g", ErrConfig, c.ConvPeak, c.FCPeak)
	}
	if c.MinUtil <= 0 || c.MinUtil > 1 {
		return fmt.Errorf("%w: MinUtil=%g", ErrConfig, c.MinUtil)
	}
	if c.ElemsBytes <= 0 {
		return fmt.Errorf("%w: ElemsBytes=%g", ErrConfig, c.ElemsBytes)
	}
	return nil
}

// Threads returns the device-wide resident-thread budget.
func (c Config) Threads() float64 { return float64(c.SMs) * float64(c.ThreadsPerSM) }

// Utilization estimates the fraction of peak throughput a layer
// sustains: the library-kernel efficiency for the layer class, scaled
// by how completely the layer's thread-level parallelism fills the
// resident-thread budget.
func (c Config) Utilization(s nn.LayerShapes) float64 {
	occ := math.Min(1, float64(s.Out.Elems())/c.Threads())
	var util float64
	switch s.Layer.Type {
	case nn.Conv:
		util = c.ConvPeak * occ
	case nn.FC:
		util = c.FCPeak * occ
	}
	return math.Max(c.MinUtil, math.Min(1, util))
}

// ComputeTime returns the seconds one node needs to execute the given
// number of MACs for the layer (2 operations per MAC at the sustained
// rate).
func (c Config) ComputeTime(macs float64, s nn.LayerShapes) float64 {
	if macs <= 0 {
		return 0
	}
	return 2 * macs / (c.GOPS * c.Utilization(s))
}

// DRAMTraffic returns the bytes one node moves to and from its HBM for
// one phase of the layer: each operand element is read once and each
// result element written once (the large L2 and register tiling of
// library kernels keep intra-phase re-reads on chip, the same
// accounting convention the row-stationary model uses).
func (c Config) DRAMTraffic(s nn.LayerShapes, operandBytes, resultBytes float64) float64 {
	return operandBytes + resultBytes
}

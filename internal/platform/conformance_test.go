// Conformance suite: every registered platform must satisfy the same
// contracts — valid parameters, sane cost-model behavior, buildable
// topologies, and (the load-bearing one) an exact partition DP. The
// dynamic program's optimality proof is per cost model, so each
// platform's weighted objective gets its own DP-vs-exhaustive oracle
// run instead of trusting the unit-weight result to transfer.
package platform_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// randomModel builds a random valid conv/fc stack (k=3/pad=1 so spatial
// dims survive any depth; pooling halves even dims). Tiny shapes — the
// oracle is about structure, not scale.
func randomModel(r *rand.Rand, id int) *nn.Model {
	edge := 4 + 2*r.Intn(7)
	m := &nn.Model{
		Name:  fmt.Sprintf("conf-%d", id),
		Input: nn.Input{H: edge, W: edge, C: 1 + r.Intn(4)},
	}
	nConv := r.Intn(4)
	nFC := r.Intn(4)
	if nConv+nFC == 0 {
		nFC = 1
	}
	cur := edge
	for i := 0; i < nConv; i++ {
		l := nn.Layer{
			Name: fmt.Sprintf("conv%d", i), Type: nn.Conv,
			K: 3, Pad: 1, Cout: 1 + r.Intn(8), Act: nn.ReLU,
		}
		if cur%2 == 0 && cur >= 4 && r.Intn(2) == 0 {
			l.Pool = 2
			cur /= 2
		}
		m.Layers = append(m.Layers, l)
	}
	for i := 0; i < nFC; i++ {
		m.Layers = append(m.Layers, nn.FCLayer(fmt.Sprintf("fc%d", i), 1+r.Intn(64)))
	}
	return m
}

// almostEq tolerates float addition-order differences only.
func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// forEachPlatform runs the check as a subtest per registered platform.
func forEachPlatform(t *testing.T, check func(t *testing.T, p platform.Platform)) {
	t.Helper()
	names := platform.Names()
	if len(names) < 3 {
		t.Fatalf("want at least 3 registered platforms (hmc, gpu-hbm, tpu-systolic), have %v", names)
	}
	for _, name := range names {
		p, err := platform.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { check(t, p) })
	}
}

// TestRegistry covers the lookup surface: every listed name resolves to
// a platform with that name, and unknown names fail with ErrPlatform.
func TestRegistry(t *testing.T) {
	for _, name := range platform.Names() {
		p, err := platform.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
		if p.Describe() == "" {
			t.Errorf("%s: empty description", name)
		}
	}
	if _, err := platform.ByName("quantum"); err == nil {
		t.Error("unknown platform resolved")
	}
}

// TestConformanceValidate: every platform's full parameter set and its
// component cost models validate.
func TestConformanceValidate(t *testing.T) {
	forEachPlatform(t, func(t *testing.T, p platform.Platform) {
		if err := p.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if err := p.Compute().Validate(); err != nil {
			t.Errorf("Compute().Validate: %v", err)
		}
		if err := p.Memory().Validate(); err != nil {
			t.Errorf("Memory().Validate: %v", err)
		}
		if err := p.PartitionWeights().Validate(); err != nil {
			t.Errorf("PartitionWeights().Validate: %v", err)
		}
	})
}

// TestConformanceTopologies: every supported topology builds at several
// depths, reports the requested depth, and moves bytes in finite
// positive time (except the ideal fabric's zero).
func TestConformanceTopologies(t *testing.T) {
	forEachPlatform(t, func(t *testing.T, p platform.Platform) {
		topos := p.Topologies()
		if len(topos) == 0 {
			t.Fatal("no topologies")
		}
		if p.DefaultLinkMbps() <= 0 {
			t.Errorf("DefaultLinkMbps = %g", p.DefaultLinkMbps())
		}
		for _, name := range topos {
			for _, levels := range []int{1, 2, 4} {
				topo, err := p.NewTopology(name, levels, p.DefaultLinkMbps())
				if err != nil {
					t.Fatalf("NewTopology(%s, %d): %v", name, levels, err)
				}
				if topo.Levels() != levels {
					t.Errorf("%s: Levels() = %d, want %d", name, topo.Levels(), levels)
				}
				for h := 0; h < levels; h++ {
					dt, err := topo.TransferTime(h, 1e6)
					if err != nil {
						t.Fatalf("%s: TransferTime(%d): %v", name, h, err)
					}
					if math.IsNaN(dt) || math.IsInf(dt, 0) || dt < 0 {
						t.Errorf("%s: TransferTime(%d) = %g", name, h, dt)
					}
					if name != "ideal" && dt == 0 {
						t.Errorf("%s: zero transfer time for 1 MB at level %d", name, h)
					}
				}
			}
		}
		if _, err := p.NewTopology("hypercube", 2, 1600); err == nil {
			t.Error("unsupported topology accepted")
		}
	})
}

// TestConformanceComputeSanity: compute time is zero at zero work,
// positive and monotone in the MAC count, and local traffic covers at
// least the result bytes.
func TestConformanceComputeSanity(t *testing.T) {
	m := nn.VGGA()
	shapes, err := m.Shapes(16)
	if err != nil {
		t.Fatal(err)
	}
	forEachPlatform(t, func(t *testing.T, p platform.Platform) {
		c := p.Compute()
		for _, s := range shapes {
			if got := c.ComputeTime(0, s); got != 0 {
				t.Errorf("%s: ComputeTime(0) = %g", s.Layer.Name, got)
			}
			small := c.ComputeTime(1e6, s)
			large := c.ComputeTime(1e9, s)
			if small <= 0 || large <= 0 || math.IsNaN(small) || math.IsInf(large, 0) {
				t.Fatalf("%s: compute times %g / %g", s.Layer.Name, small, large)
			}
			if large <= small {
				t.Errorf("%s: ComputeTime not monotone: %g !> %g", s.Layer.Name, large, small)
			}
			if tr := c.DRAMTraffic(s, 1e6, 1e5); tr < 1e5 {
				t.Errorf("%s: DRAMTraffic %g below result bytes", s.Layer.Name, tr)
			}
		}
		mem := p.Memory()
		if dt := mem.DRAMTime(1e9); dt <= 0 || math.IsNaN(dt) {
			t.Errorf("DRAMTime(1 GB) = %g", dt)
		}
		if e := mem.DRAMEnergy(1e9) + mem.MACEnergy(1e9) + mem.SRAMEnergy(1e9) + mem.AddEnergy(1e9) + mem.LinkEnergy(1e9); e <= 0 {
			t.Errorf("energy table sums to %g", e)
		}
		if !mem.Fits(1) {
			t.Error("1 byte does not fit")
		}
	})
}

// TestConformanceTwoWayOracle is the per-platform Algorithm 1
// guarantee: under each platform's weighted objective, the dynamic
// program's minimum equals the true minimum over all 2^L assignments on
// ~100 random models, and its traceback achieves it.
func TestConformanceTwoWayOracle(t *testing.T) {
	forEachPlatform(t, func(t *testing.T, p platform.Platform) {
		w := p.PartitionWeights()
		r := rand.New(rand.NewSource(7))
		for trial := 0; trial < 100; trial++ {
			m := randomModel(r, trial)
			batch := 1 << uint(r.Intn(4))
			shapes, err := m.Shapes(batch)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			amounts := make([]comm.LayerAmounts, len(shapes))
			var sh tensor.Shard
			for l := range shapes {
				amounts[l] = comm.Amounts(shapes[l], sh)
			}

			got, assign := partition.TwoWayWeighted(amounts, w)

			nl := len(amounts)
			want := math.Inf(1)
			for code := 0; code < 1<<uint(nl); code++ {
				a := make(partition.Assignment, nl)
				for b := 0; b < nl; b++ {
					if code&(1<<uint(b)) != 0 {
						a[b] = comm.MP
					}
				}
				if c := partition.AssignmentCostWeighted(amounts, a, w); c < want {
					want = c
				}
			}
			if !almostEq(got, want) {
				t.Errorf("trial %d (%s, batch %d): TwoWayWeighted=%g oracle=%g", trial, m.Name, batch, got, want)
			}
			if ac := partition.AssignmentCostWeighted(amounts, assign, w); !almostEq(ac, got) {
				t.Errorf("trial %d (%s): traceback costs %g, dp claims %g", trial, m.Name, ac, got)
			}
		}
	})
}

// TestConformanceHierarchicalOracle is the per-platform Algorithm 2
// sanity bound: the level-greedy hierarchical search can tie but never
// beat the exhaustive minimum of the same weighted objective.
func TestConformanceHierarchicalOracle(t *testing.T) {
	forEachPlatform(t, func(t *testing.T, p platform.Platform) {
		w := p.PartitionWeights()
		r := rand.New(rand.NewSource(11))
		pool := runner.Serial()
		trials := 0
		for id := 0; trials < 60; id++ {
			m := randomModel(r, 1000+id)
			levels := 1 + r.Intn(3)
			if levels*len(m.Layers) > 12 {
				continue
			}
			trials++
			batch := 1 << uint(r.Intn(4))

			hier, err := partition.HierarchicalWeighted(m, batch, levels, w)
			if err != nil {
				t.Fatalf("%s: hierarchical: %v", m.Name, err)
			}
			bf, err := partition.BruteForceWeightedWith(pool, m, batch, levels, w)
			if err != nil {
				t.Fatalf("%s: brute force: %v", m.Name, err)
			}
			if hier.TotalElems < bf.TotalElems && !almostEq(hier.TotalElems, bf.TotalElems) {
				t.Errorf("%s (batch %d, levels %d): Hierarchical %g beats BruteForce %g — oracle violated",
					m.Name, batch, levels, hier.TotalElems, bf.TotalElems)
			}
		}
	})
}

// TestConformanceSimulate: every platform's Arch simulates a real
// network to positive, finite, mutually distinct step times — the
// platforms must be different machines, not the same constants under
// three names.
func TestConformanceSimulate(t *testing.T) {
	m := nn.VGGA()
	steps := make(map[string]float64)
	forEachPlatform(t, func(t *testing.T, p platform.Platform) {
		plan, err := partition.HierarchicalWeighted(m, 64, 2, p.PartitionWeights())
		if err != nil {
			t.Fatal(err)
		}
		topo, err := p.NewTopology(p.Topologies()[0], 2, p.DefaultLinkMbps())
		if err != nil {
			t.Fatal(err)
		}
		arch := sim.Arch{Mem: p.Memory(), Comp: p.Compute(), NoC: topo, DType: tensor.Float32}
		stats, err := sim.Simulate(m, plan, arch)
		if err != nil {
			t.Fatalf("Simulate: %v", err)
		}
		if stats.StepSeconds <= 0 || math.IsNaN(stats.StepSeconds) || math.IsInf(stats.StepSeconds, 0) {
			t.Fatalf("StepSeconds = %g", stats.StepSeconds)
		}
		if stats.EnergyTotal() <= 0 {
			t.Errorf("EnergyTotal = %g", stats.EnergyTotal())
		}
		steps[p.Name()] = stats.StepSeconds
	})
	seen := make(map[float64]string)
	for name, s := range steps {
		if prev, dup := seen[s]; dup {
			t.Errorf("platforms %s and %s simulate to identical step time %g", prev, name, s)
		}
		seen[s] = name
	}
}

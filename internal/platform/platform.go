// Package platform abstracts the accelerator platform the HyPar
// evaluation runs on. The paper fixes the platform to an HMC-based
// array (Eyeriss-style row-stationary units on HMC logic dies, H-tree
// interconnect), but the partition algorithms and the event-driven
// simulator are platform-agnostic — only the cost models are hardwired.
// A Platform bundles exactly those cost models:
//
//   - Compute: per-node compute time and local-memory traffic shaping;
//   - Memory: local-memory timing, capacity and the energy table;
//   - topology construction: which NoC fabrics the platform's array
//     interconnect supports, and its native defaults;
//   - PartitionWeights: how the platform scales the three communication
//     classes of the partition DP's objective.
//
// Three platforms are registered by default: "hmc" (the paper's
// evaluation platform), "gpu-hbm" (a V100-class HBM accelerator on an
// NVLink-style torus) and "tpu-systolic" (a TPU-class weight-stationary
// array on an ICI-style torus). Additional platforms register through
// Register.
package platform

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/nn"
	"repro/internal/noc"
	"repro/internal/partition"
)

// ErrPlatform reports an unknown platform or an invalid platform
// configuration.
var ErrPlatform = errors.New("platform: invalid platform")

// DefaultName is the platform an empty name means everywhere a
// platform is named: the paper's HMC-based array.
const DefaultName = "hmc"

// CanonicalName maps the empty platform name to DefaultName and leaves
// every other name untouched. Every layer that resolves a possibly
// empty platform name goes through here (or Resolve), so the fallback
// lives in exactly one place.
func CanonicalName(name string) string {
	if name == "" {
		return DefaultName
	}
	return name
}

// Resolve is ByName with the empty-name default applied: the one
// resolution path from a config's platform name to its Platform.
func Resolve(name string) (Platform, error) {
	return ByName(CanonicalName(name))
}

// Compute models one accelerator node's compute engine: how long a
// layer phase's MACs take, and how many local-memory bytes the phase
// moves. internal/pe (row-stationary), internal/gpu (SIMT occupancy)
// and internal/systolic (weight-stationary) implement it.
type Compute interface {
	// ComputeTime returns the seconds one node needs for the given
	// number of multiply-accumulates of the layer.
	ComputeTime(macs float64, s nn.LayerShapes) float64
	// DRAMTraffic returns the local-memory bytes one node moves for one
	// phase of the layer given its operand and result footprints.
	DRAMTraffic(s nn.LayerShapes, operandBytes, resultBytes float64) float64
	// Validate checks the compute configuration.
	Validate() error
}

// Memory models one accelerator node's local memory and the platform's
// energy cost table. internal/hmc's Config implements it; the GPU and
// TPU platforms reuse the same structure with HBM constants.
type Memory interface {
	// DRAMTime returns the seconds to stream the bytes through the
	// node's local-memory bandwidth.
	DRAMTime(bytes float64) float64
	// DRAMEnergy returns the joules of accessing the bytes locally.
	DRAMEnergy(bytes float64) float64
	// SRAMEnergy returns the joules of the given 32-bit buffer accesses.
	SRAMEnergy(accesses float64) float64
	// MACEnergy returns the joules of the given multiply-accumulates.
	MACEnergy(macs float64) float64
	// AddEnergy returns the joules of the given 32-bit additions.
	AddEnergy(adds float64) float64
	// LinkEnergy returns the joules of moving the bytes across an
	// inter-node link.
	LinkEnergy(bytes float64) float64
	// Fits reports whether a working set fits the node's capacity.
	Fits(bytes float64) bool
	// Validate checks the memory configuration.
	Validate() error
}

// Platform bundles the cost models of one accelerator platform.
type Platform interface {
	// Name is the wire name the config, CLI and service select by.
	Name() string
	// Describe is a one-line human description for listings.
	Describe() string
	// Compute returns the per-node compute cost model.
	Compute() Compute
	// Memory returns the per-node memory and energy cost model.
	Memory() Memory
	// Topologies lists the supported interconnect names; the first
	// entry is the platform's native default.
	Topologies() []string
	// DefaultLinkMbps is the platform's native per-link bandwidth in
	// megabits per second.
	DefaultLinkMbps() float64
	// NewTopology builds the named interconnect for 2^levels nodes at
	// the given link bandwidth.
	NewTopology(name string, levels int, linkMbps float64) (noc.Topology, error)
	// PartitionWeights returns the platform's scaling of the partition
	// DP's three communication classes.
	PartitionWeights() partition.Weights
	// Validate checks the platform's parameter set.
	Validate() error
}

// registry holds the named platforms.
var registry = struct {
	mu sync.RWMutex
	m  map[string]Platform
}{m: make(map[string]Platform)}

// Register adds a platform under its Name. Registering a nil platform,
// an empty name or a duplicate name panics: registration happens at
// init time and a collision is a programming error.
func Register(p Platform) {
	if p == nil || p.Name() == "" {
		panic("platform: Register with nil platform or empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[p.Name()]; dup {
		panic(fmt.Sprintf("platform: duplicate Register(%q)", p.Name()))
	}
	registry.m[p.Name()] = p
}

// ByName resolves a registered platform.
func ByName(name string) (Platform, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	if p, ok := registry.m[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("%w: unknown platform %q (known: %v)", ErrPlatform, name, namesLocked())
}

// Names lists the registered platform names, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return namesLocked()
}

// namesLocked lists names under a held registry lock.
func namesLocked() []string {
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// newGenericTopology builds one of the fabrics every built-in
// platform's array can be wired with; platforms differ in which one is
// native (listed first in Topologies) and at what link bandwidth.
func newGenericTopology(name string, levels int, linkMbps float64) (noc.Topology, error) {
	switch name {
	case "htree":
		return noc.NewHTree(levels, linkMbps)
	case "torus":
		return noc.NewTorus(levels, linkMbps)
	case "ideal":
		return noc.NewIdeal(levels), nil
	default:
		return nil, fmt.Errorf("%w: unknown topology %q (htree, torus, ideal)", ErrPlatform, name)
	}
}

package platform_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/platform"
)

// mustAssignment resolves names into an Assignment or fails the test.
func mustAssignment(t *testing.T, names ...string) platform.Assignment {
	t.Helper()
	per := make([]platform.Platform, len(names))
	for i, n := range names {
		p, err := platform.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		per[i] = p
	}
	a, err := platform.NewAssignment(per)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestResolveFallback: the one resolution path from a possibly empty
// config name to a platform — empty means the paper's hmc everywhere.
func TestResolveFallback(t *testing.T) {
	if got := platform.CanonicalName(""); got != platform.DefaultName {
		t.Errorf("CanonicalName(\"\") = %q, want %q", got, platform.DefaultName)
	}
	if got := platform.CanonicalName("gpu-hbm"); got != "gpu-hbm" {
		t.Errorf("CanonicalName(gpu-hbm) = %q", got)
	}
	p, err := platform.Resolve("")
	if err != nil || p.Name() != platform.DefaultName {
		t.Errorf("Resolve(\"\") = %v, %v", p, err)
	}
	if _, err := platform.Resolve("quantum"); !errors.Is(err, platform.ErrPlatform) {
		t.Errorf("Resolve(quantum) error = %v, want ErrPlatform", err)
	}
}

// TestBuiltinAccessors: the exported constructors hand out the same
// instances the registry serves, so there is exactly one of each.
func TestBuiltinAccessors(t *testing.T) {
	for name, p := range map[string]platform.Platform{
		"hmc":          platform.HMC(),
		"gpu-hbm":      platform.GPUHBM(),
		"tpu-systolic": platform.TPUSystolic(),
	} {
		reg, err := platform.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p != reg {
			t.Errorf("%s accessor and registry disagree", name)
		}
	}
}

// TestRegisterPanics: registration collisions are programming errors
// and must fail loudly at init time, not shadow an existing platform.
func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("nil platform", func() { platform.Register(nil) })
	mustPanic("duplicate name", func() { platform.Register(platform.HMC()) })
}

// TestAssignmentAccessors covers the read surface of an Assignment:
// depth, per-level lookup, node platform, names and rendering.
func TestAssignmentAccessors(t *testing.T) {
	a := mustAssignment(t, "gpu-hbm", "hmc", "hmc")
	if a.Levels() != 3 {
		t.Errorf("Levels() = %d", a.Levels())
	}
	if a.At(0).Name() != "gpu-hbm" || a.At(2).Name() != "hmc" {
		t.Errorf("At() = %s, %s", a.At(0).Name(), a.At(2).Name())
	}
	if a.Node().Name() != "hmc" {
		t.Errorf("Node() = %s, want the deepest level's platform", a.Node().Name())
	}
	if a.IsUniform() {
		t.Error("mixed assignment reports uniform")
	}
	if got := strings.Join(a.Names(), "|"); got != "gpu-hbm|hmc|hmc" {
		t.Errorf("Names() = %q", got)
	}
	if a.String() != "gpu-hbm,hmc,hmc" {
		t.Errorf("String() = %q", a.String())
	}

	zero, err := platform.UniformAssignment(platform.HMC(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.String() != "hmc" {
		t.Errorf("zero-depth String() = %q, want the node name", zero.String())
	}
}

// TestAssignmentConstructorErrors: empty or nil per-level slots and
// negative depths are rejected with ErrPlatform.
func TestAssignmentConstructorErrors(t *testing.T) {
	if _, err := platform.NewAssignment(nil); !errors.Is(err, platform.ErrPlatform) {
		t.Errorf("NewAssignment(nil) error = %v", err)
	}
	if _, err := platform.NewAssignment([]platform.Platform{platform.HMC(), nil}); !errors.Is(err, platform.ErrPlatform) {
		t.Errorf("nil level error = %v", err)
	}
	if _, err := platform.UniformAssignment(nil, 2); !errors.Is(err, platform.ErrPlatform) {
		t.Errorf("UniformAssignment(nil) error = %v", err)
	}
	if _, err := platform.UniformAssignment(platform.HMC(), -1); !errors.Is(err, platform.ErrPlatform) {
		t.Errorf("negative depth error = %v", err)
	}
}

// TestAssignmentTail: a degraded plan keeps the bottom of the
// hierarchy, platforms included; out-of-range depths are rejected.
func TestAssignmentTail(t *testing.T) {
	a := mustAssignment(t, "gpu-hbm", "hmc", "hmc")
	tail, err := a.Tail(2)
	if err != nil {
		t.Fatal(err)
	}
	if tail.String() != "hmc,hmc" {
		t.Errorf("Tail(2) = %q", tail.String())
	}
	if tail.Node().Name() != "hmc" {
		t.Errorf("Tail node = %s", tail.Node().Name())
	}
	if full, err := a.Tail(3); err != nil || full.String() != a.String() {
		t.Errorf("Tail(full depth) = %q, %v", full.String(), err)
	}
	for _, depth := range []int{-1, 4} {
		if _, err := a.Tail(depth); !errors.Is(err, platform.ErrPlatform) {
			t.Errorf("Tail(%d) error = %v, want ErrPlatform", depth, err)
		}
	}
}

// TestAssignmentPerLevelModels: PartitionWeights and LevelMemories hand
// each stage that level's cost model — and LevelMemories is nil for a
// uniform assignment, the historical single-model accounting.
func TestAssignmentPerLevelModels(t *testing.T) {
	a := mustAssignment(t, "gpu-hbm", "hmc")
	ws := a.PartitionWeights()
	if len(ws) != 2 {
		t.Fatalf("PartitionWeights len = %d", len(ws))
	}
	if ws[0] != platform.GPUHBM().PartitionWeights() || ws[1] != platform.HMC().PartitionWeights() {
		t.Errorf("PartitionWeights = %v, want per-level platform weights", ws)
	}
	mems := a.LevelMemories()
	if len(mems) != 2 {
		t.Fatalf("LevelMemories len = %d", len(mems))
	}
	if mems[0] != platform.GPUHBM().Memory() || mems[1] != platform.HMC().Memory() {
		t.Error("LevelMemories not the per-level platform memories")
	}

	u, err := platform.UniformAssignment(platform.HMC(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.LevelMemories() != nil {
		t.Error("uniform LevelMemories != nil")
	}
	if len(u.PartitionWeights()) != 3 {
		t.Errorf("uniform PartitionWeights len = %d", len(u.PartitionWeights()))
	}
}

// TestAssignmentTopology: uniform assignments delegate to their
// platform (explicit names included), mixed ones build the composite
// fabric — whose levels, name, and out-of-range errors this pins.
func TestAssignmentTopology(t *testing.T) {
	u, err := platform.UniformAssignment(platform.HMC(), 2)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := u.NewTopology("torus", 800)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Levels() != 2 {
		t.Errorf("uniform Levels() = %d", topo.Levels())
	}
	if _, err := u.NewTopology("hypercube", 0); !errors.Is(err, platform.ErrPlatform) {
		t.Errorf("unknown topology error = %v", err)
	}

	a := mustAssignment(t, "gpu-hbm", "hmc", "hmc")
	mixed, err := a.NewTopology("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Levels() != 3 {
		t.Errorf("mixed Levels() = %d", mixed.Levels())
	}
	if got := mixed.Name(); got != "hetero(gpu-hbm,hmc,hmc)" {
		t.Errorf("mixed Name() = %q", got)
	}
	for _, level := range []int{-1, 3} {
		if _, err := mixed.TransferTime(level, 1e6); err == nil {
			t.Errorf("TransferTime(%d) accepted", level)
		}
		if _, err := mixed.LinkBytes(level, 1e6); err == nil {
			t.Errorf("LinkBytes(%d) accepted", level)
		}
	}
	lb, err := mixed.LinkBytes(0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	base, err := platform.GPUHBM().NewTopology("torus", 3, platform.GPUHBM().DefaultLinkMbps())
	if err != nil {
		t.Fatal(err)
	}
	baseLB, err := base.LinkBytes(0, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if want := baseLB + a.ConvertLinkBytes(0, 1e6); !almostEq(lb, want) {
		t.Errorf("mixed LinkBytes(0) = %g, want fabric %g + adapter %g", lb, baseLB, a.ConvertLinkBytes(0, 1e6))
	}

	// An explicit topology applies to every level; one a level's
	// platform cannot build is rejected with the level named.
	if _, err := a.NewTopology("hypercube", 0); !errors.Is(err, platform.ErrPlatform) {
		t.Errorf("mixed unknown topology error = %v", err)
	}
	if explicit, err := a.NewTopology("torus", 1600); err != nil || explicit.Levels() != 3 {
		t.Errorf("mixed explicit torus = %v, %v", explicit, err)
	}
}

// Heterogeneous-assignment conformance: the per-level partition DP must
// honor the same oracle bound as the single-platform one — mixed
// per-level weights are a different objective per level, so the
// DP-vs-exhaustive comparison gets its own run instead of trusting the
// uniform result to transfer — and the boundary cost model must charge
// platform seams (and only platform seams) monotonically.
package platform_test

import (
	"math/rand"
	"testing"

	"repro/internal/partition"
	"repro/internal/platform"
	"repro/internal/runner"
)

// randomMixedWeights draws one registered platform per level and
// returns the per-level partition weights, redrawing until at least two
// levels differ (depth permitting) so the trial actually exercises the
// mixed path.
func randomMixedWeights(r *rand.Rand, levels int) []partition.Weights {
	names := platform.Names()
	for {
		ws := make([]partition.Weights, levels)
		mixed := false
		first := r.Intn(len(names))
		for h := 0; h < levels; h++ {
			pick := r.Intn(len(names))
			p, err := platform.ByName(names[pick])
			if err != nil {
				panic(err)
			}
			ws[h] = p.PartitionWeights()
			if pick != first {
				mixed = true
			}
		}
		if mixed || levels < 2 {
			return ws
		}
	}
}

// TestConformanceMixedOracle is the per-level Algorithm 2 sanity bound:
// under mixed per-level weighted objectives, the level-greedy
// hierarchical search can tie but never beat the exhaustive minimum of
// the same objective.
func TestConformanceMixedOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pool := runner.Serial()
	trials := 0
	for id := 0; trials < 60; id++ {
		m := randomModel(r, 2000+id)
		levels := 2 + r.Intn(2)
		if levels*len(m.Layers) > 12 {
			continue
		}
		trials++
		batch := 1 << uint(r.Intn(4))
		ws := randomMixedWeights(r, levels)

		hier, err := partition.HierarchicalPerLevel(m, batch, ws)
		if err != nil {
			t.Fatalf("%s: hierarchical: %v", m.Name, err)
		}
		bf, err := partition.BruteForcePerLevelWith(pool, m, batch, ws)
		if err != nil {
			t.Fatalf("%s: brute force: %v", m.Name, err)
		}
		if hier.TotalElems < bf.TotalElems && !almostEq(hier.TotalElems, bf.TotalElems) {
			t.Errorf("%s (batch %d, levels %d, weights %v): HierarchicalPerLevel %g beats BruteForcePerLevel %g — oracle violated",
				m.Name, batch, levels, ws, hier.TotalElems, bf.TotalElems)
		}
	}
}

// TestBoundaryCostUniformIsFree: a uniform assignment has no platform
// seam, so no level reports a boundary and every conversion charge is
// exactly zero — the invariant that keeps single-platform arrays
// byte-identical to their historical cost accounting.
func TestBoundaryCostUniformIsFree(t *testing.T) {
	forEachPlatform(t, func(t *testing.T, p platform.Platform) {
		a, err := platform.UniformAssignment(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !a.IsUniform() {
			t.Fatal("uniform assignment reports mixed")
		}
		for h := 0; h < a.Levels(); h++ {
			if a.Boundary(h) {
				t.Errorf("level %d reports a boundary", h)
			}
			if dt := a.ConvertTime(h, 1e9); dt != 0 {
				t.Errorf("ConvertTime(%d, 1 GB) = %g, want 0", h, dt)
			}
			if lb := a.ConvertLinkBytes(h, 1e9); lb != 0 {
				t.Errorf("ConvertLinkBytes(%d, 1 GB) = %g, want 0", h, lb)
			}
		}
	})
}

// TestBoundaryCostMonotone: wherever adjacent levels differ, the
// adapter charge is strictly monotone in the crossed bytes, zero at
// zero bytes, and serialized at the slower side's native link rate;
// adjacent levels sharing a platform pay nothing even inside a mixed
// assignment.
func TestBoundaryCostMonotone(t *testing.T) {
	names := platform.Names()
	for _, upper := range names {
		for _, lower := range names {
			if upper == lower {
				continue
			}
			t.Run(upper+"/"+lower, func(t *testing.T) {
				pu, err := platform.ByName(upper)
				if err != nil {
					t.Fatal(err)
				}
				pl, err := platform.ByName(lower)
				if err != nil {
					t.Fatal(err)
				}
				// Seam at level 0 only: [upper, lower, lower].
				a, err := platform.NewAssignment([]platform.Platform{pu, pl, pl})
				if err != nil {
					t.Fatal(err)
				}
				if !a.Boundary(0) {
					t.Fatal("seam level reports no boundary")
				}
				if a.Boundary(1) || a.Boundary(2) {
					t.Error("same-platform levels report a boundary")
				}
				if dt := a.ConvertTime(1, 1e9); dt != 0 {
					t.Errorf("same-platform ConvertTime = %g, want 0", dt)
				}

				slow := pu.DefaultLinkMbps()
				if b := pl.DefaultLinkMbps(); b < slow {
					slow = b
				}
				if got, want := a.ConvertBps(0), slow*1e6/8; got != want {
					t.Errorf("ConvertBps(0) = %g, want slower side's %g", got, want)
				}

				if dt := a.ConvertTime(0, 0); dt != 0 {
					t.Errorf("ConvertTime(0, 0 bytes) = %g, want 0", dt)
				}
				prev := 0.0
				for _, bytes := range []float64{1, 1e3, 1e6, 1e9} {
					dt := a.ConvertTime(0, bytes)
					if dt <= prev {
						t.Errorf("ConvertTime(0, %g) = %g, not strictly above %g — not monotone in crossed bytes",
							bytes, dt, prev)
					}
					prev = dt
				}

				// Link bytes: one adapter pass per pair at the seam, 2^h
				// pairs at level h.
				if got, want := a.ConvertLinkBytes(0, 1e6), 1e6; got != want {
					t.Errorf("ConvertLinkBytes(0, 1 MB) = %g, want %g", got, want)
				}
				if lb := a.ConvertLinkBytes(1, 1e6); lb != 0 {
					t.Errorf("same-platform ConvertLinkBytes = %g, want 0", lb)
				}

				// The composite fabric's transfer time includes the
				// adapter charge on top of the seam level's own fabric.
				topo, err := a.NewTopology("", 0)
				if err != nil {
					t.Fatal(err)
				}
				base, err := pu.NewTopology(pu.Topologies()[0], 3, pu.DefaultLinkMbps())
				if err != nil {
					t.Fatal(err)
				}
				mixedT, err := topo.TransferTime(0, 1e6)
				if err != nil {
					t.Fatal(err)
				}
				baseT, err := base.TransferTime(0, 1e6)
				if err != nil {
					t.Fatal(err)
				}
				if want := baseT + a.ConvertTime(0, 1e6); !almostEq(mixedT, want) {
					t.Errorf("composite TransferTime(0, 1 MB) = %g, want fabric %g + adapter %g",
						mixedT, baseT, a.ConvertTime(0, 1e6))
				}
			})
		}
	}
}

package platform

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/hmc"
	"repro/internal/noc"
	"repro/internal/partition"
	"repro/internal/pe"
	"repro/internal/systolic"
)

// basic is the shared implementation of the built-in platforms: a named
// bundle of cost models with a fixed topology menu.
type basic struct {
	name     string
	desc     string
	comp     Compute
	mem      Memory
	topos    []string // first entry is the native default
	linkMbps float64
	weights  partition.Weights
}

// Name implements Platform.
func (b *basic) Name() string { return b.name }

// Describe implements Platform.
func (b *basic) Describe() string { return b.desc }

// Compute implements Platform.
func (b *basic) Compute() Compute { return b.comp }

// Memory implements Platform.
func (b *basic) Memory() Memory { return b.mem }

// Topologies implements Platform.
func (b *basic) Topologies() []string {
	out := make([]string, len(b.topos))
	copy(out, b.topos)
	return out
}

// DefaultLinkMbps implements Platform.
func (b *basic) DefaultLinkMbps() float64 { return b.linkMbps }

// NewTopology implements Platform.
func (b *basic) NewTopology(name string, levels int, linkMbps float64) (noc.Topology, error) {
	for _, t := range b.topos {
		if t == name {
			return newGenericTopology(name, levels, linkMbps)
		}
	}
	return nil, fmt.Errorf("%w: platform %q does not support topology %q (supported: %v)",
		ErrPlatform, b.name, name, b.topos)
}

// PartitionWeights implements Platform.
func (b *basic) PartitionWeights() partition.Weights { return b.weights }

// Validate implements Platform.
func (b *basic) Validate() error {
	if err := b.comp.Validate(); err != nil {
		return err
	}
	if err := b.mem.Validate(); err != nil {
		return err
	}
	if len(b.topos) == 0 {
		return fmt.Errorf("%w: platform %q has no topologies", ErrPlatform, b.name)
	}
	if b.linkMbps <= 0 {
		return fmt.Errorf("%w: platform %q default link %g Mb/s", ErrPlatform, b.name, b.linkMbps)
	}
	return b.weights.Validate()
}

// HMC is the paper's evaluation platform: Eyeriss-style row-stationary
// units on HMC logic dies, natively wired as an H-tree with 1600 Mb/s
// serial links (paper §5-6.1).
func HMC() Platform { return hmcPlatform }

// GPUHBM is a V100-class HBM accelerator array: SIMT nodes over HBM2,
// natively wired as an NVLink-style torus (the DGX hybrid cube-mesh
// maps onto the torus model's contiguous-block cuts).
func GPUHBM() Platform { return gpuPlatform }

// TPUSystolic is a TPU-class array: weight-stationary 128×128 systolic
// matrix units over HBM, natively wired as an ICI-style 2D torus (the
// published pod interconnect).
func TPUSystolic() Platform { return tpuPlatform }

var (
	hmcPlatform = &basic{
		name:     "hmc",
		desc:     "HMC + Eyeriss-style row-stationary PU array on an H-tree (the paper's platform)",
		comp:     pe.Default(),
		mem:      hmc.Default(),
		topos:    []string{"htree", "torus", "ideal"},
		linkMbps: 1600, // paper §6.1: 1600 Mb/s serial links
		weights:  partition.UnitWeights(),
	}

	gpuPlatform = &basic{
		name: "gpu-hbm",
		desc: "V100-class HBM accelerator array on an NVLink-style torus",
		comp: gpu.Default(),
		// The hmc.Config structure doubles as the generic local-memory +
		// energy table; here it carries HBM2 constants: 900 GB/s and
		// 32 GB per node (V100 datasheet), ~3.9 pJ/bit HBM access ≈
		// 125 pJ/32 b, NVLink SerDes ~8 pJ/bit ≈ 256 pJ/32 b, with the
		// Horowitz arithmetic constants shared across platforms so the
		// energy comparison isolates memory and fabric differences.
		mem: hmc.Config{
			BandwidthGBs: 900,
			CapacityGB:   32,
			EnergyAddPJ:  0.9,
			EnergyMulPJ:  3.7,
			EnergySRAMPJ: 5.0,
			EnergyDRAMPJ: 125,
			EnergyLinkPJ: 256,
		},
		topos:    []string{"torus", "htree", "ideal"},
		linkMbps: 200000, // NVLink 2.0: 25 GB/s per link per direction
		// NCCL-style ring allreduce streams gradient partial sums
		// through both torus directions concurrently, halving the
		// effective per-link gradient volume relative to the pairwise
		// exchange the paper's recursion assumes.
		weights: partition.Weights{Grad: 0.5, Psum: 1, Convert: 1},
	}

	tpuPlatform = &basic{
		name: "tpu-systolic",
		desc: "TPU-class weight-stationary systolic array on an ICI-style torus",
		comp: systolic.Default(),
		// HBM constants per node: 900 GB/s and 16 GB (TPU v3-class),
		// HBM access ≈ 125 pJ/32 b, ICI SerDes ~10 pJ/bit ≈
		// 320 pJ/32 b, shared Horowitz arithmetic constants.
		mem: hmc.Config{
			BandwidthGBs: 900,
			CapacityGB:   16,
			EnergyAddPJ:  0.9,
			EnergyMulPJ:  3.7,
			EnergySRAMPJ: 5.0,
			EnergyDRAMPJ: 125,
			EnergyLinkPJ: 320,
		},
		topos:    []string{"torus", "htree", "ideal"},
		linkMbps: 496000, // TPU v2 ICI link rate, 496 Gb/s
		// Partial sums accumulate inside the systolic array as
		// activations stream, so the mp output aggregation exchanges
		// already-reduced halves: the effective partial-sum volume
		// crossing the fabric is half the paper's A(F_{l+1}) charge.
		weights: partition.Weights{Grad: 1, Psum: 0.5, Convert: 1},
	}
)

func init() {
	Register(hmcPlatform)
	Register(gpuPlatform)
	Register(tpuPlatform)
}

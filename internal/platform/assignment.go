package platform

import (
	"fmt"
	"strings"

	"repro/internal/noc"
	"repro/internal/partition"
)

// Assignment maps every level of the 2^H accelerator hierarchy to the
// platform serving it. Level h's entry is the fabric (and cost models)
// that carry the level-h cut's exchanges; the deepest level's platform
// is the node platform — the one whose accelerators hold the shards and
// do the compute. A uniform assignment (every level the same platform)
// is exactly the historical single-platform array; a mixed one models a
// heterogeneous fleet such as HMC leaves under a GPU interposer.
//
// Where two adjacent levels run different platforms, data crossing the
// upper level's cut passes a protocol-conversion adapter; Assignment
// charges that boundary explicitly (ConvertTime, ConvertLinkBytes), so
// a mixed array pays for its seams instead of getting both fabrics'
// best sides for free.
type Assignment struct {
	levels []Platform // one per hierarchy level, root cut (level 0) first
	node   Platform   // the accelerator (node) platform
}

// NewAssignment builds the assignment from one platform per hierarchy
// level, root cut first. The deepest level's platform becomes the node
// platform. At least one level is required — use UniformAssignment for
// a zero-depth (single accelerator) array.
func NewAssignment(perLevel []Platform) (Assignment, error) {
	if len(perLevel) == 0 {
		return Assignment{}, fmt.Errorf("%w: empty per-level assignment", ErrPlatform)
	}
	levels := make([]Platform, len(perLevel))
	for h, p := range perLevel {
		if p == nil {
			return Assignment{}, fmt.Errorf("%w: nil platform at level %d", ErrPlatform, h)
		}
		levels[h] = p
	}
	return Assignment{levels: levels, node: levels[len(levels)-1]}, nil
}

// UniformAssignment assigns one platform to every level of a
// levels-deep hierarchy (levels may be zero: a single accelerator).
func UniformAssignment(p Platform, levels int) (Assignment, error) {
	if p == nil {
		return Assignment{}, fmt.Errorf("%w: nil platform", ErrPlatform)
	}
	if levels < 0 {
		return Assignment{}, fmt.Errorf("%w: negative hierarchy depth %d", ErrPlatform, levels)
	}
	per := make([]Platform, levels)
	for h := range per {
		per[h] = p
	}
	return Assignment{levels: per, node: p}, nil
}

// Levels returns the hierarchy depth the assignment covers.
func (a Assignment) Levels() int { return len(a.levels) }

// At returns the platform serving hierarchy level h.
func (a Assignment) At(h int) Platform { return a.levels[h] }

// Node returns the accelerator platform — the deepest level's, the one
// whose nodes do the compute and hold the working set.
func (a Assignment) Node() Platform { return a.node }

// IsUniform reports whether every level runs the node platform, i.e.
// the assignment degenerates to the historical single-platform array.
func (a Assignment) IsUniform() bool {
	for _, p := range a.levels {
		if p.Name() != a.node.Name() {
			return false
		}
	}
	return true
}

// Names returns the per-level platform names, root cut first.
func (a Assignment) Names() []string {
	names := make([]string, len(a.levels))
	for h, p := range a.levels {
		names[h] = p.Name()
	}
	return names
}

// String renders the assignment as its comma-separated per-level names.
func (a Assignment) String() string {
	if len(a.levels) == 0 {
		return a.node.Name()
	}
	return strings.Join(a.Names(), ",")
}

// Tail returns the assignment of the deepest depth levels — the
// sub-array a degraded plan snaps to keeps the bottom of the hierarchy,
// platforms included.
func (a Assignment) Tail(depth int) (Assignment, error) {
	if depth < 0 || depth > len(a.levels) {
		return Assignment{}, fmt.Errorf("%w: tail depth %d of a %d-level assignment",
			ErrPlatform, depth, len(a.levels))
	}
	return Assignment{levels: a.levels[len(a.levels)-depth:], node: a.node}, nil
}

// PartitionWeights returns each level's platform cost weights, root cut
// first — the per-level objective the partition DP scores each cut
// with.
func (a Assignment) PartitionWeights() []partition.Weights {
	ws := make([]partition.Weights, len(a.levels))
	for h, p := range a.levels {
		ws[h] = p.PartitionWeights()
	}
	return ws
}

// LevelMemories returns each level's memory/energy model for link
// accounting, or nil for a uniform assignment (the node model covers
// every level, the historical single-platform accounting).
func (a Assignment) LevelMemories() []Memory {
	if a.IsUniform() {
		return nil
	}
	mems := make([]Memory, len(a.levels))
	for h, p := range a.levels {
		mems[h] = p.Memory()
	}
	return mems
}

// Boundary reports whether transfers at hierarchy level h cross a
// platform boundary: the level below (h+1) runs a different platform,
// so bytes entering level h's fabric pass a conversion adapter. The
// deepest level sits directly on the node platform and never pays.
func (a Assignment) Boundary(h int) bool {
	return h >= 0 && h+1 < len(a.levels) && a.levels[h].Name() != a.levels[h+1].Name()
}

// ConvertBps returns the boundary adapter's per-pair bandwidth at level
// h in bytes/s, or 0 when level h has no boundary. The adapter is a
// store-and-forward protocol converter serialized at the slower side's
// native link rate — it does not enjoy either fabric's fat-tree
// scaling, which is exactly why crossing a platform seam hurts.
func (a Assignment) ConvertBps(h int) float64 {
	if !a.Boundary(h) {
		return 0
	}
	mbps := a.levels[h].DefaultLinkMbps()
	if below := a.levels[h+1].DefaultLinkMbps(); below < mbps {
		mbps = below
	}
	return mbps * 1e6 / 8
}

// ConvertTime returns the extra seconds one pair exchange of exchBytes
// at level h spends in the boundary adapter: zero when adjacent levels
// share a platform, exchBytes over the adapter bandwidth otherwise
// (strictly monotone in the crossed bytes).
func (a Assignment) ConvertTime(h int, exchBytes float64) float64 {
	bps := a.ConvertBps(h)
	if bps == 0 || exchBytes <= 0 {
		return 0
	}
	return exchBytes / bps
}

// ConvertLinkBytes returns the extra link bytes the boundary adapter
// moves when all 2^h pairs at level h exchange exchBytes each: one
// adapter pass per pair, charged on level h's energy model. Zero when
// level h has no boundary.
func (a Assignment) ConvertLinkBytes(h int, exchBytes float64) float64 {
	if !a.Boundary(h) || exchBytes <= 0 {
		return 0
	}
	pairs := float64(int64(1) << uint(h))
	return pairs * exchBytes
}

// NewTopology builds the assignment's interconnect. A uniform
// assignment delegates to its platform exactly as the single-platform
// path always has (name/link zero-values resolve to the platform's
// native defaults). A mixed assignment builds each level's fabric from
// that level's platform — name and linkMbps, when set, apply to every
// level and each level's platform must support them; when unset, each
// level uses its platform's native topology and link rate — and wraps
// them in a composite that answers level h with level h's fabric plus
// the boundary adapter charge.
func (a Assignment) NewTopology(name string, linkMbps float64) (noc.Topology, error) {
	depth := len(a.levels)
	if a.IsUniform() {
		tname := name
		if tname == "" {
			tname = a.node.Topologies()[0]
		}
		link := linkMbps
		if link == 0 {
			link = a.node.DefaultLinkMbps()
		}
		return a.node.NewTopology(tname, depth, link)
	}
	per := make([]noc.Topology, depth)
	for h, p := range a.levels {
		tname := name
		if tname == "" {
			tname = p.Topologies()[0]
		}
		link := linkMbps
		if link == 0 {
			link = p.DefaultLinkMbps()
		}
		topo, err := p.NewTopology(tname, depth, link)
		if err != nil {
			return nil, fmt.Errorf("%w (level %d)", err, h)
		}
		per[h] = topo
	}
	return &heteroTopology{assign: a, per: per}, nil
}

// heteroTopology is the composite fabric of a mixed assignment: level h
// transfers ride level h's platform fabric (built at full hierarchy
// depth so fat-tree scaling laws see the real array size) and pay the
// boundary adapter wherever the platform changes between adjacent
// levels.
type heteroTopology struct {
	assign Assignment
	per    []noc.Topology
}

// Name implements noc.Topology.
func (t *heteroTopology) Name() string { return "hetero(" + t.assign.String() + ")" }

// Levels implements noc.Topology.
func (t *heteroTopology) Levels() int { return len(t.per) }

// TransferTime implements noc.Topology: the level's own fabric time
// plus the boundary adapter's conversion time.
func (t *heteroTopology) TransferTime(level int, exchBytes float64) (float64, error) {
	if level < 0 || level >= len(t.per) {
		return 0, fmt.Errorf("%w: level %d outside hierarchy of depth %d", ErrPlatform, level, len(t.per))
	}
	dt, err := t.per[level].TransferTime(level, exchBytes)
	if err != nil {
		return 0, err
	}
	return dt + t.assign.ConvertTime(level, exchBytes), nil
}

// LinkBytes implements noc.Topology: the level's own link bytes plus
// one adapter pass per pair at a platform boundary.
func (t *heteroTopology) LinkBytes(level int, exchBytes float64) (float64, error) {
	if level < 0 || level >= len(t.per) {
		return 0, fmt.Errorf("%w: level %d outside hierarchy of depth %d", ErrPlatform, level, len(t.per))
	}
	lb, err := t.per[level].LinkBytes(level, exchBytes)
	if err != nil {
		return 0, err
	}
	return lb + t.assign.ConvertLinkBytes(level, exchBytes), nil
}

package lru

import (
	"fmt"
	"sync"
	"testing"
)

// TestLRUOrder pins the recency contract: Get refreshes, eviction takes
// the least recently used entry.
func TestLRUOrder(t *testing.T) {
	c := New[string, string](2)
	c.Put("a", "A")
	c.Put("b", "B")
	if v, ok := c.Get("a"); !ok || v != "A" {
		t.Fatal("a missing")
	}
	c.Put("c", "C") // evicts b (a was refreshed)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted out of LRU order")
	}
	if c.Len() != 2 || c.Max() != 2 {
		t.Errorf("Len=%d Max=%d", c.Len(), c.Max())
	}
	// Put on an existing key refreshes the value in place.
	c.Put("a", "A2")
	if v, _ := c.Get("a"); v != "A2" {
		t.Errorf("refresh lost: %q", v)
	}
	if c.Len() != 2 {
		t.Errorf("refresh grew the cache to %d", c.Len())
	}
}

// TestLRUDisabled pins the max <= 0 contract: nothing is retained, and
// GetOrAdd still builds every call.
func TestLRUDisabled(t *testing.T) {
	c := New[string, int](-1)
	c.Put("x", 1)
	if _, ok := c.Get("x"); ok || c.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
	builds := 0
	for i := 0; i < 3; i++ {
		if _, built := c.GetOrAdd("x", func() int { builds++; return 7 }); !built {
			t.Error("disabled GetOrAdd claimed a hit")
		}
	}
	if builds != 3 {
		t.Errorf("builds=%d, want 3", builds)
	}
}

// TestGetOrAddOnce proves concurrent misses of one key build exactly
// once (build runs under the lock).
func TestGetOrAddOnce(t *testing.T) {
	c := New[int, int](8)
	var builds, hits int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, built := c.GetOrAdd(1, func() int { builds++; return 42 })
			mu.Lock()
			if !built {
				hits++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("builds=%d for 16 concurrent GetOrAdds, want 1", builds)
	}
	if hits != 15 {
		t.Errorf("hits=%d, want 15", hits)
	}
	if v, ok := c.Get(1); !ok || v != 42 {
		t.Errorf("Get(1) = %d, %v", v, ok)
	}
}

// TestLRUBoundUnderChurn floods the cache and checks the bound holds.
func TestLRUBoundUnderChurn(t *testing.T) {
	const max = 16
	c := New[string, int](max)
	for i := 0; i < 40*max; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
		if n := c.Len(); n > max {
			t.Fatalf("len %d exceeds bound %d after %d puts", n, max, i+1)
		}
	}
	if c.Len() != max {
		t.Errorf("steady-state len %d, want %d", c.Len(), max)
	}
}

// TestRemove drops one entry and leaves the rest.
func TestRemove(t *testing.T) {
	c := New[int, string](4)
	c.Put(1, "a")
	c.Put(2, "b")
	if !c.Remove(1) {
		t.Fatal("Remove(1) reported absent")
	}
	if c.Remove(1) {
		t.Fatal("second Remove(1) reported present")
	}
	if _, ok := c.Get(1); ok {
		t.Error("removed entry still present")
	}
	if v, ok := c.Get(2); !ok || v != "b" {
		t.Errorf("Get(2) = %q, %v after removing 1", v, ok)
	}
}

// TestRemoveIf drops entries by predicate and counts them.
func TestRemoveIf(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 8; i++ {
		c.Put(i, i)
	}
	if n := c.RemoveIf(func(k int) bool { return k%2 == 0 }); n != 4 {
		t.Fatalf("RemoveIf dropped %d, want 4", n)
	}
	if c.Len() != 4 {
		t.Fatalf("len %d after RemoveIf, want 4", c.Len())
	}
	for i := 0; i < 8; i++ {
		_, ok := c.Get(i)
		if want := i%2 == 1; ok != want {
			t.Errorf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

// TestOnEvictHook checks the hook fires exactly once per dropped entry
// — capacity evictions, Remove and RemoveIf — and not for refreshes,
// and that it can safely re-enter the cache (it runs unlocked).
func TestOnEvictHook(t *testing.T) {
	c := New[int, string](2)
	var evicted []int
	c.SetOnEvict(func(k int, v string) {
		evicted = append(evicted, k)
		c.Len() // re-entrancy: must not deadlock
	})
	c.Put(1, "a")
	c.Put(1, "a2") // refresh: no eviction
	c.Put(2, "b")
	c.Put(3, "c") // evicts 1 (LRU)
	c.Remove(2)
	c.RemoveIf(func(k int) bool { return k == 3 })
	want := []int{1, 2, 3}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %v, want %v", evicted, want)
	}
	for i := range want {
		if evicted[i] != want[i] {
			t.Fatalf("evicted %v, want %v", evicted, want)
		}
	}
}

// TestSizedBudget pins the cost-aware bound: the summed cost never
// exceeds the budget, eviction is LRU over cost, and an entry larger
// than the whole budget is refused without disturbing residents.
func TestSizedBudget(t *testing.T) {
	cost := func(k, v string) int { return len(k) + len(v) }
	c := NewSized[string, string](20, cost)
	c.Put("a", "1234") // cost 5
	c.Put("b", "1234") // cost 5
	c.Put("c", "1234") // cost 5 → total 15
	if got := c.Cost(); got != 15 {
		t.Fatalf("Cost=%d, want 15", got)
	}
	c.Get("a")             // refresh a
	c.Put("d", "12345678") // cost 9: must evict b (LRU), total 20
	if got := c.Cost(); got > 20 {
		t.Fatalf("Cost=%d exceeds the 20 budget", got)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; LRU should have shed it first")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("refreshed a was evicted out of order")
	}
	// An entry pricier than the entire budget is never stored and never
	// flushes the cache to make room.
	before := c.Len()
	c.Put("huge", string(make([]byte, 64)))
	if _, ok := c.Get("huge"); ok {
		t.Error("over-budget entry was stored")
	}
	if c.Len() != before {
		t.Errorf("over-budget Put disturbed residents: Len %d → %d", before, c.Len())
	}
}

// TestSizedRefreshCost pins that refreshing a key re-prices it: the
// budget accounts the new cost and sheds colder entries if the refresh
// grew past the bound.
func TestSizedRefreshCost(t *testing.T) {
	cost := func(k, v string) int { return len(v) }
	c := NewSized[string, string](10, cost)
	c.Put("a", "12")        // 2
	c.Put("b", "12")        // 2
	c.Put("c", "12")        // 2 → total 6
	c.Put("c", "123456789") // c grows to 9: a and b must go
	if got := c.Cost(); got > 10 {
		t.Fatalf("Cost=%d exceeds the 10 budget after refresh", got)
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("refreshed entry evicted")
	}
	if c.Len() != 1 {
		t.Errorf("Len=%d, want 1 (a and b shed to fit c's refresh)", c.Len())
	}
}

// TestSizedEvictHook pins that cost-driven eviction fires the OnEvict
// hook exactly once per shed entry, in eviction order.
func TestSizedEvictHook(t *testing.T) {
	cost := func(k, v string) int { return len(v) }
	c := NewSized[string, string](6, cost)
	var evicted []string
	c.SetOnEvict(func(k, _ string) { evicted = append(evicted, k) })
	c.Put("a", "123")     // 3
	c.Put("b", "123")     // 3
	c.Put("c", "1234567") // 7 > 6: refused, no evictions
	if len(evicted) != 0 {
		t.Fatalf("refused Put evicted %v", evicted)
	}
	c.Put("d", "12345") // 5: evicts a then b
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Fatalf("evicted %v, want [a b]", evicted)
	}
}

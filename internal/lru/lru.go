// Package lru provides the one bounded, thread-safe LRU cache the rest
// of the repository builds on: the service's sharded response cache,
// its decoded-model intern cache, the shape-inference memo in
// internal/nn, and the experiments session cache are all instances of
// Cache rather than hand-rolled copies — eviction and locking
// invariants live here once, not per call site.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded, thread-safe LRU keyed by any comparable type.
// The default bound is the entry count; NewSized installs a cost
// function instead, making the bound a total-cost budget (e.g. bytes).
// A bound <= 0 disables storage: every Get misses and every Put is
// dropped, while GetOrAdd still builds (it just does not retain).
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	items   map[K]*list.Element
	onEvict func(K, V)
	cost    func(K, V) int // nil = 1 per entry (max counts entries)
	total   int            // summed cost of resident entries
}

// entry is one cached value with its key (needed for eviction) and the
// cost charged when it was inserted, so refresh and eviction release
// exactly what was charged even if the cost function is not pure.
type entry[K comparable, V any] struct {
	key  K
	val  V
	cost int
}

// New builds a cache bounded to max entries.
func New[K comparable, V any](max int) *Cache[K, V] {
	return &Cache[K, V]{max: max, ll: list.New(), items: make(map[K]*list.Element)}
}

// NewSized builds a cache bounded to a total cost budget instead of an
// entry count: cost prices each entry (clamped to >= 1) and the cache
// evicts least-recently-used entries while the summed cost exceeds
// maxCost. An entry whose own cost exceeds the whole budget is not
// stored at all — caching it would require flushing everything else
// for a value too big to keep. The service's raw-bytes response cache
// uses this with cost = key bytes + body bytes.
func NewSized[K comparable, V any](maxCost int, cost func(K, V) int) *Cache[K, V] {
	c := New[K, V](maxCost)
	c.cost = cost
	return c
}

// costOf prices one entry: the configured cost function clamped to at
// least 1 (a zero/negative cost would let unbounded entries accumulate
// under a finite budget), or 1 per entry when no function is set.
func (c *Cache[K, V]) costOf(key K, val V) int {
	if c.cost == nil {
		return 1
	}
	if n := c.cost(key, val); n > 1 {
		return n
	}
	return 1
}

// SetOnEvict installs a hook invoked once per entry leaving the cache —
// capacity eviction, Remove, or RemoveIf (not value refreshes). The
// hook runs after the cache lock is released, so it may use the cache's
// own methods; install it before the cache is shared across goroutines.
// Hooks for entries dropped by one operation run in eviction order.
func (c *Cache[K, V]) SetOnEvict(fn func(K, V)) { c.onEvict = fn }

// notify fires the eviction hook for every dropped entry. Callers must
// NOT hold mu.
func (c *Cache[K, V]) notify(dropped []entry[K, V]) {
	if c.onEvict == nil {
		return
	}
	for _, e := range dropped {
		c.onEvict(e.key, e.val)
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts or refreshes the value, evicting the least recently used
// entries beyond the bound. A value too costly for the whole budget is
// dropped without disturbing resident entries.
func (c *Cache[K, V]) Put(key K, val V) {
	if c.max <= 0 {
		return
	}
	cost := c.costOf(key, val)
	if cost > c.max {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*entry[K, V])
		c.total += cost - e.cost
		e.val, e.cost = val, cost
		// A refresh can raise the entry's cost past the budget; shed
		// colder entries the same way an insert would.
		dropped := c.evict()
		c.mu.Unlock()
		c.notify(dropped)
		return
	}
	dropped := c.insert(key, val, cost)
	c.mu.Unlock()
	c.notify(dropped)
}

// GetOrAdd returns the cached value for key, building (and caching) it
// with build on a miss. build runs under the cache lock, which makes
// "exactly one build per key" exact under concurrent misses — keep it
// cheap. The second result reports whether build ran. With a disabled
// bound every call builds and nothing is retained.
func (c *Cache[K, V]) GetOrAdd(key K, build func() V) (V, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry[K, V]).val
		c.mu.Unlock()
		return val, false
	}
	val := build()
	var dropped []entry[K, V]
	if cost := c.costOf(key, val); c.max > 0 && cost <= c.max {
		dropped = c.insert(key, val, cost)
	}
	c.mu.Unlock()
	c.notify(dropped)
	return val, true
}

// Remove drops the entry for key, reporting whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	el, ok := c.items[key]
	var dropped []entry[K, V]
	if ok {
		c.ll.Remove(el)
		delete(c.items, key)
		e := el.Value.(*entry[K, V])
		c.total -= e.cost
		dropped = append(dropped, *e)
	}
	c.mu.Unlock()
	c.notify(dropped)
	return ok
}

// RemoveIf drops every entry whose key satisfies pred and returns how
// many were dropped. pred runs under the cache lock — keep it cheap.
func (c *Cache[K, V]) RemoveIf(pred func(K) bool) int {
	c.mu.Lock()
	var dropped []entry[K, V]
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry[K, V])
		if pred(e.key) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.total -= e.cost
			dropped = append(dropped, *e)
		}
		el = next
	}
	c.mu.Unlock()
	c.notify(dropped)
	return len(dropped)
}

// insert adds a fresh entry at the given cost and evicts past the
// bound, returning the dropped entries. Callers hold mu and have
// checked cost <= max.
func (c *Cache[K, V]) insert(key K, val V, cost int) []entry[K, V] {
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val, cost: cost})
	c.total += cost
	return c.evict()
}

// evict sheds least-recently-used entries while the summed cost is
// over the bound, returning them. Callers hold mu. The newest entry is
// never evicted: insert/Put guarantee its cost fits the budget alone,
// so the loop always terminates before reaching the front.
func (c *Cache[K, V]) evict() []entry[K, V] {
	var dropped []entry[K, V]
	for c.total > c.max && c.ll.Len() > 1 {
		last := c.ll.Back()
		c.ll.Remove(last)
		e := last.Value.(*entry[K, V])
		delete(c.items, e.key)
		c.total -= e.cost
		dropped = append(dropped, *e)
	}
	return dropped
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cost returns the summed cost of resident entries (the entry count
// when no cost function is set).
func (c *Cache[K, V]) Cost() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Max returns the configured bound.
func (c *Cache[K, V]) Max() int { return c.max }

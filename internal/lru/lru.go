// Package lru provides the one bounded, thread-safe LRU cache the rest
// of the repository builds on: the service's sharded response cache,
// its decoded-model intern cache, and the experiments session cache
// are all instances of Cache rather than hand-rolled copies — eviction
// and locking invariants live here once, not per call site.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded, thread-safe LRU keyed by any comparable type.
// The entry count (not value size) is the bound. A bound <= 0 disables
// storage: every Get misses and every Put is dropped, while GetOrAdd
// still builds (it just does not retain).
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element
}

// entry is one cached value with its key (needed for eviction).
type entry[K comparable, V any] struct {
	key K
	val V
}

// New builds a cache bounded to max entries.
func New[K comparable, V any](max int) *Cache[K, V] {
	return &Cache[K, V]{max: max, ll: list.New(), items: make(map[K]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts or refreshes the value, evicting the least recently used
// entries beyond the bound.
func (c *Cache[K, V]) Put(key K, val V) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = val
		return
	}
	c.insert(key, val)
}

// GetOrAdd returns the cached value for key, building (and caching) it
// with build on a miss. build runs under the cache lock, which makes
// "exactly one build per key" exact under concurrent misses — keep it
// cheap. The second result reports whether build ran. With a disabled
// bound every call builds and nothing is retained.
func (c *Cache[K, V]) GetOrAdd(key K, build func() V) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, false
	}
	val := build()
	if c.max > 0 {
		c.insert(key, val)
	}
	return val, true
}

// insert adds a fresh entry and evicts past the bound. Callers hold mu.
func (c *Cache[K, V]) insert(key K, val V) {
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry[K, V]).key)
	}
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Max returns the configured bound.
func (c *Cache[K, V]) Max() int { return c.max }

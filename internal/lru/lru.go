// Package lru provides the one bounded, thread-safe LRU cache the rest
// of the repository builds on: the service's sharded response cache,
// its decoded-model intern cache, the shape-inference memo in
// internal/nn, and the experiments session cache are all instances of
// Cache rather than hand-rolled copies — eviction and locking
// invariants live here once, not per call site.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded, thread-safe LRU keyed by any comparable type.
// The entry count (not value size) is the bound. A bound <= 0 disables
// storage: every Get misses and every Put is dropped, while GetOrAdd
// still builds (it just does not retain).
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	items   map[K]*list.Element
	onEvict func(K, V)
}

// entry is one cached value with its key (needed for eviction).
type entry[K comparable, V any] struct {
	key K
	val V
}

// New builds a cache bounded to max entries.
func New[K comparable, V any](max int) *Cache[K, V] {
	return &Cache[K, V]{max: max, ll: list.New(), items: make(map[K]*list.Element)}
}

// SetOnEvict installs a hook invoked once per entry leaving the cache —
// capacity eviction, Remove, or RemoveIf (not value refreshes). The
// hook runs after the cache lock is released, so it may use the cache's
// own methods; install it before the cache is shared across goroutines.
// Hooks for entries dropped by one operation run in eviction order.
func (c *Cache[K, V]) SetOnEvict(fn func(K, V)) { c.onEvict = fn }

// notify fires the eviction hook for every dropped entry. Callers must
// NOT hold mu.
func (c *Cache[K, V]) notify(dropped []entry[K, V]) {
	if c.onEvict == nil {
		return
	}
	for _, e := range dropped {
		c.onEvict(e.key, e.val)
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts or refreshes the value, evicting the least recently used
// entries beyond the bound.
func (c *Cache[K, V]) Put(key K, val V) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = val
		c.mu.Unlock()
		return
	}
	dropped := c.insert(key, val)
	c.mu.Unlock()
	c.notify(dropped)
}

// GetOrAdd returns the cached value for key, building (and caching) it
// with build on a miss. build runs under the cache lock, which makes
// "exactly one build per key" exact under concurrent misses — keep it
// cheap. The second result reports whether build ran. With a disabled
// bound every call builds and nothing is retained.
func (c *Cache[K, V]) GetOrAdd(key K, build func() V) (V, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry[K, V]).val
		c.mu.Unlock()
		return val, false
	}
	val := build()
	var dropped []entry[K, V]
	if c.max > 0 {
		dropped = c.insert(key, val)
	}
	c.mu.Unlock()
	c.notify(dropped)
	return val, true
}

// Remove drops the entry for key, reporting whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	el, ok := c.items[key]
	var dropped []entry[K, V]
	if ok {
		c.ll.Remove(el)
		delete(c.items, key)
		dropped = append(dropped, *el.Value.(*entry[K, V]))
	}
	c.mu.Unlock()
	c.notify(dropped)
	return ok
}

// RemoveIf drops every entry whose key satisfies pred and returns how
// many were dropped. pred runs under the cache lock — keep it cheap.
func (c *Cache[K, V]) RemoveIf(pred func(K) bool) int {
	c.mu.Lock()
	var dropped []entry[K, V]
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry[K, V])
		if pred(e.key) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped = append(dropped, *e)
		}
		el = next
	}
	c.mu.Unlock()
	c.notify(dropped)
	return len(dropped)
}

// insert adds a fresh entry and evicts past the bound, returning the
// dropped entries. Callers hold mu.
func (c *Cache[K, V]) insert(key K, val V) []entry[K, V] {
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	var dropped []entry[K, V]
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		e := last.Value.(*entry[K, V])
		delete(c.items, e.key)
		dropped = append(dropped, *e)
	}
	return dropped
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Max returns the configured bound.
func (c *Cache[K, V]) Max() int { return c.max }

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/runner"
)

// Batch limits.
const (
	// MaxBatchItems bounds one /v1/batch request's item list.
	MaxBatchItems = 256
	// MaxBatchBytes bounds a /v1/batch request body — items carry full
	// model descriptions, so the bound is wider than MaxRequestBytes.
	MaxBatchBytes = 16 << 20
)

// batchItem is one entry of a /v1/batch request: the common request
// envelope plus the endpoint it targets.
type batchItem struct {
	// Endpoint selects the per-item semantics: "plan", "evaluate"
	// (default) or "compare". Explore-class sweeps go through /v1/jobs
	// instead — their streamed, minutes-long shape does not belong in a
	// synchronous batch.
	Endpoint string `json:"endpoint,omitempty"`
	request
}

// batchRequest is the /v1/batch body.
type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchWork is one unique (deduplicated) computation of a batch.
type batchWork struct {
	endpoint string
	key      string
	p        *parsed
}

// batchLine is one item's outcome: a rendered response or an error.
type batchLine struct {
	resp response
	err  error
}

// errorLine renders err exactly as the single-request error body (one
// compact JSON object plus newline), so batch item errors read the
// same as endpoint errors.
func errorLine(err error) []byte {
	b, _ := json.Marshal(errorResponse{Error: err.Error()}) // cannot fail
	return append(b, '\n')
}

// handleBatch answers POST /v1/batch: a list of plan/evaluate/compare
// items evaluated as one request. Identical items (same request hash)
// are deduplicated inside the batch and computed once; the unique set
// fans out on the server pool, with every unit funneling through the
// same cache → singleflight → compute pipeline as single requests — a
// batch item and a single request for the same work share one cache
// entry and coalesce onto one computation.
//
// The response is NDJSON: line i is the outcome of item i in input
// order — on success exactly the bytes the item's single-request
// endpoint returns, on failure the uniform {"error": "..."} body.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, MaxBatchBytes))
	dec.DisallowUnknownFields()
	var req batchRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errTooLarge(mbe.Limit)
		}
		return badRequest(fmt.Errorf("%w: body: %v", ErrService, err))
	}
	if len(req.Items) == 0 {
		return badRequest(fmt.Errorf(`%w: "items" must name at least one item`, ErrService))
	}
	if len(req.Items) > MaxBatchItems {
		return badRequest(fmt.Errorf("%w: %d items exceeds the %d-item batch limit",
			ErrService, len(req.Items), MaxBatchItems))
	}

	// Parse every item and deduplicate by request hash: itemWork[i] is
	// the index into work of item i's computation, -1 for items whose
	// parse already failed (their line is the parse error).
	lines := make([][]byte, len(req.Items))
	itemWork := make([]int, len(req.Items))
	var work []batchWork
	seen := make(map[string]int)
	for i, it := range req.Items {
		itemWork[i] = -1
		endpoint := it.Endpoint
		if endpoint == "" {
			endpoint = "evaluate"
		}
		switch endpoint {
		case "plan", "evaluate", "compare":
		default:
			s.metrics["batch"].errors.Add(1)
			lines[i] = errorLine(fmt.Errorf(`%w: item %d: unknown endpoint %q (plan, evaluate or compare)`, ErrService, i, it.Endpoint))
			continue
		}
		p, err := s.resolveRequest(it.request, endpoint != "compare", false)
		if err != nil {
			s.metrics[endpoint].errors.Add(1)
			lines[i] = errorLine(fmt.Errorf("item %d: %w", i, err))
			continue
		}
		key := p.key(endpoint)
		if j, ok := seen[key]; ok {
			// Intra-batch duplicate: reuse the first occurrence's
			// computation and count the coalescing on the item's
			// endpoint, same as concurrent identical requests would.
			itemWork[i] = j
			s.metrics[endpoint].coalesced.Add(1)
			continue
		}
		seen[key] = len(work)
		itemWork[i] = len(work)
		work = append(work, batchWork{endpoint: endpoint, key: key, p: p})
	}

	// Fan the unique set out on the pool. Compute failures stay
	// per-item (they become that item's error line); only a canceled
	// request context aborts the whole batch — the client is gone, so
	// that is a normal disconnect (stop dispatching, answer nothing),
	// not a server error. The request context also flows into the
	// follower wait (resolveCtx), so claimed items waiting on another
	// consumer's computation release their pool workers promptly when
	// the client disconnects; the compute context carries only the
	// server deadline, so a disconnect never cancels shared work. The
	// recover mirrors runJob's: these workers are bare pool goroutines
	// with no net/http recover above them, and the flight layer
	// re-panics by design.
	waitCtx, cancelWait := s.deadlineCtx(r.Context())
	defer cancelWait()
	computeCtx, cancelCompute := s.deadlineCtx(nil)
	defer cancelCompute()
	results, err := runner.MapCtx(waitCtx, s.pool, work,
		func(_ int, u batchWork) (bl batchLine, _ error) {
			defer func() {
				if rec := recover(); rec != nil {
					bl = batchLine{err: fmt.Errorf("%w: panic during evaluation: %v", ErrService, rec)}
				}
			}()
			resp, err := s.resolve(waitCtx, computeCtx, u.endpoint, u.key, u.p, func(cctx context.Context) (response, error) {
				switch u.endpoint {
				case "plan":
					return s.computePlan(cctx, u.p)
				case "evaluate":
					return s.computeEvaluate(cctx, u.p)
				default:
					return s.computeCompare(cctx, u.p)
				}
			})
			return batchLine{resp: resp, err: err}, nil
		})
	if err != nil {
		if r.Context().Err() != nil {
			return nil
		}
		return err
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	for i := range req.Items {
		line := lines[i]
		if line == nil {
			bl := results[itemWork[i]]
			if bl.err != nil {
				// Count the failure on the item's endpoint — in-band
				// error lines must not be invisible to /statsz.
				s.metrics[work[itemWork[i]].endpoint].errors.Add(1)
				line = errorLine(bl.err)
			} else {
				line = bl.resp.body
			}
		}
		if _, err := w.Write(line); err != nil {
			// Client went away mid-response; nothing left to salvage.
			return nil
		}
	}
	return nil
}

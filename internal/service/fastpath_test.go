package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// newFastTestServer builds a server with an explicit raw-bytes budget
// and a compute counter.
func newFastTestServer(t *testing.T, rawBytes int) (*Server, *httptest.Server, *atomic.Int64) {
	t.Helper()
	var computes atomic.Int64
	srv, err := New(Options{
		RawCacheBytes: rawBytes,
		OnCompute:     func(string, string) { computes.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, &computes
}

// TestFastPathByteReplay proves the tentpole equivalence on every
// cached endpoint: replaying the exact same body returns exactly the
// same bytes via the raw fast path — one compute, one fast hit, and no
// drift between the slow-path and fast-path renderings.
func TestFastPathByteReplay(t *testing.T) {
	cases := []struct {
		endpoint string
		body     string
	}{
		{"plan", `{"zoo":"Lenet-c"}`},
		{"evaluate", `{"zoo":"Lenet-c","strategy":"hypar"}`},
		{"compare", `{"zoo":"Lenet-c"}`},
		{"degrade", `{"zoo":"Lenet-c","config":{"faults":{"level":1,"groups":2}}}`},
	}
	for _, tc := range cases {
		t.Run(tc.endpoint, func(t *testing.T) {
			srv, ts, computes := newFastTestServer(t, 0)
			url := ts.URL + "/v1/" + tc.endpoint

			code, first := postJSON(t, url, tc.body)
			if code != http.StatusOK {
				t.Fatalf("first request: status %d: %s", code, first)
			}
			n := computes.Load()
			if n == 0 {
				t.Fatal("first request did not compute")
			}
			if got := srv.metrics[tc.endpoint].fastHits.Load(); got != 0 {
				t.Fatalf("first request fastHits = %d, want 0", got)
			}

			code, second := postJSON(t, url, tc.body)
			if code != http.StatusOK {
				t.Fatalf("replay: status %d: %s", code, second)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("replay bytes differ from slow path:\nfirst:  %s\nsecond: %s", first, second)
			}
			if got := computes.Load(); got != n {
				t.Errorf("replay computed: computes %d -> %d", n, got)
			}
			if got := srv.metrics[tc.endpoint].fastHits.Load(); got != 1 {
				t.Errorf("replay fastHits = %d, want 1", got)
			}
		})
	}
}

// TestFastPathVariants pins the two-tier semantics: a reformatted body
// (field order, whitespace) misses the raw map but hits the canonical
// cache without recomputing — and once served, its exact bytes fast-path
// on repeat.
func TestFastPathVariants(t *testing.T) {
	srv, ts, computes := newFastTestServer(t, 0)
	url := ts.URL + "/v1/evaluate"
	base := `{"zoo":"VGG-A","strategy":"hypar"}`
	variant := ` {"strategy": "hypar",  "zoo": "VGG-A"} `

	code, first := postJSON(t, url, base)
	if code != http.StatusOK {
		t.Fatalf("base: status %d: %s", code, first)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("base computes = %d, want 1", got)
	}

	// Variant: raw miss (different bytes), canonical hit (same meaning).
	code, got := postJSON(t, url, variant)
	if code != http.StatusOK {
		t.Fatalf("variant: status %d: %s", code, got)
	}
	if !bytes.Equal(first, got) {
		t.Errorf("variant response differs:\nbase:    %s\nvariant: %s", first, got)
	}
	m := srv.metrics["evaluate"]
	if f := m.fastHits.Load(); f != 0 {
		t.Errorf("variant fastHits = %d, want 0 (different bytes must miss the raw map)", f)
	}
	if c := m.cacheHits.Load(); c != 1 {
		t.Errorf("variant cacheHits = %d, want 1 (same canonical hash)", c)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("variant recomputed: computes = %d, want 1", n)
	}

	// The variant's own bytes were seeded on resolution: replaying them
	// now lands on the fast path.
	code, again := postJSON(t, url, variant)
	if code != http.StatusOK {
		t.Fatalf("variant replay: status %d: %s", code, again)
	}
	if !bytes.Equal(first, again) {
		t.Errorf("variant replay differs from base response")
	}
	if f := m.fastHits.Load(); f != 1 {
		t.Errorf("variant replay fastHits = %d, want 1", f)
	}
}

// TestFastPathByteBudget drives hostile all-unique traffic (every body
// byte-distinct, all meaning the same request) against a small raw
// budget: the canonical cache absorbs the work (one compute) while the
// raw map churns its cold tail instead of growing without bound.
func TestFastPathByteBudget(t *testing.T) {
	const budget = 64 << 10
	srv, ts, computes := newFastTestServer(t, budget)
	url := ts.URL + "/v1/evaluate"

	const unique = 300
	for i := 0; i < unique; i++ {
		// Distinct trailing whitespace keeps every body byte-unique but
		// canonically identical.
		body := `{"zoo":"Lenet-c","strategy":"hypar"}` + strings.Repeat(" ", i)
		code, resp := postJSON(t, url, body)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, resp)
		}
		if got := srv.raw.bytes(); got > budget {
			t.Fatalf("after request %d: raw bytes %d exceed budget %d", i, got, budget)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1 (all variants share one canonical entry)", n)
	}
	if n := srv.raw.len(); n == 0 {
		t.Error("raw map empty after traffic: budget admits nothing")
	} else if n >= unique {
		t.Errorf("raw map holds %d entries for %d unique bodies: no eviction under budget", n, unique)
	}
}

// TestFastPathDisabled covers RawCacheBytes < 0: no raw map, identical
// replays still serve from the canonical cache, byte-identically.
func TestFastPathDisabled(t *testing.T) {
	srv, ts, computes := newFastTestServer(t, -1)
	if srv.raw != nil {
		t.Fatal("negative RawCacheBytes left the raw cache enabled")
	}
	url := ts.URL + "/v1/evaluate"
	body := `{"zoo":"Lenet-c","strategy":"hypar"}`

	_, first := postJSON(t, url, body)
	code, second := postJSON(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("replay: status %d: %s", code, second)
	}
	if !bytes.Equal(first, second) {
		t.Error("replay bytes differ with fast path disabled")
	}
	m := srv.metrics["evaluate"]
	if f := m.fastHits.Load(); f != 0 {
		t.Errorf("fastHits = %d, want 0 when disabled", f)
	}
	if c := m.cacheHits.Load(); c != 1 {
		t.Errorf("cacheHits = %d, want 1", c)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1", n)
	}
	if snap := srv.rawSnapshot(); snap != (rawCacheSnapshot{}) {
		t.Errorf("rawSnapshot = %+v, want zero value when disabled", snap)
	}
}

// TestFastPathTooLarge pins the 413 contract: a body over the endpoint
// limit answers 413 with the uniform error shape, for both the 2 MiB
// single-request bound and the 16 MiB batch bound.
func TestFastPathTooLarge(t *testing.T) {
	_, ts, computes := newFastTestServer(t, 0)

	cases := []struct {
		path string
		size int
	}{
		{"/v1/evaluate", MaxRequestBytes + 1},
		{"/v1/plan", MaxRequestBytes + 1},
		{"/v1/batch", MaxBatchBytes + 1},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			body := `{"pad":"` + strings.Repeat("x", tc.size) + `"}`
			code, resp := postJSON(t, ts.URL+tc.path, body)
			if code != http.StatusRequestEntityTooLarge {
				t.Fatalf("status = %d, want 413", code)
			}
			var e errorResponse
			if err := json.Unmarshal(resp, &e); err != nil {
				t.Fatalf("413 body is not the uniform error shape: %v: %s", err, resp)
			}
			if !strings.Contains(e.Error, "byte limit") {
				t.Errorf("413 error %q does not name the byte limit", e.Error)
			}
		})
	}
	if n := computes.Load(); n != 0 {
		t.Errorf("oversized bodies computed %d times, want 0", n)
	}
}

// TestFastPathStatsz asserts /statsz reports the new counters: per-
// endpoint fastHits and the rawCache occupancy block.
func TestFastPathStatsz(t *testing.T) {
	_, ts, _ := newFastTestServer(t, 0)
	url := ts.URL + "/v1/evaluate"
	body := `{"zoo":"Lenet-c","strategy":"hypar"}`
	postJSON(t, url, body)
	postJSON(t, url, body)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ep := stats.Endpoints["evaluate"]
	if ep.FastHits != 1 {
		t.Errorf("statsz evaluate.fastHits = %d, want 1", ep.FastHits)
	}
	if ep.Requests != 2 {
		t.Errorf("statsz evaluate.requests = %d, want 2", ep.Requests)
	}
	rc := stats.RawCache
	if rc.BudgetBytes != DefaultRawCacheBytes {
		t.Errorf("statsz rawCache.budgetBytes = %d, want %d", rc.BudgetBytes, DefaultRawCacheBytes)
	}
	if rc.Entries < 1 || rc.Bytes <= 0 {
		t.Errorf("statsz rawCache occupancy = %+v, want at least one resident entry", rc)
	}
	if rc.Shards != rawShards {
		t.Errorf("statsz rawCache.shards = %d, want %d", rc.Shards, rawShards)
	}
}

// TestFastPathStress hammers a small raw budget from concurrent
// goroutines mixing exact replays and byte-variants — run under -race
// this is the data-race check on the striped raw map, and every
// response must still be byte-identical to the reference.
func TestFastPathStress(t *testing.T) {
	_, ts, _ := newFastTestServer(t, 32<<10)
	url := ts.URL + "/v1/evaluate"

	_, want := postJSON(t, url, `{"zoo":"Lenet-c","strategy":"hypar"}`)

	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Worker-varied padding mixes raw hits, raw misses that
				// hit the canonical cache, and fresh raw insertions.
				body := `{"zoo":"Lenet-c","strategy":"hypar"}` + strings.Repeat(" ", (w*i)%17)
				resp, err := http.Post(url, "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err.Error()
					return
				}
				b := new(bytes.Buffer)
				_, _ = b.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("worker %d round %d: status %d", w, i, resp.StatusCode)
					return
				}
				if !bytes.Equal(b.Bytes(), want) {
					errs <- fmt.Sprintf("worker %d round %d: response drift", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// stressKey derives a deterministic pseudo-random key stream without
// math/rand, so the stress workload is reproducible.
func stressKey(seed, i int) string {
	x := uint64(seed)*2654435761 + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return fmt.Sprintf("k%x", x%512)
}

// TestShardedLRUStress hammers the striped cache from many goroutines
// (run under -race in CI): concurrent Get/Put across all shards while
// the eviction-bound invariant — total entries never exceed the
// configured capacity — is checked continuously and at the end.
func TestShardedLRUStress(t *testing.T) {
	const (
		maxEntries = 64
		workers    = 8
		ops        = 4000
	)
	c := newShardedLRU(maxEntries, lruShardsFor(maxEntries))
	var wg sync.WaitGroup
	var violations atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := stressKey(seed, i)
				switch i % 3 {
				case 0:
					c.Put(key, response{contentType: "t", body: []byte(key)})
				case 1:
					if resp, ok := c.Get(key); ok && string(resp.body) != key {
						t.Errorf("key %q returned body %q", key, resp.body)
						return
					}
				default:
					if c.Len() > maxEntries {
						violations.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if v := violations.Load(); v > 0 {
		t.Errorf("eviction bound violated %d times during stress", v)
	}
	if n := c.Len(); n > maxEntries {
		t.Errorf("final entry count %d exceeds bound %d", n, maxEntries)
	}
	// Every shard individually respects its slice of the bound.
	total := 0
	for i, sh := range c.shards {
		n := sh.Len()
		if n > sh.Max() {
			t.Errorf("shard %d holds %d entries over its %d bound", i, n, sh.Max())
		}
		total += n
	}
	if total != c.Len() {
		t.Errorf("shard sum %d != Len() %d", total, c.Len())
	}
}

// TestShardedLRUCapacityDistribution proves the total capacity is
// divided exactly across shards for awkward (non-divisible) bounds,
// and that degenerate bounds collapse to fewer shards.
func TestShardedLRUCapacityDistribution(t *testing.T) {
	for _, max := range []int{1, 7, 64, 100, 256, 1000} {
		c := newShardedLRU(max, lruShardsFor(max))
		sum := 0
		for _, sh := range c.shards {
			sum += sh.Max()
		}
		if sum != max {
			t.Errorf("max=%d: shard capacities sum to %d", max, sum)
		}
	}
	if got := lruShardsFor(256); got != 16 {
		t.Errorf("lruShardsFor(256)=%d, want 16", got)
	}
	if got := lruShardsFor(4); got != 1 {
		t.Errorf("lruShardsFor(4)=%d, want 1 (small caches keep exact LRU)", got)
	}
	// Disabled cache stores nothing.
	d := newShardedLRU(-1, 1)
	d.Put("x", response{body: []byte("x")})
	if _, ok := d.Get("x"); ok || d.Len() != 0 {
		t.Error("disabled sharded cache stored an entry")
	}
}

// TestShardedFlightStress coalesces many concurrent callers onto few
// keys (run under -race in CI) and proves the singleflight invariant
// holds across shards: no key ever has two computations in flight at
// once, and every caller of a key gets that key's bytes.
func TestShardedFlightStress(t *testing.T) {
	const (
		keys    = 8
		callers = 64
		rounds  = 25
	)
	var g shardedFlight
	var active [keys]atomic.Int64
	var wg sync.WaitGroup
	for cl := 0; cl < callers; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (cl + r) % keys
				key := fmt.Sprintf("key-%d", k)
				resp, err, _ := g.Do(key, func() (response, error) {
					if n := active[k].Add(1); n != 1 {
						t.Errorf("key %q has %d concurrent computations", key, n)
					}
					defer active[k].Add(-1)
					return response{body: []byte(key)}, nil
				})
				if err != nil || string(resp.body) != key {
					t.Errorf("key %q: resp %q err %v", key, resp.body, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
}

// TestShardedReplayEquivalence is the byte-for-byte equivalence proof
// against the old single-lock cache: two servers — one on the striped
// cache New builds, one forced onto a single-shard (global-lock) cache,
// the pre-sharding configuration — serve an identical request sequence
// with byte-identical responses, replay included.
func TestShardedReplayEquivalence(t *testing.T) {
	sharded, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded.cache.shards) < 2 {
		t.Fatalf("default cache is not sharded (%d shards)", len(sharded.cache.shards))
	}
	single, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The old implementation was exactly one lruCache behind one mutex;
	// a 1-shard striped cache is that same structure.
	single.cache = newShardedLRU(DefaultCacheEntries, 1)

	tsSharded := httptest.NewServer(sharded.Handler())
	defer tsSharded.Close()
	tsSingle := httptest.NewServer(single.Handler())
	defer tsSingle.Close()

	requests := []struct {
		path string
		body string
	}{
		{"/v1/evaluate", `{"zoo":"SFC","strategy":"hypar"}`},
		{"/v1/plan", `{"zoo":"Lenet-c","strategy":"dp"}`},
		{"/v1/compare", `{"zoo":"SCONV"}`},
		{"/v1/evaluate", `{"zoo":"SFC","strategy":"hypar"}`}, // cache replay
		{"/v1/explore", `{"zoo":"Lenet-c","free":[{"level":0,"layer":0},{"level":0,"layer":1}]}`},
		{"/v1/explore", `{"zoo":"Lenet-c","free":[{"level":0,"layer":0},{"level":0,"layer":1}]}`}, // replay
		{"/v1/evaluate", `{"zoo":"SFC","strategy":"mp","config":{"batch":64}}`},
	}
	for i, rq := range requests {
		codeA, bodyA := postJSON(t, tsSharded.URL+rq.path, rq.body)
		codeB, bodyB := postJSON(t, tsSingle.URL+rq.path, rq.body)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("request %d: status %d vs %d", i, codeA, codeB)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Errorf("request %d (%s): sharded and single-lock responses differ:\nsharded: %q\nsingle:  %q",
				i, rq.path, bodyA, bodyB)
		}
	}
}

// TestServiceConcurrentMixedStress drives the whole server concurrently
// with a mix of hot (coalescing), distinct (sharded misses) and batch
// traffic — the end-to-end race test over the striped cache, striped
// flight, session cache and model intern cache together. Run under
// -race in CI.
func TestServiceConcurrentMixedStress(t *testing.T) {
	_, ts, _ := newTestServer(t)
	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				var path, body string
				switch (w + i) % 4 {
				case 0: // hot: every worker collides on one key
					path, body = "/v1/evaluate", `{"zoo":"SFC","strategy":"hypar"}`
				case 1: // distinct keys spread over shards
					path, body = "/v1/evaluate",
						fmt.Sprintf(`{"zoo":"SCONV","strategy":"dp","config":{"batch":%d}}`, 8<<uint(w%4))
				case 2: // non-base config exercises the session cache
					path, body = "/v1/explore",
						fmt.Sprintf(`{"zoo":"SFC","config":{"batch":128},"free":[{"level":%d,"layer":0}]}`, w%4)
				default: // batch with intra-batch duplicates
					path = "/v1/batch"
					body = `{"items":[{"zoo":"SFC","strategy":"hypar"},{"zoo":"SFC","strategy":"hypar"},{"endpoint":"plan","zoo":"Lenet-c"}]}`
				}
				code, b := postJSON(t, ts.URL+path, body)
				if code != http.StatusOK {
					t.Errorf("worker %d op %d (%s): status %d: %s", w, i, path, code, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// chaosServer builds a server wired to a fault injector plus a
// compute counter.
func chaosServer(t *testing.T, opts Options, cfg faultinject.Config) (*Server, *httptest.Server, *faultinject.Injector, *atomic.Int64) {
	t.Helper()
	in := faultinject.New(cfg)
	var computes atomic.Int64
	opts.FaultHook = in.Hook()
	opts.OnCompute = func(string, string) { computes.Add(1) }
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, in, &computes
}

// statszResilience fetches the /statsz resilience snapshot.
func statszResilience(t *testing.T, url string) resilienceSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Resilience
}

// TestChaosInjectedErrorStaysInBand proves an injected evaluation
// failure answers as a normal in-band HTTP error and never poisons the
// result cache: once injection stops, the same request computes fresh
// and succeeds.
func TestChaosInjectedErrorStaysInBand(t *testing.T) {
	_, ts, in, computes := chaosServer(t, Options{}, faultinject.Config{ErrorRate: 1})
	const body = `{"zoo":"Lenet-c","strategy":"hypar"}`

	code, b := postJSON(t, ts.URL+"/v1/evaluate", body)
	if code != http.StatusInternalServerError {
		t.Fatalf("injected error: status %d: %s", code, b)
	}
	var er errorResponse
	if err := json.Unmarshal(b, &er); err != nil || er.Error == "" {
		t.Fatalf("injected error body is not the uniform error JSON: %s", b)
	}

	in.Disable()
	code, b = postJSON(t, ts.URL+"/v1/evaluate", body)
	if code != http.StatusOK {
		t.Fatalf("after Disable: status %d: %s (failed result was cached?)", code, b)
	}
	if computes.Load() == 0 {
		t.Fatal("success was served without computing — poisoned cache entry")
	}

	// And the success IS cached: a third request must not recompute.
	before := computes.Load()
	if code, _ := postJSON(t, ts.URL+"/v1/evaluate", body); code != http.StatusOK {
		t.Fatalf("cached replay: status %d", code)
	}
	if computes.Load() != before {
		t.Fatal("cached replay recomputed")
	}
}

// TestChaosPanicReleasesKey proves an injected mid-compute panic never
// leaves the singleflight key poisoned: the connection dies (net/http's
// per-connection recover), and the very next request for the same key
// computes fresh and succeeds.
func TestChaosPanicReleasesKey(t *testing.T) {
	_, ts, in, _ := chaosServer(t, Options{}, faultinject.Config{PanicRate: 1})
	const body = `{"zoo":"Lenet-c","strategy":"hypar"}`

	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err == nil {
		resp.Body.Close()
		t.Fatalf("injected panic answered %d, want a dead connection", resp.StatusCode)
	}

	in.Disable()
	code, b := postJSON(t, ts.URL+"/v1/evaluate", body)
	if code != http.StatusOK {
		t.Fatalf("after panic: status %d: %s (singleflight key still poisoned?)", code, b)
	}
}

// TestChaosDeadlineExceeded proves a request that cannot finish inside
// the server's deadline answers 504 promptly (not after the slow work
// finishes) and is counted in /statsz.
func TestChaosDeadlineExceeded(t *testing.T) {
	_, ts, _, _ := chaosServer(t,
		Options{RequestTimeout: 100 * time.Millisecond},
		faultinject.Config{SlowRate: 1, Slowness: 30 * time.Second})

	t0 := time.Now()
	code, b := postJSON(t, ts.URL+"/v1/evaluate", `{"zoo":"Lenet-c"}`)
	elapsed := time.Since(t0)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s, want 504", code, b)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v — the deadline did not cut the slow compute", elapsed)
	}
	if r := statszResilience(t, ts.URL); r.DeadlineExceeded < 1 {
		t.Fatalf("resilience.deadlineExceeded = %d, want >= 1 (%+v)", r.DeadlineExceeded, r)
	}
}

// TestChaosAdmissionSheds proves the in-flight bound sheds overload
// with 429 + Retry-After while the occupied slot keeps computing, and
// that shed requests are counted in /statsz.
func TestChaosAdmissionSheds(t *testing.T) {
	_, ts, _, _ := chaosServer(t,
		Options{MaxInflight: 1},
		faultinject.Config{SlowRate: 1, Slowness: 1500 * time.Millisecond})

	if r := statszResilience(t, ts.URL); r.MaxInflight != 1 {
		t.Fatalf("resilience.maxInflight = %d, want 1", r.MaxInflight)
	}

	models := []string{"SFC", "SCONV", "Lenet-c", "Cifar-c"}
	var shed, ok atomic.Int64
	var wg sync.WaitGroup
	for _, name := range models {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
				strings.NewReader(fmt.Sprintf(`{"zoo":%q}`, name)))
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("%s: 429 without Retry-After", name)
				}
				shed.Add(1)
			case http.StatusOK:
				ok.Add(1)
			default:
				t.Errorf("%s: unexpected status %d", name, resp.StatusCode)
			}
		}(name)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("no request was shed at MaxInflight=1 under concurrent load")
	}
	if ok.Load() == 0 {
		t.Fatal("every request was shed — the slot holder should have finished")
	}
	if r := statszResilience(t, ts.URL); r.Shed < shed.Load() {
		t.Fatalf("resilience.shed = %d, want >= %d", r.Shed, shed.Load())
	}
}

// TestChaosJobTableFullRefuses proves a full job table answers 503 with
// Retry-After and counts the refusal, while the running job finishes.
func TestChaosJobTableFullRefuses(t *testing.T) {
	_, ts, in, _ := chaosServer(t,
		Options{JobEntries: 1},
		faultinject.Config{SlowRate: 1, Slowness: 700 * time.Millisecond})

	st := submitJob(t, ts.URL, `{"zoo":"Lenet-c","free":[{"level":0,"layer":0}]}`)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"zoo":"Lenet-c","free":[{"level":0,"layer":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if r := statszResilience(t, ts.URL); r.Refused < 1 {
		t.Fatalf("resilience.refused = %d, want >= 1", r.Refused)
	}

	in.Disable()
	waitJob(t, ts.URL, st.ID)
}

// TestChaosShutdownDrainsSlowCompute proves graceful shutdown still
// drains while an injected-slow evaluation is in flight: the pending
// request completes and Shutdown returns clean.
func TestChaosShutdownDrainsSlowCompute(t *testing.T) {
	srv, ts, _, _ := chaosServer(t, Options{},
		faultinject.Config{SlowRate: 1, Slowness: 500 * time.Millisecond})

	done := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, ts.URL+"/v1/evaluate", `{"zoo":"Lenet-c"}`)
		done <- code
	}()
	time.Sleep(100 * time.Millisecond) // let the slow compute start

	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatalf("Shutdown during slow compute: %v", err)
	}
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never finished after drain")
	}
}

// TestDegradeEndpoint pins /v1/degrade's contract: a fault spec is
// required (400 without), and with one the response reports the
// surviving topology and a per-strategy slowdown above 1.
func TestDegradeEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)

	code, b := postJSON(t, ts.URL+"/v1/degrade", `{"zoo":"AlexNet"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("no faults: status %d: %s, want 400", code, b)
	}

	code, b = postJSON(t, ts.URL+"/v1/degrade",
		`{"zoo":"AlexNet","config":{"faults":{"level":1,"groups":2}}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	var dr degradeResponse
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Accelerators != 16 || dr.Survivors != 8 || dr.DegradedLevels != 3 {
		t.Fatalf("topology %d/%d at depth %d, want 16/8 at 3",
			dr.Accelerators, dr.Survivors, dr.DegradedLevels)
	}
	for _, st := range []string{"HyPar", "DataParallel"} {
		entry, ok := dr.Strategies[st]
		if !ok {
			t.Fatalf("missing strategy %q in %v", st, dr.Strategies)
		}
		if entry.Slowdown <= 1 {
			t.Errorf("%s slowdown = %g, want > 1", st, entry.Slowdown)
		}
	}
	if got := len(dr.DegradedPlan.Layers); got == 0 {
		t.Fatal("degraded plan has no layers")
	}
	if dr.DegradedPlan.Accelerators != 8 {
		t.Fatalf("degraded plan spans %d accelerators, want 8", dr.DegradedPlan.Accelerators)
	}
	// 1:2 survivors are a power of two: the aligned plan engages all 8.
	if dr.DegradedGroups != 0 || dr.UsedAccelerators != 8 {
		t.Fatalf("1:2: degradedGroups %d usedAccelerators %d, want 0 and 8",
			dr.DegradedGroups, dr.UsedAccelerators)
	}

	// A 1:1 fault leaves 12 survivors — not a power of two. The grouped
	// candidate (3 groups of 4) must engage for AlexNet and report the
	// full survivor set in use.
	code, b = postJSON(t, ts.URL+"/v1/degrade",
		`{"zoo":"AlexNet","config":{"faults":{"level":1,"groups":1}}}`)
	if code != http.StatusOK {
		t.Fatalf("1:1: status %d: %s", code, b)
	}
	var dr11 degradeResponse
	if err := json.Unmarshal(b, &dr11); err != nil {
		t.Fatal(err)
	}
	if dr11.Survivors != 12 || dr11.DegradedGroups != 3 || dr11.UsedAccelerators != 12 {
		t.Fatalf("1:1: survivors %d degradedGroups %d usedAccelerators %d, want 12/3/12",
			dr11.Survivors, dr11.DegradedGroups, dr11.UsedAccelerators)
	}
	hp11, hp12 := dr11.Strategies["HyPar"], dr.Strategies["HyPar"]
	if hp11.Slowdown >= hp12.Slowdown {
		t.Errorf("1:1 slowdown %g not better than 1:2's %g despite 4 more survivors",
			hp11.Slowdown, hp12.Slowdown)
	}

	// The strategy-less envelope still rejects explore-class fields.
	code, _ = postJSON(t, ts.URL+"/v1/degrade",
		`{"zoo":"AlexNet","strategy":"dp","config":{"faults":{"level":1,"groups":2}}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("strategy on /v1/degrade: status %d, want 400", code)
	}
}

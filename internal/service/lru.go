package service

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe LRU over rendered responses keyed
// by request hash. Entry count (not bytes) is the bound: response
// bodies are small and uniform except for explore sweeps, whose point
// count the handler already caps.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

// lruEntry is one cached response with its key (needed for eviction).
type lruEntry struct {
	key  string
	resp response
}

// newLRU builds a cache bounded to max entries; max <= 0 disables
// caching (every Get misses, every Put is dropped).
func newLRU(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached response and marks it most recently used.
func (c *lruCache) Get(key string) (response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return response{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// Put inserts or refreshes the response, evicting the least recently
// used entries beyond the bound.
func (c *lruCache) Put(key string, resp response) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).resp = resp
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, resp: resp})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

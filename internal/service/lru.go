package service

import (
	"repro/internal/lru"
)

// flightShards is the stripe count of the singleflight table. Response
// cache striping adapts to the configured capacity (see lruShardsFor);
// the flight table holds only in-progress work, so a fixed power of two
// is always fine.
const flightShards = 16

// shardIndex picks the stripe for a request hash: FNV-1a over the key,
// masked to the (power of two) shard count. Request hashes are hex
// SHA-256, so any decent mix spreads them uniformly.
func shardIndex(key string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h & uint32(shards-1))
}

// lruShardsFor picks the response-cache stripe count for a capacity:
// 16 shards when the cache is large enough that every shard holds a
// useful working set (>= 4 entries), halving down to a single shard —
// exact global LRU — for small caches, where striping would cost
// precision without relieving any real contention.
func lruShardsFor(max int) int {
	shards := 16
	for shards > 1 && max/shards < 4 {
		shards /= 2
	}
	return shards
}

// shardedLRU stripes the response cache into independently locked
// lru.Cache shards keyed by request hash, so concurrent hot-path Gets
// on different keys proceed without contending on one global mutex.
// The total capacity is divided across shards (first shards absorb the
// remainder), which keeps the eviction-bound invariant exact: the
// summed entry count never exceeds max. Recency is per shard — a
// pathological key distribution can evict earlier than a global LRU
// would, but hashes are uniform, so shard loads stay within noise of
// each other.
type shardedLRU struct {
	shards []*lru.Cache[string, response]
}

// newShardedLRU builds a striped cache of total capacity max across the
// given power-of-two shard count; max <= 0 disables caching entirely.
func newShardedLRU(max, shards int) *shardedLRU {
	if max <= 0 || shards < 1 {
		shards = 1
	}
	s := &shardedLRU{shards: make([]*lru.Cache[string, response], shards)}
	base, rem := 0, 0
	if max > 0 {
		base, rem = max/shards, max%shards
	}
	for i := range s.shards {
		bound := base
		if i < rem {
			bound++
		}
		s.shards[i] = lru.New[string, response](bound)
	}
	return s
}

// Get returns the cached response from the key's shard.
func (s *shardedLRU) Get(key string) (response, bool) {
	return s.shards[shardIndex(key, len(s.shards))].Get(key)
}

// Put stores the response in the key's shard.
func (s *shardedLRU) Put(key string, resp response) {
	s.shards[shardIndex(key, len(s.shards))].Put(key, resp)
}

// Len returns the entry count summed over all shards.
func (s *shardedLRU) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

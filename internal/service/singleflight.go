package service

import (
	"context"
	"fmt"
	"sync"
)

// response is the cached/coalesced unit of work: a fully rendered
// response body. Replaying it byte-for-byte is what makes identical
// requests return identical bytes whether they hit the cache, lead a
// flight, or follow one.
type response struct {
	contentType string
	body        []byte
}

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn. The std-lib has no singleflight
// and this module takes no dependencies, so the classic construction is
// reimplemented here (with a done channel rather than a WaitGroup, so
// follower waits can be made cancelable — DoCtx). One flightGroup is
// one lock domain; the service stripes several behind shardedFlight so
// unrelated keys never contend on one mutex.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done chan struct{} // closed when resp/err are final
	resp response
	err  error
}

// Do executes fn once per key among concurrent callers. The returned
// leader flag reports whether this caller ran fn itself (followers get
// the leader's result). fn must not call Do reentrantly with the same
// key.
func (g *flightGroup) Do(key string, fn func() (response, error)) (response, error, bool) {
	return g.DoCtx(nil, key, fn)
}

// DoCtx is Do with a cancelable follower wait: a follower whose ctx is
// done stops waiting and returns ctx's error (the leader keeps
// computing for the remaining consumers — abandoning a wait never
// cancels the shared work). The leader itself ignores ctx; cancel
// inside fn if the computation should stop. A nil ctx waits
// indefinitely.
func (g *flightGroup) DoCtx(ctx context.Context, key string, fn func() (response, error)) (resp response, err error, leader bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		if ctx == nil {
			<-c.done
			return c.resp, c.err, false
		}
		select {
		case <-c.done:
			return c.resp, c.err, false
		case <-ctx.Done():
			return response{}, ctx.Err(), false
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// Release the flight even if fn panics — otherwise the key is
	// poisoned and every follower blocks forever. A panicking leader
	// hands followers an error, then re-panics so the failure stays
	// loud (net/http recovers it per connection).
	defer func() {
		r := recover()
		if r != nil {
			c.err = fmt.Errorf("service: panic during computation: %v", r)
		}
		close(c.done)
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		if r != nil {
			panic(r)
		}
	}()
	c.resp, c.err = fn()
	return c.resp, c.err, true
}

// shardedFlight stripes the singleflight table by request hash, the
// same way shardedLRU stripes the response cache: the registration
// lock of one key's flight is shared only with keys in the same shard,
// so concurrent distinct requests register and release without a
// global mutex. Coalescing semantics are unchanged — one key always
// maps to one shard, so identical keys still share one execution.
type shardedFlight struct {
	shards [flightShards]flightGroup
}

// Do routes the key to its shard's singleflight group.
func (g *shardedFlight) Do(key string, fn func() (response, error)) (response, error, bool) {
	return g.shards[shardIndex(key, flightShards)].Do(key, fn)
}

// DoCtx routes the key to its shard's group with a cancelable follower
// wait (see flightGroup.DoCtx).
func (g *shardedFlight) DoCtx(ctx context.Context, key string, fn func() (response, error)) (response, error, bool) {
	return g.shards[shardIndex(key, flightShards)].DoCtx(ctx, key, fn)
}

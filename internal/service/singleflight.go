package service

import (
	"fmt"
	"sync"
)

// response is the cached/coalesced unit of work: a fully rendered
// response body. Replaying it byte-for-byte is what makes identical
// requests return identical bytes whether they hit the cache, lead a
// flight, or follow one.
type response struct {
	contentType string
	body        []byte
}

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn. The std-lib has no singleflight
// and this module takes no dependencies, so the classic
// WaitGroup-per-call construction is reimplemented here.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	wg   sync.WaitGroup
	resp response
	err  error
}

// Do executes fn once per key among concurrent callers. The returned
// leader flag reports whether this caller ran fn itself (followers get
// the leader's result). fn must not call Do reentrantly with the same
// key.
func (g *flightGroup) Do(key string, fn func() (response, error)) (resp response, err error, leader bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.resp, c.err, false
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Release the flight even if fn panics — otherwise the key is
	// poisoned and every follower blocks in Wait forever. A panicking
	// leader hands followers an error, then re-panics so the failure
	// stays loud (net/http recovers it per connection).
	defer func() {
		r := recover()
		if r != nil {
			c.err = fmt.Errorf("service: panic during computation: %v", r)
		}
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		if r != nil {
			panic(r)
		}
	}()
	c.resp, c.err = fn()
	return c.resp, c.err, true
}

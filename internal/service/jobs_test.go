package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// submitJob POSTs a job and returns its initial status.
func submitJob(t *testing.T, url, body string) jobStatusJSON {
	t.Helper()
	code, b := postJSON(t, url+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("job submit: status %d: %s", code, b)
	}
	var st jobStatusJSON
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("job submit body %q: %v", b, err)
	}
	return st
}

// getJSON GETs a URL and decodes the JSON body into v.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("decode %q: %v", b, err)
		}
	}
	return resp.StatusCode
}

// waitJob polls the job until it leaves the running state.
func waitJob(t *testing.T, url, id string) jobStatusJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st jobStatusJSON
		if code := getJSON(t, url+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("job status: %d", code)
		}
		if st.Status != jobStateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after 60s: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobLifecycle submits a sweep job, watches it complete, and
// proves the result replays byte-identical to the synchronous
// /v1/explore stream for the same request.
func TestJobLifecycle(t *testing.T) {
	_, ts, computes := newTestServer(t)
	body := `{"zoo":"Lenet-c","free":[{"level":0,"layer":0},{"level":0,"layer":1},{"level":3,"layer":2}]}`

	st := submitJob(t, ts.URL, body)
	if st.ID == "" || st.Points != 8 {
		t.Fatalf("initial status: %+v", st)
	}
	fin := waitJob(t, ts.URL, st.ID)
	if fin.Status != jobStateDone || fin.Done != 8 || fin.Result == "" {
		t.Fatalf("final status: %+v", fin)
	}

	resp, err := http.Get(ts.URL + fin.Result)
	if err != nil {
		t.Fatal(err)
	}
	jobBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, jobBytes)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("result content type %q", ct)
	}

	// The synchronous endpoint replays the job's cached bytes — one
	// computation total, byte-identical surfaces.
	code, direct := postJSON(t, ts.URL+"/v1/explore", body)
	if code != http.StatusOK {
		t.Fatalf("explore status %d", code)
	}
	if !bytes.Equal(jobBytes, direct) {
		t.Errorf("job result differs from /v1/explore:\njob:    %q\ndirect: %q", jobBytes, direct)
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("computes=%d, want 1 (job and explore share the cache)", got)
	}
}

// TestJobValidation proves bad submissions fail synchronously.
func TestJobValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for name, body := range map[string]string{
		"no model":     `{}`,
		"bad strategy": `{"zoo":"SFC","strategy":"dp"}`,
		"bad free":     `{"zoo":"SFC","free":[{"level":9,"layer":0}]}`,
	} {
		if code, b := postJSON(t, ts.URL+"/v1/jobs", body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", name, code, b)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d", code)
	}
}

// TestJobResultBeforeDone proves /result answers 409 while running.
func TestJobResultBeforeDone(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// 2^8 = 256 VGG-A points: slow enough to observe the running state.
	st := submitJob(t, ts.URL, `{"zoo":"VGG-A"}`)
	code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusConflict && code != http.StatusOK {
		t.Errorf("result while running: status %d", code)
	}
	waitJob(t, ts.URL, st.ID)
}

// gatedServer builds a server whose computations block until the
// returned release func is called — the deterministic way to observe
// jobs in the running state regardless of machine speed.
func gatedServer(t *testing.T, jobEntries int) (*httptest.Server, func()) {
	t.Helper()
	gate := make(chan struct{})
	srv, err := New(Options{
		JobEntries: jobEntries,
		OnCompute:  func(string, string) { <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(func() {
		release()
		ts.Close()
	})
	return ts, release
}

// TestJobCancel proves DELETE interrupts a running sweep and the job
// lands in the canceled state. The compute gate holds the sweep open
// until the cancel has landed, so the outcome is deterministic.
func TestJobCancel(t *testing.T) {
	ts, release := gatedServer(t, 4)
	st := submitJob(t, ts.URL, `{"zoo":"VGG-E"}`)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelBody struct {
		ID      string `json:"id"`
		Status  string `json:"status"`
		Removed bool   `json:"removed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cancelBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cancelBody.Removed {
		t.Fatalf("cancel of a running job: status %d, body %+v", resp.StatusCode, cancelBody)
	}

	release()
	fin := waitJob(t, ts.URL, st.ID)
	if fin.Status != jobStateCanceled {
		t.Fatalf("canceled job landed in %q", fin.Status)
	}
	// A canceled job has no result.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("result of canceled job: status %d", code)
	}
}

// TestJobTableEviction proves finished jobs are evicted in submission
// order to admit new ones.
func TestJobTableEviction(t *testing.T) {
	srv, err := New(Options{JobEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two tiny jobs fill the table; both finish quickly.
	a := submitJob(t, ts.URL, `{"zoo":"SFC","free":[{"level":0,"layer":0}]}`)
	b := submitJob(t, ts.URL, `{"zoo":"SFC","free":[{"level":1,"layer":0}]}`)
	waitJob(t, ts.URL, a.ID)
	waitJob(t, ts.URL, b.ID)

	// A third submission evicts the oldest finished job (a).
	c := submitJob(t, ts.URL, `{"zoo":"SFC","free":[{"level":2,"layer":0}]}`)
	if code := getJSON(t, ts.URL+"/v1/jobs/"+a.ID, nil); code != http.StatusNotFound {
		t.Errorf("oldest finished job not evicted: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+b.ID, nil); code != http.StatusOK {
		t.Errorf("younger finished job evicted early: status %d", code)
	}
	waitJob(t, ts.URL, c.ID)
}

// TestJobTableFullRefusal proves a table full of running jobs refuses
// new submissions instead of evicting live work.
func TestJobTableFullRefusal(t *testing.T) {
	ts, release := gatedServer(t, 2)
	a := submitJob(t, ts.URL, `{"zoo":"VGG-D"}`)
	b := submitJob(t, ts.URL, `{"zoo":"VGG-E"}`)
	code, body := postJSON(t, ts.URL+"/v1/jobs", `{"zoo":"SFC","free":[{"level":3,"layer":0}]}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("submission into a full running table: status %d: %s", code, body)
	}
	release()
	waitJob(t, ts.URL, a.ID)
	waitJob(t, ts.URL, b.ID)
}

// TestJobList proves GET /v1/jobs lists tracked jobs in order.
func TestJobList(t *testing.T) {
	_, ts, _ := newTestServer(t)
	a := submitJob(t, ts.URL, `{"zoo":"SFC","free":[{"level":0,"layer":0}]}`)
	b := submitJob(t, ts.URL, `{"zoo":"SCONV","free":[{"level":0,"layer":0}]}`)
	waitJob(t, ts.URL, a.ID)
	waitJob(t, ts.URL, b.ID)
	var out struct {
		Jobs []jobStatusJSON `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &out); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(out.Jobs) != 2 || out.Jobs[0].ID != a.ID || out.Jobs[1].ID != b.ID {
		t.Errorf("job list: %+v", out.Jobs)
	}
	if !strings.HasPrefix(out.Jobs[0].Model, "SFC") {
		t.Errorf("job model: %+v", out.Jobs[0])
	}
}

// TestJobCancelDoesNotPoisonFollowers is the coalescing-poisoning
// regression test: canceling an async job whose computation other
// consumers coalesced onto must not fail those consumers. A
// synchronous /v1/explore follower retries (becoming the new leader)
// and answers 200 with the full stream; a second job for the same
// sweep likewise completes done instead of being mislabeled canceled.
// The compute gate holds the canceled leader open until the followers
// have coalesced and the cancel has landed; if scheduling ever lets a
// follower slip past the poisoned flight, the test degrades to the
// plain success path rather than flaking.
func TestJobCancelDoesNotPoisonFollowers(t *testing.T) {
	ts, release := gatedServer(t, 4)
	body := `{"zoo":"VGG-A"}`

	// Job 1 becomes the flight leader and blocks at the compute gate.
	j1 := submitJob(t, ts.URL, body)
	// Job 2 and a synchronous explore coalesce onto job 1's flight.
	j2 := submitJob(t, ts.URL, body)
	exploreDone := make(chan error, 1)
	var exploreBody []byte
	go func() {
		resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(body))
		if err != nil {
			exploreDone <- err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, b)
		}
		exploreBody = b
		exploreDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the followers coalesce

	// Cancel the leader job, then release the gate: the leader dies of
	// context.Canceled with followers attached.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j1.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	release()

	if err := <-exploreDone; err != nil {
		t.Errorf("explore follower failed after unrelated job cancel: %v", err)
	} else if !strings.Contains(string(exploreBody), `"type":"summary"`) {
		t.Errorf("explore follower stream truncated: %q", exploreBody)
	}
	fin2 := waitJob(t, ts.URL, j2.ID)
	if fin2.Status != jobStateDone {
		t.Errorf("follower job landed in %q, want done (it was never canceled)", fin2.Status)
	}
	fin1 := waitJob(t, ts.URL, j1.ID)
	if fin1.Status != jobStateCanceled && fin1.Status != jobStateDone {
		t.Errorf("canceled leader landed in %q", fin1.Status)
	}
}

package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// batchLines POSTs a /v1/batch body and returns the NDJSON lines (each
// still carrying its trailing newline).
func batchLines(t *testing.T, url, body string) (int, [][]byte) {
	t.Helper()
	code, raw := postJSON(t, url+"/v1/batch", body)
	if len(raw) == 0 {
		return code, nil
	}
	var lines [][]byte
	for _, l := range bytes.SplitAfter(raw, []byte("\n")) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return code, lines
}

// TestBatchByteIdentical proves every batch item's line is
// byte-identical to the corresponding single-request endpoint's
// response, across all three batchable endpoints.
func TestBatchByteIdentical(t *testing.T) {
	_, ts, _ := newTestServer(t)
	singles := []struct {
		endpoint string
		body     string
	}{
		{"evaluate", `{"zoo":"Lenet-c","strategy":"hypar"}`},
		{"plan", `{"zoo":"AlexNet","strategy":"trick"}`},
		{"compare", `{"zoo":"SFC"}`},
		{"evaluate", `{"zoo":"SCONV","strategy":"dp","config":{"batch":64}}`},
	}
	want := make([][]byte, len(singles))
	for i, sg := range singles {
		code, b := postJSON(t, ts.URL+"/v1/"+sg.endpoint, sg.body)
		if code != http.StatusOK {
			t.Fatalf("single %s: status %d: %s", sg.endpoint, code, b)
		}
		want[i] = b
	}

	items := make([]string, len(singles))
	for i, sg := range singles {
		items[i] = fmt.Sprintf(`{"endpoint":%q,%s`, sg.endpoint, sg.body[1:])
	}
	code, lines := batchLines(t, ts.URL, `{"items":[`+strings.Join(items, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(lines) != len(singles) {
		t.Fatalf("want %d lines, got %d", len(singles), len(lines))
	}
	for i := range singles {
		if !bytes.Equal(lines[i], want[i]) {
			t.Errorf("item %d (%s) differs from single request:\nbatch:  %s\nsingle: %s",
				i, singles[i].endpoint, lines[i], want[i])
		}
	}
}

// TestBatchDedupesIdenticalItems proves N copies of one item inside a
// batch compute exactly once (counter-hook-verified) and return
// identical bytes, and that spelling variants canonicalize onto the
// same computation.
func TestBatchDedupesIdenticalItems(t *testing.T) {
	srv, ts, computes := newTestServer(t)
	items := []string{
		`{"zoo":"VGG-A","strategy":"hypar"}`,
		`{"endpoint":"evaluate","zoo":"VGG-A","strategy":"hypar"}`,
		`{"strategy":"HyPar","zoo":"VGG-A"}`,
		`{"zoo":"VGG-A","strategy":"hypar","config":{"batch":256,"levels":4}}`,
	}
	code, lines := batchLines(t, ts.URL, `{"items":[`+strings.Join(items, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(lines) != len(items) {
		t.Fatalf("want %d lines, got %d", len(items), len(lines))
	}
	for i := 1; i < len(lines); i++ {
		if !bytes.Equal(lines[0], lines[i]) {
			t.Errorf("line %d differs from line 0", i)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("computes=%d for %d identical batch items, want exactly 1", got, len(items))
	}
	if co := srv.metrics["evaluate"].coalesced.Load(); co != int64(len(items)-1) {
		t.Errorf("coalesced=%d, want %d (intra-batch duplicates)", co, len(items)-1)
	}

	// The batch populated the shared cache: the same request as a
	// single request replays without recomputation.
	if code, _ := postJSON(t, ts.URL+"/v1/evaluate", items[0]); code != http.StatusOK {
		t.Fatalf("single replay status %d", code)
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("single request after batch recomputed (computes=%d)", got)
	}
}

// TestBatchPerItemErrors proves invalid items fail individually — the
// valid items still answer, in order — and the error lines use the
// uniform error body.
func TestBatchPerItemErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	items := []string{
		`{"zoo":"Lenet-c"}`,
		`{"zoo":"NoSuchNet"}`,
		`{"endpoint":"explore","zoo":"SFC"}`,
		`{"endpoint":"compare","zoo":"SFC","strategy":"dp"}`,
		`{"zoo":"SFC"}`,
	}
	code, lines := batchLines(t, ts.URL, `{"items":[`+strings.Join(items, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(lines) != len(items) {
		t.Fatalf("want %d lines, got %d", len(items), len(lines))
	}
	for i, wantErr := range []bool{false, true, true, true, false} {
		isErr := bytes.HasPrefix(lines[i], []byte(`{"error":`))
		if isErr != wantErr {
			t.Errorf("item %d: error=%v, want %v: %s", i, isErr, wantErr, lines[i])
		}
	}
	if !bytes.Contains(lines[1], []byte("item 1")) {
		t.Errorf("error line does not name its item: %s", lines[1])
	}
	if !bytes.Contains(lines[2], []byte("unknown endpoint")) {
		t.Errorf("explore endpoint not rejected: %s", lines[2])
	}
}

// TestBatchEnvelopeErrors exercises whole-batch failures.
func TestBatchEnvelopeErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"empty items", `{"items":[]}`},
		{"missing items", `{}`},
		{"bad json", `{"items":`},
		{"unknown field", `{"items":[{"zoo":"SFC"}],"mode":"fast"}`},
		{"too many items", `{"items":[` + strings.Repeat(`{"zoo":"SFC"},`, MaxBatchItems) + `{"zoo":"SFC"}]}`},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+"/v1/batch", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, body)
		}
	}
}

// TestPanicContainment proves a panicking computation reached through
// a bare goroutine — an async job or a batch pool worker, neither of
// which sits under net/http's per-connection recover — is contained as
// that consumer's error instead of killing the daemon.
func TestPanicContainment(t *testing.T) {
	srv, err := New(Options{
		OnCompute: func(string, string) { panic("boom") },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Batch: the panicking item fails in-band; the batch answers 200.
	code, lines := batchLines(t, ts.URL, `{"items":[{"zoo":"SFC"}]}`)
	if code != http.StatusOK || len(lines) != 1 {
		t.Fatalf("batch status %d, %d lines", code, len(lines))
	}
	if !bytes.Contains(lines[0], []byte("panic")) {
		t.Errorf("batch item line does not report the panic: %s", lines[0])
	}
	if e := srv.metrics["evaluate"].errors.Load(); e != 1 {
		t.Errorf("evaluate errors=%d after failed batch item, want 1", e)
	}

	// Job: the panic lands as a failed job, not a dead process.
	st := submitJob(t, ts.URL, `{"zoo":"SFC","free":[{"level":0,"layer":0}]}`)
	fin := waitJob(t, ts.URL, st.ID)
	if fin.Status != jobStateFailed || !strings.Contains(fin.Error, "panic") {
		t.Errorf("job after panic: %+v, want failed with panic error", fin)
	}

	// The server is still alive and serving.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("daemon died after contained panics: %v", err)
	}
	resp.Body.Close()
}

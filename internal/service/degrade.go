package service

import (
	"context"
	"fmt"
	"net/http"

	hypar "repro"
	"repro/internal/runner"
)

// degradeStrategyJSON is one strategy's healthy-vs-degraded outcome
// inside /v1/degrade.
type degradeStrategyJSON struct {
	HealthyStepSeconds  float64 `json:"healthyStepSeconds"`
	DegradedStepSeconds float64 `json:"degradedStepSeconds"`
	// Slowdown is degraded/healthy step time: 1.0 means the fault cost
	// nothing, 2.0 means the degraded array trains at half speed.
	Slowdown float64 `json:"slowdown"`
}

// degradeResponse answers /v1/degrade.
type degradeResponse struct {
	Model          string       `json:"model"`
	Config         hypar.Config `json:"config"`
	Faults         hypar.Faults `json:"faults"`
	Accelerators   int          `json:"accelerators"`
	Survivors      int          `json:"survivors"`
	DegradedLevels int          `json:"degradedLevels"`
	// DegradedGroups is non-zero when HyPar's degraded evaluation ran as
	// group-level data parallelism across a non-power-of-two survivor
	// set (e.g. fault 1:1 leaves 3 intact groups): the surviving group
	// count the batch was split across. Zero means the aligned
	// sub-array plan won (or the survivor count was a power of two).
	DegradedGroups int `json:"degradedGroups,omitempty"`
	// UsedAccelerators is how many surviving accelerators HyPar's
	// replanned step actually engages: groups x group width under the
	// grouped candidate, the aligned sub-array size (2^degradedLevels)
	// otherwise.
	UsedAccelerators int                            `json:"usedAccelerators"`
	Strategies       map[string]degradeStrategyJSON `json:"strategies"`
	// DegradedPlan is HyPar's replanned partition over the surviving
	// sub-array — one group's partition when degradedGroups is set.
	DegradedPlan planJSON `json:"degradedPlan"`
}

// handleDegrade answers POST /v1/degrade: the common request envelope
// with a config that names a fault spec, evaluated twice — once healthy
// (faults cleared) and once degraded — for every strategy, reporting
// the per-strategy slowdown and HyPar's replanned partition over the
// surviving sub-array. The fault spec is required: without one there is
// nothing to degrade, and the request is rejected rather than silently
// collapsing into /v1/compare.
func (s *Server) handleDegrade(w http.ResponseWriter, r *http.Request) error {
	return s.serveBody(w, r, "degrade", false, func(p *parsed) error {
		if p.cfg.Faults.IsZero() {
			return badRequest(fmt.Errorf(`%w: /v1/degrade needs a fault spec (config "faults", e.g. {"level":1,"groups":2}); use /v1/compare for healthy arrays`, ErrService))
		}
		return nil
	}, s.computeDegrade)
}

// degradeUnit is one (config, strategy) evaluation of the healthy ×
// degraded fan-out.
type degradeUnit struct {
	cfg      hypar.Config
	strategy hypar.Strategy
}

// computeDegrade renders the /v1/degrade response for a resolved
// request.
func (s *Server) computeDegrade(ctx context.Context, p *parsed) (response, error) {
	healthy := p.cfg
	healthy.Faults = hypar.Faults{}

	units := make([]degradeUnit, 0, 2*len(hypar.Strategies))
	for _, st := range hypar.Strategies {
		units = append(units, degradeUnit{cfg: healthy, strategy: st})
		units = append(units, degradeUnit{cfg: p.cfg, strategy: st})
	}
	results, err := runner.MapCtx(ctx, s.pool, units,
		func(_ int, u degradeUnit) (*hypar.Result, error) {
			res, err := s.runShared(ctx, p.model, u.strategy, u.cfg)
			if err != nil {
				side := "degraded"
				if u.cfg.Faults.IsZero() {
					side = "healthy"
				}
				return nil, computeErr(fmt.Errorf("%s strategy %v: %w", side, u.strategy, err))
			}
			return res, nil
		})
	if err != nil {
		return response{}, err
	}

	resp := degradeResponse{
		Model:          p.model.Name,
		Config:         p.cfg,
		Faults:         p.cfg.Faults,
		Accelerators:   1 << uint(p.cfg.Levels),
		Survivors:      p.cfg.SurvivingAccelerators(),
		DegradedLevels: p.cfg.EffectiveLevels(),
		Strategies:     make(map[string]degradeStrategyJSON, len(hypar.Strategies)),
	}
	for i, st := range hypar.Strategies {
		h, d := results[2*i], results[2*i+1]
		entry := degradeStrategyJSON{
			HealthyStepSeconds:  h.Stats.StepSeconds,
			DegradedStepSeconds: d.Stats.StepSeconds,
		}
		if h.Stats.StepSeconds > 0 {
			entry.Slowdown = d.Stats.StepSeconds / h.Stats.StepSeconds
		}
		resp.Strategies[st.String()] = entry
		if st == hypar.HyPar {
			resp.DegradedGroups = d.DegradedGroups
			resp.UsedAccelerators = d.Plan.NumAccelerators()
			if d.DegradedGroups > 0 {
				resp.UsedAccelerators *= d.DegradedGroups
			}
			resp.DegradedPlan = planToJSON(d.Plan, p.model, p.cfg)
		}
	}
	return jsonResponse(resp)
}

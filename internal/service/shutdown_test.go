package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer serves a new Server on an ephemeral port and returns its
// base URL plus the Serve error channel.
func startServer(t *testing.T, opts Options) (*Server, string, chan error) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	return srv, "http://" + ln.Addr().String(), serveErr
}

// TestShutdownDrainsExploreStream is the graceful-drain regression
// test: an NDJSON /v1/explore stream opened before Shutdown completes
// in full — every point plus the summary — while a request arriving
// after Shutdown began is refused at the connection level.
func TestShutdownDrainsExploreStream(t *testing.T) {
	srv, base, serveErr := startServer(t, Options{})

	// Open the stream and read the header line, so the request is
	// provably in flight before Shutdown is called. 2^8 = 256 VGG-A
	// points keep the sweep busy while the drain proceeds.
	resp, err := http.Post(base+"/v1/explore", "application/json",
		strings.NewReader(`{"zoo":"VGG-A"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no header line: %v", sc.Err())
	}
	var header exploreHeaderJSON
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil || header.Type != "header" {
		t.Fatalf("bad header %q: %v", sc.Bytes(), err)
	}

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutErr <- srv.Shutdown(ctx)
	}()

	// New connections must be refused once the listener closes. Poll:
	// Shutdown closes it at entry, but the goroutine may not have run
	// yet.
	refused := false
	for i := 0; i < 200; i++ {
		r2, err := http.Post(base+"/v1/plan", "application/json",
			strings.NewReader(`{"zoo":"SFC"}`))
		if err != nil {
			refused = true
			break
		}
		r2.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("new request accepted after Shutdown began")
	}

	// The in-flight stream still completes in full.
	points := 0
	sawSummary := false
	for sc.Scan() {
		var typ struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &typ); err != nil {
			t.Fatalf("bad line %q: %v", sc.Bytes(), err)
		}
		switch typ.Type {
		case "point":
			points++
		case "summary":
			sawSummary = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broken during drain: %v", err)
	}
	if points != header.Points || !sawSummary {
		t.Errorf("drained stream truncated: %d/%d points, summary=%v", points, header.Points, sawSummary)
	}

	if err := <-shutErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

// TestShutdownDrainsJobs proves Shutdown waits for running async jobs:
// a job submitted before Shutdown finishes (state done, result
// available) rather than being killed with the daemon.
func TestShutdownDrainsJobs(t *testing.T) {
	srv, base, serveErr := startServer(t, Options{})

	code, b := postJSON(t, base+"/v1/jobs", `{"zoo":"VGG-A"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, b)
	}
	var st jobStatusJSON
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}

	// The job ran to completion during the drain.
	j, ok := srv.jobs.get(st.ID)
	if !ok {
		t.Fatal("job vanished during drain")
	}
	fin := j.status()
	if fin.Status != jobStateDone || fin.Done != fin.Points {
		t.Errorf("job after drain: %+v, want done with all points", fin)
	}

	// New submissions are refused while/after draining.
	if _, err := srv.jobs.add("x", "k", 1); err == nil {
		t.Error("job table accepted a submission after drain")
	}
}

// TestShutdownDeadlineCancelsJobs proves a drain that overruns its
// context deadline cancels outstanding jobs instead of hanging.
func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	srv, base, serveErr := startServer(t, Options{
		OnCompute: func(string, string) { <-gate },
	})

	code, b := postJSON(t, base+"/v1/jobs", `{"zoo":"VGG-A"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, b)
	}
	var st jobStatusJSON
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	// The gate never opens before the deadline: drain must cancel the
	// job and report the deadline, not hang.
	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		shutErr <- srv.Shutdown(ctx)
	}()
	// Release the gate only after the deadline fires, so cancellation
	// (not completion) resolves the job.
	time.Sleep(400 * time.Millisecond)
	close(gate)
	released = true

	if err := <-shutErr; err == nil {
		t.Error("Shutdown reported success despite overrunning its deadline")
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}
	j, ok := srv.jobs.get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got := j.status().Status; got != jobStateCanceled {
		t.Errorf("job after deadline drain: %q, want canceled", got)
	}
}

// TestShutdownDrainUnblocksFollowerJob is the follower-drain
// regression test: a canceled job that is a singleflight follower of a
// still-running synchronous /v1/explore leader must abandon its wait
// promptly — Shutdown's job drain returns at its deadline instead of
// blocking until the leader's whole sweep finishes.
func TestShutdownDrainUnblocksFollowerJob(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	srv, base, serveErr := startServer(t, Options{
		OnCompute: func(string, string) { <-gate },
	})

	// The HTTP explore becomes the flight leader and blocks at the gate
	// (standing in for a minutes-long sweep).
	exploreDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/explore", "application/json",
			strings.NewReader(`{"zoo":"VGG-A"}`))
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		exploreDone <- err
	}()
	for i := 0; i < 400 && srv.metrics["explore"].computes.Load() == 0; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.metrics["explore"].computes.Load() == 0 {
		t.Fatal("explore leader never started computing")
	}

	// The job coalesces onto the leader's flight as a follower.
	code, b := postJSON(t, base+"/v1/jobs", `{"zoo":"VGG-A"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, b)
	}
	var st jobStatusJSON
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}

	// Shutdown with a short deadline: the drain must cancel the
	// follower job and return near the deadline — the leader's sweep
	// (still gated) must not hold it hostage.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	err := srv.Shutdown(ctx)
	cancel()
	if err == nil {
		t.Error("Shutdown reported success despite the gated leader")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Shutdown blocked %v on a follower job (drain not cancelable)", elapsed)
	}
	j, ok := srv.jobs.get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got := j.status().Status; got != jobStateCanceled {
		t.Errorf("follower job after deadline drain: %q, want canceled", got)
	}

	// Release the leader so the handler, listener and test shut down.
	close(gate)
	released = true
	if err := <-exploreDone; err != nil {
		t.Errorf("explore leader: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

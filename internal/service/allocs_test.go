package service

import (
	"net/http"
	"strings"
	"testing"
)

// These tests pin the hot path's allocation behavior. CI runs them in a
// dedicated `go test -run TestAllocs` stage so an accidental allocation
// regression fails loudly instead of only showing up as benchmark
// drift. Bounds are small constants, not zeros: testing.AllocsPerRun
// amortizes pool refills after its initial GC, so a strict-zero bound
// would be flaky by construction.

// TestAllocsFastPathHit bounds the raw-bytes lookup: a hot hit builds
// one key string and touches nothing else — no JSON decode, no hashing,
// no config marshal.
func TestAllocsFastPathHit(t *testing.T) {
	srv, ts, _ := newFastTestServer(t, 0)
	body := []byte(`{"zoo":"Lenet-c","strategy":"hypar"}`)
	if code, resp := postJSON(t, ts.URL+"/v1/evaluate", string(body)); code != http.StatusOK {
		t.Fatalf("seed request: status %d: %s", code, resp)
	}
	if _, ok := srv.tryFast("evaluate", body); !ok {
		t.Fatal("seed request did not populate the fast path")
	}

	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := srv.tryFast("evaluate", body); !ok {
			t.Fatal("fast-path entry evicted mid-measurement")
		}
	})
	if allocs > 2 {
		t.Errorf("fast-path hit allocates %.1f objects per lookup, want <= 2 (one key string)", allocs)
	}
}

// TestAllocsRequestKey bounds the canonical request hash: the pooled
// hasher keeps the preimage buffer, digest and hex arrays across
// requests, so deriving a key allocates only the returned string.
func TestAllocsRequestKey(t *testing.T) {
	srv, _, _ := newFastTestServer(t, 0)
	p, err := srv.resolveRequest(request{Zoo: "VGG-A"}, true, false)
	if err != nil {
		t.Fatal(err)
	}
	want := p.key("evaluate")

	allocs := testing.AllocsPerRun(200, func() {
		if got := p.key("evaluate"); got != want {
			t.Fatalf("key drift: %s != %s", got, want)
		}
	})
	if allocs > 2 {
		t.Errorf("key() allocates %.1f objects per call, want <= 2 (the key string)", allocs)
	}
}

// TestAllocsZeroConfigMarshals proves base-config requests never
// re-marshal the config: they reuse the JSON rendered once at New. The
// package-level counter covers every request on the connection,
// including bodies whose explicit config canonicalizes back to base.
func TestAllocsZeroConfigMarshals(t *testing.T) {
	_, ts, _ := newFastTestServer(t, 0)
	before := configMarshals.Load()

	baseBodies := []string{
		`{"zoo":"Lenet-c","strategy":"hypar"}`,
		`{"zoo":"Lenet-c"}`,
		`{"zoo":"VGG-A","strategy":"dp","config":{}}`,
	}
	for _, body := range baseBodies {
		for i := 0; i < 3; i++ {
			if code, resp := postJSON(t, ts.URL+"/v1/evaluate", body); code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", body, code, resp)
			}
		}
	}
	if got := configMarshals.Load() - before; got != 0 {
		t.Errorf("base-config requests marshaled the config %d times, want 0", got)
	}

	// Sanity check the counter is live: a genuinely non-base config
	// must marshal (once per parse; replays skip it on both cache tiers).
	if code, resp := postJSON(t, ts.URL+"/v1/evaluate", `{"zoo":"Lenet-c","config":{"batch":64}}`); code != http.StatusOK {
		t.Fatalf("non-base config: status %d: %s", code, resp)
	}
	if got := configMarshals.Load() - before; got != 1 {
		t.Errorf("non-base config marshals = %d, want 1", got)
	}
}

// TestAllocsBodyBufferReuse pins the pool hygiene rules: body buffers
// recycle below the cap and are dropped once grown past it, so one
// hostile request cannot pin megabytes in the pool.
func TestAllocsBodyBufferReuse(t *testing.T) {
	small := getBodyBuf()
	small.WriteString(strings.Repeat("x", 1024))
	putBodyBuf(small)

	big := getBodyBuf()
	big.WriteString(strings.Repeat("x", bodyBufMax+1))
	if big.Cap() <= bodyBufMax {
		t.Fatalf("test setup: buffer cap %d did not exceed bodyBufMax", big.Cap())
	}
	putBodyBuf(big)

	reused := getBodyBuf()
	defer putBodyBuf(reused)
	if reused == big {
		t.Error("oversized buffer was pooled; putBodyBuf must drop it")
	}
	if reused.Len() != 0 {
		t.Errorf("pooled buffer not reset: %d bytes resident", reused.Len())
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	hypar "repro"
)

// TestComparePlatformsDistinct proves the /v1/compare surface accepts
// every registered platform and that the platforms are semantically
// distinct end to end: each request canonicalizes to its own
// deterministic hash (so caching and coalescing never conflate
// platforms) and each response carries different numbers.
func TestComparePlatformsDistinct(t *testing.T) {
	var mu sync.Mutex
	keys := make(map[string]string) // key -> platform that computed it
	srv, err := New(Options{
		OnCompute: func(_, key string) {
			mu.Lock()
			defer mu.Unlock()
			keys[key] = "seen"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	platforms := hypar.Platforms()
	if len(platforms) < 3 {
		t.Fatalf("want at least 3 registered platforms, have %v", platforms)
	}
	bodies := make(map[string]string)
	for _, p := range platforms {
		code, body := postJSON(t, ts.URL+"/v1/compare",
			fmt.Sprintf(`{"zoo":"Lenet-c","config":{"platform":%q}}`, p))
		if code != http.StatusOK {
			t.Fatalf("platform %s: status %d: %s", p, code, body)
		}
		bodies[p] = string(body)

		var resp compareResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("platform %s: decode: %v", p, err)
		}
		if resp.Config.Platform != p {
			t.Errorf("platform %s: response config says %q", p, resp.Config.Platform)
		}
		// The base config leaves topology/link to the platform, so the
		// override must resolve to the platform's native fabric.
		plat, err := hypar.PlatformByName(p)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Config.Topology != plat.Topologies()[0] || resp.Config.LinkMbps != plat.DefaultLinkMbps() {
			t.Errorf("platform %s: config resolved to %s@%g, want native %s@%g",
				p, resp.Config.Topology, resp.Config.LinkMbps, plat.Topologies()[0], plat.DefaultLinkMbps())
		}
	}

	mu.Lock()
	nkeys := len(keys)
	mu.Unlock()
	if nkeys != len(platforms) {
		t.Errorf("%d platforms computed %d distinct request hashes, want %d", len(platforms), nkeys, len(platforms))
	}
	seen := make(map[string]string)
	for p, b := range bodies {
		if prev, dup := seen[b]; dup {
			t.Errorf("platforms %s and %s returned byte-identical comparisons", prev, p)
		}
		seen[b] = p
	}
}

// TestPlatformCanonicalHash proves that spelling the default platform
// explicitly hashes identically to leaving it out: the second request
// must be a cache hit, not a recompute.
func TestPlatformCanonicalHash(t *testing.T) {
	srv, ts, computes := newTestServer(t)
	_ = srv
	code, _ := postJSON(t, ts.URL+"/v1/evaluate", `{"zoo":"Lenet-c"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	before := computes.Load()
	code, _ = postJSON(t, ts.URL+"/v1/evaluate", `{"zoo":"Lenet-c","config":{"platform":"hmc"}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if after := computes.Load(); after != before {
		t.Errorf("explicit default platform recomputed (%d -> %d computes), want cache hit", before, after)
	}
}

// TestPlatformUnknownRejected proves an unknown platform is a 400, not
// a served evaluation.
func TestPlatformUnknownRejected(t *testing.T) {
	_, ts, _ := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/evaluate", `{"zoo":"Lenet-c","config":{"platform":"quantum"}}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown platform: status %d: %s", code, body)
	}
}

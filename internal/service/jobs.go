package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// DefaultJobEntries is the async job-table bound when Options leaves
// JobEntries zero.
const DefaultJobEntries = 64

// Job states.
const (
	jobStateRunning  = "running"
	jobStateDone     = "done"
	jobStateFailed   = "failed"
	jobStateCanceled = "canceled"
)

// pointLinePrefix identifies a sweep-point NDJSON line. JSON marshals
// struct fields in declaration order and Type is explorePointJSON's
// first field, so the prefix is stable.
var pointLinePrefix = []byte(`{"type":"point"`)

// job is one asynchronous explore-class sweep. The immutable identity
// fields are set at submission; the mutable progress/result fields are
// guarded by mu.
type job struct {
	id      string
	key     string
	model   string
	points  int // sweep points, 2^len(free)
	created time.Time
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	state    string
	done     int // points computed so far (advances on the computing leader)
	errMsg   string
	resp     response
	finished time.Time
}

// bump records one computed sweep point.
func (j *job) bump() {
	j.mu.Lock()
	if j.done < j.points {
		j.done++
	}
	j.mu.Unlock()
}

// finish records the sweep's outcome. A cancellation error only means
// "canceled" when this job's own context was canceled — a coalesced
// computation can also die of another consumer's cancel, and that
// failure must not masquerade as this job having been canceled.
func (j *job) finish(resp response, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = jobStateDone
		j.resp = resp
		j.done = j.points
	case errors.Is(err, context.Canceled) && j.ctx.Err() != nil:
		j.state = jobStateCanceled
	default:
		j.state = jobStateFailed
		j.errMsg = err.Error()
	}
}

// jobStatusJSON is the wire form of one job's status.
type jobStatusJSON struct {
	ID             string  `json:"id"`
	Status         string  `json:"status"`
	Model          string  `json:"model"`
	Points         int     `json:"points"`
	Done           int     `json:"done"`
	Error          string  `json:"error,omitempty"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	Result         string  `json:"result,omitempty"`
}

// status snapshots the job for JSON rendering.
func (j *job) status() jobStatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatusJSON{
		ID:     j.id,
		Status: j.state,
		Model:  j.model,
		Points: j.points,
		Done:   j.done,
		Error:  j.errMsg,
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	st.ElapsedSeconds = end.Sub(j.created).Seconds()
	if j.state == jobStateDone {
		st.Result = "/v1/jobs/" + j.id + "/result"
	}
	return st
}

// isFinished reports whether the job reached a terminal state.
func (j *job) isFinished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state != jobStateRunning
}

// jobTable is the bounded registry of async jobs. Finished jobs stay
// visible (their status and result remain queryable) until the bound
// forces eviction in submission order or a DELETE removes them; when
// every tracked job is still running, new submissions are refused
// rather than evicting live work.
type jobTable struct {
	mu       sync.Mutex
	max      int
	seq      int
	jobs     map[string]*job
	order    []string // submission order, for bounded eviction
	draining bool
	wg       sync.WaitGroup
}

// newJobTable builds a table bounded to max jobs; max <= 0 disables the
// job endpoints entirely (New skips registering them).
func newJobTable(max int) *jobTable {
	return &jobTable{max: max, jobs: make(map[string]*job)}
}

// add registers a new job, evicting the oldest finished job when full.
func (t *jobTable) add(model string, key string, points int) (*job, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.draining {
		return nil, &httpError{code: http.StatusServiceUnavailable, retryAfter: 2,
			err: fmt.Errorf("%w: server is draining", ErrService)}
	}
	if len(t.jobs) >= t.max {
		evicted := false
		for i, id := range t.order {
			if t.jobs[id].isFinished() {
				delete(t.jobs, id)
				t.order = append(t.order[:i], t.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, &httpError{code: http.StatusServiceUnavailable, retryAfter: 1,
				err: fmt.Errorf("%w: job table full (%d jobs, all running)", ErrService, t.max)}
		}
	}
	t.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      fmt.Sprintf("j%d", t.seq),
		key:     key,
		model:   model,
		points:  points,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		state:   jobStateRunning,
	}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	t.wg.Add(1)
	return j, nil
}

// get looks a job up by id.
func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// remove deletes a job from the table.
func (t *jobTable) remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.jobs[id]; !ok {
		return
	}
	delete(t.jobs, id)
	for i, oid := range t.order {
		if oid == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// list snapshots every tracked job in submission order.
func (t *jobTable) list() []*job {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*job, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.jobs[id])
	}
	return out
}

// counts returns (tracked, active) job counts.
func (t *jobTable) counts() (int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	active := 0
	for _, j := range t.jobs {
		if !j.isFinished() {
			active++
		}
	}
	return len(t.jobs), active
}

// drain refuses new submissions, then waits for running jobs. Jobs get
// until ctx's deadline to finish on their own; past it they are
// canceled and drain waits for the (prompt) cancellation to land.
func (t *jobTable) drain(ctx context.Context) error {
	t.mu.Lock()
	t.draining = true
	t.mu.Unlock()
	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		t.mu.Lock()
		for _, j := range t.jobs {
			j.cancel()
		}
		t.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Handlers

// handleJobSubmit answers POST /v1/jobs: the /v1/explore envelope, run
// asynchronously. The response is the job's initial status (202); the
// sweep computes on a background goroutine through the same
// cache → singleflight → compute pipeline as /v1/explore, under the
// same request hash — a job and a synchronous explore for the same
// sweep share one cache entry and coalesce onto one computation, and a
// finished job's /result replays bytes identical to /v1/explore's.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) error {
	p, err := s.parseRequest(r, false, true)
	if err != nil {
		return err
	}
	if err := finishExploreParse(p); err != nil {
		return err
	}
	j, err := s.jobs.add(p.model.Name, p.key("explore"), 1<<uint(len(p.free)))
	if err != nil {
		return err
	}
	go s.runJob(j, p)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	return json.NewEncoder(w).Encode(j.status())
}

// runJob computes one job's sweep. Progress advances as the leader
// renders point lines; a job coalesced onto another in-flight
// computation of the same sweep jumps straight from 0 to done when
// that computation lands. Cancellation cuts the sweep between lines
// when this job leads, and — because the wait goes through
// resolveCtx(j.ctx) — promptly abandons a wait on another consumer's
// computation when this job follows, so Shutdown's job drain is never
// held hostage by a long-running synchronous explore leader.
// resolveRetry handles the inverse case: a follower poisoned by a
// since-canceled job leader retries instead of reporting a cancel it
// never asked for.
func (s *Server) runJob(j *job, p *parsed) {
	defer s.jobs.wg.Done()
	// The flight layer re-panics after releasing the key so failures
	// stay loud on HTTP paths, where net/http recovers per connection.
	// This goroutine has no such net — recover here, or one hostile
	// model submitted as a job would kill the whole daemon where the
	// same request via /v1/evaluate drops one connection.
	defer func() {
		if r := recover(); r != nil {
			j.finish(response{}, fmt.Errorf("%w: panic during sweep: %v", ErrService, r))
		}
	}()
	resp, err := s.resolveRetry(j.ctx, j.ctx, "explore", j.key, func(cctx context.Context) (response, error) {
		return s.exploreBody(cctx, p, func(b []byte) {
			if bytes.HasPrefix(b, pointLinePrefix) {
				j.bump()
			}
		})
	})
	j.finish(resp, err)
}

// jobFromPath resolves the {id} path value.
func (s *Server) jobFromPath(r *http.Request) (*job, error) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		return nil, &httpError{code: http.StatusNotFound,
			err: fmt.Errorf("%w: no job %q", ErrService, id)}
	}
	return j, nil
}

// jobGet wraps a GET job handler with metrics and error rendering.
func (s *Server) jobGet(w http.ResponseWriter, r *http.Request, h func() error) {
	m := s.metrics["jobs"]
	m.requests.Add(1)
	if err := h(); err != nil {
		m.errors.Add(1)
		code, retryAfter := httpStatus(err)
		s.noteFailure(code)
		s.writeError(w, code, retryAfter, err)
	}
}

// handleJobStatus answers GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	s.jobGet(w, r, func() error {
		j, err := s.jobFromPath(r)
		if err != nil {
			return err
		}
		w.Header().Set("Content-Type", "application/json")
		return json.NewEncoder(w).Encode(j.status())
	})
}

// handleJobList answers GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.jobGet(w, r, func() error {
		jobs := s.jobs.list()
		out := struct {
			Jobs []jobStatusJSON `json:"jobs"`
		}{Jobs: make([]jobStatusJSON, 0, len(jobs))}
		for _, j := range jobs {
			out.Jobs = append(out.Jobs, j.status())
		}
		w.Header().Set("Content-Type", "application/json")
		return json.NewEncoder(w).Encode(out)
	})
}

// handleJobResult answers GET /v1/jobs/{id}/result: the finished
// sweep's NDJSON, byte-identical to what /v1/explore streams for the
// same request. Unfinished jobs answer 409 with the job's status.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	s.jobGet(w, r, func() error {
		j, err := s.jobFromPath(r)
		if err != nil {
			return err
		}
		j.mu.Lock()
		state, resp, errMsg := j.state, j.resp, j.errMsg
		j.mu.Unlock()
		switch state {
		case jobStateDone:
			writeResponse(w, resp)
			return nil
		case jobStateFailed:
			return &httpError{code: http.StatusConflict,
				err: fmt.Errorf("%w: job %s failed: %s", ErrService, j.id, errMsg)}
		default:
			return &httpError{code: http.StatusConflict,
				err: fmt.Errorf("%w: job %s is %s", ErrService, j.id, state)}
		}
	})
}

// handleJobCancel answers DELETE /v1/jobs/{id}: a running job is
// canceled (it transitions to "canceled" once the sweep notices, which
// happens between lines); a finished job is removed from the table.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.jobGet(w, r, func() error {
		j, err := s.jobFromPath(r)
		if err != nil {
			return err
		}
		removed := false
		if j.isFinished() {
			s.jobs.remove(j.id)
			removed = true
		} else {
			j.cancel()
		}
		w.Header().Set("Content-Type", "application/json")
		return json.NewEncoder(w).Encode(struct {
			ID      string `json:"id"`
			Status  string `json:"status"`
			Removed bool   `json:"removed"`
		}{ID: j.id, Status: j.status().Status, Removed: removed})
	})
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hypar "repro"
	"repro/internal/cluster"
	"repro/internal/faultinject"
)

// clusterNode is one replica of an in-process test fleet.
type clusterNode struct {
	srv      *Server
	url      string
	computes *atomic.Int64
}

// newTestCluster boots n service.New replicas on loopback listeners
// wired to each other as peers, each with a compute-counting hook. mod
// (if non-nil) adjusts replica i's Options before New — the seam for
// drift and chaos variants.
func newTestCluster(t *testing.T, n int, mod func(i int, o *Options)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		computes := &atomic.Int64{}
		o := Options{
			Self:      urls[i],
			Peers:     urls,
			OnCompute: func(string, string) { computes.Add(1) },
		}
		if mod != nil {
			mod(i, &o)
		}
		srv, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		go func(ln net.Listener) { _ = srv.Serve(ln) }(lns[i])
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		nodes[i] = &clusterNode{srv: srv, url: urls[i], computes: computes}
	}
	return nodes
}

// fleetComputes sums actual evaluations across the fleet.
func fleetComputes(nodes []*clusterNode) int64 {
	var total int64
	for _, n := range nodes {
		total += n.computes.Load()
	}
	return total
}

// statszCluster fetches one replica's /statsz cluster block.
func statszCluster(t *testing.T, url string) *clusterSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Cluster
}

// TestClusterByteIdenticalSingleCompute is the tentpole acceptance
// check: a 3-replica cluster serves byte-identical responses to
// single-replica mode while computing each unique request exactly once
// fleet-wide.
func TestClusterByteIdenticalSingleCompute(t *testing.T) {
	single, ts, _ := newTestServer(t)
	_ = single
	nodes := newTestCluster(t, 3, nil)

	bodies := []struct{ endpoint, body string }{
		{"/v1/evaluate", `{"zoo":"Lenet-c","strategy":"hypar"}`},
		{"/v1/evaluate", `{"zoo":"Cifar-c","strategy":"dp"}`},
		{"/v1/plan", `{"zoo":"AlexNet","strategy":"trick"}`},
		{"/v1/compare", `{"zoo":"SCONV"}`},
	}
	for _, b := range bodies {
		code, want := postJSON(t, ts.URL+b.endpoint, b.body)
		if code != http.StatusOK {
			t.Fatalf("single replica %s: status %d: %s", b.endpoint, code, want)
		}
		before := fleetComputes(nodes)
		for i, n := range nodes {
			code, got := postJSON(t, n.url+b.endpoint, b.body)
			if code != http.StatusOK {
				t.Fatalf("replica %d %s: status %d: %s", i, b.endpoint, code, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("replica %d %s: response differs from single-replica mode:\ncluster: %s\nsingle:  %s", i, b.endpoint, got, want)
			}
		}
		if got := fleetComputes(nodes) - before; got != 1 {
			t.Errorf("%s %s: fleet computed %d times, want exactly 1", b.endpoint, b.body, got)
		}
	}

	// Repeat traffic through every replica replays from each one's own
	// raw-bytes tier — zero additional computes, zero additional wire
	// traffic for the fleet.
	before := fleetComputes(nodes)
	for _, b := range bodies {
		for i, n := range nodes {
			code, got := postJSON(t, n.url+b.endpoint, b.body)
			if code != http.StatusOK {
				t.Fatalf("replica %d replay %s: status %d", i, b.endpoint, code)
			}
			_ = got
		}
	}
	if got := fleetComputes(nodes); got != before {
		t.Errorf("replays computed %d extra times, want 0", got-before)
	}
	var fastHits int64
	for _, n := range nodes {
		for _, ep := range []string{"plan", "evaluate", "compare"} {
			fastHits += n.srv.metrics[ep].fastHits.Load()
		}
	}
	if fastHits < int64(len(bodies)*len(nodes)) {
		t.Errorf("raw-tier replays = %d, want at least %d (every repeat through every replica)", fastHits, len(bodies)*len(nodes))
	}
}

// TestClusterStatszBlock proves /statsz grows the cluster block with
// ring geometry and peer-fill counters, and that single-replica servers
// omit it.
func TestClusterStatszBlock(t *testing.T) {
	_, ts, _ := newTestServer(t)
	if c := statszCluster(t, ts.URL); c != nil {
		t.Fatalf("single-replica /statsz has a cluster block: %+v", c)
	}

	nodes := newTestCluster(t, 3, nil)
	body := `{"zoo":"Lenet-c","strategy":"hypar"}`
	for _, n := range nodes {
		if code, b := postJSON(t, n.url+"/v1/evaluate", body); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, b)
		}
	}
	var peerHits, peerMisses, peerServed int64
	for i, n := range nodes {
		c := statszCluster(t, n.url)
		if c == nil {
			t.Fatalf("replica %d /statsz has no cluster block", i)
		}
		if c.Self != n.url {
			t.Errorf("replica %d cluster.self = %q, want %q", i, c.Self, n.url)
		}
		if len(c.Peers) != 3 {
			t.Errorf("replica %d cluster.peers = %v, want 3 entries", i, c.Peers)
		}
		if c.VNodes != cluster.DefaultVNodes {
			t.Errorf("replica %d cluster.vnodes = %d, want %d", i, c.VNodes, cluster.DefaultVNodes)
		}
		if c.RingSize <= 0 {
			t.Errorf("replica %d cluster.ringSize = %d, want > 0", i, c.RingSize)
		}
		peerHits += c.PeerHits
		peerMisses += c.PeerMisses
		peerServed += c.PeerServed
	}
	// One key, three replicas: exactly one owner, so the two non-owners
	// fetched from it.
	if peerHits+peerMisses != 2 {
		t.Errorf("fleet peerHits+peerMisses = %d, want 2 (two non-owner fills)", peerHits+peerMisses)
	}
	if peerServed != 2 {
		t.Errorf("fleet peerServed = %d, want 2", peerServed)
	}
}

// TestClusterBatchRoutesItems proves batch items route through the ring
// exactly like single requests: a batch posted to one replica computes
// each unique item once fleet-wide.
func TestClusterBatchRoutesItems(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	batch := `{"items":[
		{"endpoint":"evaluate","zoo":"Lenet-c","strategy":"hypar"},
		{"endpoint":"plan","zoo":"Cifar-c","strategy":"dp"},
		{"endpoint":"evaluate","zoo":"Lenet-c","strategy":"hypar"}
	]}`
	code, b := postJSON(t, nodes[0].url+"/v1/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, b)
	}
	lines := bytes.Split(bytes.TrimSpace(b), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("batch answered %d lines, want 3", len(lines))
	}
	if !bytes.Equal(lines[0], lines[2]) {
		t.Error("duplicate batch items got different responses")
	}
	if got := fleetComputes(nodes); got != 2 {
		t.Errorf("fleet computed %d times for 2 unique items, want 2", got)
	}

	// The same items through another replica replay entirely from the
	// owners' caches.
	if code, _ := postJSON(t, nodes[1].url+"/v1/batch", batch); code != http.StatusOK {
		t.Fatalf("batch via second replica: status %d", code)
	}
	if got := fleetComputes(nodes); got != 2 {
		t.Errorf("fleet computed %d times after re-batch, want still 2", got)
	}
}

// forwardedBody finds a request body whose canonical key is NOT owned
// by nodes[from], so posting it there must forward to a peer.
func forwardedBody(t *testing.T, n *clusterNode) (body, key string) {
	t.Helper()
	for _, zoo := range []string{
		"Lenet-c", "Cifar-c", "SCONV", "SFC", "AlexNet",
		"VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E",
		"SRES-8", "Incep-2",
	} {
		body = fmt.Sprintf(`{"zoo":%q,"strategy":"hypar"}`, zoo)
		p, err := n.srv.parseBody([]byte(body), true, false)
		if err != nil {
			t.Fatal(err)
		}
		key = p.key("evaluate")
		if n.srv.cluster.ring.Owner(key) != n.srv.cluster.self {
			return body, key
		}
	}
	t.Fatal("no zoo body hashed to a remote owner; extend the candidate list")
	return "", ""
}

// TestClusterDriftDetected proves the 409 key-verification path: when a
// replica's base config drifts from the fleet's, forwarded fills are
// refused and the caller falls back to a locally computed — locally
// correct — response, poisoning nobody's cache.
func TestClusterDriftDetected(t *testing.T) {
	nodes := newTestCluster(t, 2, func(i int, o *Options) {
		if i == 1 {
			// Replica 1 boots with a drifted base config: same fleet,
			// different degraded-array default.
			cfg := hypar.DefaultConfig()
			cfg.Faults = hypar.Faults{Level: 1, Groups: 2}
			o.Config = cfg
		}
	})
	body, key := forwardedBody(t, nodes[0])

	// Reference: what a single healthy replica answers.
	_, ts, _ := newTestServer(t)
	refCode, want := postJSON(t, ts.URL+"/v1/evaluate", body)
	if refCode != http.StatusOK {
		t.Fatalf("reference: status %d", refCode)
	}

	code, got := postJSON(t, nodes[0].url+"/v1/evaluate", body)
	if code != http.StatusOK {
		t.Fatalf("drifted fleet: status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fallback response differs from healthy single-replica answer:\ngot:  %s\nwant: %s", got, want)
	}
	c0 := nodes[0].srv.cluster
	if c0.peerErrors.Load() == 0 {
		t.Error("drifted forward counted no peerErrors")
	}
	if c0.localFallbacks.Load() == 0 {
		t.Error("drifted forward did not fall back locally")
	}
	// The drifted owner refused before computing: its cache must not
	// hold the caller's key, and it must not have computed anything.
	if _, ok := nodes[1].srv.cache.Get(key); ok {
		t.Error("drifted owner cached a response under the caller's key")
	}
	if nodes[1].computes.Load() != 0 {
		t.Errorf("drifted owner computed %d times for a refused fill", nodes[1].computes.Load())
	}
}

// TestClusterPeerChaosFallsBack extends the chaos suite to peer
// fetches: injected peer errors and slowness must fall back to local
// compute within the request deadline and never poison either replica's
// cache.
func TestClusterPeerChaosFallsBack(t *testing.T) {
	in := faultinject.New(faultinject.Config{Seed: 42, ErrorRate: 1, SlowRate: 1, Slowness: 20 * time.Millisecond})
	nodes := newTestCluster(t, 2, func(i int, o *Options) {
		o.RequestTimeout = 10 * time.Second
		o.PeerFaultHook = in.Hook()
	})
	body, key := forwardedBody(t, nodes[0])

	_, ts, _ := newTestServer(t)
	if _, want := postJSON(t, ts.URL+"/v1/evaluate", body); true {
		start := time.Now()
		code, got := postJSON(t, nodes[0].url+"/v1/evaluate", body)
		if code != http.StatusOK {
			t.Fatalf("chaos fallback: status %d: %s", code, got)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("fallback took %s, past the request deadline", elapsed)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("fallback response differs from reference:\ngot:  %s\nwant: %s", got, want)
		}
	}
	c0 := nodes[0].srv.cluster
	if c0.peerErrors.Load() == 0 || c0.localFallbacks.Load() == 0 {
		t.Errorf("chaos fetch not counted: peerErrors=%d localFallbacks=%d",
			c0.peerErrors.Load(), c0.localFallbacks.Load())
	}
	if nodes[0].computes.Load() != 1 {
		t.Errorf("caller computed %d times, want exactly 1 local fallback", nodes[0].computes.Load())
	}
	// Neither cache is poisoned: the owner (which never saw the fill)
	// holds nothing, the caller holds the good fallback result and
	// replays it without recomputing.
	if _, ok := nodes[1].srv.cache.Get(key); ok {
		t.Error("owner cached an entry for a fetch that never reached it")
	}
	if code, _ := postJSON(t, nodes[0].url+"/v1/evaluate", body); code != http.StatusOK {
		t.Fatalf("replay after chaos: status %d", code)
	}
	if nodes[0].computes.Load() != 1 {
		t.Errorf("replay recomputed (computes=%d): fallback result was not cached", nodes[0].computes.Load())
	}

	// Once the chaos clears, peer fills work again for fresh keys.
	in.Disable()
	body2, _ := forwardedBody(t, nodes[1])
	if code, _ := postJSON(t, nodes[1].url+"/v1/evaluate", body2); code != http.StatusOK {
		t.Fatalf("post-chaos fill: status %d", code)
	}
	c1 := nodes[1].srv.cluster
	if c1.peerHits.Load()+c1.peerMisses.Load() == 0 {
		t.Error("post-chaos fetch did not reach the owner")
	}
}

// TestClusterConcurrentBurst hammers one key through every replica
// concurrently: responses stay byte-identical and the fleet computes
// once. Run with -race this doubles as the harness's data-race check.
func TestClusterConcurrentBurst(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	const body = `{"zoo":"Lenet-c","strategy":"hypar"}`
	const perNode = 8

	var wg sync.WaitGroup
	responses := make([][]byte, len(nodes)*perNode)
	errs := make([]error, len(nodes)*perNode)
	for ni, n := range nodes {
		for j := 0; j < perNode; j++ {
			wg.Add(1)
			go func(slot int, url string) {
				defer wg.Done()
				resp, err := http.Post(url+"/v1/evaluate", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					errs[slot] = err
					return
				}
				defer resp.Body.Close()
				var buf bytes.Buffer
				if _, err := buf.ReadFrom(resp.Body); err != nil {
					errs[slot] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[slot] = fmt.Errorf("status %d: %s", resp.StatusCode, buf.String())
					return
				}
				responses[slot] = buf.Bytes()
			}(ni*perNode+j, n.url)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < len(responses); i++ {
		if !bytes.Equal(responses[i], responses[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if got := fleetComputes(nodes); got != 1 {
		t.Errorf("fleet computed %d times under burst, want exactly 1", got)
	}
}

// TestClusterOptionsValidation pins the misconfiguration errors New
// refuses cluster mode with.
func TestClusterOptionsValidation(t *testing.T) {
	if _, err := New(Options{Self: "http://a:1"}); err == nil {
		t.Error("Self without Peers accepted")
	}
	if _, err := New(Options{Peers: []string{"http://a:1"}}); err == nil {
		t.Error("Peers without Self accepted")
	}
	if _, err := New(Options{Self: "http://c:3", Peers: []string{"http://a:1", "http://b:2"}}); err == nil {
		t.Error("Self outside the peer list accepted")
	}
	if _, err := New(Options{Self: "http://a:1", Peers: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Error("duplicate peers accepted")
	}
	if _, err := New(Options{PeerFaultHook: func(context.Context, string, string) error { return nil }}); err == nil {
		t.Error("PeerFaultHook without cluster mode accepted")
	}
}

package service

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/lru"
)

// DefaultRawCacheBytes is the raw-bytes fast-path budget when Options
// leaves RawCacheBytes zero: the summed size of retained request and
// response bytes. 4 MiB holds thousands of typical zoo-request entries
// while bounding what hostile all-unique traffic can pin.
const DefaultRawCacheBytes = 4 << 20

// rawEntryOverhead is the per-entry cost charged on top of the key and
// body bytes, approximating the map/list bookkeeping so the budget
// tracks real memory, not just payload.
const rawEntryOverhead = 128

// rawShards is the stripe count of the raw-bytes cache — fixed like
// the singleflight table's: the cache exists for the hottest traffic,
// where per-shard locking is what matters, and the byte budget (not
// the stripe count) bounds memory.
const rawShards = 16

// rawCache is the raw-bytes fast path: an exact-bytes → rendered-
// response table consulted before any JSON work. Keys are the verbatim
// request body prefixed by the endpoint; only bodies that already
// completed the full decode → canonicalize → hash → evaluate pipeline
// are stored, so replaying an entry returns exactly the bytes the slow
// path would. The cache is striped like the response LRU and bounded
// by total bytes (lru.NewSized), so hostile all-unique traffic churns
// the cold tail instead of growing memory.
type rawCache struct {
	shards []*lru.Cache[string, response]
}

// newRawCache builds a striped raw-bytes cache with the given total
// byte budget split evenly across shards.
func newRawCache(budget, shards int) *rawCache {
	c := &rawCache{shards: make([]*lru.Cache[string, response], shards)}
	cost := func(k string, r response) int { return len(k) + len(r.body) + rawEntryOverhead }
	for i := range c.shards {
		c.shards[i] = lru.NewSized[string, response](budget/shards, cost)
	}
	return c
}

// get returns the rendered response for the exact key.
func (c *rawCache) get(key string) (response, bool) {
	return c.shards[shardIndex(key, len(c.shards))].Get(key)
}

// put stores the rendered response under the exact key.
func (c *rawCache) put(key string, resp response) {
	c.shards[shardIndex(key, len(c.shards))].Put(key, resp)
}

// bytes returns the summed cost of resident entries.
func (c *rawCache) bytes() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.Cost()
	}
	return n
}

// len returns the resident entry count.
func (c *rawCache) len() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.Len()
	}
	return n
}

// rawKey builds the fast-path key: the endpoint, a separator no JSON
// body can contain, and the verbatim body bytes. One allocation (the
// backing string) per call.
func rawKey(endpoint string, body []byte) string {
	var b strings.Builder
	b.Grow(len(endpoint) + 1 + len(body))
	b.WriteString(endpoint)
	b.WriteByte(0)
	b.Write(body)
	return b.String()
}

// tryFast consults the raw-bytes fast path for the verbatim body. A
// hit means these exact bytes already ran the full slow path on this
// server, so the stored response is byte-identical to what decoding
// and evaluating again would produce — no JSON is touched.
func (s *Server) tryFast(endpoint string, body []byte) (response, bool) {
	if s.raw == nil {
		return response{}, false
	}
	return s.raw.get(rawKey(endpoint, body))
}

// storeFast records body → resp on the fast path after a successful
// slow-path resolution (computed, coalesced or canonical-cache hit).
// Errors are never stored, mirroring the canonical cache.
func (s *Server) storeFast(endpoint string, body []byte, resp response) {
	if s.raw == nil {
		return
	}
	s.raw.put(rawKey(endpoint, body), resp)
}

// errTooLarge renders an oversized-body failure as 413 (Request Entity
// Too Large) instead of a generic 400: the request may be perfectly
// well-formed, the server just refuses to read it.
func errTooLarge(limit int64) error {
	return &httpError{
		code: http.StatusRequestEntityTooLarge,
		err:  fmt.Errorf("%w: request body exceeds the %d-byte limit", ErrService, limit),
	}
}

// readBody reads the whole request body into buf, bounded by limit.
// Exceeding the limit is a 413; any other read failure is the
// client's 400. The buffer is the caller's (typically pooled) — its
// bytes are only valid until the caller releases it.
func readBody(r *http.Request, limit int64, buf *bytes.Buffer) error {
	if _, err := buf.ReadFrom(http.MaxBytesReader(nil, r.Body, limit)); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errTooLarge(mbe.Limit)
		}
		return badRequest(fmt.Errorf("%w: body: %v", ErrService, err))
	}
	return nil
}

// bodyBufs recycles request-body buffers across requests so the
// steady-state hot path reads without allocating. A buffer grown past
// bodyBufMax (one hostile large request) is dropped on release instead
// of pinning megabytes in the pool.
var bodyBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const bodyBufMax = 64 << 10

// getBodyBuf borrows an empty body buffer.
func getBodyBuf() *bytes.Buffer {
	b := bodyBufs.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// putBodyBuf releases the buffer unless it grew past the cap.
func putBodyBuf(b *bytes.Buffer) {
	if b.Cap() <= bodyBufMax {
		bodyBufs.Put(b)
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// wideForkJSON renders an inline DAG whose partition frontier equals
// branches: one stem fanning into parallel convs that one FC joins.
func wideForkJSON(branches int) string {
	var b strings.Builder
	b.WriteString(`{"name":"svc-wide","input":{"h":8,"w":8,"c":3},"layers":[`)
	b.WriteString(`{"name":"stem","type":"conv","k":3,"pad":1,"cout":4}`)
	ins := make([]string, 0, branches)
	for i := 0; i < branches; i++ {
		name := fmt.Sprintf("b%02d", i)
		fmt.Fprintf(&b, `,{"name":%q,"type":"conv","k":3,"pad":1,"cout":4,"inputs":["stem"]}`, name)
		ins = append(ins, fmt.Sprintf("%q", name))
	}
	fmt.Fprintf(&b, `,{"name":"join","type":"fc","cout":10,"inputs":[%s]}]}`, strings.Join(ins, ","))
	return b.String()
}

// TestBeamSearchRequest drives searchMethod through /v1/plan: the exact
// search refuses a frontier-width-18 DAG, the same request with
// "searchMethod":"beam" plans it.
func TestBeamSearchRequest(t *testing.T) {
	_, ts, _ := newTestServer(t)
	model := wideForkJSON(18)

	code, body := postJSON(t, ts.URL+"/v1/plan",
		`{"model":`+model+`,"config":{"batch":8,"levels":2}}`)
	if code == http.StatusOK {
		t.Fatalf("exact search planned a width-18 frontier: %s", body)
	}

	code, body = postJSON(t, ts.URL+"/v1/plan",
		`{"model":`+model+`,"config":{"batch":8,"levels":2,"searchMethod":"beam"}}`)
	if code != http.StatusOK {
		t.Fatalf("beam plan: status %d: %s", code, body)
	}
	var got planResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Plan.Layers) != 20 {
		t.Fatalf("beam plan covers %d layers, want 20", len(got.Plan.Layers))
	}
	for _, l := range got.Plan.Layers {
		if len(l.Assign) != 2 {
			t.Errorf("layer %s assignment %q, want 2 levels", l.Name, l.Assign)
		}
	}

	// An unknown method or a bad width must answer 400, not 500.
	for _, cfg := range []string{
		`{"searchMethod":"quantum"}`,
		`{"searchMethod":"beam","beamWidth":-3}`,
	} {
		if code, body := postJSON(t, ts.URL+"/v1/plan",
			`{"zoo":"SFC","config":`+cfg+`}`); code != http.StatusBadRequest {
			t.Errorf("config %s: status %d, want 400: %s", cfg, code, body)
		}
	}
}

// TestBeamSearchHashDistinct proves the search method and beam width
// are part of the canonical request hash: the same model under exact,
// beam, and a non-default beam width must compute three times, while a
// spelled-out default ("hierarchical") coalesces with the implicit one.
func TestBeamSearchHashDistinct(t *testing.T) {
	_, ts, computes := newTestServer(t)
	reqs := []string{
		`{"zoo":"Incep-2","config":{"batch":16,"levels":2}}`,
		`{"zoo":"Incep-2","config":{"batch":16,"levels":2,"searchMethod":"beam"}}`,
		`{"zoo":"Incep-2","config":{"batch":16,"levels":2,"searchMethod":"beam","beamWidth":4}}`,
	}
	for _, r := range reqs {
		if code, body := postJSON(t, ts.URL+"/v1/evaluate", r); code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", r, code, body)
		}
	}
	if got := computes.Load(); got != 3 {
		t.Errorf("distinct search configs computed %d times, want 3", got)
	}
	// The default spelling canonicalizes away: no fourth compute.
	if code, body := postJSON(t, ts.URL+"/v1/evaluate",
		`{"zoo":"Incep-2","config":{"batch":16,"levels":2,"searchMethod":"hierarchical","beamWidth":9}}`); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := computes.Load(); got != 3 {
		t.Errorf("spelled-out default search re-computed: %d computes, want 3", got)
	}
}

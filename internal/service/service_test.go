package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hypar "repro"
	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/runner"
)

// newTestServer builds a server on the paper's default config with a
// compute-counting hook.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *atomic.Int64) {
	t.Helper()
	var computes atomic.Int64
	srv, err := New(Options{
		OnCompute: func(string, string) { computes.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, &computes
}

// postJSON POSTs body and returns status + response bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestEvaluateFaithful proves the service path returns exactly what the
// library returns: every decoded field equals the direct
// hypar.Run result bit for bit (JSON float64 round-trips are exact).
func TestEvaluateFaithful(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, name := range []string{"Lenet-c", "VGG-A"} {
		code, body := postJSON(t, ts.URL+"/v1/evaluate", fmt.Sprintf(`{"zoo":%q,"strategy":"hypar"}`, name))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, body)
		}
		var got evaluateResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}

		m, err := hypar.ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := hypar.Run(m, hypar.HyPar, hypar.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !statsEqual(got.Stats, statsToJSON(want.Stats)) {
			t.Errorf("%s: stats differ from direct library call:\nhttp: %+v\nlib:  %+v", name, got.Stats, statsToJSON(want.Stats))
		}
		if got.Plan.TotalElems != want.Plan.TotalElems {
			t.Errorf("%s: plan TotalElems %v != %v", name, got.Plan.TotalElems, want.Plan.TotalElems)
		}
		for l, la := range got.Plan.Layers {
			if la.Assign != want.Plan.LayerString(l) {
				t.Errorf("%s: layer %d assignment %q != %q", name, l, la.Assign, want.Plan.LayerString(l))
			}
		}
	}
}

// statsEqual compares every field exactly. JSON float64 round-trips are
// exact, so equality here means the HTTP path lost nothing.
func statsEqual(a, b statsJSON) bool {
	return reflect.DeepEqual(a, b)
}

// TestPlanFaithful proves /v1/plan equals partition.Hierarchical.
func TestPlanFaithful(t *testing.T) {
	_, ts, _ := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/plan", `{"zoo":"AlexNet","strategy":"trick"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got planResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	want, err := hypar.NewPlan(m, hypar.OneWeirdTrick, hypar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Plan.TotalElems != want.TotalElems || got.Plan.Accelerators != want.NumAccelerators() {
		t.Errorf("plan mismatch: %+v", got.Plan)
	}
	for l := range m.Layers {
		if got.Plan.Layers[l].Assign != want.LayerString(l) {
			t.Errorf("layer %d: %q != %q", l, got.Plan.Layers[l].Assign, want.LayerString(l))
		}
	}
	if got.Strategy != hypar.OneWeirdTrick {
		t.Errorf("strategy echoed as %v", got.Strategy)
	}
}

// TestCompareFaithful proves /v1/compare matches hypar.Compare: same
// stats per strategy, same Fig6/Fig7 normalizations.
func TestCompareFaithful(t *testing.T) {
	_, ts, _ := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/compare", `{"zoo":"SFC"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got compareResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	m, err := hypar.ModelByName("SFC")
	if err != nil {
		t.Fatal(err)
	}
	want, err := hypar.Compare(m, hypar.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range hypar.Strategies {
		gr, ok := got.Results[st.String()]
		if !ok {
			t.Fatalf("strategy %v missing from response", st)
		}
		if !statsEqual(gr.Stats, statsToJSON(want.Results[st].Stats)) {
			t.Errorf("%v: stats differ:\nhttp: %+v\nlib:  %+v", st, gr.Stats, statsToJSON(want.Results[st].Stats))
		}
		if g := got.Gains[st.String()]; g.Performance != want.PerformanceGain(st) || g.EnergyEfficiency != want.EnergyEfficiency(st) {
			t.Errorf("%v: gains differ: %+v", st, g)
		}
	}
}

// TestExploreFaithful proves the /v1/explore NDJSON stream carries
// exactly the points Session.Explore computes, in code order.
func TestExploreFaithful(t *testing.T) {
	_, ts, _ := newTestServer(t)
	req := `{"zoo":"Lenet-c","free":[{"level":0,"layer":0},{"level":0,"layer":1},{"level":3,"layer":2}]}`
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}

	var header exploreHeaderJSON
	var points []explorePointJSON
	var summary exploreSummaryJSON
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lineBytes := sc.Bytes()
		var typ struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(lineBytes, &typ); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", lineBytes, err)
		}
		switch typ.Type {
		case "header":
			if err := json.Unmarshal(lineBytes, &header); err != nil {
				t.Fatal(err)
			}
		case "point":
			var p explorePointJSON
			if err := json.Unmarshal(lineBytes, &p); err != nil {
				t.Fatal(err)
			}
			points = append(points, p)
		case "summary":
			if err := json.Unmarshal(lineBytes, &summary); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown line type %q", typ.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if header.Points != 8 || len(points) != 8 {
		t.Fatalf("want 8 points, header says %d, got %d lines", header.Points, len(points))
	}

	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		t.Fatal(err)
	}
	free := []partition.FreeVar{{Level: 0, Layer: 0}, {Level: 0, Layer: 1}, {Level: 3, Layer: 2}}
	ex, err := experiments.NewSessionWithPool(hypar.DefaultConfig(), runner.Serial()).Explore(m, free, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if p.Code != i {
			t.Errorf("point %d out of order: code %d", i, p.Code)
		}
		if p.Gain != ex.Points[i].Gain || p.IsHyPar != ex.Points[i].IsHyPar {
			t.Errorf("point %d differs from library: %+v vs %+v", i, p, ex.Points[i])
		}
	}
	if summary.Peak.Gain != ex.Peak.Gain || summary.HyPar.Gain != ex.HyPar.Gain {
		t.Errorf("summary differs: %+v", summary)
	}
}

// TestCoalescing proves N identical concurrent requests reach the
// evaluator exactly once and every caller gets byte-identical bytes.
func TestCoalescing(t *testing.T) {
	srv, ts, computes := newTestServer(t)
	const n = 16
	body := `{"zoo":"VGG-A","strategy":"hypar"}`

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("evaluator computed %d times for %d identical concurrent requests, want exactly 1", got, n)
	}

	// A later identical request replays the cached bytes without
	// recomputation.
	code, b := postJSON(t, ts.URL+"/v1/evaluate", body)
	if code != http.StatusOK || !bytes.Equal(b, bodies[0]) {
		t.Error("cached replay is not byte-identical")
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("cache hit recomputed (computes=%d)", got)
	}
	// The replay is served from one of the two cache tiers: the exact
	// same bytes normally land on the raw-bytes fast path, but a racing
	// coalesced follower may have seeded only the canonical cache.
	fast := srv.metrics["evaluate"].fastHits.Load()
	hits := srv.metrics["evaluate"].cacheHits.Load()
	if fast+hits < 1 {
		t.Errorf("fastHits=%d cacheHits=%d, want >=1 combined", fast, hits)
	}
}

// TestRequestCanonicalization proves semantically identical requests
// (different spellings) hash to the same key: the second returns the
// first's cached bytes without recomputation.
func TestRequestCanonicalization(t *testing.T) {
	_, ts, computes := newTestServer(t)
	variants := []string{
		`{"zoo":"SCONV","strategy":"hypar"}`,
		`{"strategy":"HyPar","zoo":"SCONV","config":{"batch":256,"levels":4,"topology":"htree","linkMbps":1600,"precision":"fp32"}}`,
	}
	var first []byte
	for i, v := range variants {
		code, b := postJSON(t, ts.URL+"/v1/evaluate", v)
		if code != http.StatusOK {
			t.Fatalf("variant %d: status %d: %s", i, code, b)
		}
		if i == 0 {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Errorf("variant %d returned different bytes", i)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("computes=%d, want 1 (canonicalization failed)", got)
	}
}

// TestCustomModel submits a full JSON network description.
func TestCustomModel(t *testing.T) {
	_, ts, _ := newTestServer(t)
	req := `{"model":{"name":"custom","input":{"h":16,"w":16,"c":3},"layers":[
		{"name":"conv1","type":"conv","k":3,"pad":1,"cout":8,"pool":2},
		{"name":"fc1","type":"fc","cout":10,"act":"softmax"}]},
		"config":{"batch":32,"levels":2}}`
	code, body := postJSON(t, ts.URL+"/v1/evaluate", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got evaluateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Model != "custom" || got.Config.Batch != 32 || got.Config.Levels != 2 {
		t.Errorf("echoed %q config %+v", got.Model, got.Config)
	}
	// Partial override inherits the base topology and link bandwidth.
	if got.Config.Topology != "htree" || got.Config.LinkMbps != 1600 {
		t.Errorf("partial config override lost defaults: %+v", got.Config)
	}
	if got.Stats.StepSeconds <= 0 {
		t.Errorf("no simulation result: %+v", got.Stats)
	}
}

// TestRequestErrors exercises the failure surface.
func TestRequestErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"bad json", "/v1/evaluate", `{`, http.StatusBadRequest},
		{"no model", "/v1/evaluate", `{}`, http.StatusBadRequest},
		{"both refs", "/v1/evaluate", `{"zoo":"SFC","model":{"name":"x","input":{"h":1,"w":1,"c":1},"layers":[]}}`, http.StatusBadRequest},
		{"unknown zoo", "/v1/evaluate", `{"zoo":"ResNet-50"}`, http.StatusNotFound},
		{"bad strategy", "/v1/evaluate", `{"zoo":"SFC","strategy":"zigzag"}`, http.StatusBadRequest},
		{"bad config", "/v1/evaluate", `{"zoo":"SFC","config":{"batch":-1}}`, http.StatusBadRequest},
		{"unknown config field", "/v1/evaluate", `{"zoo":"SFC","config":{"batchSize":64}}`, http.StatusBadRequest},
		{"unknown field", "/v1/evaluate", `{"zoo":"SFC","frobnicate":1}`, http.StatusBadRequest},
		{"invalid model", "/v1/evaluate", `{"model":{"name":"x","input":{"h":8,"w":8,"c":1},"layers":[{"name":"l","type":"lstm","cout":4}]}}`, http.StatusBadRequest},
		{"strategy on compare", "/v1/compare", `{"zoo":"SFC","strategy":"dp"}`, http.StatusBadRequest},
		{"free on evaluate", "/v1/evaluate", `{"zoo":"SFC","free":[{"level":0,"layer":0}]}`, http.StatusBadRequest},
		{"free on plan", "/v1/plan", `{"zoo":"SFC","free":[{"level":0,"layer":0}]}`, http.StatusBadRequest},
		{"free out of range", "/v1/explore", `{"zoo":"SFC","free":[{"level":9,"layer":0}]}`, http.StatusBadRequest},
		{"too many free", "/v1/explore", `{"zoo":"VGG-A","free":[` + freeVars(13) + `]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+tc.url, tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q", tc.name, body)
		}
	}

	// GET on a POST endpoint.
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d", resp.StatusCode)
	}
}

// freeVars renders n distinct free-variable objects for VGG-A.
func freeVars(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf(`{"level":%d,"layer":%d}`, i%4, i)
	}
	return strings.Join(parts, ",")
}

// TestHealthAndStats exercises the observability endpoints.
func TestHealthAndStats(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "ok" {
		t.Errorf("healthz: %v", hz)
	}

	if code, _ := postJSON(t, ts.URL+"/v1/plan", `{"zoo":"SFC"}`); code != http.StatusOK {
		t.Fatalf("plan failed: %d", code)
	}
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var sz statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ep := sz.Endpoints["plan"]
	if ep.Requests < 1 || ep.Computes < 1 {
		t.Errorf("plan stats: %+v", ep)
	}
	if sz.CacheEntries < 1 {
		t.Errorf("cache entries: %d", sz.CacheEntries)
	}
}

// TestFlightPanicReleasesKey proves a panicking computation does not
// poison its singleflight key: followers get an error (not a hang) and
// the next caller for the key runs fresh.
func TestFlightPanicReleasesKey(t *testing.T) {
	var g flightGroup

	var entered sync.WaitGroup
	entered.Add(1)
	followerErr := make(chan error, 1)
	go func() {
		entered.Wait()
		_, err, leader := g.Do("k", func() (response, error) {
			// Only reached if this goroutine missed the leader's flight
			// (scheduling); then the key-release assertion below is the
			// whole test.
			return response{}, nil
		})
		if leader {
			followerErr <- nil
		} else {
			followerErr <- err
		}
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("leader panic did not propagate")
			}
		}()
		g.Do("k", func() (response, error) {
			entered.Done()
			// Give the follower time to join the flight; a scheduling
			// miss degrades the follower assertion, never flakes it.
			time.Sleep(100 * time.Millisecond)
			panic("boom")
		})
	}()

	select {
	case err := <-followerErr:
		if err != nil && !strings.Contains(err.Error(), "panic") {
			t.Fatalf("follower got %v, want a panic error (or nil on scheduling miss)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower hung on a poisoned key")
	}

	resp, err, leader := g.Do("k", func() (response, error) {
		return response{body: []byte("ok")}, nil
	})
	if err != nil || !leader || string(resp.body) != "ok" {
		t.Fatalf("key not released after panic: resp=%q err=%v leader=%v", resp.body, err, leader)
	}
}

// TestLRUBound proves the response cache evicts beyond its bound (the
// single-shard configuration — exact global LRU; the recency contract
// itself is pinned in internal/lru).
func TestLRUBound(t *testing.T) {
	c := newShardedLRU(2, 1)
	c.Put("a", response{body: []byte("a")})
	c.Put("b", response{body: []byte("b")})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.Put("c", response{body: []byte("c")}) // evicts b (a was refreshed)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted out of LRU order")
	}
	if c.Len() != 2 {
		t.Errorf("len %d", c.Len())
	}

	// Disabled cache never stores.
	d := newShardedLRU(-1, 1)
	d.Put("x", response{})
	if _, ok := d.Get("x"); ok {
		t.Error("disabled cache stored an entry")
	}
}

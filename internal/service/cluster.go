package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// Peer protocol wire constants. The fetch endpoint is internal: replicas
// of one fleet call it on each other, clients never do.
const (
	// PeerFetchPath is the internal owner-fill endpoint.
	PeerFetchPath = "/peer/v1/fetch"
	// peerEndpointHeader names the logical endpoint the forwarded body
	// belongs to ("plan", "evaluate", "compare", "degrade").
	peerEndpointHeader = "X-Hypar-Peer-Endpoint"
	// peerKeyHeader carries the caller's canonical request hash. The
	// owner recomputes the key from the forwarded body and refuses a
	// mismatch with 409 — disagreement means the replicas' base configs
	// have drifted, and serving the owner's answer under the caller's
	// key would poison the caller's raw tier.
	peerKeyHeader = "X-Hypar-Peer-Key"
	// peerDeadlineHeader propagates the caller's remaining budget in
	// milliseconds, so the owner never computes past a deadline the
	// caller has already given up on.
	peerDeadlineHeader = "X-Hypar-Peer-Deadline-Ms"
	// peerCacheHeader reports whether the owner answered from cache
	// ("hit") or had to compute ("miss").
	peerCacheHeader = "X-Hypar-Peer-Cache"
	// maxPeerResponseBytes bounds a peer response body; a fleet member
	// streaming garbage must not balloon the caller.
	maxPeerResponseBytes = 32 << 20
)

// clusterState is the per-server cluster half: ring, identity, peer
// transport and the /statsz cluster counters. nil on a single-replica
// server — every cluster touch point checks for that, so single-replica
// behavior is byte-for-byte the pre-cluster code path.
//
// Routing covers the cacheable request/response endpoints (plan,
// evaluate, compare, degrade — singly or as batch items). Explore
// streams NDJSON and jobs are async handles bound to the replica that
// accepted them; both stay local by design.
type clusterState struct {
	self   string
	ring   *cluster.Ring
	client *http.Client
	// faultHook runs at the head of every peer fetch (the chaos seam
	// mirroring Options.FaultHook for local computes): an error stands
	// in for a failed peer and exercises the local-fallback path.
	faultHook func(ctx context.Context, endpoint, key string) error

	peerHits       atomic.Int64 // owner answered from its cache
	peerMisses     atomic.Int64 // owner had to compute
	peerErrors     atomic.Int64 // fetch failed (peer down, drifted, slow)
	localFallbacks atomic.Int64 // computed locally after a failed fetch
	peerServed     atomic.Int64 // fetches this replica answered as owner
}

// clusterSnapshot is the /statsz "cluster" block.
type clusterSnapshot struct {
	Self           string   `json:"self"`
	Peers          []string `json:"peers"`
	VNodes         int      `json:"vnodes"`
	RingSize       int      `json:"ringSize"`
	PeerHits       int64    `json:"peerHits"`
	PeerMisses     int64    `json:"peerMisses"`
	PeerErrors     int64    `json:"peerErrors"`
	LocalFallbacks int64    `json:"localFallbacks"`
	PeerServed     int64    `json:"peerServed"`
}

func (c *clusterState) snapshot() *clusterSnapshot {
	return &clusterSnapshot{
		Self:           c.self,
		Peers:          c.ring.Members(),
		VNodes:         c.ring.VNodes(),
		RingSize:       c.ring.Size(),
		PeerHits:       c.peerHits.Load(),
		PeerMisses:     c.peerMisses.Load(),
		PeerErrors:     c.peerErrors.Load(),
		LocalFallbacks: c.localFallbacks.Load(),
		PeerServed:     c.peerServed.Load(),
	}
}

// initCluster wires cluster mode when Options names a peer fleet, and
// is a no-op otherwise. Called from New after the standard endpoints
// are registered.
func (s *Server) initCluster(opts Options) error {
	if opts.Self == "" && len(opts.Peers) == 0 {
		if opts.PeerFaultHook != nil {
			return fmt.Errorf("%w: PeerFaultHook set without Self/Peers", ErrService)
		}
		return nil
	}
	if opts.Self == "" || len(opts.Peers) == 0 {
		return fmt.Errorf("%w: cluster mode needs both Self and Peers (the full static peer list, including Self)", ErrService)
	}
	ring, err := cluster.NewRing(opts.Peers, opts.VNodes)
	if err != nil {
		return err
	}
	self := false
	for _, p := range opts.Peers {
		if p == opts.Self {
			self = true
			break
		}
	}
	if !self {
		return fmt.Errorf("%w: Self %q is not in the peer list %v — every replica must appear in its own ring, or the fleets' rings disagree", ErrService, opts.Self, opts.Peers)
	}
	client := opts.PeerClient
	if client == nil {
		// Deadlines ride on the request context; the transport bounds
		// only what a context cannot — dialing a black-holed peer, and a
		// wedged owner that never starts its response (the header
		// timeout matches the server's own WriteTimeout, so it can never
		// cut off a live computation the owner is still allowed to run).
		client = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       time.Minute,
			ResponseHeaderTimeout: 2 * time.Minute,
		}}
	}
	s.cluster = &clusterState{
		self:      opts.Self,
		ring:      ring,
		client:    client,
		faultHook: opts.PeerFaultHook,
	}
	s.metrics["peer"] = &endpointStats{}
	s.mux.HandleFunc(PeerFetchPath, s.post("peer", s.handlePeerFetch))
	return nil
}

// resolve routes one request hash to its computation. Single-replica
// servers and owned keys go straight through the local cache →
// singleflight → compute pipeline; in cluster mode a key owned by
// another replica is fetched from that owner (one fill serves the whole
// fleet: the owner's singleflight and LRU dedupe across replicas), with
// local compute as the fallback when the owner is unreachable. p may be
// nil for callers that cannot be forwarded (they resolve locally).
func (s *Server) resolve(waitCtx, computeCtx context.Context, endpoint, key string, p *parsed, compute func(ctx context.Context) (response, error)) (response, error) {
	c := s.cluster
	if c == nil || p == nil {
		return s.resolveCtx(waitCtx, computeCtx, endpoint, key, compute)
	}
	owner := c.ring.Owner(key)
	if owner == c.self {
		return s.resolveCtx(waitCtx, computeCtx, endpoint, key, compute)
	}
	m := s.metrics[endpoint]
	if resp, ok := s.cache.Get(key); ok {
		m.cacheHits.Add(1)
		return resp, nil
	}
	// Local callers for the same key coalesce onto one peer fetch, so a
	// burst of identical requests costs one wire round trip, not N.
	resp, err, leader := s.flight.DoCtx(waitCtx, key, func() (response, error) {
		if resp, ok := s.cache.Get(key); ok {
			m.cacheHits.Add(1)
			return resp, nil
		}
		if c.faultHook != nil {
			if err := c.faultHook(waitCtx, endpoint, key); err != nil {
				c.peerErrors.Add(1)
				return s.peerFallback(computeCtx, m, endpoint, key, compute)
			}
		}
		resp, hit, err := c.fetch(waitCtx, endpoint, key, owner, p)
		if err == nil {
			// The owner's answer is deliberately NOT put in the local
			// canonical cache: in a cluster each key is cached at its
			// owner so fleet capacity adds instead of duplicating. The
			// caller's raw-bytes tier still gets seeded (storeFast in
			// serveBody), keeping exact-bytes repeats wire-speed.
			if hit {
				c.peerHits.Add(1)
			} else {
				c.peerMisses.Add(1)
			}
			return resp, nil
		}
		if waitCtx != nil && waitCtx.Err() != nil {
			// The caller's own deadline or disconnect ended the fetch —
			// there is no budget left to fall back into.
			return response{}, waitCtx.Err()
		}
		c.peerErrors.Add(1)
		return s.peerFallback(computeCtx, m, endpoint, key, compute)
	})
	if !leader {
		m.coalesced.Add(1)
	}
	return resp, err
}

// peerFallback computes locally after a failed peer fetch, through the
// same admission/hook/cache tail as an owned compute. The fallback
// result does land in the local canonical cache: with the owner down,
// this replica is the key's effective home until the fleet heals.
func (s *Server) peerFallback(computeCtx context.Context, m *endpointStats, endpoint, key string, compute func(ctx context.Context) (response, error)) (response, error) {
	s.cluster.localFallbacks.Add(1)
	return s.computeLocked(computeCtx, m, endpoint, key, compute)
}

// peerBody renders the canonical forwarded body for a parsed request:
// the canonical model, strategy (only where the endpoint accepts one)
// and full canonical config. Canonicalization is idempotent, so the
// owner re-deriving the key from these bytes lands on the caller's key
// — and every replica forwarding the same logical request produces
// byte-identical bodies, so the owner's raw-bytes tier serves the whole
// fleet without JSON.
func peerBody(endpoint string, p *parsed) []byte {
	var b bytes.Buffer
	b.Grow(len(p.modelJSON) + len(p.cfgJSON) + 64)
	b.WriteString(`{"model":`)
	b.Write(p.modelJSON)
	if endpoint == "plan" || endpoint == "evaluate" {
		b.WriteString(`,"strategy":"`)
		b.WriteString(p.strategy.String())
		b.WriteString(`"`)
	}
	b.WriteString(`,"config":`)
	b.Write(p.cfgJSON)
	b.WriteString(`}`)
	return b.Bytes()
}

// fetch asks the owning replica for one key. The bool reports whether
// the owner answered from cache.
func (c *clusterState) fetch(ctx context.Context, endpoint, key, owner string, p *parsed) (response, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+PeerFetchPath, bytes.NewReader(peerBody(endpoint, p)))
	if err != nil {
		return response{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(peerEndpointHeader, endpoint)
	req.Header.Set(peerKeyHeader, key)
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(peerDeadlineHeader, strconv.FormatInt(ms, 10))
	}
	httpResp, err := c.client.Do(req)
	if err != nil {
		return response{}, false, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, maxPeerResponseBytes+1))
	if err != nil {
		return response{}, false, err
	}
	if len(body) > maxPeerResponseBytes {
		return response{}, false, fmt.Errorf("%w: peer %s response exceeds %d bytes", ErrService, owner, maxPeerResponseBytes)
	}
	if httpResp.StatusCode != http.StatusOK {
		// Carry the owner's error through for observability, but the
		// caller treats every non-200 as "peer failed" and falls back —
		// including 409 key mismatches (config drift).
		var eb errorResponse
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return response{}, false, fmt.Errorf("%w: peer %s answered %d: %s", ErrService, owner, httpResp.StatusCode, msg)
	}
	ct := httpResp.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	return response{contentType: ct, body: body}, httpResp.Header.Get(peerCacheHeader) == "hit", nil
}

// handlePeerFetch answers POST /peer/v1/fetch — the owner side of a
// peer fill. The body is the caller's canonical forwarded request; the
// owner verifies the caller's key against its own derivation (409 on
// drift), then resolves through its local cache → singleflight →
// compute pipeline. It never re-forwards: the caller chose this replica
// as owner, and serving locally regardless of ring opinion makes
// routing loops structurally impossible.
func (s *Server) handlePeerFetch(w http.ResponseWriter, r *http.Request) error {
	c := s.cluster
	endpoint := r.Header.Get(peerEndpointHeader)
	switch endpoint {
	case "plan", "evaluate", "compare", "degrade":
	default:
		return badRequest(fmt.Errorf("%w: %s %q is not a forwardable endpoint", ErrService, peerEndpointHeader, endpoint))
	}
	wantKey := r.Header.Get(peerKeyHeader)
	if wantKey == "" {
		return badRequest(fmt.Errorf("%w: missing %s", ErrService, peerKeyHeader))
	}
	buf := getBodyBuf()
	defer putBodyBuf(buf)
	if err := readBody(r, MaxRequestBytes, buf); err != nil {
		return err
	}
	body := buf.Bytes()
	m := s.metrics["peer"]
	// Exact forwarded bytes replay from the owner's raw tier without
	// touching JSON — every replica renders the same canonical body, so
	// one replica's earlier fetch seeds this fast path for the rest.
	if resp, ok := s.tryFast(endpoint, body); ok {
		m.fastHits.Add(1)
		c.peerServed.Add(1)
		w.Header().Set(peerCacheHeader, "hit")
		writeResponse(w, resp)
		return nil
	}
	p, err := s.parseBody(body, endpoint == "plan" || endpoint == "evaluate", false)
	if err != nil {
		return err
	}
	if endpoint == "degrade" && p.cfg.Faults.IsZero() {
		return badRequest(fmt.Errorf("%w: forwarded degrade body has no fault spec", ErrService))
	}
	key := p.key(endpoint)
	if key != wantKey {
		return &httpError{
			code: http.StatusConflict,
			err: fmt.Errorf("%w: key mismatch (caller %.12s…, owner %.12s…) — replica base configs have drifted; revalidate the topology",
				ErrService, wantKey, key),
		}
	}
	hit := false
	if _, ok := s.cache.Get(key); ok {
		hit = true
	}
	waitCtx, cancelWait := s.deadlineCtx(r.Context())
	defer cancelWait()
	if ms, err := strconv.ParseInt(r.Header.Get(peerDeadlineHeader), 10, 64); err == nil && ms > 0 {
		// The caller's remaining budget caps the owner's wait (and, if
		// this fetch leads, the computation) — work past it would be
		// thrown away on the calling side.
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithTimeout(waitCtx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	computeCtx, cancelCompute := s.deadlineCtx(nil)
	defer cancelCompute()
	resp, err := s.resolveCtx(waitCtx, computeCtx, endpoint, key, func(ctx context.Context) (response, error) {
		switch endpoint {
		case "plan":
			return s.computePlan(ctx, p)
		case "evaluate":
			return s.computeEvaluate(ctx, p)
		case "compare":
			return s.computeCompare(ctx, p)
		default:
			return s.computeDegrade(ctx, p)
		}
	})
	if err != nil {
		return err
	}
	c.peerServed.Add(1)
	s.storeFast(endpoint, body, resp)
	if hit {
		w.Header().Set(peerCacheHeader, "hit")
	} else {
		w.Header().Set(peerCacheHeader, "miss")
	}
	writeResponse(w, resp)
	return nil
}

package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHeteroRequestHashDistinct pins that per-level platform
// assignments are part of the request identity: two different mixed
// assignments and the homogeneous config all hash to distinct keys (so
// caching and coalescing never conflate them) and return different
// evaluations.
func TestHeteroRequestHashDistinct(t *testing.T) {
	keys := make(map[string]bool)
	srv, err := New(Options{
		OnCompute: func(_, key string) { keys[key] = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := []string{
		`{"zoo":"Lenet-c"}`,
		`{"zoo":"Lenet-c","config":{"platforms":{"0":"gpu-hbm"}}}`,
		`{"zoo":"Lenet-c","config":{"platforms":{"0":"tpu-systolic","1":"tpu-systolic"}}}`,
	}
	responses := make(map[string]string)
	for _, body := range bodies {
		code, resp := postJSON(t, ts.URL+"/v1/evaluate", body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, code, resp)
		}
		if prev, dup := responses[string(resp)]; dup {
			t.Errorf("requests %s and %s returned byte-identical evaluations", prev, body)
		}
		responses[string(resp)] = body
	}
	if len(keys) != len(bodies) {
		t.Errorf("%d requests computed %d distinct hashes, want %d", len(bodies), len(keys), len(bodies))
	}
}

// TestHeteroUniformSpecCanonicalHash pins the hash-preservation
// guarantee: a per-level assignment naming the default platform at
// every level canonicalizes to the plain single-platform config, so it
// hashes identically to a request that never mentioned platforms — a
// cache hit, not a recompute.
func TestHeteroUniformSpecCanonicalHash(t *testing.T) {
	_, ts, computes := newTestServer(t)
	code, _ := postJSON(t, ts.URL+"/v1/evaluate", `{"zoo":"Lenet-c"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	before := computes.Load()
	code, _ = postJSON(t, ts.URL+"/v1/evaluate",
		`{"zoo":"Lenet-c","config":{"platforms":{"0":"hmc","1":"hmc","2":"hmc","3":"hmc"}}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if after := computes.Load(); after != before {
		t.Errorf("uniform per-level spec recomputed (%d -> %d computes), want cache hit", before, after)
	}
	// Sparse spelling: holes inherit the config's platform, so an
	// object naming only level 0 as the default also collapses.
	before = computes.Load()
	code, _ = postJSON(t, ts.URL+"/v1/evaluate", `{"zoo":"Lenet-c","config":{"platforms":{"0":"hmc"}}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if after := computes.Load(); after != before {
		t.Errorf("sparse default spec recomputed (%d -> %d computes), want cache hit", before, after)
	}
}

// TestHeteroInvalidSpecRejected proves malformed per-level assignments
// are 400s, not served evaluations: an unknown platform name, a
// non-integer level key, and an out-of-range level index.
func TestHeteroInvalidSpecRejected(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, body := range []string{
		`{"zoo":"Lenet-c","config":{"platforms":{"0":"quantum"}}}`,
		`{"zoo":"Lenet-c","config":{"platforms":{"root":"hmc"}}}`,
		`{"zoo":"Lenet-c","config":{"platforms":{"25":"hmc"}}}`,
	} {
		code, resp := postJSON(t, ts.URL+"/v1/evaluate", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", body, code, resp)
		}
	}
}

package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	hypar "repro"
)

// branchedModelJSON is an inline DAG model: a stem forking into two
// branches that rejoin by channel concat, with a residual add variant
// exercised through the zoo names.
const branchedModelJSON = `{"name":"svc-dag","input":{"h":8,"w":8,"c":3},"layers":[` +
	`{"name":"a","type":"conv","k":3,"pad":1,"cout":4},` +
	`{"name":"b1","type":"conv","k":1,"cout":2,"inputs":["a"]},` +
	`{"name":"b2","type":"conv","k":3,"pad":1,"cout":2,"inputs":["a"]},` +
	`{"name":"c","type":"conv","k":3,"pad":1,"cout":4,"inputs":["b1","b2"]},` +
	`{"name":"f","type":"fc","cout":10}]}`

// TestBranchedZooByName serves the branched zoo networks by name and
// matches the library's own evaluation exactly.
func TestBranchedZooByName(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, name := range []string{"SRES-8", "Incep-2"} {
		code, body := postJSON(t, ts.URL+"/v1/evaluate", fmt.Sprintf(`{"zoo":%q,"strategy":"hypar"}`, name))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, body)
		}
		var got evaluateResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		m, err := hypar.ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := hypar.Run(m, hypar.HyPar, hypar.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.StepSeconds != want.Stats.StepSeconds || got.Stats.CommBytes != want.Stats.CommBytes {
			t.Errorf("%s: service stats differ from library: %+v vs step=%g comm=%g",
				name, got.Stats, want.Stats.StepSeconds, want.Stats.CommBytes)
		}
	}
}

// TestBranchedInlineModel posts a DAG model JSON through /v1/plan and
// checks the per-layer assignment covers every layer of the graph.
func TestBranchedInlineModel(t *testing.T) {
	_, ts, _ := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/plan",
		`{"model":`+branchedModelJSON+`,"config":{"batch":16,"levels":2}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got planResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Plan.Layers) != 5 {
		t.Fatalf("plan covers %d layers, want 5: %s", len(got.Plan.Layers), body)
	}
	for _, l := range got.Plan.Layers {
		if len(l.Assign) != 2 {
			t.Errorf("layer %s assignment %q, want 2 levels", l.Name, l.Assign)
		}
	}
}

// TestBranchedBatch drives branched items — zoo names and an inline DAG
// model — through /v1/batch and checks every line answers in order,
// byte-identical to the single-request endpoints.
func TestBranchedBatch(t *testing.T) {
	_, ts, _ := newTestServer(t)
	req := `{"items":[` +
		`{"endpoint":"evaluate","zoo":"SRES-8","strategy":"hypar"},` +
		`{"endpoint":"evaluate","zoo":"Incep-2","strategy":"hypar"},` +
		`{"endpoint":"plan","model":` + branchedModelJSON + `}]}`
	code, body := postJSON(t, ts.URL+"/v1/batch", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var lines [][]byte
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if len(lines) != 3 {
		t.Fatalf("batch answered %d lines, want 3: %s", len(lines), body)
	}
	singles := []struct{ endpoint, req string }{
		{"evaluate", `{"zoo":"SRES-8","strategy":"hypar"}`},
		{"evaluate", `{"zoo":"Incep-2","strategy":"hypar"}`},
		{"plan", `{"model":` + branchedModelJSON + `}`},
	}
	for i, s := range singles {
		_, want := postJSON(t, ts.URL+"/v1/"+s.endpoint, s.req)
		if !bytes.Equal(bytes.TrimRight(want, "\n"), lines[i]) {
			t.Errorf("batch line %d differs from single %s request:\n%s\n%s", i, s.endpoint, lines[i], want)
		}
	}
}

// TestBranchedRequestHashDistinct proves graph wiring is part of the
// request hash: the same layers with different skip targets (or joins)
// must not coalesce onto one cache entry.
func TestBranchedRequestHashDistinct(t *testing.T) {
	addJSON := `{"name":"svc-dag2","input":{"h":8,"w":8,"c":3},"layers":[` +
		`{"name":"a","type":"conv","k":3,"pad":1,"cout":4},` +
		`{"name":"b1","type":"conv","k":3,"pad":1,"cout":4,"inputs":["a"]},` +
		`{"name":"b2","type":"conv","k":3,"pad":1,"cout":4,"inputs":["a"]},` +
		`{"name":"c","type":"conv","k":3,"pad":1,"cout":4,"inputs":["b1","b2"],"join":"add"},` +
		`{"name":"f","type":"fc","cout":10}]}`
	concatJSON := `{"name":"svc-dag2","input":{"h":8,"w":8,"c":3},"layers":[` +
		`{"name":"a","type":"conv","k":3,"pad":1,"cout":4},` +
		`{"name":"b1","type":"conv","k":3,"pad":1,"cout":4,"inputs":["a"]},` +
		`{"name":"b2","type":"conv","k":3,"pad":1,"cout":4,"inputs":["a"]},` +
		`{"name":"c","type":"conv","k":3,"pad":1,"cout":4,"inputs":["b1","b2"]},` +
		`{"name":"f","type":"fc","cout":10}]}`
	_, ts, computes := newTestServer(t)
	code1, body1 := postJSON(t, ts.URL+"/v1/evaluate", `{"model":`+addJSON+`}`)
	code2, body2 := postJSON(t, ts.URL+"/v1/evaluate", `{"model":`+concatJSON+`}`)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d / %d: %s %s", code1, code2, body1, body2)
	}
	if computes.Load() != 2 {
		t.Errorf("add vs concat joins coalesced: %d computes, want 2", computes.Load())
	}
	if bytes.Equal(body1, body2) {
		t.Error("add and concat joins returned identical responses")
	}
}

package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	hypar "repro"
	"repro/internal/nn"
)

// TestNonBaseConfigSessionReuse is the sessionFor regression test: N
// requests at one identical non-base config must build exactly one
// experiments.Session (counter-hook-verified), where the old code
// built a throwaway session per request.
func TestNonBaseConfigSessionReuse(t *testing.T) {
	srv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	srv.sessions.SetOnBuild(func(hypar.Config) { builds.Add(1) })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Distinct free vars per request defeat the response cache, so each
	// request genuinely reaches sessionFor; the config stays identical
	// and non-base (batch 128 vs the default 256).
	const n = 6
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"zoo":"SFC","config":{"batch":128},"free":[{"level":%d,"layer":0}]}`, i%4)
		if code, b := postJSON(t, ts.URL+"/v1/explore", body); code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, b)
		}
	}
	if got := builds.Load(); got != 1 {
		t.Errorf("%d identical non-base-config requests built %d sessions, want exactly 1", n, got)
	}

	// A request at the base config uses the dedicated base session, not
	// the cache.
	if code, _ := postJSON(t, ts.URL+"/v1/explore", `{"zoo":"SFC","free":[{"level":0,"layer":0}]}`); code != http.StatusOK {
		t.Fatal("base-config request failed")
	}
	if got := builds.Load(); got != 1 {
		t.Errorf("base-config request built a cached session (builds=%d)", got)
	}

	// A different non-base config builds its own (one) session.
	if code, _ := postJSON(t, ts.URL+"/v1/explore", `{"zoo":"SFC","config":{"batch":32},"free":[{"level":0,"layer":0}]}`); code != http.StatusOK {
		t.Fatal("second non-base config failed")
	}
	if got := builds.Load(); got != 2 {
		t.Errorf("builds=%d after a second distinct config, want 2", got)
	}
}

// internModel builds a tiny distinct model for the intern cache tests.
func internModel(t *testing.T, i int) (string, *nn.Model) {
	t.Helper()
	raw := fmt.Sprintf(`{"name":"m%d","input":{"h":8,"w":8,"c":1},"layers":[{"name":"fc","type":"fc","cout":%d}]}`, i, i+1)
	m, err := nn.DecodeModel([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := nn.EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(enc), m
}

// TestModelCacheLRU is the intern-cache regression test: under
// hostile all-unique traffic the hot model must survive (LRU), where
// the old code flushed the entire map when full and evicted the hot
// set with it.
func TestModelCacheLRU(t *testing.T) {
	const max = 8
	c := newModelCache(max)

	hotKey, hot := internModel(t, 0)
	if got := c.intern(hotKey, hot); got != hot {
		t.Fatal("first intern did not store the instance")
	}

	// Hostile all-unique flood, several times the bound, touching the
	// hot model between every insertion (a realistic hot set).
	for i := 1; i <= 4*max; i++ {
		key, m := internModel(t, i)
		c.intern(key, m)
		_, probe := internModel(t, 0)
		if got := c.intern(hotKey, probe); got != hot {
			t.Fatalf("hot model evicted after %d unique insertions (flush-style eviction)", i)
		}
		if n := c.len(); n > max {
			t.Fatalf("cache grew to %d entries past the %d bound", n, max)
		}
	}

	// Cold entries were churned: the oldest flood key is gone, so
	// re-interning it stores a fresh instance.
	coldKey, cold1 := internModel(t, 1)
	_, cold2 := internModel(t, 1)
	if got := c.intern(coldKey, cold2); got == cold1 {
		t.Error("cold entry survived a flood 4x the bound — eviction is not happening")
	}
}

// Package service exposes the HyPar library as a long-running HTTP/JSON
// evaluation service — the serving surface of cmd/hypard. Four POST
// endpoints cover the library's planning and evaluation API:
//
//	POST /v1/plan      partition one network (no simulation)
//	POST /v1/evaluate  partition + simulate one training step
//	POST /v1/compare   all four strategies, with Fig6/7 normalizations
//	POST /v1/explore   parallelism-space sweep, streamed as NDJSON
//	POST /v1/batch     many plan/evaluate/compare items in one request
//	POST /v1/jobs      run an explore-class sweep asynchronously
//	GET  /v1/jobs/{id} job progress; /result replays the finished sweep
//
// plus GET /healthz (liveness) and GET /statsz (per-endpoint metrics).
// Requests name either a zoo network ("zoo") or carry a full JSON
// network description ("model", see nn.DecodeModel); the configuration
// is a partial override of the server's base config, including the
// accelerator platform ("platform": "hmc", "gpu-hbm" or
// "tpu-systolic") — overrides merge onto the operator's raw base
// before canonicalization, so switching platform resolves topology and
// link bandwidth to that platform's native defaults unless the
// operator or request pinned them.
//
// Every request canonicalizes to a deterministic SHA-256 hash. Identical
// concurrent requests coalesce onto one evaluation (singleflight) and
// completed responses live in a bounded LRU keyed by that hash, so a
// response is rendered once and replayed byte-for-byte — the evaluation
// path is deterministic, which makes byte-identical replay exact, not
// approximate. Both the response cache and the singleflight table are
// striped into independently locked shards keyed by the request hash,
// so the hot replay path scales with cores instead of serializing on
// one global mutex; non-base-config requests share bounded,
// config-keyed experiments.Sessions instead of rebuilding one per
// request.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hypar "repro"
	"repro/internal/experiments"
	"repro/internal/lru"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/runner"
)

// ErrService reports an invalid service request.
var ErrService = errors.New("service: invalid request")

// Request limits.
const (
	// MaxRequestBytes bounds a request body.
	MaxRequestBytes = 2 << 20
	// MaxFreeVars bounds an exploration sweep to 2^MaxFreeVars points.
	MaxFreeVars = 12
	// DefaultCacheEntries is the result-cache bound when Options leaves
	// CacheEntries zero.
	DefaultCacheEntries = 256
	// DefaultSessionEntries is the non-base-config session-cache bound
	// when Options leaves SessionEntries zero.
	DefaultSessionEntries = 32
	// DefaultModelEntries bounds the decoded-model intern cache.
	DefaultModelEntries = 1024
)

// Options configures a Server.
type Options struct {
	// Config is the base evaluation configuration; request configs are
	// partial overrides of it, applied before canonicalization — so a
	// base that leaves Topology/LinkMbps empty lets a request that
	// switches Platform resolve to that platform's native fabric. The
	// zero value means hypar.DefaultConfig (the paper workload, with
	// platform fields left to the canonical defaults).
	Config hypar.Config
	// Pool is the worker pool sweeps fan out on (nil = runner.Default).
	Pool *runner.Pool
	// CacheEntries bounds the response LRU (0 = DefaultCacheEntries,
	// negative = caching disabled).
	CacheEntries int
	// RawCacheBytes bounds the raw-bytes fast path — the exact-bytes →
	// response table consulted before any JSON decode — by the summed
	// size of retained request and response bytes (0 =
	// DefaultRawCacheBytes, negative = fast path disabled).
	RawCacheBytes int
	// SessionEntries bounds the config-keyed cache of
	// experiments.Sessions serving non-base-config requests
	// (0 = DefaultSessionEntries, negative = no reuse: a fresh session
	// per request, the pre-cache behavior).
	SessionEntries int
	// JobEntries bounds the async job table (0 = DefaultJobEntries,
	// negative = the /v1/jobs endpoints are disabled).
	JobEntries int
	// OnCompute, when set, is invoked once per actual evaluation — after
	// cache and coalescing, not once per request. Tests hook it to prove
	// N identical concurrent requests evaluate exactly once.
	OnCompute func(endpoint, key string)
	// RequestTimeout bounds each request's evaluation and wait: past it,
	// the request fails with a 504-class in-band error while coalesced
	// peers are unaffected (the computation itself is bounded by the
	// same timeout, measured from its own start). Zero means no
	// deadline.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrent evaluations (admission control):
	// when the bound is reached, new computations are shed with 429 +
	// Retry-After instead of queueing without bound. Cache hits and
	// coalesced followers are never shed — they do no work. Zero means
	// the default bound (8× the pool width, at least 32); negative
	// disables admission control.
	MaxInflight int
	// FaultHook, when set, runs at the head of every actual evaluation
	// (the same seam as OnCompute): returning an error fails the
	// evaluation in-band, panicking exercises the panic path, sleeping
	// injects slowness. Chaos tests plug internal/faultinject in here;
	// production leaves it nil.
	FaultHook func(ctx context.Context, endpoint, key string) error

	// Self is this replica's peer URL (e.g. "http://10.0.0.1:8080").
	// Setting it (with Peers) enables cluster mode: each canonical
	// request hash is owned by exactly one replica of the fleet, and
	// non-owners fill from the owner over /peer/v1/fetch. Empty = the
	// single-replica service, byte-for-byte the pre-cluster behavior.
	Self string
	// Peers is the full static peer list, including Self. Every replica
	// must boot with the same list (order-independent) so their rings
	// agree; hypardctl validate emits consistent flag sets.
	Peers []string
	// VNodes is the consistent-hash virtual-node count per replica
	// (0 = cluster.DefaultVNodes).
	VNodes int
	// PeerClient overrides the HTTP client used for peer fetches
	// (tests; nil = a pooled client with dial and response-header
	// timeouts).
	PeerClient *http.Client
	// PeerFaultHook, when set, runs at the head of every peer fetch —
	// the cluster counterpart of FaultHook: an error stands in for an
	// unreachable owner and must drive the local-compute fallback.
	// Chaos tests plug internal/faultinject in here.
	PeerFaultHook func(ctx context.Context, endpoint, key string) error
}

// endpointStats aggregates one endpoint's counters.
type endpointStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	fastHits  atomic.Int64
	cacheHits atomic.Int64
	coalesced atomic.Int64
	computes  atomic.Int64
	latencyNs atomic.Int64
}

// statsSnapshot is the JSON form of one endpoint's counters. fastHits
// counts raw-bytes fast-path replays (no JSON touched); cacheHits
// counts canonical-hash cache replays (decoded, hashed, not computed).
type statsSnapshot struct {
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	FastHits  int64 `json:"fastHits"`
	CacheHits int64 `json:"cacheHits"`
	Coalesced int64 `json:"coalesced"`
	Computes  int64 `json:"computes"`
	LatencyNs int64 `json:"latencyNs"`
}

// snapshot captures the counters.
func (e *endpointStats) snapshot() statsSnapshot {
	return statsSnapshot{
		Requests:  e.requests.Load(),
		Errors:    e.errors.Load(),
		FastHits:  e.fastHits.Load(),
		CacheHits: e.cacheHits.Load(),
		Coalesced: e.coalesced.Load(),
		Computes:  e.computes.Load(),
		LatencyNs: e.latencyNs.Load(),
	}
}

// Server is the evaluation service: one shared experiments.Session and
// hypar.Evaluator behind a coalescing, caching HTTP surface.
type Server struct {
	// baseRaw is the operator's base config exactly as given; request
	// overrides decode onto it so fields the operator left to platform
	// defaults stay overridable per request. base is its canonical form
	// — the config the shared session runs at.
	baseRaw hypar.Config
	base    hypar.Config
	// baseCfgJSON is base's canonical JSON, rendered once at New: every
	// request whose resolved config equals the base (the overwhelmingly
	// common case — any request without a "config" override) hashes
	// these bytes instead of re-marshaling per request.
	baseCfgJSON []byte
	pool        *runner.Pool
	session     *experiments.Session

	// evaluators recycles single-threaded hypar.Evaluators (engine slab
	// + per-config Arch cache) across requests: concurrent distinct
	// requests each borrow their own, so they parallelize, while the
	// amortized state still gets reused instead of rebuilt.
	evaluators sync.Pool

	// sessions reuses experiments.Sessions across non-base-config
	// requests, bounded and keyed by canonical config; the base config
	// keeps its dedicated session above.
	sessions *experiments.SessionCache

	cache     *shardedLRU
	raw       *rawCache // exact-bytes fast path (nil = disabled)
	flight    shardedFlight
	models    *modelCache
	jobs      *jobTable
	onCompute func(endpoint, key string)
	faultHook func(ctx context.Context, endpoint, key string) error

	// timeout is the per-request evaluation/wait deadline (0 = none);
	// admit is the admission-control semaphore (nil = unlimited).
	timeout time.Duration
	admit   chan struct{}

	// Resilience counters: requests shed by admission control (429),
	// refused by a full/draining job table (503), and failed by the
	// request deadline (504).
	shed     atomic.Int64
	refused  atomic.Int64
	deadline atomic.Int64

	// cluster holds the peer ring and counters in cluster mode, nil on
	// a single-replica server.
	cluster *clusterState

	mux     *http.ServeMux
	hs      *http.Server
	start   time.Time
	metrics map[string]*endpointStats
}

// New builds a Server. The base config is validated eagerly so a
// misconfigured daemon fails at startup, not per request.
func New(opts Options) (*Server, error) {
	raw := opts.Config
	if raw == (hypar.Config{}) {
		raw = hypar.DefaultConfig()
	}
	cfg := raw.Canonical()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool := opts.Pool
	if pool == nil {
		pool = runner.Default()
	}
	entries := opts.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	sessEntries := opts.SessionEntries
	if sessEntries == 0 {
		sessEntries = DefaultSessionEntries
	}
	jobEntries := opts.JobEntries
	if jobEntries == 0 {
		jobEntries = DefaultJobEntries
	}
	rawBytes := opts.RawCacheBytes
	if rawBytes == 0 {
		rawBytes = DefaultRawCacheBytes
	}
	baseCfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		baseRaw:     raw,
		base:        cfg,
		pool:        pool,
		baseCfgJSON: baseCfgJSON,
		session:     experiments.NewSessionWithPool(cfg, pool),
		sessions:    experiments.NewSessionCache(sessEntries, pool),
		cache:       newShardedLRU(entries, lruShardsFor(entries)),
		jobs:        newJobTable(jobEntries),
		onCompute:   opts.OnCompute,
		faultHook:   opts.FaultHook,
		timeout:     opts.RequestTimeout,
		mux:         http.NewServeMux(),
		start:       time.Now(),
		metrics:     make(map[string]*endpointStats),
	}
	if rawBytes > 0 {
		s.raw = newRawCache(rawBytes, rawShards)
	}
	inflight := opts.MaxInflight
	if inflight == 0 {
		// Default bound: far above the pool's own parallelism so normal
		// bursts (benchmarks run 8 concurrent clients) never shed, low
		// enough that a hostile flood degrades with 429s instead of
		// unbounded goroutine/memory growth.
		inflight = 8 * pool.Width()
		if inflight < 32 {
			inflight = 32
		}
	}
	if inflight > 0 {
		s.admit = make(chan struct{}, inflight)
	}
	// WriteTimeout bounds how long one stalled client can hold a
	// response open. This matters beyond hygiene: the /v1/explore
	// leader streams while holding its singleflight key, so without a
	// write deadline a client that stops reading would wedge that key
	// (and every coalesced follower) indefinitely. Two minutes is two
	// orders of magnitude above the largest permitted sweep's compute
	// time.
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	s.evaluators.New = func() any { return hypar.NewEvaluator() }
	s.models = newModelCache(DefaultModelEntries)
	for _, ep := range []string{"plan", "evaluate", "compare", "explore", "batch", "degrade", "jobs", "healthz", "statsz"} {
		s.metrics[ep] = &endpointStats{}
	}
	s.mux.HandleFunc("/v1/plan", s.post("plan", s.handlePlan))
	s.mux.HandleFunc("/v1/evaluate", s.post("evaluate", s.handleEvaluate))
	s.mux.HandleFunc("/v1/compare", s.post("compare", s.handleCompare))
	s.mux.HandleFunc("/v1/degrade", s.post("degrade", s.handleDegrade))
	s.mux.HandleFunc("/v1/explore", s.post("explore", s.handleExplore))
	s.mux.HandleFunc("/v1/batch", s.post("batch", s.handleBatch))
	if jobEntries > 0 {
		s.mux.HandleFunc("POST /v1/jobs", s.post("jobs", s.handleJobSubmit))
		s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
		s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	if err := s.initCluster(opts); err != nil {
		return nil, err
	}
	return s, nil
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.hs.Addr = addr
	err := s.hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Serve serves on an existing listener until Shutdown. The underlying
// http.Server exists from New on, so a Shutdown that races ahead of
// Serve still wins: Serve returns immediately instead of accepting
// forever.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops the listener, drains in-flight requests — including
// NDJSON /v1/explore streams, which run entirely inside their handler
// and therefore finish before Shutdown returns — and then drains the
// background job table: running jobs get until ctx's deadline to
// finish, after which they are canceled. New connections are refused
// from the moment Shutdown is called.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	if jerr := s.jobs.drain(ctx); err == nil {
		err = jerr
	}
	return err
}

// pinnedZoo looks a model up among the session's pinned instances —
// the paper zoo and the branched workloads — returning nil if unknown.
func (s *Server) pinnedZoo(name string) *nn.Model {
	for _, m := range s.session.Zoo() {
		if m.Name == name {
			return m
		}
	}
	for _, m := range s.session.Branched() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// sessionFor returns the shared session when the request runs at the
// server's base config (so zoo pinning and the cached zoo comparison
// are reused) and a bounded, config-keyed cached session otherwise —
// repeated requests at the same non-base config reuse one session's
// pinned zoo and cached comparisons instead of rebuilding them per
// request.
func (s *Server) sessionFor(cfg hypar.Config) *experiments.Session {
	if cfg == s.base {
		return s.session
	}
	return s.sessions.Get(cfg)
}

// ---------------------------------------------------------------------------
// Request parsing

// modelCache dedupes decoded user models by canonical JSON. The shape
// cache in internal/nn memoizes per *Model pointer, so handing repeated
// identical submissions the same instance is what makes their shape
// inference hit; the bound keeps hostile all-unique traffic from
// holding thousands of dead models. Eviction is LRU (one instance of
// the shared internal/lru cache): earlier this cache flushed the whole
// map when full, so a flood of unique hostile models would evict the
// hot set it exists to keep — now hostile traffic only churns the cold
// tail while interned hot models survive.
type modelCache struct {
	c *lru.Cache[string, *nn.Model]
}

// newModelCache builds an intern cache bounded to max models. Evicting
// an interned model also drops its shape-cache entries: the shape LRU
// memoizes per *Model pointer, so a model instance leaving the intern
// cache can never hit again — its entries are dead weight, the same
// leak the session cache's eviction hook closes for pinned zoos.
func newModelCache(max int) *modelCache {
	c := &modelCache{c: lru.New[string, *nn.Model](max)}
	c.c.SetOnEvict(func(_ string, m *nn.Model) { nn.DropCachedShapes(m) })
	return c
}

// intern returns the cached instance for the canonical bytes, storing m
// as the new canonical instance on a miss and evicting the least
// recently used models beyond the bound.
func (c *modelCache) intern(key string, m *nn.Model) *nn.Model {
	got, _ := c.c.GetOrAdd(key, func() *nn.Model { return m })
	return got
}

// len returns the current entry count.
func (c *modelCache) len() int { return c.c.Len() }

// freeVarJSON is the wire form of one exploration free variable.
type freeVarJSON struct {
	Level int `json:"level"`
	Layer int `json:"layer"`
}

// request is the common POST body: a model reference, an optional
// strategy and a partial config override. Explore adds free variables.
// Strategy parses through hypar.Strategy's UnmarshalJSON (ParseStrategy
// spellings), so an unknown name fails the body decode as a 400.
type request struct {
	Zoo      string          `json:"zoo,omitempty"`
	Model    json.RawMessage `json:"model,omitempty"`
	Strategy *hypar.Strategy `json:"strategy,omitempty"`
	Config   json.RawMessage `json:"config,omitempty"`
	Free     []freeVarJSON   `json:"free,omitempty"`
}

// httpError carries a status code with the error, plus an optional
// Retry-After hint (seconds) for shed/refused responses.
type httpError struct {
	code       int
	retryAfter int
	err        error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// badRequest wraps err as a 400.
func badRequest(err error) error { return &httpError{code: http.StatusBadRequest, err: err} }

// computeErr classifies an evaluation failure: context ends (deadline,
// cancel) pass through untouched so httpStatus maps them to their
// 504/disconnect semantics; everything else is the request's fault — a
// 400.
func computeErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return err
	}
	return badRequest(err)
}

// httpStatus maps an error to its HTTP status code and Retry-After
// hint: an explicit httpError keeps its own, a context deadline is a
// 504 (the request exceeded its evaluation budget), anything else is a
// 500.
func httpStatus(err error) (code, retryAfter int) {
	var he *httpError
	if errors.As(err, &he) {
		return he.code, he.retryAfter
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, 0
	}
	return http.StatusInternalServerError, 0
}

// noteFailure advances the resilience counter matching the failure
// class (shed 429s, refused 503s, deadline 504s).
func (s *Server) noteFailure(code int) {
	switch code {
	case http.StatusTooManyRequests:
		s.shed.Add(1)
	case http.StatusServiceUnavailable:
		s.refused.Add(1)
	case http.StatusGatewayTimeout:
		s.deadline.Add(1)
	}
}

// errShed is the admission-control refusal: a 429 with a Retry-After
// hint, shaped so batch items and single requests render it uniformly.
func (s *Server) errShed() error {
	return &httpError{
		code:       http.StatusTooManyRequests,
		retryAfter: 1,
		err:        fmt.Errorf("%w: server at its in-flight evaluation bound (%d), retry later", ErrService, cap(s.admit)),
	}
}

// parsed is a fully resolved request.
type parsed struct {
	model     *nn.Model
	modelJSON []byte // canonical bytes, hash input
	cfgJSON   []byte // canonical config bytes, hash input
	strategy  hypar.Strategy
	cfg       hypar.Config
	free      []partition.FreeVar
}

// parseRequest reads, decodes, resolves and canonicalizes a request
// body. Fields that are meaningless for the endpoint (strategy on
// compare and explore, free outside explore) are rejected rather than
// silently folded into the request hash — accepting them would give
// semantically identical requests different keys, defeating coalescing
// and caching. A body over MaxRequestBytes is a 413, not a 400 — the
// request may be well-formed, the server just refuses to read it.
func (s *Server) parseRequest(r *http.Request, wantStrategy, wantFree bool) (*parsed, error) {
	buf := getBodyBuf()
	defer putBodyBuf(buf)
	if err := readBody(r, MaxRequestBytes, buf); err != nil {
		return nil, err
	}
	return s.parseBody(buf.Bytes(), wantStrategy, wantFree)
}

// parseBody decodes, resolves and canonicalizes an already-read
// request body — the slow path behind the raw-bytes fast path. Nothing
// in the returned parsed aliases body, so callers may release a pooled
// body buffer once parseBody returns.
func (s *Server) parseBody(body []byte, wantStrategy, wantFree bool) (*parsed, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req request
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest(fmt.Errorf("%w: body: %v", ErrService, err))
	}
	return s.resolveRequest(req, wantStrategy, wantFree)
}

// resolveRequest resolves and canonicalizes an already-decoded request
// envelope — the shared tail of parseRequest and the per-item parsing
// of /v1/batch.
func (s *Server) resolveRequest(req request, wantStrategy, wantFree bool) (*parsed, error) {
	p := &parsed{strategy: hypar.HyPar}
	switch {
	case req.Zoo != "" && req.Model != nil:
		return nil, badRequest(fmt.Errorf(`%w: both "zoo" and "model" given`, ErrService))
	case req.Zoo != "":
		// Resolve against the session's pinned zoo so every request for
		// the same network shares one *Model instance (shape inference
		// memoizes per pointer).
		m := s.pinnedZoo(req.Zoo)
		if m == nil {
			_, err := hypar.ModelByName(req.Zoo)
			return nil, &httpError{code: http.StatusNotFound, err: err}
		}
		p.model = m
	case req.Model != nil:
		m, err := nn.DecodeModel(req.Model)
		if err != nil {
			return nil, badRequest(err)
		}
		p.model = m
	default:
		return nil, badRequest(fmt.Errorf(`%w: one of "zoo" or "model" is required`, ErrService))
	}
	enc, err := nn.EncodeModel(p.model)
	if err != nil {
		return nil, badRequest(err)
	}
	p.modelJSON = enc
	if req.Model != nil {
		p.model = s.models.intern(string(enc), p.model)
	}

	if req.Strategy != nil {
		if !wantStrategy {
			return nil, badRequest(fmt.Errorf(`%w: "strategy" is not accepted here`, ErrService))
		}
		p.strategy = *req.Strategy
	}

	p.cfg = s.baseRaw
	if req.Config != nil {
		cdec := json.NewDecoder(strings.NewReader(string(req.Config)))
		cdec.DisallowUnknownFields()
		if err := cdec.Decode(&p.cfg); err != nil {
			return nil, badRequest(fmt.Errorf("%w: config: %v", ErrService, err))
		}
	}
	p.cfg = p.cfg.Canonical()
	if err := p.cfg.Validate(); err != nil {
		return nil, badRequest(err)
	}
	if p.cfg == s.base {
		// The common case — no config override, or one that resolves
		// back to the base — reuses the JSON rendered once at New.
		p.cfgJSON = s.baseCfgJSON
	} else {
		b, err := json.Marshal(p.cfg)
		if err != nil {
			return nil, badRequest(err)
		}
		configMarshals.Add(1)
		p.cfgJSON = b
	}

	if len(req.Free) > 0 && !wantFree {
		return nil, badRequest(fmt.Errorf(`%w: "free" is not accepted here`, ErrService))
	}
	if len(req.Free) > MaxFreeVars {
		return nil, badRequest(fmt.Errorf("%w: %d free variables exceeds the %d-variable (2^%d points) limit",
			ErrService, len(req.Free), MaxFreeVars, MaxFreeVars))
	}
	for _, fv := range req.Free {
		if fv.Level < 0 || fv.Level >= p.cfg.Levels {
			return nil, badRequest(fmt.Errorf("%w: free variable level %d out of range [0,%d)", ErrService, fv.Level, p.cfg.Levels))
		}
		if fv.Layer < 0 || fv.Layer >= len(p.model.Layers) {
			return nil, badRequest(fmt.Errorf("%w: free variable layer %d out of range [0,%d)", ErrService, fv.Layer, len(p.model.Layers)))
		}
		p.free = append(p.free, partition.FreeVar{Level: fv.Level, Layer: fv.Layer})
	}
	return p, nil
}

// configMarshals counts per-request config re-marshals on the key
// path. Base-config requests must never marshal — they reuse the JSON
// rendered once at New — and the allocation tests pin that at zero.
var configMarshals atomic.Int64

// keyHasher is the pooled per-request hashing state: one SHA-256, a
// preimage scratch buffer, and fixed digest/hex arrays, so deriving a
// request key allocates only the returned string.
type keyHasher struct {
	h    hash.Hash
	buf  []byte
	sum  [sha256.Size]byte
	hexb [2 * sha256.Size]byte
}

// keyHashers recycles keyHashers across requests. Hashers whose
// preimage buffer was grown by one oversized model are dropped on
// release instead of pinned.
var keyHashers = sync.Pool{New: func() any {
	return &keyHasher{h: sha256.New(), buf: make([]byte, 0, 1024)}
}}

// key derives the deterministic request hash: SHA-256 over the endpoint
// and every canonicalized request component (the exact byte stream the
// pre-pooled implementation hashed, so keys are stable). Two requests
// that mean the same evaluation — whatever their field order,
// whitespace, default spelling or config shorthand — hash identically.
func (p *parsed) key(endpoint string) string {
	k := keyHashers.Get().(*keyHasher)
	b := k.buf[:0]
	b = append(b, endpoint...)
	b = append(b, 0)
	b = append(b, p.modelJSON...)
	b = append(b, 0)
	b = append(b, p.cfgJSON...)
	b = append(b, 0)
	b = append(b, p.strategy.String()...)
	b = append(b, 0)
	for _, fv := range p.free {
		b = strconv.AppendInt(b, int64(fv.Level), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(fv.Layer), 10)
		b = append(b, ',')
	}
	k.buf = b
	k.h.Reset()
	k.h.Write(b)
	hex.Encode(k.hexb[:], k.h.Sum(k.sum[:0]))
	key := string(k.hexb[:])
	if cap(k.buf) <= bodyBufMax {
		keyHashers.Put(k)
	}
	return key
}

// ---------------------------------------------------------------------------
// Response shapes

// layerAssignJSON is one layer's hierarchical choice string.
type layerAssignJSON struct {
	Name   string `json:"name"`
	Assign string `json:"assign"` // H1..Hh 0/1 marks, e.g. "0001"
}

// planJSON is the wire form of a partition plan.
type planJSON struct {
	Levels       int               `json:"levels"`
	Accelerators int               `json:"accelerators"`
	Layers       []layerAssignJSON `json:"layers"`
	TotalElems   float64           `json:"totalElems"`
	TotalBytes   float64           `json:"totalBytes"`
}

// statsJSON is the wire form of one simulated training step.
type statsJSON struct {
	StepSeconds     float64   `json:"stepSeconds"`
	ComputeSeconds  float64   `json:"computeSeconds"`
	CommSeconds     []float64 `json:"commSeconds"`
	CommBytes       float64   `json:"commBytes"`
	DRAMBytes       float64   `json:"dramBytes"`
	PeakMemoryBytes float64   `json:"peakMemoryBytes"`
	FitsMemory      bool      `json:"fitsMemory"`
	EnergyCompute   float64   `json:"energyCompute"`
	EnergySRAM      float64   `json:"energySRAM"`
	EnergyDRAM      float64   `json:"energyDRAM"`
	EnergyLink      float64   `json:"energyLink"`
	EnergyTotal     float64   `json:"energyTotal"`
	Tasks           int       `json:"tasks"`
}

// planToJSON renders a plan.
func planToJSON(p *hypar.Plan, m *nn.Model, cfg hypar.Config) planJSON {
	pj := planJSON{
		Levels:       p.NumLevels(),
		Accelerators: p.NumAccelerators(),
		Layers:       make([]layerAssignJSON, 0, len(m.Layers)),
		TotalElems:   p.TotalElems,
	}
	if dt, err := cfg.DType(); err == nil {
		pj.TotalBytes = p.TotalBytes(dt)
	}
	for l, layer := range m.Layers {
		pj.Layers = append(pj.Layers, layerAssignJSON{Name: layer.Name, Assign: p.LayerString(l)})
	}
	return pj
}

// statsToJSON renders step statistics.
func statsToJSON(st *hypar.Stats) statsJSON {
	return statsJSON{
		StepSeconds:     st.StepSeconds,
		ComputeSeconds:  st.ComputeSeconds,
		CommSeconds:     st.CommSeconds,
		CommBytes:       st.CommBytes,
		DRAMBytes:       st.DRAMBytes,
		PeakMemoryBytes: st.PeakMemoryBytes,
		FitsMemory:      st.FitsMemory,
		EnergyCompute:   st.EnergyCompute,
		EnergySRAM:      st.EnergySRAM,
		EnergyDRAM:      st.EnergyDRAM,
		EnergyLink:      st.EnergyLink,
		EnergyTotal:     st.EnergyTotal(),
		Tasks:           st.Tasks,
	}
}

// planResponse answers /v1/plan.
type planResponse struct {
	Model    string         `json:"model"`
	Strategy hypar.Strategy `json:"strategy"`
	Config   hypar.Config   `json:"config"`
	Plan     planJSON       `json:"plan"`
}

// evaluateResponse answers /v1/evaluate.
type evaluateResponse struct {
	planResponse
	Stats statsJSON `json:"stats"`
}

// strategyResult is one strategy's outcome inside /v1/compare.
type strategyResult struct {
	Plan  planJSON  `json:"plan"`
	Stats statsJSON `json:"stats"`
}

// gainsJSON carries the Fig6/Fig7 normalizations.
type gainsJSON struct {
	Performance      float64 `json:"performance"`
	EnergyEfficiency float64 `json:"energyEfficiency"`
}

// compareResponse answers /v1/compare.
type compareResponse struct {
	Model   string                    `json:"model"`
	Config  hypar.Config              `json:"config"`
	Results map[string]strategyResult `json:"results"`
	Gains   map[string]gainsJSON      `json:"gains"`
}

// explorePointJSON is one NDJSON line of /v1/explore.
type explorePointJSON struct {
	Type    string            `json:"type"` // "point"
	Code    int               `json:"code"`
	Labels  map[string]string `json:"labels"`
	Gain    float64           `json:"gain"`
	IsHyPar bool              `json:"isHyPar"`
}

// exploreHeaderJSON is the first NDJSON line of /v1/explore.
type exploreHeaderJSON struct {
	Type   string       `json:"type"` // "header"
	Model  string       `json:"model"`
	Config hypar.Config `json:"config"`
	Points int          `json:"points"`
}

// exploreSummaryJSON is the last NDJSON line of /v1/explore.
type exploreSummaryJSON struct {
	Type  string           `json:"type"` // "summary"
	Peak  explorePointJSON `json:"peak"`
	HyPar explorePointJSON `json:"hypar"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Handler plumbing

// post wraps a handler with method enforcement and metrics.
func (s *Server) post(endpoint string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	m := s.metrics[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		m.requests.Add(1)
		if r.Method != http.MethodPost {
			m.errors.Add(1)
			s.writeError(w, http.StatusMethodNotAllowed, 0, fmt.Errorf("%w: use POST", ErrService))
			return
		}
		if err := h(w, r); err != nil {
			m.errors.Add(1)
			if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
				// The client disconnected while this request waited on a
				// coalesced computation — there is nobody to answer.
				return
			}
			code, retryAfter := httpStatus(err)
			s.noteFailure(code)
			s.writeError(w, code, retryAfter, err)
		}
		m.latencyNs.Add(time.Since(t0).Nanoseconds())
	}
}

// writeError renders the uniform error body, with a Retry-After header
// when the failure is worth retrying (shed and refused requests).
func (s *Server) writeError(w http.ResponseWriter, code, retryAfter int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// writeResponse replays a rendered response.
func writeResponse(w http.ResponseWriter, resp response) {
	w.Header().Set("Content-Type", resp.contentType)
	_, _ = w.Write(resp.body)
}

// deadlineCtx applies the server's request timeout (if any) on top of
// parent (nil = background). The returned cancel must always be
// called.
func (s *Server) deadlineCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if s.timeout <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, s.timeout)
}

// resolveCtx runs the cache → admission → singleflight → compute
// pipeline for one request hash and returns the rendered response.
// Every consumer of a key — single-request handlers, batch items,
// async jobs — funnels through here, which is what makes them share
// one cache entry and one in-flight computation.
//
// The two contexts separate the caller's wait from the shared work: a
// follower whose waitCtx ends stops waiting on another consumer's
// computation and gets waitCtx's error, without canceling that work;
// computeCtx (threaded into compute if this caller leads) bounds the
// evaluation itself — client disconnects never flow into it, only the
// server's own timeout or, for jobs, the job's cancellation. Either
// may be nil (never cancels).
func (s *Server) resolveCtx(waitCtx, computeCtx context.Context, endpoint, key string, compute func(ctx context.Context) (response, error)) (response, error) {
	m := s.metrics[endpoint]
	if resp, ok := s.cache.Get(key); ok {
		m.cacheHits.Add(1)
		return resp, nil
	}
	resp, err, leader := s.flight.DoCtx(waitCtx, key, func() (response, error) {
		// Double-check: a racing leader may have populated the cache
		// between this request's miss and its turn in the flight. The
		// re-check makes "identical requests evaluate once" exact, not
		// just overwhelmingly likely.
		if resp, ok := s.cache.Get(key); ok {
			m.cacheHits.Add(1)
			return resp, nil
		}
		return s.computeLocked(computeCtx, m, endpoint, key, compute)
	})
	if !leader {
		m.coalesced.Add(1)
	}
	return resp, err
}

// computeLocked runs the admission → counters → hooks → compute →
// cache-fill tail for one key: the only place an actual evaluation
// happens. Callers must hold the key's flight slot (or be the
// peer-fallback path, which holds it through resolve's non-owner
// flight).
func (s *Server) computeLocked(computeCtx context.Context, m *endpointStats, endpoint, key string, compute func(ctx context.Context) (response, error)) (response, error) {
	// Admission control: an actual evaluation takes a semaphore slot
	// or is shed with 429 + Retry-After. Cache hits and coalesced
	// followers never get here — they do no work and are never shed.
	if s.admit != nil {
		select {
		case s.admit <- struct{}{}:
			defer func() { <-s.admit }()
		default:
			return response{}, s.errShed()
		}
	}
	m.computes.Add(1)
	if s.onCompute != nil {
		s.onCompute(endpoint, key)
	}
	if s.faultHook != nil {
		if err := s.faultHook(computeCtx, endpoint, key); err != nil {
			return response{}, err
		}
	}
	if computeCtx != nil {
		if err := computeCtx.Err(); err != nil {
			return response{}, err
		}
	}
	resp, err := compute(computeCtx)
	if err == nil {
		s.cache.Put(key, resp)
	}
	return resp, err
}

// resolveRetry is resolveCtx plus the canceled-coalesced-leader retry
// policy, shared by every consumer that can coalesce onto an async
// job's computation: a context.Canceled failure that is NOT this
// caller's own cancellation (its waitCtx is still live, or nil) means
// the flight's leader was a since-canceled job — the key is free
// again, so retry, typically becoming the new leader. The bound only
// keeps an adversarial stream of canceled-job leaders from pinning the
// caller.
func (s *Server) resolveRetry(waitCtx, computeCtx context.Context, endpoint, key string, compute func(ctx context.Context) (response, error)) (response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := s.resolveCtx(waitCtx, computeCtx, endpoint, key, compute)
		ownCancel := waitCtx != nil && waitCtx.Err() != nil
		if err == nil || ownCancel || !errors.Is(err, context.Canceled) || attempt >= 8 {
			return resp, err
		}
	}
}

// serveBody is the read → fast path → parse → hash → resolve pipeline
// shared by the non-streaming POST endpoints (plan, evaluate, compare,
// degrade). The verbatim body is looked up in the raw-bytes cache
// before any JSON is touched; a miss falls through to the full decode
// → canonicalize → SHA-256 path, and every successful resolution —
// computed, coalesced or canonical-cache hit — seeds the fast path so
// the next request with these exact bytes replays without
// encoding/json. check (if non-nil) runs endpoint-specific validation
// on the parsed request before any work is keyed.
//
// The wait context derives from the client's (disconnects stop a
// follower's wait); the compute context does not — it carries only the
// server timeout, so a shared computation survives the disconnect of
// whichever request happened to lead it.
func (s *Server) serveBody(w http.ResponseWriter, r *http.Request, endpoint string, wantStrategy bool, check func(*parsed) error, compute func(context.Context, *parsed) (response, error)) error {
	buf := getBodyBuf()
	defer putBodyBuf(buf)
	if err := readBody(r, MaxRequestBytes, buf); err != nil {
		return err
	}
	body := buf.Bytes()
	if resp, ok := s.tryFast(endpoint, body); ok {
		s.metrics[endpoint].fastHits.Add(1)
		writeResponse(w, resp)
		return nil
	}
	p, err := s.parseBody(body, wantStrategy, false)
	if err != nil {
		return err
	}
	if check != nil {
		if err := check(p); err != nil {
			return err
		}
	}
	waitCtx, cancelWait := s.deadlineCtx(r.Context())
	defer cancelWait()
	computeCtx, cancelCompute := s.deadlineCtx(nil)
	defer cancelCompute()
	resp, err := s.resolve(waitCtx, computeCtx, endpoint, p.key(endpoint), p, func(ctx context.Context) (response, error) {
		return compute(ctx, p)
	})
	if err != nil {
		return err
	}
	s.storeFast(endpoint, body, resp)
	writeResponse(w, resp)
	return nil
}

// jsonResponse marshals v as a compact JSON response body.
func jsonResponse(v any) (response, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return response{}, err
	}
	return response{contentType: "application/json", body: append(b, '\n')}, nil
}

// runShared evaluates one (model, strategy, config) on a pooled
// evaluator. Each evaluator is single-threaded by design (it reuses one
// simulation engine), so a request borrows one for the duration of the
// call; distinct concurrent requests run on distinct evaluators and
// the cache/singleflight layer above keeps redundant evaluations from
// ever reaching this point.
func (s *Server) runShared(ctx context.Context, m *nn.Model, st hypar.Strategy, cfg hypar.Config) (*hypar.Result, error) {
	ev := s.evaluators.Get().(*hypar.Evaluator)
	defer s.evaluators.Put(ev)
	return ev.RunCtx(ctx, m, st, cfg)
}

// ---------------------------------------------------------------------------
// Endpoints

// handlePlan answers POST /v1/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) error {
	return s.serveBody(w, r, "plan", true, nil, s.computePlan)
}

// computePlan renders the /v1/plan response for a resolved request.
func (s *Server) computePlan(ctx context.Context, p *parsed) (response, error) {
	plan, err := hypar.NewPlanCtx(ctx, p.model, p.strategy, p.cfg)
	if err != nil {
		return response{}, computeErr(err)
	}
	return jsonResponse(planResponse{
		Model:    p.model.Name,
		Strategy: p.strategy,
		Config:   p.cfg,
		Plan:     planToJSON(plan, p.model, p.cfg),
	})
}

// handleEvaluate answers POST /v1/evaluate.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) error {
	return s.serveBody(w, r, "evaluate", true, nil, s.computeEvaluate)
}

// computeEvaluate renders the /v1/evaluate response for a resolved
// request.
func (s *Server) computeEvaluate(ctx context.Context, p *parsed) (response, error) {
	res, err := s.runShared(ctx, p.model, p.strategy, p.cfg)
	if err != nil {
		return response{}, computeErr(err)
	}
	return jsonResponse(evaluateResponse{
		planResponse: planResponse{
			Model:    p.model.Name,
			Strategy: p.strategy,
			Config:   p.cfg,
			Plan:     planToJSON(res.Plan, p.model, p.cfg),
		},
		Stats: statsToJSON(res.Stats),
	})
}

// handleCompare answers POST /v1/compare.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) error {
	return s.serveBody(w, r, "compare", false, nil, s.computeCompare)
}

// computeCompare renders the /v1/compare response for a resolved
// request.
func (s *Server) computeCompare(ctx context.Context, p *parsed) (response, error) {
	resp := compareResponse{
		Model:   p.model.Name,
		Config:  p.cfg,
		Results: make(map[string]strategyResult, len(hypar.Strategies)),
		Gains:   make(map[string]gainsJSON, len(hypar.Strategies)),
	}
	// The four strategies are independent; fan them out on the
	// server pool (each worker borrowing a pooled evaluator).
	results, err := runner.MapCtx(ctx, s.pool, hypar.Strategies,
		func(_ int, st hypar.Strategy) (*hypar.Result, error) {
			res, err := s.runShared(ctx, p.model, st, p.cfg)
			if err != nil {
				return nil, computeErr(fmt.Errorf("strategy %v: %w", st, err))
			}
			return res, nil
		})
	if err != nil {
		return response{}, err
	}
	cmp := &hypar.Comparison{Model: p.model.Name, Results: make(map[hypar.Strategy]*hypar.Result, len(hypar.Strategies))}
	for i, st := range hypar.Strategies {
		cmp.Results[st] = results[i]
		resp.Results[st.String()] = strategyResult{
			Plan:  planToJSON(results[i].Plan, p.model, p.cfg),
			Stats: statsToJSON(results[i].Stats),
		}
	}
	for _, st := range hypar.Strategies {
		resp.Gains[st.String()] = gainsJSON{
			Performance:      cmp.PerformanceGain(st),
			EnergyEfficiency: cmp.EnergyEfficiency(st),
		}
	}
	return jsonResponse(resp)
}

// defaultFree sweeps every layer's top-level (H1) parallelism, capped
// to 8 variables (256 points) — the Figure 9 shape for any model.
func defaultFree(m *nn.Model) []partition.FreeVar {
	n := len(m.Layers)
	if n > 8 {
		n = 8
	}
	free := make([]partition.FreeVar, 0, n)
	for l := 0; l < n; l++ {
		free = append(free, partition.FreeVar{Level: 0, Layer: l})
	}
	return free
}

// finishExploreParse applies the explore-specific defaults and checks
// to a resolved request — shared by /v1/explore and /v1/jobs.
func finishExploreParse(p *parsed) error {
	if p.free == nil {
		p.free = defaultFree(p.model)
	}
	if p.cfg.Levels == 0 {
		return badRequest(fmt.Errorf("%w: explore needs levels >= 1", ErrService))
	}
	return nil
}

// exploreBody computes the full NDJSON sweep body for a resolved
// explore request: a header line, one line per sweep point in code
// order, and a summary line. tap (if non-nil) receives each rendered
// line as it is produced — the /v1/explore handler streams them to its
// client, async jobs count them as progress. ctx (if non-nil) cancels
// the sweep between lines; a nil ctx never cancels, which is what the
// HTTP leader wants (its coalesced followers still need the result
// even if the leader's own client disconnects).
func (s *Server) exploreBody(ctx context.Context, p *parsed, tap func(line []byte)) (response, error) {
	var buf strings.Builder
	line := func(v any) error {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		buf.Write(b)
		if tap != nil {
			tap(b)
		}
		return nil
	}

	if err := line(exploreHeaderJSON{
		Type: "header", Model: p.model.Name, Config: p.cfg, Points: 1 << uint(len(p.free)),
	}); err != nil {
		return response{}, err
	}
	var peak, hp explorePointJSON
	err := s.sessionFor(p.cfg).ExploreStream(p.model, p.free, nil, func(ep experiments.ExplorePoint) error {
		pj := explorePointJSON{Type: "point", Code: ep.Code, Labels: ep.Labels, Gain: ep.Gain, IsHyPar: ep.IsHyPar}
		if pj.Gain > peak.Gain {
			peak = pj
		}
		if pj.IsHyPar {
			hp = pj
		}
		return line(pj)
	})
	if err != nil {
		return response{}, err
	}
	peak.Type, hp.Type = "point", "point"
	if err := line(exploreSummaryJSON{Type: "summary", Peak: peak, HyPar: hp}); err != nil {
		return response{}, err
	}
	return response{contentType: "application/x-ndjson", body: []byte(buf.String())}, nil
}

// handleExplore answers POST /v1/explore with an NDJSON stream: a
// header line, one line per sweep point in code order, and a summary
// line. The stream begins before the sweep finishes (runner.Stream
// backpressure), is teed into the cache, and coalesced followers replay
// the leader's bytes.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) error {
	p, err := s.parseRequest(r, false, true)
	if err != nil {
		return err
	}
	if err := finishExploreParse(p); err != nil {
		return err
	}
	key := p.key("explore")
	m := s.metrics["explore"]
	waitCtx, cancelWait := s.deadlineCtx(r.Context())
	defer cancelWait()
	computeCtx, cancelCompute := s.deadlineCtx(nil)
	defer cancelCompute()
	var streamed bool
	resp, err := s.resolveRetry(waitCtx, computeCtx, "explore", key, func(cctx context.Context) (response, error) {
		// This request is the flight leader: it streams lines to its
		// own client as they are computed while exploreBody tees them
		// into the body buffer for the cache and followers. A client
		// write failure (leader disconnected mid-stream) must not
		// abort the sweep: followers coalesced onto this flight still
		// need the result, so the computation keeps filling the body
		// (cctx carries only the server timeout, never the client's
		// disconnect) and only the doomed client writes stop.
		var clientGone bool
		flusher, _ := w.(http.Flusher)
		w.Header().Set("Content-Type", "application/x-ndjson")
		streamed = true
		return s.exploreBody(cctx, p, func(b []byte) {
			if clientGone {
				return
			}
			if _, err := w.Write(b); err != nil {
				clientGone = true
			} else if flusher != nil {
				flusher.Flush()
			}
		})
	})
	if err != nil {
		if streamed {
			// Headers are already out; the broken stream is the error
			// signal the client sees. Count the failure here since
			// returning nil bypasses post()'s error accounting.
			m.errors.Add(1)
			code, _ := httpStatus(err)
			s.noteFailure(code)
			return nil
		}
		return err
	}
	if !streamed {
		// Followers, retried followers, and cache hits replay the
		// rendered body.
		writeResponse(w, resp)
	}
	return nil
}

// handleHealthz answers GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics["healthz"].requests.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

// jobsSnapshot is the /statsz view of the job table.
type jobsSnapshot struct {
	Tracked int `json:"tracked"`
	Active  int `json:"active"`
}

// resilienceSnapshot is the /statsz view of admission control and
// deadlines: the in-flight bound and occupancy, plus how many requests
// were shed (429), refused by the job table (503) or failed their
// deadline (504).
type resilienceSnapshot struct {
	MaxInflight      int   `json:"maxInflight"` // 0 = unlimited
	Inflight         int   `json:"inflight"`
	Shed             int64 `json:"shed"`
	Refused          int64 `json:"refused"`
	DeadlineExceeded int64 `json:"deadlineExceeded"`
	RequestTimeoutMs int64 `json:"requestTimeoutMs"` // 0 = no deadline
}

// rawCacheSnapshot is the /statsz view of the raw-bytes fast path: its
// byte budget, current resident bytes and entries, and stripe count.
// All zeros when the fast path is disabled.
type rawCacheSnapshot struct {
	BudgetBytes int `json:"budgetBytes"`
	Bytes       int `json:"bytes"`
	Entries     int `json:"entries"`
	Shards      int `json:"shards"`
}

// statszResponse is the /statsz body.
type statszResponse struct {
	UptimeSeconds float64            `json:"uptimeSeconds"`
	PoolWidth     int                `json:"poolWidth"`
	CacheEntries  int                `json:"cacheEntries"`
	CacheShards   int                `json:"cacheShards"`
	RawCache      rawCacheSnapshot   `json:"rawCache"`
	Sessions      int                `json:"sessions"`
	Jobs          jobsSnapshot       `json:"jobs"`
	Resilience    resilienceSnapshot `json:"resilience"`
	// Cluster reports the peer ring and peer-fill counters; omitted on
	// a single-replica server.
	Cluster   *clusterSnapshot         `json:"cluster,omitempty"`
	Endpoints map[string]statsSnapshot `json:"endpoints"`
}

// rawSnapshot captures the raw-bytes fast path's occupancy.
func (s *Server) rawSnapshot() rawCacheSnapshot {
	if s.raw == nil {
		return rawCacheSnapshot{}
	}
	return rawCacheSnapshot{
		BudgetBytes: len(s.raw.shards) * s.raw.shards[0].Max(),
		Bytes:       s.raw.bytes(),
		Entries:     s.raw.len(),
		Shards:      len(s.raw.shards),
	}
}

// handleStatsz answers GET /statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.metrics["statsz"].requests.Add(1)
	tracked, active := s.jobs.counts()
	resp := statszResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		PoolWidth:     s.pool.Width(),
		CacheEntries:  s.cache.Len(),
		CacheShards:   len(s.cache.shards),
		RawCache:      s.rawSnapshot(),
		Sessions:      s.sessions.Len(),
		Jobs:          jobsSnapshot{Tracked: tracked, Active: active},
		Resilience: resilienceSnapshot{
			MaxInflight:      cap(s.admit),
			Inflight:         len(s.admit),
			Shed:             s.shed.Load(),
			Refused:          s.refused.Load(),
			DeadlineExceeded: s.deadline.Load(),
			RequestTimeoutMs: s.timeout.Milliseconds(),
		},
		Endpoints: make(map[string]statsSnapshot, len(s.metrics)),
	}
	if s.cluster != nil {
		resp.Cluster = s.cluster.snapshot()
	}
	for name, m := range s.metrics {
		resp.Endpoints[name] = m.snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

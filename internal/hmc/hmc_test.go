package hmc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.BandwidthGBs != 320 || c.CapacityGB != 8 {
		t.Errorf("default HMC = %g GB/s, %g GB; paper says 320 GB/s, 8 GB", c.BandwidthGBs, c.CapacityGB)
	}
	if c.EnergyAddPJ != 0.9 || c.EnergyMulPJ != 3.7 || c.EnergySRAMPJ != 5.0 || c.EnergyDRAMPJ != 640 {
		t.Errorf("energy table diverges from paper §6.1: %+v", c)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Config{
		{BandwidthGBs: 0, CapacityGB: 8},
		{BandwidthGBs: 320, CapacityGB: -1},
		func() Config { c := Default(); c.EnergyDRAMPJ = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("bad config %d accepted: %v", i, err)
		}
	}
}

func TestDRAMTime(t *testing.T) {
	c := Default()
	// 320 GB at 320 GB/s is one second.
	if got := c.DRAMTime(320e9); math.Abs(got-1) > 1e-12 {
		t.Errorf("DRAMTime(320 GB) = %g s, want 1", got)
	}
}

func TestEnergies(t *testing.T) {
	c := Default()
	// One million 32-bit DRAM words: 1e6 · 640 pJ = 0.64 mJ.
	if got := c.DRAMEnergy(4e6); math.Abs(got-0.64e-3) > 1e-12 {
		t.Errorf("DRAMEnergy = %g J, want 0.64e-3", got)
	}
	if got := c.MACEnergy(1e6); math.Abs(got-4.6e-6) > 1e-15 {
		t.Errorf("MACEnergy = %g J, want 4.6e-6", got)
	}
	if got := c.SRAMEnergy(1e6); math.Abs(got-5e-6) > 1e-15 {
		t.Errorf("SRAMEnergy = %g J, want 5e-6", got)
	}
	if got := c.AddEnergy(1e6); math.Abs(got-0.9e-6) > 1e-15 {
		t.Errorf("AddEnergy = %g J, want 0.9e-6", got)
	}
	// Link energy exceeds DRAM energy alone (SerDes + remote access).
	if c.LinkEnergy(4) <= c.DRAMEnergy(4) {
		t.Error("link energy should cost more than a local DRAM access")
	}
}

func TestFits(t *testing.T) {
	c := Default()
	if !c.Fits(7.9e9) {
		t.Error("7.9 GB should fit in an 8 GB cube")
	}
	if c.Fits(8.1e9) {
		t.Error("8.1 GB should not fit in an 8 GB cube")
	}
}

// Property: all energy and time helpers are non-negative and linear.
func TestLinearityProperty(t *testing.T) {
	c := Default()
	prop := func(x uint32) bool {
		v := float64(x % 1e9)
		if c.DRAMTime(v) < 0 || c.DRAMEnergy(v) < 0 || c.LinkEnergy(v) < 0 {
			return false
		}
		return math.Abs(c.DRAMEnergy(2*v)-2*c.DRAMEnergy(v)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Package hmc models the Hybrid Memory Cube that hosts each accelerator
// of the HyPar array (paper §5): stacked DRAM dies over a logic die
// carrying the processing units, 320 GB/s of internal bandwidth and 8 GB
// of capacity per cube, plus the Horowitz [116] energy constants the
// paper's evaluation uses.
package hmc

import (
	"errors"
	"fmt"
)

// ErrConfig reports an invalid HMC configuration.
var ErrConfig = errors.New("hmc: invalid config")

// Config describes one HMC cube and the energy cost table.
type Config struct {
	// BandwidthGBs is the cube-internal DRAM bandwidth in GB/s
	// (HMC 2.1 specification: 320 GB/s).
	BandwidthGBs float64
	// CapacityGB is the cube capacity in GB (8 GB).
	CapacityGB float64

	// Energy per operation, picojoules (paper §6.1, from Horowitz).
	EnergyAddPJ  float64 // 32-bit float ADD: 0.9 pJ
	EnergyMulPJ  float64 // 32-bit float MULT: 3.7 pJ
	EnergySRAMPJ float64 // 32-bit SRAM access: 5.0 pJ
	EnergyDRAMPJ float64 // 32-bit DRAM access: 640 pJ
	// EnergyLinkPJ is the SerDes cost of moving one 32-bit word across
	// an inter-cube link. The paper does not list it separately; HMC
	// SerDes measurements put it near 13.7 pJ/bit ≈ 440 pJ/32 b.
	EnergyLinkPJ float64
}

// Default returns the paper's evaluation configuration.
func Default() Config {
	return Config{
		BandwidthGBs: 320,
		CapacityGB:   8,
		EnergyAddPJ:  0.9,
		EnergyMulPJ:  3.7,
		EnergySRAMPJ: 5.0,
		EnergyDRAMPJ: 640,
		EnergyLinkPJ: 440,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BandwidthGBs <= 0 {
		return fmt.Errorf("%w: bandwidth %g GB/s", ErrConfig, c.BandwidthGBs)
	}
	if c.CapacityGB <= 0 {
		return fmt.Errorf("%w: capacity %g GB", ErrConfig, c.CapacityGB)
	}
	for _, e := range []float64{c.EnergyAddPJ, c.EnergyMulPJ, c.EnergySRAMPJ, c.EnergyDRAMPJ, c.EnergyLinkPJ} {
		if e < 0 {
			return fmt.Errorf("%w: negative energy constant", ErrConfig)
		}
	}
	return nil
}

// DRAMTime returns the seconds needed to stream the given number of
// bytes through the cube's internal bandwidth.
func (c Config) DRAMTime(bytes float64) float64 {
	return bytes / (c.BandwidthGBs * 1e9)
}

// DRAMEnergy returns the joules consumed by accessing the given number
// of bytes of cube DRAM (pro-rated per 32-bit word).
func (c Config) DRAMEnergy(bytes float64) float64 {
	return bytes / 4 * c.EnergyDRAMPJ * 1e-12
}

// SRAMEnergy returns the joules for the given number of 32-bit SRAM
// accesses.
func (c Config) SRAMEnergy(accesses float64) float64 {
	return accesses * c.EnergySRAMPJ * 1e-12
}

// MACEnergy returns the joules for the given number of multiply-
// accumulate operations (one MULT + one ADD each).
func (c Config) MACEnergy(macs float64) float64 {
	return macs * (c.EnergyMulPJ + c.EnergyAddPJ) * 1e-12
}

// AddEnergy returns the joules for the given number of 32-bit additions
// (partial-sum accumulation, weight update).
func (c Config) AddEnergy(adds float64) float64 {
	return adds * c.EnergyAddPJ * 1e-12
}

// LinkEnergy returns the joules for moving the given number of bytes
// across an inter-cube link: SerDes on the wire plus a remote DRAM
// access on the far end (the paper's remote accesses are reads of the
// peer cube's memory).
func (c Config) LinkEnergy(bytes float64) float64 {
	words := bytes / 4
	return words * (c.EnergyLinkPJ + c.EnergyDRAMPJ) * 1e-12
}

// Fits reports whether a working set of the given bytes fits in the
// cube's capacity.
func (c Config) Fits(bytes float64) bool {
	return bytes <= c.CapacityGB*1e9
}

package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the service's canonical request hashes: hex
		// digests, no shared structure with the member names.
		keys[i] = fmt.Sprintf("sha256:%064x", uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return keys
}

func TestNewRingErrors(t *testing.T) {
	cases := []struct {
		name    string
		members []string
		vnodes  int
	}{
		{"no members", nil, 0},
		{"empty member", []string{"http://a:1", ""}, 0},
		{"duplicate member", []string{"http://a:1", "http://b:1", "http://a:1"}, 0},
		{"negative vnodes", []string{"http://a:1"}, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewRing(tc.members, tc.vnodes); !errors.Is(err, ErrRing) {
				t.Fatalf("NewRing(%v, %d) error = %v, want ErrRing", tc.members, tc.vnodes, err)
			}
		})
	}
}

func TestRingDefaults(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.VNodes(); got != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want DefaultVNodes %d", got, DefaultVNodes)
	}
	if got := r.Size(); got != 2*DefaultVNodes*pointsPerVNode {
		t.Fatalf("Size() = %d, want %d", got, 2*DefaultVNodes*pointsPerVNode)
	}
	if got := r.Members(); len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:1" {
		t.Fatalf("Members() = %v", got)
	}
}

// Every replica boots with the same peer list but not necessarily in
// the same order; ownership must not depend on it.
func TestRingOrderIndependent(t *testing.T) {
	members := []string{"http://c:3", "http://a:1", "http://b:2", "http://d:4"}
	ref, err := NewRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(2000)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := NewRing(shuffled, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d: Owner(%q) = %q with order %v, want %q", trial, k, got, shuffled, want)
			}
		}
	}
}

// At 128 vnodes each member's share of a large key population must stay
// within ±15% of fair share — the fairness property the topology
// validator's MinVNodes bound leans on.
func TestRingDistribution(t *testing.T) {
	const nKeys = 30000
	keys := ringKeys(nKeys)
	for _, n := range []int{2, 3, 4, 5, 8} {
		t.Run(strconv.Itoa(n)+"members", func(t *testing.T) {
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("http://replica-%d:8080", i)
			}
			r, err := NewRing(members, DefaultVNodes)
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[string]int, n)
			for _, k := range keys {
				counts[r.Owner(k)]++
			}
			fair := float64(nKeys) / float64(n)
			for _, m := range members {
				share := float64(counts[m])
				if share < 0.85*fair || share > 1.15*fair {
					t.Errorf("member %s owns %d keys, outside ±15%% of fair share %.0f", m, counts[m], fair)
				}
			}
		})
	}
}

// Membership changes must remap at most (1/N + ε) of keys, and every
// key that moves on a join must move to the new member — the minimal
// remapping property that makes peer caches survive fleet resizes.
func TestRingRemapOnJoin(t *testing.T) {
	const nKeys = 30000
	keys := ringKeys(nKeys)
	for _, n := range []int{2, 3, 4, 7} {
		t.Run(strconv.Itoa(n)+"to"+strconv.Itoa(n+1), func(t *testing.T) {
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("http://replica-%d:8080", i)
			}
			before, err := NewRing(members, DefaultVNodes)
			if err != nil {
				t.Fatal(err)
			}
			joined := fmt.Sprintf("http://replica-%d:8080", n)
			after, err := NewRing(append(append([]string(nil), members...), joined), DefaultVNodes)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for _, k := range keys {
				ob, oa := before.Owner(k), after.Owner(k)
				if ob == oa {
					continue
				}
				moved++
				if oa != joined {
					t.Fatalf("key %q moved %q → %q, not to the joining member %q", k, ob, oa, joined)
				}
			}
			// Fair share of the post-join ring is 1/(N+1); allow 50%
			// slack for vnode placement variance.
			limit := int(1.5 * float64(nKeys) / float64(n+1))
			if moved > limit {
				t.Errorf("join remapped %d/%d keys, over the (1/%d + ε) bound %d", moved, nKeys, n+1, limit)
			}
			if moved == 0 {
				t.Error("join remapped no keys; the new member owns nothing")
			}
		})
	}
}

func TestRingRemapOnLeave(t *testing.T) {
	const nKeys = 30000
	keys := ringKeys(nKeys)
	for _, n := range []int{3, 4, 8} {
		t.Run(strconv.Itoa(n)+"to"+strconv.Itoa(n-1), func(t *testing.T) {
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("http://replica-%d:8080", i)
			}
			before, err := NewRing(members, DefaultVNodes)
			if err != nil {
				t.Fatal(err)
			}
			departed := members[n/2]
			after, err := NewRing(append(append([]string(nil), members[:n/2]...), members[n/2+1:]...), DefaultVNodes)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for _, k := range keys {
				ob, oa := before.Owner(k), after.Owner(k)
				if ob == oa {
					continue
				}
				moved++
				// Only keys the departed member owned may move.
				if ob != departed {
					t.Fatalf("key %q moved %q → %q though %q left", k, ob, oa, departed)
				}
			}
			limit := int(1.5 * float64(nKeys) / float64(n))
			if moved > limit {
				t.Errorf("leave remapped %d/%d keys, over the (1/%d + ε) bound %d", moved, nKeys, n, limit)
			}
		})
	}
}

func BenchmarkRingOwner(b *testing.B) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	r, err := NewRing(members, DefaultVNodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := ringKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i&1023])
	}
}

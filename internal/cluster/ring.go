// Package cluster provides the multi-replica building blocks of a
// hypard fleet: a consistent-hash ring that assigns each canonical
// request hash to exactly one owning replica (so the fleet's cache
// capacity adds instead of duplicating, and coalescing works
// fleet-wide), and the deployment topology spec that hypardctl
// validates before any replica boots.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// ErrRing reports an invalid ring construction.
var ErrRing = errors.New("cluster: invalid ring")

// DefaultVNodes is the virtual-node count per replica when a caller
// leaves it zero: enough points that key ownership stays within a few
// percent of fair share (the ring tests pin ±15% at this setting) while
// keeping the ring small enough to rebuild on every membership change.
const DefaultVNodes = 128

// pointsPerVNode is how many ring points each virtual node contributes
// (ketama-style). Share variance on a ring falls as 1/sqrt(points), and
// 128 vnodes alone leaves ~±20% skew; four points per vnode brings the
// worst member within the ±15% fairness band without inflating the
// advertised vnode count.
const pointsPerVNode = 4

// ringPoint is one virtual node: a position on the 64-bit circle owned
// by one member.
type ringPoint struct {
	hash   uint64
	member int32
}

// Ring is a consistent-hash ring with virtual nodes. Every key maps to
// exactly one member — the owner of the first virtual node clockwise
// from the key's hash — and the assignment depends only on the member
// set and vnode count, never on insertion order, so every replica
// handed the same peer list computes the same ownership. Membership
// changes remap only the keys adjacent to the departed or arrived
// member's virtual nodes: about 1/N of the key space, the property the
// ring tests pin. A Ring is immutable and safe for concurrent use.
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint
}

// mix64 is the splitmix64 finalizer: a full-avalanche mix of one 64-bit
// word (the same construction internal/faultinject uses for its
// decision hash).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ringHash mixes a string onto the 64-bit circle: FNV-1a for the bulk,
// finished with mix64 — FNV alone barely mixes its final bytes, which
// would cluster the "#i" vnode suffixes.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// NewRing builds a ring over the member names (for hypard, peer URLs)
// with the given virtual-node count per member (0 = DefaultVNodes).
// Members are deduplicated against, not silently merged: a repeated
// member is a configuration error, because the duplicate would own a
// double share of the key space under one name.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: no members", ErrRing)
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("%w: %d virtual nodes per member", ErrRing, vnodes)
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("%w: empty member name", ErrRing)
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("%w: duplicate member %q", ErrRing, m)
		}
	}
	r := &Ring{
		vnodes:  vnodes,
		members: sorted,
		points:  make([]ringPoint, 0, len(sorted)*vnodes*pointsPerVNode),
	}
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			// Each vnode seeds a short splitmix64 stream: advance the
			// state by the golden-ratio increment, mix, and the stream
			// yields pointsPerVNode independent circle positions.
			h := fnv.New64a()
			_, _ = h.Write([]byte(m + "#" + strconv.Itoa(v)))
			seed := h.Sum64()
			for j := 0; j < pointsPerVNode; j++ {
				seed += 0x9e3779b97f4a7c15
				r.points = append(r.points, ringPoint{
					hash:   mix64(seed),
					member: int32(mi),
				})
			}
		}
	}
	// Sort by position; break (astronomically unlikely) hash ties by
	// member so ownership never depends on sort stability.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Owner returns the member owning the key: the first virtual node at or
// clockwise after the key's position, wrapping past the top of the
// circle.
func (r *Ring) Owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Members returns the member names in sorted order. The slice is shared
// — callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Size returns the total ring point count
// (members × vnodes × points per vnode).
func (r *Ring) Size() int { return len(r.points) }

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/platform"
)

// ErrTopology reports an invalid deployment topology.
var ErrTopology = errors.New("cluster: invalid topology")

// Topology bounds, mirrored by the validation errors below.
const (
	// MinVNodes is the smallest explicit virtual-node count Validate
	// accepts: below it, per-replica key shares drift past the ±15%
	// fairness band the ring's property tests pin.
	MinVNodes = 16
	// MaxVNodes bounds the explicit per-replica virtual-node count.
	MaxVNodes = 4096
	// MaxReplicas bounds the fleet size one static peer list may name.
	MaxReplicas = 64
	// MinCacheEntries is the smallest explicit per-replica response
	// cache Validate accepts in a cluster: the service stripes its LRU
	// 16 ways, and fewer than 4 entries per stripe collapses the
	// striping the peer-fill hot path depends on.
	MinCacheEntries = 64
	// MinRawCacheBytes is the smallest explicit raw-bytes fast-path
	// budget Validate accepts: peer fills seed the caller's raw tier,
	// and a budget under 64 KiB evicts them before they replay.
	MinRawCacheBytes = 64 << 10
	// MaxRawCacheBytes bounds the explicit per-replica raw-bytes budget
	// (an over-capacity topology: 1 GiB of pinned response bytes per
	// replica is a misconfiguration, not a cache).
	MaxRawCacheBytes = 1 << 30
	// MaxAssignLevels bounds per-level platform assignment indices,
	// mirroring the hierarchy depth the daemon's config accepts.
	MaxAssignLevels = 20
)

// Replica is one hypard instance of the fleet.
type Replica struct {
	// Name identifies the replica in reports and probe output.
	Name string `json:"name"`
	// Addr is the host:port the replica listens on and peers reach it
	// at.
	Addr string `json:"addr"`
	// PlatformsPerLevel optionally spells out this replica's default
	// per-level platform assignment (level index → platform name).
	// Every replica's effective assignment must be identical: request
	// hashes cover the canonical config, so a replica whose default
	// assignment drifts from the fleet's computes different keys than
	// the ring's owners and 409s on every /peer/v1/fetch. Validate
	// rejects the drift before any replica boots.
	PlatformsPerLevel map[string]string `json:"platformsPerLevel,omitempty"`
}

// URL returns the replica's peer URL.
func (r Replica) URL() string { return "http://" + r.Addr }

// Topology is the deployment spec for a hypard fleet: the replica set,
// the consistent-hash ring geometry, and the per-replica cache split.
// Zero-valued optional fields mean "use the daemon's default" and are
// omitted from emitted flag sets.
type Topology struct {
	// VNodes is the virtual-node count per replica (0 = the ring
	// default).
	VNodes int `json:"vnodes,omitempty"`
	// CacheEntries is each replica's canonical response LRU bound
	// (0 = the daemon default). In a cluster every key has exactly one
	// owner, so the fleet's effective capacity is the per-replica value
	// summed across replicas.
	CacheEntries int `json:"cacheEntries,omitempty"`
	// RawCacheBytes is each replica's raw-bytes fast-path budget
	// (0 = the daemon default).
	RawCacheBytes int `json:"rawCacheBytes,omitempty"`
	// RequestTimeoutMs is the per-request evaluation deadline each
	// replica enforces and propagates to peer fetches (0 = none).
	RequestTimeoutMs int `json:"requestTimeoutMs,omitempty"`
	// PlatformsPerLevel is the fleet-wide default per-level platform
	// assignment (level index → platform name), emitted to every
	// replica as -platforms-per-level. A replica may spell out its own
	// PlatformsPerLevel, but it must match this one — see
	// Replica.PlatformsPerLevel for why drift is fatal.
	PlatformsPerLevel map[string]string `json:"platformsPerLevel,omitempty"`
	// Replicas lists every hypard instance of the fleet.
	Replicas []Replica `json:"replicas"`
}

// canonicalAssignment compiles a per-level platform map to its
// canonical comma form (root cut first, holes empty), validating that
// keys are level indices and names are registered platforms. where
// names the spec's owner in errors.
func canonicalAssignment(m map[string]string, where string) (string, error) {
	if len(m) == 0 {
		return "", nil
	}
	names := make([]string, MaxAssignLevels)
	max := -1
	for k, v := range m {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= MaxAssignLevels {
			return "", fmt.Errorf("%w: %s platformsPerLevel key %q (want a level index 0..%d)",
				ErrTopology, where, k, MaxAssignLevels-1)
		}
		if v != "" {
			if _, err := platform.ByName(v); err != nil {
				return "", fmt.Errorf("%w: %s platformsPerLevel level %d: %v", ErrTopology, where, i, err)
			}
		}
		names[i] = v
		if i > max {
			max = i
		}
	}
	return strings.Join(names[:max+1], ","), nil
}

// ParseTopology decodes and validates a topology spec. Unknown fields
// are rejected — a typoed key silently ignored here would boot a fleet
// that looks validated and is not.
func ParseTopology(b []byte) (*Topology, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTopology, err)
	}
	// Trailing garbage after the object is a malformed spec, not an
	// extension point.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after topology object", ErrTopology)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks the topology before any replica boots, refusing the
// misconfigurations that would otherwise surface as a half-broken fleet
// at runtime: duplicate endpoints (two replicas would claim one
// address), inconsistent ring geometry (replicas disagreeing on
// ownership), and cache splits too small to survive the service's
// striping. Every error names the offending replica or field and what
// to change.
func (t *Topology) Validate() error {
	if len(t.Replicas) == 0 {
		return fmt.Errorf("%w: no replicas (name at least one)", ErrTopology)
	}
	if len(t.Replicas) > MaxReplicas {
		return fmt.Errorf("%w: %d replicas exceeds the %d-replica static peer list bound",
			ErrTopology, len(t.Replicas), MaxReplicas)
	}
	names := make(map[string]int, len(t.Replicas))
	addrs := make(map[string]int, len(t.Replicas))
	for i, r := range t.Replicas {
		if r.Name == "" {
			return fmt.Errorf("%w: replica %d has no name", ErrTopology, i)
		}
		if strings.ContainsAny(r.Name, ", \t\n") {
			return fmt.Errorf("%w: replica name %q contains separators (use a plain token)", ErrTopology, r.Name)
		}
		if j, ok := names[r.Name]; ok {
			return fmt.Errorf("%w: duplicate replica name %q (replicas %d and %d)", ErrTopology, r.Name, j, i)
		}
		names[r.Name] = i
		host, port, err := net.SplitHostPort(r.Addr)
		if err != nil {
			return fmt.Errorf("%w: replica %q addr %q is not host:port: %v", ErrTopology, r.Name, r.Addr, err)
		}
		if host == "" {
			return fmt.Errorf("%w: replica %q addr %q has no host (peers could not reach it)", ErrTopology, r.Name, r.Addr)
		}
		p, err := strconv.Atoi(port)
		if err != nil || p < 1 || p > 65535 {
			return fmt.Errorf("%w: replica %q port %q is not in [1, 65535]", ErrTopology, r.Name, port)
		}
		key := net.JoinHostPort(host, port)
		if j, ok := addrs[key]; ok {
			return fmt.Errorf("%w: duplicate endpoint %s (replicas %q and %q would fight over one port)",
				ErrTopology, key, t.Replicas[j].Name, r.Name)
		}
		addrs[key] = i
	}
	if t.VNodes != 0 && (t.VNodes < MinVNodes || t.VNodes > MaxVNodes) {
		return fmt.Errorf("%w: vnodes %d outside [%d, %d] (too few skews key ownership, too many bloats every ring rebuild)",
			ErrTopology, t.VNodes, MinVNodes, MaxVNodes)
	}
	if t.CacheEntries < 0 {
		return fmt.Errorf("%w: cacheEntries %d disables the response cache, but peer fill serves the fleet from the owner's cache — give each replica a positive bound",
			ErrTopology, t.CacheEntries)
	}
	if t.CacheEntries != 0 && t.CacheEntries < MinCacheEntries {
		return fmt.Errorf("%w: cacheEntries %d under-provisions the per-replica cache: the service stripes it 16 ways, so give each replica at least %d entries (or leave it default)",
			ErrTopology, t.CacheEntries, MinCacheEntries)
	}
	if t.RawCacheBytes < 0 {
		return fmt.Errorf("%w: rawCacheBytes %d disables the raw-bytes fast path peer fills seed — give each replica a positive budget",
			ErrTopology, t.RawCacheBytes)
	}
	if t.RawCacheBytes != 0 && t.RawCacheBytes < MinRawCacheBytes {
		return fmt.Errorf("%w: rawCacheBytes %d is under the %d-byte floor (peer-fill seeds would evict before replaying)",
			ErrTopology, t.RawCacheBytes, MinRawCacheBytes)
	}
	if t.RawCacheBytes > MaxRawCacheBytes {
		return fmt.Errorf("%w: rawCacheBytes %d exceeds the %d-byte per-replica capacity bound",
			ErrTopology, t.RawCacheBytes, MaxRawCacheBytes)
	}
	if t.RequestTimeoutMs < 0 {
		return fmt.Errorf("%w: requestTimeoutMs %d is negative", ErrTopology, t.RequestTimeoutMs)
	}
	// Per-level platform assignments must agree across the whole fleet:
	// the canonical config feeds every request hash, so one replica
	// defaulting to a different assignment owns no key it computes and
	// 409s on every peer fetch. Compare canonically so spelling
	// differences ({"0":"hmc"} vs {"00":"hmc"}) don't mask — or fake —
	// drift.
	fleetSpec, err := canonicalAssignment(t.PlatformsPerLevel, "topology")
	if err != nil {
		return err
	}
	agreed, agreedBy := fleetSpec, "the topology"
	for _, r := range t.Replicas {
		spec, err := canonicalAssignment(r.PlatformsPerLevel, "replica "+strconv.Quote(r.Name))
		if err != nil {
			return err
		}
		if spec == "" {
			continue // inherits the fleet default
		}
		if agreed == "" {
			agreed, agreedBy = spec, "replica "+strconv.Quote(r.Name)
			continue
		}
		if spec != agreed {
			return fmt.Errorf("%w: replica %q platformsPerLevel %q drifts from %s's %q — a drifted replica computes request hashes no ring owner recognizes and 409s on every /peer/v1/fetch",
				ErrTopology, r.Name, spec, agreedBy, agreed)
		}
	}
	// The ring itself must be constructible over the peer URLs.
	if _, err := NewRing(t.PeerURLs(), t.VNodes); err != nil {
		return fmt.Errorf("%w: %v", ErrTopology, err)
	}
	return nil
}

// PeerURLs returns every replica's peer URL in spec order — the -peers
// value each replica boots with (identical on all of them, so they
// compute identical rings).
func (t *Topology) PeerURLs() []string {
	urls := make([]string, len(t.Replicas))
	for i, r := range t.Replicas {
		urls[i] = r.URL()
	}
	return urls
}

// Flags returns the ready-to-run hypard flag set for replica i:
// listen address, cluster identity (self + full peer list) and the
// topology's explicit cache/deadline settings. Fields the topology
// leaves zero are omitted so the daemon's own defaults apply.
func (t *Topology) Flags(i int) []string {
	r := t.Replicas[i]
	flags := []string{
		"-addr", r.Addr,
		"-self", r.URL(),
		"-peers", strings.Join(t.PeerURLs(), ","),
	}
	if t.VNodes != 0 {
		flags = append(flags, "-vnodes", strconv.Itoa(t.VNodes))
	}
	if t.CacheEntries != 0 {
		flags = append(flags, "-cache", strconv.Itoa(t.CacheEntries))
	}
	if t.RawCacheBytes != 0 {
		flags = append(flags, "-rawcache", strconv.Itoa(t.RawCacheBytes))
	}
	if t.RequestTimeoutMs != 0 {
		flags = append(flags, "-timeout", (time.Duration(t.RequestTimeoutMs) * time.Millisecond).String())
	}
	// Validate guarantees replica and fleet specs agree, so emit
	// whichever is spelled out (the replica's own wins as the more
	// specific spelling of the same assignment).
	spec, err := canonicalAssignment(r.PlatformsPerLevel, "replica")
	if spec == "" && err == nil {
		spec, _ = canonicalAssignment(t.PlatformsPerLevel, "topology")
	}
	if spec != "" {
		flags = append(flags, "-platforms-per-level", spec)
	}
	return flags
}

// ProbeResult is one replica's reachability outcome.
type ProbeResult struct {
	// Replica is the probed instance.
	Replica Replica
	// OK reports whether /healthz answered 200 within the deadline.
	OK bool
	// Err holds the failure when OK is false.
	Err error
	// Latency is the probe round trip.
	Latency time.Duration
}

// Probe checks every replica's /healthz in parallel — the upfront
// reachability pass of hypardctl validate -probe. Results come back in
// replica order regardless of completion order; client may be nil (a
// plain http.Client bounded by ctx).
func (t *Topology) Probe(ctx context.Context, client *http.Client) []ProbeResult {
	if client == nil {
		client = &http.Client{}
	}
	results := make([]ProbeResult, len(t.Replicas))
	var wg sync.WaitGroup
	for i, r := range t.Replicas {
		wg.Add(1)
		go func(i int, r Replica) {
			defer wg.Done()
			t0 := time.Now()
			res := ProbeResult{Replica: r}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.URL()+"/healthz", nil)
			if err != nil {
				res.Err = err
			} else if resp, err := client.Do(req); err != nil {
				res.Err = err
			} else {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					res.OK = true
				} else {
					res.Err = fmt.Errorf("healthz answered %d", resp.StatusCode)
				}
			}
			res.Latency = time.Since(t0)
			results[i] = res
		}(i, r)
	}
	wg.Wait()
	return results
}

// Summary renders a one-screen human description of the validated
// topology: fleet size, ring geometry and the per-replica share of an
// evenly distributed key space.
func (t *Topology) Summary() string {
	var b strings.Builder
	vn := t.VNodes
	if vn == 0 {
		vn = DefaultVNodes
	}
	fmt.Fprintf(&b, "%d replicas, %d virtual nodes each (ring size %d)\n",
		len(t.Replicas), vn, len(t.Replicas)*vn)
	names := make([]string, len(t.Replicas))
	for i, r := range t.Replicas {
		names[i] = fmt.Sprintf("%s=%s", r.Name, r.Addr)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "replicas: %s\n", strings.Join(names, " "))
	return b.String()
}

package cluster

import (
	"errors"
	"testing"
)

// FuzzParseTopology throws arbitrary bytes at the hypardctl topology
// parser. Invariants: it never panics, every failure wraps ErrTopology
// (so hypardctl can distinguish bad specs from I/O errors), and any
// accepted topology re-validates and yields a constructible ring plus
// per-replica flag sets — the exact artifacts `hypardctl validate`
// hands to the operator.
func FuzzParseTopology(f *testing.F) {
	f.Add([]byte(validTopologyJSON()))
	f.Add([]byte(`{"replicas":[{"name":"solo","addr":"localhost:8080"}]}`))
	f.Add([]byte(`{"replicas":[{"name":"a","addr":"10.0.0.1:8080"},{"name":"b","addr":"10.0.0.1:8080"}]}`))
	f.Add([]byte(`{"vnodes":16,"cacheEntries":64,"replicas":[{"name":"a","addr":"[::1]:8080"}]}`))
	f.Add([]byte(`{"platformsPerLevel":{"0":"gpu-hbm","1":"hmc"},"replicas":[{"name":"a","addr":"10.0.0.1:8080","platformsPerLevel":{"0":"tpu-systolic"}}]}`))
	f.Add([]byte(`{"replicas":null}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		topo, err := ParseTopology(data)
		if err != nil {
			if !errors.Is(err, ErrTopology) {
				t.Fatalf("ParseTopology error %v does not wrap ErrTopology", err)
			}
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted topology fails re-validation: %v", err)
		}
		if _, err := NewRing(topo.PeerURLs(), topo.VNodes); err != nil {
			t.Fatalf("accepted topology has no constructible ring: %v", err)
		}
		for i := range topo.Replicas {
			if flags := topo.Flags(i); len(flags) < 6 {
				t.Fatalf("replica %d flag set too short: %v", i, flags)
			}
		}
		if topo.Summary() == "" {
			t.Fatal("accepted topology has empty summary")
		}
	})
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func validTopologyJSON() string {
	return `{
		"vnodes": 128,
		"cacheEntries": 4096,
		"rawCacheBytes": 4194304,
		"requestTimeoutMs": 2000,
		"replicas": [
			{"name": "a", "addr": "127.0.0.1:8081"},
			{"name": "b", "addr": "127.0.0.1:8082"},
			{"name": "c", "addr": "127.0.0.1:8083"}
		]
	}`
}

func TestParseTopologyValid(t *testing.T) {
	topo, err := ParseTopology([]byte(validTopologyJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Replicas) != 3 {
		t.Fatalf("replicas = %d, want 3", len(topo.Replicas))
	}
	urls := topo.PeerURLs()
	want := []string{"http://127.0.0.1:8081", "http://127.0.0.1:8082", "http://127.0.0.1:8083"}
	for i := range want {
		if urls[i] != want[i] {
			t.Fatalf("PeerURLs()[%d] = %q, want %q", i, urls[i], want[i])
		}
	}
	if s := topo.Summary(); !strings.Contains(s, "3 replicas") || !strings.Contains(s, "a=127.0.0.1:8081") {
		t.Fatalf("Summary() = %q", s)
	}
}

func TestParseTopologyRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the actionable error
	}{
		{"syntax", `{`, "invalid topology"},
		{"unknown field", `{"replicas":[{"name":"a","addr":"h:1"}],"shards":2}`, "shards"},
		{"trailing data", `{"replicas":[{"name":"a","addr":"h:1"}]} {}`, "trailing data"},
		{"no replicas", `{"replicas":[]}`, "no replicas"},
		{"missing name", `{"replicas":[{"addr":"h:1"}]}`, "no name"},
		{"separator in name", `{"replicas":[{"name":"a b","addr":"h:1"}]}`, "separators"},
		{"duplicate name", `{"replicas":[{"name":"a","addr":"h:1"},{"name":"a","addr":"h:2"}]}`, "duplicate replica name"},
		{"bad addr", `{"replicas":[{"name":"a","addr":"nohostport"}]}`, "not host:port"},
		{"no host", `{"replicas":[{"name":"a","addr":":8080"}]}`, "no host"},
		{"bad port", `{"replicas":[{"name":"a","addr":"h:99999"}]}`, "not in [1, 65535]"},
		{"duplicate endpoint", `{"replicas":[{"name":"a","addr":"10.0.0.1:8080"},{"name":"b","addr":"10.0.0.1:8080"}]}`, "duplicate endpoint"},
		{"vnodes too low", `{"vnodes":4,"replicas":[{"name":"a","addr":"h:1"}]}`, "vnodes 4 outside"},
		{"vnodes too high", `{"vnodes":100000,"replicas":[{"name":"a","addr":"h:1"}]}`, "vnodes 100000 outside"},
		{"negative cache", `{"cacheEntries":-1,"replicas":[{"name":"a","addr":"h:1"}]}`, "disables the response cache"},
		{"tiny cache", `{"cacheEntries":8,"replicas":[{"name":"a","addr":"h:1"}]}`, "under-provisions"},
		{"negative rawcache", `{"rawCacheBytes":-1,"replicas":[{"name":"a","addr":"h:1"}]}`, "disables the raw-bytes fast path"},
		{"tiny rawcache", `{"rawCacheBytes":1024,"replicas":[{"name":"a","addr":"h:1"}]}`, "64-byte floor"}, // replaced below
		{"huge rawcache", `{"rawCacheBytes":2147483648,"replicas":[{"name":"a","addr":"h:1"}]}`, "exceeds"},
		{"negative timeout", `{"requestTimeoutMs":-5,"replicas":[{"name":"a","addr":"h:1"}]}`, "negative"},
	}
	// The floor message embeds the numeric constant; build it here
	// instead of hard-coding digits in the table.
	for i := range cases {
		if cases[i].name == "tiny rawcache" {
			cases[i].want = fmt.Sprintf("%d-byte floor", MinRawCacheBytes)
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology([]byte(tc.json))
			if !errors.Is(err, ErrTopology) {
				t.Fatalf("error = %v, want ErrTopology", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTopologyRejectsOversizedFleet(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"replicas":[`)
	for i := 0; i <= MaxReplicas; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"name":"r%d","addr":"10.0.0.%d:8080"}`, i, i+1)
	}
	b.WriteString(`]}`)
	_, err := ParseTopology([]byte(b.String()))
	if !errors.Is(err, ErrTopology) || !strings.Contains(err.Error(), "peer list bound") {
		t.Fatalf("error = %v, want replica-bound rejection", err)
	}
}

func TestTopologyFlags(t *testing.T) {
	topo, err := ParseTopology([]byte(validTopologyJSON()))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(topo.Flags(1), " ")
	want := "-addr 127.0.0.1:8082 -self http://127.0.0.1:8082 " +
		"-peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 " +
		"-vnodes 128 -cache 4096 -rawcache 4194304 -timeout 2s"
	if got != want {
		t.Fatalf("Flags(1) = %q, want %q", got, want)
	}

	// Defaults stay the daemon's: zero-valued fields emit no flags.
	minimal := &Topology{Replicas: []Replica{{Name: "a", Addr: "127.0.0.1:9000"}}}
	if err := minimal.Validate(); err != nil {
		t.Fatal(err)
	}
	got = strings.Join(minimal.Flags(0), " ")
	want = "-addr 127.0.0.1:9000 -self http://127.0.0.1:9000 -peers http://127.0.0.1:9000"
	if got != want {
		t.Fatalf("minimal Flags(0) = %q, want %q", got, want)
	}
}

// TestTopologyPlatformAssignment pins the per-level platform plumbing:
// agreeing specs validate and reach the boot flags as the canonical
// comma form, equivalent spellings don't read as drift, and a replica
// whose assignment differs from the fleet's is rejected before boot
// (drift means its request hashes match no ring owner and every
// /peer/v1/fetch 409s).
func TestTopologyPlatformAssignment(t *testing.T) {
	t.Run("agreeing specs emit the flag", func(t *testing.T) {
		topo, err := ParseTopology([]byte(`{
			"platformsPerLevel": {"0": "gpu-hbm", "1": "hmc"},
			"replicas": [
				{"name": "a", "addr": "10.0.0.1:8080"},
				{"name": "b", "addr": "10.0.0.2:8080", "platformsPerLevel": {"0": "gpu-hbm", "1": "hmc"}}
			]
		}`))
		if err != nil {
			t.Fatal(err)
		}
		for i := range topo.Replicas {
			got := strings.Join(topo.Flags(i), " ")
			if !strings.Contains(got, "-platforms-per-level gpu-hbm,hmc") {
				t.Errorf("Flags(%d) = %q, want -platforms-per-level gpu-hbm,hmc", i, got)
			}
		}
	})

	t.Run("equivalent spellings are not drift", func(t *testing.T) {
		// Sparse replica spec {"1":"hmc"} canonicalizes with a hole at
		// level 0 — a different assignment than the fleet's full spec,
		// but {"0":"hmc","1":"hmc"} twice with different key spellings
		// must agree.
		_, err := ParseTopology([]byte(`{
			"platformsPerLevel": {"0": "hmc", "1": "hmc"},
			"replicas": [
				{"name": "a", "addr": "10.0.0.1:8080", "platformsPerLevel": {"1": "hmc", "0": "hmc"}}
			]
		}`))
		if err != nil {
			t.Fatalf("same assignment spelled differently rejected: %v", err)
		}
	})

	t.Run("drifting replica rejected", func(t *testing.T) {
		_, err := ParseTopology([]byte(`{
			"platformsPerLevel": {"0": "gpu-hbm"},
			"replicas": [
				{"name": "a", "addr": "10.0.0.1:8080"},
				{"name": "b", "addr": "10.0.0.2:8080", "platformsPerLevel": {"0": "tpu-systolic"}}
			]
		}`))
		if !errors.Is(err, ErrTopology) {
			t.Fatalf("error = %v, want ErrTopology", err)
		}
		for _, want := range []string{`replica "b"`, "tpu-systolic", "gpu-hbm", "409"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("drift error %q does not mention %q", err, want)
			}
		}
	})

	t.Run("replicas drift without a fleet default", func(t *testing.T) {
		_, err := ParseTopology([]byte(`{
			"replicas": [
				{"name": "a", "addr": "10.0.0.1:8080", "platformsPerLevel": {"0": "hmc"}},
				{"name": "b", "addr": "10.0.0.2:8080", "platformsPerLevel": {"0": "gpu-hbm"}}
			]
		}`))
		if !errors.Is(err, ErrTopology) || !strings.Contains(err.Error(), `replica "a"`) {
			t.Fatalf("error = %v, want drift naming the first spelled-out replica", err)
		}
	})

	t.Run("bad specs rejected", func(t *testing.T) {
		cases := []struct {
			name string
			json string
			want string
		}{
			{"non-integer key", `{"platformsPerLevel":{"root":"hmc"},"replicas":[{"name":"a","addr":"h:1"}]}`, `key "root"`},
			{"out-of-range key", `{"platformsPerLevel":{"25":"hmc"},"replicas":[{"name":"a","addr":"h:1"}]}`, `key "25"`},
			{"negative key", `{"platformsPerLevel":{"-1":"hmc"},"replicas":[{"name":"a","addr":"h:1"}]}`, `key "-1"`},
			{"unknown platform", `{"replicas":[{"name":"a","addr":"h:1","platformsPerLevel":{"0":"quantum"}}]}`, "quantum"},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				_, err := ParseTopology([]byte(tc.json))
				if !errors.Is(err, ErrTopology) {
					t.Fatalf("error = %v, want ErrTopology", err)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("error %q does not mention %q", err, tc.want)
				}
			})
		}
	})
}

func TestTopologyProbe(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer healthy.Close()
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer sick.Close()

	topo := &Topology{Replicas: []Replica{
		{Name: "healthy", Addr: strings.TrimPrefix(healthy.URL, "http://")},
		{Name: "sick", Addr: strings.TrimPrefix(sick.URL, "http://")},
		{Name: "absent", Addr: "127.0.0.1:1"},
	}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results := topo.Probe(ctx, nil)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if !results[0].OK || results[0].Err != nil {
		t.Errorf("healthy replica: OK=%v err=%v", results[0].OK, results[0].Err)
	}
	if results[1].OK || results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "503") {
		t.Errorf("sick replica: OK=%v err=%v, want 503", results[1].OK, results[1].Err)
	}
	if results[2].OK || results[2].Err == nil {
		t.Errorf("absent replica: OK=%v err=%v, want connection error", results[2].OK, results[2].Err)
	}
	for i, r := range results {
		if r.Replica.Name != topo.Replicas[i].Name {
			t.Errorf("result %d is %q, want spec order preserved (%q)", i, r.Replica.Name, topo.Replicas[i].Name)
		}
	}
}

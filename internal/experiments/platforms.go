package experiments

import (
	"fmt"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// platformTableModels are the networks the cross-platform table
// compares: the smallest zoo network, the paper's running example, and
// its largest-communication headline network.
var platformTableModels = []string{"Lenet-c", "AlexNet", "VGG-A"}

// mpShare returns the fraction of (level, layer) cells a plan assigns
// to model parallelism — the one-number summary of how far the
// partition DP leans away from pure data parallelism.
func mpShare(p *hypar.Plan) float64 {
	total, mp := 0, 0
	for h := 0; h < p.NumLevels(); h++ {
		for l := range p.Levels[h] {
			total++
			if p.Levels[h][l].Mark() == '1' {
				mp++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(mp) / float64(total)
}

// PlatformTable compares the registered accelerator platforms on three
// representative networks: every platform runs at its native topology
// and link bandwidth (batch, levels and precision carry over from the
// session config), and each row reports HyPar against that platform's
// own Data Parallelism baseline. The mp-share and last-layer columns
// show how the partition DP's dp/mp choices shift with the backend —
// the platform cost weights move the optimum, not just the absolute
// numbers.
//
// Cells whose platform-native config coincides with the session config
// reuse the session's cached zoo comparison (so `-experiment all`
// does not re-simulate the hmc column Fig6-8 already computed); the
// remaining model × platform cells fan out on the session pool.
func (s *Session) PlatformTable() (*report.Table, error) {
	names := hypar.Platforms()

	type cell struct {
		model *hypar.Model
		cfg   hypar.Config
	}
	// Resolve models against the pinned zoo so shape inference is
	// shared with every other figure, and index any cached zoo
	// comparison by model name.
	zoo := s.Zoo()
	cachedByModel := make(map[string]*hypar.Comparison)
	for _, c := range s.peekCompareZoo() {
		cachedByModel[c.Model] = c
	}
	sessionCanon := s.cfg.Canonical()

	cmps := make(map[string]map[string]*hypar.Comparison, len(platformTableModels))
	var cells []cell
	var cellKeys [][2]string // (model, platform) per cells entry
	for _, modelName := range platformTableModels {
		cmps[modelName] = make(map[string]*hypar.Comparison, len(names))
		var m *hypar.Model
		for _, zm := range zoo {
			if zm.Name == modelName {
				m = zm
				break
			}
		}
		if m == nil {
			return nil, fmt.Errorf("%w: model %q not in zoo", ErrExperiment, modelName)
		}
		for _, p := range names {
			cfg := s.cfg
			cfg.Platform = p
			cfg.Topology = ""
			cfg.LinkMbps = 0
			cfg = cfg.Canonical()
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("%w: platform %q: %v", ErrExperiment, p, err)
			}
			if cached, ok := cachedByModel[modelName]; ok && cfg == sessionCanon {
				cmps[modelName][p] = cached
				continue
			}
			cells = append(cells, cell{model: m, cfg: cfg})
			cellKeys = append(cellKeys, [2]string{modelName, p})
		}
	}

	results, err := runner.MapWith(s.pool, cells, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, c cell) (*hypar.Comparison, error) {
			cmp, err := ev.Compare(c.model, c.cfg)
			if err != nil {
				return nil, fmt.Errorf("%w: %s on %s: %v", ErrExperiment, c.model.Name, c.cfg.Platform, err)
			}
			return cmp, nil
		})
	if err != nil {
		return nil, err
	}
	for i, key := range cellKeys {
		cmps[key[0]][key[1]] = results[i]
	}

	t := report.NewTable("Cross-platform comparison: HyPar vs each platform's Data Parallelism",
		"model", "platform", "perf-gain", "energy-eff", "comm-GB", "mp-share", "last-layer")
	for _, modelName := range platformTableModels {
		for _, p := range names {
			cmp := cmps[modelName][p]
			hp := cmp.Results[hypar.HyPar]
			last := hp.Plan.LayerString(len(hp.Plan.Levels[0]) - 1)
			if err := t.AddRow(modelName, p,
				cmp.PerformanceGain(hypar.HyPar),
				cmp.EnergyEfficiency(hypar.HyPar),
				hp.Stats.CommBytes/1e9,
				mpShare(hp.Plan),
				last,
			); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// PlatformTable is the one-shot form of Session.PlatformTable.
func PlatformTable(cfg hypar.Config) (*report.Table, error) {
	return NewSession(cfg).PlatformTable()
}

package experiments

import (
	"fmt"
	"strings"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// heteroSpecs builds the mixed per-level platform assignments the
// heterogeneous table evaluates for an H-level hierarchy: a fast
// interposer fabric over HMC leaves, a systolic upper half over HMC,
// and a GPU root over a systolic array. Each spec pays explicit
// protocol-conversion charges at its platform seams.
func heteroSpecs(levels int) []hypar.PlatformSpec {
	top := func(n int, upper, lower string) hypar.PlatformSpec {
		names := make([]string, levels)
		for h := range names {
			if h < n {
				names[h] = upper
			} else {
				names[h] = lower
			}
		}
		spec, _ := hypar.ParsePlatformSpec(strings.Join(names, ","))
		return spec
	}
	return []hypar.PlatformSpec{
		top(1, "gpu-hbm", "hmc"),
		top((levels+1)/2, "tpu-systolic", "hmc"),
		top(1, "gpu-hbm", "tpu-systolic"),
	}
}

// samePlanAssignments reports whether two plans make identical dp/mp
// choices at every (level, layer) cell.
func samePlanAssignments(a, b *hypar.Plan) bool {
	if a.NumLevels() != b.NumLevels() {
		return false
	}
	for h := range a.Levels {
		if len(a.Levels[h]) != len(b.Levels[h]) {
			return false
		}
		for l := range a.Levels[h] {
			if a.Levels[h][l] != b.Levels[h][l] {
				return false
			}
		}
	}
	return true
}

// HeteroTable evaluates mixed per-level platform assignments on the
// representative networks: each row runs HyPar on a heterogeneous
// array (per-level partition weights, per-level fabrics, boundary
// conversion charges at every platform seam) against that same array's
// Data Parallelism baseline. The differs-from column counts how many
// of the homogeneous platforms' HyPar plans the mixed plan disagrees
// with — n/3 means the mixed assignment produced dp/mp choices that
// none of those n single-platform arrays would make, i.e. the
// heterogeneous cost model genuinely shifts the optimum rather than
// inheriting one platform's plan.
func (s *Session) HeteroTable() (*report.Table, error) {
	if s.cfg.Levels < 2 {
		return nil, fmt.Errorf("%w: heterogeneous table needs a hierarchy of at least 2 levels, have %d",
			ErrExperiment, s.cfg.Levels)
	}
	names := hypar.Platforms()
	specs := heteroSpecs(s.cfg.Levels)
	zoo := s.Zoo()

	type cell struct {
		model *hypar.Model
		cfg   hypar.Config
	}
	var cells []cell
	for _, modelName := range platformTableModels {
		var m *hypar.Model
		for _, zm := range zoo {
			if zm.Name == modelName {
				m = zm
				break
			}
		}
		if m == nil {
			return nil, fmt.Errorf("%w: model %q not in zoo", ErrExperiment, modelName)
		}
		for _, spec := range specs {
			cfg := s.cfg
			cfg.Platform = ""
			cfg.Platforms = spec
			cfg.Topology = ""
			cfg.LinkMbps = 0
			cfg = cfg.Canonical()
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("%w: platforms %q: %v", ErrExperiment, spec, err)
			}
			cells = append(cells, cell{model: m, cfg: cfg})
		}
	}

	cmps, err := runner.MapWith(s.pool, cells, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, c cell) (*hypar.Comparison, error) {
			cmp, err := ev.Compare(c.model, c.cfg)
			if err != nil {
				return nil, fmt.Errorf("%w: %s on %s: %v", ErrExperiment, c.model.Name, c.cfg.Platforms, err)
			}
			return cmp, nil
		})
	if err != nil {
		return nil, err
	}

	// The homogeneous references: each platform's own HyPar plan for
	// each model (partition search only — no simulation needed to
	// compare dp/mp choices).
	homPlans := make(map[string]map[string]*hypar.Plan, len(platformTableModels))
	for _, c := range cells {
		if _, ok := homPlans[c.model.Name]; ok {
			continue
		}
		homPlans[c.model.Name] = make(map[string]*hypar.Plan, len(names))
		for _, p := range names {
			cfg := s.cfg
			cfg.Platform = p
			cfg.Platforms = ""
			cfg.Topology = ""
			cfg.LinkMbps = 0
			plan, err := hypar.NewPlan(c.model, hypar.HyPar, cfg)
			if err != nil {
				return nil, fmt.Errorf("%w: homogeneous %s on %s: %v", ErrExperiment, c.model.Name, p, err)
			}
			homPlans[c.model.Name][p] = plan
		}
	}

	t := report.NewTable("Heterogeneous arrays: HyPar on mixed per-level platforms vs each array's Data Parallelism",
		"model", "platforms", "perf-gain", "energy-eff", "comm-GB", "mp-share", "differs-from", "last-layer")
	for i, c := range cells {
		cmp := cmps[i]
		hp := cmp.Results[hypar.HyPar]
		differs := 0
		for _, p := range names {
			if !samePlanAssignments(hp.Plan, homPlans[c.model.Name][p]) {
				differs++
			}
		}
		last := hp.Plan.LayerString(len(hp.Plan.Levels[0]) - 1)
		if err := t.AddRow(c.model.Name, string(c.cfg.Platforms),
			cmp.PerformanceGain(hypar.HyPar),
			cmp.EnergyEfficiency(hypar.HyPar),
			hp.Stats.CommBytes/1e9,
			mpShare(hp.Plan),
			fmt.Sprintf("%d/%d", differs, len(names)),
			last,
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// HeteroTable is the one-shot form of Session.HeteroTable.
func HeteroTable(cfg hypar.Config) (*report.Table, error) {
	return NewSession(cfg).HeteroTable()
}

package experiments

import (
	"testing"

	hypar "repro"
)

// TestHeteroShiftsOptimum pins the point of the heterogeneous table: at
// least one mixed per-level assignment produces a HyPar plan whose
// dp/mp choices differ from every homogeneous platform's plan — the
// per-level cost model moves the optimum somewhere no single-platform
// array would go.
func TestHeteroShiftsOptimum(t *testing.T) {
	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		t.Fatal(err)
	}
	base := hypar.DefaultConfig()

	homogeneous := make(map[string]*hypar.Plan)
	for _, p := range hypar.Platforms() {
		cfg := base
		cfg.Platform = p
		plan, err := hypar.NewPlan(m, hypar.HyPar, cfg)
		if err != nil {
			t.Fatalf("homogeneous %s: %v", p, err)
		}
		homogeneous[p] = plan
	}

	shifted := false
	for _, spec := range heteroSpecs(base.Levels) {
		cfg := base
		cfg.Platforms = spec
		plan, err := hypar.NewPlan(m, hypar.HyPar, cfg)
		if err != nil {
			t.Fatalf("mixed %s: %v", spec, err)
		}
		differsFromAll := true
		for p, hom := range homogeneous {
			if samePlanAssignments(plan, hom) {
				t.Logf("mixed %s matches homogeneous %s", spec, p)
				differsFromAll = false
			}
		}
		if differsFromAll {
			shifted = true
		}
	}
	if !shifted {
		t.Error("no mixed assignment produced a plan differing from every homogeneous baseline")
	}
}

// TestHeteroTableNeedsDepth pins the precondition: a hierarchy with
// fewer than two levels has no platform seam to mix across.
func TestHeteroTableNeedsDepth(t *testing.T) {
	cfg := hypar.DefaultConfig()
	cfg.Levels = 1
	if _, err := NewSession(cfg).HeteroTable(); err == nil {
		t.Error("HeteroTable accepted a 1-level hierarchy")
	}
}

package experiments

import (
	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// ScalePoint is one array size of the scalability study.
type ScalePoint struct {
	Accelerators int
	// Gains normalized to the single-accelerator step time.
	GainHyPar float64
	GainDP    float64
	// Total communication per step, bytes.
	CommHyPar float64
	CommDP    float64
}

// Fig11 reproduces the scalability study (paper Figure 11): VGG-A on 1
// to 2^maxLevels accelerators, reporting the performance gain over one
// accelerator and the total communication for HyPar and Data
// Parallelism. The per-size evaluations fan out on the session pool.
func (s *Session) Fig11(maxLevels int) (*report.Table, []ScalePoint, error) {
	m, err := hypar.ModelByName("VGG-A")
	if err != nil {
		return nil, nil, err
	}
	base := s.cfg
	base.Levels = 0
	single, err := hypar.Run(m, hypar.DataParallel, base)
	if err != nil {
		return nil, nil, err
	}
	singleStep := single.Stats.StepSeconds
	points, err := runner.MapWith(s.pool, make([]struct{}, maxLevels+1), hypar.NewEvaluator,
		func(ev *hypar.Evaluator, levels int, _ struct{}) (ScalePoint, error) {
			c := s.cfg
			c.Levels = levels
			hp, err := ev.Run(m, hypar.HyPar, c)
			if err != nil {
				return ScalePoint{}, err
			}
			dp, err := ev.Run(m, hypar.DataParallel, c)
			if err != nil {
				return ScalePoint{}, err
			}
			return ScalePoint{
				Accelerators: 1 << uint(levels),
				GainHyPar:    singleStep / hp.Stats.StepSeconds,
				GainDP:       singleStep / dp.Stats.StepSeconds,
				CommHyPar:    hp.Stats.CommBytes,
				CommDP:       dp.Stats.CommBytes,
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Figure 11: scalability of HyPar vs Data Parallelism (VGG-A)",
		"accelerators", "gain-HyPar", "gain-DP", "comm-HyPar-GB", "comm-DP-GB")
	for _, p := range points {
		if err := t.AddRow(p.Accelerators, p.GainHyPar, p.GainDP,
			p.CommHyPar/1e9, p.CommDP/1e9); err != nil {
			return nil, nil, err
		}
	}
	return t, points, nil
}

// Fig11 is the one-shot form of Session.Fig11.
func Fig11(cfg hypar.Config, maxLevels int) (*report.Table, []ScalePoint, error) {
	return NewSession(cfg).Fig11(maxLevels)
}

package experiments

import (
	hypar "repro"
	"repro/internal/report"
)

// ScalePoint is one array size of the scalability study.
type ScalePoint struct {
	Accelerators int
	// Gains normalized to the single-accelerator step time.
	GainHyPar float64
	GainDP    float64
	// Total communication per step, bytes.
	CommHyPar float64
	CommDP    float64
}

// Fig11 reproduces the scalability study (paper Figure 11): VGG-A on 1
// to 2^maxLevels accelerators, reporting the performance gain over one
// accelerator and the total communication for HyPar and Data
// Parallelism.
func Fig11(cfg hypar.Config, maxLevels int) (*report.Table, []ScalePoint, error) {
	m, err := hypar.ModelByName("VGG-A")
	if err != nil {
		return nil, nil, err
	}
	base := cfg
	base.Levels = 0
	single, err := hypar.Run(m, hypar.DataParallel, base)
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Figure 11: scalability of HyPar vs Data Parallelism (VGG-A)",
		"accelerators", "gain-HyPar", "gain-DP", "comm-HyPar-GB", "comm-DP-GB")
	points := make([]ScalePoint, 0, maxLevels+1)
	for levels := 0; levels <= maxLevels; levels++ {
		c := cfg
		c.Levels = levels
		hp, err := hypar.Run(m, hypar.HyPar, c)
		if err != nil {
			return nil, nil, err
		}
		dp, err := hypar.Run(m, hypar.DataParallel, c)
		if err != nil {
			return nil, nil, err
		}
		p := ScalePoint{
			Accelerators: 1 << uint(levels),
			GainHyPar:    single.Stats.StepSeconds / hp.Stats.StepSeconds,
			GainDP:       single.Stats.StepSeconds / dp.Stats.StepSeconds,
			CommHyPar:    hp.Stats.CommBytes,
			CommDP:       dp.Stats.CommBytes,
		}
		points = append(points, p)
		if err := t.AddRow(p.Accelerators, p.GainHyPar, p.GainDP,
			p.CommHyPar/1e9, p.CommDP/1e9); err != nil {
			return nil, nil, err
		}
	}
	return t, points, nil
}

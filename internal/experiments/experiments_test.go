package experiments

import (
	"math"
	"strings"
	"testing"

	hypar "repro"
)

func cfg() hypar.Config { return hypar.DefaultConfig() }

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %g, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %g, want 0", g)
	}
	if g := geomean([]float64{1, 0}); g != 0 {
		t.Errorf("geomean with zero = %g, want 0", g)
	}
}

func TestFig5(t *testing.T) {
	tb, err := Fig5(cfg())
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	// One row per weighted layer across the zoo: 4+4+4+5+8+11+13+16+16+19.
	if got, want := tb.NumRows(), 100; got != want {
		t.Errorf("Fig5 rows = %d, want %d", got, want)
	}
	out := tb.String()
	// SCONV rows must be all-dp at all levels (paper Figure 5b).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "SCONV") && !strings.Contains(line, "0000") {
			t.Errorf("SCONV line not all dp: %s", line)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tb, err := Fig6(cfg())
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if tb.NumRows() != 11 { // 10 networks + gmean
		t.Errorf("Fig6 rows = %d, want 11", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "Gmean") {
		t.Errorf("Fig6 missing gmean row:\n%s", out)
	}
}

func TestFig7Shape(t *testing.T) {
	tb, err := Fig7(cfg())
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if tb.NumRows() != 11 {
		t.Errorf("Fig7 rows = %d, want 11", tb.NumRows())
	}
}

func TestFig8Shape(t *testing.T) {
	tb, err := Fig8(cfg())
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if tb.NumRows() != 11 {
		t.Errorf("Fig8 rows = %d, want 11", tb.NumRows())
	}
}

func TestFig9(t *testing.T) {
	tb, ex, err := Fig9(cfg())
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(ex.Points) != 256 {
		t.Errorf("Fig9 points = %d, want 256", len(ex.Points))
	}
	// Paper: the peak of the swept space *is* HyPar's own point.
	if ex.Peak.Gain > ex.HyPar.Gain*1.02 {
		t.Errorf("Fig9 peak %g far above HyPar %g", ex.Peak.Gain, ex.HyPar.Gain)
	}
	if tb.NumRows() < 3 {
		t.Errorf("Fig9 table too small: %d rows", tb.NumRows())
	}
}

func TestFig10(t *testing.T) {
	_, ex, err := Fig10(cfg())
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if len(ex.Points) != 256 {
		t.Errorf("Fig10 points = %d, want 256", len(ex.Points))
	}
	// Paper: HyPar lands within a few percent of the sweep's peak
	// (4.97 vs 5.05 in the paper) but need not reach it, because the
	// greedy hierarchical search optimizes communication as a proxy.
	if ex.HyPar.Gain < ex.Peak.Gain*0.9 {
		t.Errorf("Fig10 HyPar %g more than 10%% below peak %g", ex.HyPar.Gain, ex.Peak.Gain)
	}
	if ex.Peak.Gain < 1 {
		t.Errorf("Fig10 peak %g below the DP baseline", ex.Peak.Gain)
	}
}

func TestFig11(t *testing.T) {
	tb, points, err := Fig11(cfg(), 6)
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	if len(points) != 7 { // 1..64 accelerators
		t.Fatalf("Fig11 points = %d, want 7", len(points))
	}
	if tb.NumRows() != 7 {
		t.Errorf("Fig11 rows = %d", tb.NumRows())
	}
	if points[0].GainHyPar != 1 || points[0].GainDP != 1 {
		t.Errorf("single-accelerator gains = %g, %g; want 1, 1",
			points[0].GainHyPar, points[0].GainDP)
	}
	for _, p := range points {
		if p.GainHyPar < p.GainDP*(1-1e-9) {
			t.Errorf("%d accelerators: HyPar gain %g below DP gain %g",
				p.Accelerators, p.GainHyPar, p.GainDP)
		}
		if p.CommHyPar > p.CommDP*(1+1e-9) {
			t.Errorf("%d accelerators: HyPar comm %g above DP comm %g",
				p.Accelerators, p.CommHyPar, p.CommDP)
		}
	}
	// Paper: HyPar scales while DP stops scaling. Under this NoC model
	// DP saturates (its gain per doubling collapses) rather than
	// declining outright — EXPERIMENTS.md records the deviation. Check
	// both trends: DP's marginal gain at the last doubling is small,
	// HyPar's stays close to ideal.
	n := len(points)
	dpMarginal := points[n-1].GainDP / points[n-2].GainDP
	hpMarginal := points[n-1].GainHyPar / points[n-2].GainHyPar
	if dpMarginal > 1.4 {
		t.Errorf("DP gain still scaling at 64 accelerators: marginal %g", dpMarginal)
	}
	if hpMarginal < 1.5 {
		t.Errorf("HyPar gain stopped scaling: marginal %g", hpMarginal)
	}
	if points[n-1].GainHyPar < 2*points[n-1].GainDP {
		t.Errorf("HyPar gain %g not well above DP gain %g at 64 accelerators",
			points[n-1].GainHyPar, points[n-1].GainDP)
	}
}

func TestFig12(t *testing.T) {
	tb, err := Fig12(cfg())
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	if tb.NumRows() != 11 {
		t.Errorf("Fig12 rows = %d, want 11", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "Torus") || !strings.Contains(out, "HTree") {
		t.Errorf("Fig12 missing columns:\n%s", out)
	}
}

func TestFig13(t *testing.T) {
	tb, err := Fig13(cfg())
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	if tb.NumRows() != 7 { // six cases + gmean
		t.Errorf("Fig13 rows = %d, want 7", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"conv5-b32-h2", "fc3-b4096-h4", "Gmean"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig13 missing %q:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	if tb, err := AblationDepth(cfg(), 5, "VGG-A"); err != nil || tb.NumRows() != 5 {
		t.Errorf("AblationDepth: rows=%v err=%v", tb, err)
	}
	if tb, err := AblationTopology(cfg(), "AlexNet"); err != nil || tb.NumRows() != 3 {
		t.Errorf("AblationTopology: err=%v", err)
	}
	if tb, err := AblationBatch(cfg(), "AlexNet"); err != nil || tb.NumRows() != 5 {
		t.Errorf("AblationBatch: err=%v", err)
	}
	if tb, err := AblationLinkBandwidth(cfg(), "VGG-A"); err != nil || tb.NumRows() != 6 {
		t.Errorf("AblationLinkBandwidth: err=%v", err)
	}
	if tb, err := AblationOverlap(cfg(), "VGG-A"); err != nil || tb.NumRows() != 4 {
		t.Errorf("AblationOverlap: err=%v", err)
	}
	if tb, err := AblationPrecision(cfg(), "VGG-A"); err != nil || tb.NumRows() != 3 {
		t.Errorf("AblationPrecision: err=%v", err)
	}
	if _, err := AblationDepth(cfg(), 3, "nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := AblationTopology(cfg(), "nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := AblationBatch(cfg(), "nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := AblationLinkBandwidth(cfg(), "nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := AblationOverlap(cfg(), "nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := AblationPrecision(cfg(), "nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// -update regenerates the golden files from the current implementation:
//
//	go test ./internal/experiments -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenFigures names the paper tables pinned byte-for-byte. Fig6/7/8
// are the headline results (performance, energy, communication across
// the ten-network zoo), platforms is the cross-platform comparison
// (hmc vs gpu-hbm vs tpu-systolic, each at its native fabric), and
// branched is the DAG-workload table (SRES-8 and Incep-2 under the
// graph partition search), degraded is the fault-replanning table
// (healthy vs degraded step time after the fixed level-1 fault), and
// hetero is the heterogeneous-array table (mixed per-level platform
// assignments with boundary conversion charges); if an implementation
// change shifts any number, the diff must be reviewed and the goldens
// regenerated deliberately — paper numbers cannot drift silently, and
// neither can the platform divergence, the graph DP's choices, the
// degraded replanning or the mixed-assignment optima.
func goldenFigures() map[string]func(*Session) (*report.Table, error) {
	return map[string]func(*Session) (*report.Table, error){
		"fig6":      (*Session).Fig6,
		"fig7":      (*Session).Fig7,
		"fig8":      (*Session).Fig8,
		"platforms": (*Session).PlatformTable,
		"branched":  (*Session).BranchedTable,
		"degraded":  (*Session).DegradedTable,
		"hetero":    (*Session).HeteroTable,
		"beam":      (*Session).BeamTable,
	}
}

// TestGoldenFigures renders Fig6/7/8 on the serial reference pool and
// compares the text tables byte-for-byte with testdata/golden.
func TestGoldenFigures(t *testing.T) {
	s := NewSessionWithPool(hypar.DefaultConfig(), runner.Serial())
	for name, figure := range goldenFigures() {
		t.Run(name, func(t *testing.T) {
			tbl, err := figure(s)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := tbl.WriteText(&got); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, got.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s drifted from golden file (regenerate with -update if intentional):\n--- golden\n%s\n--- got\n%s",
					name, want, got.Bytes())
			}
		})
	}
}

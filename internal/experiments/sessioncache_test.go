package experiments

import (
	"sync"
	"testing"

	hypar "repro"
	"repro/internal/nn"
	"repro/internal/runner"
)

// cacheCfg returns a distinct canonical config per batch size.
func cacheCfg(batch int) hypar.Config {
	c := hypar.DefaultConfig()
	c.Batch = batch
	return c.Canonical()
}

// TestSessionCacheReuse proves repeated Gets for one config return one
// Session instance and build exactly once, including under concurrency.
func TestSessionCacheReuse(t *testing.T) {
	c := NewSessionCache(4, runner.Serial())
	var builds int
	c.SetOnBuild(func(hypar.Config) { builds++ })

	first := c.Get(cacheCfg(64))
	var wg sync.WaitGroup
	got := make([]*Session, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.Get(cacheCfg(64))
		}(i)
	}
	wg.Wait()
	for i, s := range got {
		if s != first {
			t.Fatalf("Get %d returned a different session", i)
		}
	}
	if builds != 1 {
		t.Errorf("builds=%d for 17 Gets of one config, want 1", builds)
	}
	if c.Builds() != 1 || c.Len() != 1 {
		t.Errorf("Builds()=%d Len()=%d", c.Builds(), c.Len())
	}
}

// TestSessionCacheBound proves LRU eviction beyond the bound: the
// least recently used config's session is dropped and rebuilt on the
// next Get, while the refreshed one survives.
func TestSessionCacheBound(t *testing.T) {
	c := NewSessionCache(2, runner.Serial())
	a := c.Get(cacheCfg(8))
	c.Get(cacheCfg(16))
	if got := c.Get(cacheCfg(8)); got != a { // refresh a
		t.Fatal("a rebuilt while cached")
	}
	c.Get(cacheCfg(32)) // evicts 16 (8 was refreshed)
	if c.Len() != 2 {
		t.Fatalf("Len()=%d, want 2", c.Len())
	}
	if got := c.Get(cacheCfg(8)); got != a {
		t.Error("a evicted out of LRU order")
	}
	before := c.Builds()
	c.Get(cacheCfg(16)) // rebuilt — it was evicted
	if c.Builds() != before+1 {
		t.Error("evicted config did not rebuild")
	}
}

// TestSessionCacheDisabled proves max <= 0 reverts to a fresh session
// per Get (the pre-cache behavior) without tracking entries.
func TestSessionCacheDisabled(t *testing.T) {
	c := NewSessionCache(-1, runner.Serial())
	a := c.Get(cacheCfg(8))
	b := c.Get(cacheCfg(8))
	if a == b {
		t.Error("disabled cache reused a session")
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache tracked %d entries", c.Len())
	}
}

// TestSessionCacheSharesWork proves the cached session actually
// amortizes evaluation state: the zoo comparison computed through one
// Get is visible through a later Get of the same config.
func TestSessionCacheSharesWork(t *testing.T) {
	c := NewSessionCache(2, runner.Serial())
	cfg := cacheCfg(4) // tiny batch keeps this fast
	s1 := c.Get(cfg)
	cmps, err := s1.CompareZoo()
	if err != nil {
		t.Fatal(err)
	}
	s2 := c.Get(cfg)
	cmps2, err := s2.CompareZoo()
	if err != nil {
		t.Fatal(err)
	}
	if cmps[0] != cmps2[0] {
		t.Error("second Get recomputed the zoo comparison")
	}
}

// TestSessionCacheEvictionReleasesShapeCache is the shape-cache leak
// regression: evicting a session must drop the shape-cache entries of
// the zoo models it pinned. Thousands of distinct configs through a
// small cache previously parked one dead zoo's worth of entries each
// until the global cache churned them out; with the eviction hook the
// shape cache stays bounded by the live sessions.
func TestSessionCacheEvictionReleasesShapeCache(t *testing.T) {
	const bound = 4
	c := NewSessionCache(bound, runner.Serial())
	baseline := nn.ShapeCacheLen()
	// Live sessions can pin at most (bound+1) zoos' worth of entries
	// (the +1 covers the session being built while the evictee is still
	// counted); anything growing past that with the config count is the
	// leak. Each iteration touches one zoo model so entries actually
	// enter the shape cache.
	limit := (bound + 1) * len(hypar.Zoo())
	for batch := 1; batch <= 2000; batch++ {
		s := c.Get(cacheCfg(batch))
		if _, err := s.Zoo()[batch%10].CachedShapes(batch); err != nil {
			t.Fatal(err)
		}
		if n := nn.ShapeCacheLen() - baseline; n > limit {
			t.Fatalf("after %d distinct configs the shape cache grew by %d entries (limit %d): session eviction leaks",
				batch, n, limit)
		}
	}
	if c.Len() != bound {
		t.Fatalf("session cache holds %d sessions, want %d", c.Len(), bound)
	}
}

package experiments

import (
	"fmt"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// BranchedTable compares every strategy on the branched (DAG) workload
// networks — the residual SRES-8 and the two-branch Incep-2 — at the
// session configuration. One row per model and strategy reports the
// Fig6/Fig7 normalizations, the communication total, the skip-edge
// count beyond a plain chain, the mp share of the plan and the sink
// layer's per-level choices: the compact view of how the graph dynamic
// program treats fork and join edges that a chain never has. The rows
// are golden-pinned next to Fig6-8, so graph-DP drift cannot pass
// silently.
func (s *Session) BranchedTable() (*report.Table, error) {
	models := s.Branched()
	cmps, err := runner.MapWith(s.pool, models, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, m *hypar.Model) (*hypar.Comparison, error) {
			cmp, err := ev.Compare(m, s.cfg)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrExperiment, m.Name, err)
			}
			return cmp, nil
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Branched (DAG) workloads: per-strategy results at the session config",
		"model", "skip-edges", "strategy", "perf-gain", "energy-eff", "comm-GB", "mp-share", "sink-layer")
	for i, m := range models {
		cmp := cmps[i]
		skips, err := m.SkipEdges()
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrExperiment, m.Name, err)
		}
		for _, st := range hypar.Strategies {
			r := cmp.Results[st]
			if err := t.AddRow(m.Name, skips, st.String(),
				cmp.PerformanceGain(st),
				cmp.EnergyEfficiency(st),
				r.Stats.CommBytes/1e9,
				mpShare(r.Plan),
				r.Plan.LayerString(len(m.Layers)-1),
			); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// BranchedTable is the one-shot form of Session.BranchedTable.
func BranchedTable(cfg hypar.Config) (*report.Table, error) {
	return NewSession(cfg).BranchedTable()
}

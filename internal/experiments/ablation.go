package experiments

import (
	"fmt"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/tensor"
)

// AblationDepth sweeps the hierarchy depth H (array sizes 2..2^max) and
// reports HyPar's communication advantage over Data Parallelism — the
// design-choice study behind the hierarchical recursion.
func AblationDepth(cfg hypar.Config, maxLevels int, modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: hierarchy depth vs communication ("+modelName+")",
		"levels", "accelerators", "comm-HyPar-GB", "comm-DP-GB", "ratio")
	for levels := 1; levels <= maxLevels; levels++ {
		c := cfg
		c.Levels = levels
		hp, err := hypar.NewPlan(m, hypar.HyPar, c)
		if err != nil {
			return nil, err
		}
		dp, err := hypar.NewPlan(m, hypar.DataParallel, c)
		if err != nil {
			return nil, err
		}
		hpB := hp.TotalBytes(tensor.Float32)
		dpB := dp.TotalBytes(tensor.Float32)
		ratio := 0.0
		if hpB > 0 {
			ratio = dpB / hpB
		}
		if err := t.AddRow(levels, 1<<uint(levels), hpB/1e9, dpB/1e9, ratio); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationTopology compares HyPar's step time across H-tree, torus and
// the ideal fabric — isolating how much of the gain is NoC-bound.
func AblationTopology(cfg hypar.Config, modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: topology vs step time ("+modelName+")",
		"topology", "step-s", "comm-busy-s")
	for _, topo := range []string{"htree", "torus", "ideal"} {
		c := cfg
		c.Topology = topo
		r, err := hypar.Run(m, hypar.HyPar, c)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(topo, r.Stats.StepSeconds, r.Stats.TotalCommSeconds()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationBatch sweeps the batch size and reports which parallelism the
// communication model prefers for a representative conv and fc layer —
// the §3.4 crossover study.
func AblationBatch(cfg hypar.Config, modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: batch size vs optimized parallelism ("+modelName+")",
		"batch", "plan-H1", "comm-GB")
	for _, b := range []int{16, 64, 256, 1024, 4096} {
		c := cfg
		c.Batch = b
		plan, err := hypar.NewPlan(m, hypar.HyPar, c)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(b, plan.Levels[0].String(), plan.TotalBytes(tensor.Float32)/1e9); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationLinkBandwidth sweeps the NoC link bandwidth and reports
// HyPar's performance gain over Data Parallelism — the sensitivity of
// the headline result to the 1600 Mb/s assumption.
func AblationLinkBandwidth(cfg hypar.Config, modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: link bandwidth vs HyPar gain ("+modelName+")",
		"link-Mbps", "gain-vs-DP")
	for _, mbps := range []float64{400, 800, 1600, 3200, 6400, 12800} {
		c := cfg
		c.LinkMbps = mbps
		dp, err := hypar.Run(m, hypar.DataParallel, c)
		if err != nil {
			return nil, err
		}
		hp, err := hypar.Run(m, hypar.HyPar, c)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(mbps, dp.Stats.StepSeconds/hp.Stats.StepSeconds); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationPrecision sweeps the element width and reports HyPar's gain
// and absolute communication — quantifying how much of the headline
// result survives quantized training.
func AblationPrecision(cfg hypar.Config, modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: precision vs gain and communication ("+modelName+")",
		"precision", "gain-vs-DP", "comm-HyPar-GB", "fits-8GB")
	for _, prec := range []string{"fp32", "fp16", "int8"} {
		c := cfg
		c.Precision = prec
		dp, err := hypar.Run(m, hypar.DataParallel, c)
		if err != nil {
			return nil, err
		}
		hp, err := hypar.Run(m, hypar.HyPar, c)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(prec, dp.Stats.StepSeconds/hp.Stats.StepSeconds,
			hp.Stats.CommBytes/1e9, fmt.Sprintf("%v", hp.Stats.FitsMemory)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationOverlap quantifies what a gradient-communication-hiding
// runtime would recover on top of the phase-serial schedule, for every
// strategy on one model.
func AblationOverlap(cfg hypar.Config, modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: phase-serial vs overlapped gradient communication ("+modelName+")",
		"strategy", "serial-s", "overlap-s", "hidden-frac")
	for _, s := range hypar.Strategies {
		serialCfg := cfg
		serialCfg.OverlapGradComm = false
		overlapCfg := cfg
		overlapCfg.OverlapGradComm = true
		sr, err := hypar.Run(m, s, serialCfg)
		if err != nil {
			return nil, err
		}
		or, err := hypar.Run(m, s, overlapCfg)
		if err != nil {
			return nil, err
		}
		hidden := 0.0
		if sr.Stats.StepSeconds > 0 {
			hidden = 1 - or.Stats.StepSeconds/sr.Stats.StepSeconds
		}
		if err := t.AddRow(s.String(), sr.Stats.StepSeconds, or.Stats.StepSeconds, hidden); err != nil {
			return nil, err
		}
	}
	return t, nil
}

package experiments

import (
	"fmt"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tensor"
)

// AblationDepth sweeps the hierarchy depth H (array sizes 2..2^max) and
// reports HyPar's communication advantage over Data Parallelism — the
// design-choice study behind the hierarchical recursion.
func (s *Session) AblationDepth(maxLevels int, modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	type row struct{ hpB, dpB float64 }
	rows, err := runner.Map(s.pool, make([]struct{}, maxLevels), func(i int, _ struct{}) (row, error) {
		c := s.cfg
		c.Levels = i + 1
		hp, err := hypar.NewPlan(m, hypar.HyPar, c)
		if err != nil {
			return row{}, err
		}
		dp, err := hypar.NewPlan(m, hypar.DataParallel, c)
		if err != nil {
			return row{}, err
		}
		return row{hpB: hp.TotalBytes(tensor.Float32), dpB: dp.TotalBytes(tensor.Float32)}, nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: hierarchy depth vs communication ("+modelName+")",
		"levels", "accelerators", "comm-HyPar-GB", "comm-DP-GB", "ratio")
	for i, r := range rows {
		levels := i + 1
		ratio := 0.0
		if r.hpB > 0 {
			ratio = r.dpB / r.hpB
		}
		if err := t.AddRow(levels, 1<<uint(levels), r.hpB/1e9, r.dpB/1e9, ratio); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationTopology compares HyPar's step time across H-tree, torus and
// the ideal fabric — isolating how much of the gain is NoC-bound.
func (s *Session) AblationTopology(modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	topos := []string{"htree", "torus", "ideal"}
	results, err := runner.MapWith(s.pool, topos, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, topo string) (*hypar.Result, error) {
			c := s.cfg
			c.Topology = topo
			return ev.Run(m, hypar.HyPar, c)
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: topology vs step time ("+modelName+")",
		"topology", "step-s", "comm-busy-s")
	for i, topo := range topos {
		if err := t.AddRow(topo, results[i].Stats.StepSeconds, results[i].Stats.TotalCommSeconds()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationBatch sweeps the batch size and reports which parallelism the
// communication model prefers for a representative conv and fc layer —
// the §3.4 crossover study.
func (s *Session) AblationBatch(modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	batches := []int{16, 64, 256, 1024, 4096}
	plans, err := runner.Map(s.pool, batches, func(_ int, b int) (*hypar.Plan, error) {
		c := s.cfg
		c.Batch = b
		return hypar.NewPlan(m, hypar.HyPar, c)
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: batch size vs optimized parallelism ("+modelName+")",
		"batch", "plan-H1", "comm-GB")
	for i, b := range batches {
		if err := t.AddRow(b, plans[i].Levels[0].String(), plans[i].TotalBytes(tensor.Float32)/1e9); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationLinkBandwidth sweeps the NoC link bandwidth and reports
// HyPar's performance gain over Data Parallelism — the sensitivity of
// the headline result to the 1600 Mb/s assumption.
func (s *Session) AblationLinkBandwidth(modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	speeds := []float64{400, 800, 1600, 3200, 6400, 12800}
	gains, err := runner.MapWith(s.pool, speeds, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, mbps float64) (float64, error) {
			c := s.cfg
			c.LinkMbps = mbps
			dp, err := ev.Run(m, hypar.DataParallel, c)
			if err != nil {
				return 0, err
			}
			hp, err := ev.Run(m, hypar.HyPar, c)
			if err != nil {
				return 0, err
			}
			return dp.Stats.StepSeconds / hp.Stats.StepSeconds, nil
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: link bandwidth vs HyPar gain ("+modelName+")",
		"link-Mbps", "gain-vs-DP")
	for i, mbps := range speeds {
		if err := t.AddRow(mbps, gains[i]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationPrecision sweeps the element width and reports HyPar's gain
// and absolute communication — quantifying how much of the headline
// result survives quantized training.
func (s *Session) AblationPrecision(modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	precisions := []string{"fp32", "fp16", "int8"}
	type row struct {
		gain, commGB float64
		fits         bool
	}
	rows, err := runner.MapWith(s.pool, precisions, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, prec string) (row, error) {
			c := s.cfg
			c.Precision = prec
			dp, err := ev.Run(m, hypar.DataParallel, c)
			if err != nil {
				return row{}, err
			}
			hp, err := ev.Run(m, hypar.HyPar, c)
			if err != nil {
				return row{}, err
			}
			return row{
				gain:   dp.Stats.StepSeconds / hp.Stats.StepSeconds,
				commGB: hp.Stats.CommBytes / 1e9,
				fits:   hp.Stats.FitsMemory,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: precision vs gain and communication ("+modelName+")",
		"precision", "gain-vs-DP", "comm-HyPar-GB", "fits-8GB")
	for i, prec := range precisions {
		if err := t.AddRow(prec, rows[i].gain, rows[i].commGB, fmt.Sprintf("%v", rows[i].fits)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationOverlap quantifies what a gradient-communication-hiding
// runtime would recover on top of the phase-serial schedule, for every
// strategy on one model.
func (s *Session) AblationOverlap(modelName string) (*report.Table, error) {
	m, err := hypar.ModelByName(modelName)
	if err != nil {
		return nil, err
	}
	type row struct{ serial, overlap float64 }
	rows, err := runner.MapWith(s.pool, hypar.Strategies, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, st hypar.Strategy) (row, error) {
			serialCfg := s.cfg
			serialCfg.OverlapGradComm = false
			overlapCfg := s.cfg
			overlapCfg.OverlapGradComm = true
			sr, err := ev.Run(m, st, serialCfg)
			if err != nil {
				return row{}, err
			}
			or, err := ev.Run(m, st, overlapCfg)
			if err != nil {
				return row{}, err
			}
			return row{serial: sr.Stats.StepSeconds, overlap: or.Stats.StepSeconds}, nil
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Ablation: phase-serial vs overlapped gradient communication ("+modelName+")",
		"strategy", "serial-s", "overlap-s", "hidden-frac")
	for i, st := range hypar.Strategies {
		hidden := 0.0
		if rows[i].serial > 0 {
			hidden = 1 - rows[i].overlap/rows[i].serial
		}
		if err := t.AddRow(st.String(), rows[i].serial, rows[i].overlap, hidden); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationDepth is the one-shot form of Session.AblationDepth.
func AblationDepth(cfg hypar.Config, maxLevels int, modelName string) (*report.Table, error) {
	return NewSession(cfg).AblationDepth(maxLevels, modelName)
}

// AblationTopology is the one-shot form of Session.AblationTopology.
func AblationTopology(cfg hypar.Config, modelName string) (*report.Table, error) {
	return NewSession(cfg).AblationTopology(modelName)
}

// AblationBatch is the one-shot form of Session.AblationBatch.
func AblationBatch(cfg hypar.Config, modelName string) (*report.Table, error) {
	return NewSession(cfg).AblationBatch(modelName)
}

// AblationLinkBandwidth is the one-shot form of Session.AblationLinkBandwidth.
func AblationLinkBandwidth(cfg hypar.Config, modelName string) (*report.Table, error) {
	return NewSession(cfg).AblationLinkBandwidth(modelName)
}

// AblationPrecision is the one-shot form of Session.AblationPrecision.
func AblationPrecision(cfg hypar.Config, modelName string) (*report.Table, error) {
	return NewSession(cfg).AblationPrecision(modelName)
}

// AblationOverlap is the one-shot form of Session.AblationOverlap.
func AblationOverlap(cfg hypar.Config, modelName string) (*report.Table, error) {
	return NewSession(cfg).AblationOverlap(modelName)
}

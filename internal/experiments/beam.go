package experiments

import (
	"errors"
	"fmt"

	hypar "repro"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/runner"
)

// wideFanBranches sizes the synthetic wide-graph workload: 18 parallel
// branches keep its partition frontier above the exact graph DP's
// compiled-in cap of 16 open layers, so only the beam can plan it.
const wideFanBranches = 18

// WideFan builds the synthetic wide-graph workload the beam table
// plans: one conv stem fanning out into n parallel conv branches that
// a single FC layer joins. Its partition frontier equals n, so n above
// the exact graph DP's cap exercises the beam's reason to exist.
func WideFan(n int) *hypar.Model {
	m := &hypar.Model{
		Name:  fmt.Sprintf("WideFan-%d", n),
		Input: hypar.Input{H: 16, W: 16, C: 3},
	}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "stem", Type: nn.Conv, K: 3, Pad: 1, Cout: 8, Act: nn.ReLU,
	})
	ins := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("branch%02d", i)
		m.Layers = append(m.Layers, nn.Layer{
			Name: name, Type: nn.Conv, K: 3, Pad: 1, Cout: 8, Act: nn.ReLU,
			Inputs: []string{"stem"},
		})
		ins = append(ins, name)
	}
	m.Layers = append(m.Layers, nn.Layer{
		Name: "join", Type: nn.FC, Cout: 10, Act: nn.Softmax, Inputs: ins,
	})
	return m
}

// beamRow is one model's exact-vs-beam measurement.
type beamRow struct {
	model    string
	frontier int
	refused  bool // exact DP refused (frontier over the cap)
	exactSec float64
	beamSec  float64
	gap      float64 // (beam comm - exact comm) / exact comm
}

// BeamTable compares the exact partition search against the bounded
// beam (searchMethod "beam" at the default width) on the branched zoo
// networks plus the synthetic WideFan-18, whose frontier exceeds the
// exact graph DP's cap. Per model it reports the frontier width, the
// simulated step time under each search, and the beam's communication
// gap versus the exact optimum — zero gap on every graph the exact DP
// can solve pins the beam as an approximation that loses nothing where
// it can be checked, while the WideFan row shows it planning a graph
// the exact search refuses outright.
func (s *Session) BeamTable() (*report.Table, error) {
	models := append([]*hypar.Model{}, s.Branched()...)
	models = append(models, WideFan(wideFanBranches))

	exactCfg := s.cfg
	exactCfg.SearchMethod = ""
	exactCfg.BeamWidth = 0
	beamCfg := s.cfg
	beamCfg.SearchMethod = "beam"
	beamCfg.BeamWidth = 0 // canonical default width

	rows, err := runner.MapCtx(nil, s.pool, models,
		func(_ int, m *hypar.Model) (beamRow, error) {
			preds, err := m.LayerPreds()
			if err != nil {
				return beamRow{}, fmt.Errorf("%w: %s: %v", ErrExperiment, m.Name, err)
			}
			row := beamRow{model: m.Name, frontier: partition.FrontierWidth(preds)}

			beam, err := hypar.Run(m, hypar.HyPar, beamCfg)
			if err != nil {
				return beamRow{}, fmt.Errorf("%w: %s: beam: %v", ErrExperiment, m.Name, err)
			}
			row.beamSec = beam.Stats.StepSeconds

			exact, err := hypar.Run(m, hypar.HyPar, exactCfg)
			switch {
			case errors.Is(err, partition.ErrTooWide):
				row.refused = true
			case err != nil:
				return beamRow{}, fmt.Errorf("%w: %s: exact: %v", ErrExperiment, m.Name, err)
			default:
				row.exactSec = exact.Stats.StepSeconds
				if exact.Plan.TotalElems > 0 {
					row.gap = (beam.Plan.TotalElems - exact.Plan.TotalElems) / exact.Plan.TotalElems
				}
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}

	t := report.NewTable("Beam search vs exact partition search (branched zoo + WideFan-18)",
		"model", "frontier", "exact-step-ms", "beam-step-ms", "comm-gap-%")
	for _, r := range rows {
		exactCell, gapCell := interface{}("refused"), interface{}("n/a")
		if !r.refused {
			exactCell = 1e3 * r.exactSec
			gapCell = 100 * r.gap
		}
		if err := t.AddRow(r.model, r.frontier, exactCell, 1e3*r.beamSec, gapCell); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// BeamTable is the one-shot form of Session.BeamTable.
func BeamTable(cfg hypar.Config) (*report.Table, error) {
	return NewSession(cfg).BeamTable()
}

package experiments

import (
	"fmt"
	"sort"

	hypar "repro"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
)

// ExplorePoint is one simulated sample of a parallelism-space
// exploration: the free-variable bit codes and the performance
// normalized to Data Parallelism.
type ExplorePoint struct {
	// Code enumerates the free variables: bit i (LSB first) is the
	// choice of free[i] (0 = dp, 1 = mp).
	Code int
	// Labels maps each swept entity to its 0/1 choice string (e.g.
	// "H1" -> "0011" for Fig. 9, "conv5_2" -> "1000" for Fig. 10).
	Labels map[string]string
	// Gain is the performance normalized to Data Parallelism.
	Gain float64
	// IsHyPar marks the point whose free bits equal HyPar's own plan.
	IsHyPar bool
}

// Exploration is a full sweep with its peak and HyPar points.
type Exploration struct {
	Points []ExplorePoint
	Peak   ExplorePoint
	HyPar  ExplorePoint
}

// DefaultExploreLabel names each free variable "L<level>.<layer>" and
// renders its single 0/1 bit — the label function services and tools
// use when no figure-specific grouping applies.
func DefaultExploreLabel(free []partition.FreeVar) func(code int) map[string]string {
	return func(code int) map[string]string {
		labels := make(map[string]string, len(free))
		for i, fv := range free {
			labels[fmt.Sprintf("L%d.%d", fv.Level, fv.Layer)] = bits(code, i, 1)
		}
		return labels
	}
}

// ExploreStream evaluates all 2^len(free) settings of the free
// variables on top of the model's HyPar plan, simulates each point on
// the session pool, and hands the points to emit in code order as they
// become ready — point p's emission does not wait for the sweep's tail,
// so NDJSON consumers see results immediately. label may be nil
// (DefaultExploreLabel is used). An emit error cancels the remaining
// sweep and is returned.
func (s *Session) ExploreStream(m *hypar.Model, free []partition.FreeVar,
	label func(code int) map[string]string, emit func(ExplorePoint) error) error {
	if label == nil {
		label = DefaultExploreLabel(free)
	}
	base, err := hypar.NewPlanOpts(nil, m, hypar.HyPar, s.cfg,
		hypar.PlanOptions{Warm: s.warmPlan(m.Name)})
	if err != nil {
		return err
	}
	s.storeWarm(m.Name, base)
	dp, err := hypar.Run(m, hypar.DataParallel, s.cfg)
	if err != nil {
		return err
	}
	arch, err := hypar.BuildArch(s.cfg)
	if err != nil {
		return err
	}
	var hyparCode int
	for i, fv := range free {
		if base.Levels[fv.Level][fv.Layer].Mark() == '1' {
			hyparCode |= 1 << uint(i)
		}
	}
	// Sweep points are evaluated under the configured platform's cost
	// weights, the same objective the HyPar base plan optimized.
	plat, err := hypar.PlatformFor(s.cfg)
	if err != nil {
		return err
	}
	points, err := partition.ExploreWeightedWith(s.pool, m, s.cfg.Batch, base.Levels, free, plat.PartitionWeights())
	if err != nil {
		return err
	}
	dpStep := dp.Stats.StepSeconds
	return runner.StreamWith(s.pool, points, sim.NewSimulator,
		func(sm *sim.Simulator, _ int, pt partition.ExplorePoint) (ExplorePoint, error) {
			stats, err := sm.Simulate(m, pt.Plan, arch)
			if err != nil {
				return ExplorePoint{}, err
			}
			return ExplorePoint{
				Code:    pt.Code,
				Labels:  label(pt.Code),
				Gain:    dpStep / stats.StepSeconds,
				IsHyPar: pt.Code == hyparCode,
			}, nil
		},
		func(_ int, ep ExplorePoint) error { return emit(ep) })
}

// Explore evaluates all settings of the free variables on top of the
// HyPar plan and simulates each point, fanning the simulations out on
// the session pool. Points stay in code order and the peak/HyPar
// reduction runs serially over them, so the result is identical at any
// pool width. Fig9 and Fig10 are zoo-specific instances; arbitrary
// models (the hypard /v1/explore endpoint) come through here too.
func (s *Session) Explore(m *hypar.Model, free []partition.FreeVar,
	label func(code int) map[string]string) (*Exploration, error) {
	eps := make([]ExplorePoint, 0, 1<<uint(len(free)))
	if err := s.ExploreStream(m, free, label, func(ep ExplorePoint) error {
		eps = append(eps, ep)
		return nil
	}); err != nil {
		return nil, err
	}
	ex := &Exploration{Points: eps}
	for _, ep := range eps {
		if ep.Gain > ex.Peak.Gain {
			ex.Peak = ep
		}
		if ep.IsHyPar {
			ex.HyPar = ep
		}
	}
	if ex.HyPar.Labels == nil {
		return nil, fmt.Errorf("%w: HyPar's own point missing from exploration", ErrExperiment)
	}
	return ex, nil
}

// bits renders the given bit-slice of code as a 0/1 string, LSB-first
// variable order but most-significant level first in the string, to
// match the H1..H4 reading direction of Figures 9-10.
func bits(code, offset, width int) string {
	b := make([]byte, width)
	for i := 0; i < width; i++ {
		if code&(1<<uint(offset+i)) != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// Fig9 explores the Lenet-c parallelism space (paper Figure 9): the
// parallelisms of all four weighted layers at levels H1 and H4 sweep
// over 2^8 = 256 points while H2 and H3 stay at HyPar's optimum. The
// returned table lists the peak point, HyPar's point, and the sweep
// sorted by gain (top ten rows).
func (s *Session) Fig9() (*report.Table, *Exploration, error) {
	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		return nil, nil, err
	}
	nl := len(m.Layers)
	free := make([]partition.FreeVar, 0, 2*nl)
	for l := 0; l < nl; l++ {
		free = append(free, partition.FreeVar{Level: 0, Layer: l})
	}
	for l := 0; l < nl; l++ {
		free = append(free, partition.FreeVar{Level: s.cfg.Levels - 1, Layer: l})
	}
	label := func(code int) map[string]string {
		return map[string]string{
			"H1": bits(code, 0, nl),
			"H4": bits(code, nl, nl),
		}
	}
	ex, err := s.Explore(m, free, label)
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Figure 9: Lenet-c parallelism space (H1 and H4 swept, H2/H3 fixed)",
		"point", "H1", "H4", "gain-vs-DP")
	if err := addExploreRows(t, ex, []string{"H1", "H4"}); err != nil {
		return nil, nil, err
	}
	return t, ex, nil
}

// Fig10 explores the VGG-A space (paper Figure 10): the parallelisms of
// conv5_2 and fc1 across all four hierarchy levels sweep over 2^8 = 256
// points while every other layer stays at HyPar's optimum.
func (s *Session) Fig10() (*report.Table, *Exploration, error) {
	m, err := hypar.ModelByName("VGG-A")
	if err != nil {
		return nil, nil, err
	}
	conv52, fc1 := -1, -1
	for l, layer := range m.Layers {
		switch layer.Name {
		case "conv5_2":
			conv52 = l
		case "fc1":
			fc1 = l
		}
	}
	if conv52 < 0 || fc1 < 0 {
		return nil, nil, fmt.Errorf("%w: VGG-A layers not found", ErrExperiment)
	}
	free := make([]partition.FreeVar, 0, 2*s.cfg.Levels)
	for h := 0; h < s.cfg.Levels; h++ {
		free = append(free, partition.FreeVar{Level: h, Layer: conv52})
	}
	for h := 0; h < s.cfg.Levels; h++ {
		free = append(free, partition.FreeVar{Level: h, Layer: fc1})
	}
	label := func(code int) map[string]string {
		return map[string]string{
			"conv5_2": bits(code, 0, s.cfg.Levels),
			"fc1":     bits(code, s.cfg.Levels, s.cfg.Levels),
		}
	}
	ex, err := s.Explore(m, free, label)
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Figure 10: VGG-A parallelism space (conv5_2 and fc1 swept)",
		"point", "conv5_2", "fc1", "gain-vs-DP")
	if err := addExploreRows(t, ex, []string{"conv5_2", "fc1"}); err != nil {
		return nil, nil, err
	}
	return t, ex, nil
}

// addExploreRows emits the peak and HyPar rows followed by the ten best
// sweep points.
func addExploreRows(t *report.Table, ex *Exploration, keys []string) error {
	row := func(name string, p ExplorePoint) error {
		cells := make([]interface{}, 0, len(keys)+2)
		cells = append(cells, name)
		for _, k := range keys {
			cells = append(cells, p.Labels[k])
		}
		cells = append(cells, p.Gain)
		return t.AddRow(cells...)
	}
	if err := row("Peak", ex.Peak); err != nil {
		return err
	}
	if err := row("HyPar", ex.HyPar); err != nil {
		return err
	}
	sorted := make([]ExplorePoint, len(ex.Points))
	copy(sorted, ex.Points)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Gain > sorted[j].Gain })
	for i := 0; i < len(sorted) && i < 10; i++ {
		if err := row(fmt.Sprintf("top%02d", i+1), sorted[i]); err != nil {
			return err
		}
	}
	return nil
}

// Fig9 is the one-shot form of Session.Fig9.
func Fig9(cfg hypar.Config) (*report.Table, *Exploration, error) { return NewSession(cfg).Fig9() }

// Fig10 is the one-shot form of Session.Fig10.
func Fig10(cfg hypar.Config) (*report.Table, *Exploration, error) { return NewSession(cfg).Fig10() }

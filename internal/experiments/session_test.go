package experiments

import (
	"runtime"
	"testing"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// render runs a figure runner and renders its table for byte
// comparison.
func render(t *testing.T, fig func() (*report.Table, error)) string {
	t.Helper()
	tb, err := fig()
	if err != nil {
		t.Fatal(err)
	}
	return tb.String()
}

// TestParallelSerialIdenticalTables is the determinism contract of the
// concurrency layer: a width-1 (serial) session and a width-NumCPU
// session must render byte-identical tables. Only orchestration is
// concurrent; every simulation stays deterministic.
func TestParallelSerialIdenticalTables(t *testing.T) {
	wide := runtime.NumCPU()
	if wide < 2 {
		wide = 4 // still exercises the goroutine path on 1-CPU hosts
	}
	serial := NewSessionWithPool(cfg(), runner.New(1))
	parallel := NewSessionWithPool(cfg(), runner.New(wide))

	t.Run("fig6", func(t *testing.T) {
		s := render(t, serial.Fig6)
		p := render(t, parallel.Fig6)
		if s != p {
			t.Errorf("Fig6 differs between width 1 and width %d:\n--- serial ---\n%s\n--- parallel ---\n%s", wide, s, p)
		}
	})
	t.Run("fig8", func(t *testing.T) {
		s := render(t, serial.Fig8)
		p := render(t, parallel.Fig8)
		if s != p {
			t.Errorf("Fig8 differs between width 1 and width %d:\n%s\nvs\n%s", wide, s, p)
		}
	})
	t.Run("fig9", func(t *testing.T) {
		st, sex, serr := serial.Fig9()
		if serr != nil {
			t.Fatal(serr)
		}
		pt, pex, perr := parallel.Fig9()
		if perr != nil {
			t.Fatal(perr)
		}
		s := st.String()
		p := pt.String()
		if s != p {
			t.Errorf("Fig9 differs between width 1 and width %d:\n%s\nvs\n%s", wide, s, p)
		}
		if len(sex.Points) != len(pex.Points) {
			t.Fatalf("point counts differ: %d vs %d", len(sex.Points), len(pex.Points))
		}
		for i := range sex.Points {
			if sex.Points[i].Gain != pex.Points[i].Gain {
				t.Fatalf("point %d gain differs: %g vs %g", i, sex.Points[i].Gain, pex.Points[i].Gain)
			}
		}
	})
}

// TestSessionSharesZooComparison checks Fig6/7/8 reuse one evaluation.
func TestSessionSharesZooComparison(t *testing.T) {
	s := NewSession(cfg())
	first, err := s.CompareZoo()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.CompareZoo()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("comparison lengths differ")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("CompareZoo recomputed comparison %d instead of caching it", i)
		}
	}
	if _, err := s.Fig6(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig7(); err != nil {
		t.Fatal(err)
	}
	third, err := s.CompareZoo()
	if err != nil {
		t.Fatal(err)
	}
	if third[0] != first[0] {
		t.Error("figure runners dropped the session cache")
	}
}

// TestFig12CacheReuseMatchesFresh checks the opportunistic Fig12 reuse
// of the session's zoo comparison changes nothing in the output.
func TestFig12CacheReuseMatchesFresh(t *testing.T) {
	fresh := render(t, NewSession(cfg()).Fig12)

	s := NewSession(cfg())
	if _, err := s.CompareZoo(); err != nil {
		t.Fatal(err)
	}
	reused := render(t, s.Fig12)
	if fresh != reused {
		t.Errorf("Fig12 with cached zoo comparison differs from fresh run:\n%s\nvs\n%s", fresh, reused)
	}
}

// TestSessionConcurrentFigures runs several figure runners of one
// session concurrently (as a server embedding this package would) and
// checks the shared cache stays coherent. Run under -race in CI.
func TestSessionConcurrentFigures(t *testing.T) {
	s := NewSessionWithPool(cfg(), runner.New(2))
	errs := make(chan error, 3)
	go func() { _, err := s.Fig6(); errs <- err }()
	go func() { _, err := s.Fig7(); errs <- err }()
	go func() { _, err := s.Fig8(); errs <- err }()
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompareMatchesEvaluatorCompare checks the parallel package-level
// Compare and the serial Evaluator.Compare agree result for result.
func TestCompareMatchesEvaluatorCompare(t *testing.T) {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	par, err := hypar.Compare(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	ser, err := hypar.NewEvaluator().Compare(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range hypar.Strategies {
		if par.Results[st].Stats.StepSeconds != ser.Results[st].Stats.StepSeconds {
			t.Errorf("%v: parallel step %g != serial %g", st,
				par.Results[st].Stats.StepSeconds, ser.Results[st].Stats.StepSeconds)
		}
		if par.Results[st].Stats.EnergyTotal() != ser.Results[st].Stats.EnergyTotal() {
			t.Errorf("%v: energy differs", st)
		}
	}
}

package experiments

import (
	"sync/atomic"

	hypar "repro"
	"repro/internal/lru"
	"repro/internal/nn"
	"repro/internal/runner"
)

// SessionCache is a bounded LRU of Sessions keyed by their (canonical,
// comparable) configuration. A Session amortizes real work — zoo
// pinning (shape inference memoizes per model instance) and the cached
// zoo-wide strategy comparison — so a server that builds a throwaway
// Session per request leaks exactly the work a Session exists to
// reuse. The cache hands every caller asking for the same config the
// same Session instance; Sessions are safe for concurrent use, so no
// further coordination is needed. Methods are safe for concurrent use.
type SessionCache struct {
	c       *lru.Cache[hypar.Config, *Session]
	pool    *runner.Pool
	onBuild func(hypar.Config)
	builds  atomic.Int64
}

// NewSessionCache builds a cache bounded to max sessions, each created
// on the given pool (nil = runner.Default). max <= 0 disables reuse:
// every Get builds a fresh Session, the pre-cache behavior.
//
// Evicting a session also drops the shape-cache entries of every model
// the session pinned: each session pins its own zoo instances, and the
// nn shape cache memoizes per instance, so a retired session's entries
// are dead weight the moment the last reference goes — previously they
// lingered until the global cache aged them out, inflating it by one
// zoo per evicted config.
func NewSessionCache(max int, pool *runner.Pool) *SessionCache {
	if pool == nil {
		pool = runner.Default()
	}
	c := &SessionCache{c: lru.New[hypar.Config, *Session](max), pool: pool}
	c.c.SetOnEvict(func(_ hypar.Config, s *Session) {
		for _, m := range s.PinnedModels() {
			nn.DropCachedShapes(m)
		}
	})
	return c
}

// SetOnBuild installs a hook invoked once per Session actually
// constructed — after cache lookup, so tests can prove N requests at
// one config build exactly one Session. Install before the cache is
// shared across goroutines.
func (c *SessionCache) SetOnBuild(fn func(hypar.Config)) { c.onBuild = fn }

// Get returns the cached Session for cfg, building (and caching) it on
// a miss and evicting the least recently used session beyond the
// bound. The config should already be canonical — Get keys on the
// struct value it is given. Building a Session is cheap (the zoo
// comparison inside it is lazy), so the build runs under the cache
// lock, which makes "one session per config" exact under concurrent
// misses.
func (c *SessionCache) Get(cfg hypar.Config) *Session {
	s, _ := c.c.GetOrAdd(cfg, func() *Session {
		c.builds.Add(1)
		if c.onBuild != nil {
			c.onBuild(cfg)
		}
		return NewSessionWithPool(cfg, c.pool)
	})
	return s
}

// Len returns the number of cached sessions.
func (c *SessionCache) Len() int { return c.c.Len() }

// Builds returns how many Sessions have been constructed (cache
// misses) over the cache's lifetime.
func (c *SessionCache) Builds() int64 { return c.builds.Load() }

// Package experiments regenerates every table and figure of the HyPar
// paper's evaluation (§6): the optimized parallelism maps (Fig. 5), the
// performance / energy / communication comparisons against the default
// Data and Model Parallelism (Figs. 6-8), the parallelism-space
// explorations (Figs. 9-10), the scalability study (Fig. 11), the
// H-tree vs torus comparison (Fig. 12) and the comparison against "one
// weird trick" (Fig. 13), plus the ablations DESIGN.md calls out.
//
// Every runner returns report tables whose rows correspond to the
// series the paper plots, so cmd/hypar and the benchmark harness print
// directly comparable output.
package experiments

import (
	"errors"
	"fmt"
	"math"

	hypar "repro"
	"repro/internal/report"
)

// ErrExperiment reports a failed experiment precondition.
var ErrExperiment = errors.New("experiments: failed")

// geomean returns the geometric mean of strictly positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// compareZoo runs all strategies over the ten zoo networks once and
// caches nothing: each figure runner is self-contained.
func compareZoo(cfg hypar.Config) ([]*hypar.Comparison, error) {
	zoo := hypar.Zoo()
	out := make([]*hypar.Comparison, 0, len(zoo))
	for _, m := range zoo {
		cmp, err := hypar.Compare(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrExperiment, m.Name, err)
		}
		out = append(out, cmp)
	}
	return out, nil
}

// Fig5 reports the optimized parallelism for every weighted layer of
// the ten networks at each hierarchy level (paper Figure 5): one row
// per layer, one 0/1 column per level (0 = dp, 1 = mp).
func Fig5(cfg hypar.Config) (*report.Table, error) {
	t := report.NewTable("Figure 5: optimized parallelism per layer and hierarchy level (0=dp, 1=mp)",
		"model", "layer", "H1..H4")
	for _, m := range hypar.Zoo() {
		plan, err := hypar.NewPlan(m, hypar.HyPar, cfg)
		if err != nil {
			return nil, err
		}
		for l, layer := range m.Layers {
			if err := t.AddRow(m.Name, layer.Name, plan.LayerString(l)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Fig6 reports training-step performance of Model Parallelism, Data
// Parallelism and HyPar normalized to Data Parallelism (paper Figure 6),
// with the geometric mean over the ten networks.
func Fig6(cfg hypar.Config) (*report.Table, error) {
	cmps, err := compareZoo(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 6: performance normalized to Data Parallelism",
		"model", "ModelParallelism", "DataParallelism", "HyPar")
	var mps, hps []float64
	for _, c := range cmps {
		mp := c.PerformanceGain(hypar.ModelParallel)
		hp := c.PerformanceGain(hypar.HyPar)
		mps = append(mps, mp)
		hps = append(hps, hp)
		if err := t.AddRow(c.Model, mp, 1.0, hp); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(mps), 1.0, geomean(hps)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig7 reports energy efficiency normalized to Data Parallelism (paper
// Figure 7).
func Fig7(cfg hypar.Config) (*report.Table, error) {
	cmps, err := compareZoo(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 7: energy efficiency normalized to Data Parallelism",
		"model", "ModelParallelism", "DataParallelism", "HyPar")
	var mps, hps []float64
	for _, c := range cmps {
		mp := c.EnergyEfficiency(hypar.ModelParallel)
		hp := c.EnergyEfficiency(hypar.HyPar)
		mps = append(mps, mp)
		hps = append(hps, hp)
		if err := t.AddRow(c.Model, mp, 1.0, hp); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(mps), 1.0, geomean(hps)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig8 reports the total communication per training step in decimal GB
// (paper Figure 8).
func Fig8(cfg hypar.Config) (*report.Table, error) {
	cmps, err := compareZoo(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 8: total communication per step (GB)",
		"model", "ModelParallelism", "DataParallelism", "HyPar")
	var mps, dps, hps []float64
	for _, c := range cmps {
		mp := c.Results[hypar.ModelParallel].Stats.CommBytes / 1e9
		dp := c.Results[hypar.DataParallel].Stats.CommBytes / 1e9
		hp := c.Results[hypar.HyPar].Stats.CommBytes / 1e9
		mps = append(mps, mp)
		dps = append(dps, dp)
		hps = append(hps, hp)
		if err := t.AddRow(c.Model, mp, dp, hp); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(mps), geomean(dps), geomean(hps)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig12 compares H-tree and torus topologies across the zoo, both
// normalized to Data Parallelism on the same topology's H-tree baseline
// (paper Figure 12).
func Fig12(cfg hypar.Config) (*report.Table, error) {
	t := report.NewTable("Figure 12: HyPar performance normalized to Data Parallelism, torus vs H tree",
		"model", "Torus", "HTree")
	htCfg := cfg
	htCfg.Topology = "htree"
	toCfg := cfg
	toCfg.Topology = "torus"
	var tors, hts []float64
	for _, m := range hypar.Zoo() {
		// The paper normalizes both topologies to the H-tree DP run.
		dpHT, err := hypar.Run(m, hypar.DataParallel, htCfg)
		if err != nil {
			return nil, err
		}
		hpHT, err := hypar.Run(m, hypar.HyPar, htCfg)
		if err != nil {
			return nil, err
		}
		hpTO, err := hypar.Run(m, hypar.HyPar, toCfg)
		if err != nil {
			return nil, err
		}
		tor := dpHT.Stats.StepSeconds / hpTO.Stats.StepSeconds
		ht := dpHT.Stats.StepSeconds / hpHT.Stats.StepSeconds
		tors = append(tors, tor)
		hts = append(hts, ht)
		if err := t.AddRow(m.Name, tor, ht); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(tors), geomean(hts)); err != nil {
		return nil, err
	}
	return t, nil
}

// Package experiments regenerates every table and figure of the HyPar
// paper's evaluation (§6): the optimized parallelism maps (Fig. 5), the
// performance / energy / communication comparisons against the default
// Data and Model Parallelism (Figs. 6-8), the parallelism-space
// explorations (Figs. 9-10), the scalability study (Fig. 11), the
// H-tree vs torus comparison (Fig. 12) and the comparison against "one
// weird trick" (Fig. 13), plus the ablations DESIGN.md calls out.
//
// Every runner returns report tables whose rows correspond to the
// series the paper plots, so cmd/hypar and the benchmark harness print
// directly comparable output.
//
// A Session is the unit of caching and concurrency: it pins the model
// zoo once (so shape inference memoizes across figures), computes the
// zoo-wide strategy comparison once and shares it across Fig5-8 and
// Fig12, and fans every independent sweep out on a runner.Pool. All
// fan-outs collect results in deterministic input order, so a width-1
// session and a width-N session render byte-identical tables. The
// package-level Fig*/Ablation* functions are one-shot conveniences
// that each build a fresh session on the default pool.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"sync"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// ErrExperiment reports a failed experiment precondition.
var ErrExperiment = errors.New("experiments: failed")

// geomean returns the geometric mean of strictly positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// Session shares evaluation work between figure runners: the pinned
// model zoo, the once-computed zoo comparison, and the worker pool all
// fan-outs run on. Methods are safe for concurrent use.
type Session struct {
	cfg  hypar.Config
	pool *runner.Pool

	// pinMu guards the pinned model slices only. It is separate from mu
	// because mu is held across whole comparison fan-outs (CompareZoo),
	// and the session cache's eviction hook reads the pinned models from
	// unrelated requests' goroutines — those must never wait on another
	// request's compute.
	pinMu    sync.Mutex
	zoo      []*hypar.Model
	branched []*hypar.Model

	mu   sync.Mutex
	cmps []*hypar.Comparison

	// warmMu guards warm, the per-model warm-start hints: the last HyPar
	// plan the session computed for each model name. Explorations and
	// repeated sweeps hand the previous plan back to the planner, which
	// re-relaxes only the hierarchy levels whose inputs changed (zero
	// levels when only simulation-side knobs like bandwidth moved).
	warmMu sync.Mutex
	warm   map[string]*hypar.Plan
}

// NewSession creates a session on the default runner pool.
func NewSession(cfg hypar.Config) *Session { return NewSessionWithPool(cfg, runner.Default()) }

// NewSessionWithPool creates a session on an explicit pool (width 1 is
// the serial reference path).
func NewSessionWithPool(cfg hypar.Config, pool *runner.Pool) *Session {
	return &Session{cfg: cfg, pool: pool, warm: make(map[string]*hypar.Plan)}
}

// warmPlan returns the session's warm-start hint for the named model,
// or nil when the session has not planned it yet. The hint is only a
// hint: the planner fingerprints each level's inputs and ignores levels
// that do not match, so a stale plan can never change a result.
func (s *Session) warmPlan(name string) *hypar.Plan {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	return s.warm[name]
}

// storeWarm records the latest HyPar plan for the named model as the
// warm-start hint for subsequent sweeps.
func (s *Session) storeWarm(name string, p *hypar.Plan) {
	if p == nil {
		return
	}
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	s.warm[name] = p
}

// Config returns the session's base configuration.
func (s *Session) Config() hypar.Config { return s.cfg }

// Pool returns the session's worker pool.
func (s *Session) Pool() *runner.Pool { return s.pool }

// Zoo returns the session's pinned zoo models. Pinning matters: shape
// inference memoizes per model instance, so every figure that walks
// s.Zoo() shares one inference per (model, batch).
func (s *Session) Zoo() []*hypar.Model {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	if s.zoo == nil {
		s.zoo = hypar.Zoo()
	}
	return s.zoo
}

// Branched returns the session's pinned branched (DAG) workload
// networks, pinned on first use for the same shape-inference sharing
// as Zoo.
func (s *Session) Branched() []*hypar.Model {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	if s.branched == nil {
		s.branched = hypar.BranchedZoo()
	}
	return s.branched
}

// PinnedModels returns every model instance the session has pinned so
// far — zoo and branched — without forcing either set to build. The
// session cache uses it to release a retired session's shape-cache
// entries; it never blocks on in-flight comparison work.
func (s *Session) PinnedModels() []*hypar.Model {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	out := make([]*hypar.Model, 0, len(s.zoo)+len(s.branched))
	out = append(out, s.zoo...)
	return append(out, s.branched...)
}

// CompareZoo runs all strategies over the ten zoo networks, fanning the
// model × strategy product out on the pool, and caches the result for
// the session: Fig6, Fig7, Fig8 and (on the H-tree) Fig12 all read the
// same evaluation.
func (s *Session) CompareZoo() ([]*hypar.Comparison, error) {
	zoo := s.Zoo()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cmps != nil {
		return s.cmps, nil
	}
	type cell struct {
		model    *hypar.Model
		strategy hypar.Strategy
	}
	cells := make([]cell, 0, len(zoo)*len(hypar.Strategies))
	for _, m := range zoo {
		for _, st := range hypar.Strategies {
			cells = append(cells, cell{model: m, strategy: st})
		}
	}
	results, err := runner.MapWith(s.pool, cells, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, c cell) (*hypar.Result, error) {
			r, err := ev.Run(c.model, c.strategy, s.cfg)
			if err != nil {
				return nil, fmt.Errorf("%w: %s/%v: %v", ErrExperiment, c.model.Name, c.strategy, err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	cmps := make([]*hypar.Comparison, len(zoo))
	for i, m := range zoo {
		cmp := &hypar.Comparison{Model: m.Name, Results: make(map[hypar.Strategy]*hypar.Result, len(hypar.Strategies))}
		for j, st := range hypar.Strategies {
			cmp.Results[st] = results[i*len(hypar.Strategies)+j]
		}
		cmps[i] = cmp
	}
	s.cmps = cmps
	return cmps, nil
}

// peekCompareZoo returns the cached zoo comparison without computing
// it, so opportunistic reusers (Fig12) do not force the full fan-out.
func (s *Session) peekCompareZoo() []*hypar.Comparison {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cmps
}

// Fig5 reports the optimized parallelism for every weighted layer of
// the ten networks at each hierarchy level (paper Figure 5): one row
// per layer, one 0/1 column per level (0 = dp, 1 = mp).
func (s *Session) Fig5() (*report.Table, error) {
	zoo := s.Zoo()
	plans, err := runner.Map(s.pool, zoo, func(_ int, m *hypar.Model) (*hypar.Plan, error) {
		return hypar.NewPlan(m, hypar.HyPar, s.cfg)
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 5: optimized parallelism per layer and hierarchy level (0=dp, 1=mp)",
		"model", "layer", "H1..H4")
	for i, m := range zoo {
		for l, layer := range m.Layers {
			if err := t.AddRow(m.Name, layer.Name, plans[i].LayerString(l)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Fig6 reports training-step performance of Model Parallelism, Data
// Parallelism and HyPar normalized to Data Parallelism (paper Figure 6),
// with the geometric mean over the ten networks.
func (s *Session) Fig6() (*report.Table, error) {
	cmps, err := s.CompareZoo()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 6: performance normalized to Data Parallelism",
		"model", "ModelParallelism", "DataParallelism", "HyPar")
	var mps, hps []float64
	for _, c := range cmps {
		mp := c.PerformanceGain(hypar.ModelParallel)
		hp := c.PerformanceGain(hypar.HyPar)
		mps = append(mps, mp)
		hps = append(hps, hp)
		if err := t.AddRow(c.Model, mp, 1.0, hp); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(mps), 1.0, geomean(hps)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig7 reports energy efficiency normalized to Data Parallelism (paper
// Figure 7).
func (s *Session) Fig7() (*report.Table, error) {
	cmps, err := s.CompareZoo()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 7: energy efficiency normalized to Data Parallelism",
		"model", "ModelParallelism", "DataParallelism", "HyPar")
	var mps, hps []float64
	for _, c := range cmps {
		mp := c.EnergyEfficiency(hypar.ModelParallel)
		hp := c.EnergyEfficiency(hypar.HyPar)
		mps = append(mps, mp)
		hps = append(hps, hp)
		if err := t.AddRow(c.Model, mp, 1.0, hp); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(mps), 1.0, geomean(hps)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig8 reports the total communication per training step in decimal GB
// (paper Figure 8).
func (s *Session) Fig8() (*report.Table, error) {
	cmps, err := s.CompareZoo()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 8: total communication per step (GB)",
		"model", "ModelParallelism", "DataParallelism", "HyPar")
	var mps, dps, hps []float64
	for _, c := range cmps {
		mp := c.Results[hypar.ModelParallel].Stats.CommBytes / 1e9
		dp := c.Results[hypar.DataParallel].Stats.CommBytes / 1e9
		hp := c.Results[hypar.HyPar].Stats.CommBytes / 1e9
		mps = append(mps, mp)
		dps = append(dps, dp)
		hps = append(hps, hp)
		if err := t.AddRow(c.Model, mp, dp, hp); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(mps), geomean(dps), geomean(hps)); err != nil {
		return nil, err
	}
	return t, nil
}

// fig12Row is one model's pair of normalized gains.
type fig12Row struct {
	torus float64
	htree float64
}

// Fig12 compares H-tree and torus topologies across the zoo, both
// normalized to the H-tree Data Parallelism baseline (paper Figure 12).
// When the session's zoo comparison is already cached and the base
// topology is the H-tree, the baseline and H-tree runs are reused from
// it and only the torus runs are simulated.
func (s *Session) Fig12() (*report.Table, error) {
	t := report.NewTable("Figure 12: HyPar performance normalized to Data Parallelism, torus vs H tree",
		"model", "Torus", "HTree")
	htCfg := s.cfg
	htCfg.Topology = "htree"
	toCfg := s.cfg
	toCfg.Topology = "torus"
	var cached []*hypar.Comparison
	if htCfg.Canonical() == s.cfg.Canonical() {
		cached = s.peekCompareZoo()
	}
	zoo := s.Zoo()
	rows, err := runner.MapWith(s.pool, zoo, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, i int, m *hypar.Model) (fig12Row, error) {
			var dpHTs, hpHTs float64
			if cached != nil {
				dpHTs = cached[i].Results[hypar.DataParallel].Stats.StepSeconds
				hpHTs = cached[i].Results[hypar.HyPar].Stats.StepSeconds
			} else {
				dpHT, err := ev.Run(m, hypar.DataParallel, htCfg)
				if err != nil {
					return fig12Row{}, err
				}
				hpHT, err := ev.Run(m, hypar.HyPar, htCfg)
				if err != nil {
					return fig12Row{}, err
				}
				dpHTs, hpHTs = dpHT.Stats.StepSeconds, hpHT.Stats.StepSeconds
			}
			hpTO, err := ev.Run(m, hypar.HyPar, toCfg)
			if err != nil {
				return fig12Row{}, err
			}
			return fig12Row{torus: dpHTs / hpTO.Stats.StepSeconds, htree: dpHTs / hpHTs}, nil
		})
	if err != nil {
		return nil, err
	}
	var tors, hts []float64
	for i, m := range zoo {
		tors = append(tors, rows[i].torus)
		hts = append(hts, rows[i].htree)
		if err := t.AddRow(m.Name, rows[i].torus, rows[i].htree); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(tors), geomean(hts)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig5 is the one-shot form of Session.Fig5.
func Fig5(cfg hypar.Config) (*report.Table, error) { return NewSession(cfg).Fig5() }

// Fig6 is the one-shot form of Session.Fig6.
func Fig6(cfg hypar.Config) (*report.Table, error) { return NewSession(cfg).Fig6() }

// Fig7 is the one-shot form of Session.Fig7.
func Fig7(cfg hypar.Config) (*report.Table, error) { return NewSession(cfg).Fig7() }

// Fig8 is the one-shot form of Session.Fig8.
func Fig8(cfg hypar.Config) (*report.Table, error) { return NewSession(cfg).Fig8() }

// Fig12 is the one-shot form of Session.Fig12.
func Fig12(cfg hypar.Config) (*report.Table, error) { return NewSession(cfg).Fig12() }

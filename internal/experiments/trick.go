package experiments

import (
	"fmt"

	hypar "repro"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/runner"
)

// trickCase is one bar of the paper's Figure 13.
type trickCase struct {
	name   string
	model  *hypar.Model
	batch  int
	levels int
}

// fig13Cases builds the six configurations of the paper: the conv5 and
// fc3 layers of VGG-E, at the throughput-oriented batch 4096 (fc3) and
// the generalization-oriented batch 32 (conv5), under hierarchy depths
// two, three and four (§6.5.2).
func fig13Cases() []trickCase {
	conv5 := func() *hypar.Model {
		return &hypar.Model{
			Name:  "VGGE-conv5",
			Input: nn.Input{H: 14, W: 14, C: 512},
			Layers: []hypar.Layer{
				{Name: "conv5", Type: nn.Conv, K: 3, Pad: 1, Cout: 512, Act: nn.ReLU},
			},
		}
	}
	fc3 := func() *hypar.Model {
		return &hypar.Model{
			Name:  "VGGE-fc3",
			Input: nn.Input{H: 1, W: 1, C: 4096},
			Layers: []hypar.Layer{
				{Name: "fc3", Type: nn.FC, Cout: 1000, Act: nn.Softmax},
			},
		}
	}
	var cases []trickCase
	for _, h := range []int{2, 3, 4} {
		cases = append(cases, trickCase{
			name: fmt.Sprintf("conv5-b32-h%d", h), model: conv5(), batch: 32, levels: h,
		})
	}
	for _, h := range []int{2, 3, 4} {
		cases = append(cases, trickCase{
			name: fmt.Sprintf("fc3-b4096-h%d", h), model: fc3(), batch: 4096, levels: h,
		})
	}
	return cases
}

// fig13Row is one case's pair of normalized metrics.
type fig13Row struct {
	perf float64
	eff  float64
}

// Fig13 compares HyPar against Krizhevsky's "one weird trick" (paper
// Figure 13): performance and energy efficiency of HyPar normalized to
// the trick for each case, with geometric means. The six cases fan out
// on the session pool.
func (s *Session) Fig13() (*report.Table, error) {
	cases := fig13Cases()
	rows, err := runner.MapWith(s.pool, cases, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, tc trickCase) (fig13Row, error) {
			c := s.cfg
			c.Batch = tc.batch
			c.Levels = tc.levels
			trick, err := ev.Run(tc.model, hypar.OneWeirdTrick, c)
			if err != nil {
				return fig13Row{}, fmt.Errorf("%w: %s trick: %v", ErrExperiment, tc.name, err)
			}
			hp, err := ev.Run(tc.model, hypar.HyPar, c)
			if err != nil {
				return fig13Row{}, fmt.Errorf("%w: %s hypar: %v", ErrExperiment, tc.name, err)
			}
			return fig13Row{
				perf: trick.Stats.StepSeconds / hp.Stats.StepSeconds,
				eff:  trick.Stats.EnergyTotal() / hp.Stats.EnergyTotal(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 13: HyPar vs one weird trick (normalized to the trick)",
		"case", "performance", "energy-efficiency")
	var perfs, effs []float64
	for i, tc := range cases {
		perfs = append(perfs, rows[i].perf)
		effs = append(effs, rows[i].eff)
		if err := t.AddRow(tc.name, rows[i].perf, rows[i].eff); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(perfs), geomean(effs)); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig13 is the one-shot form of Session.Fig13.
func Fig13(cfg hypar.Config) (*report.Table, error) { return NewSession(cfg).Fig13() }

package experiments

import (
	"fmt"

	hypar "repro"
	"repro/internal/nn"
	"repro/internal/report"
)

// trickCase is one bar of the paper's Figure 13.
type trickCase struct {
	name   string
	model  *hypar.Model
	batch  int
	levels int
}

// fig13Cases builds the six configurations of the paper: the conv5 and
// fc3 layers of VGG-E, at the throughput-oriented batch 4096 (fc3) and
// the generalization-oriented batch 32 (conv5), under hierarchy depths
// two, three and four (§6.5.2).
func fig13Cases() []trickCase {
	conv5 := func() *hypar.Model {
		return &hypar.Model{
			Name:  "VGGE-conv5",
			Input: nn.Input{H: 14, W: 14, C: 512},
			Layers: []hypar.Layer{
				{Name: "conv5", Type: nn.Conv, K: 3, Pad: 1, Cout: 512, Act: nn.ReLU},
			},
		}
	}
	fc3 := func() *hypar.Model {
		return &hypar.Model{
			Name:  "VGGE-fc3",
			Input: nn.Input{H: 1, W: 1, C: 4096},
			Layers: []hypar.Layer{
				{Name: "fc3", Type: nn.FC, Cout: 1000, Act: nn.Softmax},
			},
		}
	}
	var cases []trickCase
	for _, h := range []int{2, 3, 4} {
		cases = append(cases, trickCase{
			name: fmt.Sprintf("conv5-b32-h%d", h), model: conv5(), batch: 32, levels: h,
		})
	}
	for _, h := range []int{2, 3, 4} {
		cases = append(cases, trickCase{
			name: fmt.Sprintf("fc3-b4096-h%d", h), model: fc3(), batch: 4096, levels: h,
		})
	}
	return cases
}

// Fig13 compares HyPar against Krizhevsky's "one weird trick" (paper
// Figure 13): performance and energy efficiency of HyPar normalized to
// the trick for each case, with geometric means.
func Fig13(cfg hypar.Config) (*report.Table, error) {
	t := report.NewTable("Figure 13: HyPar vs one weird trick (normalized to the trick)",
		"case", "performance", "energy-efficiency")
	var perfs, effs []float64
	for _, tc := range fig13Cases() {
		c := cfg
		c.Batch = tc.batch
		c.Levels = tc.levels
		trick, err := hypar.Run(tc.model, hypar.OneWeirdTrick, c)
		if err != nil {
			return nil, fmt.Errorf("%w: %s trick: %v", ErrExperiment, tc.name, err)
		}
		hp, err := hypar.Run(tc.model, hypar.HyPar, c)
		if err != nil {
			return nil, fmt.Errorf("%w: %s hypar: %v", ErrExperiment, tc.name, err)
		}
		perf := trick.Stats.StepSeconds / hp.Stats.StepSeconds
		eff := trick.Stats.EnergyTotal() / hp.Stats.EnergyTotal()
		perfs = append(perfs, perf)
		effs = append(effs, eff)
		if err := t.AddRow(tc.name, perf, eff); err != nil {
			return nil, err
		}
	}
	if err := t.AddRow("Gmean", geomean(perfs), geomean(effs)); err != nil {
		return nil, err
	}
	return t, nil
}

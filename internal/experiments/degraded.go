package experiments

import (
	"fmt"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// degradedFaults is the fixed fault scenario the table studies: two of
// the four level-1 groups lost, which halves the array (a level-1 group
// holds a quarter of the accelerators). It is the paper hierarchy's
// worst single-level fault that still leaves a power-of-two sub-array
// deeper than one accelerator at the default depth.
var degradedFaults = hypar.Faults{Level: 1, Groups: 2}

// degradedRow is one model's degraded-side evaluation.
type degradedRow struct {
	hp *hypar.Result
	dp *hypar.Result
}

// DegradedTable reports how the zoo trains after the fixed fault
// scenario knocks out part of the array: per model, the healthy and
// degraded HyPar step times, the slowdown between them (how much the
// fault costs once HyPar replans over the surviving sub-array), HyPar's
// remaining gain over Data Parallelism on the degraded array, and the
// degraded plan's mp share and sink-layer choices. The healthy side
// reuses the session's zoo comparison; the degraded side evaluates
// HyPar and Data Parallelism at the same config with the fault spec
// applied. Rows are golden-pinned, so replanning drift cannot pass
// silently.
func (s *Session) DegradedTable() (*report.Table, error) {
	cfg := s.cfg.Canonical()
	if cfg.Levels < 2 {
		return nil, fmt.Errorf("%w: degraded table needs levels >= 2 (got %d)", ErrExperiment, cfg.Levels)
	}
	dcfg := cfg
	dcfg.Faults = degradedFaults
	if err := dcfg.Validate(); err != nil {
		return nil, fmt.Errorf("%w: degraded config: %v", ErrExperiment, err)
	}

	cmps, err := s.CompareZoo()
	if err != nil {
		return nil, err
	}
	zoo := s.Zoo()
	rows, err := runner.MapWith(s.pool, zoo, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, m *hypar.Model) (degradedRow, error) {
			hp, err := ev.Run(m, hypar.HyPar, dcfg)
			if err != nil {
				return degradedRow{}, fmt.Errorf("%w: %s: %v", ErrExperiment, m.Name, err)
			}
			dp, err := ev.Run(m, hypar.DataParallel, dcfg)
			if err != nil {
				return degradedRow{}, fmt.Errorf("%w: %s: %v", ErrExperiment, m.Name, err)
			}
			return degradedRow{hp: hp, dp: dp}, nil
		})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(fmt.Sprintf(
		"Degraded array: HyPar replanned after fault %v (%d of %d accelerators survive)",
		degradedFaults, dcfg.SurvivingAccelerators(), 1<<uint(dcfg.Levels)),
		"model", "healthy-step-s", "degraded-step-s", "slowdown", "degraded-gain", "mp-share", "sink-layer")
	for i, m := range zoo {
		healthy := cmps[i].Results[hypar.HyPar]
		row := rows[i]
		slowdown := 0.0
		if healthy.Stats.StepSeconds > 0 {
			slowdown = row.hp.Stats.StepSeconds / healthy.Stats.StepSeconds
		}
		gain := 0.0
		if row.hp.Stats.StepSeconds > 0 {
			gain = row.dp.Stats.StepSeconds / row.hp.Stats.StepSeconds
		}
		if err := t.AddRow(m.Name,
			healthy.Stats.StepSeconds,
			row.hp.Stats.StepSeconds,
			slowdown,
			gain,
			mpShare(row.hp.Plan),
			row.hp.Plan.LayerString(len(m.Layers)-1),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// DegradedTable is the one-shot form of Session.DegradedTable.
func DegradedTable(cfg hypar.Config) (*report.Table, error) {
	return NewSession(cfg).DegradedTable()
}

package experiments

import (
	"fmt"

	hypar "repro"
	"repro/internal/report"
	"repro/internal/runner"
)

// degradedScenarios are the fault specs the table studies, one block of
// rows each. 1:2 loses two of the four level-1 groups — the array
// halves, survivors stay a power of two, replanning is a pure aligned
// snap to the 8-accelerator sub-array. 1:1 loses a single level-1
// group: 12 of 16 accelerators survive, the aligned snap would strand
// a third of them, and the evaluator's grouped candidate (three 4-wide
// groups running batch shards with a cross-group gradient allreduce)
// gets to show what the non-power-of-two survivor set is worth.
var degradedScenarios = []hypar.Faults{
	{Level: 1, Groups: 2},
	{Level: 1, Groups: 1},
}

// degradedRow is one (fault, model) degraded-side evaluation.
type degradedRow struct {
	hp *hypar.Result
	dp *hypar.Result
}

// degradedUnit names one (fault, model) cell of the fan-out.
type degradedUnit struct {
	faults hypar.Faults
	model  *hypar.Model
}

// DegradedTable reports how the zoo trains after each studied fault
// scenario knocks out part of the array: per fault and model, the
// healthy and degraded HyPar step times, the slowdown between them
// (how much the fault costs once HyPar replans over the survivors),
// HyPar's remaining gain over Data Parallelism on the degraded array,
// the accelerators the replanned step actually uses (groups × group
// width when the grouped non-power-of-two candidate wins, the aligned
// sub-array size otherwise), and the degraded plan's mp share and
// sink-layer choices. The healthy side reuses the session's zoo
// comparison; the degraded side evaluates HyPar and Data Parallelism
// at the same config with the fault spec applied. Rows are
// golden-pinned, so replanning drift cannot pass silently.
func (s *Session) DegradedTable() (*report.Table, error) {
	cfg := s.cfg.Canonical()
	if cfg.Levels < 2 {
		return nil, fmt.Errorf("%w: degraded table needs levels >= 2 (got %d)", ErrExperiment, cfg.Levels)
	}

	zoo := s.Zoo()
	units := make([]degradedUnit, 0, len(degradedScenarios)*len(zoo))
	for _, f := range degradedScenarios {
		dcfg := cfg
		dcfg.Faults = f
		if err := dcfg.Validate(); err != nil {
			return nil, fmt.Errorf("%w: degraded config %v: %v", ErrExperiment, f, err)
		}
		for _, m := range zoo {
			units = append(units, degradedUnit{faults: f, model: m})
		}
	}

	cmps, err := s.CompareZoo()
	if err != nil {
		return nil, err
	}
	rows, err := runner.MapWith(s.pool, units, hypar.NewEvaluator,
		func(ev *hypar.Evaluator, _ int, u degradedUnit) (degradedRow, error) {
			dcfg := cfg
			dcfg.Faults = u.faults
			hp, err := ev.Run(u.model, hypar.HyPar, dcfg)
			if err != nil {
				return degradedRow{}, fmt.Errorf("%w: %v %s: %v", ErrExperiment, u.faults, u.model.Name, err)
			}
			dp, err := ev.Run(u.model, hypar.DataParallel, dcfg)
			if err != nil {
				return degradedRow{}, fmt.Errorf("%w: %v %s: %v", ErrExperiment, u.faults, u.model.Name, err)
			}
			return degradedRow{hp: hp, dp: dp}, nil
		})
	if err != nil {
		return nil, err
	}

	t := report.NewTable(fmt.Sprintf(
		"Degraded array: HyPar replanned per fault spec (%d-accelerator array)", 1<<uint(cfg.Levels)),
		"fault", "model", "healthy-step-s", "degraded-step-s", "slowdown", "degraded-gain", "used-accels", "mp-share", "sink-layer")
	for i, u := range units {
		healthy := cmps[i%len(zoo)].Results[hypar.HyPar]
		row := rows[i]
		slowdown := 0.0
		if healthy.Stats.StepSeconds > 0 {
			slowdown = row.hp.Stats.StepSeconds / healthy.Stats.StepSeconds
		}
		gain := 0.0
		if row.hp.Stats.StepSeconds > 0 {
			gain = row.dp.Stats.StepSeconds / row.hp.Stats.StepSeconds
		}
		used := row.hp.Plan.NumAccelerators()
		if row.hp.DegradedGroups > 0 {
			used *= row.hp.DegradedGroups
		}
		if err := t.AddRow(
			u.faults.String(),
			u.model.Name,
			healthy.Stats.StepSeconds,
			row.hp.Stats.StepSeconds,
			slowdown,
			gain,
			used,
			mpShare(row.hp.Plan),
			row.hp.Plan.LayerString(len(u.model.Layers)-1),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// DegradedTable is the one-shot form of Session.DegradedTable.
func DegradedTable(cfg hypar.Config) (*report.Table, error) {
	return NewSession(cfg).DegradedTable()
}

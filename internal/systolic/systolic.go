// Package systolic models a TPU-like weight-stationary systolic array
// for the platform-parameterized evaluation: a single large matrix
// unit in the style of the TPU's MXU, fed from a unified on-chip
// buffer over HBM.
//
// In the weight-stationary dataflow the kernel is pre-loaded into the
// array — the contraction dimension (Cin·K·K for conv-as-GEMM, Cin for
// fc) maps onto array rows and the output channels/neurons onto array
// columns — and activations stream through while partial sums
// accumulate in-array. Utilization therefore comes from two effects:
// the ceiling losses of tiling the (contraction × output) matrix onto
// the physical array, and the pipeline fill/drain bubbles that matter
// when the streamed batch·spatial extent is short relative to the
// array's depth.
//
// Default parameters (documented sources):
//
//   - 128×128 MACs at 700 MHz — the published TPU MXU geometry and
//     clock (Jouppi et al., ISCA 2017); peak is 2·128²·700e6 ≈ 22.9
//     TOPS.
//   - 24 MB unified buffer, matching the same reference.
package systolic

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
)

// ErrConfig reports an invalid systolic-array configuration.
var ErrConfig = errors.New("systolic: invalid config")

// Config describes one weight-stationary systolic compute node.
type Config struct {
	Rows       int     // array height: contraction dimension (128)
	Cols       int     // array width: output dimension (128)
	ClockMHz   float64 // array clock (700 MHz)
	BufferKB   float64 // unified on-chip buffer (24576 KB = 24 MB)
	MinUtil    float64 // utilization floor for degenerate mappings
	ElemsBytes float64 // element width in bytes (4 for float32)
}

// Default returns the TPU-class evaluation configuration.
func Default() Config {
	return Config{
		Rows:       128,
		Cols:       128,
		ClockMHz:   700,
		BufferKB:   24576,
		MinUtil:    0.05,
		ElemsBytes: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("%w: array %dx%d", ErrConfig, c.Rows, c.Cols)
	}
	if c.ClockMHz <= 0 || c.BufferKB <= 0 {
		return fmt.Errorf("%w: clock=%g MHz buffer=%g KB", ErrConfig, c.ClockMHz, c.BufferKB)
	}
	if c.MinUtil <= 0 || c.MinUtil > 1 {
		return fmt.Errorf("%w: MinUtil=%g", ErrConfig, c.MinUtil)
	}
	if c.ElemsBytes <= 0 {
		return fmt.Errorf("%w: ElemsBytes=%g", ErrConfig, c.ElemsBytes)
	}
	return nil
}

// GOPS returns the peak throughput in operations/s (2 ops per MAC per
// cycle across the array).
func (c Config) GOPS() float64 {
	return 2 * float64(c.Rows) * float64(c.Cols) * c.ClockMHz * 1e6
}

// Utilization estimates the fraction of the array a layer keeps busy
// under weight-stationary mapping: tiling ceilings of the contraction ×
// output matrix onto Rows×Cols, times the pipeline fill efficiency of
// the streamed activation extent.
func (c Config) Utilization(s nn.LayerShapes) float64 {
	// Contraction rows and output columns of the layer-as-GEMM.
	contract := float64(s.Kernel.Cin) * float64(s.Kernel.K) * float64(s.Kernel.K)
	out := float64(s.Kernel.Cout)

	rows, cols := float64(c.Rows), float64(c.Cols)
	rTiles := math.Ceil(contract / rows)
	cTiles := math.Ceil(out / cols)
	tiling := (contract / (rTiles * rows)) * (out / (cTiles * cols))

	// Streamed extent: one activation column per output position per
	// sample. Short streams leave the pipeline mostly filling/draining.
	stream := float64(s.Out.B) * float64(s.Out.H) * float64(s.Out.W)
	fill := stream / (stream + rows + cols)

	return math.Max(c.MinUtil, math.Min(1, tiling*fill))
}

// ComputeTime returns the seconds one node needs to execute the given
// number of MACs for the layer (2 operations per MAC at the sustained
// rate).
func (c Config) ComputeTime(macs float64, s nn.LayerShapes) float64 {
	if macs <= 0 {
		return 0
	}
	return 2 * macs / (c.GOPS() * c.Utilization(s))
}

// DRAMTraffic returns the bytes one node moves to and from HBM for one
// phase of the layer. Weight-stationary reuse keeps the pre-loaded
// kernel tile resident while activations stream, so — like the
// row-stationary model — each operand element is charged once and each
// result element once.
func (c Config) DRAMTraffic(s nn.LayerShapes, operandBytes, resultBytes float64) float64 {
	return operandBytes + resultBytes
}

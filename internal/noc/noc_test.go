package noc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestHTreeConstruction(t *testing.T) {
	if _, err := NewHTree(-1, 1600); !errors.Is(err, ErrConfig) {
		t.Errorf("negative depth accepted: %v", err)
	}
	if _, err := NewHTree(4, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("zero bandwidth accepted: %v", err)
	}
	if _, err := NewHTree(25, 1600); !errors.Is(err, ErrConfig) {
		t.Errorf("absurd depth accepted: %v", err)
	}
	h, err := NewHTree(4, 1600)
	if err != nil {
		t.Fatalf("NewHTree: %v", err)
	}
	if h.Name() != "htree" || h.Levels() != 4 {
		t.Errorf("name=%q levels=%d", h.Name(), h.Levels())
	}
}

// TestHTreeBandwidthDoubling: paper §6.5.1 — "the bandwidth between
// groups in a higher hierarchy are doubled compared to that of a lower
// hierarchy". Leaf pairs (level H-1) get one 1600 Mb/s = 200 MB/s link.
func TestHTreeBandwidthDoubling(t *testing.T) {
	h, err := NewHTree(4, 1600)
	if err != nil {
		t.Fatalf("NewHTree: %v", err)
	}
	leaf, err := h.PairBandwidth(3)
	if err != nil {
		t.Fatalf("PairBandwidth: %v", err)
	}
	if math.Abs(leaf-200e6) > 1 {
		t.Errorf("leaf bandwidth = %g B/s, want 200e6", leaf)
	}
	for level := 2; level >= 0; level-- {
		hi, _ := h.PairBandwidth(level)
		lo, _ := h.PairBandwidth(level + 1)
		if math.Abs(hi-2*lo) > 1 {
			t.Errorf("level %d bandwidth %g != 2× level %d bandwidth %g", level, hi, level+1, lo)
		}
	}
	if _, err := h.PairBandwidth(4); !errors.Is(err, ErrConfig) {
		t.Errorf("out-of-range level accepted: %v", err)
	}
}

func TestHTreeTransferTime(t *testing.T) {
	h, _ := NewHTree(4, 1600)
	// 200 MB over the 200 MB/s leaf link takes one second.
	got, err := h.TransferTime(3, 200e6)
	if err != nil {
		t.Fatalf("TransferTime: %v", err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("leaf transfer = %g s, want 1", got)
	}
	if z, _ := h.TransferTime(0, 0); z != 0 {
		t.Errorf("zero-byte transfer = %g", z)
	}
	if _, err := h.TransferTime(9, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad level accepted: %v", err)
	}
}

func TestHTreeLinkBytes(t *testing.T) {
	h, _ := NewHTree(4, 1600)
	// Level 2 has 4 pairs, each moving its exchange over one fat edge.
	got, err := h.LinkBytes(2, 100)
	if err != nil {
		t.Fatalf("LinkBytes: %v", err)
	}
	if got != 400 {
		t.Errorf("LinkBytes(level 2, 100) = %g, want 400", got)
	}
	if _, err := h.LinkBytes(-1, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad level accepted: %v", err)
	}
}

func TestTorusConstruction(t *testing.T) {
	if _, err := NewTorus(-2, 1600); !errors.Is(err, ErrConfig) {
		t.Errorf("negative depth accepted: %v", err)
	}
	if _, err := NewTorus(4, -5); !errors.Is(err, ErrConfig) {
		t.Errorf("negative bandwidth accepted: %v", err)
	}
	tor, err := NewTorus(4, 1600)
	if err != nil {
		t.Fatalf("NewTorus: %v", err)
	}
	if tor.rows != 4 || tor.cols != 4 {
		t.Errorf("16-accelerator torus = %d×%d, want 4×4", tor.rows, tor.cols)
	}
	if tor.Name() != "torus" || tor.Levels() != 4 {
		t.Errorf("name=%q levels=%d", tor.Name(), tor.Levels())
	}
	tor6, err := NewTorus(6, 1600)
	if err != nil {
		t.Fatalf("NewTorus(6): %v", err)
	}
	if tor6.rows*tor6.cols != 64 {
		t.Errorf("64-accelerator torus = %d×%d", tor6.rows, tor6.cols)
	}
}

// TestTorusSlowerThanHTree: paper Figure 12 — with HyPar's binary
// partition pattern, the H-tree outperforms the torus at every level.
func TestTorusSlowerThanHTree(t *testing.T) {
	h, _ := NewHTree(4, 1600)
	tor, _ := NewTorus(4, 1600)
	const vol = 1e9
	for level := 0; level < 4; level++ {
		ht, err := h.TransferTime(level, vol)
		if err != nil {
			t.Fatalf("htree level %d: %v", level, err)
		}
		tt, err := tor.TransferTime(level, vol)
		if err != nil {
			t.Fatalf("torus level %d: %v", level, err)
		}
		if tt < ht {
			t.Errorf("level %d: torus %g s faster than htree %g s", level, tt, ht)
		}
	}
}

func TestTorusErrors(t *testing.T) {
	tor, _ := NewTorus(4, 1600)
	if _, err := tor.TransferTime(4, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad level accepted: %v", err)
	}
	if _, err := tor.LinkBytes(-1, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad level accepted: %v", err)
	}
	if z, err := tor.TransferTime(0, 0); err != nil || z != 0 {
		t.Errorf("zero transfer: %g, %v", z, err)
	}
}

// TestTorusLinkBytesIncludeForwarding: multi-hop routes occupy more
// link-bytes than the H-tree's single fat edge.
func TestTorusLinkBytesIncludeForwarding(t *testing.T) {
	h, _ := NewHTree(4, 1600)
	tor, _ := NewTorus(4, 1600)
	hb, _ := h.LinkBytes(0, 1e6)
	tb, err := tor.LinkBytes(0, 1e6)
	if err != nil {
		t.Fatalf("LinkBytes: %v", err)
	}
	if tb < hb {
		t.Errorf("torus link bytes %g < htree %g", tb, hb)
	}
}

func TestIdeal(t *testing.T) {
	id := NewIdeal(4)
	if id.Name() != "ideal" || id.Levels() != 4 {
		t.Errorf("name=%q levels=%d", id.Name(), id.Levels())
	}
	tt, err := id.TransferTime(2, 1e12)
	if err != nil || tt != 0 {
		t.Errorf("ideal transfer = %g, %v", tt, err)
	}
	if _, err := id.TransferTime(8, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad level accepted: %v", err)
	}
	lb, err := id.LinkBytes(1, 100)
	if err != nil || lb != 200 {
		t.Errorf("ideal LinkBytes = %g, %v; want 200", lb, err)
	}
	if _, err := id.LinkBytes(9, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("bad level accepted: %v", err)
	}
}

// Property: transfer time scales linearly with volume on every topology
// and level.
func TestTransferLinearityProperty(t *testing.T) {
	h, _ := NewHTree(4, 1600)
	tor, _ := NewTorus(4, 1600)
	topos := []Topology{h, tor}
	prop := func(ti, level uint8, vol uint32) bool {
		tp := topos[int(ti)%len(topos)]
		lv := int(level) % 4
		v := float64(vol%1e9) + 1
		t1, err1 := tp.TransferTime(lv, v)
		t2, err2 := tp.TransferTime(lv, 2*v)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(t2-2*t1) < 1e-9*math.Max(1, t2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Package noc models the interconnect of the HyPar accelerator array
// (paper §5, Figure 4c-d): the H-tree that matches the hierarchical
// partition's binary communication pattern, and the 4×4 torus the paper
// compares against (§6.5.1), plus an ideal infinite-bandwidth fabric for
// ablations.
//
// HyPar's hierarchical partition makes all communication happen between
// the two halves of some subarray: at level h (0 = top) there are 2^h
// group pairs, all exchanging the same volume concurrently. A Topology
// therefore only needs to answer: how long does it take every pair at
// level h to move an exchange of V bytes (both directions summed, the
// paper's counting convention)?
package noc

import (
	"errors"
	"fmt"
	"math"
)

// ErrConfig reports an invalid topology configuration.
var ErrConfig = errors.New("noc: invalid config")

// Topology abstracts the accelerator interconnect. Links are modeled
// half duplex: a pair exchange of V bytes (the paper's both-direction
// count, e.g. 56 KB for the §3.1 fc example) occupies the pair's
// connection for V/bandwidth seconds.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// Levels returns the hierarchy depth H the fabric was built for.
	Levels() int
	// TransferTime returns the seconds for all group pairs at hierarchy
	// level h (0 = the top-level split) to concurrently move an
	// exchange of exchBytes (both directions summed) per pair.
	TransferTime(level int, exchBytes float64) (float64, error)
	// LinkBytes returns the total bytes crossing physical links when
	// all pairs at level h move exchBytes each (including multi-hop
	// forwarding) — the quantity link energy is charged on.
	LinkBytes(level int, exchBytes float64) (float64, error)
}

// checkLevel validates a level index against a depth.
func checkLevel(level, depth int) error {
	if level < 0 || level >= depth {
		return fmt.Errorf("%w: level %d outside hierarchy of depth %d", ErrConfig, level, depth)
	}
	return nil
}

// HTree is the paper's preferred fabric: physically a fat tree with a
// switch at each parent node. The bandwidth between groups at a higher
// hierarchy level doubles relative to the level below (while the number
// of connections halves), so the per-pair bandwidth at level h of an
// H-level tree is LinkMBs · 2^(H-1-h).
type HTree struct {
	levels  int
	linkBps float64 // leaf link bandwidth, bytes/s
}

// NewHTree builds an H-tree for 2^levels accelerators with the given
// leaf-link bandwidth in megabits per second (paper: 1600 Mb/s).
func NewHTree(levels int, linkMbps float64) (*HTree, error) {
	if levels < 0 || levels > 20 {
		return nil, fmt.Errorf("%w: H-tree depth %d", ErrConfig, levels)
	}
	if linkMbps <= 0 {
		return nil, fmt.Errorf("%w: link bandwidth %g Mb/s", ErrConfig, linkMbps)
	}
	return &HTree{levels: levels, linkBps: linkMbps * 1e6 / 8}, nil
}

// Name implements Topology.
func (t *HTree) Name() string { return "htree" }

// Levels implements Topology.
func (t *HTree) Levels() int { return t.levels }

// PairBandwidth returns the bytes/s available to one group pair at the
// given level.
func (t *HTree) PairBandwidth(level int) (float64, error) {
	if err := checkLevel(level, t.levels); err != nil {
		return 0, err
	}
	return t.linkBps * math.Pow(2, float64(t.levels-1-level)), nil
}

// TransferTime implements Topology. Every pair at a level owns a
// dedicated tree edge, so pairs do not contend with each other.
func (t *HTree) TransferTime(level int, exchBytes float64) (float64, error) {
	bw, err := t.PairBandwidth(level)
	if err != nil {
		return 0, err
	}
	if exchBytes <= 0 {
		return 0, nil
	}
	return exchBytes / bw, nil
}

// LinkBytes implements Topology: each of the 2^level pairs moves
// exchBytes over exactly one (fat) edge.
func (t *HTree) LinkBytes(level int, exchBytes float64) (float64, error) {
	if err := checkLevel(level, t.levels); err != nil {
		return 0, err
	}
	pairs := math.Pow(2, float64(level))
	return pairs * exchBytes, nil
}

// Torus is the 4×4 (more generally 2^ceil(H/2) × 2^floor(H/2)) torus of
// Figure 4d. Groups of the hierarchical partition map onto contiguous
// blocks of the grid; a pair exchange at level h crosses the torus cut
// separating the two blocks, sharing cut links with the other pairs at
// that level and paying store-and-forward hops. It performs worse than
// the H-tree because the binary-tree traffic pattern does not match the
// mesh (paper §6.5.1).
type Torus struct {
	levels  int
	rows    int
	cols    int
	linkBps float64
}

// NewTorus builds a torus for 2^levels accelerators with the given
// per-link bandwidth in megabits per second. The grid is the most
// square power-of-two factorization of 2^levels (4×4 for 16).
func NewTorus(levels int, linkMbps float64) (*Torus, error) {
	if levels < 0 || levels > 20 {
		return nil, fmt.Errorf("%w: torus depth %d", ErrConfig, levels)
	}
	if linkMbps <= 0 {
		return nil, fmt.Errorf("%w: link bandwidth %g Mb/s", ErrConfig, linkMbps)
	}
	rows := 1 << uint((levels+1)/2)
	cols := 1 << uint(levels/2)
	return &Torus{levels: levels, rows: rows, cols: cols, linkBps: linkMbps * 1e6 / 8}, nil
}

// Name implements Topology.
func (t *Torus) Name() string { return "torus" }

// Levels implements Topology.
func (t *Torus) Levels() int { return t.levels }

// geometry returns, for a level, the number of torus links crossing the
// bipartition between the two blocks of one group pair, and the average
// hop distance between communicating partners.
//
// Splits alternate along the grid's longer axis (the binary partition
// of Figure 3 laid out as contiguous blocks). Cutting an r×c block
// horizontally crosses c links (one per column); torus wraparound
// doubles the cut only when the block spans the full torus extent in
// the cut direction.
func (t *Torus) geometry(level int) (cut float64, hops float64) {
	// Block dimensions at this level: start with the whole grid and
	// halve alternating axes `level` times.
	r, c := t.rows, t.cols
	for i := 0; i < level; i++ {
		if r >= c {
			r /= 2
		} else {
			c /= 2
		}
	}
	// Now split the r×c block into two halves along its longer side.
	if r >= c {
		// Horizontal cut: c links cross; wraparound helps only when
		// the block spans the full torus height.
		cut = float64(c)
		if r == t.rows && t.rows > 2 {
			cut *= 2
		}
		hops = math.Max(1, float64(r)/2)
	} else {
		cut = float64(r)
		if c == t.cols && t.cols > 2 {
			cut *= 2
		}
		hops = math.Max(1, float64(c)/2)
	}
	return cut, hops
}

// TransferTime implements Topology. The pairs at a level share the mesh:
// each pair's exchange crosses its own block cut, and multi-hop
// forwarding occupies `hops` link-transmissions per byte, so the
// sustained pair bandwidth is linkBps · cut / hops.
func (t *Torus) TransferTime(level int, exchBytes float64) (float64, error) {
	if err := checkLevel(level, t.levels); err != nil {
		return 0, err
	}
	if exchBytes <= 0 {
		return 0, nil
	}
	cut, hops := t.geometry(level)
	bw := t.linkBps * cut / hops
	return exchBytes / bw, nil
}

// LinkBytes implements Topology: every byte occupies `hops` links.
func (t *Torus) LinkBytes(level int, exchBytes float64) (float64, error) {
	if err := checkLevel(level, t.levels); err != nil {
		return 0, err
	}
	_, hops := t.geometry(level)
	pairs := math.Pow(2, float64(level))
	return pairs * exchBytes * hops, nil
}

// Ideal is an infinite-bandwidth, zero-latency fabric used by ablation
// benchmarks to isolate compute from communication.
type Ideal struct{ levels int }

// NewIdeal builds an ideal fabric for 2^levels accelerators.
func NewIdeal(levels int) *Ideal { return &Ideal{levels: levels} }

// Name implements Topology.
func (t *Ideal) Name() string { return "ideal" }

// Levels implements Topology.
func (t *Ideal) Levels() int { return t.levels }

// TransferTime implements Topology.
func (t *Ideal) TransferTime(level int, exchBytes float64) (float64, error) {
	if err := checkLevel(level, t.levels); err != nil {
		return 0, err
	}
	return 0, nil
}

// LinkBytes implements Topology.
func (t *Ideal) LinkBytes(level int, exchBytes float64) (float64, error) {
	if err := checkLevel(level, t.levels); err != nil {
		return 0, err
	}
	return exchBytes * math.Pow(2, float64(level)), nil
}

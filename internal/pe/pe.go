// Package pe models the Eyeriss-like row-stationary processing unit on
// each HMC's logic die (paper §5, Figure 4b): a 12×14 array of 168
// processing engines with a 108 KB on-chip buffer and 84.0 GOPS/s of
// computation density at 250 MHz.
//
// In the row-stationary dataflow, kernel rows are held stationary and
// shared horizontally across a PE row, feature-map rows flow diagonally,
// and partial sums accumulate vertically. A layer maps onto the array as
// K (kernel rows) × Hout (output rows) logical strips; the model derives
// array utilization from how well those strips tile 12×14, and derives
// DRAM traffic from how often the limited buffer forces operand
// re-streaming.
package pe

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
)

// ErrConfig reports an invalid PE configuration.
var ErrConfig = errors.New("pe: invalid config")

// Config describes one row-stationary processing unit.
type Config struct {
	RowsPE     int     // PE array height (12)
	ColsPE     int     // PE array width (14)
	BufferKB   float64 // on-chip buffer (108 KB)
	GOPS       float64 // peak computation density, operations/s (84e9)
	ClockMHz   float64 // logic clock (250 MHz)
	MinUtil    float64 // utilization floor for degenerate mappings
	ElemsBytes float64 // element width in bytes (4 for float32)
}

// Default returns the paper's evaluation configuration.
func Default() Config {
	return Config{
		RowsPE:     12,
		ColsPE:     14,
		BufferKB:   108,
		GOPS:       84e9,
		ClockMHz:   250,
		MinUtil:    0.25,
		ElemsBytes: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RowsPE <= 0 || c.ColsPE <= 0 {
		return fmt.Errorf("%w: PE array %dx%d", ErrConfig, c.RowsPE, c.ColsPE)
	}
	if c.BufferKB <= 0 || c.GOPS <= 0 || c.ClockMHz <= 0 {
		return fmt.Errorf("%w: buffer=%g KB gops=%g clock=%g", ErrConfig, c.BufferKB, c.GOPS, c.ClockMHz)
	}
	if c.MinUtil <= 0 || c.MinUtil > 1 {
		return fmt.Errorf("%w: MinUtil=%g", ErrConfig, c.MinUtil)
	}
	if c.ElemsBytes <= 0 {
		return fmt.Errorf("%w: ElemsBytes=%g", ErrConfig, c.ElemsBytes)
	}
	return nil
}

// PEs returns the PE count (168 for the default array).
func (c Config) PEs() int { return c.RowsPE * c.ColsPE }

// Utilization estimates the fraction of the PE array a layer keeps busy
// under row-stationary mapping. A conv layer occupies K rows (kernel
// rows) by Hout columns (output-row strips); replication across unused
// rows/columns recovers utilization when channels and batch provide
// parallel work, which all training workloads do, so the residual loss
// comes from the ceiling effects of tiling K×Hout strips onto the
// physical array. Fully-connected layers behave as 1×1 convolutions
// whose only spatial axis is the batch.
func (c Config) Utilization(s nn.LayerShapes) float64 {
	var strips float64
	switch s.Layer.Type {
	case nn.Conv:
		k := float64(s.Kernel.K)
		hout := float64(s.Out.H)
		rows := float64(c.RowsPE)
		cols := float64(c.ColsPE)
		// Ceiling losses when K (kernel rows) or Hout (output-row
		// strips) do not tile the physical array exactly.
		rTiles := math.Ceil(k / rows)
		cTiles := math.Ceil(hout / cols)
		strips = (k / (rTiles * rows)) * (hout / (cTiles * cols))
		// Channel/batch replication fills idle PEs up to the array size.
		fill := math.Min(1, float64(s.Out.Elems())/float64(c.PEs()))
		strips = math.Max(strips, fill*0.85)
	case nn.FC:
		// Matrix-vector work parallelizes over batch and output
		// neurons; the systolic reuse of row stationarity is weaker, so
		// fc sustains a lower fraction of peak.
		occ := math.Min(1, float64(s.Out.Elems())/float64(c.PEs()))
		strips = 0.6 * occ
	}
	return math.Max(c.MinUtil, math.Min(1, strips))
}

// ComputeTime returns the seconds one PU needs to execute the given
// number of MACs for the layer (2 operations per MAC at the sustained
// rate GOPS × utilization).
func (c Config) ComputeTime(macs float64, s nn.LayerShapes) float64 {
	if macs <= 0 {
		return 0
	}
	return 2 * macs / (c.GOPS * c.Utilization(s))
}

// TileFactor estimates how many buffer-sized passes the layer's kernel
// working set needs through the 108 KB on-chip buffer. It is exposed
// for the buffer-size ablation benchmarks; the headline DRAM-traffic
// model charges each tensor element once per phase, which is what the
// HMC's 320 GB/s in-cube bandwidth sustains with row-stationary reuse
// (each operand row is consumed by a whole PE diagonal once fetched).
func (c Config) TileFactor(s nn.LayerShapes) float64 {
	bufBytes := c.BufferKB * 1024
	kernelBytes := float64(s.Kernel.Elems()) * c.ElemsBytes
	// One input row-strip and one output row-strip per pass.
	stripBytes := float64(s.In.SliceElems()+s.Out.SliceElems()) / math.Max(1, float64(s.Out.H)) * c.ElemsBytes
	passWorkingSet := stripBytes + kernelBytes
	passes := math.Ceil(passWorkingSet / bufBytes)
	return math.Max(1, passes)
}

// DRAMTraffic returns the bytes one PU moves to and from its cube DRAM
// for one phase of the layer: each locally held operand element is read
// once and each result element written once (row-stationary reuse keeps
// intra-phase re-reads on chip).
func (c Config) DRAMTraffic(s nn.LayerShapes, operandBytes, resultBytes float64) float64 {
	return operandBytes + resultBytes
}

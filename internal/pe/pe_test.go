package pe

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/nn"
)

func shapesOf(t *testing.T, m *nn.Model, batch int) []nn.LayerShapes {
	t.Helper()
	s, err := m.Shapes(batch)
	if err != nil {
		t.Fatalf("Shapes(%s): %v", m.Name, err)
	}
	return s
}

func TestDefaultValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.PEs() != 168 {
		t.Errorf("PEs = %d, paper says 168 (12×14)", c.PEs())
	}
	if c.BufferKB != 108 || c.GOPS != 84e9 || c.ClockMHz != 250 {
		t.Errorf("default differs from paper §6.1: %+v", c)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Config{
		{},
		{RowsPE: 12, ColsPE: 14},
		{RowsPE: 12, ColsPE: 14, BufferKB: 108, GOPS: 84e9, ClockMHz: 250, MinUtil: 0, ElemsBytes: 4},
		{RowsPE: 12, ColsPE: 14, BufferKB: 108, GOPS: 84e9, ClockMHz: 250, MinUtil: 2, ElemsBytes: 4},
		{RowsPE: 12, ColsPE: 14, BufferKB: 108, GOPS: 84e9, ClockMHz: 250, MinUtil: 0.5, ElemsBytes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("bad config %d accepted: %v", i, err)
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	c := Default()
	for _, m := range nn.Zoo() {
		for _, s := range shapesOf(t, m, 256) {
			u := c.Utilization(s)
			if u < c.MinUtil || u > 1 {
				t.Errorf("%s/%s utilization %g outside [%g,1]", m.Name, s.Layer.Name, u, c.MinUtil)
			}
		}
	}
}

func TestUtilizationShape(t *testing.T) {
	c := Default()
	shapes := shapesOf(t, nn.VGGA(), 256)
	var conv, fc float64
	for _, s := range shapes {
		switch s.Layer.Name {
		case "conv3_1":
			conv = c.Utilization(s)
		case "fc1":
			fc = c.Utilization(s)
		}
	}
	// Row stationarity is designed for convolutions (paper §5); fc
	// layers sustain a lower fraction of peak.
	if conv <= fc {
		t.Errorf("conv utilization %g should exceed fc utilization %g", conv, fc)
	}
}

func TestComputeTime(t *testing.T) {
	c := Default()
	shapes := shapesOf(t, nn.VGGA(), 256)
	s := shapes[0]
	if got := c.ComputeTime(0, s); got != 0 {
		t.Errorf("ComputeTime(0) = %g, want 0", got)
	}
	// 42e9 MACs at 84 GOPS and full utilization is one second; with
	// utilization <= 1 it can only take longer.
	if got := c.ComputeTime(42e9, s); got < 1 {
		t.Errorf("ComputeTime(42e9 MACs) = %g s, want >= 1", got)
	}
}

func TestTileFactor(t *testing.T) {
	c := Default()
	shapes := shapesOf(t, nn.VGGA(), 256)
	for _, s := range shapes {
		tf := c.TileFactor(s)
		if tf < 1 {
			t.Errorf("%s TileFactor = %g, want >= 1", s.Layer.Name, tf)
		}
	}
	// VGG fc1 holds a 98 MB weight matrix: it cannot stream through a
	// 108 KB buffer in one pass.
	var fc1 nn.LayerShapes
	for _, s := range shapes {
		if s.Layer.Name == "fc1" {
			fc1 = s
		}
	}
	if tf := c.TileFactor(fc1); tf <= 1 {
		t.Errorf("fc1 TileFactor = %g, want > 1", tf)
	}
}

func TestDRAMTraffic(t *testing.T) {
	c := Default()
	shapes := shapesOf(t, nn.LenetC(), 32)
	s := shapes[0]
	got := c.DRAMTraffic(s, 1000, 500)
	if got < 1500 {
		t.Errorf("DRAMTraffic = %g, want >= operand+result", got)
	}
}

// Property: compute time is monotone in MACs and inversely bounded by
// peak throughput.
func TestComputeTimeProperty(t *testing.T) {
	c := Default()
	shapes := shapesOf(t, nn.AlexNet(), 64)
	prop := func(li uint8, macs uint32) bool {
		s := shapes[int(li)%len(shapes)]
		m := float64(macs%1e9) + 1
		tm := c.ComputeTime(m, s)
		peak := 2 * m / c.GOPS
		return tm >= peak && c.ComputeTime(2*m, s) > tm
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

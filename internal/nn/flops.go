package nn

// Phase enumerates the three computation phases of one training step
// (paper §2.1): forward propagation, error backward propagation, and
// gradient computation. The weight update itself is element-wise and
// local, so the paper folds it into the gradient phase.
type Phase int

const (
	// Forward computes F_{l+1} = f(F_l ⊗ W_l).
	Forward Phase = iota
	// Backward computes E_l = (E_{l+1} ⊗ W*_l) ⊙ f'(F_l).
	Backward
	// Gradient computes ∆W_l = F*_l ⊗ E_{l+1}.
	Gradient
)

// Phases lists the training phases in execution order.
var Phases = []Phase{Forward, Backward, Gradient}

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	case Gradient:
		return "gradient"
	default:
		return "phase?"
	}
}

// MACs returns the multiply-accumulate count of one phase of one layer
// for the full (unsharded) batch. All three phases of a layer perform
// the same number of MACs: they are the three matrix products over the
// same triple of tensors (Figure 1).
//
// Conv: B · Hout · Wout · Cout · K² · Cin.  FC: B · Cin · Cout.
func (s LayerShapes) MACs(p Phase) int64 {
	k := s.Kernel
	perOut := int64(k.K) * int64(k.K) * int64(k.Cin)
	return s.Out.Elems() * perOut
}

// StepMACs returns the MAC count of one full training step of the layer
// (all three phases).
func (s LayerShapes) StepMACs() int64 {
	var n int64
	for _, p := range Phases {
		n += s.MACs(p)
	}
	return n
}

// ActOps returns the element-wise operation count for the activation
// (forward) or its derivative (backward); zero for NoAct.
func (s LayerShapes) ActOps() int64 {
	if s.Layer.Act == NoAct {
		return 0
	}
	return s.Out.Elems()
}

// PoolOps returns the comparison count of the folded max-pooling step.
func (s LayerShapes) PoolOps() int64 {
	p := s.Layer.pool()
	if p <= 1 {
		return 0
	}
	return s.Carried.Elems() * int64(p*p)
}

// UpdateOps returns the element-wise weight-update operation count
// (one multiply-add per weight).
func (s LayerShapes) UpdateOps() int64 {
	return s.Kernel.Elems()
}

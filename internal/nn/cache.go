package nn

import (
	"sync"
	"sync/atomic"
)

// shapeKey identifies one memoized shape inference: the model instance
// and the batch size it was run at.
type shapeKey struct {
	model *Model
	batch int
}

// shapeCache memoizes Shapes results. Keyed by model pointer: callers
// that want cache hits must reuse the same *Model across calls (the
// experiments session pins the zoo once for exactly this reason).
var shapeCache sync.Map // shapeKey -> []LayerShapes

// shapeCacheSize tracks entries so churning workloads (thousands of
// short-lived model instances) cannot grow the cache without bound;
// past the limit the whole cache is dropped and rebuilt.
var shapeCacheSize atomic.Int64

// shapeCacheLimit bounds the entry count. At roughly a few KB per
// entry this caps the cache in the tens of MB.
const shapeCacheLimit = 4096

// CachedShapes is Shapes with memoization per (model, batch). The
// returned slice is shared between all callers and must be treated as
// read-only; every consumer in this repository (the partition search,
// the simulator, the training substrate) only reads it. A model must
// not be mutated after its shapes have been cached.
func (m *Model) CachedShapes(batch int) ([]LayerShapes, error) {
	key := shapeKey{model: m, batch: batch}
	if v, ok := shapeCache.Load(key); ok {
		return v.([]LayerShapes), nil
	}
	shapes, err := m.Shapes(batch)
	if err != nil {
		return nil, err
	}
	// Concurrent misses may both compute; LoadOrStore keeps one winner
	// so all callers share a single slice.
	v, loaded := shapeCache.LoadOrStore(key, shapes)
	if !loaded && shapeCacheSize.Add(1) > shapeCacheLimit {
		shapeCacheSize.Store(0)
		shapeCache.Range(func(k, _ interface{}) bool {
			shapeCache.Delete(k)
			return true
		})
	}
	return v.([]LayerShapes), nil
}

package nn

import "repro/internal/lru"

// shapeKey identifies one memoized shape inference: the model instance
// and the batch size it was run at.
type shapeKey struct {
	model *Model
	batch int
}

// shapeCacheLimit bounds the entry count. At roughly a few KB per
// entry this caps the cache in the tens of MB.
const shapeCacheLimit = 4096

// shapeCache memoizes Shapes results in a bounded per-entry LRU. Keyed
// by model pointer: callers that want cache hits must reuse the same
// *Model across calls (the experiments session pins the zoo once for
// exactly this reason). Churning workloads — thousands of short-lived
// model instances — only recycle the cold tail: hot entries survive
// because every hit refreshes them, where the previous whole-map flush
// dropped the pinned zoo along with the churn, and the pointer keys of
// dead models now age out instead of being retained until a flush.
var shapeCache = lru.New[shapeKey, []LayerShapes](shapeCacheLimit)

// CachedShapes is Shapes with memoization per (model, batch). The
// returned slice is shared between all callers and must be treated as
// read-only; every consumer in this repository (the partition search,
// the simulator, the training substrate) only reads it. A model must
// not be mutated after its shapes have been cached.
func (m *Model) CachedShapes(batch int) ([]LayerShapes, error) {
	key := shapeKey{model: m, batch: batch}
	if v, ok := shapeCache.Get(key); ok {
		return v, nil
	}
	// Inference runs outside the cache lock (it is too expensive for
	// GetOrAdd's build); concurrent misses may both compute, and the
	// GetOrAdd below keeps one winner so all callers share one slice.
	shapes, err := m.Shapes(batch)
	if err != nil {
		return nil, err
	}
	v, _ := shapeCache.GetOrAdd(key, func() []LayerShapes { return shapes })
	return v, nil
}

// DropCachedShapes removes every cached shape inference of the model
// (all batch sizes) and returns how many entries were dropped. Callers
// that pin model instances — the experiments session cache — use it to
// release a retired instance's entries instead of waiting for them to
// age out of the LRU.
func DropCachedShapes(m *Model) int {
	return shapeCache.RemoveIf(func(k shapeKey) bool { return k.model == m })
}

// ShapeCacheLen reports the current shape-cache entry count (for tests
// and leak diagnostics).
func ShapeCacheLen() int { return shapeCache.Len() }

package nn

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// validModelJSON is the reference wire form used across codec tests.
const validModelJSON = `{
	"name": "tiny",
	"input": {"h": 8, "w": 8, "c": 3},
	"layers": [
		{"name": "conv1", "type": "conv", "k": 3, "pad": 1, "cout": 4, "pool": 2},
		{"name": "fc1", "type": "fc", "cout": 10, "act": "softmax"}
	]
}`

func TestDecodeModelValid(t *testing.T) {
	m, err := DecodeModel([]byte(validModelJSON))
	if err != nil {
		t.Fatalf("DecodeModel: %v", err)
	}
	if m.Name != "tiny" || len(m.Layers) != 2 {
		t.Fatalf("decoded %v", m)
	}
	if m.Layers[0].Type != Conv || m.Layers[0].K != 3 || m.Layers[0].Pool != 2 {
		t.Errorf("conv layer decoded as %+v", m.Layers[0])
	}
	if m.Layers[1].Type != FC || m.Layers[1].Act != Softmax {
		t.Errorf("fc layer decoded as %+v", m.Layers[1])
	}
	if _, err := m.Shapes(4); err != nil {
		t.Errorf("decoded model fails shape inference: %v", err)
	}
}

func TestDecodeModelRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          ``,
		"not json":       `{"name": `,
		"unknown field":  `{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[{"name":"fc","type":"fc","cout":10}],"extra":1}`,
		"unknown type":   `{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[{"name":"l","type":"lstm","cout":10}]}`,
		"unknown act":    `{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[{"name":"l","type":"fc","cout":10,"act":"gelu"}]}`,
		"no layers":      `{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[]}`,
		"no name":        `{"input":{"h":8,"w":8,"c":3},"layers":[{"name":"l","type":"fc","cout":10}]}`,
		"bad input":      `{"name":"x","input":{"h":0,"w":8,"c":3},"layers":[{"name":"l","type":"fc","cout":10}]}`,
		"bad cout":       `{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[{"name":"l","type":"fc","cout":0}]}`,
		"conv after fc":  `{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[{"name":"a","type":"fc","cout":10},{"name":"b","type":"conv","k":3,"cout":4}]}`,
		"trailing bytes": `{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[{"name":"l","type":"fc","cout":10}]} junk`,
		"wrong shape":    `["not","an","object"]`,
	}
	for name, in := range cases {
		if _, err := DecodeModel([]byte(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeModelSizeLimits(t *testing.T) {
	huge := make([]byte, MaxJSONBytes+1)
	if _, err := DecodeModel(huge); !errors.Is(err, ErrCodec) {
		t.Errorf("oversized payload: got %v", err)
	}
	var b strings.Builder
	b.WriteString(`{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[`)
	for i := 0; i <= MaxJSONLayers; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"name":"l","type":"fc","cout":10}`)
	}
	b.WriteString(`]}`)
	if _, err := DecodeModel([]byte(b.String())); !errors.Is(err, ErrCodec) {
		t.Errorf("layer-count limit: got %v", err)
	}
}

// TestEncodeModelCanonical checks that semantically identical models
// serialize to identical bytes, and that the canonical form is a fixed
// point of decode→encode.
func TestEncodeModelCanonical(t *testing.T) {
	m, err := DecodeModel([]byte(validModelJSON))
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := EncodeModel(m)
	if err != nil {
		t.Fatalf("EncodeModel: %v", err)
	}
	m2, err := DecodeModel(enc1)
	if err != nil {
		t.Fatalf("DecodeModel(canonical): %v", err)
	}
	enc2, err := EncodeModel(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("canonical form is not a fixed point:\n%s\n%s", enc1, enc2)
	}

	// Explicit defaults (stride 1, pool 1, relu) collapse to the same bytes.
	expl := *m
	expl.Layers = append([]Layer(nil), m.Layers...)
	expl.Layers[0].Stride = 1
	encExpl, err := EncodeModel(&expl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, encExpl) {
		t.Errorf("explicit stride-1 changes canonical bytes:\n%s\n%s", enc1, encExpl)
	}
}

// TestEncodeModelZoo round-trips every zoo network through the codec.
func TestEncodeModelZoo(t *testing.T) {
	for _, m := range Zoo() {
		enc, err := EncodeModel(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Name, err)
		}
		rt, err := DecodeModel(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Name, err)
		}
		enc2, err := EncodeModel(rt)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", m.Name, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("%s: round trip changed canonical bytes", m.Name)
		}
		p1, err := m.Params(4)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := rt.Params(4)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Errorf("%s: round trip changed parameter count: %d vs %d", m.Name, p1, p2)
		}
	}
}

func TestEncodeModelInvalid(t *testing.T) {
	if _, err := EncodeModel(&Model{Name: "bad"}); err == nil {
		t.Error("encoded invalid model")
	}
}

package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Input describes the geometry of one training sample.
type Input struct {
	H int // height
	W int // width
	C int // channels
}

// Validate checks the input geometry.
func (in Input) Validate() error {
	if in.H <= 0 || in.W <= 0 || in.C <= 0 {
		return fmt.Errorf("%w: input %dx%dx%d", ErrModel, in.H, in.W, in.C)
	}
	return nil
}

// Model is a feed-forward DNN: an ordered list of weighted layers fed by
// a single input tensor. All ten zoo networks, and any user network
// handled by the public API, are Models.
type Model struct {
	Name   string
	Input  Input
	Layers []Layer
}

// Validate checks the model and every layer, including that fc layers
// are only followed by fc layers (the zoo and the paper's networks all
// satisfy this; shape inference relies on it only for conv geometry).
func (m *Model) Validate() error {
	if m == nil {
		return fmt.Errorf("%w: nil model", ErrModel)
	}
	if m.Name == "" {
		return fmt.Errorf("%w: model without name", ErrModel)
	}
	if err := m.Input.Validate(); err != nil {
		return fmt.Errorf("model %q: %w", m.Name, err)
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("%w: model %q has no weighted layers", ErrModel, m.Name)
	}
	seenFC := false
	for i, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("model %q layer %d: %w", m.Name, i, err)
		}
		if l.Type == FC {
			seenFC = true
		} else if seenFC {
			return fmt.Errorf("%w: model %q has conv layer %q after an fc layer", ErrModel, m.Name, l.Name)
		}
	}
	return nil
}

// NumWeighted returns the number of weighted layers L.
func (m *Model) NumWeighted() int { return len(m.Layers) }

// LayerShapes captures the inferred tensor geometry of one weighted
// layer at a given batch size: the input feature map F_l, the immediate
// (pre-pooling) output F_{l+1}, the tensor handed to the next layer
// (post-pooling), and the kernel W_l. Errors E_l and E_{l+1} share the
// geometry of F_l and F_{l+1}.
type LayerShapes struct {
	Layer Layer

	In      tensor.FeatureMap // F_l as consumed by this layer
	Out     tensor.FeatureMap // F_{l+1} immediately after the weighted op
	Carried tensor.FeatureMap // tensor passed to layer l+1 (after pooling)
	Kernel  tensor.Kernel     // W_l (∆W_l has the same geometry)
}

// Shapes runs shape inference over the model for the given batch size.
// It returns one LayerShapes per weighted layer.
func (m *Model) Shapes(batch int) ([]LayerShapes, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("%w: model %q batch=%d", ErrModel, m.Name, batch)
	}
	shapes := make([]LayerShapes, 0, len(m.Layers))
	cur := tensor.FeatureMap{B: batch, H: m.Input.H, W: m.Input.W, C: m.Input.C}
	for i, l := range m.Layers {
		var s LayerShapes
		s.Layer = l
		switch l.Type {
		case Conv:
			s.In = cur
			st := l.stride()
			oh := (cur.H+2*l.Pad-l.K)/st + 1
			ow := (cur.W+2*l.Pad-l.K)/st + 1
			if oh <= 0 || ow <= 0 {
				return nil, fmt.Errorf("%w: model %q layer %q (%d): conv output %dx%d from input %v",
					ErrModel, m.Name, l.Name, i, oh, ow, cur)
			}
			s.Out = tensor.FeatureMap{B: batch, H: oh, W: ow, C: l.Cout}
			k, err := tensor.NewConvKernel(l.K, cur.C, l.Cout)
			if err != nil {
				return nil, fmt.Errorf("model %q layer %q: %w", m.Name, l.Name, err)
			}
			s.Kernel = k
			p := l.pool()
			s.Carried = tensor.FeatureMap{B: batch, H: oh / p, W: ow / p, C: l.Cout}
			if s.Carried.H <= 0 || s.Carried.W <= 0 {
				return nil, fmt.Errorf("%w: model %q layer %q: pooling %d collapses %dx%d",
					ErrModel, m.Name, l.Name, p, oh, ow)
			}
		case FC:
			// Flatten whatever arrives into a neuron vector.
			cin := int(cur.SliceElems())
			s.In = tensor.FeatureMap{B: batch, H: 1, W: 1, C: cin}
			s.Out = tensor.FeatureMap{B: batch, H: 1, W: 1, C: l.Cout}
			s.Carried = s.Out
			k, err := tensor.NewFCKernel(cin, l.Cout)
			if err != nil {
				return nil, fmt.Errorf("model %q layer %q: %w", m.Name, l.Name, err)
			}
			s.Kernel = k
		}
		shapes = append(shapes, s)
		cur = s.Carried
	}
	return shapes, nil
}

// Params returns the total number of weights in the model.
func (m *Model) Params(batch int) (int64, error) {
	shapes, err := m.Shapes(batch)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, s := range shapes {
		n += s.Kernel.Elems()
	}
	return n, nil
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("%s(%d weighted layers, input %dx%dx%d)",
		m.Name, len(m.Layers), m.Input.H, m.Input.W, m.Input.C)
}

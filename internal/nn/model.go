package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Input describes the geometry of one training sample.
type Input struct {
	H int // height
	W int // width
	C int // channels
}

// Validate checks the input geometry.
func (in Input) Validate() error {
	if in.H <= 0 || in.W <= 0 || in.C <= 0 {
		return fmt.Errorf("%w: input %dx%dx%d", ErrModel, in.H, in.W, in.C)
	}
	return nil
}

// Model is a feed-forward DNN: an ordered list of weighted layers fed by
// a single input tensor. All ten zoo networks, and any user network
// handled by the public API, are Models.
//
// When no layer declares explicit Inputs the model is a linear chain,
// exactly as in the paper. Layers may instead name their producers
// (Layer.Inputs), turning the model into a branched DAG: the layer list
// must then be in topological order (every input names an earlier
// layer or the model input), layer names must be unique, and exactly
// one layer — the last — may be left unconsumed (the single sink the
// loss attaches to).
type Model struct {
	Name   string
	Input  Input
	Layers []Layer
}

// IsGraph reports whether any layer declares explicit inputs, i.e.
// whether the model is written in graph form. A graph-form model may
// still resolve to a plain chain — see LinearChain for the semantic
// test.
func (m *Model) IsGraph() bool {
	for _, l := range m.Layers {
		if len(l.Inputs) > 0 {
			return true
		}
	}
	return false
}

// DefaultPreds reports whether ps is layer i's implicit default wiring
// — exactly the previous layer, or the model input for the first layer.
// It is the single definition of "default" shared by the canonical
// encoder, LinearChain, and the partition DP's chain dispatch.
func DefaultPreds(i int, ps []int) bool {
	if len(ps) != 1 {
		return false
	}
	if i == 0 {
		return ps[0] == -1
	}
	return ps[0] == i-1
}

// ChainPreds reports whether resolved predecessors (LayerPreds form)
// describe a plain linear chain.
func ChainPreds(preds [][]int) bool {
	for i, ps := range preds {
		if !DefaultPreds(i, ps) {
			return false
		}
	}
	return true
}

// SkipEdges returns how many layer-to-layer edges the model has beyond
// a plain chain's L-1 — the one-number summary of its branching (0 for
// chains). The single definition every surface (CLI listing, branched
// table, examples) reports.
func (m *Model) SkipEdges() (int, error) {
	preds, err := m.LayerPreds()
	if err != nil {
		return 0, err
	}
	edges := 0
	for _, ps := range preds {
		for _, p := range ps {
			if p >= 0 {
				edges++
			}
		}
	}
	return edges - (len(m.Layers) - 1), nil
}

// LinearChain reports whether the model's resolved data flow is a
// plain chain — every layer consuming exactly the previous one — even
// when layers spell that wiring out explicitly. A model whose wiring
// fails to resolve is not a chain.
func (m *Model) LinearChain() bool {
	if !m.IsGraph() {
		return true
	}
	preds, err := m.LayerPreds()
	if err != nil {
		return false
	}
	return ChainPreds(preds)
}

// LayerPreds resolves every layer's inputs to layer indices, in input
// order; -1 denotes the model input. A chain resolves to [[-1], [0],
// [1], ...]. The resolution validates the graph wiring (unknown or
// forward references, duplicate names, multiple sinks) but not the
// full model — call Validate for that.
func (m *Model) LayerPreds() ([][]int, error) {
	preds := make([][]int, len(m.Layers))
	if !m.IsGraph() {
		for i := range m.Layers {
			if i == 0 {
				preds[i] = []int{-1}
			} else {
				preds[i] = []int{i - 1}
			}
		}
		return preds, nil
	}
	index := make(map[string]int, len(m.Layers))
	for i, l := range m.Layers {
		if l.Name == "" {
			return nil, fmt.Errorf("%w: model %q: branched models need a name on every layer (layer %d)", ErrModel, m.Name, i)
		}
		if l.Name == InputName {
			return nil, fmt.Errorf("%w: model %q: layer name %q is reserved for the model input", ErrModel, m.Name, InputName)
		}
		if _, dup := index[l.Name]; dup {
			return nil, fmt.Errorf("%w: model %q: duplicate layer name %q", ErrModel, m.Name, l.Name)
		}
		index[l.Name] = i
	}
	consumers := make([]int, len(m.Layers))
	for i, l := range m.Layers {
		if len(l.Inputs) == 0 {
			if i == 0 {
				preds[i] = []int{-1}
			} else {
				preds[i] = []int{i - 1}
				consumers[i-1]++
			}
			continue
		}
		seen := make(map[string]bool, len(l.Inputs))
		for _, name := range l.Inputs {
			if seen[name] {
				return nil, fmt.Errorf("%w: model %q layer %q: duplicate input %q", ErrModel, m.Name, l.Name, name)
			}
			seen[name] = true
			if name == InputName {
				preds[i] = append(preds[i], -1)
				continue
			}
			j, ok := index[name]
			if !ok {
				return nil, fmt.Errorf("%w: model %q layer %q: unknown input %q", ErrModel, m.Name, l.Name, name)
			}
			if j >= i {
				return nil, fmt.Errorf("%w: model %q layer %q: input %q is not an earlier layer (layers must be topologically ordered)",
					ErrModel, m.Name, l.Name, name)
			}
			preds[i] = append(preds[i], j)
			consumers[j]++
		}
	}
	for i := range m.Layers {
		if consumers[i] == 0 && i != len(m.Layers)-1 {
			return nil, fmt.Errorf("%w: model %q: layer %q is never consumed (only the final layer may be the sink)",
				ErrModel, m.Name, m.Layers[i].Name)
		}
	}
	return preds, nil
}

// Validate checks the model and every layer. For linear chains it also
// checks that fc layers are only followed by fc layers (the zoo and the
// paper's networks all satisfy this); for branched models the same
// constraint applies per edge — a convolutional layer cannot consume a
// fully-connected layer's flattened output — along with the graph
// wiring rules of LayerPreds.
func (m *Model) Validate() error {
	_, err := m.validatePreds()
	return err
}

// validatePreds is Validate returning the resolved predecessors, so
// callers needing both (Shapes, EncodeModel) resolve the graph once.
func (m *Model) validatePreds() ([][]int, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil model", ErrModel)
	}
	if m.Name == "" {
		return nil, fmt.Errorf("%w: model without name", ErrModel)
	}
	if err := m.Input.Validate(); err != nil {
		return nil, fmt.Errorf("model %q: %w", m.Name, err)
	}
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("%w: model %q has no weighted layers", ErrModel, m.Name)
	}
	for i, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("model %q layer %d: %w", m.Name, i, err)
		}
	}
	if !m.IsGraph() {
		seenFC := false
		for _, l := range m.Layers {
			if l.Type == FC {
				seenFC = true
			} else if seenFC {
				return nil, fmt.Errorf("%w: model %q has conv layer %q after an fc layer", ErrModel, m.Name, l.Name)
			}
		}
		return m.LayerPreds()
	}
	preds, err := m.LayerPreds()
	if err != nil {
		return nil, err
	}
	for i, ps := range preds {
		for _, p := range ps {
			if p >= 0 && m.Layers[p].Type == FC && m.Layers[i].Type == Conv {
				return nil, fmt.Errorf("%w: model %q has conv layer %q consuming fc layer %q",
					ErrModel, m.Name, m.Layers[i].Name, m.Layers[p].Name)
			}
		}
	}
	return preds, nil
}

// NumWeighted returns the number of weighted layers L.
func (m *Model) NumWeighted() int { return len(m.Layers) }

// LayerShapes captures the inferred tensor geometry of one weighted
// layer at a given batch size: the input feature map F_l, the immediate
// (pre-pooling) output F_{l+1}, the tensor handed to the next layer
// (post-pooling), and the kernel W_l. Errors E_l and E_{l+1} share the
// geometry of F_l and F_{l+1}.
type LayerShapes struct {
	Layer Layer

	In      tensor.FeatureMap // F_l as consumed by this layer
	Out     tensor.FeatureMap // F_{l+1} immediately after the weighted op
	Carried tensor.FeatureMap // tensor passed to layer l+1 (after pooling)
	Kernel  tensor.Kernel     // W_l (∆W_l has the same geometry)
}

// joinInputs combines the feature maps arriving at layer l (given in
// input order) into the single map its weighted op consumes.
func (m *Model) joinInputs(l Layer, ins []tensor.FeatureMap) (tensor.FeatureMap, error) {
	if len(ins) == 1 {
		return ins[0], nil
	}
	switch l.Join {
	case Add:
		for _, in := range ins[1:] {
			if in != ins[0] {
				return tensor.FeatureMap{}, fmt.Errorf("%w: model %q layer %q: add join over mismatched shapes %v and %v",
					ErrModel, m.Name, l.Name, ins[0], in)
			}
		}
		return ins[0], nil
	default: // Concat
		if l.Type == FC {
			// A fully-connected consumer flattens each producer anyway;
			// concatenation is over the flattened neuron vectors.
			var elems int64
			for _, in := range ins {
				elems += in.SliceElems()
			}
			return tensor.FeatureMap{B: ins[0].B, H: 1, W: 1, C: int(elems)}, nil
		}
		out := ins[0]
		for _, in := range ins[1:] {
			if in.H != out.H || in.W != out.W {
				return tensor.FeatureMap{}, fmt.Errorf("%w: model %q layer %q: channel concat over mismatched spatial extents %v and %v",
					ErrModel, m.Name, l.Name, ins[0], in)
			}
			out.C += in.C
		}
		return out, nil
	}
}

// Shapes runs shape inference over the model for the given batch size,
// walking the layers in topological (declaration) order. It returns one
// LayerShapes per weighted layer; a layer's In is the joined feature
// map after fork duplication and concat/add joins.
func (m *Model) Shapes(batch int) ([]LayerShapes, error) {
	preds, err := m.validatePreds()
	if err != nil {
		return nil, err
	}
	if batch <= 0 {
		return nil, fmt.Errorf("%w: model %q batch=%d", ErrModel, m.Name, batch)
	}
	input := tensor.FeatureMap{B: batch, H: m.Input.H, W: m.Input.W, C: m.Input.C}
	shapes := make([]LayerShapes, 0, len(m.Layers))
	for i, l := range m.Layers {
		ins := make([]tensor.FeatureMap, 0, len(preds[i]))
		for _, p := range preds[i] {
			if p < 0 {
				ins = append(ins, input)
			} else {
				ins = append(ins, shapes[p].Carried)
			}
		}
		cur, err := m.joinInputs(l, ins)
		if err != nil {
			return nil, err
		}
		var s LayerShapes
		s.Layer = l
		switch l.Type {
		case Conv:
			s.In = cur
			st := l.stride()
			oh := (cur.H+2*l.Pad-l.K)/st + 1
			ow := (cur.W+2*l.Pad-l.K)/st + 1
			if oh <= 0 || ow <= 0 {
				return nil, fmt.Errorf("%w: model %q layer %q (%d): conv output %dx%d from input %v",
					ErrModel, m.Name, l.Name, i, oh, ow, cur)
			}
			s.Out = tensor.FeatureMap{B: batch, H: oh, W: ow, C: l.Cout}
			k, err := tensor.NewConvKernel(l.K, cur.C, l.Cout)
			if err != nil {
				return nil, fmt.Errorf("model %q layer %q: %w", m.Name, l.Name, err)
			}
			s.Kernel = k
			p := l.pool()
			s.Carried = tensor.FeatureMap{B: batch, H: oh / p, W: ow / p, C: l.Cout}
			if s.Carried.H <= 0 || s.Carried.W <= 0 {
				return nil, fmt.Errorf("%w: model %q layer %q: pooling %d collapses %dx%d",
					ErrModel, m.Name, l.Name, p, oh, ow)
			}
		case FC:
			// Flatten whatever arrives into a neuron vector.
			cin := int(cur.SliceElems())
			s.In = tensor.FeatureMap{B: batch, H: 1, W: 1, C: cin}
			s.Out = tensor.FeatureMap{B: batch, H: 1, W: 1, C: l.Cout}
			s.Carried = s.Out
			k, err := tensor.NewFCKernel(cin, l.Cout)
			if err != nil {
				return nil, fmt.Errorf("model %q layer %q: %w", m.Name, l.Name, err)
			}
			s.Kernel = k
		}
		shapes = append(shapes, s)
	}
	return shapes, nil
}

// Params returns the total number of weights in the model.
func (m *Model) Params(batch int) (int64, error) {
	shapes, err := m.Shapes(batch)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, s := range shapes {
		n += s.Kernel.Elems()
	}
	return n, nil
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("%s(%d weighted layers, input %dx%dx%d)",
		m.Name, len(m.Layers), m.Input.H, m.Input.W, m.Input.C)
}

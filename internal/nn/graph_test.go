package nn

import (
	"bytes"
	"errors"
	"testing"
)

// graphModel returns a small fork/join net: input → a → {b1, b2} → c
// (concat) → fc.
func graphModel() *Model {
	return &Model{
		Name:  "g",
		Input: Input{H: 8, W: 8, C: 3},
		Layers: []Layer{
			{Name: "a", Type: Conv, K: 3, Pad: 1, Cout: 4, Act: ReLU},
			{Name: "b1", Type: Conv, K: 3, Pad: 1, Cout: 4, Act: ReLU, Inputs: []string{"a"}},
			{Name: "b2", Type: Conv, K: 3, Pad: 1, Cout: 6, Act: ReLU, Inputs: []string{"a"}},
			{Name: "c", Type: Conv, K: 3, Pad: 1, Cout: 8, Act: ReLU, Inputs: []string{"b1", "b2"}},
			{Name: "f", Type: FC, Cout: 10, Act: Softmax},
		},
	}
}

func TestGraphLayerPreds(t *testing.T) {
	m := graphModel()
	preds, err := m.LayerPreds()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{-1}, {0}, {0}, {1, 2}, {3}}
	if len(preds) != len(want) {
		t.Fatalf("preds %v", preds)
	}
	for i := range want {
		if len(preds[i]) != len(want[i]) {
			t.Fatalf("layer %d preds %v, want %v", i, preds[i], want[i])
		}
		for j := range want[i] {
			if preds[i][j] != want[i][j] {
				t.Fatalf("layer %d preds %v, want %v", i, preds[i], want[i])
			}
		}
	}
	// A chain resolves to the implicit [-1], [0], [1], ...
	chain, err := LenetC().LayerPreds()
	if err != nil {
		t.Fatal(err)
	}
	for i, ps := range chain {
		wantP := i - 1
		if i == 0 {
			wantP = -1
		}
		if len(ps) != 1 || ps[0] != wantP {
			t.Fatalf("chain layer %d preds %v", i, ps)
		}
	}
}

func TestGraphConcatShapes(t *testing.T) {
	m := graphModel()
	shapes, err := m.Shapes(4)
	if err != nil {
		t.Fatal(err)
	}
	// c consumes concat(b1, b2): 8x8x(4+6).
	if in := shapes[3].In; in.H != 8 || in.W != 8 || in.C != 10 {
		t.Errorf("concat input %v, want 8x8x10", in)
	}
	if k := shapes[3].Kernel; k.Cin != 10 {
		t.Errorf("concat consumer kernel Cin=%d, want 10", k.Cin)
	}
	// fc flattens c's carried output.
	if in := shapes[4].In; in.C != 8*8*8 {
		t.Errorf("fc input %v, want flattened 512", in)
	}
}

func TestGraphAddShapes(t *testing.T) {
	m := SRES8()
	shapes, err := m.Shapes(4)
	if err != nil {
		t.Fatal(err)
	}
	// conv3a consumes add(conv1, conv2b): identical 32x32x16 maps.
	if in := shapes[3].In; in.H != 32 || in.W != 32 || in.C != 16 {
		t.Errorf("add input %v, want 32x32x16", in)
	}
	// conv4 consumes add(conv3a carried after pool, conv3b): 16x16x32.
	if in := shapes[5].In; in.H != 16 || in.W != 16 || in.C != 32 {
		t.Errorf("second add input %v, want 16x16x32", in)
	}
}

// TestGraphFCConcatFlattens checks that a fully-connected consumer
// concatenates flattened producer vectors regardless of spatial shape.
func TestGraphFCConcatFlattens(t *testing.T) {
	m := &Model{
		Name:  "fcj",
		Input: Input{H: 8, W: 8, C: 2},
		Layers: []Layer{
			{Name: "a", Type: Conv, K: 3, Pad: 1, Cout: 4, Pool: 2, Act: ReLU},
			{Name: "b", Type: Conv, K: 3, Pad: 1, Cout: 4, Act: ReLU, Inputs: []string{"a"}},
			{Name: "f", Type: FC, Cout: 10, Inputs: []string{"a", "b"}},
		},
	}
	shapes, err := m.Shapes(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*4*4 + 4*4*4
	if in := shapes[2].In; in.C != want || in.H != 1 || in.W != 1 {
		t.Errorf("fc concat input %v, want 1x1x%d", in, want)
	}
}

func TestGraphValidateRejects(t *testing.T) {
	base := func() *Model { return graphModel() }
	cases := map[string]func(*Model){
		"unknown input":    func(m *Model) { m.Layers[3].Inputs = []string{"b1", "nope"} },
		"forward ref":      func(m *Model) { m.Layers[1].Inputs = []string{"c"} },
		"self ref":         func(m *Model) { m.Layers[1].Inputs = []string{"b1"} },
		"duplicate input":  func(m *Model) { m.Layers[3].Inputs = []string{"b1", "b1"} },
		"duplicate name":   func(m *Model) { m.Layers[2].Name = "b1"; m.Layers[3].Inputs = []string{"b1"} },
		"reserved name":    func(m *Model) { m.Layers[0].Name = "input" },
		"dangling layer":   func(m *Model) { m.Layers[3].Inputs = []string{"b1"} }, // b2 never consumed
		"add on 1 input":   func(m *Model) { m.Layers[1].Join = Add },
		"add mismatch":     func(m *Model) { m.Layers[3].Join = Add }, // 4 vs 6 channels
		"conv consumes fc": func(m *Model) { m.Layers[2].Type = FC; m.Layers[2].K = 0; m.Layers[2].Pad = 0 },
		"empty input name": func(m *Model) { m.Layers[3].Inputs = []string{"b1", ""} },
	}
	for name, mutate := range cases {
		m := base()
		mutate(m)
		err := m.Validate()
		if err == nil {
			// Shape-level failures (add mismatch) surface in Shapes.
			_, err = m.Shapes(2)
		}
		if err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrModel) {
			t.Errorf("%s: error %v does not wrap ErrModel", name, err)
		}
	}
}

func TestGraphConcatSpatialMismatch(t *testing.T) {
	m := &Model{
		Name:  "mis",
		Input: Input{H: 8, W: 8, C: 2},
		Layers: []Layer{
			{Name: "a", Type: Conv, K: 3, Pad: 1, Cout: 4, Act: ReLU},
			{Name: "b", Type: Conv, K: 3, Pad: 1, Cout: 4, Pool: 2, Act: ReLU, Inputs: []string{"a"}},
			{Name: "c", Type: Conv, K: 3, Pad: 1, Cout: 8, Act: ReLU, Inputs: []string{"a", "b"}},
		},
	}
	if _, err := m.Shapes(2); err == nil {
		t.Fatal("8x8 and 4x4 channel concat accepted")
	}
}

func TestBranchedZooValid(t *testing.T) {
	for _, m := range BranchedZoo() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if !m.IsGraph() {
			t.Errorf("%s is not a graph model", m.Name)
		}
		if _, err := m.Shapes(256); err != nil {
			t.Errorf("%s shapes: %v", m.Name, err)
		}
		byName, err := ByName(m.Name)
		if err != nil {
			t.Errorf("ByName(%s): %v", m.Name, err)
		} else if byName.Name != m.Name {
			t.Errorf("ByName(%s) returned %s", m.Name, byName.Name)
		}
	}
	if m := SRES8(); m.NumWeighted() != 8 {
		t.Errorf("SRES-8 has %d weighted layers, want 8", m.NumWeighted())
	}
	if m := Incep2(); m.NumWeighted() != 6 {
		t.Errorf("Incep-2 has %d weighted layers, want 6", m.NumWeighted())
	}
}

// TestGraphCodecRoundTrip pins the canonical wire form of a branched
// model: explicit single-predecessor inputs that equal the implicit
// previous layer are omitted, joins default to concat, and the
// canonical form is a fixed point.
func TestGraphCodecRoundTrip(t *testing.T) {
	for _, m := range append(BranchedZoo(), graphModel()) {
		enc, err := EncodeModel(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Name, err)
		}
		m2, err := DecodeModel(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v\n%s", m.Name, err, enc)
		}
		enc2, err := EncodeModel(m2)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", m.Name, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s: canonical encoding is not a fixed point:\n%s\n%s", m.Name, enc, enc2)
		}
		// Same shapes on both sides of the round trip.
		s1, err := m.Shapes(4)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := m2.Shapes(4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s1 {
			if s1[i].In != s2[i].In || s1[i].Out != s2[i].Out || s1[i].Kernel != s2[i].Kernel {
				t.Fatalf("%s layer %d: shapes drifted across round trip", m.Name, i)
			}
		}
	}
}

// TestGraphCodecCanonicalizesDefaults checks explicit default inputs
// are canonicalized away and equivalent spellings hash-equal.
func TestGraphCodecCanonicalizesDefaults(t *testing.T) {
	explicit := []byte(`{"name":"x","input":{"h":4,"w":4,"c":1},"layers":[` +
		`{"name":"a","type":"conv","k":3,"pad":1,"cout":2,"inputs":["input"]},` +
		`{"name":"b","type":"fc","cout":4,"inputs":["a"],"join":"concat"}]}`)
	implicit := []byte(`{"name":"x","input":{"h":4,"w":4,"c":1},"layers":[` +
		`{"name":"a","type":"conv","k":3,"pad":1,"cout":2},` +
		`{"name":"b","type":"fc","cout":4}]}`)
	me, err := DecodeModel(explicit)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := DecodeModel(implicit)
	if err != nil {
		t.Fatal(err)
	}
	ee, err := EncodeModel(me)
	if err != nil {
		t.Fatal(err)
	}
	ei, err := EncodeModel(mi)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ee, ei) {
		t.Fatalf("equivalent spellings encode differently:\n%s\n%s", ee, ei)
	}
}

func TestGraphCodecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown join":  `{"name":"x","input":{"h":4,"w":4,"c":1},"layers":[{"name":"a","type":"conv","k":3,"cout":2},{"name":"b","type":"conv","k":1,"cout":2,"inputs":["a","input"],"join":"mul"}]}`,
		"unknown input": `{"name":"x","input":{"h":4,"w":4,"c":1},"layers":[{"name":"a","type":"fc","cout":2,"inputs":["ghost"]}]}`,
		"forward ref":   `{"name":"x","input":{"h":4,"w":4,"c":1},"layers":[{"name":"a","type":"fc","cout":2,"inputs":["b"]},{"name":"b","type":"fc","cout":2}]}`,
		"multi sink":    `{"name":"x","input":{"h":4,"w":4,"c":1},"layers":[{"name":"a","type":"fc","cout":2,"inputs":["input"]},{"name":"b","type":"fc","cout":2,"inputs":["input"]}]}`,
	}
	for name, in := range cases {
		if _, err := DecodeModel([]byte(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

package nn

import "fmt"

// Input geometries of the paper's three datasets (§6.1). Only the shape
// matters for communication, performance and energy; synthetic batches
// of these geometries exercise exactly the code paths the paper's
// MNIST/CIFAR-10/ImageNet runs exercised.
var (
	// MNISTInput is a 28×28 grayscale digit.
	MNISTInput = Input{H: 28, W: 28, C: 1}
	// CIFARInput is a 32×32 RGB image.
	CIFARInput = Input{H: 32, W: 32, C: 3}
	// ImageNetInput is the 224×224 RGB crop used by the VGG family.
	ImageNetInput = Input{H: 224, W: 224, C: 3}
	// AlexNetInput is the 227×227 RGB crop AlexNet's stride-4 first
	// layer expects.
	AlexNetInput = Input{H: 227, W: 227, C: 3}
)

// SFC is the paper's all-fully-connected extreme case (Table 3):
// 784-8192-8192-8192-10 on MNIST. Four weighted layers.
func SFC() *Model {
	return &Model{
		Name:  "SFC",
		Input: MNISTInput,
		Layers: []Layer{
			FCLayer("fc1", 8192),
			FCLayer("fc2", 8192),
			FCLayer("fc3", 8192),
			{Name: "fc4", Type: FC, Cout: 10, Act: Softmax},
		},
	}
}

// SCONV is the paper's all-convolutional extreme case (Table 3):
// 20@5×5, 50@5×5 (2×2 max pool), 50@5×5, 10@5×5 (2×2 max pool) on
// MNIST. Four weighted layers.
func SCONV() *Model {
	return &Model{
		Name:  "SCONV",
		Input: MNISTInput,
		Layers: []Layer{
			ConvLayer("conv1", 5, 20),
			ConvPoolLayer("conv2", 5, 50, 2),
			ConvLayer("conv3", 5, 50),
			{Name: "conv4", Type: Conv, K: 5, Cout: 10, Pool: 2, Act: Softmax},
		},
	}
}

// LenetC is the convolutional MNIST network (Figure 5c): conv1, conv2,
// fc1, fc2 — four weighted layers.
func LenetC() *Model {
	return &Model{
		Name:  "Lenet-c",
		Input: MNISTInput,
		Layers: []Layer{
			ConvPoolLayer("conv1", 5, 20, 2),
			ConvPoolLayer("conv2", 5, 50, 2),
			FCLayer("fc1", 500),
			{Name: "fc2", Type: FC, Cout: 10, Act: Softmax},
		},
	}
}

// CifarC is the CIFAR-10 network (Figure 5d): conv1-conv3 plus fc1, fc2
// — five weighted layers (cuda-convnet's cifar10_quick geometry).
func CifarC() *Model {
	return &Model{
		Name:  "Cifar-c",
		Input: CIFARInput,
		Layers: []Layer{
			{Name: "conv1", Type: Conv, K: 5, Pad: 2, Cout: 32, Pool: 2, Act: ReLU},
			{Name: "conv2", Type: Conv, K: 5, Pad: 2, Cout: 32, Pool: 2, Act: ReLU},
			{Name: "conv3", Type: Conv, K: 5, Pad: 2, Cout: 64, Pool: 2, Act: ReLU},
			FCLayer("fc1", 64),
			{Name: "fc2", Type: FC, Cout: 10, Act: Softmax},
		},
	}
}

// AlexNet is the eight-weighted-layer ImageNet network of [6]
// (Figure 5e): five convolutions and three fully-connected layers.
// Grouped convolutions and LRN do not affect the communication model
// and are modeled as their dense equivalents.
func AlexNet() *Model {
	return &Model{
		Name:  "AlexNet",
		Input: AlexNetInput,
		Layers: []Layer{
			{Name: "conv1", Type: Conv, K: 11, Stride: 4, Cout: 96, Pool: 2, Act: ReLU},
			{Name: "conv2", Type: Conv, K: 5, Pad: 2, Cout: 256, Pool: 2, Act: ReLU},
			{Name: "conv3", Type: Conv, K: 3, Pad: 1, Cout: 384, Act: ReLU},
			{Name: "conv4", Type: Conv, K: 3, Pad: 1, Cout: 384, Act: ReLU},
			{Name: "conv5", Type: Conv, K: 3, Pad: 1, Cout: 256, Pool: 2, Act: ReLU},
			FCLayer("fc1", 4096),
			FCLayer("fc2", 4096),
			{Name: "fc3", Type: FC, Cout: 1000, Act: Softmax},
		},
	}
}

// vgg assembles a VGG-family network from per-stage convolution counts.
// kernel1x1Last marks stages whose final convolution uses a 1×1 kernel
// (configuration C of [105]).
func vgg(name string, stages [5][]int, oneByOne map[string]bool) *Model {
	chans := [5]int{64, 128, 256, 512, 512}
	m := &Model{Name: name, Input: ImageNetInput}
	for si, stage := range stages {
		for ci := range stage {
			ln := fmt.Sprintf("conv%d_%d", si+1, ci+1)
			k := 3
			pad := 1
			if oneByOne[ln] {
				k, pad = 1, 0
			}
			l := Layer{Name: ln, Type: Conv, K: k, Pad: pad, Cout: chans[si], Act: ReLU}
			if ci == len(stage)-1 {
				l.Pool = 2
			}
			m.Layers = append(m.Layers, l)
		}
	}
	m.Layers = append(m.Layers,
		FCLayer("fc1", 4096),
		FCLayer("fc2", 4096),
		Layer{Name: "fc3", Type: FC, Cout: 1000, Act: Softmax},
	)
	return m
}

// one-element helper stages
var (
	one = []int{1}
	two = []int{1, 2}
	tri = []int{1, 2, 3}
	qua = []int{1, 2, 3, 4}
)

// VGGA is VGG configuration A: 8 conv + 3 fc = 11 weighted layers.
func VGGA() *Model {
	return vgg("VGG-A", [5][]int{one, one, two, two, two}, nil)
}

// VGGB is VGG configuration B: 10 conv + 3 fc = 13 weighted layers.
func VGGB() *Model {
	return vgg("VGG-B", [5][]int{two, two, two, two, two}, nil)
}

// VGGC is VGG configuration C: 13 conv + 3 fc = 16 weighted layers,
// where the third convolution of stages 3-5 uses a 1×1 kernel.
func VGGC() *Model {
	return vgg("VGG-C", [5][]int{two, two, tri, tri, tri},
		map[string]bool{"conv3_3": true, "conv4_3": true, "conv5_3": true})
}

// VGGD is VGG configuration D (VGG-16): 13 conv + 3 fc = 16 weighted
// layers, all 3×3.
func VGGD() *Model {
	return vgg("VGG-D", [5][]int{two, two, tri, tri, tri}, nil)
}

// VGGE is VGG configuration E (VGG-19): 16 conv + 3 fc = 19 weighted
// layers.
func VGGE() *Model {
	return vgg("VGG-E", [5][]int{two, two, qua, qua, qua}, nil)
}

// Zoo returns the paper's ten evaluation networks in Figure 5 order.
func Zoo() []*Model {
	return []*Model{
		SFC(), SCONV(), LenetC(), CifarC(), AlexNet(),
		VGGA(), VGGB(), VGGC(), VGGD(), VGGE(),
	}
}

// SRES8 is a small residual CIFAR-10 network: a stem convolution, two
// residual blocks whose skip tensors rejoin by element-wise addition,
// and a two-layer classifier — eight weighted layers forming a DAG.
// It exercises the fork/add-join paths of the graph partition search:
// every skip edge whose producer and consumer disagree on parallelism
// pays the paper's Table 2 conversion for the duplicated feature map.
func SRES8() *Model {
	return &Model{
		Name:  "SRES-8",
		Input: CIFARInput,
		Layers: []Layer{
			{Name: "conv1", Type: Conv, K: 3, Pad: 1, Cout: 16, Act: ReLU},
			{Name: "conv2a", Type: Conv, K: 3, Pad: 1, Cout: 16, Act: ReLU},
			{Name: "conv2b", Type: Conv, K: 3, Pad: 1, Cout: 16, Act: ReLU},
			{Name: "conv3a", Type: Conv, K: 3, Pad: 1, Cout: 32, Pool: 2, Act: ReLU,
				Inputs: []string{"conv1", "conv2b"}, Join: Add},
			{Name: "conv3b", Type: Conv, K: 3, Pad: 1, Cout: 32, Act: ReLU},
			{Name: "conv4", Type: Conv, K: 3, Pad: 1, Cout: 64, Pool: 2, Act: ReLU,
				Inputs: []string{"conv3a", "conv3b"}, Join: Add},
			FCLayer("fc1", 64),
			{Name: "fc2", Type: FC, Cout: 10, Act: Softmax},
		},
	}
}

// Incep2 is a two-branch inception-style CIFAR-10 network: a pooled
// stem forks into a 1×1 and a 3×3 branch whose outputs rejoin by
// channel concatenation — six weighted layers. It exercises the
// fork/concat-join paths of the graph partition search.
func Incep2() *Model {
	return &Model{
		Name:  "Incep-2",
		Input: CIFARInput,
		Layers: []Layer{
			{Name: "stem", Type: Conv, K: 3, Pad: 1, Cout: 32, Pool: 2, Act: ReLU},
			{Name: "b1x1", Type: Conv, K: 1, Cout: 24, Act: ReLU, Inputs: []string{"stem"}},
			{Name: "b3x3", Type: Conv, K: 3, Pad: 1, Cout: 40, Act: ReLU, Inputs: []string{"stem"}},
			{Name: "merge", Type: Conv, K: 3, Pad: 1, Cout: 64, Pool: 2, Act: ReLU,
				Inputs: []string{"b1x1", "b3x3"}},
			FCLayer("fc1", 128),
			{Name: "fc2", Type: FC, Cout: 10, Act: Softmax},
		},
	}
}

// BranchedZoo returns the branched (DAG) workload networks — the
// residual SRES-8 and the two-branch Incep-2. They are deliberately
// kept out of Zoo so the paper's ten-network figures stay exactly the
// paper's; ByName resolves both sets.
func BranchedZoo() []*Model {
	return []*Model{SRES8(), Incep2()}
}

// ByName returns the zoo or branched-zoo network with the given name.
func ByName(name string) (*Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	for _, m := range BranchedZoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("%w: unknown zoo model %q", ErrModel, name)
}

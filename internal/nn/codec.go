package nn

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrCodec reports malformed JSON model input.
var ErrCodec = errors.New("nn: invalid model JSON")

// Decode limits: a request must not smuggle in an absurd network. The
// zoo's largest member (VGG-E) has 19 weighted layers; user networks
// get two orders of magnitude of headroom.
const (
	// MaxJSONLayers bounds the number of weighted layers a decoded
	// model may declare.
	MaxJSONLayers = 1024
	// MaxJSONBytes bounds the serialized model size DecodeModel accepts.
	MaxJSONBytes = 1 << 20
)

// layerJSON is the wire form of one weighted layer. Field order is the
// canonical serialization order. Inputs names the producer layers
// (absent = the previous layer; "input" = the model input) and join
// selects how several inputs combine ("concat" default, "add").
type layerJSON struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"`
	Inputs []string `json:"inputs,omitempty"`
	Join   string   `json:"join,omitempty"`
	K      int      `json:"k,omitempty"`
	Stride int      `json:"stride,omitempty"`
	Pad    int      `json:"pad,omitempty"`
	Cout   int      `json:"cout"`
	Pool   int      `json:"pool,omitempty"`
	Act    string   `json:"act,omitempty"`
}

// inputJSON is the wire form of the input geometry.
type inputJSON struct {
	H int `json:"h"`
	W int `json:"w"`
	C int `json:"c"`
}

// modelJSON is the wire form of a model.
type modelJSON struct {
	Name   string      `json:"name"`
	Input  inputJSON   `json:"input"`
	Layers []layerJSON `json:"layers"`
}

// parseLayerType maps the wire spelling to a LayerType.
func parseLayerType(s string) (LayerType, error) {
	switch strings.ToLower(s) {
	case "conv":
		return Conv, nil
	case "fc":
		return FC, nil
	default:
		return 0, fmt.Errorf("%w: unknown layer type %q (conv, fc)", ErrCodec, s)
	}
}

// parseJoin maps the wire spelling to a JoinOp. The empty string
// selects Concat, the default.
func parseJoin(s string) (JoinOp, error) {
	switch strings.ToLower(s) {
	case "", "concat":
		return Concat, nil
	case "add":
		return Add, nil
	default:
		return 0, fmt.Errorf("%w: unknown join %q (concat, add)", ErrCodec, s)
	}
}

// parseActivation maps the wire spelling to an Activation. The empty
// string selects ReLU, the zoo default.
func parseActivation(s string) (Activation, error) {
	switch strings.ToLower(s) {
	case "", "relu":
		return ReLU, nil
	case "sigmoid":
		return Sigmoid, nil
	case "tanh":
		return Tanh, nil
	case "softmax":
		return Softmax, nil
	case "none":
		return NoAct, nil
	default:
		return 0, fmt.Errorf("%w: unknown activation %q (relu, sigmoid, tanh, softmax, none)", ErrCodec, s)
	}
}

// DecodeModel parses a strict JSON network description and validates
// it. Unknown fields, trailing data, oversized payloads and any model
// that fails Model.Validate are rejected; a nil error therefore
// guarantees a model the planner and simulator accept.
func DecodeModel(data []byte) (*Model, error) {
	if len(data) > MaxJSONBytes {
		return nil, fmt.Errorf("%w: %d bytes exceeds the %d-byte limit", ErrCodec, len(data), MaxJSONBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var mj modelJSON
	if err := dec.Decode(&mj); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	// Reject trailing garbage after the single JSON value.
	if err := trailingData(dec); err != nil {
		return nil, err
	}
	return modelFromJSON(&mj)
}

// trailingData errors unless the decoder has consumed the whole input
// (modulo trailing whitespace).
func trailingData(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("%w: trailing data after model object", ErrCodec)
	}
	return nil
}

// modelFromJSON converts and validates the wire form.
func modelFromJSON(mj *modelJSON) (*Model, error) {
	if len(mj.Layers) > MaxJSONLayers {
		return nil, fmt.Errorf("%w: %d layers exceeds the %d-layer limit", ErrCodec, len(mj.Layers), MaxJSONLayers)
	}
	m := &Model{
		Name:  mj.Name,
		Input: Input{H: mj.Input.H, W: mj.Input.W, C: mj.Input.C},
	}
	m.Layers = make([]Layer, 0, len(mj.Layers))
	for i, lj := range mj.Layers {
		t, err := parseLayerType(lj.Type)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%q): %w", i, lj.Name, err)
		}
		act, err := parseActivation(lj.Act)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%q): %w", i, lj.Name, err)
		}
		join, err := parseJoin(lj.Join)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%q): %w", i, lj.Name, err)
		}
		inputs := lj.Inputs
		if len(inputs) == 0 {
			inputs = nil // an explicit empty list means the default
		}
		m.Layers = append(m.Layers, Layer{
			Name: lj.Name, Type: t,
			Inputs: inputs, Join: join,
			K: lj.K, Stride: lj.Stride, Pad: lj.Pad,
			Cout: lj.Cout, Pool: lj.Pool, Act: act,
		})
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	return m, nil
}

// EncodeModel renders the model in canonical JSON: fixed field order,
// no insignificant whitespace, defaults normalized (stride and pool
// unset or 1 are omitted, ReLU is omitted, inputs that resolve to the
// implicit previous layer are omitted along with a concat join). Two
// models with identical semantics therefore serialize to identical
// bytes — the property the service's request hash relies on. The model
// must be valid.
func EncodeModel(m *Model) ([]byte, error) {
	preds, err := m.validatePreds()
	if err != nil {
		return nil, err
	}
	mj := modelJSON{
		Name:   m.Name,
		Input:  inputJSON{H: m.Input.H, W: m.Input.W, C: m.Input.C},
		Layers: make([]layerJSON, 0, len(m.Layers)),
	}
	for i, l := range m.Layers {
		lj := layerJSON{Name: l.Name, Type: l.Type.String(), Cout: l.Cout}
		if !DefaultPreds(i, preds[i]) {
			lj.Inputs = make([]string, 0, len(preds[i]))
			for _, p := range preds[i] {
				if p < 0 {
					lj.Inputs = append(lj.Inputs, InputName)
				} else {
					lj.Inputs = append(lj.Inputs, m.Layers[p].Name)
				}
			}
			if len(preds[i]) >= 2 && l.Join != Concat {
				lj.Join = l.Join.String()
			}
		}
		if l.Type == Conv {
			lj.K = l.K
			if s := l.stride(); s != 1 {
				lj.Stride = s
			}
			lj.Pad = l.Pad
		}
		if p := l.pool(); p != 1 {
			lj.Pool = p
		}
		if l.Act != ReLU {
			lj.Act = l.Act.String()
		}
		mj.Layers = append(mj.Layers, lj)
	}
	return json.Marshal(&mj)
}

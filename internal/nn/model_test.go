package nn

import (
	"errors"
	"testing"
)

func TestInputValidate(t *testing.T) {
	if err := (Input{H: 0, W: 1, C: 1}).Validate(); !errors.Is(err, ErrModel) {
		t.Errorf("zero-height input accepted: %v", err)
	}
	if err := MNISTInput.Validate(); err != nil {
		t.Errorf("MNIST input rejected: %v", err)
	}
}

func TestLayerValidate(t *testing.T) {
	tests := []struct {
		name string
		l    Layer
		ok   bool
	}{
		{"good conv", ConvLayer("c", 3, 64), true},
		{"good fc", FCLayer("f", 100), true},
		{"zero cout", Layer{Name: "x", Type: Conv, K: 3}, false},
		{"zero k conv", Layer{Name: "x", Type: Conv, Cout: 8}, false},
		{"negative pad", Layer{Name: "x", Type: Conv, K: 3, Cout: 8, Pad: -1}, false},
		{"fc with k", Layer{Name: "x", Type: FC, K: 3, Cout: 8}, false},
		{"negative pool", Layer{Name: "x", Type: FC, Cout: 8, Pool: -2}, false},
		{"bad type", Layer{Name: "x", Type: LayerType(9), Cout: 8}, false},
	}
	for _, tt := range tests {
		err := tt.l.Validate()
		if tt.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tt.name, err)
		}
		if !tt.ok && !errors.Is(err, ErrModel) {
			t.Errorf("%s: want ErrModel, got %v", tt.name, err)
		}
	}
}

func TestModelValidate(t *testing.T) {
	m := &Model{Name: "bad", Input: MNISTInput, Layers: []Layer{
		FCLayer("fc1", 10),
		ConvLayer("conv-after-fc", 3, 8),
	}}
	if err := m.Validate(); !errors.Is(err, ErrModel) {
		t.Errorf("conv-after-fc accepted: %v", err)
	}
	if err := (&Model{Name: "empty", Input: MNISTInput}).Validate(); !errors.Is(err, ErrModel) {
		t.Errorf("empty model accepted: %v", err)
	}
	var nilModel *Model
	if err := nilModel.Validate(); !errors.Is(err, ErrModel) {
		t.Errorf("nil model accepted: %v", err)
	}
	if err := (&Model{Input: MNISTInput, Layers: []Layer{FCLayer("f", 1)}}).Validate(); !errors.Is(err, ErrModel) {
		t.Errorf("nameless model accepted: %v", err)
	}
}

func TestShapesBadBatch(t *testing.T) {
	if _, err := SFC().Shapes(0); !errors.Is(err, ErrModel) {
		t.Errorf("batch=0 accepted: %v", err)
	}
	if _, err := SFC().Shapes(-3); !errors.Is(err, ErrModel) {
		t.Errorf("batch<0 accepted: %v", err)
	}
}

func TestShapesCollapse(t *testing.T) {
	// A conv that is larger than its input must fail shape inference.
	m := &Model{Name: "collapse", Input: Input{H: 4, W: 4, C: 1},
		Layers: []Layer{ConvLayer("huge", 9, 8)}}
	if _, err := m.Shapes(1); !errors.Is(err, ErrModel) {
		t.Errorf("oversized conv accepted: %v", err)
	}
	// Pooling that collapses the map must fail too.
	m2 := &Model{Name: "pool-collapse", Input: Input{H: 4, W: 4, C: 1},
		Layers: []Layer{ConvPoolLayer("c", 3, 8, 4)}}
	if _, err := m2.Shapes(1); !errors.Is(err, ErrModel) {
		t.Errorf("collapsing pool accepted: %v", err)
	}
}

// TestLenetShapes pins the classic Lenet geometry end to end.
func TestLenetShapes(t *testing.T) {
	shapes, err := LenetC().Shapes(256)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	if len(shapes) != 4 {
		t.Fatalf("Lenet-c has %d weighted layers, want 4", len(shapes))
	}
	// conv1: 28 → 24, pool → 12
	if s := shapes[0]; s.Out.H != 24 || s.Carried.H != 12 || s.Out.C != 20 {
		t.Errorf("conv1 shapes: out %v carried %v", s.Out, s.Carried)
	}
	// conv2: 12 → 8, pool → 4
	if s := shapes[1]; s.Out.H != 8 || s.Carried.H != 4 || s.Out.C != 50 {
		t.Errorf("conv2 shapes: out %v carried %v", s.Out, s.Carried)
	}
	// fc1 consumes the flattened 4·4·50 = 800 vector.
	if s := shapes[2]; s.Kernel.Cin != 800 || s.Kernel.Cout != 500 {
		t.Errorf("fc1 kernel: %v", s.Kernel)
	}
	if s := shapes[3]; s.Kernel.Cin != 500 || s.Kernel.Cout != 10 {
		t.Errorf("fc2 kernel: %v", s.Kernel)
	}
}

func TestSCONVShapes(t *testing.T) {
	shapes, err := SCONV().Shapes(32)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	want := []struct{ h, c int }{{24, 20}, {20, 50}, {6, 50}, {2, 10}}
	for i, w := range want {
		if shapes[i].Out.H != w.h || shapes[i].Out.C != w.c {
			t.Errorf("SCONV layer %d out = %v, want H=%d C=%d", i, shapes[i].Out, w.h, w.c)
		}
	}
	// Final pooled map is 1×1×10: a valid 10-class head.
	last := shapes[3].Carried
	if last.H != 1 || last.W != 1 || last.C != 10 {
		t.Errorf("SCONV head = %v, want 1×1×10", last)
	}
}

func TestAlexNetShapes(t *testing.T) {
	shapes, err := AlexNet().Shapes(256)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	if len(shapes) != 8 {
		t.Fatalf("AlexNet has %d weighted layers, want 8", len(shapes))
	}
	if s := shapes[0]; s.Out.H != 55 || s.Carried.H != 27 {
		t.Errorf("conv1: out %v carried %v", s.Out, s.Carried)
	}
	if s := shapes[4]; s.Carried.H != 6 || s.Carried.C != 256 {
		t.Errorf("conv5 carried: %v", s.Carried)
	}
	if s := shapes[5]; s.Kernel.Cin != 9216 {
		t.Errorf("fc1 Cin = %d, want 9216", s.Kernel.Cin)
	}
}

func TestVGGShapes(t *testing.T) {
	counts := map[string]int{
		"VGG-A": 11, "VGG-B": 13, "VGG-C": 16, "VGG-D": 16, "VGG-E": 19,
	}
	for name, want := range counts {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if got := m.NumWeighted(); got != want {
			t.Errorf("%s weighted layers = %d, want %d", name, got, want)
		}
		shapes, err := m.Shapes(2)
		if err != nil {
			t.Fatalf("%s Shapes: %v", name, err)
		}
		// All VGGs end their conv stack at 7×7×512 and fc1 consumes 25088.
		var fc1 *LayerShapes
		for i := range shapes {
			if shapes[i].Layer.Name == "fc1" {
				fc1 = &shapes[i]
				break
			}
		}
		if fc1 == nil {
			t.Fatalf("%s has no fc1", name)
		}
		if fc1.Kernel.Cin != 25088 {
			t.Errorf("%s fc1 Cin = %d, want 25088", name, fc1.Kernel.Cin)
		}
	}
	// VGG-D (VGG-16) parameter count is the well-known ≈138M.
	p, err := VGGD().Params(1)
	if err != nil {
		t.Fatalf("Params: %v", err)
	}
	if p < 135e6 || p > 141e6 {
		t.Errorf("VGG-D params = %d, want ≈138M", p)
	}
	// VGG-C's 1×1 stage tails must really be 1×1.
	cshapes, _ := VGGC().Shapes(1)
	for _, s := range cshapes {
		switch s.Layer.Name {
		case "conv3_3", "conv4_3", "conv5_3":
			if s.Kernel.K != 1 {
				t.Errorf("VGG-C %s K = %d, want 1", s.Layer.Name, s.Kernel.K)
			}
		}
	}
}

func TestZooValid(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 10 {
		t.Fatalf("zoo size = %d, want 10", len(zoo))
	}
	minL, maxL := 1<<30, 0
	for _, m := range zoo {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
		if _, err := m.Shapes(256); err != nil {
			t.Errorf("%s shapes at B=256: %v", m.Name, err)
		}
		if n := m.NumWeighted(); n < minL {
			minL = n
		} else if n > maxL {
			maxL = n
		}
		if m.String() == "" {
			t.Errorf("%s has empty String()", m.Name)
		}
	}
	// Paper: "the number of weighted layers of these models range from
	// four to nineteen".
	if minL != 4 || maxL != 19 {
		t.Errorf("weighted layer range = [%d,%d], want [4,19]", minL, maxL)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("ResNet-50"); !errors.Is(err, ErrModel) {
		t.Errorf("unknown model lookup: %v", err)
	}
}

func TestSFCTable3(t *testing.T) {
	// Table 3: SFC is 784-8192-8192-8192-10.
	shapes, err := SFC().Shapes(256)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	dims := []struct{ cin, cout int }{
		{784, 8192}, {8192, 8192}, {8192, 8192}, {8192, 10},
	}
	for i, d := range dims {
		k := shapes[i].Kernel
		if k.Cin != d.cin || k.Cout != d.cout {
			t.Errorf("SFC layer %d kernel = %v, want %d×%d", i, k, d.cin, d.cout)
		}
		if !k.FC {
			t.Errorf("SFC layer %d is not fc", i)
		}
	}
}

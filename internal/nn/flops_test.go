package nn

import (
	"testing"
	"testing/quick"
)

func TestMACsFC(t *testing.T) {
	shapes, err := SFC().Shapes(256)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	// fc1: B·Cin·Cout = 256·784·8192.
	want := int64(256) * 784 * 8192
	if got := shapes[0].MACs(Forward); got != want {
		t.Errorf("fc1 forward MACs = %d, want %d", got, want)
	}
	// All phases of a layer have identical MAC counts (Figure 1).
	for _, p := range Phases {
		if got := shapes[0].MACs(p); got != want {
			t.Errorf("fc1 %v MACs = %d, want %d", p, got, want)
		}
	}
	if got := shapes[0].StepMACs(); got != 3*want {
		t.Errorf("fc1 StepMACs = %d, want %d", got, 3*want)
	}
}

func TestMACsConv(t *testing.T) {
	shapes, err := LenetC().Shapes(1)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	// conv1: 24·24·20·5·5·1 MACs per image.
	want := int64(24*24*20) * 25
	if got := shapes[0].MACs(Forward); got != want {
		t.Errorf("conv1 MACs = %d, want %d", got, want)
	}
}

func TestAncillaryOps(t *testing.T) {
	shapes, err := LenetC().Shapes(2)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	c1 := shapes[0]
	if got := c1.ActOps(); got != c1.Out.Elems() {
		t.Errorf("ActOps = %d, want %d", got, c1.Out.Elems())
	}
	// conv1 pools 2×2: 4 comparisons per carried element.
	if got := c1.PoolOps(); got != c1.Carried.Elems()*4 {
		t.Errorf("PoolOps = %d, want %d", got, c1.Carried.Elems()*4)
	}
	fc2 := shapes[3]
	if got := fc2.PoolOps(); got != 0 {
		t.Errorf("fc PoolOps = %d, want 0", got)
	}
	if got := fc2.UpdateOps(); got != fc2.Kernel.Elems() {
		t.Errorf("UpdateOps = %d, want kernel size", got)
	}
	noAct := LayerShapes{Layer: Layer{Act: NoAct}, Out: c1.Out}
	if got := noAct.ActOps(); got != 0 {
		t.Errorf("NoAct ActOps = %d, want 0", got)
	}
}

// Property: MACs scale linearly in the batch size for every zoo network.
func TestMACsBatchLinearity(t *testing.T) {
	models := Zoo()
	prop := func(mi uint8, b uint8) bool {
		m := models[int(mi)%len(models)]
		batch := int(b%16) + 1
		s1, err := m.Shapes(batch)
		if err != nil {
			return false
		}
		s2, err := m.Shapes(2 * batch)
		if err != nil {
			return false
		}
		for i := range s1 {
			if 2*s1[i].MACs(Forward) != s2[i].MACs(Forward) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPhaseString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" || Gradient.String() != "gradient" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "phase?" {
		t.Error("unknown phase name wrong")
	}
	if LayerType(0).String() != "conv" || FC.String() != "fc" {
		t.Error("layer type names wrong")
	}
	for _, a := range []Activation{ReLU, Sigmoid, Tanh, Softmax, NoAct} {
		if a.String() == "" {
			t.Errorf("activation %d has empty name", a)
		}
	}
}

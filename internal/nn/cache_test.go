package nn

import (
	"reflect"
	"sync"
	"testing"
)

func TestCachedShapesMatchesShapes(t *testing.T) {
	m := VGGA()
	want, err := m.Shapes(256)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CachedShapes(256)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("CachedShapes differs from Shapes")
	}
	again, err := m.CachedShapes(256)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &again[0] {
		t.Error("second CachedShapes call did not hit the cache")
	}
	other, err := m.CachedShapes(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != len(got) || other[0].In.B != 128 {
		t.Errorf("batch-128 shapes wrong: B=%d", other[0].In.B)
	}
}

func TestCachedShapesErrorNotCached(t *testing.T) {
	m := VGGA()
	if _, err := m.CachedShapes(0); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := m.CachedShapes(256); err != nil {
		t.Fatalf("valid batch rejected after error: %v", err)
	}
}

func TestCachedShapesConcurrent(t *testing.T) {
	m := LenetC()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 1; b <= 32; b++ {
				if _, err := m.CachedShapes(b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestShapeCacheEviction(t *testing.T) {
	// Push far past the limit with churning instances; the cache must
	// stay correct (eviction only drops memoization, never results).
	for i := 0; i < shapeCacheLimit+64; i++ {
		m := LenetC()
		s, err := m.CachedShapes(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != 4 {
			t.Fatalf("iteration %d: %d shapes", i, len(s))
		}
	}
	if n := shapeCacheSize.Load(); n > shapeCacheLimit {
		t.Errorf("cache size counter %d exceeds limit %d", n, shapeCacheLimit)
	}
}

package nn

import (
	"reflect"
	"sync"
	"testing"
)

func TestCachedShapesMatchesShapes(t *testing.T) {
	m := VGGA()
	want, err := m.Shapes(256)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.CachedShapes(256)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("CachedShapes differs from Shapes")
	}
	again, err := m.CachedShapes(256)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &again[0] {
		t.Error("second CachedShapes call did not hit the cache")
	}
	other, err := m.CachedShapes(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != len(got) || other[0].In.B != 128 {
		t.Errorf("batch-128 shapes wrong: B=%d", other[0].In.B)
	}
}

func TestCachedShapesErrorNotCached(t *testing.T) {
	m := VGGA()
	if _, err := m.CachedShapes(0); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := m.CachedShapes(256); err != nil {
		t.Fatalf("valid batch rejected after error: %v", err)
	}
}

func TestCachedShapesConcurrent(t *testing.T) {
	m := LenetC()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 1; b <= 32; b++ {
				if _, err := m.CachedShapes(b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestShapeCacheEviction(t *testing.T) {
	// Push far past the limit with churning instances; the cache must
	// stay correct (eviction only drops memoization, never results).
	for i := 0; i < shapeCacheLimit+64; i++ {
		m := LenetC()
		s, err := m.CachedShapes(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != 4 {
			t.Fatalf("iteration %d: %d shapes", i, len(s))
		}
	}
	if n := ShapeCacheLen(); n > shapeCacheLimit {
		t.Errorf("cache size %d exceeds limit %d", n, shapeCacheLimit)
	}
}

// TestShapeCacheHotEntriesSurviveChurn is the regression test for the
// whole-map flush the cache used to perform when full: a pinned zoo's
// hot entries must survive hostile all-unique-model churn far past the
// limit, as long as they stay hot. Survival is observed structurally —
// a hit returns the identical cached slice, a recompute does not.
func TestShapeCacheHotEntriesSurviveChurn(t *testing.T) {
	zoo := Zoo()
	pinned := make([][]LayerShapes, len(zoo))
	for i, m := range zoo {
		s, err := m.CachedShapes(7)
		if err != nil {
			t.Fatal(err)
		}
		pinned[i] = s
	}
	// Churn 3x the limit in unique instances, touching the zoo entries
	// every touchEvery insertions (any cadence under the limit keeps
	// them hot). The historical flush dropped the zoo at every limit
	// crossing regardless of how hot it was.
	const touchEvery = 256
	for i := 0; i < 3*shapeCacheLimit; i++ {
		m := LenetC()
		if _, err := m.CachedShapes(8); err != nil {
			t.Fatal(err)
		}
		if i%touchEvery == 0 {
			for j, zm := range zoo {
				s, err := zm.CachedShapes(7)
				if err != nil {
					t.Fatal(err)
				}
				if &s[0] != &pinned[j][0] {
					t.Fatalf("churn iteration %d evicted hot zoo entry %s", i, zm.Name)
				}
			}
		}
	}
	if n := ShapeCacheLen(); n > shapeCacheLimit {
		t.Errorf("cache size %d exceeds limit %d", n, shapeCacheLimit)
	}
}

// TestShapeCacheBoundExactUnderRace hammers the cache from many
// goroutines with all-unique models and checks the bound is exact at
// every observation point — the counter-drift regression (a flush's
// reset racing concurrent increments) cannot recur when the LRU is the
// single source of truth. Run with -race for the full guarantee.
func TestShapeCacheBoundExactUnderRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2*shapeCacheLimit/8; i++ {
				m := LenetC()
				if _, err := m.CachedShapes(8); err != nil {
					t.Error(err)
					return
				}
				if n := ShapeCacheLen(); n > shapeCacheLimit {
					t.Errorf("cache size %d exceeds limit %d", n, shapeCacheLimit)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDropCachedShapes verifies per-model removal: only the dropped
// model's entries (every batch size) leave the cache.
func TestDropCachedShapes(t *testing.T) {
	a, b := LenetC(), CifarC()
	for _, batch := range []int{3, 5, 9} {
		if _, err := a.CachedShapes(batch); err != nil {
			t.Fatal(err)
		}
	}
	sb, err := b.CachedShapes(3)
	if err != nil {
		t.Fatal(err)
	}
	if n := DropCachedShapes(a); n != 3 {
		t.Fatalf("DropCachedShapes dropped %d entries, want 3", n)
	}
	if n := DropCachedShapes(a); n != 0 {
		t.Fatalf("second drop removed %d entries, want 0", n)
	}
	again, err := b.CachedShapes(3)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &sb[0] {
		t.Error("dropping model a evicted model b's entry")
	}
}

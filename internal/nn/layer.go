// Package nn provides the deep-neural-network substrate for the HyPar
// reproduction: weighted-layer specifications, shape inference over a
// model, MAC/FLOP accounting for the three training phases, and the
// paper's ten-network model zoo (SFC, SCONV, Lenet-c, Cifar-c, AlexNet
// and VGG-A/B/C/D/E).
//
// Only weighted layers (convolutional and fully-connected) participate in
// the parallelism decision; pooling and activation are folded into the
// weighted layer that precedes them, exactly as the paper's Algorithm 1
// input ("layer type: conv or fc, kernel sizes, parameter for pooling,
// activation function") prescribes.
package nn

import (
	"errors"
	"fmt"
)

// ErrModel reports an invalid model or layer specification.
var ErrModel = errors.New("nn: invalid model")

// LayerType distinguishes the two weighted layer kinds the paper's
// partition algorithm handles.
type LayerType int

const (
	// Conv is a convolutional layer.
	Conv LayerType = iota
	// FC is a fully-connected layer.
	FC
)

// String implements fmt.Stringer.
func (t LayerType) String() string {
	switch t {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Activation identifies the element-wise non-linearity applied after a
// weighted layer. Activations never incur inter-accelerator
// communication (paper §3.1.1) but contribute to the energy model.
type Activation int

const (
	// ReLU rectified linear unit (default for all zoo networks).
	ReLU Activation = iota
	// Sigmoid logistic activation.
	Sigmoid
	// Tanh hyperbolic tangent.
	Tanh
	// Softmax is used by final classifier layers.
	Softmax
	// NoAct disables the non-linearity.
	NoAct
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case Softmax:
		return "softmax"
	case NoAct:
		return "none"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// JoinOp selects how a layer with several inputs combines its
// producers' feature maps before the weighted op. Joins are folded into
// the consuming layer, like pooling and activation: they never incur
// inter-accelerator communication by themselves — what they do incur is
// the Table 2 inter-layer conversion on every join edge whose producer
// and consumer disagree on parallelism.
type JoinOp int

const (
	// Concat concatenates the producer feature maps: along channels for
	// a convolutional consumer (equal spatial extents required), along
	// the flattened neuron vector for a fully-connected consumer.
	Concat JoinOp = iota
	// Add element-wise adds identically shaped producer maps — the
	// residual skip connection.
	Add
)

// String implements fmt.Stringer using the wire spellings.
func (j JoinOp) String() string {
	switch j {
	case Concat:
		return "concat"
	case Add:
		return "add"
	default:
		return fmt.Sprintf("JoinOp(%d)", int(j))
	}
}

// InputName is the reserved input reference that names the model's
// input tensor in Layer.Inputs; no weighted layer may carry this name.
const InputName = "input"

// Layer is the hyper-parameter record HP[l] of Algorithm 1: one weighted
// layer together with its folded-in pooling and activation, and — for
// branched (DAG) models — the names of the layers it consumes.
type Layer struct {
	Name string
	Type LayerType

	// Inputs names the layers whose outputs this layer consumes, in
	// channel order; the reserved name "input" refers to the model
	// input. Empty means the previous layer in declaration order (the
	// model input for the first layer) — every linear chain therefore
	// needs no Inputs at all. A layer naming the same producer as a
	// sibling forks that producer's feature map; a layer with several
	// inputs joins them per Join.
	Inputs []string

	// Join combines multiple Inputs (Concat by default); meaningless —
	// and rejected when set to anything but Concat — on layers with
	// fewer than two inputs.
	Join JoinOp

	// Convolution geometry (ignored for FC layers).
	K      int // kernel height/width
	Stride int // convolution stride (defaults to 1)
	Pad    int // symmetric zero padding

	// Cout is the number of output channels (conv) or neurons (fc).
	Cout int

	// Pool is the edge of the non-overlapping max-pooling window applied
	// after the activation; 1 (or 0) means no pooling.
	Pool int

	Act Activation
}

// Validate checks the layer's hyper-parameters.
func (l Layer) Validate() error {
	if l.Cout <= 0 {
		return fmt.Errorf("%w: layer %q has Cout=%d", ErrModel, l.Name, l.Cout)
	}
	switch l.Type {
	case Conv:
		if l.K <= 0 {
			return fmt.Errorf("%w: conv layer %q has K=%d", ErrModel, l.Name, l.K)
		}
		if l.Stride < 0 || l.Pad < 0 {
			return fmt.Errorf("%w: conv layer %q has stride=%d pad=%d", ErrModel, l.Name, l.Stride, l.Pad)
		}
	case FC:
		if l.K > 1 {
			return fmt.Errorf("%w: fc layer %q has K=%d", ErrModel, l.Name, l.K)
		}
	default:
		return fmt.Errorf("%w: layer %q has unknown type %v", ErrModel, l.Name, l.Type)
	}
	if l.Pool < 0 {
		return fmt.Errorf("%w: layer %q has Pool=%d", ErrModel, l.Name, l.Pool)
	}
	switch l.Join {
	case Concat, Add:
	default:
		return fmt.Errorf("%w: layer %q has unknown join %v", ErrModel, l.Name, l.Join)
	}
	if l.Join != Concat && len(l.Inputs) < 2 {
		return fmt.Errorf("%w: layer %q joins with %v but has %d inputs", ErrModel, l.Name, l.Join, len(l.Inputs))
	}
	for _, in := range l.Inputs {
		if in == "" {
			return fmt.Errorf("%w: layer %q has an empty input name", ErrModel, l.Name)
		}
	}
	return nil
}

// stride returns the effective stride (unset means 1).
func (l Layer) stride() int {
	if l.Stride <= 0 {
		return 1
	}
	return l.Stride
}

// pool returns the effective pooling window (unset means 1 = none).
func (l Layer) pool() int {
	if l.Pool <= 0 {
		return 1
	}
	return l.Pool
}

// ConvLayer builds a stride-1 convolutional layer.
func ConvLayer(name string, k, cout int) Layer {
	return Layer{Name: name, Type: Conv, K: k, Cout: cout, Act: ReLU}
}

// ConvPoolLayer builds a stride-1 convolutional layer followed by
// non-overlapping max pooling with the given window.
func ConvPoolLayer(name string, k, cout, pool int) Layer {
	return Layer{Name: name, Type: Conv, K: k, Cout: cout, Pool: pool, Act: ReLU}
}

// FCLayer builds a fully-connected layer.
func FCLayer(name string, cout int) Layer {
	return Layer{Name: name, Type: FC, Cout: cout, Act: ReLU}
}

package nn

import (
	"bytes"
	"testing"
)

// FuzzDecodeModel hammers the JSON model codec: arbitrary bytes must
// either decode to a fully valid model (round-trippable through the
// canonical encoding) or return an error — never panic. The checked-in
// corpus under testdata/fuzz/FuzzDecodeModel seeds the interesting
// shapes; `go test -fuzz=FuzzDecodeModel ./internal/nn` explores from
// there.
func FuzzDecodeModel(f *testing.F) {
	f.Add([]byte(`{"name":"t","input":{"h":8,"w":8,"c":3},"layers":[{"name":"c1","type":"conv","k":3,"pad":1,"cout":4,"pool":2},{"name":"f1","type":"fc","cout":10,"act":"softmax"}]}`))
	f.Add([]byte(`{"name":"fc-only","input":{"h":1,"w":1,"c":16},"layers":[{"name":"f","type":"fc","cout":1}]}`))
	f.Add([]byte(`{"name":"","input":{},"layers":[]}`))
	f.Add([]byte(`{"name":"x","input":{"h":-1,"w":0,"c":9e99},"layers":[{"type":"conv"}]}`))
	f.Add([]byte(`{"unknown":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"name":"x","input":{"h":8,"w":8,"c":3},"layers":[{"name":"l","type":"fc","cout":10}]}trailing`))
	// Branched (DAG) models: a concat fork/join, a residual add join,
	// and malformed graph wirings (forward reference, reserved name).
	f.Add([]byte(`{"name":"g","input":{"h":8,"w":8,"c":3},"layers":[{"name":"a","type":"conv","k":3,"pad":1,"cout":4},{"name":"b1","type":"conv","k":1,"cout":2,"inputs":["a"]},{"name":"b2","type":"conv","k":3,"pad":1,"cout":2,"inputs":["a"]},{"name":"c","type":"conv","k":3,"pad":1,"cout":4,"inputs":["b1","b2"]},{"name":"f","type":"fc","cout":10}]}`))
	f.Add([]byte(`{"name":"r","input":{"h":8,"w":8,"c":3},"layers":[{"name":"a","type":"conv","k":3,"pad":1,"cout":4},{"name":"b","type":"conv","k":3,"pad":1,"cout":4},{"name":"c","type":"conv","k":3,"pad":1,"cout":4,"inputs":["a","b"],"join":"add"},{"name":"f","type":"fc","cout":10}]}`))
	f.Add([]byte(`{"name":"bad","input":{"h":8,"w":8,"c":3},"layers":[{"name":"a","type":"fc","cout":4,"inputs":["z"]},{"name":"z","type":"fc","cout":4}]}`))
	f.Add([]byte(`{"name":"bad2","input":{"h":8,"w":8,"c":3},"layers":[{"name":"input","type":"fc","cout":4}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeModel(data)
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil model")
			}
			return
		}
		// A decode success must be a model the whole pipeline accepts.
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded model fails validation: %v", err)
		}
		enc, err := EncodeModel(m)
		if err != nil {
			t.Fatalf("decoded model fails canonical encoding: %v", err)
		}
		m2, err := DecodeModel(enc)
		if err != nil {
			t.Fatalf("canonical form does not re-decode: %v\n%s", err, enc)
		}
		enc2, err := EncodeModel(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n%s\n%s", enc, enc2)
		}
	})
}

// FuzzLayerValidate hammers Layer.Validate over arbitrary
// hyper-parameters: it must classify, never panic, and an accepted
// conv layer must expose sane effective stride/pool.
func FuzzLayerValidate(f *testing.F) {
	f.Add("conv1", int8(0), 3, 1, 1, 64, 2, int8(0))
	f.Add("fc1", int8(1), 0, 0, 0, 4096, 0, int8(3))
	f.Add("", int8(2), -1, -1, -1, -1, -1, int8(9))
	f.Add("x", int8(0), 0, 0, 0, 0, 0, int8(0))
	f.Fuzz(func(t *testing.T, name string, typ int8, k, stride, pad, cout, pool int, act int8) {
		l := Layer{
			Name: name, Type: LayerType(typ),
			K: k, Stride: stride, Pad: pad,
			Cout: cout, Pool: pool, Act: Activation(act),
		}
		err := l.Validate()
		_ = l.Type.String()
		_ = l.Act.String()
		if err != nil {
			return
		}
		// Accepted layers must have usable effective geometry.
		if l.stride() < 1 || l.pool() < 1 {
			t.Fatalf("valid layer with stride %d pool %d", l.stride(), l.pool())
		}
		if l.Cout <= 0 {
			t.Fatal("valid layer with non-positive Cout")
		}
		m := &Model{Name: "f", Input: Input{H: 32, W: 32, C: 3}, Layers: []Layer{l}}
		// Shape inference on a valid single-layer model must never
		// panic; it may still error (e.g. conv kernel larger than the
		// padded input), which is fine.
		_, _ = m.Shapes(2)
	})
}

// Package comm implements HyPar's communication model (paper §3): for a
// pair of accelerator groups and a choice of parallelism per weighted
// layer, it answers where communication comes from and how much of it
// there is.
//
// Communication decouples into two parts:
//
//   - intra-layer: the partial-sum exchange marked ⊕ in Figure 1 —
//     gradient aggregation A(∆W_l) under data parallelism, output
//     feature-map aggregation A(F_{l+1}) under model parallelism
//     (Table 1);
//   - inter-layer: the conversion of R tensors of layer l into L tensors
//     of layer l+1 when adjacent layers use different partitionings
//     (Table 2): dp-dp costs 0, dp-mp costs 0.25A(F_{l+1}) +
//     0.25A(E_{l+1}), and mp-mp / mp-dp cost 0.5A(E_{l+1}).
//
// Amounts are expressed in elements for a single direction of the
// exchange. The paper counts both directions when reporting totals
// (§3.4: the 70×100 fc kernel costs 56 KB = 2·70·100·4 B), so
// ExchangedBytes applies the ×2; transfer time over full-duplex links
// uses the one-direction volume.
package comm

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Parallelism is the per-layer, per-level decision variable: lowercase
// "data parallelism" or "model parallelism" in the paper's terminology.
type Parallelism uint8

const (
	// DP replicates the kernel and shards the batch.
	DP Parallelism = iota
	// MP shards the kernel along its input dimension and the input
	// feature map along channels; outputs are produced as partial sums.
	MP
)

// String implements fmt.Stringer using the paper's lowercase notation.
func (p Parallelism) String() string {
	switch p {
	case DP:
		return "dp"
	case MP:
		return "mp"
	default:
		return fmt.Sprintf("Parallelism(%d)", uint8(p))
	}
}

// Mark returns the compact 0/1 notation of Figures 9 and 10
// (0 = data parallelism, 1 = model parallelism).
func (p Parallelism) Mark() byte {
	if p == MP {
		return '1'
	}
	return '0'
}

// LayerAmounts carries the element counts of one weighted layer's
// tensors as seen by one group pair at some hierarchy level, i.e. after
// the sharding of all levels above (tensor.Shard).
//
// FOut is the layer's immediate (pre-pooling) output — the partial sums
// the mp intra-layer exchange aggregates, matching the paper's conv5
// example (A(F_{l+1}) = 32·512·14·14 before the 2×2 pool). FBound and
// EBound are the tensors actually crossing the boundary to the next
// weighted layer (post-pooling), used by the Table 2 inter-layer
// conversions.
type LayerAmounts struct {
	DW     float64 // A(∆W_l): gradient (= kernel) elements
	FOut   float64 // A(F_{l+1}) pre-pool: mp partial-sum exchange volume
	FBound float64 // boundary feature map handed to layer l+1
	EBound float64 // boundary error handed back from layer l+1
}

// Amounts derives the sharded per-pair element counts for a layer from
// its inferred shapes and hierarchical shard state.
func Amounts(s nn.LayerShapes, sh tensor.Shard) LayerAmounts {
	return LayerAmounts{
		DW:     sh.KernelElems(s.Kernel),
		FOut:   sh.OutputElems(s.Out),
		FBound: sh.OutputElems(s.Carried),
		EBound: sh.OutputElems(s.Carried),
	}
}

// Intra returns the one-direction intra-layer communication in elements
// for the given parallelism (Table 1).
func Intra(p Parallelism, a LayerAmounts) float64 {
	switch p {
	case DP:
		return a.DW
	case MP:
		return a.FOut
	default:
		return 0
	}
}

// Inter returns the one-direction inter-layer communication in elements
// for the transition from layer l (prev) to layer l+1 (cur), where a
// holds the amounts of the boundary tensors F_{l+1} and E_{l+1}
// (Table 2).
func Inter(prev, cur Parallelism, a LayerAmounts) float64 {
	return InterF(prev, cur, a) + InterE(prev, cur, a)
}

// InterF returns the feature-map share of the Table 2 transition cost.
// It is incurred during forward propagation, when layer l+1 gathers the
// parts of F_{l+1} its partitioning needs but layer l did not leave on
// this accelerator.
func InterF(prev, cur Parallelism, a LayerAmounts) float64 {
	if prev == DP && cur == MP {
		return 0.25 * a.FBound
	}
	return 0
}

// InterE returns the error share of the Table 2 transition cost. It is
// incurred during error backward propagation, when layer l gathers the
// parts of E_{l+1} produced under layer l+1's partitioning.
func InterE(prev, cur Parallelism, a LayerAmounts) float64 {
	switch {
	case prev == DP && cur == MP:
		return 0.25 * a.EBound
	case prev == MP:
		// mp-mp and mp-dp both cost 0.5·A(E_{l+1}).
		return 0.5 * a.EBound
	default: // dp-dp
		return 0
	}
}

// ExchangedBytes converts a one-direction element amount into the
// paper's both-direction byte count for the given element type.
func ExchangedBytes(elems float64, d tensor.DType) float64 {
	return 2 * elems * float64(d.Size())
}

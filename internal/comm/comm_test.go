package comm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestFCWorkedExample reproduces the paper's §3.1/§3.4 fully-connected
// example: batch 32, 70 inputs, 100 outputs, two accelerators.
// data parallelism exchanges 56 KB, model parallelism 25.6 KB.
func TestFCWorkedExample(t *testing.T) {
	m := &nn.Model{
		Name:   "fc-example",
		Input:  nn.Input{H: 1, W: 1, C: 70},
		Layers: []nn.Layer{nn.FCLayer("fc", 100)},
	}
	shapes, err := m.Shapes(32)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	a := Amounts(shapes[0], tensor.Shard{})

	dpBytes := ExchangedBytes(Intra(DP, a), tensor.Float32)
	if dpBytes != 2*70*100*4 {
		t.Errorf("dp exchange = %g B, want 56000 B", dpBytes)
	}
	mpBytes := ExchangedBytes(Intra(MP, a), tensor.Float32)
	if mpBytes != 2*32*100*4 {
		t.Errorf("mp exchange = %g B, want 25600 B", mpBytes)
	}
	if mpBytes >= dpBytes {
		t.Errorf("fc layer should favor mp: dp=%g mp=%g", dpBytes, mpBytes)
	}
}

// TestConvWorkedExample reproduces the paper's §3.4 convolutional
// example: F_l 12×12×20, W_l [5×5×20]×50, F_{l+1} 8×8×50, batch 32.
// data parallelism exchanges 200 KB, model parallelism 819 KB.
func TestConvWorkedExample(t *testing.T) {
	m := &nn.Model{
		Name:   "conv-example",
		Input:  nn.Input{H: 12, W: 12, C: 20},
		Layers: []nn.Layer{nn.ConvLayer("conv", 5, 50)},
	}
	shapes, err := m.Shapes(32)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	if shapes[0].Out.H != 8 || shapes[0].Out.W != 8 {
		t.Fatalf("conv output = %v, want 8×8×50", shapes[0].Out)
	}
	a := Amounts(shapes[0], tensor.Shard{})

	dpBytes := ExchangedBytes(Intra(DP, a), tensor.Float32)
	if dpBytes != 2*5*5*20*50*4 {
		t.Errorf("dp exchange = %g B, want 200000 B", dpBytes)
	}
	mpBytes := ExchangedBytes(Intra(MP, a), tensor.Float32)
	if mpBytes != 2*32*8*8*50*4 {
		t.Errorf("mp exchange = %g B, want 819200 B", mpBytes)
	}
	if dpBytes >= mpBytes {
		t.Errorf("conv layer should favor dp: dp=%g mp=%g", dpBytes, mpBytes)
	}
}

// TestVGGEConv5Fc3 reproduces the §6.5.2 analysis that explains why the
// "one weird trick" misconfigures VGG-E: for conv5 blocks
// A(∆W) < A(F_{l+1}) at batch 32, and for fc3 the two are equal.
func TestVGGEConv5Fc3(t *testing.T) {
	shapes, err := nn.VGGE().Shapes(32)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	var conv5, fc3 *nn.LayerShapes
	for i := range shapes {
		switch shapes[i].Layer.Name {
		case "conv5_1":
			conv5 = &shapes[i]
		case "fc3":
			fc3 = &shapes[i]
		}
	}
	if conv5 == nil || fc3 == nil {
		t.Fatal("conv5_1 or fc3 not found")
	}
	ac := Amounts(*conv5, tensor.Shard{})
	if ac.DW != 512*512*9 {
		t.Errorf("conv5 A(∆W) = %g, want %d", ac.DW, 512*512*9)
	}
	if ac.FOut != 32*512*14*14 {
		t.Errorf("conv5 A(F) = %g, want %d", ac.FOut, 32*512*14*14)
	}
	if !(ac.DW < ac.FOut) {
		t.Error("paper: conv5 at b32 has A(∆W) < A(F_{l+1})")
	}
	af := Amounts(*fc3, tensor.Shard{})
	// fc3: Ci=4096, Co=1000; at batch 4096 the two amounts tie
	// (§6.5.2 uses B=4096 for the fc comparison).
	shapes4096, err := nn.VGGE().Shapes(4096)
	if err != nil {
		t.Fatalf("Shapes(4096): %v", err)
	}
	af = Amounts(shapes4096[len(shapes4096)-1], tensor.Shard{})
	if af.DW != af.FOut {
		t.Errorf("fc3 at b4096: A(∆W)=%g A(F)=%g, want equal", af.DW, af.FOut)
	}
}

func TestInterTable2(t *testing.T) {
	a := LayerAmounts{FOut: 999, FBound: 100, EBound: 60}
	tests := []struct {
		prev, cur Parallelism
		want      float64
	}{
		{DP, DP, 0},
		{DP, MP, 0.25*100 + 0.25*60},
		{MP, MP, 0.5 * 60},
		{MP, DP, 0.5 * 60},
	}
	for _, tt := range tests {
		if got := Inter(tt.prev, tt.cur, a); got != tt.want {
			t.Errorf("Inter(%v,%v) = %g, want %g", tt.prev, tt.cur, got, tt.want)
		}
	}
}

func TestIntraTable1(t *testing.T) {
	a := LayerAmounts{DW: 7, FOut: 13}
	if got := Intra(DP, a); got != 7 {
		t.Errorf("Intra(dp) = %g, want A(∆W)=7", got)
	}
	if got := Intra(MP, a); got != 13 {
		t.Errorf("Intra(mp) = %g, want A(F)=13", got)
	}
	if got := Intra(Parallelism(9), a); got != 0 {
		t.Errorf("Intra(invalid) = %g, want 0", got)
	}
}

func TestParallelismString(t *testing.T) {
	if DP.String() != "dp" || MP.String() != "mp" {
		t.Error("parallelism names wrong")
	}
	if Parallelism(7).String() != "Parallelism(7)" {
		t.Error("invalid parallelism name wrong")
	}
	if DP.Mark() != '0' || MP.Mark() != '1' {
		t.Error("figure marks wrong")
	}
}

// Property: inference (forward only, no gradient) always favors full
// data parallelism — intra cost is zero only without gradients, and
// dp-dp inter cost is zero (paper §3.3 observation).
func TestDPDPFreeProperty(t *testing.T) {
	prop := func(f, e uint32) bool {
		a := LayerAmounts{FBound: float64(f % 1e6), EBound: float64(e % 1e6)}
		if Inter(DP, DP, a) != 0 {
			return false
		}
		// All other transitions cost at least as much.
		for _, p := range []Parallelism{DP, MP} {
			for _, c := range []Parallelism{DP, MP} {
				if Inter(p, c, a) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: sharded amounts shrink monotonically with extra levels and
// are consistent between Amounts and the underlying shard arithmetic.
func TestAmountsShardProperty(t *testing.T) {
	shapes, err := nn.VGGA().Shapes(256)
	if err != nil {
		t.Fatalf("Shapes: %v", err)
	}
	prop := func(li, dp, mp uint8) bool {
		s := shapes[int(li)%len(shapes)]
		sh := tensor.Shard{DP: int(dp % 5), MP: int(mp % 5)}
		a := Amounts(s, sh)
		base := Amounts(s, tensor.Shard{})
		wantDW := base.DW / math.Pow(2, float64(sh.MP))
		wantF := base.FOut / math.Pow(2, float64(sh.DP))
		return math.Abs(a.DW-wantDW) < 1e-6 && math.Abs(a.FOut-wantF) < 1e-6 &&
			a.EBound == a.FBound && a.FBound <= a.FOut
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

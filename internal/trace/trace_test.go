package trace

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func sample() []Record {
	return []Record{
		{Name: "fwd/conv1", Resource: "array-compute", Start: 0, Finish: 2},
		{Name: "grad-psum/fc1@H4", Resource: "link-H4", Start: 2, Finish: 5},
		{Name: "loss", Resource: "", Start: 2, Finish: 2.5},
	}
}

func TestWriteChrome(t *testing.T) {
	var b strings.Builder
	if err := WriteChrome(&b, sample()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	e := events[1]
	if e["name"] != "grad-psum/fc1@H4" || e["ph"] != "X" {
		t.Errorf("event malformed: %v", e)
	}
	if e["ts"].(float64) != 2e6 || e["dur"].(float64) != 3e6 {
		t.Errorf("timestamps wrong: %v", e)
	}
	// Distinct resources get distinct lanes; unbound tasks use lane 0.
	lanes := map[string]float64{}
	for _, ev := range events {
		lanes[ev["cat"].(string)] = ev["tid"].(float64)
	}
	if lanes[""] != 0 {
		t.Errorf("unbound lane = %g, want 0", lanes[""])
	}
	if lanes["array-compute"] == lanes["link-H4"] {
		t.Error("resources share a lane")
	}
}

func TestWriteChromeInvalid(t *testing.T) {
	bad := []Record{{Name: "x", Start: 5, Finish: 1}}
	var b strings.Builder
	if err := WriteChrome(&b, bad); !errors.Is(err, ErrTrace) {
		t.Errorf("inverted record accepted: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	occ, err := Summarize(sample())
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if len(occ) != 3 {
		t.Fatalf("occupancies = %d", len(occ))
	}
	// Sorted by busy time: link-H4 (3s) first.
	if occ[0].Resource != "link-H4" || occ[0].Busy != 3 || occ[0].Tasks != 1 {
		t.Errorf("top occupancy wrong: %+v", occ[0])
	}
	if _, err := Summarize([]Record{{Start: 2, Finish: 1}}); !errors.Is(err, ErrTrace) {
		t.Errorf("invalid record accepted: %v", err)
	}
}

func TestMakespan(t *testing.T) {
	if m := Makespan(sample()); m != 5 {
		t.Errorf("makespan = %g, want 5", m)
	}
	if m := Makespan(nil); m != 0 {
		t.Errorf("empty makespan = %g", m)
	}
}

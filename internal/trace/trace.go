// Package trace renders simulated training-step schedules as Chrome
// trace-event JSON (load chrome://tracing or https://ui.perfetto.dev)
// and computes per-resource occupancy summaries. It turns the
// event-driven simulator's task timeline into an artifact an
// architecture student can actually look at: which link level is the
// bottleneck, where gradient exchanges serialize, what an overlapped
// schedule would hide.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// ErrTrace reports invalid trace input.
var ErrTrace = errors.New("trace: invalid input")

// Record is one scheduled task occurrence.
type Record struct {
	Name     string  // task identifier, e.g. "fwd/conv1_1"
	Resource string  // resource it ran on, e.g. "link-H4"; "" = unbound
	Start    float64 // seconds
	Finish   float64 // seconds
}

// Validate checks the record's interval.
func (r Record) Validate() error {
	if r.Finish < r.Start {
		return fmt.Errorf("%w: record %q finishes (%g) before it starts (%g)",
			ErrTrace, r.Name, r.Finish, r.Start)
	}
	return nil
}

// chromeEvent is one complete ("X") event in the Chrome trace format.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChrome emits the records as a Chrome trace-event JSON array.
// Each distinct resource becomes a thread lane; unbound tasks share
// lane zero.
func WriteChrome(w io.Writer, recs []Record) error {
	lanes := map[string]int{"": 0}
	var names []string
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return err
		}
		if _, ok := lanes[r.Resource]; !ok {
			names = append(names, r.Resource)
		}
		lanes[r.Resource] = 0 // placeholder, assigned below
	}
	sort.Strings(names)
	for i, n := range names {
		lanes[n] = i + 1
	}
	events := make([]chromeEvent, 0, len(recs))
	for _, r := range recs {
		events = append(events, chromeEvent{
			Name: r.Name,
			Cat:  r.Resource,
			Ph:   "X",
			Ts:   r.Start * 1e6,
			Dur:  (r.Finish - r.Start) * 1e6,
			PID:  1,
			TID:  lanes[r.Resource],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Occupancy is a resource's schedule summary.
type Occupancy struct {
	Resource string
	Busy     float64 // summed task durations
	Tasks    int
}

// Summarize aggregates busy time per resource, sorted by descending
// busy time.
func Summarize(recs []Record) ([]Occupancy, error) {
	agg := map[string]*Occupancy{}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		o, ok := agg[r.Resource]
		if !ok {
			o = &Occupancy{Resource: r.Resource}
			agg[r.Resource] = o
		}
		o.Busy += r.Finish - r.Start
		o.Tasks++
	}
	out := make([]Occupancy, 0, len(agg))
	for _, o := range agg {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Busy != out[j].Busy {
			return out[i].Busy > out[j].Busy
		}
		return out[i].Resource < out[j].Resource
	})
	return out, nil
}

// Makespan returns the latest finish time across the records.
func Makespan(recs []Record) float64 {
	var m float64
	for _, r := range recs {
		if r.Finish > m {
			m = r.Finish
		}
	}
	return m
}

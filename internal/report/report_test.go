package report

import (
	"errors"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Fig X", "net", "gain")
	if err := tb.AddRow("VGG-A", 3.27); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	if err := tb.AddRow("SFC", 23.48); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	out := tb.String()
	for _, want := range []string{"## Fig X", "net", "gain", "VGG-A", "3.270", "23.480"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowWidthMismatch(t *testing.T) {
	tb := NewTable("", "a", "b")
	if err := tb.AddRow("only-one"); !errors.Is(err, ErrTable) {
		t.Errorf("short row accepted: %v", err)
	}
}

func TestFloatFormatting(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1234567, "1.235e+06"},
		{0.0001, "1.000e-04"},
		{123.4, "123.4"},
		{3.14159, "3.142"},
		{-2.5, "-2.500"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.v); got != tt.want {
			t.Errorf("formatFloat(%g) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	if err := tb.AddRow(`quo"te`, "a,b"); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	if err := tb.AddRow("plain", 7); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `"quo""te"`) {
		t.Errorf("quote not escaped: %s", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Errorf("comma not quoted: %s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Errorf("header wrong: %s", out)
	}
}

func TestUntitledTable(t *testing.T) {
	tb := NewTable("", "x")
	if err := tb.AddRow(1); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	if strings.Contains(tb.String(), "##") {
		t.Error("untitled table printed a title")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n--
	if f.n < 0 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriteErrors(t *testing.T) {
	tb := NewTable("t", "a")
	_ = tb.AddRow(1)
	for budget := 0; budget < 4; budget++ {
		if err := tb.WriteText(&failWriter{n: budget}); err == nil && budget < 4 {
			// budget 4 may be enough; smaller budgets must fail.
			if budget < 3 {
				t.Errorf("WriteText with budget %d did not fail", budget)
			}
		}
	}
	if err := tb.WriteCSV(&failWriter{n: 0}); err == nil {
		t.Error("WriteCSV with zero budget did not fail")
	}
}

// Package report renders experiment results as fixed-width text tables
// and CSV, so the cmd/hypar experiment runners and the benchmark
// harness print the same rows the paper's tables and figures report.
package report

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrTable reports a malformed table.
var ErrTable = errors.New("report: invalid table")

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("%w: row has %d cells, table has %d columns", ErrTable, len(cells), len(t.Columns))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return nil
}

// formatFloat renders floats compactly: large magnitudes with three
// significant decimals, small ones in scientific notation.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (cells containing
// commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, r := range t.rows {
		cells := make([]string, len(r))
		for i, c := range r {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

// Package runner provides the bounded worker pool the evaluation
// harness fans out on: figure runners sweep models × strategies,
// explorations simulate hundreds of plan points, and the brute-force
// reference enumerates code ranges. The pool is std-lib only, sized by
// GOMAXPROCS by default, collects results in deterministic input order,
// and cancels the dispatch of outstanding items on the first error. The
// reported error is the lowest-indexed failure among the items that
// ran; when several items would fail, cancellation can skip a
// lower-indexed one, so a parallel run may report a later failure than
// the serial run (which always reports the first). Successful runs are
// fully deterministic at any width.
//
// A Pool is a width, not a shared queue: every Map/ForEach call spawns
// its own bounded set of workers, so nested fan-outs cannot deadlock
// (they merely oversubscribe). Width 1 runs inline on the calling
// goroutine — the serial reference path every determinism test and
// benchmark baseline uses.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of concurrent workers a fan-out uses.
type Pool struct {
	width int
}

// New returns a pool of the given width. Width <= 0 selects
// GOMAXPROCS(0), the number of usable CPUs.
func New(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	return &Pool{width: width}
}

// Serial returns the inline, single-worker pool.
func Serial() *Pool { return New(1) }

// Width returns the pool's worker bound.
func (p *Pool) Width() int {
	if p == nil || p.width <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.width
}

// defaultWidth is the process-wide default pool width; 0 means
// GOMAXPROCS. cmd/hypar's -parallel flag sets it.
var defaultWidth atomic.Int64

// SetDefaultWidth sets the width Default() pools use; n <= 0 restores
// GOMAXPROCS sizing.
func SetDefaultWidth(n int) {
	if n < 0 {
		n = 0
	}
	defaultWidth.Store(int64(n))
}

// Default returns a pool of the process-wide default width.
func Default() *Pool { return New(int(defaultWidth.Load())) }

// indexedErr pairs an error with the item index that produced it, so
// the lowest-index error wins regardless of completion order.
type indexedErr struct {
	index int
	err   error
}

// run dispatches indexes [0, n) to at most width workers, stopping the
// dispatch of new items after the first error. It returns the error of
// the lowest failed index among those that ran.
func (p *Pool) run(n int, fn func(worker, index int) error) error {
	if n <= 0 {
		return nil
	}
	width := p.Width()
	if width > n {
		width = n
	}
	if width == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		mu      sync.Mutex
		firstMu indexedErr
		wg      sync.WaitGroup
	)
	firstMu.index = n
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				// Check before claiming: a claimed index always runs,
				// so cancellation never abandons claimed work.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstMu.index {
						firstMu = indexedErr{index: i, err: err}
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstMu.err
}

// ForEach runs fn over every index of items on the pool. Item order of
// side effects is unspecified across workers; fn must not assume
// serial execution unless the pool width is 1.
func ForEach[T any](p *Pool, items []T, fn func(i int, item T) error) error {
	return p.run(len(items), func(_, i int) error { return fn(i, items[i]) })
}

// Map applies fn to every item and returns the results in input order,
// regardless of pool width or completion order.
func Map[T, R any](p *Pool, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := p.run(len(items), func(_, i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapCtx is Map with cooperative cancellation: once ctx is done, no
// further items are dispatched and the context's error is reported
// (items already claimed by a worker still run to completion — the
// pool never abandons claimed work). A nil ctx behaves exactly like
// Map. The service's batch endpoint uses this so a client that
// disconnects mid-batch stops consuming pool capacity.
func MapCtx[T, R any](ctx context.Context, p *Pool, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	if ctx == nil {
		return Map(p, items, fn)
	}
	return Map(p, items, func(i int, item T) (R, error) {
		if err := ctx.Err(); err != nil {
			var zero R
			return zero, err
		}
		return fn(i, item)
	})
}

// MapWith is Map with per-worker state: newState runs once per worker
// (e.g. to build a reusable simulation engine) and its value is passed
// to every fn call that worker executes. States are never shared
// between workers, so they need no locking.
func MapWith[S, T, R any](p *Pool, items []T, newState func() S, fn func(s S, i int, item T) (R, error)) ([]R, error) {
	width := p.Width()
	if width > len(items) {
		width = len(items)
	}
	states := make([]S, width)
	made := make([]bool, width)
	out := make([]R, len(items))
	err := p.run(len(items), func(worker, i int) error {
		if !made[worker] {
			states[worker] = newState()
			made[worker] = true
		}
		r, err := fn(states[worker], i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// errStreamStopped is the sentinel workers return once the consumer has
// aborted a Stream; it never escapes to the caller.
var errStreamStopped = errors.New("runner: stream stopped by consumer")

// Stream applies fn to every item on the pool and hands each result to
// emit in input order, while later items are still being computed: item
// i's emit only waits for items 0..i, not for the whole batch. emit runs
// on the calling goroutine, so it may write to non-thread-safe sinks
// (an http.ResponseWriter, a terminal). An emit error cancels the
// remaining computation and is returned. With width 1 the behavior is
// compute-then-emit per item, the serial reference path.
func Stream[T, R any](p *Pool, items []T, fn func(i int, item T) (R, error), emit func(i int, r R) error) error {
	return StreamWith(p, items, func() struct{} { return struct{}{} },
		func(_ struct{}, i int, item T) (R, error) { return fn(i, item) }, emit)
}

// StreamWith is Stream with per-worker state (see MapWith). Workers
// stay at most 2·width items ahead of the emit cursor, so a slow
// consumer bounds buffering and an emit error cancels outstanding work
// promptly instead of after the whole batch.
func StreamWith[S, T, R any](p *Pool, items []T, newState func() S,
	fn func(s S, i int, item T) (R, error), emit func(i int, r R) error) error {
	n := len(items)
	if n == 0 {
		return nil
	}
	width := p.Width()
	if width > n {
		width = n
	}
	window := 2 * width
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		out      = make([]R, n)
		ready    = make([]bool, n)
		emitNext int  // next index the consumer will emit
		done     bool // producer finished
		failIdx  = -1 // lowest index whose fn call failed
		failErr  error
		stopped  atomic.Bool // consumer aborted
		states   = make([]S, width)
		made     = make([]bool, width)
		doneCh   = make(chan struct{})
	)
	go func() {
		// The p.run error is the errStreamStopped sentinel whenever fn
		// failed (real errors are recorded in failIdx/failErr instead,
		// because a window-waiting worker can abort with the sentinel at
		// a lower index than the real failure), so it is ignored here.
		_ = p.run(n, func(worker, i int) error {
			mu.Lock()
			for i >= emitNext+window && !stopped.Load() && failIdx == -1 {
				cond.Wait()
			}
			aborted := stopped.Load() || failIdx != -1
			mu.Unlock()
			if aborted {
				return errStreamStopped
			}
			if !made[worker] {
				states[worker] = newState()
				made[worker] = true
			}
			r, err := fn(states[worker], i, items[i])
			mu.Lock()
			if err != nil {
				if failIdx == -1 || i < failIdx {
					failIdx, failErr = i, err
				}
			} else {
				out[i] = r
				ready[i] = true
			}
			cond.Broadcast()
			mu.Unlock()
			if err != nil {
				return errStreamStopped
			}
			return nil
		})
		mu.Lock()
		done = true
		cond.Broadcast()
		mu.Unlock()
		close(doneCh)
	}()

	for i := 0; i < n; i++ {
		mu.Lock()
		for !ready[i] && !done {
			cond.Wait()
		}
		ok := ready[i]
		r := out[i]
		mu.Unlock()
		if !ok {
			// The producer finished without computing item i: it failed
			// on an earlier error, surfaced below.
			break
		}
		if err := emit(i, r); err != nil {
			stopped.Store(true)
			mu.Lock()
			cond.Broadcast()
			mu.Unlock()
			<-doneCh
			return err
		}
		mu.Lock()
		emitNext = i + 1
		cond.Broadcast()
		mu.Unlock()
	}
	<-doneCh
	mu.Lock()
	err := failErr
	mu.Unlock()
	return err
}

// Chunks splits [0, n) into roughly perChunk-sized half-open ranges so
// range enumerations (brute force, explorations) can fan out without a
// task per point. perChunk <= 0 picks a size that yields about four
// chunks per worker of the given width.
func Chunks(n, width, perChunk int) [][2]int {
	if n <= 0 {
		return nil
	}
	if width <= 0 {
		width = 1
	}
	if perChunk <= 0 {
		perChunk = (n + 4*width - 1) / (4 * width)
		if perChunk < 1 {
			perChunk = 1
		}
	}
	chunks := make([][2]int, 0, (n+perChunk-1)/perChunk)
	for lo := 0; lo < n; lo += perChunk {
		hi := lo + perChunk
		if hi > n {
			hi = n
		}
		chunks = append(chunks, [2]int{lo, hi})
	}
	return chunks
}

package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWidthDefaults(t *testing.T) {
	if w := New(0).Width(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Width() = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := New(-3).Width(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Width() = %d", w)
	}
	if w := Serial().Width(); w != 1 {
		t.Errorf("Serial().Width() = %d, want 1", w)
	}
	if w := New(7).Width(); w != 7 {
		t.Errorf("New(7).Width() = %d, want 7", w)
	}
	var nilPool *Pool
	if w := nilPool.Width(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("nil pool width = %d", w)
	}
}

func TestSetDefaultWidth(t *testing.T) {
	defer SetDefaultWidth(0)
	SetDefaultWidth(1)
	if w := Default().Width(); w != 1 {
		t.Errorf("Default().Width() = %d after SetDefaultWidth(1)", w)
	}
	SetDefaultWidth(0)
	if w := Default().Width(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Default().Width() = %d after reset", w)
	}
}

func TestMapOrdered(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, width := range []int{1, 2, 8, 64} {
		p := New(width)
		got, err := Map(p, items, func(i, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("width %d: got[%d] = %d, want %d", width, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(New(4), nil, func(i, v int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Errorf("Map(nil) = %v, %v", got, err)
	}
}

func TestFirstErrorWins(t *testing.T) {
	items := make([]int, 200)
	errLow := errors.New("low")
	for _, width := range []int{1, 4, 16} {
		_, err := Map(New(width), items, func(i, v int) (int, error) {
			switch i {
			case 10:
				return 0, errLow
			case 150:
				return 0, errors.New("high")
			}
			return 0, nil
		})
		if err == nil {
			t.Fatalf("width %d: no error", width)
		}
		// With cancellation a later-index error can only win if the
		// low-index item was skipped; here index 10 always runs first
		// at width 1 and is dispatched before 150 at any width.
		if width == 1 && !errors.Is(err, errLow) {
			t.Errorf("width 1: got %v, want %v", err, errLow)
		}
	}
}

func TestCancellationStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	n := 10000
	_, err := Map(New(4), make([]int, n), func(i, v int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, fmt.Errorf("boom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if got := ran.Load(); got >= int64(n) {
		t.Errorf("all %d items ran despite early error", got)
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 50)
	err := ForEach(New(8), out, func(i, _ int) error { out[i] = i + 1; return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if err := ForEach(New(3), make([]int, 10), func(i, _ int) error {
		if i == 7 {
			return errors.New("seven")
		}
		return nil
	}); err == nil {
		t.Error("ForEach swallowed the error")
	}
}

func TestMapWithPerWorkerState(t *testing.T) {
	var created atomic.Int64
	type state struct{ id int64 }
	items := make([]int, 64)
	p := New(4)
	got, err := MapWith(p, items,
		func() *state { return &state{id: created.Add(1)} },
		func(s *state, i, _ int) (int64, error) {
			if s == nil {
				return 0, errors.New("nil state")
			}
			return s.id, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if c := created.Load(); c < 1 || c > 4 {
		t.Errorf("created %d states, want 1..4", c)
	}
	for i, id := range got {
		if id < 1 || id > created.Load() {
			t.Errorf("got[%d] = %d out of range", i, id)
		}
	}
}

func TestChunksCoverRange(t *testing.T) {
	for _, tc := range []struct{ n, width, per int }{
		{0, 4, 0}, {1, 4, 0}, {256, 4, 0}, {256, 1, 0}, {257, 8, 16}, {10, 100, 0},
	} {
		chunks := Chunks(tc.n, tc.width, tc.per)
		next := 0
		for _, c := range chunks {
			if c[0] != next || c[1] <= c[0] {
				t.Fatalf("Chunks(%v): bad chunk %v at cursor %d", tc, c, next)
			}
			next = c[1]
		}
		if next != tc.n {
			t.Fatalf("Chunks(%v): covered %d of %d", tc, next, tc.n)
		}
	}
}

// TestMapCtx checks the context-aware fan-out: a nil context behaves
// like Map, a live context completes normally, and a canceled context
// stops dispatch and surfaces the context error.
func TestMapCtx(t *testing.T) {
	items := make([]int, 32)
	double := func(i, _ int) (int, error) { return 2 * i, nil }

	for _, ctx := range []context.Context{nil, context.Background()} {
		got, err := MapCtx(ctx, New(4), items, double)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != 2*i {
				t.Fatalf("ctx=%v: got[%d]=%d", ctx, i, v)
			}
		}
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(canceled, New(4), items, func(i, _ int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a pre-canceled context", ran.Load())
	}

	// Cancellation mid-run stops dispatch without abandoning claimed
	// work: every item either ran fully or never started.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err = MapCtx(ctx2, New(2), make([]int, 100), func(i, _ int) (int, error) {
		if started.Add(1) == 3 {
			cancel2()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v", err)
	}
	if n := started.Load(); n >= 100 {
		t.Errorf("cancellation did not stop dispatch (%d items ran)", n)
	}
}

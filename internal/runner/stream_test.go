package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestStreamOrderAndResults(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		items := make([]int, 100)
		for i := range items {
			items[i] = i
		}
		var got []int
		err := Stream(New(width), items,
			func(_ int, v int) (int, error) { return v * v, nil },
			func(i int, r int) error {
				if r != i*i {
					return fmt.Errorf("item %d: got %d", i, r)
				}
				got = append(got, i)
				return nil
			})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(got) != len(items) {
			t.Fatalf("width %d: emitted %d of %d", width, len(got), len(items))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("width %d: out-of-order emit at %d: %d", width, i, v)
			}
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	err := Stream(New(4), nil,
		func(_ int, v int) (int, error) { return v, nil },
		func(int, int) error { t.Fatal("emit on empty input"); return nil })
	if err != nil {
		t.Fatal(err)
	}
}

func TestStreamComputeError(t *testing.T) {
	boom := errors.New("boom")
	for _, width := range []int{1, 4} {
		var emitted atomic.Int64
		err := Stream(New(width), []int{0, 1, 2, 3, 4, 5, 6, 7},
			func(_ int, v int) (int, error) {
				if v == 3 {
					return 0, boom
				}
				return v, nil
			},
			func(i int, _ int) error {
				if i >= 3 {
					t.Errorf("width %d: emitted item %d past the failure", width, i)
				}
				emitted.Add(1)
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("width %d: got %v, want boom", width, err)
		}
		if emitted.Load() > 3 {
			t.Errorf("width %d: emitted %d items", width, emitted.Load())
		}
	}
}

func TestStreamEmitErrorCancels(t *testing.T) {
	stop := errors.New("stop")
	for _, width := range []int{1, 4} {
		var computed atomic.Int64
		items := make([]int, 1000)
		err := Stream(New(width), items,
			func(_ int, v int) (int, error) {
				computed.Add(1)
				return v, nil
			},
			func(i int, _ int) error {
				if i == 2 {
					return stop
				}
				return nil
			})
		if !errors.Is(err, stop) {
			t.Fatalf("width %d: got %v, want stop", width, err)
		}
		if n := computed.Load(); n == int64(len(items)) {
			t.Errorf("width %d: emit error did not cancel computation (%d items ran)", width, n)
		}
	}
}

func TestStreamWithPerWorkerState(t *testing.T) {
	var built atomic.Int64
	items := make([]int, 64)
	err := StreamWith(New(4), items,
		func() *int { built.Add(1); v := 0; return &v },
		func(s *int, i int, _ int) (int, error) { *s++; return i, nil },
		func(i, r int) error {
			if i != r {
				return fmt.Errorf("item %d got %d", i, r)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if b := built.Load(); b < 1 || b > 4 {
		t.Errorf("built %d states, want 1..4", b)
	}
}

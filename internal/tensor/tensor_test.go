package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	tests := []struct {
		d    DType
		want int64
	}{
		{Float32, 4},
		{Float16, 2},
		{Int8, 1},
		{DType(99), 4}, // unknown defaults to float32 width
	}
	for _, tt := range tests {
		if got := tt.d.Size(); got != tt.want {
			t.Errorf("DType(%v).Size() = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	if Float32.String() != "float32" || Float16.String() != "float16" || Int8.String() != "int8" {
		t.Errorf("unexpected dtype names: %v %v %v", Float32, Float16, Int8)
	}
	if DType(42).String() != "DType(42)" {
		t.Errorf("unknown dtype string = %q", DType(42).String())
	}
}

func TestFeatureMapElems(t *testing.T) {
	// The paper's fc example (§3.1): F_l is 32×70.
	f, err := NewFeatureMap(32, 1, 1, 70)
	if err != nil {
		t.Fatalf("NewFeatureMap: %v", err)
	}
	if got := f.Elems(); got != 32*70 {
		t.Errorf("Elems() = %d, want %d", got, 32*70)
	}
	if got := f.Bytes(Float32); got != 32*70*4 {
		t.Errorf("Bytes() = %d, want %d", got, 32*70*4)
	}
	if got := f.SliceElems(); got != 70 {
		t.Errorf("SliceElems() = %d, want 70", got)
	}
}

func TestFeatureMapValidate(t *testing.T) {
	bad := []FeatureMap{
		{B: 0, H: 1, W: 1, C: 1},
		{B: 1, H: -1, W: 1, C: 1},
		{B: 1, H: 1, W: 0, C: 1},
		{B: 1, H: 1, W: 1, C: -5},
	}
	for _, f := range bad {
		if err := f.Validate(); !errors.Is(err, ErrShape) {
			t.Errorf("Validate(%+v) = %v, want ErrShape", f, err)
		}
		if _, err := NewFeatureMap(f.B, f.H, f.W, f.C); err == nil {
			t.Errorf("NewFeatureMap(%+v) succeeded, want error", f)
		}
	}
}

func TestKernelElems(t *testing.T) {
	// Paper §3.4 conv example: W_l of size [5×5×20]×50 → 25000 elements,
	// 100 KB at float32 (the paper's 200 KB counts both directions).
	w, err := NewConvKernel(5, 20, 50)
	if err != nil {
		t.Fatalf("NewConvKernel: %v", err)
	}
	if got := w.Elems(); got != 5*5*20*50 {
		t.Errorf("Elems() = %d, want %d", got, 5*5*20*50)
	}
	// Paper §3.1 fc example: 70×100 weight matrix.
	m, err := NewFCKernel(70, 100)
	if err != nil {
		t.Fatalf("NewFCKernel: %v", err)
	}
	if got := m.Elems(); got != 7000 {
		t.Errorf("fc Elems() = %d, want 7000", got)
	}
	if got := m.Bytes(Float32); got != 28000 {
		t.Errorf("fc Bytes() = %d, want 28000", got)
	}
}

func TestKernelValidate(t *testing.T) {
	if _, err := NewConvKernel(0, 3, 8); !errors.Is(err, ErrShape) {
		t.Errorf("zero-K kernel accepted: %v", err)
	}
	if _, err := NewFCKernel(-1, 10); !errors.Is(err, ErrShape) {
		t.Errorf("negative-Cin fc kernel accepted: %v", err)
	}
	w := Kernel{K: 3, Cin: 4, Cout: 8, FC: true}
	if err := w.Validate(); !errors.Is(err, ErrShape) {
		t.Errorf("fc kernel with K=3 accepted: %v", err)
	}
}

func TestKernelString(t *testing.T) {
	w, _ := NewConvKernel(5, 20, 50)
	if got := w.String(); got != "[5×5×20]×50" {
		t.Errorf("conv String() = %q", got)
	}
	m, _ := NewFCKernel(70, 100)
	if got := m.String(); got != "70×100" {
		t.Errorf("fc String() = %q", got)
	}
}

func TestShardApply(t *testing.T) {
	var s Shard
	s = s.Apply(true).Apply(false).Apply(true)
	if s.DP != 2 || s.MP != 1 {
		t.Errorf("shard after dp,mp,dp = %+v", s)
	}
	if s.Levels() != 3 {
		t.Errorf("Levels() = %d, want 3", s.Levels())
	}
}

func TestShardValidate(t *testing.T) {
	if err := (Shard{DP: -1}).Validate(); !errors.Is(err, ErrShape) {
		t.Errorf("negative shard accepted: %v", err)
	}
	if err := (Shard{DP: 2, MP: 3}).Validate(); err != nil {
		t.Errorf("valid shard rejected: %v", err)
	}
}

func TestShardAmounts(t *testing.T) {
	f := FeatureMap{B: 256, H: 14, W: 14, C: 512}
	w := Kernel{K: 3, Cin: 512, Cout: 512}

	s := Shard{DP: 1, MP: 2}
	if got, want := s.KernelElems(w), float64(w.Elems())/4; got != want {
		t.Errorf("KernelElems = %g, want %g", got, want)
	}
	if got, want := s.InputElems(f), float64(f.Elems())/8; got != want {
		t.Errorf("InputElems = %g, want %g", got, want)
	}
	if got, want := s.OutputElems(f), float64(f.Elems())/2; got != want {
		t.Errorf("OutputElems = %g, want %g", got, want)
	}
}

// Property: sharding never increases any amount, and applying one more
// level divides the affected amounts by exactly two.
func TestShardMonotoneProperty(t *testing.T) {
	prop := func(dp, mp uint8, b, h, w, c uint8) bool {
		s := Shard{DP: int(dp % 8), MP: int(mp % 8)}
		f := FeatureMap{B: int(b%32) + 1, H: int(h%16) + 1, W: int(w%16) + 1, C: int(c%64) + 1}
		k := Kernel{K: 3, Cin: int(c%64) + 1, Cout: int(b%64) + 1}

		base := float64(f.Elems())
		if s.InputElems(f) > base || s.OutputElems(f) > base {
			return false
		}
		if s.KernelElems(k) > float64(k.Elems()) {
			return false
		}
		// One more dp level halves input and output maps, keeps kernel.
		d := s.Apply(true)
		if math.Abs(d.InputElems(f)-s.InputElems(f)/2) > 1e-9 {
			return false
		}
		if math.Abs(d.OutputElems(f)-s.OutputElems(f)/2) > 1e-9 {
			return false
		}
		if d.KernelElems(k) != s.KernelElems(k) {
			return false
		}
		// One more mp level halves input map and kernel, keeps output map.
		m := s.Apply(false)
		if math.Abs(m.InputElems(f)-s.InputElems(f)/2) > 1e-9 {
			return false
		}
		if m.OutputElems(f) != s.OutputElems(f) {
			return false
		}
		if math.Abs(m.KernelElems(k)-s.KernelElems(k)/2) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Package tensor provides shape and volume arithmetic for the dense
// tensors exchanged by a HyPar accelerator array: feature maps (F),
// kernels (W), gradients (∆W) and errors (E).
//
// The package is deliberately free of any numerical payload: HyPar's
// partition search and the architectural simulation only ever need the
// *amounts* of data (element counts and byte volumes) together with the
// hierarchical sharding state imposed by data/model parallelism choices.
package tensor

import (
	"errors"
	"fmt"
)

// ErrShape reports an invalid tensor geometry.
var ErrShape = errors.New("tensor: invalid shape")

// DType enumerates element types used by the accelerator array.
// The paper evaluates with 32-bit floating point throughout.
type DType int

const (
	// Float32 is the paper's default precision.
	Float32 DType = iota
	// Float16 is provided for precision ablations.
	Float16
	// Int8 is provided for quantized-inference ablations.
	Int8
)

// Size returns the size of one element in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float32:
		return 4
	case Float16:
		return 2
	case Int8:
		return 1
	default:
		return 4
	}
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Int8:
		return "int8"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// FeatureMap describes a batched activation tensor F of size
// B × [H × W × C] (paper §2.1). Errors E share the geometry of the
// feature map they correspond to, so the same type describes both.
type FeatureMap struct {
	B int // batch size
	H int // spatial height
	W int // spatial width
	C int // channels (fc layers use H = W = 1, C = neurons)
}

// NewFeatureMap validates and constructs a FeatureMap.
func NewFeatureMap(b, h, w, c int) (FeatureMap, error) {
	f := FeatureMap{B: b, H: h, W: w, C: c}
	if err := f.Validate(); err != nil {
		return FeatureMap{}, err
	}
	return f, nil
}

// Validate reports whether all dimensions are positive.
func (f FeatureMap) Validate() error {
	if f.B <= 0 || f.H <= 0 || f.W <= 0 || f.C <= 0 {
		return fmt.Errorf("%w: feature map %dx%dx%dx%d", ErrShape, f.B, f.H, f.W, f.C)
	}
	return nil
}

// Elems returns the number of elements B·H·W·C.
func (f FeatureMap) Elems() int64 {
	return int64(f.B) * int64(f.H) * int64(f.W) * int64(f.C)
}

// SliceElems returns the per-sample slice size H·W·C.
func (f FeatureMap) SliceElems() int64 {
	return int64(f.H) * int64(f.W) * int64(f.C)
}

// Bytes returns the storage volume for the given element type.
func (f FeatureMap) Bytes(d DType) int64 { return f.Elems() * d.Size() }

// String implements fmt.Stringer.
func (f FeatureMap) String() string {
	return fmt.Sprintf("%d×[%d×%d×%d]", f.B, f.H, f.W, f.C)
}

// Kernel describes a weight tensor W of size [K × K × Cin] × Cout for a
// convolutional layer, or [Cin × Cout] for a fully-connected layer
// (K = 1). The gradient ∆W has the same geometry.
type Kernel struct {
	K    int  // kernel height/width (1 for fc)
	Cin  int  // input channels / input neurons
	Cout int  // output channels / output neurons
	FC   bool // fully-connected layer
}

// NewConvKernel validates and constructs a convolution kernel.
func NewConvKernel(k, cin, cout int) (Kernel, error) {
	w := Kernel{K: k, Cin: cin, Cout: cout}
	if err := w.Validate(); err != nil {
		return Kernel{}, err
	}
	return w, nil
}

// NewFCKernel validates and constructs a fully-connected weight matrix.
func NewFCKernel(cin, cout int) (Kernel, error) {
	w := Kernel{K: 1, Cin: cin, Cout: cout, FC: true}
	if err := w.Validate(); err != nil {
		return Kernel{}, err
	}
	return w, nil
}

// Validate reports whether all dimensions are positive.
func (w Kernel) Validate() error {
	if w.K <= 0 || w.Cin <= 0 || w.Cout <= 0 {
		return fmt.Errorf("%w: kernel [%d×%d×%d]×%d", ErrShape, w.K, w.K, w.Cin, w.Cout)
	}
	if w.FC && w.K != 1 {
		return fmt.Errorf("%w: fc kernel must have K=1, got %d", ErrShape, w.K)
	}
	return nil
}

// Elems returns K·K·Cin·Cout.
func (w Kernel) Elems() int64 {
	return int64(w.K) * int64(w.K) * int64(w.Cin) * int64(w.Cout)
}

// Bytes returns the storage volume for the given element type.
func (w Kernel) Bytes(d DType) int64 { return w.Elems() * d.Size() }

// String implements fmt.Stringer.
func (w Kernel) String() string {
	if w.FC {
		return fmt.Sprintf("%d×%d", w.Cin, w.Cout)
	}
	return fmt.Sprintf("[%d×%d×%d]×%d", w.K, w.K, w.Cin, w.Cout)
}

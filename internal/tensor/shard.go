package tensor

import "fmt"

// Shard records how many times a layer's tensors have been halved by
// data-parallel and model-parallel choices at the hierarchy levels above
// the one currently being considered (paper §4.2).
//
// A dp choice halves the batch dimension of the layer's feature map and
// error tensors; an mp choice halves the layer's input dimension (fc
// input neurons / conv input channels), and with it the kernel and the
// input feature map. The output feature map F_{l+1} is produced as
// partial sums and therefore keeps its full channel extent under mp; only
// dp choices shrink it (batch).
type Shard struct {
	DP int // number of hierarchy levels that chose data parallelism
	MP int // number of hierarchy levels that chose model parallelism
}

// Validate reports whether the shard counts are non-negative.
func (s Shard) Validate() error {
	if s.DP < 0 || s.MP < 0 {
		return fmt.Errorf("%w: negative shard counts dp=%d mp=%d", ErrShape, s.DP, s.MP)
	}
	return nil
}

// Levels returns the total number of hierarchy levels applied.
func (s Shard) Levels() int { return s.DP + s.MP }

// Apply returns the shard extended by one more level of the given kind.
func (s Shard) Apply(dataParallel bool) Shard {
	if dataParallel {
		return Shard{DP: s.DP + 1, MP: s.MP}
	}
	return Shard{DP: s.DP, MP: s.MP + 1}
}

// pow2 returns 2^n as float64 for small non-negative n.
func pow2(n int) float64 {
	return float64(int64(1) << uint(n))
}

// KernelElems returns the per-group element count of a kernel (or its
// gradient) under this shard: mp levels halve the input dimension.
func (s Shard) KernelElems(w Kernel) float64 {
	return float64(w.Elems()) / pow2(s.MP)
}

// InputElems returns the per-group element count of the layer's input
// feature map (or input error) under this shard: dp halves the batch and
// mp halves the channel/neuron extent.
func (s Shard) InputElems(f FeatureMap) float64 {
	return float64(f.Elems()) / pow2(s.DP+s.MP)
}

// OutputElems returns the per-group element count of the layer's output
// feature map F_{l+1} (or output error E_{l+1}) under this shard: only dp
// shrinks it, because mp produces full-extent partial sums.
func (s Shard) OutputElems(f FeatureMap) float64 {
	return float64(f.Elems()) / pow2(s.DP)
}

// String implements fmt.Stringer.
func (s Shard) String() string {
	return fmt.Sprintf("shard{dp:%d mp:%d}", s.DP, s.MP)
}

package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/partition"
)

// TestRandomPlansSchedule fuzzes the step builder with random
// hierarchical assignments: every schedule must complete (no cycles),
// have finite non-negative times and energies, and respect the
// resource-occupancy bound (no resource busier than the makespan).
func TestRandomPlansSchedule(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	arch, err := DefaultArch(4)
	if err != nil {
		t.Fatalf("DefaultArch: %v", err)
	}
	models := []*nn.Model{nn.LenetC(), nn.CifarC(), nn.AlexNet()}
	for trial := 0; trial < 50; trial++ {
		m := models[trial%len(models)]
		levels := make([]partition.Assignment, 4)
		for h := range levels {
			levels[h] = make(partition.Assignment, len(m.Layers))
			for l := range levels[h] {
				if r.Intn(2) == 1 {
					levels[h][l] = comm.MP
				}
			}
		}
		plan, err := partition.Evaluate(m, 32, levels)
		if err != nil {
			t.Fatalf("trial %d: evaluate: %v", trial, err)
		}
		a := arch
		a.OverlapGradComm = trial%2 == 0
		stats, err := Simulate(m, plan, a)
		if err != nil {
			t.Fatalf("trial %d: simulate: %v", trial, err)
		}
		if stats.StepSeconds <= 0 || math.IsNaN(stats.StepSeconds) || math.IsInf(stats.StepSeconds, 0) {
			t.Errorf("trial %d: step time %g", trial, stats.StepSeconds)
		}
		if stats.ComputeSeconds > stats.StepSeconds*(1+1e-9) {
			t.Errorf("trial %d: compute busy %g > makespan %g", trial, stats.ComputeSeconds, stats.StepSeconds)
		}
		for h, c := range stats.CommSeconds {
			if c < 0 || c > stats.StepSeconds*(1+1e-9) {
				t.Errorf("trial %d: link %d busy %g vs makespan %g", trial, h, c, stats.StepSeconds)
			}
		}
		if stats.EnergyTotal() <= 0 || math.IsNaN(stats.EnergyTotal()) {
			t.Errorf("trial %d: energy %g", trial, stats.EnergyTotal())
		}
	}
}

// TestTraceCollection: the trace covers every task, and its makespan
// equals the reported step time.
func TestTraceCollection(t *testing.T) {
	arch, err := DefaultArch(4)
	if err != nil {
		t.Fatalf("DefaultArch: %v", err)
	}
	arch.CollectTrace = true
	m := nn.LenetC()
	plan, err := partition.Hierarchical(m, 64, 4)
	if err != nil {
		t.Fatalf("Hierarchical: %v", err)
	}
	stats, err := Simulate(m, plan, arch)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(stats.Trace) != stats.Tasks {
		t.Errorf("trace has %d records for %d tasks", len(stats.Trace), stats.Tasks)
	}
	var maxFinish float64
	for _, rec := range stats.Trace {
		if rec.Finish < rec.Start {
			t.Errorf("record %q inverted: [%g, %g]", rec.Name, rec.Start, rec.Finish)
		}
		if rec.Finish > maxFinish {
			maxFinish = rec.Finish
		}
	}
	if math.Abs(maxFinish-stats.StepSeconds) > 1e-12 {
		t.Errorf("trace makespan %g != step %g", maxFinish, stats.StepSeconds)
	}
	// Without the flag no trace is collected.
	arch.CollectTrace = false
	stats2, err := Simulate(m, plan, arch)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if stats2.Trace != nil {
		t.Error("trace collected without CollectTrace")
	}
}

// TestMemoryAccounting: Data Parallelism replicates the full model on
// every accelerator, so VGG-E at a huge batch blows past the 8 GB HMC
// capacity, while HyPar's fc sharding at the paper's batch fits.
func TestMemoryAccounting(t *testing.T) {
	arch, err := DefaultArch(4)
	if err != nil {
		t.Fatalf("DefaultArch: %v", err)
	}
	m := nn.VGGE()
	plan, err := partition.Hierarchical(m, 256, 4)
	if err != nil {
		t.Fatalf("Hierarchical: %v", err)
	}
	st, err := Simulate(m, plan, arch)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if st.PeakMemoryBytes <= 0 {
		t.Fatalf("peak memory %g", st.PeakMemoryBytes)
	}
	if !st.FitsMemory {
		t.Errorf("VGG-E HyPar at batch 256 should fit 8 GB, working set %g GB",
			st.PeakMemoryBytes/1e9)
	}
	// A 16k batch under pure DP retains activations for 1024 images
	// per accelerator: far beyond 8 GB.
	big, err := partition.DataParallel(m, 16384, 4)
	if err != nil {
		t.Fatalf("DataParallel: %v", err)
	}
	stBig, err := Simulate(m, big, arch)
	if err != nil {
		t.Fatalf("Simulate big: %v", err)
	}
	if stBig.FitsMemory {
		t.Errorf("VGG-E DP at batch 16384 reported as fitting 8 GB (%g GB)",
			stBig.PeakMemoryBytes/1e9)
	}
	if stBig.PeakMemoryBytes <= st.PeakMemoryBytes {
		t.Error("bigger batch did not grow the working set")
	}
}

package sim

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/partition"
)

// TestSimulateBranchedModels runs one training step of every branched
// zoo network under its HyPar plan: the DAG task graph must schedule
// (no cycles), produce positive times, and carry the plan's full
// communication volume.
func TestSimulateBranchedModels(t *testing.T) {
	arch, err := DefaultArch(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range nn.BranchedZoo() {
		plan, err := partition.Hierarchical(m, 64, 4)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		stats, err := Simulate(m, plan, arch)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if stats.StepSeconds <= 0 || stats.ComputeSeconds <= 0 {
			t.Errorf("%s: non-positive times %+v", m.Name, stats)
		}
		if stats.CommBytes != plan.TotalBytes(arch.DType) {
			t.Errorf("%s: comm bytes %g, plan says %g", m.Name, stats.CommBytes, plan.TotalBytes(arch.DType))
		}
		if stats.Tasks == 0 {
			t.Errorf("%s: empty task graph", m.Name)
		}
	}
}

// TestBranchedSkipTransfersScheduled forces a plan whose fork edges
// disagree (producer mp, consumers dp at H1) and checks the simulator
// actually schedules the per-edge E conversions: the traced task list
// must contain one bwd-conv per incoming edge of the join layer.
func TestBranchedSkipTransfersScheduled(t *testing.T) {
	m := nn.Incep2()
	preds, err := m.LayerPreds()
	if err != nil {
		t.Fatal(err)
	}
	edges := partition.EdgesOf(preds)
	// stem(0) mp; branches(1,2) dp — both fork edges are mp-dp
	// transitions charging 0.5·A(E) each.
	assign := partition.Assignment{comm.MP, comm.DP, comm.DP, comm.DP, comm.DP, comm.DP}
	plan, err := partition.Evaluate(m, 8, []partition.Assignment{assign})
	if err != nil {
		t.Fatal(err)
	}
	forkEdges := 0
	for e, ed := range edges {
		if ed.Src == 0 {
			forkEdges++
			if plan.Details[0].InterE[e] == 0 {
				t.Errorf("fork edge %v has zero E conversion", ed)
			}
		}
	}
	if forkEdges != 2 {
		t.Fatalf("stem has %d fork edges, want 2", forkEdges)
	}
	arch, err := DefaultArch(1)
	if err != nil {
		t.Fatal(err)
	}
	arch.CollectTrace = true
	stats, err := Simulate(m, plan, arch)
	if err != nil {
		t.Fatal(err)
	}
	// Per-edge names keep the fork's two conversion chains apart.
	seen := map[string]int{}
	for _, r := range stats.Trace {
		if strings.HasPrefix(r.Name, "bwd-conv/stem->") {
			seen[r.Name]++
		}
	}
	if len(seen) != 2 || seen["bwd-conv/stem->b1x1@H1"] != 1 || seen["bwd-conv/stem->b3x3@H1"] != 1 {
		t.Errorf("skip E conversion tasks = %v, want one per fork edge", seen)
	}
}

// TestBranchedDeterministic pins schedule determinism for DAGs: two
// fresh simulations of the same branched plan agree exactly.
func TestBranchedDeterministic(t *testing.T) {
	m := nn.SRES8()
	plan, err := partition.Hierarchical(m, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := DefaultArch(3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Simulate(m, plan, arch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSimulator().Simulate(m, plan, arch)
	if err != nil {
		t.Fatal(err)
	}
	if a.StepSeconds != b.StepSeconds || a.EnergyTotal() != b.EnergyTotal() || a.Tasks != b.Tasks {
		t.Errorf("branched simulation is not deterministic: %+v vs %+v", a, b)
	}
}

package sim

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/noc"
	"repro/internal/partition"
	"repro/internal/platform"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Arch bundles the hardware configuration of one HyPar accelerator
// array: the per-node memory and energy model, the per-node compute
// engine, and the inter-node network. The cost models are the
// platform.Platform interfaces, so the same step builder simulates the
// paper's HMC array, a GPU-HBM array or a TPU-style systolic array —
// only the Arch contents change.
type Arch struct {
	Mem   platform.Memory
	Comp  platform.Compute
	NoC   noc.Topology
	DType tensor.DType

	// LevelMems optionally overrides the energy model per hierarchy
	// level for link accounting: level h's transfers charge
	// LevelMems[h].LinkEnergy instead of Mem's, so a heterogeneous array
	// bills each cut's bytes at that cut's platform. Nil (the
	// single-platform array) charges everything to Mem — the historical
	// accounting, byte for byte. Compute, DRAM and capacity stay on Mem:
	// the node platform owns the accelerators regardless of what fabrics
	// sit above them.
	LevelMems []platform.Memory

	// OverlapGradComm lets gradient partial-sum exchanges proceed
	// concurrently with the remaining backward sweep instead of
	// serializing phase by phase. The paper's simulator executes the
	// phases of each layer in order (the default here); overlapping is
	// provided as an ablation of what a communication-hiding runtime
	// would recover.
	OverlapGradComm bool

	// CollectTrace records every scheduled task into Stats.Trace for
	// Chrome trace export and occupancy analysis.
	CollectTrace bool
}

// DefaultArch returns the paper's evaluation platform: sixteen
// HMC-based accelerators (H = 4) on an H-tree with 1600 Mb/s links.
func DefaultArch(levels int) (Arch, error) {
	p := platform.HMC()
	ht, err := noc.NewHTree(levels, p.DefaultLinkMbps())
	if err != nil {
		return Arch{}, err
	}
	return Arch{Mem: p.Memory(), Comp: p.Compute(), NoC: ht, DType: tensor.Float32}, nil
}

// Validate checks the architecture.
func (a Arch) Validate() error {
	if a.Mem == nil {
		return fmt.Errorf("%w: nil memory model", ErrSim)
	}
	if err := a.Mem.Validate(); err != nil {
		return err
	}
	if a.Comp == nil {
		return fmt.Errorf("%w: nil compute model", ErrSim)
	}
	if err := a.Comp.Validate(); err != nil {
		return err
	}
	if a.NoC == nil {
		return fmt.Errorf("%w: nil topology", ErrSim)
	}
	for h, m := range a.LevelMems {
		if m == nil {
			return fmt.Errorf("%w: nil level-%d memory model", ErrSim, h)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("level %d: %w", h, err)
		}
	}
	return nil
}

// LevelMem returns the energy model billing hierarchy level h's link
// bytes: the per-level override when present, the node memory model
// otherwise.
func (a Arch) LevelMem(h int) platform.Memory {
	if h >= 0 && h < len(a.LevelMems) {
		return a.LevelMems[h]
	}
	return a.Mem
}

// Stats aggregates the outcome of simulating one training step.
type Stats struct {
	// StepSeconds is the makespan of one complete training step.
	StepSeconds float64
	// ComputeSeconds is the accelerator-array busy time (compute+DRAM
	// critical path contribution).
	ComputeSeconds float64
	// CommSeconds[h] is the busy time of hierarchy level h's links.
	CommSeconds []float64

	// Energy breakdown, joules, summed over the whole array.
	EnergyCompute float64
	EnergySRAM    float64
	EnergyDRAM    float64
	EnergyLink    float64

	// CommBytes is the paper's both-direction exchanged-byte total for
	// the step (Figure 8's quantity).
	CommBytes float64
	// DRAMBytes is the array-wide cube-DRAM traffic for the step.
	DRAMBytes float64
	// PeakMemoryBytes is the per-accelerator working set of one
	// training step: local shards of every layer's weights, gradients,
	// input/output activations and errors (activations are retained
	// for the backward pass, so the sets sum across layers).
	PeakMemoryBytes float64
	// FitsMemory reports whether PeakMemoryBytes fits the HMC capacity.
	FitsMemory bool
	// Tasks is the size of the scheduled task graph.
	Tasks int
	// Trace holds every scheduled task when Arch.CollectTrace is set.
	Trace []trace.Record
}

// TotalCommSeconds sums the per-level link busy times.
func (s *Stats) TotalCommSeconds() float64 {
	var t float64
	for _, c := range s.CommSeconds {
		t += c
	}
	return t
}

// EnergyTotal sums the energy breakdown.
func (s *Stats) EnergyTotal() float64 {
	return s.EnergyCompute + s.EnergySRAM + s.EnergyDRAM + s.EnergyLink
}

// Simulate runs one training step of the model under the given
// hierarchical partition plan on the architecture, returning timing,
// energy and communication statistics.
//
// The task graph follows the paper's three phases. Forward: layer
// compute (with DRAM streaming overlapped), then the mp partial-sum
// exchange of F_{l+1} level by level, then the inter-layer F
// conversions, then the next layer. Backward mirrors forward with E
// tensors. Gradient computation for layer l starts as soon as E_{l+1}
// exists and overlaps the remaining backward sweep; dp levels then
// exchange gradient partial sums on the level links (contending with
// backward traffic), followed by the local weight update.
func Simulate(m *nn.Model, plan *partition.Plan, arch Arch) (*Stats, error) {
	return simulateOn(NewEngine(), m, plan, arch)
}

// Simulator owns a reusable engine so repeated simulations (sweeps,
// explorations, zoo comparisons) stop reallocating the task slab. A
// Simulator is not safe for concurrent use: give each worker its own
// (runner.MapWith exists for exactly that).
type Simulator struct {
	eng *Engine
}

// NewSimulator returns a Simulator with an empty engine.
func NewSimulator() *Simulator { return &Simulator{eng: NewEngine()} }

// Simulate is Simulate on the reusable engine.
func (s *Simulator) Simulate(m *nn.Model, plan *partition.Plan, arch Arch) (*Stats, error) {
	s.eng.Reset()
	return simulateOn(s.eng, m, plan, arch)
}

// simulateOn compiles and runs one training step on the given engine.
func simulateOn(eng *Engine, m *nn.Model, plan *partition.Plan, arch Arch) (*Stats, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	shapes, err := m.CachedShapes(plan.Batch)
	if err != nil {
		return nil, err
	}
	if len(plan.Levels) > 0 && len(shapes) != len(plan.Levels[0]) {
		return nil, fmt.Errorf("%w: plan is for %d layers, model %q has %d",
			ErrSim, len(plan.Levels[0]), m.Name, len(shapes))
	}
	preds, err := m.LayerPreds()
	if err != nil {
		return nil, err
	}
	if plan.Model != "" && plan.Model != m.Name {
		return nil, fmt.Errorf("%w: plan was computed for model %q, not %q",
			ErrSim, plan.Model, m.Name)
	}
	levels := plan.NumLevels()
	if arch.NoC.Levels() < levels {
		return nil, fmt.Errorf("%w: topology has %d levels, plan needs %d",
			ErrSim, arch.NoC.Levels(), levels)
	}
	if arch.LevelMems != nil && len(arch.LevelMems) < levels {
		return nil, fmt.Errorf("%w: %d per-level memory models, plan needs %d",
			ErrSim, len(arch.LevelMems), levels)
	}

	b := stepBuilder{
		shapes: shapes,
		preds:  preds,
		plan:   plan,
		arch:   arch,
		eng:    eng,
		named:  arch.CollectTrace,
		stats:  &Stats{CommSeconds: make([]float64, levels)},
	}
	if err := b.build(); err != nil {
		return nil, err
	}
	makespan, err := b.eng.Run()
	if err != nil {
		return nil, err
	}
	b.stats.StepSeconds = makespan
	b.stats.ComputeSeconds = b.compute.Busy()
	for h, r := range b.links {
		b.stats.CommSeconds[h] = r.Busy()
	}
	b.stats.CommBytes = plan.TotalBytes(arch.DType)
	b.stats.PeakMemoryBytes = b.workingSet()
	b.stats.FitsMemory = arch.Mem.Fits(b.stats.PeakMemoryBytes)
	b.stats.Tasks = b.eng.NumTasks()
	if arch.CollectTrace {
		b.stats.Trace = b.eng.TraceRecords()
	}
	return b.stats, nil
}

// stepBuilder compiles the step's task graph and accrues energy.
type stepBuilder struct {
	shapes []nn.LayerShapes
	preds  [][]int // resolved layer inputs (-1 = model input)
	plan   *partition.Plan
	arch   Arch
	eng    *Engine
	named  bool // format task names (only needed for trace export)
	stats  *Stats

	compute *Resource
	links   []*Resource

	// edges is the model's layer-to-layer edge list in the canonical
	// (Src, Dst) order the plan's per-edge volumes are indexed by;
	// outEdges/inEdges index it per layer.
	edges    []partition.Edge
	outEdges [][]int
	inEdges  [][]int

	// leafShard[l] is layer l's shard state below the whole hierarchy.
	leafShard []tensor.Shard
}

// accs returns the accelerator count 2^H.
func (b *stepBuilder) accs() float64 {
	return float64(int64(1) << uint(b.plan.NumLevels()))
}

// build constructs resources and the full task graph.
func (b *stepBuilder) build() error {
	levels := b.plan.NumLevels()
	b.compute = b.eng.AddResource("array-compute")
	b.links = make([]*Resource, levels)
	for h := 0; h < levels; h++ {
		b.links[h] = b.eng.AddResource(fmt.Sprintf("link-H%d", h+1))
	}

	nl := len(b.shapes)
	// The plan's per-edge conversion volumes are indexed parallel to
	// its own Edges, so schedule from that order when recorded; plans
	// without one (hand-built zero-level plans) derive the canonical
	// order from the model.
	b.edges = b.plan.Edges
	if b.edges == nil {
		b.edges = partition.EdgesOf(b.preds)
	} else {
		// The recorded edge set must be exactly the model's (any order):
		// per-edge volumes attached to wiring the model does not have
		// would silently charge conversions on the wrong edges.
		want := partition.EdgesOf(b.preds)
		if len(b.edges) != len(want) {
			return fmt.Errorf("%w: plan records %d edges, model has %d",
				ErrSim, len(b.edges), len(want))
		}
		set := make(map[partition.Edge]bool, len(want))
		for _, ed := range want {
			set[ed] = true
		}
		for _, ed := range b.edges {
			if !set[ed] {
				return fmt.Errorf("%w: plan edge %v is not an edge of model %q", ErrSim, ed, b.plan.Model)
			}
			delete(set, ed)
		}
	}
	b.outEdges = make([][]int, nl)
	b.inEdges = make([][]int, nl)
	for e, ed := range b.edges {
		if ed.Src < 0 || ed.Src >= nl || ed.Dst <= ed.Src || ed.Dst >= nl {
			return fmt.Errorf("%w: plan edge %v out of range for %d layers", ErrSim, ed, nl)
		}
		b.outEdges[ed.Src] = append(b.outEdges[ed.Src], e)
		b.inEdges[ed.Dst] = append(b.inEdges[ed.Dst], e)
	}

	b.leafShard = make([]tensor.Shard, nl)
	for l := 0; l < nl; l++ {
		for h := 0; h < levels; h++ {
			b.leafShard[l] = b.leafShard[l].Apply(b.plan.At(h, l) == comm.DP)
		}
	}

	fwdDone, err := b.buildForward()
	if err != nil {
		return err
	}
	return b.buildBackwardGradient(fwdDone)
}

// workingSet returns the per-accelerator bytes resident during one
// training step: weight and gradient shards plus the retained
// activations and errors of every layer.
func (b *stepBuilder) workingSet() float64 {
	es := float64(b.arch.DType.Size())
	var total float64
	for l, s := range b.shapes {
		sh := b.leafShard[l]
		w := sh.KernelElems(s.Kernel)
		in := sh.InputElems(s.In)
		out := sh.OutputElems(s.Out)
		// W + ∆W + F_l + F_{l+1} + E_{l+1} (E_l aliases the previous
		// layer's E_{l+1}).
		total += (2*w + in + 2*out) * es
	}
	return total
}

// taskName formats "prefix/layer" when names are collected and returns
// the empty string otherwise, keeping fmt off the hot path.
func (b *stepBuilder) taskName(prefix string, l int) string {
	if !b.named {
		return ""
	}
	return prefix + "/" + b.shapes[l].Layer.Name
}

// edgeTaskName formats "prefix/src->dst" for per-edge transfers, so a
// fork's parallel conversion chains stay distinguishable in traces.
func (b *stepBuilder) edgeTaskName(prefix string, e int) string {
	if !b.named {
		return ""
	}
	ed := b.edges[e]
	return prefix + "/" + b.shapes[ed.Src].Layer.Name + "->" + b.shapes[ed.Dst].Layer.Name
}

// phaseTask adds one compute+DRAM task for a phase of a layer and
// charges its energy.
func (b *stepBuilder) phaseTask(name string, l int, p nn.Phase, deps ...*Task) (*Task, error) {
	s := b.shapes[l]
	sh := b.leafShard[l]
	n := b.accs()

	perAccMACs := float64(s.MACs(p)) / n
	computeT := b.arch.Comp.ComputeTime(perAccMACs, s)

	opBytes, resBytes := b.phaseBytes(l, p)
	traffic := b.arch.Comp.DRAMTraffic(s, opBytes, resBytes)
	dramT := b.arch.Mem.DRAMTime(traffic)

	dur := computeT
	if dramT > dur {
		dur = dramT
	}

	// Energy, array-wide.
	b.stats.EnergyCompute += b.arch.Mem.MACEnergy(perAccMACs * n)
	b.stats.EnergySRAM += b.arch.Mem.SRAMEnergy(2 * perAccMACs * n)
	b.stats.EnergyDRAM += b.arch.Mem.DRAMEnergy(traffic * n)
	b.stats.DRAMBytes += traffic * n
	if p == nn.Forward {
		// Activation and pooling, local element-wise work.
		aux := float64(s.ActOps()+s.PoolOps()) / n
		b.stats.EnergyCompute += b.arch.Mem.AddEnergy(aux * n)
	}
	if p == nn.Gradient {
		// Weight update: one multiply-add per local weight shard.
		upd := sh.KernelElems(s.Kernel)
		b.stats.EnergyCompute += b.arch.Mem.AddEnergy(upd * n)
	}
	return b.eng.AddTask(name, dur, b.compute, deps...)
}

// phaseBytes returns the per-accelerator operand and result bytes of a
// phase under the leaf shard state.
func (b *stepBuilder) phaseBytes(l int, p nn.Phase) (op, res float64) {
	s := b.shapes[l]
	sh := b.leafShard[l]
	es := float64(b.arch.DType.Size())
	in := sh.InputElems(s.In) * es
	out := sh.OutputElems(s.Out) * es
	w := sh.KernelElems(s.Kernel) * es
	switch p {
	case nn.Forward:
		return in + w, out
	case nn.Backward:
		return out + w, in
	default: // Gradient
		return in + out, w
	}
}

// transferChain appends one NoC transfer task per hierarchy level with
// non-zero volume, chained after prev, charging link energy. Volumes
// are one-direction per-pair element counts; the exchange a link
// carries is both directions (the paper's 2× counting), and all pairs
// of a level move concurrently on that level's link resource.
func (b *stepBuilder) transferChain(name string, vols func(h int) float64, prev *Task) (*Task, error) {
	es := float64(b.arch.DType.Size())
	for h := 0; h < b.plan.NumLevels(); h++ {
		elems := vols(h)
		if elems <= 0 {
			continue
		}
		bytes := 2 * elems * es
		dur, err := b.arch.NoC.TransferTime(h, bytes)
		if err != nil {
			return nil, err
		}
		linkBytes, err := b.arch.NoC.LinkBytes(h, bytes)
		if err != nil {
			return nil, err
		}
		b.stats.EnergyLink += b.arch.LevelMem(h).LinkEnergy(linkBytes)
		id := ""
		if b.named {
			id = fmt.Sprintf("%s@H%d", name, h+1)
		}
		t, err := b.eng.AddTask(id, dur, b.links[h], prev)
		if err != nil {
			return nil, err
		}
		prev = t
	}
	return prev, nil
}

// dedupeDeps drops nil and repeated tasks, preserving order.
func dedupeDeps(deps []*Task) []*Task {
	out := make([]*Task, 0, len(deps))
	for _, d := range deps {
		if d == nil {
			continue
		}
		dup := false
		for _, e := range out {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	return out
}

// buildForward builds the forward sweep in topological (declaration)
// order and returns its final task. Each layer's compute waits for the
// F conversions of every incoming edge; a fork's duplicated feature map
// yields one conversion chain per outgoing edge, all branching off the
// producer's partial-sum exchange. For a chain this reproduces the
// historical linear sweep task for task.
func (b *stepBuilder) buildForward() (*Task, error) {
	convTail := make([]*Task, len(b.edges))
	var last *Task
	for l := range b.shapes {
		deps := make([]*Task, 0, len(b.inEdges[l]))
		for _, e := range b.inEdges[l] {
			deps = append(deps, convTail[e])
		}
		ct, err := b.phaseTask(b.taskName("fwd", l), l, nn.Forward, dedupeDeps(deps)...)
		if err != nil {
			return nil, err
		}
		// mp partial-sum exchange of F_{l+1}, level by level.
		t, err := b.transferChain(b.taskName("fwd-psum", l),
			func(h int) float64 { return b.plan.Details[h].IntraFwd[l] }, ct)
		if err != nil {
			return nil, err
		}
		// Inter-layer F conversion along every outgoing edge.
		for _, e := range b.outEdges[l] {
			e := e
			et, err := b.transferChain(b.edgeTaskName("fwd-conv", e),
				func(h int) float64 { return b.plan.Details[h].InterF[e] }, t)
			if err != nil {
				return nil, err
			}
			convTail[e] = et
		}
		if len(b.outEdges[l]) == 0 {
			// The sink: its post-exchange output feeds the loss.
			last = t
		}
	}
	return last, nil
}

// buildBackwardGradient builds the backward sweep in reverse
// topological order. A layer's output error is ready once every
// consumer has run its backward compute and pushed the E conversion of
// the connecting edge — a fork's skip tensor therefore joins error
// contributions from every consumer edge before the producer's
// gradient and backward phases run. In the default phase-serial
// schedule each layer runs gradient compute, gradient exchange,
// backward compute and E conversions in order before the next layer
// starts — matching the paper's per-layer execution. With
// OverlapGradComm, gradient work branches off the sweep and contends
// only for the compute and link resources. For a chain this reproduces
// the historical linear sweep task for task.
func (b *stepBuilder) buildBackwardGradient(fwdDone *Task) error {
	nl := len(b.shapes)
	errTail := make([]*Task, len(b.edges))
	prev := fwdDone // the sink's E comes out of the loss right after forward
	for l := nl - 1; l >= 0; l-- {
		// The layer's output error: the loss for the sink, otherwise the
		// E conversions of every outgoing edge.
		errDeps := make([]*Task, 0, len(b.outEdges[l])+1)
		errDeps = append(errDeps, prev)
		for _, e := range b.outEdges[l] {
			errDeps = append(errDeps, errTail[e])
		}
		errDeps = dedupeDeps(errDeps)

		// Gradient for layer l consumes the layer's output error.
		gt, err := b.phaseTask(b.taskName("grad", l), l, nn.Gradient, errDeps...)
		if err != nil {
			return err
		}
		// dp gradient partial-sum exchange (allreduce), level by level.
		gTail, err := b.transferChain(b.taskName("grad-psum", l),
			func(h int) float64 { return b.plan.Details[h].IntraGrad[l] }, gt)
		if err != nil {
			return err
		}
		if !b.arch.OverlapGradComm {
			prev = gTail
		}
		if len(b.inEdges[l]) == 0 {
			// Only the model input feeds this layer: its input error is
			// never consumed, so there is no backward compute.
			continue
		}
		bdeps := dedupeDeps(append([]*Task{prev}, errDeps...))
		ct, err := b.phaseTask(b.taskName("bwd", l), l, nn.Backward, bdeps...)
		if err != nil {
			return err
		}
		// Inter-layer E conversion along every incoming edge.
		t := ct
		for _, e := range b.inEdges[l] {
			e := e
			t, err = b.transferChain(b.edgeTaskName("bwd-conv", e),
				func(h int) float64 { return b.plan.Details[h].InterE[e] }, t)
			if err != nil {
				return err
			}
			errTail[e] = t
		}
		prev = t
	}
	return nil
}

package sim

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/noc"
	"repro/internal/partition"
	"repro/internal/platform"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Arch bundles the hardware configuration of one HyPar accelerator
// array: the per-node memory and energy model, the per-node compute
// engine, and the inter-node network. The cost models are the
// platform.Platform interfaces, so the same step builder simulates the
// paper's HMC array, a GPU-HBM array or a TPU-style systolic array —
// only the Arch contents change.
type Arch struct {
	Mem   platform.Memory
	Comp  platform.Compute
	NoC   noc.Topology
	DType tensor.DType

	// OverlapGradComm lets gradient partial-sum exchanges proceed
	// concurrently with the remaining backward sweep instead of
	// serializing phase by phase. The paper's simulator executes the
	// phases of each layer in order (the default here); overlapping is
	// provided as an ablation of what a communication-hiding runtime
	// would recover.
	OverlapGradComm bool

	// CollectTrace records every scheduled task into Stats.Trace for
	// Chrome trace export and occupancy analysis.
	CollectTrace bool
}

// DefaultArch returns the paper's evaluation platform: sixteen
// HMC-based accelerators (H = 4) on an H-tree with 1600 Mb/s links.
func DefaultArch(levels int) (Arch, error) {
	p := platform.HMC()
	ht, err := noc.NewHTree(levels, p.DefaultLinkMbps())
	if err != nil {
		return Arch{}, err
	}
	return Arch{Mem: p.Memory(), Comp: p.Compute(), NoC: ht, DType: tensor.Float32}, nil
}

// Validate checks the architecture.
func (a Arch) Validate() error {
	if a.Mem == nil {
		return fmt.Errorf("%w: nil memory model", ErrSim)
	}
	if err := a.Mem.Validate(); err != nil {
		return err
	}
	if a.Comp == nil {
		return fmt.Errorf("%w: nil compute model", ErrSim)
	}
	if err := a.Comp.Validate(); err != nil {
		return err
	}
	if a.NoC == nil {
		return fmt.Errorf("%w: nil topology", ErrSim)
	}
	return nil
}

// Stats aggregates the outcome of simulating one training step.
type Stats struct {
	// StepSeconds is the makespan of one complete training step.
	StepSeconds float64
	// ComputeSeconds is the accelerator-array busy time (compute+DRAM
	// critical path contribution).
	ComputeSeconds float64
	// CommSeconds[h] is the busy time of hierarchy level h's links.
	CommSeconds []float64

	// Energy breakdown, joules, summed over the whole array.
	EnergyCompute float64
	EnergySRAM    float64
	EnergyDRAM    float64
	EnergyLink    float64

	// CommBytes is the paper's both-direction exchanged-byte total for
	// the step (Figure 8's quantity).
	CommBytes float64
	// DRAMBytes is the array-wide cube-DRAM traffic for the step.
	DRAMBytes float64
	// PeakMemoryBytes is the per-accelerator working set of one
	// training step: local shards of every layer's weights, gradients,
	// input/output activations and errors (activations are retained
	// for the backward pass, so the sets sum across layers).
	PeakMemoryBytes float64
	// FitsMemory reports whether PeakMemoryBytes fits the HMC capacity.
	FitsMemory bool
	// Tasks is the size of the scheduled task graph.
	Tasks int
	// Trace holds every scheduled task when Arch.CollectTrace is set.
	Trace []trace.Record
}

// TotalCommSeconds sums the per-level link busy times.
func (s *Stats) TotalCommSeconds() float64 {
	var t float64
	for _, c := range s.CommSeconds {
		t += c
	}
	return t
}

// EnergyTotal sums the energy breakdown.
func (s *Stats) EnergyTotal() float64 {
	return s.EnergyCompute + s.EnergySRAM + s.EnergyDRAM + s.EnergyLink
}

// Simulate runs one training step of the model under the given
// hierarchical partition plan on the architecture, returning timing,
// energy and communication statistics.
//
// The task graph follows the paper's three phases. Forward: layer
// compute (with DRAM streaming overlapped), then the mp partial-sum
// exchange of F_{l+1} level by level, then the inter-layer F
// conversions, then the next layer. Backward mirrors forward with E
// tensors. Gradient computation for layer l starts as soon as E_{l+1}
// exists and overlaps the remaining backward sweep; dp levels then
// exchange gradient partial sums on the level links (contending with
// backward traffic), followed by the local weight update.
func Simulate(m *nn.Model, plan *partition.Plan, arch Arch) (*Stats, error) {
	return simulateOn(NewEngine(), m, plan, arch)
}

// Simulator owns a reusable engine so repeated simulations (sweeps,
// explorations, zoo comparisons) stop reallocating the task slab. A
// Simulator is not safe for concurrent use: give each worker its own
// (runner.MapWith exists for exactly that).
type Simulator struct {
	eng *Engine
}

// NewSimulator returns a Simulator with an empty engine.
func NewSimulator() *Simulator { return &Simulator{eng: NewEngine()} }

// Simulate is Simulate on the reusable engine.
func (s *Simulator) Simulate(m *nn.Model, plan *partition.Plan, arch Arch) (*Stats, error) {
	s.eng.Reset()
	return simulateOn(s.eng, m, plan, arch)
}

// simulateOn compiles and runs one training step on the given engine.
func simulateOn(eng *Engine, m *nn.Model, plan *partition.Plan, arch Arch) (*Stats, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	shapes, err := m.CachedShapes(plan.Batch)
	if err != nil {
		return nil, err
	}
	if len(plan.Levels) > 0 && len(shapes) != len(plan.Levels[0]) {
		return nil, fmt.Errorf("%w: plan is for %d layers, model %q has %d",
			ErrSim, len(plan.Levels[0]), m.Name, len(shapes))
	}
	if plan.Model != "" && plan.Model != m.Name {
		return nil, fmt.Errorf("%w: plan was computed for model %q, not %q",
			ErrSim, plan.Model, m.Name)
	}
	levels := plan.NumLevels()
	if arch.NoC.Levels() < levels {
		return nil, fmt.Errorf("%w: topology has %d levels, plan needs %d",
			ErrSim, arch.NoC.Levels(), levels)
	}

	b := stepBuilder{
		shapes: shapes,
		plan:   plan,
		arch:   arch,
		eng:    eng,
		named:  arch.CollectTrace,
		stats:  &Stats{CommSeconds: make([]float64, levels)},
	}
	if err := b.build(); err != nil {
		return nil, err
	}
	makespan, err := b.eng.Run()
	if err != nil {
		return nil, err
	}
	b.stats.StepSeconds = makespan
	b.stats.ComputeSeconds = b.compute.Busy()
	for h, r := range b.links {
		b.stats.CommSeconds[h] = r.Busy()
	}
	b.stats.CommBytes = plan.TotalBytes(arch.DType)
	b.stats.PeakMemoryBytes = b.workingSet()
	b.stats.FitsMemory = arch.Mem.Fits(b.stats.PeakMemoryBytes)
	b.stats.Tasks = b.eng.NumTasks()
	if arch.CollectTrace {
		b.stats.Trace = b.eng.TraceRecords()
	}
	return b.stats, nil
}

// stepBuilder compiles the step's task graph and accrues energy.
type stepBuilder struct {
	shapes []nn.LayerShapes
	plan   *partition.Plan
	arch   Arch
	eng    *Engine
	named  bool // format task names (only needed for trace export)
	stats  *Stats

	compute *Resource
	links   []*Resource

	// leafShard[l] is layer l's shard state below the whole hierarchy.
	leafShard []tensor.Shard
}

// accs returns the accelerator count 2^H.
func (b *stepBuilder) accs() float64 {
	return float64(int64(1) << uint(b.plan.NumLevels()))
}

// build constructs resources and the full task graph.
func (b *stepBuilder) build() error {
	levels := b.plan.NumLevels()
	b.compute = b.eng.AddResource("array-compute")
	b.links = make([]*Resource, levels)
	for h := 0; h < levels; h++ {
		b.links[h] = b.eng.AddResource(fmt.Sprintf("link-H%d", h+1))
	}

	nl := len(b.shapes)
	b.leafShard = make([]tensor.Shard, nl)
	for l := 0; l < nl; l++ {
		for h := 0; h < levels; h++ {
			b.leafShard[l] = b.leafShard[l].Apply(b.plan.At(h, l) == comm.DP)
		}
	}

	fwdDone, err := b.buildForward()
	if err != nil {
		return err
	}
	return b.buildBackwardGradient(fwdDone)
}

// workingSet returns the per-accelerator bytes resident during one
// training step: weight and gradient shards plus the retained
// activations and errors of every layer.
func (b *stepBuilder) workingSet() float64 {
	es := float64(b.arch.DType.Size())
	var total float64
	for l, s := range b.shapes {
		sh := b.leafShard[l]
		w := sh.KernelElems(s.Kernel)
		in := sh.InputElems(s.In)
		out := sh.OutputElems(s.Out)
		// W + ∆W + F_l + F_{l+1} + E_{l+1} (E_l aliases the previous
		// layer's E_{l+1}).
		total += (2*w + in + 2*out) * es
	}
	return total
}

// taskName formats "prefix/layer" when names are collected and returns
// the empty string otherwise, keeping fmt off the hot path.
func (b *stepBuilder) taskName(prefix string, l int) string {
	if !b.named {
		return ""
	}
	return prefix + "/" + b.shapes[l].Layer.Name
}

// phaseTask adds one compute+DRAM task for a phase of a layer and
// charges its energy.
func (b *stepBuilder) phaseTask(name string, l int, p nn.Phase, deps ...*Task) (*Task, error) {
	s := b.shapes[l]
	sh := b.leafShard[l]
	n := b.accs()

	perAccMACs := float64(s.MACs(p)) / n
	computeT := b.arch.Comp.ComputeTime(perAccMACs, s)

	opBytes, resBytes := b.phaseBytes(l, p)
	traffic := b.arch.Comp.DRAMTraffic(s, opBytes, resBytes)
	dramT := b.arch.Mem.DRAMTime(traffic)

	dur := computeT
	if dramT > dur {
		dur = dramT
	}

	// Energy, array-wide.
	b.stats.EnergyCompute += b.arch.Mem.MACEnergy(perAccMACs * n)
	b.stats.EnergySRAM += b.arch.Mem.SRAMEnergy(2 * perAccMACs * n)
	b.stats.EnergyDRAM += b.arch.Mem.DRAMEnergy(traffic * n)
	b.stats.DRAMBytes += traffic * n
	if p == nn.Forward {
		// Activation and pooling, local element-wise work.
		aux := float64(s.ActOps()+s.PoolOps()) / n
		b.stats.EnergyCompute += b.arch.Mem.AddEnergy(aux * n)
	}
	if p == nn.Gradient {
		// Weight update: one multiply-add per local weight shard.
		upd := sh.KernelElems(s.Kernel)
		b.stats.EnergyCompute += b.arch.Mem.AddEnergy(upd * n)
	}
	return b.eng.AddTask(name, dur, b.compute, deps...)
}

// phaseBytes returns the per-accelerator operand and result bytes of a
// phase under the leaf shard state.
func (b *stepBuilder) phaseBytes(l int, p nn.Phase) (op, res float64) {
	s := b.shapes[l]
	sh := b.leafShard[l]
	es := float64(b.arch.DType.Size())
	in := sh.InputElems(s.In) * es
	out := sh.OutputElems(s.Out) * es
	w := sh.KernelElems(s.Kernel) * es
	switch p {
	case nn.Forward:
		return in + w, out
	case nn.Backward:
		return out + w, in
	default: // Gradient
		return in + out, w
	}
}

// transferChain appends one NoC transfer task per hierarchy level with
// non-zero volume, chained after prev, charging link energy. Volumes
// are one-direction per-pair element counts; the exchange a link
// carries is both directions (the paper's 2× counting), and all pairs
// of a level move concurrently on that level's link resource.
func (b *stepBuilder) transferChain(name string, vols func(h int) float64, prev *Task) (*Task, error) {
	es := float64(b.arch.DType.Size())
	for h := 0; h < b.plan.NumLevels(); h++ {
		elems := vols(h)
		if elems <= 0 {
			continue
		}
		bytes := 2 * elems * es
		dur, err := b.arch.NoC.TransferTime(h, bytes)
		if err != nil {
			return nil, err
		}
		linkBytes, err := b.arch.NoC.LinkBytes(h, bytes)
		if err != nil {
			return nil, err
		}
		b.stats.EnergyLink += b.arch.Mem.LinkEnergy(linkBytes)
		id := ""
		if b.named {
			id = fmt.Sprintf("%s@H%d", name, h+1)
		}
		t, err := b.eng.AddTask(id, dur, b.links[h], prev)
		if err != nil {
			return nil, err
		}
		prev = t
	}
	return prev, nil
}

// buildForward builds the forward sweep and returns its final task.
func (b *stepBuilder) buildForward() (*Task, error) {
	var prev *Task
	for l := range b.shapes {
		deps := []*Task{}
		if prev != nil {
			deps = append(deps, prev)
		}
		ct, err := b.phaseTask(b.taskName("fwd", l), l, nn.Forward, deps...)
		if err != nil {
			return nil, err
		}
		// mp partial-sum exchange of F_{l+1}, level by level.
		t, err := b.transferChain(b.taskName("fwd-psum", l),
			func(h int) float64 { return b.plan.Details[h].IntraFwd[l] }, ct)
		if err != nil {
			return nil, err
		}
		// Inter-layer F conversion toward layer l+1.
		t, err = b.transferChain(b.taskName("fwd-conv", l),
			func(h int) float64 { return b.plan.Details[h].InterF[l] }, t)
		if err != nil {
			return nil, err
		}
		prev = t
	}
	return prev, nil
}

// buildBackwardGradient builds the backward sweep. In the default
// phase-serial schedule each layer runs gradient compute, gradient
// exchange, backward compute and E conversion in order before the next
// layer starts — matching the paper's per-layer execution. With
// OverlapGradComm, gradient work branches off the sweep and contends
// only for the compute and link resources.
func (b *stepBuilder) buildBackwardGradient(fwdDone *Task) error {
	nl := len(b.shapes)
	prev := fwdDone // E_L comes out of the loss right after forward
	for l := nl - 1; l >= 0; l-- {
		// Gradient for layer l consumes E_{l+1}, available in prev.
		gt, err := b.phaseTask(b.taskName("grad", l), l, nn.Gradient, prev)
		if err != nil {
			return err
		}
		// dp gradient partial-sum exchange (allreduce), level by level.
		gTail, err := b.transferChain(b.taskName("grad-psum", l),
			func(h int) float64 { return b.plan.Details[h].IntraGrad[l] }, gt)
		if err != nil {
			return err
		}
		if !b.arch.OverlapGradComm {
			prev = gTail
		}
		if l == 0 {
			// E_0 is never consumed: no backward compute for layer 0.
			break
		}
		ct, err := b.phaseTask(b.taskName("bwd", l), l, nn.Backward, prev)
		if err != nil {
			return err
		}
		// Inter-layer E conversion across the l-1 / l boundary.
		t, err := b.transferChain(b.taskName("bwd-conv", l),
			func(h int) float64 { return b.plan.Details[h].InterE[l-1] }, ct)
		if err != nil {
			return err
		}
		prev = t
	}
	return nil
}

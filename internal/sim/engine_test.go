package sim

import (
	"errors"
	"math"
	"testing"
)

func TestEngineLinearChain(t *testing.T) {
	e := NewEngine()
	r := e.AddResource("r")
	a, err := e.AddTask("a", 1, r)
	if err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	b, _ := e.AddTask("b", 2, r, a)
	c, _ := e.AddTask("c", 3, r, b)
	mk, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mk != 6 {
		t.Errorf("makespan = %g, want 6", mk)
	}
	if c.Start != 3 || c.Finish != 6 {
		t.Errorf("c scheduled [%g,%g], want [3,6]", c.Start, c.Finish)
	}
	if r.Busy() != 6 {
		t.Errorf("resource busy = %g, want 6", r.Busy())
	}
}

func TestEngineParallelism(t *testing.T) {
	e := NewEngine()
	// Two independent tasks without resources overlap completely.
	a, _ := e.AddTask("a", 5, nil)
	bt, _ := e.AddTask("b", 5, nil)
	mk, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mk != 5 {
		t.Errorf("makespan = %g, want 5", mk)
	}
	if a.Start != 0 || bt.Start != 0 {
		t.Errorf("tasks start at %g and %g, want both 0", a.Start, bt.Start)
	}
}

func TestEngineResourceContention(t *testing.T) {
	e := NewEngine()
	r := e.AddResource("link")
	// Two ready-at-0 tasks on one resource serialize.
	e.AddTask("a", 4, r)
	e.AddTask("b", 4, r)
	mk, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mk != 8 {
		t.Errorf("makespan = %g, want 8", mk)
	}
}

func TestEngineDiamond(t *testing.T) {
	e := NewEngine()
	src, _ := e.AddTask("src", 1, nil)
	l, _ := e.AddTask("left", 2, nil, src)
	rgt, _ := e.AddTask("right", 7, nil, src)
	sink, _ := e.AddTask("sink", 1, nil, l, rgt)
	mk, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mk != 9 {
		t.Errorf("makespan = %g, want 9", mk)
	}
	if sink.Start != 8 {
		t.Errorf("sink start = %g, want 8", sink.Start)
	}
}

func TestEngineCycleDetection(t *testing.T) {
	e := NewEngine()
	a, _ := e.AddTask("a", 1, nil)
	b, _ := e.AddTask("b", 1, nil, a)
	a.After(b) // cycle
	if _, err := e.Run(); !errors.Is(err, ErrSim) {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestEngineBadDuration(t *testing.T) {
	e := NewEngine()
	if _, err := e.AddTask("neg", -1, nil); !errors.Is(err, ErrSim) {
		t.Errorf("negative duration accepted: %v", err)
	}
	if _, err := e.AddTask("nan", math.NaN(), nil); !errors.Is(err, ErrSim) {
		t.Errorf("NaN duration accepted: %v", err)
	}
	if _, err := e.AddTask("inf", math.Inf(1), nil); !errors.Is(err, ErrSim) {
		t.Errorf("Inf duration accepted: %v", err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	build := func() (*Engine, *Resource) {
		e := NewEngine()
		r := e.AddResource("r")
		var last *Task
		for i := 0; i < 50; i++ {
			var deps []*Task
			if last != nil && i%3 == 0 {
				deps = append(deps, last)
			}
			tk, _ := e.AddTask("t", float64(i%7)+1, r, deps...)
			last = tk
		}
		return e, r
	}
	e1, _ := build()
	e2, _ := build()
	m1, err1 := e1.Run()
	m2, err2 := e2.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("Run: %v %v", err1, err2)
	}
	if m1 != m2 {
		t.Errorf("nondeterministic makespan: %g vs %g", m1, m2)
	}
}

func TestAfterNil(t *testing.T) {
	e := NewEngine()
	a, _ := e.AddTask("a", 1, nil)
	a.After(nil) // no-op
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestZeroDurationTasks(t *testing.T) {
	e := NewEngine()
	r := e.AddResource("r")
	a, _ := e.AddTask("a", 0, r)
	b, _ := e.AddTask("b", 0, r, a)
	mk, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if mk != 0 || b.Finish != 0 {
		t.Errorf("zero-duration chain makespan = %g", mk)
	}
	if e.NumTasks() != 2 {
		t.Errorf("NumTasks = %d", e.NumTasks())
	}
}

package sim

import (
	"errors"
	"testing"

	"repro/internal/hmc"
	"repro/internal/nn"
	"repro/internal/noc"
	"repro/internal/partition"
	"repro/internal/pe"
	"repro/internal/tensor"
)

func arch4(t *testing.T) Arch {
	t.Helper()
	a, err := DefaultArch(4)
	if err != nil {
		t.Fatalf("DefaultArch: %v", err)
	}
	return a
}

func simulate(t *testing.T, m *nn.Model, plan *partition.Plan, a Arch) *Stats {
	t.Helper()
	s, err := Simulate(m, plan, a)
	if err != nil {
		t.Fatalf("Simulate(%s): %v", m.Name, err)
	}
	return s
}

func hyparPlan(t *testing.T, m *nn.Model, batch, levels int) *partition.Plan {
	t.Helper()
	p, err := partition.Hierarchical(m, batch, levels)
	if err != nil {
		t.Fatalf("Hierarchical(%s): %v", m.Name, err)
	}
	return p
}

func dpPlan(t *testing.T, m *nn.Model, batch, levels int) *partition.Plan {
	t.Helper()
	p, err := partition.DataParallel(m, batch, levels)
	if err != nil {
		t.Fatalf("DataParallel(%s): %v", m.Name, err)
	}
	return p
}

func mpPlan(t *testing.T, m *nn.Model, batch, levels int) *partition.Plan {
	t.Helper()
	p, err := partition.ModelParallel(m, batch, levels)
	if err != nil {
		t.Fatalf("ModelParallel(%s): %v", m.Name, err)
	}
	return p
}

func TestSimulateBasicSanity(t *testing.T) {
	a := arch4(t)
	for _, m := range nn.Zoo() {
		plan := hyparPlan(t, m, 256, 4)
		s := simulate(t, m, plan, a)
		if s.StepSeconds <= 0 {
			t.Errorf("%s: step time %g", m.Name, s.StepSeconds)
		}
		if s.ComputeSeconds <= 0 || s.ComputeSeconds > s.StepSeconds {
			t.Errorf("%s: compute busy %g outside (0, %g]", m.Name, s.ComputeSeconds, s.StepSeconds)
		}
		for h, c := range s.CommSeconds {
			if c < 0 || c > s.StepSeconds {
				t.Errorf("%s: level %d comm busy %g outside [0, %g]", m.Name, h, c, s.StepSeconds)
			}
		}
		if s.EnergyTotal() <= 0 {
			t.Errorf("%s: energy %g", m.Name, s.EnergyTotal())
		}
		if s.EnergyCompute <= 0 || s.EnergySRAM <= 0 || s.EnergyDRAM <= 0 {
			t.Errorf("%s: energy breakdown %+v", m.Name, s)
		}
		if s.CommBytes != plan.TotalBytes(tensor.Float32) {
			t.Errorf("%s: comm bytes %g != plan %g", m.Name, s.CommBytes, plan.TotalBytes(tensor.Float32))
		}
		if s.DRAMBytes <= 0 {
			t.Errorf("%s: dram bytes %g", m.Name, s.DRAMBytes)
		}
		if s.Tasks <= 0 {
			t.Errorf("%s: no tasks", m.Name)
		}
	}
}

// TestHyParFasterThanDP: Figure 6's headline — HyPar outperforms the
// default Data Parallelism on the large conv networks.
func TestHyParFasterThanDP(t *testing.T) {
	a := arch4(t)
	for _, name := range []string{"AlexNet", "VGG-A", "VGG-E", "Lenet-c", "Cifar-c"} {
		m, err := nn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		hp := simulate(t, m, hyparPlan(t, m, 256, 4), a)
		dp := simulate(t, m, dpPlan(t, m, 256, 4), a)
		if hp.StepSeconds >= dp.StepSeconds {
			t.Errorf("%s: HyPar %g s not faster than DP %g s", name, hp.StepSeconds, dp.StepSeconds)
		}
	}
}

// TestMPWorstOnConvNets: Figure 6 — Model Parallelism is almost always
// the worst choice; on conv-heavy networks it must trail DP.
func TestMPWorstOnConvNets(t *testing.T) {
	a := arch4(t)
	for _, name := range []string{"SCONV", "AlexNet", "VGG-A", "VGG-E"} {
		m, err := nn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dp := simulate(t, m, dpPlan(t, m, 256, 4), a)
		mp := simulate(t, m, mpPlan(t, m, 256, 4), a)
		if mp.StepSeconds <= dp.StepSeconds {
			t.Errorf("%s: MP %g s not slower than DP %g s", name, mp.StepSeconds, dp.StepSeconds)
		}
	}
}

// TestSFCInversion: Figure 6 — on the all-fc extreme case Model
// Parallelism beats Data Parallelism, and HyPar beats both.
func TestSFCInversion(t *testing.T) {
	a := arch4(t)
	m := nn.SFC()
	dp := simulate(t, m, dpPlan(t, m, 256, 4), a)
	mp := simulate(t, m, mpPlan(t, m, 256, 4), a)
	hp := simulate(t, m, hyparPlan(t, m, 256, 4), a)
	if mp.StepSeconds >= dp.StepSeconds {
		t.Errorf("SFC: MP %g s should beat DP %g s", mp.StepSeconds, dp.StepSeconds)
	}
	if hp.StepSeconds > mp.StepSeconds*(1+1e-9) {
		t.Errorf("SFC: HyPar %g s should not trail MP %g s", hp.StepSeconds, mp.StepSeconds)
	}
}

// TestSCONVEqualsDP: Figure 6 — on the all-conv extreme case HyPar
// picks Data Parallelism and performs identically.
func TestSCONVEqualsDP(t *testing.T) {
	a := arch4(t)
	m := nn.SCONV()
	dp := simulate(t, m, dpPlan(t, m, 256, 4), a)
	hp := simulate(t, m, hyparPlan(t, m, 256, 4), a)
	if diff := hp.StepSeconds - dp.StepSeconds; diff > 1e-12 {
		t.Errorf("SCONV: HyPar %g s != DP %g s", hp.StepSeconds, dp.StepSeconds)
	}
}

// TestEnergyOrdering: Figure 7 — HyPar consumes no more energy than DP,
// which consumes less than MP, on conv networks.
func TestEnergyOrdering(t *testing.T) {
	a := arch4(t)
	m := nn.VGGA()
	hp := simulate(t, m, hyparPlan(t, m, 256, 4), a)
	dp := simulate(t, m, dpPlan(t, m, 256, 4), a)
	mp := simulate(t, m, mpPlan(t, m, 256, 4), a)
	if hp.EnergyTotal() > dp.EnergyTotal() {
		t.Errorf("VGG-A: HyPar energy %g > DP %g", hp.EnergyTotal(), dp.EnergyTotal())
	}
	if dp.EnergyTotal() > mp.EnergyTotal() {
		t.Errorf("VGG-A: DP energy %g > MP %g", dp.EnergyTotal(), mp.EnergyTotal())
	}
}

// TestIdealNoCRemovesCommTime: with an infinite-bandwidth fabric the
// step collapses to its compute critical path, and all plans tie.
func TestIdealNoCRemovesCommTime(t *testing.T) {
	a := arch4(t)
	a.NoC = noc.NewIdeal(4)
	m := nn.VGGA()
	hp := simulate(t, m, hyparPlan(t, m, 256, 4), a)
	dp := simulate(t, m, dpPlan(t, m, 256, 4), a)
	if hp.TotalCommSeconds() != 0 || dp.TotalCommSeconds() != 0 {
		t.Errorf("ideal NoC has comm time: hp=%g dp=%g", hp.TotalCommSeconds(), dp.TotalCommSeconds())
	}
	rel := (dp.StepSeconds - hp.StepSeconds) / dp.StepSeconds
	if rel > 0.01 || rel < -0.01 {
		t.Errorf("ideal NoC: HyPar %g s vs DP %g s should be within 1%%", hp.StepSeconds, dp.StepSeconds)
	}
}

// TestTorusSlower: Figure 12 — the torus topology never beats the
// H-tree for HyPar's partitions.
func TestTorusSlower(t *testing.T) {
	aH := arch4(t)
	aT := arch4(t)
	tor, err := noc.NewTorus(4, 1600)
	if err != nil {
		t.Fatalf("NewTorus: %v", err)
	}
	aT.NoC = tor
	for _, name := range []string{"VGG-A", "AlexNet", "Lenet-c"} {
		m, err := nn.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		plan := hyparPlan(t, m, 256, 4)
		sh := simulate(t, m, plan, aH)
		st := simulate(t, m, plan, aT)
		if st.StepSeconds < sh.StepSeconds {
			t.Errorf("%s: torus %g s beats htree %g s", name, st.StepSeconds, sh.StepSeconds)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	a := arch4(t)
	m := nn.LenetC()
	plan := hyparPlan(t, m, 256, 4)

	// Mismatched plan and model.
	other := nn.SFC()
	if _, err := Simulate(other, plan, a); err == nil {
		t.Error("mismatched plan accepted")
	}
	// Topology shallower than the plan.
	shallow, _ := noc.NewHTree(2, 1600)
	bad := a
	bad.NoC = shallow
	if _, err := Simulate(m, plan, bad); !errors.Is(err, ErrSim) {
		t.Errorf("shallow topology accepted: %v", err)
	}
	// Nil topology.
	bad2 := a
	bad2.NoC = nil
	if _, err := Simulate(m, plan, bad2); !errors.Is(err, ErrSim) {
		t.Errorf("nil topology accepted: %v", err)
	}
	// Structurally invalid (ragged) plan.
	ragged := &partition.Plan{Batch: 256, Levels: []partition.Assignment{
		partition.Uniform(4, 0), partition.Uniform(3, 0),
	}}
	if _, err := Simulate(m, ragged, a); err == nil {
		t.Error("ragged plan accepted")
	}
	// A zero-level plan is a valid single-accelerator run.
	single := &partition.Plan{Model: m.Name, Batch: 256}
	if s, err := Simulate(m, single, a); err != nil || s.StepSeconds <= 0 {
		t.Errorf("single-accelerator plan rejected: %v", err)
	}
	// Invalid compute model.
	badPE := pe.Default()
	badPE.GOPS = 0
	bad3 := a
	bad3.Comp = badPE
	if _, err := Simulate(m, plan, bad3); err == nil {
		t.Error("invalid compute model accepted")
	}
	// Invalid memory model.
	badHMC := hmc.Default()
	badHMC.BandwidthGBs = 0
	bad4 := a
	bad4.Mem = badHMC
	if _, err := Simulate(m, plan, bad4); err == nil {
		t.Error("invalid memory model accepted")
	}
	// Nil cost models.
	bad5 := a
	bad5.Comp = nil
	if _, err := Simulate(m, plan, bad5); !errors.Is(err, ErrSim) {
		t.Errorf("nil compute model accepted: %v", err)
	}
	bad6 := a
	bad6.Mem = nil
	if _, err := Simulate(m, plan, bad6); !errors.Is(err, ErrSim) {
		t.Errorf("nil memory model accepted: %v", err)
	}
}

func TestDefaultArchBadLevels(t *testing.T) {
	if _, err := DefaultArch(-1); err == nil {
		t.Error("negative levels accepted")
	}
}

// TestGradientOverlapAblation: enabling OverlapGradComm can only
// shorten the step (it relaxes ordering constraints), and on gradient-
// heavy DP plans it must hide a meaningful share of the exchanges.
func TestGradientOverlapAblation(t *testing.T) {
	serialArch := arch4(t)
	overlapArch := arch4(t)
	overlapArch.OverlapGradComm = true
	m := nn.VGGA()
	plan := dpPlan(t, m, 256, 4)
	serial := simulate(t, m, plan, serialArch)
	overlap := simulate(t, m, plan, overlapArch)
	if overlap.StepSeconds > serial.StepSeconds*(1+1e-9) {
		t.Errorf("overlap %g s slower than serial %g s", overlap.StepSeconds, serial.StepSeconds)
	}
	if overlap.StepSeconds > serial.StepSeconds*0.95 {
		t.Errorf("overlap hides <5%% on DP VGG-A: %g vs %g", overlap.StepSeconds, serial.StepSeconds)
	}
	// In the serial schedule the step is at least compute plus the
	// gradient exchanges that sit on the critical path.
	if serial.StepSeconds < serial.ComputeSeconds {
		t.Errorf("step %g < compute busy %g", serial.StepSeconds, serial.ComputeSeconds)
	}
}

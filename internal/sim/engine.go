// Package sim provides the event-driven simulator the HyPar evaluation
// runs on (paper §6.1): a discrete-event engine scheduling dependent
// tasks over contended resources, and a training-step builder that
// compiles a model + hierarchical partition + hardware configuration
// into a task graph of per-layer compute, DRAM streaming and per-level
// NoC transfers for the forward, error-backward and gradient phases.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/trace"
)

// ErrSim reports an invalid simulation input or a malformed task graph.
var ErrSim = errors.New("sim: invalid simulation")

// Resource is an exclusive, serially reusable unit (a NoC level's link
// set, the accelerator array's compute). Tasks bound to the same
// resource execute one at a time in ready order.
type Resource struct {
	Name string
	free float64 // time at which the resource next becomes available
	busy float64 // accumulated busy time
}

// NewResource creates a named resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Busy returns the total time the resource spent occupied.
func (r *Resource) Busy() float64 { return r.busy }

// Task is one node of the simulated task graph.
type Task struct {
	ID       string
	Duration float64
	Resource *Resource // nil means unlimited parallelism

	Start  float64
	Finish float64

	succs   []*Task
	npred   int     // immutable dependency count, set by After
	pending int     // unresolved dependency count, consumed by Run
	ready   float64 // max finish time of resolved dependencies
	done    bool
}

// After declares that t cannot start before dep finishes.
func (t *Task) After(dep *Task) *Task {
	if dep == nil {
		return t
	}
	dep.succs = append(dep.succs, t)
	t.npred++
	return t
}

// slabBlock is the fixed allocation unit of the engine's task slab.
// Blocks are never grown past their capacity, so *Task pointers stay
// valid across appends and across Reset/reuse cycles.
const slabBlock = 512

// Engine accumulates tasks and resources and computes the schedule.
// A single Engine can be reused across simulations via Reset, which
// retains the task slab and resource storage to cut allocations; an
// Engine is not safe for concurrent use.
type Engine struct {
	tasks     []*Task
	resources []*Resource

	blocks [][]Task // task slab: fixed-capacity blocks, stable addresses
	cur    int      // first block with free capacity
	nres   int      // live resources (prefix of resources)
}

// NewEngine creates an empty engine.
func NewEngine() *Engine { return &Engine{} }

// Reset clears the engine for a new task graph while keeping the task
// slab and resource objects for reuse.
func (e *Engine) Reset() {
	e.tasks = e.tasks[:0]
	for i := range e.blocks {
		e.blocks[i] = e.blocks[i][:0]
	}
	e.cur = 0
	e.nres = 0
}

// newTask allocates a task from the slab.
func (e *Engine) newTask() *Task {
	for e.cur < len(e.blocks) && len(e.blocks[e.cur]) == cap(e.blocks[e.cur]) {
		e.cur++
	}
	if e.cur == len(e.blocks) {
		e.blocks = append(e.blocks, make([]Task, 0, slabBlock))
	}
	b := e.blocks[e.cur]
	e.blocks[e.cur] = b[:len(b)+1]
	t := &e.blocks[e.cur][len(b)]
	// Reused slots keep their succs backing array.
	*t = Task{succs: t.succs[:0]}
	return t
}

// AddResource registers and returns a named resource, reusing storage
// retained by Reset when available.
func (e *Engine) AddResource(name string) *Resource {
	if e.nres < len(e.resources) {
		r := e.resources[e.nres]
		r.Name, r.free, r.busy = name, 0, 0
		e.nres++
		return r
	}
	r := NewResource(name)
	e.resources = append(e.resources, r)
	e.nres = len(e.resources)
	return r
}

// AddTask registers a task with the given duration on the (possibly
// nil) resource, depending on deps. The ID may be empty when no trace
// is collected; it is never interpreted.
func (e *Engine) AddTask(id string, duration float64, res *Resource, deps ...*Task) (*Task, error) {
	if duration < 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		return nil, fmt.Errorf("%w: task %q has duration %g", ErrSim, id, duration)
	}
	t := e.newTask()
	t.ID, t.Duration, t.Resource = id, duration, res
	for _, d := range deps {
		t.After(d)
	}
	e.tasks = append(e.tasks, t)
	return t, nil
}

// readyHeap orders tasks by ready time, breaking ties by insertion
// order for determinism.
type readyItem struct {
	task *Task
	seq  int
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].task.ready != h[j].task.ready {
		return h[i].task.ready < h[j].task.ready
	}
	return h[i].seq < h[j].seq
}
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run schedules every task and returns the makespan. Tasks bound to a
// resource are served in ready order (FIFO per resource); independent
// tasks overlap freely. Run fails on dependency cycles.
//
// Run is reentrant: it rebuilds all scheduling state (pending counts,
// ready times, resource availability) from the declared graph, so a
// second Run on the same engine reproduces the first run's schedule
// instead of silently consuming stale state.
func (e *Engine) Run() (float64, error) {
	for i := 0; i < e.nres; i++ {
		r := e.resources[i]
		r.free, r.busy = 0, 0
	}
	var rh readyHeap
	seq := 0
	for _, t := range e.tasks {
		t.done = false
		t.pending = t.npred
		t.ready = 0
		t.Start, t.Finish = 0, 0
	}
	for _, t := range e.tasks {
		if t.pending == 0 {
			heap.Push(&rh, readyItem{task: t, seq: seq})
			seq++
		}
	}
	var makespan float64
	scheduled := 0
	for rh.Len() > 0 {
		it := heap.Pop(&rh).(readyItem)
		t := it.task
		t.Start = t.ready
		if t.Resource != nil && t.Resource.free > t.Start {
			t.Start = t.Resource.free
		}
		t.Finish = t.Start + t.Duration
		if t.Resource != nil {
			t.Resource.free = t.Finish
			t.Resource.busy += t.Duration
		}
		t.done = true
		scheduled++
		if t.Finish > makespan {
			makespan = t.Finish
		}
		for _, s := range t.succs {
			s.pending--
			if t.Finish > s.ready {
				s.ready = t.Finish
			}
			if s.pending == 0 {
				heap.Push(&rh, readyItem{task: s, seq: seq})
				seq++
			}
		}
	}
	if scheduled != len(e.tasks) {
		return 0, fmt.Errorf("%w: %d of %d tasks never became ready (dependency cycle)",
			ErrSim, len(e.tasks)-scheduled, len(e.tasks))
	}
	return makespan, nil
}

// NumTasks returns the number of registered tasks.
func (e *Engine) NumTasks() int { return len(e.tasks) }

// TraceRecords exports the scheduled tasks as trace records (call
// after Run).
func (e *Engine) TraceRecords() []trace.Record {
	recs := make([]trace.Record, 0, len(e.tasks))
	for _, t := range e.tasks {
		res := ""
		if t.Resource != nil {
			res = t.Resource.Name
		}
		recs = append(recs, trace.Record{
			Name: t.ID, Resource: res, Start: t.Start, Finish: t.Finish,
		})
	}
	return recs
}

package sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/nn"
	"repro/internal/partition"
)

// buildDiamond registers a four-task diamond graph on the engine.
func buildDiamond(t *testing.T, e *Engine) {
	t.Helper()
	r := e.AddResource("r")
	a, err := e.AddTask("a", 1, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.AddTask("b", 2, nil, a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.AddTask("c", 3, r, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddTask("d", 1, nil, b, c); err != nil {
		t.Fatal(err)
	}
}

func TestRunIsReentrant(t *testing.T) {
	e := NewEngine()
	buildDiamond(t, e)
	first, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// A second Run on the same graph must reproduce the schedule, not
	// consume stale pending counts or ready times.
	second, err := e.Run()
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if first != second {
		t.Errorf("second Run makespan %g != first %g", second, first)
	}
}

func TestResetReusesStorage(t *testing.T) {
	e := NewEngine()
	buildDiamond(t, e)
	first, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.Reset()
		if e.NumTasks() != 0 {
			t.Fatalf("Reset left %d tasks", e.NumTasks())
		}
		buildDiamond(t, e)
		got, err := e.Run()
		if err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
		if got != first {
			t.Errorf("reuse %d: makespan %g, want %g", i, got, first)
		}
	}
}

func TestResetSlabPointerStability(t *testing.T) {
	e := NewEngine()
	// Force multiple slab blocks and check dependencies still resolve.
	var prev *Task
	n := 3*slabBlock + 17
	for i := 0; i < n; i++ {
		tk, err := e.AddTask("", 1, nil, prev)
		if err != nil {
			t.Fatal(err)
		}
		prev = tk
	}
	got, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n); got != want {
		t.Errorf("chain makespan %g, want %g", got, want)
	}
}

func TestRunDetectsCycleAfterReset(t *testing.T) {
	e := NewEngine()
	a, _ := e.AddTask("a", 1, nil)
	b, _ := e.AddTask("b", 1, nil, a)
	a.After(b)
	if _, err := e.Run(); !errors.Is(err, ErrSim) {
		t.Fatalf("cycle not detected: %v", err)
	}
	// The engine stays usable after the failed run.
	e.Reset()
	buildDiamond(t, e)
	if _, err := e.Run(); err != nil {
		t.Fatalf("run after cycle+reset: %v", err)
	}
}

// TestSimulatorMatchesSimulate checks engine reuse yields bit-identical
// stats to the one-shot path across models and strategies.
func TestSimulatorMatchesSimulate(t *testing.T) {
	arch, err := DefaultArch(4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulator()
	for _, m := range []*nn.Model{nn.LenetC(), nn.AlexNet(), nn.VGGA()} {
		for name, mk := range map[string]func(*nn.Model, int, int) (*partition.Plan, error){
			"hypar": partition.Hierarchical,
			"dp":    partition.DataParallel,
			"mp":    partition.ModelParallel,
		} {
			plan, err := mk(m, 256, 4)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Simulate(m, plan, arch)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Simulate(m, plan, arch)
			if err != nil {
				t.Fatal(err)
			}
			w := fmt.Sprintf("%+v", *want)
			g := fmt.Sprintf("%+v", *got)
			if w != g {
				t.Errorf("%s/%s: reused engine stats differ:\n got %s\nwant %s", m.Name, name, g, w)
			}
		}
	}
}

// Package faultinject provides deterministic, seed-driven fault
// injection for the evaluation service's chaos tests: evaluation
// errors, panics and artificial slowness, decided per (endpoint, key,
// attempt) by a pure hash so the same seed replays the same fault
// sequence regardless of goroutine interleaving. The injector plugs
// into the service behind the same seam the compute counter hook uses
// (service.Options.FaultHook), so production binaries carry no
// injection code path at all — a nil hook costs one pointer compare.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// ErrInjected marks an evaluation failure manufactured by the
// injector; chaos tests assert it stays in-band and never poisons a
// cache.
var ErrInjected = errors.New("faultinject: injected failure")

// Config selects what the injector does and how often. Rates are
// probabilities in [0, 1] evaluated in order error → panic → slow on
// one uniform draw, so ErrorRate+PanicRate+SlowRate ≤ 1 keeps them
// disjoint and an all-zero config injects nothing.
type Config struct {
	// Seed drives the per-decision hash; the same seed over the same
	// (endpoint, key, attempt) sequence reproduces the same faults.
	Seed int64
	// ErrorRate is the probability an evaluation fails with ErrInjected.
	ErrorRate float64
	// PanicRate is the probability an evaluation panics mid-compute.
	PanicRate float64
	// SlowRate is the probability an evaluation stalls for Slowness
	// (honoring context cancellation) before proceeding.
	SlowRate float64
	// Slowness is the artificial stall for slow decisions.
	Slowness time.Duration
}

// Injector decides faults deterministically from its config and the
// per-key attempt counter. Safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	cfg      Config
	attempts map[string]uint64 // per (endpoint, key) attempt ordinal

	errors int64
	panics int64
	slows  int64
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, attempts: make(map[string]uint64)}
}

// SetConfig swaps the active config (attempt counters are kept), so a
// chaos test can stop or change injection mid-flight.
func (in *Injector) SetConfig(cfg Config) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cfg = cfg
}

// Disable stops all injection while keeping counters and attempt
// history.
func (in *Injector) Disable() { in.SetConfig(Config{}) }

// Counts reports how many faults of each kind the injector has
// inflicted so far (errors, panics, slow stalls).
func (in *Injector) Counts() (errors, panics, slows int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.errors, in.panics, in.slows
}

// decide draws the fault for one attempt. Panics are counted before
// the panic unwinds.
func (in *Injector) decide(endpoint, key string) (fault int, slowness time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	ak := endpoint + "\x00" + key
	attempt := in.attempts[ak]
	in.attempts[ak] = attempt + 1

	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%s\x00%d", in.cfg.Seed, endpoint, key, attempt)
	// FNV's final xor-multiply barely avalanches its last input bytes
	// (the attempt ordinal), so finish with a splitmix64-style mixer
	// before drawing; 53 high bits → uniform in [0, 1) with full
	// float64 precision.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / (1 << 53)

	switch {
	case u < in.cfg.ErrorRate:
		in.errors++
		return 1, 0
	case u < in.cfg.ErrorRate+in.cfg.PanicRate:
		in.panics++
		return 2, 0
	case u < in.cfg.ErrorRate+in.cfg.PanicRate+in.cfg.SlowRate:
		in.slows++
		return 3, in.cfg.Slowness
	}
	return 0, 0
}

// Apply inflicts this attempt's fault, if any: it returns ErrInjected
// (wrapped with the endpoint) for an error decision, panics for a
// panic decision, and for a slow decision sleeps for the configured
// Slowness — returning ctx.Err() early if the context ends first. A
// nil ctx never cancels the stall.
func (in *Injector) Apply(ctx context.Context, endpoint, key string) error {
	fault, slowness := in.decide(endpoint, key)
	switch fault {
	case 1:
		return fmt.Errorf("%w: %s evaluation", ErrInjected, endpoint)
	case 2:
		panic(fmt.Sprintf("faultinject: injected panic in %s evaluation", endpoint))
	case 3:
		if slowness <= 0 {
			return nil
		}
		t := time.NewTimer(slowness)
		defer t.Stop()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-t.C:
			return nil
		case <-done:
			return ctx.Err()
		}
	}
	return nil
}

// Hook adapts the injector to the service's fault-hook seam
// (service.Options.FaultHook takes exactly this shape).
func (in *Injector) Hook() func(ctx context.Context, endpoint, key string) error {
	return in.Apply
}

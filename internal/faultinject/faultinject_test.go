package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// record replays one attempt and classifies the outcome.
func record(in *Injector, endpoint, key string) (fault string) {
	defer func() {
		if r := recover(); r != nil {
			fault = "panic"
		}
	}()
	err := in.Apply(context.Background(), endpoint, key)
	switch {
	case err == nil:
		return "none"
	case errors.Is(err, ErrInjected):
		return "error"
	default:
		return "other"
	}
}

// TestDeterministicReplay is the injector's core contract: the same
// seed over the same (endpoint, key, attempt) sequence reproduces the
// same fault decisions, whatever the interleaving was last time.
func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.3, PanicRate: 0.2, SlowRate: 0.2, Slowness: time.Microsecond}
	keys := []string{"k1", "k2", "k3"}
	run := func() []string {
		in := New(cfg)
		var out []string
		for attempt := 0; attempt < 40; attempt++ {
			for _, k := range keys {
				out = append(out, record(in, "evaluate", k))
			}
		}
		return out
	}
	a, b := run(), run()
	counts := map[string]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between replays: %s vs %s", i, a[i], b[i])
		}
		counts[a[i]]++
	}
	// With 120 draws at 30/20/50% the law of large numbers guarantees
	// every observable class appears; a missing class means the decision
	// hash is broken, not bad luck. (A finished slow stall returns nil,
	// so it lands in "none".)
	for _, class := range []string{"none", "error", "panic"} {
		if counts[class] == 0 {
			t.Errorf("class %q never drawn in 120 decisions: %v", class, counts)
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	mk := func(seed int64) string {
		in := New(Config{Seed: seed, ErrorRate: 0.5})
		var s string
		for i := 0; i < 64; i++ {
			if err := in.Apply(nil, "evaluate", "k"); err != nil {
				s += "e"
			} else {
				s += "."
			}
		}
		return s
	}
	if mk(1) == mk(2) {
		t.Fatal("seeds 1 and 2 produced identical 64-decision sequences")
	}
}

func TestRateExtremes(t *testing.T) {
	always := New(Config{ErrorRate: 1})
	for i := 0; i < 16; i++ {
		if err := always.Apply(nil, "evaluate", "k"); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: ErrorRate 1 returned %v, want ErrInjected", i, err)
		}
	}
	never := New(Config{})
	for i := 0; i < 16; i++ {
		if err := never.Apply(nil, "evaluate", "k"); err != nil {
			t.Fatalf("attempt %d: zero config injected %v", i, err)
		}
	}
	if e, p, s := always.Counts(); e != 16 || p != 0 || s != 0 {
		t.Fatalf("Counts() = %d, %d, %d; want 16, 0, 0", e, p, s)
	}
}

func TestPanicInjection(t *testing.T) {
	in := New(Config{PanicRate: 1})
	if got := record(in, "explore", "k"); got != "panic" {
		t.Fatalf("PanicRate 1 produced %q, want panic", got)
	}
	if _, p, _ := in.Counts(); p != 1 {
		t.Fatalf("panic count = %d, want 1 (counted before unwinding)", p)
	}
}

// TestSlowHonorsContext pins the deadline interaction: a long stall
// ends promptly when the context does, returning the context's error.
func TestSlowHonorsContext(t *testing.T) {
	in := New(Config{SlowRate: 1, Slowness: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	err := in.Apply(ctx, "evaluate", "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Apply = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("stall outlived its context by %v", elapsed)
	}
	if _, _, s := in.Counts(); s != 1 {
		t.Fatalf("slow count = %d, want 1", s)
	}
}

func TestDisableMidFlight(t *testing.T) {
	in := New(Config{Seed: 7, ErrorRate: 1})
	if err := in.Apply(nil, "evaluate", "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("before Disable: %v", err)
	}
	in.Disable()
	if err := in.Apply(nil, "evaluate", "k"); err != nil {
		t.Fatalf("after Disable: %v", err)
	}
}

package train

import (
	"errors"
	"math"
	"testing"

	"repro/internal/nn"
)

// tinyConvNet is a small conv+pool+fc network for numerical checks.
func tinyConvNet() *nn.Model {
	return &nn.Model{
		Name:  "tiny",
		Input: nn.Input{H: 6, W: 6, C: 1},
		Layers: []nn.Layer{
			nn.ConvPoolLayer("conv1", 3, 2, 2),
			{Name: "fc1", Type: nn.FC, Cout: 4, Act: nn.Softmax},
		},
	}
}

// tinyFCNet is a small all-fc network.
func tinyFCNet() *nn.Model {
	return &nn.Model{
		Name:  "tiny-fc",
		Input: nn.Input{H: 1, W: 1, C: 12},
		Layers: []nn.Layer{
			nn.FCLayer("fc1", 10),
			nn.FCLayer("fc2", 8),
			{Name: "fc3", Type: nn.FC, Cout: 4, Act: nn.Softmax},
		},
	}
}

func TestNewTensorErrors(t *testing.T) {
	if _, err := NewTensor(2, 0); !errors.Is(err, ErrTrain) {
		t.Errorf("zero dim accepted: %v", err)
	}
	if _, err := NewTensor(2, -3); !errors.Is(err, ErrTrain) {
		t.Errorf("negative dim accepted: %v", err)
	}
	x, err := NewTensor(2, 3)
	if err != nil || x.Len() != 6 {
		t.Fatalf("NewTensor: %v, len %d", err, x.Len())
	}
	if err := x.AddScaled(&Tensor{Data: make([]float64, 5)}, 1); !errors.Is(err, ErrTrain) {
		t.Errorf("mismatched AddScaled accepted: %v", err)
	}
	if _, err := MaxAbsDiff(x, &Tensor{Data: make([]float64, 5)}); !errors.Is(err, ErrTrain) {
		t.Errorf("mismatched MaxAbsDiff accepted: %v", err)
	}
}

func TestTensorOps(t *testing.T) {
	x, _ := NewTensor(2, 2)
	x.Data = []float64{1, 2, 3, 4}
	y := x.Clone()
	if err := y.AddScaled(x, 0.5); err != nil {
		t.Fatal(err)
	}
	if y.Data[3] != 6 {
		t.Errorf("AddScaled wrong: %v", y.Data)
	}
	d, err := MaxAbsDiff(x, y)
	if err != nil || d != 2 {
		t.Errorf("MaxAbsDiff = %g, %v; want 2", d, err)
	}
	y.Zero()
	if y.Data[0] != 0 || y.Data[3] != 0 {
		t.Error("Zero failed")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		if a.float64() != b.float64() {
			t.Fatal("rng not deterministic")
		}
	}
	z := newRNG(0)
	if z.state == 0 {
		t.Error("zero seed not remapped")
	}
	// Normal values should have roughly zero mean.
	r := newRNG(3)
	var sum float64
	for i := 0; i < 10000; i++ {
		sum += r.normal()
	}
	if m := sum / 10000; math.Abs(m) > 0.05 {
		t.Errorf("normal mean %g too far from 0", m)
	}
}

func TestForwardShapes(t *testing.T) {
	m := tinyConvNet()
	net, err := NewNetwork(m, 2, 1)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if net.Layers() != 2 {
		t.Fatalf("layers = %d", net.Layers())
	}
	x, _ := NewTensor(2, 6, 6, 1)
	for i := range x.Data {
		x.Data[i] = float64(i%7) / 7
	}
	logits, err := net.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if logits.Shape[0] != 2 || logits.Shape[1] != 4 {
		t.Errorf("logits shape %v, want [2 4]", logits.Shape)
	}
	// Wrong input geometry is rejected.
	bad, _ := NewTensor(2, 5, 6, 1)
	if _, err := net.Forward(bad); !errors.Is(err, ErrTrain) {
		t.Errorf("bad input accepted: %v", err)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := &Tensor{Shape: []int{2, 3}, Data: []float64{1, 1, 1, 5, 0, 0}}
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{0, 0})
	if err != nil {
		t.Fatalf("SoftmaxCrossEntropy: %v", err)
	}
	// Uniform row: loss ln(3); confident correct row: near 0.
	want := (math.Log(3) + -math.Log(math.Exp(5)/(math.Exp(5)+2))) / 2
	if math.Abs(loss-want) > 1e-9 {
		t.Errorf("loss = %g, want %g", loss, want)
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			sum += grad.Data[r*3+c]
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("grad row %d sums to %g", r, sum)
		}
	}
	// Error paths.
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0}); !errors.Is(err, ErrTrain) {
		t.Errorf("short labels accepted: %v", err)
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, 9}); !errors.Is(err, ErrTrain) {
		t.Errorf("out-of-range label accepted: %v", err)
	}
	if _, _, err := SoftmaxCrossEntropy(&Tensor{Shape: []int{6}, Data: logits.Data}, []int{0, 0}); !errors.Is(err, ErrTrain) {
		t.Errorf("1-D logits accepted: %v", err)
	}
}

// TestGradientCheck validates analytic gradients against central
// finite differences on a conv+pool+fc network — the backbone of every
// result in this repository's numerical substrate.
func TestGradientCheck(t *testing.T) {
	m := tinyConvNet()
	net, err := NewNetwork(m, 2, 42)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	x, _ := NewTensor(2, 6, 6, 1)
	r := newRNG(9)
	for i := range x.Data {
		x.Data[i] = r.normal()
	}
	labels := []int{1, 3}

	lossAt := func() float64 {
		logits, err := net.Forward(x)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		loss, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		return loss
	}

	// Analytic gradients.
	logits, err := net.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	_, dLogits, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	if _, err := net.Backward(dLogits); err != nil {
		t.Fatalf("Backward: %v", err)
	}

	const h = 1e-6
	for l := 0; l < net.Layers(); l++ {
		w := net.Weights(l)
		g := net.Grads(l)
		// Sample a spread of weights.
		for _, idx := range []int{0, w.Len() / 3, w.Len() / 2, w.Len() - 1} {
			orig := w.Data[idx]
			w.Data[idx] = orig + h
			up := lossAt()
			w.Data[idx] = orig - h
			down := lossAt()
			w.Data[idx] = orig
			num := (up - down) / (2 * h)
			ana := g.Data[idx]
			if diff := math.Abs(num - ana); diff > 1e-5*(1+math.Abs(num)) {
				t.Errorf("layer %d weight %d: numeric %g vs analytic %g", l, idx, num, ana)
			}
		}
	}
}

// TestTrainingConverges: a few SGD steps on a fixed synthetic batch
// must reduce the loss substantially — real learning end to end.
func TestTrainingConverges(t *testing.T) {
	m := tinyFCNet()
	net, err := NewNetwork(m, 16, 5)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	x, labels, err := SyntheticBatch(m, 16, 4, 11)
	if err != nil {
		t.Fatalf("SyntheticBatch: %v", err)
	}
	first, err := net.TrainStep(x, labels, 0.5)
	if err != nil {
		t.Fatalf("TrainStep: %v", err)
	}
	var last float64
	for i := 0; i < 60; i++ {
		last, err = net.TrainStep(x, labels, 0.5)
		if err != nil {
			t.Fatalf("TrainStep %d: %v", i, err)
		}
	}
	if !(last < first*0.5) {
		t.Errorf("loss did not converge: first %g, last %g", first, last)
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Errorf("loss diverged: %g", last)
	}
}

func TestSyntheticBatch(t *testing.T) {
	m := tinyFCNet()
	x1, l1, err := SyntheticBatch(m, 8, 4, 3)
	if err != nil {
		t.Fatalf("SyntheticBatch: %v", err)
	}
	x2, l2, err := SyntheticBatch(m, 8, 4, 3)
	if err != nil {
		t.Fatalf("SyntheticBatch: %v", err)
	}
	d, _ := MaxAbsDiff(x1, x2)
	if d != 0 {
		t.Error("synthetic data not deterministic")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Error("labels not deterministic")
		}
		if l1[i] < 0 || l1[i] >= 4 {
			t.Errorf("label %d out of range", l1[i])
		}
	}
	if _, _, err := SyntheticBatch(m, 8, 1, 3); !errors.Is(err, ErrTrain) {
		t.Errorf("single-class batch accepted: %v", err)
	}
}

func TestBackwardErrors(t *testing.T) {
	m := tinyFCNet()
	net, _ := NewNetwork(m, 4, 1)
	x, _ := NewTensor(4, 1, 1, 12)
	if _, err := net.Forward(x); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	bad, _ := NewTensor(4, 7)
	if _, err := net.Backward(bad); !errors.Is(err, ErrTrain) {
		t.Errorf("bad dLogits accepted: %v", err)
	}
}

// TestLenetTrains runs one real training step of the paper's Lenet-c at
// a small batch — the full conv/pool/fc pipeline at MNIST geometry.
func TestLenetTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("full Lenet step")
	}
	m := nn.LenetC()
	net, err := NewNetwork(m, 4, 2)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	x, labels, err := SyntheticBatch(m, 4, 10, 7)
	if err != nil {
		t.Fatalf("SyntheticBatch: %v", err)
	}
	loss, err := net.TrainStep(x, labels, 0.01)
	if err != nil {
		t.Fatalf("TrainStep: %v", err)
	}
	// Initial loss of a 10-class untrained net sits near ln(10).
	if loss < 0.5 || loss > 10 {
		t.Errorf("implausible initial loss %g", loss)
	}
}

// TestNewNetworkGraphModels pins the chain gate: genuinely branched
// models are rejected, but a graph-form model whose explicit inputs
// resolve to the plain chain trains fine.
func TestNewNetworkGraphModels(t *testing.T) {
	branched := nn.Incep2()
	if _, err := NewNetwork(branched, 2, 1); err == nil {
		t.Error("branched model accepted by the chain-only trainer")
	}
	explicitChain := &nn.Model{
		Name:  "explicit-chain",
		Input: nn.Input{H: 1, W: 1, C: 4},
		Layers: []nn.Layer{
			{Name: "fc1", Type: nn.FC, Cout: 8, Act: nn.ReLU, Inputs: []string{"input"}},
			{Name: "fc2", Type: nn.FC, Cout: 4, Act: nn.Softmax, Inputs: []string{"fc1"}},
		},
	}
	if _, err := NewNetwork(explicitChain, 2, 1); err != nil {
		t.Errorf("explicit-chain model rejected: %v", err)
	}
}

package train

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Forward runs the sharded forward pass on the full batch x
// [B × input] and returns the logits as reconstructed full tensors
// (for verification; the groups themselves keep only their shards).
func (s *ShardedFC) Forward(x *Tensor) (*Tensor, error) {
	if len(x.Shape) < 2 || x.Shape[0] != s.batch {
		return nil, fmt.Errorf("%w: input shape %v for batch %d", ErrTrain, x.Shape, s.batch)
	}
	in0 := int(s.shapes[0].Kernel.Cin)
	if x.Len() != s.batch*in0 {
		return nil, fmt.Errorf("%w: input has %d elements, want %d", ErrTrain, x.Len(), s.batch*in0)
	}
	flat := &Tensor{Shape: []int{s.batch, in0}, Data: x.Data}

	nl := len(s.shapes)
	for l := 0; l < nl; l++ {
		cin, cout := s.shapes[l].Kernel.Cin, s.shapes[l].Kernel.Cout
		for g := 0; g < 2; g++ {
			grp := s.groups[g]
			in, err := s.inputFor(l, g, flat)
			if err != nil {
				return nil, err
			}
			grp.in[l] = in
			var out *Tensor
			if s.assign[l] == comm.DP {
				out, err = matmul(in, grp.w[l], s.batch/2, cin, cout)
			} else {
				out, err = matmul(in, grp.w[l], s.batch, cin/2, cout)
			}
			if err != nil {
				return nil, err
			}
			grp.out[l] = out
		}
		if s.assign[l] == comm.MP {
			// Partial-sum exchange ⊕: each group reads the peer's full
			// partial output and accumulates (Table 1: A(F_{l+1})).
			p0, p1 := s.groups[0].out[l], s.groups[1].out[l]
			s.IntraFwd[l] += float64(p0.Len() + p1.Len())
			sum := p0.Clone()
			if err := sum.AddScaled(p1, 1); err != nil {
				return nil, err
			}
			s.groups[0].out[l] = sum
			s.groups[1].out[l] = sum.Clone()
		}
		// Activation in the output representation.
		if s.model.Layers[l].Act == nn.ReLU {
			for g := 0; g < 2; g++ {
				grp := s.groups[g]
				if grp.mask[l] == nil || len(grp.mask[l]) != grp.out[l].Len() {
					grp.mask[l] = make([]bool, grp.out[l].Len())
				}
				reluForward(grp.out[l], grp.mask[l])
			}
		}
	}
	return s.Logits(), nil
}

// inputFor materializes layer l's input in its required representation
// for group g, fetching (and counting) remote pieces per Table 2.
func (s *ShardedFC) inputFor(l, g int, x *Tensor) (*Tensor, error) {
	cin := s.shapes[l].Kernel.Cin
	cur := s.assign[l]

	if l == 0 {
		// Input distribution is free (the paper's model starts at the
		// first weighted layer's boundary).
		if cur == comm.DP {
			return rowsOf(x, g*s.batch/2, (g+1)*s.batch/2, cin), nil
		}
		return colsOf(x, s.batch, cin, g*cin/2, (g+1)*cin/2), nil
	}

	prev := s.assign[l-1]
	own := s.groups[g].out[l-1]
	peer := s.groups[1-g].out[l-1]
	switch {
	case prev == comm.DP && cur == comm.DP:
		// Rows already match.
		return own, nil
	case prev == comm.DP && cur == comm.MP:
		// Need [B × cin/2]: own rows' columns are local, the peer's
		// rows' columns are remote (Table 2 dp-mp: 0.25·A(F_l) each
		// direction).
		lo, hi := g*cin/2, (g+1)*cin/2
		ownCols := colsOf(own, s.batch/2, cin, lo, hi)
		peerCols := colsOf(peer, s.batch/2, cin, lo, hi)
		// One direction per group; summing both groups' fetches yields
		// the both-direction total.
		s.InterF[l-1] += float64(peerCols.Len())
		full, err := NewTensor(s.batch, cin/2)
		if err != nil {
			return nil, err
		}
		// Group g's rows occupy their batch positions; the peer's rows
		// theirs.
		w := cin / 2
		copy(full.Data[g*(s.batch/2)*w:(g+1)*(s.batch/2)*w], ownCols.Data)
		copy(full.Data[(1-g)*(s.batch/2)*w:(2-g)*(s.batch/2)*w], peerCols.Data)
		return full, nil
	case prev == comm.MP && cur == comm.DP:
		// Previous output is full and replicated: take own rows, free.
		return rowsOf(own, g*s.batch/2, (g+1)*s.batch/2, cin), nil
	default: // mp-mp
		// Previous output is full and replicated: take own columns.
		return colsOf(own, s.batch, cin, g*cin/2, (g+1)*cin/2), nil
	}
}

// Logits reconstructs the full logits matrix from the groups' shards.
func (s *ShardedFC) Logits() *Tensor {
	nl := len(s.shapes)
	cout := s.shapes[nl-1].Kernel.Cout
	if s.assign[nl-1] == comm.MP {
		return s.groups[0].out[nl-1].Clone()
	}
	full := &Tensor{Shape: []int{s.batch, cout}, Data: make([]float64, s.batch*cout)}
	copy(full.Data[:s.batch/2*cout], s.groups[0].out[nl-1].Data)
	copy(full.Data[s.batch/2*cout:], s.groups[1].out[nl-1].Data)
	return full
}

// Backward propagates the softmax/cross-entropy gradient for the given
// labels through both groups, accumulating weight gradients and
// counting every remote fetch; it then applies the SGD update.
func (s *ShardedFC) Backward(labels []int, lr float64) (float64, error) {
	nl := len(s.shapes)
	logits := s.Logits()
	loss, dLogits, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		return 0, err
	}

	// eNext[g] is E_{l+1} in layer l+1's production representation.
	// At the top the loss gradient arrives in the last layer's output
	// representation for free.
	eNext := make([]*Tensor, 2)
	cout := s.shapes[nl-1].Kernel.Cout
	if s.assign[nl-1] == comm.MP {
		eNext[0] = dLogits.Clone()
		eNext[1] = dLogits.Clone()
	} else {
		eNext[0] = rowsOf(dLogits, 0, s.batch/2, cout)
		eNext[1] = rowsOf(dLogits, s.batch/2, s.batch, cout)
	}
	eNextRepr := s.assign[nl-1] // representation eNext is currently in

	for l := nl - 1; l >= 0; l-- {
		cin, co := s.shapes[l].Kernel.Cin, s.shapes[l].Kernel.Cout
		cur := s.assign[l]
		// Convert E_{l+1} into layer l's required representation
		// (dp: own rows; mp: full), counting per Table 2. The top
		// layer's loss gradient already arrives in its own output
		// representation (dp: rows; mp: full), so no conversion there.
		dz := make([]*Tensor, 2)
		if l == nl-1 {
			dz[0] = eNext[0].Clone()
			dz[1] = eNext[1].Clone()
		} else {
			for g := 0; g < 2; g++ {
				e, fetched, err := s.errorFor(l, g, eNext, eNextRepr, co)
				if err != nil {
					return 0, err
				}
				s.InterE[l] += fetched
				dz[g] = e
			}
		}
		// Activation derivative in the output representation.
		if s.model.Layers[l].Act == nn.ReLU {
			for g := 0; g < 2; g++ {
				reluBackward(dz[g], s.groups[g].mask[l])
			}
		}
		// Gradient computation.
		for g := 0; g < 2; g++ {
			grp := s.groups[g]
			var dwPart *Tensor
			if cur == comm.DP {
				dwPart, err = matmulAT(grp.in[l], dz[g], s.batch/2, cin, co)
			} else {
				dwPart, err = matmulAT(grp.in[l], dz[g], s.batch, cin/2, co)
			}
			if err != nil {
				return 0, err
			}
			grp.dw[l] = dwPart
		}
		if cur == comm.DP {
			// Gradient partial-sum exchange ⊕ (Table 1: A(∆W_l)).
			d0, d1 := s.groups[0].dw[l], s.groups[1].dw[l]
			s.IntraGrad[l] += float64(d0.Len() + d1.Len())
			sum := d0.Clone()
			if err := sum.AddScaled(d1, 1); err != nil {
				return 0, err
			}
			s.groups[0].dw[l] = sum
			s.groups[1].dw[l] = sum.Clone()
		}
		// Error backward for the next iteration (skip below layer 0).
		if l > 0 {
			for g := 0; g < 2; g++ {
				grp := s.groups[g]
				if cur == comm.DP {
					eNext[g], err = matmulBT(dz[g], grp.w[l], s.batch/2, co, cin)
				} else {
					eNext[g], err = matmulBT(dz[g], grp.w[l], s.batch, co, cin/2)
				}
				if err != nil {
					return 0, err
				}
			}
			eNextRepr = cur
		}
		// SGD update on the local shard.
		for g := 0; g < 2; g++ {
			grp := s.groups[g]
			for i := range grp.w[l].Data {
				grp.w[l].Data[i] -= lr * grp.dw[l].Data[i]
			}
		}
	}
	return loss, nil
}

// errorFor materializes E_{l+1} for layer l / group g from the
// production representation, returning the tensor and the number of
// remotely fetched elements.
//
// Production representation semantics: under dp the producer holds its
// batch rows; under mp it holds its column shard (of the producing
// layer's input dimension = this layer's output dimension).
func (s *ShardedFC) errorFor(l, g int, eNext []*Tensor, prodRepr comm.Parallelism, co int) (*Tensor, float64, error) {
	cur := s.assign[l]
	own := eNext[g]
	peer := eNext[1-g]
	switch {
	case cur == comm.DP && prodRepr == comm.DP:
		return own.Clone(), 0, nil
	case cur == comm.DP && prodRepr == comm.MP:
		// Need own rows, full columns; own column shard is local, the
		// peer's column shard of our rows is remote (0.25·A each way).
		w := co / 2
		ownRows := rowsOf(own, g*s.batch/2, (g+1)*s.batch/2, w)
		peerRows := rowsOf(peer, g*s.batch/2, (g+1)*s.batch/2, w)
		full, err := NewTensor(s.batch/2, co)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < s.batch/2; i++ {
			copy(full.Data[i*co+g*w:i*co+(g+1)*w], ownRows.Data[i*w:(i+1)*w])
			copy(full.Data[i*co+(1-g)*w:i*co+(2-g)*w], peerRows.Data[i*w:(i+1)*w])
		}
		return full, float64(peerRows.Len()), nil
	case cur == comm.MP && prodRepr == comm.DP:
		// Need the full matrix; the peer's rows are remote (0.5·A).
		full, err := NewTensor(s.batch, co)
		if err != nil {
			return nil, 0, err
		}
		copy(full.Data[g*(s.batch/2)*co:(g+1)*(s.batch/2)*co], own.Data)
		copy(full.Data[(1-g)*(s.batch/2)*co:(2-g)*(s.batch/2)*co], peer.Data)
		return full, float64(peer.Len()), nil
	default: // mp needs full, produced mp column-split (0.5·A).
		w := co / 2
		full, err := NewTensor(s.batch, co)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < s.batch; i++ {
			copy(full.Data[i*co+g*w:i*co+(g+1)*w], own.Data[i*w:(i+1)*w])
			copy(full.Data[i*co+(1-g)*w:i*co+(2-g)*w], peer.Data[i*w:(i+1)*w])
		}
		return full, float64(peer.Len()), nil
	}
}

// FullWeights reconstructs layer l's complete weight matrix from the
// groups' shards (dp: replicated; mp: row-concatenated).
func (s *ShardedFC) FullWeights(l int) (*Tensor, error) {
	cin, cout := s.shapes[l].Kernel.Cin, s.shapes[l].Kernel.Cout
	if s.assign[l] == comm.DP {
		d, err := MaxAbsDiff(s.groups[0].w[l], s.groups[1].w[l])
		if err != nil {
			return nil, err
		}
		if d > 1e-9 {
			return nil, fmt.Errorf("%w: dp replicas diverged by %g at layer %d", ErrTrain, d, l)
		}
		return s.groups[0].w[l].Clone(), nil
	}
	full, err := NewTensor(cin, cout)
	if err != nil {
		return nil, err
	}
	half := (cin / 2) * cout
	copy(full.Data[:half], s.groups[0].w[l].Data)
	copy(full.Data[half:], s.groups[1].w[l].Data)
	return full, nil
}

// Step runs one full sharded training step and returns the loss.
func (s *ShardedFC) Step(x *Tensor, labels []int, lr float64) (float64, error) {
	if _, err := s.Forward(x); err != nil {
		return 0, err
	}
	return s.Backward(labels, lr)
}

// PredictedExchanges returns the analytic per-layer exchange volumes
// (elements, both directions) from the communication model of
// Tables 1-2 for this assignment, in the same categories the executor
// measures.
func (s *ShardedFC) PredictedExchanges() (intraFwd, intraGrad, interF, interE []float64) {
	nl := len(s.shapes)
	intraFwd = make([]float64, nl)
	intraGrad = make([]float64, nl)
	interF = make([]float64, nl)
	interE = make([]float64, nl)
	for l := 0; l < nl; l++ {
		a := comm.Amounts(s.shapes[l], tensor.Shard{})
		if s.assign[l] == comm.MP {
			intraFwd[l] = 2 * comm.Intra(comm.MP, a)
		} else {
			intraGrad[l] = 2 * comm.Intra(comm.DP, a)
		}
		if l+1 < nl {
			interF[l] = 2 * comm.InterF(s.assign[l], s.assign[l+1], a)
			interE[l] = 2 * comm.InterE(s.assign[l], s.assign[l+1], a)
		}
	}
	return intraFwd, intraGrad, interF, interE
}

package train

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
)

// ShardedFC executes real hybrid-parallel training of a fully-connected
// network across two accelerator groups, implementing the exact tensor
// partitioning of the paper's §3.1 worked example:
//
//   - dp: the mini-batch rows are split, the weight matrix is
//     replicated, and gradient partial sums are exchanged (⊕ in
//     Figure 1a);
//   - mp: the weight matrix is split along its input dimension, the
//     activations are split along columns, and output partial sums are
//     exchanged (⊕ in Figure 1b).
//
// Every element fetched from the peer group is counted, per layer and
// per category (forward partial sums, gradient partial sums, F and E
// boundary conversions), so tests can check the measured traffic
// against the analytic model of Tables 1-2 — and check that the
// sharded computation is numerically identical to single-device
// training.
//
// Convolutional layers under dp are the same row-split mathematics; the
// validator is restricted to fc networks to keep the mp column algebra
// exact and auditable. The architectural simulator covers conv mp
// analytically.
type ShardedFC struct {
	model  *nn.Model
	batch  int
	assign []comm.Parallelism
	shapes []nn.LayerShapes

	groups [2]*fcGroup

	// Measured remote element counts, both directions summed.
	IntraFwd  []float64 // mp output partial-sum exchanges per layer
	IntraGrad []float64 // dp gradient partial-sum exchanges per layer
	InterF    []float64 // F boundary conversions (index = producing layer)
	InterE    []float64 // E boundary conversions (index = producing layer)
}

// fcGroup is one accelerator group's state.
type fcGroup struct {
	id int
	// Per layer: the weight shard ([Cin,Cout] replicated under dp,
	// [Cin/2,Cout] rows under mp) and its gradient.
	w  []*Tensor
	dw []*Tensor
	// Forward caches per layer.
	in   []*Tensor // input in the layer's representation
	out  []*Tensor // activation output in the layer's representation
	mask [][]bool  // ReLU masks over out
}

// NewShardedFC splits the reference network's weights across two groups
// according to the single-level assignment. The reference network is
// not modified.
func NewShardedFC(ref *Network, assign []comm.Parallelism) (*ShardedFC, error) {
	for _, l := range ref.Model.Layers {
		if l.Type != nn.FC {
			return nil, fmt.Errorf("%w: ShardedFC supports fc layers only, got %q", ErrTrain, l.Name)
		}
	}
	if len(assign) != ref.Layers() {
		return nil, fmt.Errorf("%w: %d assignments for %d layers", ErrTrain, len(assign), ref.Layers())
	}
	if ref.Batch%2 != 0 {
		return nil, fmt.Errorf("%w: batch %d not divisible by two groups", ErrTrain, ref.Batch)
	}
	shapes, err := ref.Model.Shapes(ref.Batch)
	if err != nil {
		return nil, err
	}
	s := &ShardedFC{
		model:  ref.Model,
		batch:  ref.Batch,
		assign: append([]comm.Parallelism(nil), assign...),
		shapes: shapes,
	}
	nl := ref.Layers()
	s.IntraFwd = make([]float64, nl)
	s.IntraGrad = make([]float64, nl)
	s.InterF = make([]float64, nl)
	s.InterE = make([]float64, nl)
	for g := 0; g < 2; g++ {
		grp := &fcGroup{
			id: g, w: make([]*Tensor, nl), dw: make([]*Tensor, nl),
			in: make([]*Tensor, nl), out: make([]*Tensor, nl), mask: make([][]bool, nl),
		}
		for l := 0; l < nl; l++ {
			full := ref.Weights(l)
			cin, cout := shapes[l].Kernel.Cin, shapes[l].Kernel.Cout
			if assign[l] == comm.DP {
				grp.w[l] = full.Clone()
			} else {
				if cin%2 != 0 {
					return nil, fmt.Errorf("%w: layer %d Cin %d not divisible for mp", ErrTrain, l, cin)
				}
				half, err := NewTensor(cin/2, cout)
				if err != nil {
					return nil, err
				}
				copy(half.Data, full.Data[g*(cin/2)*cout:(g+1)*(cin/2)*cout])
				grp.w[l] = half
			}
			grp.dw[l] = grp.w[l].Clone()
			grp.dw[l].Zero()
		}
		s.groups[g] = grp
	}
	return s, nil
}

// TotalRemote returns the total measured remote elements, both
// directions summed.
func (s *ShardedFC) TotalRemote() float64 {
	var t float64
	for l := range s.IntraFwd {
		t += s.IntraFwd[l] + s.IntraGrad[l] + s.InterF[l] + s.InterE[l]
	}
	return t
}

// ResetCounters zeroes the measured traffic.
func (s *ShardedFC) ResetCounters() {
	for l := range s.IntraFwd {
		s.IntraFwd[l], s.IntraGrad[l], s.InterF[l], s.InterE[l] = 0, 0, 0, 0
	}
}

// matmul computes out = a [r×k] · b [k×c].
func matmul(a, b *Tensor, r, k, c int) (*Tensor, error) {
	out, err := NewTensor(r, c)
	if err != nil {
		return nil, err
	}
	for i := 0; i < r; i++ {
		for kk := 0; kk < k; kk++ {
			av := a.Data[i*k+kk]
			if av == 0 {
				continue
			}
			row := b.Data[kk*c : (kk+1)*c]
			outRow := out.Data[i*c : (i+1)*c]
			for j := 0; j < c; j++ {
				outRow[j] += av * row[j]
			}
		}
	}
	return out, nil
}

// matmulBT computes out = a [r×c] · bᵀ where b is [k×c] → out [r×k].
func matmulBT(a, b *Tensor, r, c, k int) (*Tensor, error) {
	out, err := NewTensor(r, k)
	if err != nil {
		return nil, err
	}
	for i := 0; i < r; i++ {
		aRow := a.Data[i*c : (i+1)*c]
		for kk := 0; kk < k; kk++ {
			bRow := b.Data[kk*c : (kk+1)*c]
			var acc float64
			for j := 0; j < c; j++ {
				acc += aRow[j] * bRow[j]
			}
			out.Data[i*k+kk] = acc
		}
	}
	return out, nil
}

// matmulAT computes out = aᵀ [k×r]ᵀ... i.e. a is [r×k], g is [r×c],
// out = aᵀ·g [k×c].
func matmulAT(a, g *Tensor, r, k, c int) (*Tensor, error) {
	out, err := NewTensor(k, c)
	if err != nil {
		return nil, err
	}
	for i := 0; i < r; i++ {
		aRow := a.Data[i*k : (i+1)*k]
		gRow := g.Data[i*c : (i+1)*c]
		for kk := 0; kk < k; kk++ {
			av := aRow[kk]
			if av == 0 {
				continue
			}
			outRow := out.Data[kk*c : (kk+1)*c]
			for j := 0; j < c; j++ {
				outRow[j] += av * gRow[j]
			}
		}
	}
	return out, nil
}

// rowsOf extracts rows [lo,hi) of a [r×c] matrix.
func rowsOf(t *Tensor, lo, hi, c int) *Tensor {
	out := &Tensor{Shape: []int{hi - lo, c}, Data: make([]float64, (hi-lo)*c)}
	copy(out.Data, t.Data[lo*c:hi*c])
	return out
}

// colsOf extracts columns [lo,hi) of a [r×c] matrix.
func colsOf(t *Tensor, r, c, lo, hi int) *Tensor {
	w := hi - lo
	out := &Tensor{Shape: []int{r, w}, Data: make([]float64, r*w)}
	for i := 0; i < r; i++ {
		copy(out.Data[i*w:(i+1)*w], t.Data[i*c+lo:i*c+hi])
	}
	return out
}

package train

import (
	"testing"

	"repro/internal/partition"
)

// TestHierarchicalBeamPlan: a beam-searched plan drives the training
// executor exactly like the exact search's plan. Chains dispatch the
// beam to the exact recurrence, so on the FC test net the two requests
// must produce the same assignment — and the executor must match
// single-device SGD on it, proving the unified Solve entry point feeds
// training end to end regardless of search method.
func TestHierarchicalBeamPlan(t *testing.T) {
	m := hierNet()
	const batch = 8
	ws := []partition.Weights{partition.UnitWeights(), partition.UnitWeights()}
	exact, err := partition.Solve(partition.Request{Model: m, Batch: batch, Levels: ws})
	if err != nil {
		t.Fatalf("exact solve: %v", err)
	}
	beam, err := partition.Solve(partition.Request{
		Model: m, Batch: batch, Levels: ws, Method: partition.MethodBeam, BeamWidth: 4,
	})
	if err != nil {
		t.Fatalf("beam solve: %v", err)
	}
	for h := range exact.Levels {
		for l := range exact.Levels[h] {
			if exact.Levels[h][l] != beam.Levels[h][l] {
				t.Fatalf("level %d layer %d: beam %v != exact %v (chains are exact at any width)",
					h, l, beam.Levels[h][l], exact.Levels[h][l])
			}
		}
	}

	ref, err := NewNetwork(m, batch, 77)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewNetwork(m, batch, 77)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewHierarchicalFC(ref, beam)
	if err != nil {
		t.Fatalf("NewHierarchicalFC on beam plan: %v", err)
	}
	x, labels, err := SyntheticBatch(m, batch, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	xNHWC := &Tensor{Shape: []int{batch, 1, 1, 16}, Data: x.Data}
	for step := 0; step < 3; step++ {
		refLoss, err := single.TrainStep(xNHWC, labels, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		hierLoss, err := hier.Step(x, labels, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if d := refLoss - hierLoss; d > 1e-9 || d < -1e-9 {
			t.Fatalf("step %d: losses diverge %g vs %g", step, refLoss, hierLoss)
		}
	}
}

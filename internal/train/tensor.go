// Package train is the numerical training substrate of the HyPar
// reproduction: real forward, error-backward and gradient computation
// for the paper's layer types (convolution with padding/stride, max
// pooling, ReLU/softmax, fully-connected), a mini-batch SGD loop, and a
// sharded two-group executor that runs hybrid-parallel training the way
// the HyPar array would and *counts the actual remote accesses*,
// validating the analytic communication model (Tables 1-2) empirically.
//
// The architectural simulator (internal/sim) never touches numbers —
// the paper's results are about communication, time and energy. This
// package exists to prove the partition semantics are sound: a plan's
// dp/mp sharding must reproduce single-device training exactly, and its
// measured exchange volumes must equal what internal/comm predicts.
// Values are float64 for verification fidelity; the architecture model
// accounts storage and traffic at the paper's 32-bit precision
// independently.
package train

import (
	"errors"
	"fmt"
	"math"
)

// ErrTrain reports an invalid numerical-substrate input.
var ErrTrain = errors.New("train: invalid input")

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zero tensor with the given shape.
func NewTensor(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: tensor dim %d", ErrTrain, d)
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float64, n)}, nil
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	s := make([]int, len(t.Shape))
	copy(s, t.Shape)
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return &Tensor{Shape: s, Data: d}
}

// Zero clears the tensor in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AddScaled accumulates a*x into t (shapes must match in length).
func (t *Tensor) AddScaled(x *Tensor, a float64) error {
	if len(t.Data) != len(x.Data) {
		return fmt.Errorf("%w: AddScaled length %d vs %d", ErrTrain, len(t.Data), len(x.Data))
	}
	for i := range t.Data {
		t.Data[i] += a * x.Data[i]
	}
	return nil
}

// MaxAbsDiff returns the largest absolute element difference between
// two equal-length tensors.
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if len(a.Data) != len(b.Data) {
		return 0, fmt.Errorf("%w: MaxAbsDiff length %d vs %d", ErrTrain, len(a.Data), len(b.Data))
	}
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// rng is a small deterministic PRNG (xorshift64*) so weight
// initialization is reproducible without math/rand plumbing.
type rng struct{ state uint64 }

// newRNG seeds the generator (zero seeds are remapped).
func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{state: s}
}

// next returns the next raw 64-bit value.
func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// normal returns a standard normal value (Box-Muller).
func (r *rng) normal() float64 {
	u1 := r.float64()
	for u1 == 0 {
		u1 = r.float64()
	}
	u2 := r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// fillNormal initializes the tensor with N(0, std²) values.
func (t *Tensor) fillNormal(r *rng, std float64) {
	for i := range t.Data {
		t.Data[i] = r.normal() * std
	}
}

package train

import (
	"fmt"
)

// DPPair executes data-parallel training of an arbitrary network
// (convolutions, pooling and fc alike) across two accelerator groups:
// each group holds a full weight replica and half the mini-batch, and
// the gradient partial sums are exchanged before the update — Figure
// 1(a) made concrete for the general layer mix the zoo uses. It
// complements ShardedFC (which adds mp but is fc-only): together they
// cover both parallelism classes numerically.
type DPPair struct {
	groups [2]*Network
	batch  int

	// GradExchanged counts the gradient elements exchanged, both
	// directions summed (Table 1: 2·A(∆W_l) per layer per step).
	GradExchanged float64
}

// NewDPPair builds two identically initialized replicas of the model.
func NewDPPair(ref *Network) (*DPPair, error) {
	if ref.Batch%2 != 0 {
		return nil, fmt.Errorf("%w: batch %d not divisible by two groups", ErrTrain, ref.Batch)
	}
	p := &DPPair{batch: ref.Batch}
	for g := 0; g < 2; g++ {
		net, err := NewNetwork(ref.Model, ref.Batch/2, 1)
		if err != nil {
			return nil, err
		}
		// Copy the reference weights so both replicas and the
		// single-device baseline start identically.
		for l := 0; l < ref.Layers(); l++ {
			copy(net.Weights(l).Data, ref.Weights(l).Data)
		}
		p.groups[g] = net
	}
	return p, nil
}

// Step runs one data-parallel training step on the full batch x
// (NHWC) and labels, returning the global loss.
func (p *DPPair) Step(x *Tensor, labels []int, lr float64) (float64, error) {
	if len(x.Shape) != 4 || x.Shape[0] != p.batch {
		return 0, fmt.Errorf("%w: input shape %v for batch %d", ErrTrain, x.Shape, p.batch)
	}
	if len(labels) != p.batch {
		return 0, fmt.Errorf("%w: %d labels for batch %d", ErrTrain, len(labels), p.batch)
	}
	half := p.batch / 2
	sliceLen := x.Len() / p.batch

	// Forward on each group's half batch.
	logits := make([]*Tensor, 2)
	for g := 0; g < 2; g++ {
		xg := &Tensor{
			Shape: []int{half, x.Shape[1], x.Shape[2], x.Shape[3]},
			Data:  x.Data[g*half*sliceLen : (g+1)*half*sliceLen],
		}
		lg, err := p.groups[g].Forward(xg)
		if err != nil {
			return 0, err
		}
		logits[g] = lg
	}

	// Global loss and gradient (normalized by the full batch, as a
	// single device would).
	classes := logits[0].Shape[1]
	full := &Tensor{Shape: []int{p.batch, classes}, Data: make([]float64, p.batch*classes)}
	copy(full.Data[:half*classes], logits[0].Data)
	copy(full.Data[half*classes:], logits[1].Data)
	loss, dLogits, err := SoftmaxCrossEntropy(full, labels)
	if err != nil {
		return 0, err
	}

	// Backward per group on its slice of the gradient.
	for g := 0; g < 2; g++ {
		dg := &Tensor{
			Shape: []int{half, classes},
			Data:  dLogits.Data[g*half*classes : (g+1)*half*classes],
		}
		if _, err := p.groups[g].Backward(dg); err != nil {
			return 0, err
		}
	}

	// Gradient partial-sum exchange ⊕ and replicated update.
	for l := 0; l < p.groups[0].Layers(); l++ {
		g0 := p.groups[0].Grads(l)
		g1 := p.groups[1].Grads(l)
		p.GradExchanged += float64(g0.Len() + g1.Len())
		if err := g0.AddScaled(g1, 1); err != nil {
			return 0, err
		}
		copy(g1.Data, g0.Data)
	}
	p.groups[0].Step(lr)
	p.groups[1].Step(lr)
	return loss, nil
}

// Weights returns group 0's weights for layer l (both replicas stay
// identical; VerifyReplicas checks that).
func (p *DPPair) Weights(l int) *Tensor { return p.groups[0].Weights(l) }

// VerifyReplicas returns the largest divergence between the two
// replicas' weights (zero when the exchange is implemented correctly).
func (p *DPPair) VerifyReplicas() (float64, error) {
	var worst float64
	for l := 0; l < p.groups[0].Layers(); l++ {
		d, err := MaxAbsDiff(p.groups[0].Weights(l), p.groups[1].Weights(l))
		if err != nil {
			return 0, err
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

package train

import (
	"fmt"

	"repro/internal/nn"
)

// convForward computes out[b,oh,ow,co] = Σ_{kh,kw,ci} in[b,ih,iw,ci] ·
// w[kh,kw,ci,co] with the layer's stride and zero padding. Tensors are
// laid out NHWC; kernels KKIO.
func convForward(in *Tensor, w *Tensor, l nn.Layer, out *Tensor) {
	b, ih, iw, ci := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow, co := out.Shape[1], out.Shape[2], out.Shape[3]
	k := l.K
	stride := l.Stride
	if stride <= 0 {
		stride = 1
	}
	pad := l.Pad
	for bi := 0; bi < b; bi++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for c := 0; c < co; c++ {
					var acc float64
					for ky := 0; ky < k; ky++ {
						sy := y*stride + ky - pad
						if sy < 0 || sy >= ih {
							continue
						}
						for kx := 0; kx < k; kx++ {
							sx := x*stride + kx - pad
							if sx < 0 || sx >= iw {
								continue
							}
							inBase := ((bi*ih+sy)*iw + sx) * ci
							wBase := ((ky*k + kx) * ci) * co
							for cc := 0; cc < ci; cc++ {
								acc += in.Data[inBase+cc] * w.Data[wBase+cc*co+c]
							}
						}
					}
					out.Data[((bi*oh+y)*ow+x)*co+c] = acc
				}
			}
		}
	}
}

// convBackward computes the input gradient dIn and weight gradient dW
// from the output gradient dOut (all NHWC / KKIO).
func convBackward(in, w, dOut *Tensor, l nn.Layer, dIn, dW *Tensor) {
	b, ih, iw, ci := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow, co := dOut.Shape[1], dOut.Shape[2], dOut.Shape[3]
	k := l.K
	stride := l.Stride
	if stride <= 0 {
		stride = 1
	}
	pad := l.Pad
	dIn.Zero()
	dW.Zero()
	for bi := 0; bi < b; bi++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				outBase := ((bi*oh+y)*ow + x) * co
				for ky := 0; ky < k; ky++ {
					sy := y*stride + ky - pad
					if sy < 0 || sy >= ih {
						continue
					}
					for kx := 0; kx < k; kx++ {
						sx := x*stride + kx - pad
						if sx < 0 || sx >= iw {
							continue
						}
						inBase := ((bi*ih+sy)*iw + sx) * ci
						wBase := ((ky*k + kx) * ci) * co
						for cc := 0; cc < ci; cc++ {
							inV := in.Data[inBase+cc]
							for c := 0; c < co; c++ {
								g := dOut.Data[outBase+c]
								dIn.Data[inBase+cc] += g * w.Data[wBase+cc*co+c]
								dW.Data[wBase+cc*co+c] += g * inV
							}
						}
					}
				}
			}
		}
	}
}

// fcForward computes out[b,o] = Σ_i in[b,i] · w[i,o].
func fcForward(in, w, out *Tensor) {
	b := in.Shape[0]
	ci := in.Len() / b
	co := out.Len() / b
	for bi := 0; bi < b; bi++ {
		inBase := bi * ci
		outBase := bi * co
		for o := 0; o < co; o++ {
			var acc float64
			wo := o
			for i := 0; i < ci; i++ {
				acc += in.Data[inBase+i] * w.Data[wo]
				wo += co
			}
			out.Data[outBase+o] = acc
		}
	}
}

// fcBackward computes dIn = dOut · Wᵀ and dW = inᵀ · dOut.
func fcBackward(in, w, dOut *Tensor, dIn, dW *Tensor) {
	b := in.Shape[0]
	ci := in.Len() / b
	co := dOut.Len() / b
	dIn.Zero()
	dW.Zero()
	for bi := 0; bi < b; bi++ {
		inBase := bi * ci
		outBase := bi * co
		for i := 0; i < ci; i++ {
			inV := in.Data[inBase+i]
			wRow := i * co
			var acc float64
			for o := 0; o < co; o++ {
				g := dOut.Data[outBase+o]
				acc += g * w.Data[wRow+o]
				dW.Data[wRow+o] += g * inV
			}
			dIn.Data[inBase+i] = acc
		}
	}
}

// reluForward applies max(0, x) element-wise, recording the mask.
func reluForward(x *Tensor, mask []bool) {
	for i, v := range x.Data {
		if v > 0 {
			mask[i] = true
		} else {
			mask[i] = false
			x.Data[i] = 0
		}
	}
}

// reluBackward zeroes gradient entries whose activation was clamped.
func reluBackward(g *Tensor, mask []bool) {
	for i := range g.Data {
		if !mask[i] {
			g.Data[i] = 0
		}
	}
}

// poolForward applies non-overlapping p×p max pooling (NHWC), recording
// the argmax index of each output element for the backward pass.
func poolForward(in *Tensor, p int, out *Tensor, argmax []int) {
	b, ih, iw, c := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := out.Shape[1], out.Shape[2]
	_ = iw
	for bi := 0; bi < b; bi++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for cc := 0; cc < c; cc++ {
					best := -1
					bestV := 0.0
					for py := 0; py < p; py++ {
						for px := 0; px < p; px++ {
							sy, sx := y*p+py, x*p+px
							if sy >= ih || sx >= in.Shape[2] {
								continue
							}
							idx := ((bi*ih+sy)*in.Shape[2]+sx)*c + cc
							if best < 0 || in.Data[idx] > bestV {
								best = idx
								bestV = in.Data[idx]
							}
						}
					}
					oIdx := ((bi*oh+y)*ow+x)*c + cc
					out.Data[oIdx] = bestV
					argmax[oIdx] = best
				}
			}
		}
	}
}

// poolBackward routes each output gradient to its argmax source.
func poolBackward(dOut *Tensor, argmax []int, dIn *Tensor) {
	dIn.Zero()
	for i, g := range dOut.Data {
		dIn.Data[argmax[i]] += g
	}
}

// checkNHWC validates that a tensor has the expected 4-D geometry.
func checkNHWC(t *Tensor, b, h, w, c int) error {
	if len(t.Shape) != 4 || t.Shape[0] != b || t.Shape[1] != h || t.Shape[2] != w || t.Shape[3] != c {
		return fmt.Errorf("%w: tensor %v, want [%d %d %d %d]", ErrTrain, t.Shape, b, h, w, c)
	}
	return nil
}

package train

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
)

// assignOf parses "dmmd" into an assignment.
func assignOf(s string) []comm.Parallelism {
	a := make([]comm.Parallelism, len(s))
	for i, c := range s {
		if c == 'm' {
			a[i] = comm.MP
		}
	}
	return a
}

// shardedFixture builds matched single-device and sharded executors.
func shardedFixture(t *testing.T, m *nn.Model, batch int, assign string) (*Network, *ShardedFC, *Tensor, []int) {
	t.Helper()
	ref, err := NewNetwork(m, batch, 99)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	sh, err := NewShardedFC(ref, assignOf(assign))
	if err != nil {
		t.Fatalf("NewShardedFC: %v", err)
	}
	x, labels, err := SyntheticBatch(m, batch, lastCout(m), 21)
	if err != nil {
		t.Fatalf("SyntheticBatch: %v", err)
	}
	return ref, sh, x, labels
}

func lastCout(m *nn.Model) int { return m.Layers[len(m.Layers)-1].Cout }

// evenFCNet has even widths so mp column splits are exact.
func evenFCNet() *nn.Model {
	return &nn.Model{
		Name:  "even-fc",
		Input: nn.Input{H: 1, W: 1, C: 16},
		Layers: []nn.Layer{
			nn.FCLayer("fc1", 12),
			nn.FCLayer("fc2", 8),
			{Name: "fc3", Type: nn.FC, Cout: 4, Act: nn.Softmax},
		},
	}
}

// TestShardedEquivalence: for every parallelism assignment of a
// three-layer fc net, hybrid-parallel execution over two groups is
// numerically identical to single-device training — logits, losses and
// updated weights — across multiple steps. This is the core soundness
// property behind the whole partition space.
func TestShardedEquivalence(t *testing.T) {
	m := evenFCNet()
	for code := 0; code < 8; code++ {
		assign := ""
		for b := 0; b < 3; b++ {
			if code&(1<<uint(b)) != 0 {
				assign += "m"
			} else {
				assign += "d"
			}
		}
		t.Run(assign, func(t *testing.T) {
			ref, sh, x, labels := shardedFixture(t, m, 8, assign)
			xNHWC := &Tensor{Shape: []int{8, 1, 1, 16}, Data: x.Data}
			for step := 0; step < 3; step++ {
				refLogits, err := ref.Forward(xNHWC)
				if err != nil {
					t.Fatalf("ref forward: %v", err)
				}
				shLogits, err := sh.Forward(x)
				if err != nil {
					t.Fatalf("sharded forward: %v", err)
				}
				if d, _ := MaxAbsDiff(refLogits, shLogits); d > 1e-9 {
					t.Fatalf("step %d logits diverge by %g", step, d)
				}
				refLoss, dLogits, err := SoftmaxCrossEntropy(refLogits, labels)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ref.Backward(dLogits); err != nil {
					t.Fatal(err)
				}
				ref.Step(0.1)
				shLoss, err := sh.Backward(labels, 0.1)
				if err != nil {
					t.Fatalf("sharded backward: %v", err)
				}
				if math.Abs(refLoss-shLoss) > 1e-9 {
					t.Fatalf("step %d losses diverge: %g vs %g", step, refLoss, shLoss)
				}
				for l := 0; l < ref.Layers(); l++ {
					full, err := sh.FullWeights(l)
					if err != nil {
						t.Fatalf("FullWeights(%d): %v", l, err)
					}
					if d, _ := MaxAbsDiff(ref.Weights(l), full); d > 1e-9 {
						t.Fatalf("step %d layer %d weights diverge by %g", step, l, d)
					}
				}
			}
		})
	}
}

// TestShardedCommMatchesModel: the executor's measured remote-element
// counts equal the analytic predictions of Tables 1-2, category by
// category and layer by layer, for every assignment.
func TestShardedCommMatchesModel(t *testing.T) {
	m := evenFCNet()
	for code := 0; code < 8; code++ {
		assign := ""
		for b := 0; b < 3; b++ {
			if code&(1<<uint(b)) != 0 {
				assign += "m"
			} else {
				assign += "d"
			}
		}
		t.Run(assign, func(t *testing.T) {
			_, sh, x, labels := shardedFixture(t, m, 8, assign)
			if _, err := sh.Step(x, labels, 0.1); err != nil {
				t.Fatalf("Step: %v", err)
			}
			pf, pg, pif, pie := sh.PredictedExchanges()
			for l := 0; l < len(pf); l++ {
				if sh.IntraFwd[l] != pf[l] {
					t.Errorf("layer %d IntraFwd measured %g, predicted %g", l, sh.IntraFwd[l], pf[l])
				}
				if sh.IntraGrad[l] != pg[l] {
					t.Errorf("layer %d IntraGrad measured %g, predicted %g", l, sh.IntraGrad[l], pg[l])
				}
				if sh.InterF[l] != pif[l] {
					t.Errorf("layer %d InterF measured %g, predicted %g", l, sh.InterF[l], pif[l])
				}
				if sh.InterE[l] != pie[l] {
					t.Errorf("layer %d InterE measured %g, predicted %g", l, sh.InterE[l], pie[l])
				}
			}
		})
	}
}

// TestPaperWorkedExampleMeasured reruns the §3.1 example with real
// tensors: a 70→100 fc layer at batch 32 across two accelerators moves
// 56 KB under dp and 25.6 KB under mp — measured, not modeled.
func TestPaperWorkedExampleMeasured(t *testing.T) {
	m := &nn.Model{
		Name:  "fc-example",
		Input: nn.Input{H: 1, W: 1, C: 70},
		Layers: []nn.Layer{
			{Name: "fc", Type: nn.FC, Cout: 100, Act: nn.NoAct},
		},
	}
	for _, tc := range []struct {
		assign string
		bytes  float64
	}{
		{"d", 56000}, // 2 × 70×100 × 4 B
		{"m", 25600}, // 2 × 32×100 × 4 B
	} {
		ref, err := NewNetwork(m, 32, 1)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := NewShardedFC(ref, assignOf(tc.assign))
		if err != nil {
			t.Fatal(err)
		}
		x, labels, err := SyntheticBatch(m, 32, 100, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Step(x, labels, 0.01); err != nil {
			t.Fatalf("Step: %v", err)
		}
		if got := sh.TotalRemote() * 4; got != tc.bytes {
			t.Errorf("%s: measured %g bytes, paper says %g", tc.assign, got, tc.bytes)
		}
	}
}

func TestShardedErrors(t *testing.T) {
	conv := &nn.Model{Name: "conv", Input: nn.Input{H: 6, W: 6, C: 1},
		Layers: []nn.Layer{nn.ConvLayer("c", 3, 2)}}
	refConv, err := NewNetwork(conv, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedFC(refConv, assignOf("d")); !errors.Is(err, ErrTrain) {
		t.Errorf("conv model accepted: %v", err)
	}

	m := evenFCNet()
	ref, _ := NewNetwork(m, 8, 1)
	if _, err := NewShardedFC(ref, assignOf("dd")); !errors.Is(err, ErrTrain) {
		t.Errorf("short assignment accepted: %v", err)
	}
	refOdd, _ := NewNetwork(m, 7, 1)
	if _, err := NewShardedFC(refOdd, assignOf("ddd")); !errors.Is(err, ErrTrain) {
		t.Errorf("odd batch accepted: %v", err)
	}
	// Odd input width under mp.
	odd := &nn.Model{Name: "odd", Input: nn.Input{H: 1, W: 1, C: 7},
		Layers: []nn.Layer{{Name: "fc", Type: nn.FC, Cout: 4, Act: nn.Softmax}}}
	refO, _ := NewNetwork(odd, 4, 1)
	if _, err := NewShardedFC(refO, assignOf("m")); !errors.Is(err, ErrTrain) {
		t.Errorf("odd Cin mp accepted: %v", err)
	}

	sh, err := NewShardedFC(ref, assignOf("ddd"))
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := NewTensor(4, 16)
	if _, err := sh.Forward(bad); !errors.Is(err, ErrTrain) {
		t.Errorf("wrong batch accepted: %v", err)
	}
	sh.ResetCounters()
	if sh.TotalRemote() != 0 {
		t.Error("ResetCounters failed")
	}
}

// TestShardedSFCScaled runs the paper's SFC geometry (scaled down) in
// its optimized mostly-mp assignment and confirms training works and
// communicates less than pure dp.
func TestShardedSFCScaled(t *testing.T) {
	m := &nn.Model{
		Name:  "sfc-small",
		Input: nn.Input{H: 1, W: 1, C: 64},
		Layers: []nn.Layer{
			nn.FCLayer("fc1", 128),
			nn.FCLayer("fc2", 128),
			nn.FCLayer("fc3", 128),
			{Name: "fc4", Type: nn.FC, Cout: 10, Act: nn.Softmax},
		},
	}
	run := func(assign string) float64 {
		ref, err := NewNetwork(m, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := NewShardedFC(ref, assignOf(assign))
		if err != nil {
			t.Fatal(err)
		}
		x, labels, err := SyntheticBatch(m, 16, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Step(x, labels, 0.05); err != nil {
			t.Fatal(err)
		}
		return sh.TotalRemote()
	}
	dp := run("dddd")
	mp := run("mmmm")
	if mp >= dp {
		t.Errorf("SFC-style net: mp traffic %g should beat dp traffic %g", mp, dp)
	}
}

// TestShardedTrainingConverges: hybrid-parallel training reduces the
// loss just like single-device training does.
func TestShardedTrainingConverges(t *testing.T) {
	m := evenFCNet()
	ref, err := NewNetwork(m, 16, 13)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedFC(ref, assignOf("dmd"))
	if err != nil {
		t.Fatal(err)
	}
	x, labels, err := SyntheticBatch(m, 16, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sh.Step(x, labels, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 60; i++ {
		if last, err = sh.Step(x, labels, 0.5); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !(last < first*0.5) {
		t.Errorf("sharded loss did not converge: %g → %g", first, last)
	}
}

func ExampleShardedFC() {
	m := &nn.Model{
		Name:  "demo",
		Input: nn.Input{H: 1, W: 1, C: 8},
		Layers: []nn.Layer{
			nn.FCLayer("hidden", 6),
			{Name: "out", Type: nn.FC, Cout: 2, Act: nn.Softmax},
		},
	}
	ref, _ := NewNetwork(m, 4, 1)
	sh, _ := NewShardedFC(ref, []comm.Parallelism{comm.DP, comm.MP})
	x, labels, _ := SyntheticBatch(m, 4, 2, 1)
	if _, err := sh.Step(x, labels, 0.1); err != nil {
		fmt.Println("error:", err)
		return
	}
	// dp fc1 exchanges its 8×6 gradient (2×48), the dp→mp boundary
	// converts quarters of F and E (12 + 12), and mp fc2 exchanges its
	// 4×2 output partial sums (2×8): 136 elements in total.
	fmt.Printf("remote elements moved: %.0f\n", sh.TotalRemote())
	// Output:
	// remote elements moved: 136
}

package train

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// layerState holds one weighted layer's parameters and the activations
// cached by the forward pass for use in backward/gradient computation.
type layerState struct {
	spec nn.LayerShapes

	W  *Tensor // [K,K,Cin,Cout] conv or [Cin,Cout] fc
	DW *Tensor

	in      *Tensor // input as consumed (post previous pooling, flattened for fc)
	preAct  *Tensor // weighted-op output before activation (after act in-place)
	mask    []bool  // ReLU mask over preAct
	argmax  []int   // pooling argmax over carried output
	carried *Tensor // tensor handed to the next layer
}

// Network binds a model description to actual parameters and buffers
// for one batch size.
type Network struct {
	Model  *nn.Model
	Batch  int
	shapes []nn.LayerShapes
	layers []*layerState
}

// NewNetwork allocates and He-initializes a network for the model at
// the given batch size. The numeric substrate executes layers as a
// chain, so genuinely branched (DAG) models are rejected here rather
// than silently trained with the wrong data flow; graph-form models
// whose wiring resolves to a plain chain are fine.
func NewNetwork(m *nn.Model, batch int, seed int64) (*Network, error) {
	shapes, err := m.Shapes(batch)
	if err != nil {
		return nil, err
	}
	if !m.LinearChain() {
		return nil, fmt.Errorf("%w: model %q is a branched graph; the numeric trainer handles chains only", ErrTrain, m.Name)
	}
	r := newRNG(seed)
	net := &Network{Model: m, Batch: batch, shapes: shapes}
	for _, s := range shapes {
		ls := &layerState{spec: s}
		k := s.Kernel
		if s.Layer.Type == nn.Conv {
			ls.W, err = NewTensor(k.K, k.K, k.Cin, k.Cout)
		} else {
			ls.W, err = NewTensor(k.Cin, k.Cout)
		}
		if err != nil {
			return nil, err
		}
		fanIn := float64(k.K * k.K * k.Cin)
		ls.W.fillNormal(r, math.Sqrt(2/fanIn))
		ls.DW = ls.W.Clone()
		ls.DW.Zero()
		net.layers = append(net.layers, ls)
	}
	return net, nil
}

// Layers returns the number of weighted layers.
func (n *Network) Layers() int { return len(n.layers) }

// Weights exposes layer l's weight tensor (tests and the sharded
// executor mutate it).
func (n *Network) Weights(l int) *Tensor { return n.layers[l].W }

// Grads exposes layer l's gradient tensor.
func (n *Network) Grads(l int) *Tensor { return n.layers[l].DW }

// Forward runs the network on a batch laid out NHWC and returns the
// logits tensor [B, classes].
func (n *Network) Forward(x *Tensor) (*Tensor, error) {
	in := n.Model.Input
	if err := checkNHWC(x, n.Batch, in.H, in.W, in.C); err != nil {
		return nil, err
	}
	cur := x
	for _, ls := range n.layers {
		s := ls.spec
		var err error
		switch s.Layer.Type {
		case nn.Conv:
			ls.in = cur
			ls.preAct, err = NewTensor(n.Batch, s.Out.H, s.Out.W, s.Out.C)
			if err != nil {
				return nil, err
			}
			convForward(cur, ls.W, s.Layer, ls.preAct)
		case nn.FC:
			// Flatten whatever arrives; data is already contiguous.
			flat := &Tensor{Shape: []int{n.Batch, s.Kernel.Cin}, Data: cur.Data}
			ls.in = flat
			ls.preAct, err = NewTensor(n.Batch, 1, 1, s.Out.C)
			if err != nil {
				return nil, err
			}
			fcForward(flat, ls.W, ls.preAct)
		}
		if s.Layer.Act == nn.ReLU {
			if ls.mask == nil || len(ls.mask) != ls.preAct.Len() {
				ls.mask = make([]bool, ls.preAct.Len())
			}
			reluForward(ls.preAct, ls.mask)
		}
		if p := s.Layer.Pool; p > 1 && s.Layer.Type == nn.Conv {
			ls.carried, err = NewTensor(n.Batch, s.Carried.H, s.Carried.W, s.Carried.C)
			if err != nil {
				return nil, err
			}
			if ls.argmax == nil || len(ls.argmax) != ls.carried.Len() {
				ls.argmax = make([]int, ls.carried.Len())
			}
			poolForward(ls.preAct, p, ls.carried, ls.argmax)
		} else {
			ls.carried = ls.preAct
		}
		cur = ls.carried
	}
	last := n.layers[len(n.layers)-1].spec
	return &Tensor{Shape: []int{n.Batch, last.Out.C}, Data: cur.Data}, nil
}

// Backward propagates the loss gradient dLogits through the network,
// filling every layer's DW. It returns the gradient with respect to the
// input batch (rarely needed, useful for tests).
func (n *Network) Backward(dLogits *Tensor) (*Tensor, error) {
	nl := len(n.layers)
	if nl == 0 {
		return nil, fmt.Errorf("%w: empty network", ErrTrain)
	}
	last := n.layers[nl-1]
	if dLogits.Len() != last.carried.Len() {
		return nil, fmt.Errorf("%w: dLogits has %d elements, want %d",
			ErrTrain, dLogits.Len(), last.carried.Len())
	}
	grad := dLogits.Clone()
	for li := nl - 1; li >= 0; li-- {
		ls := n.layers[li]
		s := ls.spec
		// Un-pool.
		if p := s.Layer.Pool; p > 1 && s.Layer.Type == nn.Conv {
			dPre, err := NewTensor(n.Batch, s.Out.H, s.Out.W, s.Out.C)
			if err != nil {
				return nil, err
			}
			g := &Tensor{Shape: ls.carried.Shape, Data: grad.Data}
			poolBackward(g, ls.argmax, dPre)
			grad = dPre
		}
		// Un-activate.
		if s.Layer.Act == nn.ReLU {
			reluBackward(grad, ls.mask)
		}
		// Through the weighted op.
		dIn := ls.in.Clone()
		switch s.Layer.Type {
		case nn.Conv:
			g := &Tensor{Shape: []int{n.Batch, s.Out.H, s.Out.W, s.Out.C}, Data: grad.Data}
			convBackward(ls.in, ls.W, g, s.Layer, dIn, ls.DW)
		case nn.FC:
			g := &Tensor{Shape: []int{n.Batch, s.Out.C}, Data: grad.Data}
			fcBackward(ls.in, ls.W, g, dIn, ls.DW)
		}
		grad = dIn
	}
	return grad, nil
}

// Step applies one SGD update W -= lr·DW to every layer.
func (n *Network) Step(lr float64) {
	for _, ls := range n.layers {
		for i := range ls.W.Data {
			ls.W.Data[i] -= lr * ls.DW.Data[i]
		}
	}
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [B, C] against integer labels, and the gradient dLogits.
func SoftmaxCrossEntropy(logits *Tensor, labels []int) (float64, *Tensor, error) {
	if len(logits.Shape) != 2 {
		return 0, nil, fmt.Errorf("%w: logits shape %v", ErrTrain, logits.Shape)
	}
	b, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != b {
		return 0, nil, fmt.Errorf("%w: %d labels for batch %d", ErrTrain, len(labels), b)
	}
	grad := logits.Clone()
	var loss float64
	for bi := 0; bi < b; bi++ {
		if labels[bi] < 0 || labels[bi] >= c {
			return 0, nil, fmt.Errorf("%w: label %d outside [0,%d)", ErrTrain, labels[bi], c)
		}
		row := logits.Data[bi*c : (bi+1)*c]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		logZ := math.Log(sum) + maxV
		loss += logZ - row[labels[bi]]
		for ci := 0; ci < c; ci++ {
			p := math.Exp(row[ci]-maxV) / sum
			g := p
			if ci == labels[bi] {
				g -= 1
			}
			grad.Data[bi*c+ci] = g / float64(b)
		}
	}
	return loss / float64(b), grad, nil
}

// TrainStep runs one forward/loss/backward/update step and returns the
// batch loss.
func (n *Network) TrainStep(x *Tensor, labels []int, lr float64) (float64, error) {
	logits, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	loss, dLogits, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		return 0, err
	}
	if _, err := n.Backward(dLogits); err != nil {
		return 0, err
	}
	n.Step(lr)
	return loss, nil
}

// SyntheticBatch generates a deterministic, linearly separable-ish
// classification batch for the model's input geometry: class k gets a
// distinctive blob pattern plus noise. It exercises real training
// without dataset files (the paper's datasets only contribute their
// geometry to the evaluation).
func SyntheticBatch(m *nn.Model, batch, classes int, seed int64) (*Tensor, []int, error) {
	if classes < 2 {
		return nil, nil, fmt.Errorf("%w: %d classes", ErrTrain, classes)
	}
	x, err := NewTensor(batch, m.Input.H, m.Input.W, m.Input.C)
	if err != nil {
		return nil, nil, err
	}
	r := newRNG(seed)
	labels := make([]int, batch)
	sz := m.Input.H * m.Input.W * m.Input.C
	for bi := 0; bi < batch; bi++ {
		k := int(r.next() % uint64(classes))
		labels[bi] = k
		base := bi * sz
		for i := 0; i < sz; i++ {
			// A class-dependent low-frequency pattern plus noise.
			v := 0.5 * math.Sin(float64(i*(k+1))/float64(sz)*6*math.Pi)
			x.Data[base+i] = v + 0.1*r.normal()
		}
	}
	return x, labels, nil
}

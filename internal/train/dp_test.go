package train

import (
	"errors"
	"math"
	"testing"

	"repro/internal/nn"
)

// TestDPPairEquivalence: data-parallel training of a conv+pool+fc
// network over two groups matches single-device training exactly —
// Figure 1(a) semantics verified on the general layer mix.
func TestDPPairEquivalence(t *testing.T) {
	m := tinyConvNet()
	const batch = 4
	ref, err := NewNetwork(m, batch, 123)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	pair, err := NewDPPair(ref)
	if err != nil {
		t.Fatalf("NewDPPair: %v", err)
	}
	x, labels, err := SyntheticBatch(m, batch, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		refLoss, err := ref.TrainStep(x, labels, 0.1)
		if err != nil {
			t.Fatalf("ref step: %v", err)
		}
		dpLoss, err := pair.Step(x, labels, 0.1)
		if err != nil {
			t.Fatalf("dp step: %v", err)
		}
		if math.Abs(refLoss-dpLoss) > 1e-9 {
			t.Fatalf("step %d: losses diverge %g vs %g", step, refLoss, dpLoss)
		}
		for l := 0; l < ref.Layers(); l++ {
			if d, _ := MaxAbsDiff(ref.Weights(l), pair.Weights(l)); d > 1e-9 {
				t.Fatalf("step %d layer %d weights diverge by %g", step, l, d)
			}
		}
		if d, err := pair.VerifyReplicas(); err != nil || d > 1e-12 {
			t.Fatalf("step %d: replicas diverged by %g (%v)", step, d, err)
		}
	}
}

// TestDPPairGradTraffic: the measured gradient exchange equals
// 2·A(∆W) per layer per step (Table 1, dp column).
func TestDPPairGradTraffic(t *testing.T) {
	m := nn.LenetC()
	ref, err := NewNetwork(m, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := NewDPPair(ref)
	if err != nil {
		t.Fatal(err)
	}
	x, labels, err := SyntheticBatch(m, 2, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pair.Step(x, labels, 0.01); err != nil {
		t.Fatalf("Step: %v", err)
	}
	shapes, err := m.Shapes(2)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, s := range shapes {
		want += 2 * float64(s.Kernel.Elems())
	}
	if pair.GradExchanged != want {
		t.Errorf("gradient traffic %g, want 2·ΣA(∆W)=%g", pair.GradExchanged, want)
	}
}

func TestDPPairErrors(t *testing.T) {
	m := tinyConvNet()
	refOdd, _ := NewNetwork(m, 3, 1)
	if _, err := NewDPPair(refOdd); !errors.Is(err, ErrTrain) {
		t.Errorf("odd batch accepted: %v", err)
	}
	ref, _ := NewNetwork(m, 4, 1)
	pair, err := NewDPPair(ref)
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := NewTensor(2, 6, 6, 1)
	if _, err := pair.Step(bad, []int{0, 1}, 0.1); !errors.Is(err, ErrTrain) {
		t.Errorf("wrong batch accepted: %v", err)
	}
	good, _ := NewTensor(4, 6, 6, 1)
	if _, err := pair.Step(good, []int{0}, 0.1); !errors.Is(err, ErrTrain) {
		t.Errorf("short labels accepted: %v", err)
	}
}

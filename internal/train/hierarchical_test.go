package train

import (
	"errors"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/partition"
)

// hierNet has widths divisible by 4 so two mp levels split exactly.
func hierNet() *nn.Model {
	return &nn.Model{
		Name:  "hier-fc",
		Input: nn.Input{H: 1, W: 1, C: 16},
		Layers: []nn.Layer{
			nn.FCLayer("fc1", 12),
			nn.FCLayer("fc2", 8),
			{Name: "fc3", Type: nn.FC, Cout: 4, Act: nn.Softmax},
		},
	}
}

// planOf builds a fixed two-level plan from strings like "dmd"/"mdd".
func planOf(t *testing.T, m *nn.Model, batch int, levels ...string) *partition.Plan {
	t.Helper()
	assigns := make([]partition.Assignment, len(levels))
	for h, s := range levels {
		assigns[h] = make(partition.Assignment, len(s))
		for i, c := range s {
			if c == 'm' {
				assigns[h][i] = comm.MP
			}
		}
	}
	p, err := partition.Evaluate(m, batch, assigns)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return p
}

// TestHierarchicalEquivalence: four-worker (H=2) hybrid training with
// every combination of per-level assignments matches single-device SGD
// exactly — the numerical statement of Algorithm 2's nested sharding.
func TestHierarchicalEquivalence(t *testing.T) {
	m := hierNet()
	const batch = 8
	levelStrings := []string{"ddd", "dmd", "mdd", "mmd", "dmm", "mmm"}
	for _, l0 := range levelStrings {
		for _, l1 := range levelStrings {
			t.Run(l0+"/"+l1, func(t *testing.T) {
				ref, err := NewNetwork(m, batch, 77)
				if err != nil {
					t.Fatalf("NewNetwork: %v", err)
				}
				plan := planOf(t, m, batch, l0, l1)
				hier, err := NewHierarchicalFC(ref, plan)
				if err != nil {
					t.Fatalf("NewHierarchicalFC: %v", err)
				}
				if hier.Workers() != 4 {
					t.Fatalf("workers = %d, want 4", hier.Workers())
				}
				x, labels, err := SyntheticBatch(m, batch, 4, 31)
				if err != nil {
					t.Fatal(err)
				}
				xNHWC := &Tensor{Shape: []int{batch, 1, 1, 16}, Data: x.Data}
				for step := 0; step < 3; step++ {
					refLoss, err := ref.TrainStep(xNHWC, labels, 0.2)
					if err != nil {
						t.Fatalf("ref step: %v", err)
					}
					hierLoss, err := hier.Step(x, labels, 0.2)
					if err != nil {
						t.Fatalf("hier step: %v", err)
					}
					if math.Abs(refLoss-hierLoss) > 1e-9 {
						t.Fatalf("step %d: losses diverge %g vs %g", step, refLoss, hierLoss)
					}
					for l := 0; l < ref.Layers(); l++ {
						full, err := hier.FullWeights(l)
						if err != nil {
							t.Fatalf("FullWeights: %v", err)
						}
						if d, _ := MaxAbsDiff(ref.Weights(l), full); d > 1e-9 {
							t.Fatalf("step %d layer %d diverged by %g", step, l, d)
						}
					}
				}
			})
		}
	}
}

// TestHierarchicalMatchesTwoGroup: at H=1 the hierarchical executor and
// the explicit two-group executor produce identical weights.
func TestHierarchicalMatchesTwoGroup(t *testing.T) {
	m := hierNet()
	const batch = 8
	for _, assign := range []string{"ddd", "dmd", "mmd", "mmm"} {
		ref1, _ := NewNetwork(m, batch, 55)
		ref2, _ := NewNetwork(m, batch, 55)
		plan := planOf(t, m, batch, assign)
		hier, err := NewHierarchicalFC(ref1, plan)
		if err != nil {
			t.Fatalf("NewHierarchicalFC: %v", err)
		}
		two, err := NewShardedFC(ref2, assignOf(assign))
		if err != nil {
			t.Fatalf("NewShardedFC: %v", err)
		}
		x, labels, _ := SyntheticBatch(m, batch, 4, 3)
		if _, err := hier.Step(x, labels, 0.1); err != nil {
			t.Fatal(err)
		}
		if _, err := two.Step(x, labels, 0.1); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < 3; l++ {
			wh, err := hier.FullWeights(l)
			if err != nil {
				t.Fatal(err)
			}
			wt, err := two.FullWeights(l)
			if err != nil {
				t.Fatal(err)
			}
			if d, _ := MaxAbsDiff(wh, wt); d > 1e-12 {
				t.Errorf("%s layer %d: executors disagree by %g", assign, l, d)
			}
		}
	}
}

// TestHierarchicalPlannedPlan: the executor accepts the planner's own
// output directly.
func TestHierarchicalPlannedPlan(t *testing.T) {
	m := hierNet()
	plan, err := partition.Hierarchical(m, 8, 2)
	if err != nil {
		t.Fatalf("Hierarchical: %v", err)
	}
	ref, _ := NewNetwork(m, 8, 9)
	hier, err := NewHierarchicalFC(ref, plan)
	if err != nil {
		t.Fatalf("NewHierarchicalFC: %v", err)
	}
	x, labels, _ := SyntheticBatch(m, 8, 4, 13)
	first, err := hier.Step(x, labels, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 40; i++ {
		if last, err = hier.Step(x, labels, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if !(last < first) {
		t.Errorf("planned-plan training did not improve: %g → %g", first, last)
	}
}

func TestHierarchicalErrors(t *testing.T) {
	m := hierNet()
	ref, _ := NewNetwork(m, 8, 1)

	// Conv layers rejected.
	convM := &nn.Model{Name: "c", Input: nn.Input{H: 6, W: 6, C: 1},
		Layers: []nn.Layer{nn.ConvLayer("c1", 3, 2)}}
	refC, _ := NewNetwork(convM, 2, 1)
	planC := planOf(t, convM, 2, "d")
	if _, err := NewHierarchicalFC(refC, planC); !errors.Is(err, ErrTrain) {
		t.Errorf("conv accepted: %v", err)
	}

	// Zero-level plan rejected.
	empty := &partition.Plan{Model: m.Name, Batch: 8}
	if _, err := NewHierarchicalFC(ref, empty); !errors.Is(err, ErrTrain) {
		t.Errorf("zero-level plan accepted: %v", err)
	}

	// Wrong layer count rejected.
	short := planOf(t, &nn.Model{Name: "s", Input: nn.Input{H: 1, W: 1, C: 4},
		Layers: []nn.Layer{nn.FCLayer("f", 4)}}, 8, "d")
	if _, err := NewHierarchicalFC(ref, short); !errors.Is(err, ErrTrain) {
		t.Errorf("mismatched plan accepted: %v", err)
	}

	// Unhalvable batch under two dp levels rejected.
	refSmall, _ := NewNetwork(m, 6, 1)
	plan2 := planOf(t, m, 6, "ddd", "ddd")
	if _, err := NewHierarchicalFC(refSmall, plan2); !errors.Is(err, ErrTrain) {
		t.Errorf("unhalvable batch accepted: %v", err)
	}

	// Wrong input size at Step.
	hier, err := NewHierarchicalFC(ref, planOf(t, m, 8, "ddd"))
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := NewTensor(8, 7)
	if _, err := hier.Step(bad, make([]int, 8), 0.1); !errors.Is(err, ErrTrain) {
		t.Errorf("bad input accepted: %v", err)
	}
}

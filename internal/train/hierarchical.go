package train

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/partition"
)

// HierarchicalFC executes real training of a fully-connected network
// across 2^H workers partitioned by a full hierarchical plan — the
// numerical realization of Algorithm 2's nested sharding. Each worker
// holds, for every layer, the intersection shard selected by its path
// through the hierarchy: dp levels halve its batch-row range, mp levels
// halve its input-column (and weight-row) range.
//
// One training step performs, per layer: the worker-local partial
// product, the partial-sum reduction across each worker's mp-peer set
// (workers sharing a row range whose column ranges tile the input
// dimension), the boundary re-sharding toward the next layer, and in
// backward the exact local errors plus the dp-peer gradient reduction.
// Tests verify the result is numerically identical to single-device
// SGD, which is precisely the property HyPar's partition space assumes.
type HierarchicalFC struct {
	model  *nn.Model
	batch  int
	plan   *partition.Plan
	shapes []nn.LayerShapes

	workers int
	// rowRange[l][w] and colRange[l][w] are [lo,hi) interval pairs.
	rowRange [][][2]int
	colRange [][][2]int

	// w[l][w] is worker w's weight shard: rows colRange, all columns.
	w [][]*Tensor

	// forward caches (global, assembled — the math is per-shard; the
	// assembly is a verification convenience, not a free lunch: every
	// element of an assembled matrix is produced by some worker's local
	// computation and reductions only).
	act  []*Tensor // F_{l+1} after activation, [B × Cout]
	in0  *Tensor   // input batch
	mask [][]bool
}

// NewHierarchicalFC shards the reference network across 2^H workers per
// the plan.
func NewHierarchicalFC(ref *Network, plan *partition.Plan) (*HierarchicalFC, error) {
	for _, l := range ref.Model.Layers {
		if l.Type != nn.FC {
			return nil, fmt.Errorf("%w: HierarchicalFC supports fc layers only, got %q", ErrTrain, l.Name)
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	levels := plan.NumLevels()
	if levels < 1 || levels > 6 {
		return nil, fmt.Errorf("%w: hierarchy depth %d outside [1,6]", ErrTrain, levels)
	}
	if len(plan.Levels[0]) != ref.Layers() {
		return nil, fmt.Errorf("%w: plan is for %d layers, network has %d",
			ErrTrain, len(plan.Levels[0]), ref.Layers())
	}
	shapes, err := ref.Model.Shapes(ref.Batch)
	if err != nil {
		return nil, err
	}
	h := &HierarchicalFC{
		model: ref.Model, batch: ref.Batch, plan: plan, shapes: shapes,
		workers: 1 << uint(levels),
	}
	nl := ref.Layers()
	h.rowRange = make([][][2]int, nl)
	h.colRange = make([][][2]int, nl)
	h.w = make([][]*Tensor, nl)
	h.act = make([]*Tensor, nl)
	h.mask = make([][]bool, nl)
	for l := 0; l < nl; l++ {
		cin, cout := shapes[l].Kernel.Cin, shapes[l].Kernel.Cout
		h.rowRange[l] = make([][2]int, h.workers)
		h.colRange[l] = make([][2]int, h.workers)
		h.w[l] = make([]*Tensor, h.workers)
		for wk := 0; wk < h.workers; wk++ {
			rows := [2]int{0, ref.Batch}
			cols := [2]int{0, cin}
			for lev := 0; lev < levels; lev++ {
				bit := (wk >> uint(levels-1-lev)) & 1
				if plan.At(lev, l) == comm.DP {
					rows, err = halve(rows, bit)
				} else {
					cols, err = halve(cols, bit)
				}
				if err != nil {
					return nil, fmt.Errorf("layer %d level %d: %w", l, lev, err)
				}
			}
			h.rowRange[l][wk] = rows
			h.colRange[l][wk] = cols
			shard, err := NewTensor(cols[1]-cols[0], cout)
			if err != nil {
				return nil, err
			}
			copy(shard.Data, ref.Weights(l).Data[cols[0]*cout:cols[1]*cout])
			h.w[l][wk] = shard
		}
	}
	return h, nil
}

// halve splits an interval in two and picks the side selected by bit.
func halve(iv [2]int, bit int) ([2]int, error) {
	n := iv[1] - iv[0]
	if n%2 != 0 {
		return iv, fmt.Errorf("%w: interval of width %d not halvable", ErrTrain, n)
	}
	mid := iv[0] + n/2
	if bit == 0 {
		return [2]int{iv[0], mid}, nil
	}
	return [2]int{mid, iv[1]}, nil
}

// Step runs one hierarchical-parallel training step and returns the
// loss.
func (h *HierarchicalFC) Step(x *Tensor, labels []int, lr float64) (float64, error) {
	logits, err := h.forward(x)
	if err != nil {
		return 0, err
	}
	loss, dLogits, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		return 0, err
	}
	if err := h.backward(dLogits, lr); err != nil {
		return 0, err
	}
	return loss, nil
}

// forward computes every layer via worker-local partials + peer-set
// reductions and returns the logits.
func (h *HierarchicalFC) forward(x *Tensor) (*Tensor, error) {
	in0 := h.shapes[0].Kernel.Cin
	if x.Len() != h.batch*in0 {
		return nil, fmt.Errorf("%w: input has %d elements, want %d", ErrTrain, x.Len(), h.batch*in0)
	}
	h.in0 = &Tensor{Shape: []int{h.batch, in0}, Data: x.Data}
	cur := h.in0
	nl := len(h.shapes)
	for l := 0; l < nl; l++ {
		cin, cout := h.shapes[l].Kernel.Cin, h.shapes[l].Kernel.Cout
		out, err := NewTensor(h.batch, cout)
		if err != nil {
			return nil, err
		}
		// Each worker contributes its partial product into the global
		// accumulator; workers whose (rows, cols) cells coincide would
		// double-count, so only the canonical worker of each peer set
		// (the one whose remaining mp bits are zero... — equivalently,
		// every worker with a distinct (rowRange, colRange) pair)
		// contributes once.
		seen := map[[4]int]bool{}
		for wk := 0; wk < h.workers; wk++ {
			rows := h.rowRange[l][wk]
			cols := h.colRange[l][wk]
			key := [4]int{rows[0], rows[1], cols[0], cols[1]}
			if seen[key] {
				continue
			}
			seen[key] = true
			for i := rows[0]; i < rows[1]; i++ {
				for k := cols[0]; k < cols[1]; k++ {
					av := cur.Data[i*cin+k]
					if av == 0 {
						continue
					}
					wrow := h.w[l][wk].Data[(k-cols[0])*cout : (k-cols[0]+1)*cout]
					orow := out.Data[i*cout : (i+1)*cout]
					for j := 0; j < cout; j++ {
						orow[j] += av * wrow[j]
					}
				}
			}
		}
		if h.model.Layers[l].Act == nn.ReLU {
			if h.mask[l] == nil || len(h.mask[l]) != out.Len() {
				h.mask[l] = make([]bool, out.Len())
			}
			reluForward(out, h.mask[l])
		}
		h.act[l] = out
		cur = out
	}
	return h.act[nl-1].Clone(), nil
}

// backward propagates errors, reduces gradients across dp-peer sets and
// applies the update to every worker's shard.
func (h *HierarchicalFC) backward(dLogits *Tensor, lr float64) error {
	nl := len(h.shapes)
	grad := dLogits.Clone()
	for l := nl - 1; l >= 0; l-- {
		cin, cout := h.shapes[l].Kernel.Cin, h.shapes[l].Kernel.Cout
		if h.model.Layers[l].Act == nn.ReLU {
			reluBackward(grad, h.mask[l])
		}
		var inAct *Tensor
		if l == 0 {
			inAct = h.in0
		} else {
			inAct = h.act[l-1]
		}
		// Per distinct column range: the true dW rows, as the dp-peer
		// reduction of the workers' row-range partials.
		dwByCols := map[[2]int]*Tensor{}
		for wk := 0; wk < h.workers; wk++ {
			cols := h.colRange[l][wk]
			if _, ok := dwByCols[cols]; ok {
				continue
			}
			dw, err := NewTensor(cols[1]-cols[0], cout)
			if err != nil {
				return err
			}
			// Sum over all batch rows = the union of the dp-peer row
			// ranges; every peer contributes its rows exactly once.
			seenRows := map[[2]int]bool{}
			for peer := 0; peer < h.workers; peer++ {
				if h.colRange[l][peer] != cols {
					continue
				}
				rows := h.rowRange[l][peer]
				if seenRows[rows] {
					continue
				}
				seenRows[rows] = true
				for i := rows[0]; i < rows[1]; i++ {
					grow := grad.Data[i*cout : (i+1)*cout]
					for k := cols[0]; k < cols[1]; k++ {
						av := inAct.Data[i*cin+k]
						if av == 0 {
							continue
						}
						drow := dw.Data[(k-cols[0])*cout : (k-cols[0]+1)*cout]
						for j := 0; j < cout; j++ {
							drow[j] += av * grow[j]
						}
					}
				}
			}
			dwByCols[cols] = dw
		}
		// Error backward before updates (uses pre-update weights).
		if l > 0 {
			prev, err := NewTensor(h.batch, cin)
			if err != nil {
				return err
			}
			seen := map[[2]int]bool{}
			for wk := 0; wk < h.workers; wk++ {
				cols := h.colRange[l][wk]
				if seen[cols] {
					continue
				}
				seen[cols] = true
				w := h.w[l][wk]
				for i := 0; i < h.batch; i++ {
					grow := grad.Data[i*cout : (i+1)*cout]
					for k := cols[0]; k < cols[1]; k++ {
						wrow := w.Data[(k-cols[0])*cout : (k-cols[0]+1)*cout]
						var acc float64
						for j := 0; j < cout; j++ {
							acc += grow[j] * wrow[j]
						}
						prev.Data[i*cin+k] = acc
					}
				}
			}
			grad = prev
		}
		// SGD update on every worker's shard.
		for wk := 0; wk < h.workers; wk++ {
			cols := h.colRange[l][wk]
			dw := dwByCols[cols]
			for i := range h.w[l][wk].Data {
				h.w[l][wk].Data[i] -= lr * dw.Data[i]
			}
		}
	}
	return nil
}

// FullWeights reconstructs layer l's weight matrix from the worker
// shards, verifying that workers sharing a column range agree.
func (h *HierarchicalFC) FullWeights(l int) (*Tensor, error) {
	cin, cout := h.shapes[l].Kernel.Cin, h.shapes[l].Kernel.Cout
	full, err := NewTensor(cin, cout)
	if err != nil {
		return nil, err
	}
	filled := make([]bool, cin)
	for wk := 0; wk < h.workers; wk++ {
		cols := h.colRange[l][wk]
		for k := cols[0]; k < cols[1]; k++ {
			row := h.w[l][wk].Data[(k-cols[0])*cout : (k-cols[0]+1)*cout]
			if filled[k] {
				for j := 0; j < cout; j++ {
					if full.Data[k*cout+j] != row[j] {
						return nil, fmt.Errorf("%w: layer %d replicas disagree at row %d", ErrTrain, l, k)
					}
				}
				continue
			}
			copy(full.Data[k*cout:(k+1)*cout], row)
			filled[k] = true
		}
	}
	for k, ok := range filled {
		if !ok {
			return nil, fmt.Errorf("%w: layer %d row %d uncovered", ErrTrain, l, k)
		}
	}
	return full, nil
}

// Workers returns the worker count 2^H.
func (h *HierarchicalFC) Workers() int { return h.workers }

# ns_per_op.awk — extract ns/op figures from `go test -bench` output as
# the body lines of a JSON object (4-space indent, comma-separated), the
# fragment bench.sh splices into BENCH_N.json.
#
# The value is parsed by unit column: whatever field precedes the
# literal "ns/op", wherever that lands on the line. Positional $3 is
# wrong the moment a line's shape shifts — a benchmark fast enough that
# the ns/op column is omitted entirely (its $3 is the next metric's
# value, silently recorded as nanoseconds), or extra metrics from
# b.ReportMetric/-benchmem changing the field count. A line with no
# ns/op unit is skipped, not misread.
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (f = 2; f <= NF; f++) {
		if ($f == "ns/op") {
			ns[name] = $(f - 1)
			order[++i] = name
			break
		}
	}
}
END {
	for (j = 1; j <= i; j++) {
		printf "    \"%s\": %s%s\n", order[j], ns[order[j]], (j < i ? "," : "")
	}
}

// Command loadgen drives a running hypard with concurrent POST traffic
// and reports throughput and latency percentiles as one JSON object on
// stdout — scripts/bench.sh uses it to record service numbers in
// BENCH_N.json.
//
// Modes:
//
//	-mode hot      every request identical (exercises coalescing +
//	               cache: steady state is pure byte replay)
//	-mode mixed    cycles zoo models × strategies × batch sizes
//	               (exercises the evaluator itself; mostly cache misses
//	               until the cycle wraps)
//	-mode branched cycles the branched (DAG) workloads — the SRES-8 and
//	               Incep-2 zoo names plus an inline fork/join model
//	               JSON — across strategies and batch sizes (exercises
//	               the graph partition search and DAG simulation)
//	-mode degraded cycles zoo models × batch sizes through /v1/degrade
//	               with a fixed fault spec (exercises healthy-vs-degraded
//	               replanning)
//	-mode hetero   cycles zoo models × per-level platform assignments ×
//	               batch sizes (exercises the heterogeneous-array path:
//	               per-level weights, composite fabric, boundary charges)
//	-mode beam     cycles the branched workloads plus an inline wide-fan
//	               DAG under "searchMethod":"beam" (exercises the beam
//	               partition search, including a frontier the exact DP
//	               refuses)
//	-mode sweep    one model, strategy hypar, cycling link bandwidths
//	               (exercises warm-started incremental re-planning: the
//	               pooled evaluators reuse the previous plan's DP state
//	               across the sweep)
//
// Shed requests (429/503) are retried with jittered exponential
// backoff, honoring the server's Retry-After; requests still shed after
// the retry budget count as "shed" in the report, separately from hard
// errors — load shedding is the server working as designed, not a
// failure, so only hard errors fail the run.
//
// -batch N wraps N of the mode's bodies into one /v1/batch request per
// POST (the same global item sequence the single-request run would
// issue), so `-requests R -batch N` pushes R×N items in R round trips —
// the batch-vs-single comparison bench.sh records.
//
// -warm N replays the run's first N bodies untimed before measuring,
// so a hot run records steady-state cache throughput instead of
// averaging in the first cold compute.
//
// -cluster spreads the traffic round-robin across a comma-separated
// replica list instead of a single -addr, so a cluster-mode fleet sees
// every replica answer for every key (peer fills included) instead of
// only the key's owner.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -requests 200 -concurrency 8 -mode hot
//	loadgen -addr 127.0.0.1:8080 -wait 10s -mode mixed
//	loadgen -addr 127.0.0.1:8080 -mode mixed -batch 16 -requests 40
//	loadgen -cluster 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083 -mode hot
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// result is the JSON report. Items/ItemsPerSec count evaluation items:
// for single-request runs they equal Requests/RPS; for -batch N runs
// each request carries N items, so ItemsPerSec is the number to compare
// against a single-request run's RPS.
type result struct {
	Mode        string  `json:"mode"`
	Endpoint    string  `json:"endpoint"`
	Requests    int     `json:"requests"`
	BatchSize   int     `json:"batchSize,omitempty"`
	Items       int     `json:"items"`
	Concurrency int     `json:"concurrency"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed"`
	Retries     int64   `json:"retries"`
	Seconds     float64 `json:"seconds"`
	RPS         float64 `json:"rps"`
	ItemsPerSec float64 `json:"itemsPerSec"`
	P50Ms       float64 `json:"p50Ms"`
	P90Ms       float64 `json:"p90Ms"`
	P99Ms       float64 `json:"p99Ms"`
}

// zoo mirrors the service's model names; kept literal so loadgen works
// against any hypard build without importing the library.
var zooNames = []string{"SFC", "SCONV", "Lenet-c", "Cifar-c", "AlexNet", "VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E"}

var strategies = []string{"hypar", "dp", "mp", "trick"}

// branchedNames are the DAG workload zoo names; the empty sentinel
// selects the inline graph model below.
var branchedNames = []string{"SRES-8", "Incep-2", ""}

// branchedModel is an inline fork/concat-join model, kept literal like
// zooNames so loadgen stays daemon-agnostic.
const branchedModel = `{"name":"lg-dag","input":{"h":16,"w":16,"c":3},"layers":[` +
	`{"name":"a","type":"conv","k":3,"pad":1,"cout":8,"pool":2},` +
	`{"name":"b1","type":"conv","k":1,"cout":8,"inputs":["a"]},` +
	`{"name":"b2","type":"conv","k":3,"pad":1,"cout":8,"inputs":["a"]},` +
	`{"name":"c","type":"conv","k":3,"pad":1,"cout":16,"inputs":["b1","b2"],"join":"add"},` +
	`{"name":"f","type":"fc","cout":10}]}`

// wideFanModel is an inline DAG whose 18 parallel branches put its
// partition frontier past the exact graph DP's cap — only the beam
// search can plan it. Kept literal like zooNames so loadgen stays
// daemon-agnostic; built once at init.
var wideFanModel = func() string {
	var sb strings.Builder
	sb.WriteString(`{"name":"lg-wide","input":{"h":8,"w":8,"c":3},"layers":[` +
		`{"name":"stem","type":"conv","k":3,"pad":1,"cout":4}`)
	var ins []string
	for i := 0; i < 18; i++ {
		name := fmt.Sprintf("b%02d", i)
		fmt.Fprintf(&sb, `,{"name":%q,"type":"conv","k":3,"pad":1,"cout":4,"inputs":["stem"]}`, name)
		ins = append(ins, fmt.Sprintf("%q", name))
	}
	fmt.Fprintf(&sb, `,{"name":"join","type":"fc","cout":10,"inputs":[%s]}]}`, strings.Join(ins, ","))
	return sb.String()
}()

// sweepLinks are the link bandwidths (Mb/s) the sweep mode cycles: a
// one-dimension sweep whose partition inputs never change, so a
// warm-starting daemon replans every point with zero new DP cells.
var sweepLinks = []float64{800, 1600, 3200, 6400}

// heteroSpecs are mixed per-level platform assignments (sparse specs —
// unnamed levels inherit the daemon's base platform), kept literal like
// zooNames so loadgen stays daemon-agnostic.
var heteroSpecs = []string{
	`{"0":"gpu-hbm"}`,
	`{"0":"tpu-systolic","1":"tpu-systolic"}`,
	`{"0":"gpu-hbm","1":"tpu-systolic"}`,
}

// body renders the i-th request body for the mode.
func body(mode string, i int) string {
	switch mode {
	case "hot":
		return `{"zoo":"VGG-A","strategy":"hypar"}`
	case "hetero":
		name := zooNames[i%len(zooNames)]
		spec := heteroSpecs[(i/len(zooNames))%len(heteroSpecs)]
		batch := 64 << uint((i/(len(zooNames)*len(heteroSpecs)))%3) // 64, 128, 256
		return fmt.Sprintf(`{"zoo":%q,"config":{"batch":%d,"platforms":%s}}`, name, batch, spec)
	case "degraded":
		name := zooNames[i%len(zooNames)]
		batch := 64 << uint((i/len(zooNames))%3) // 64, 128, 256
		return fmt.Sprintf(`{"zoo":%q,"config":{"batch":%d,"faults":{"level":1,"groups":2}}}`, name, batch)
	case "branched":
		name := branchedNames[i%len(branchedNames)]
		strat := strategies[(i/len(branchedNames))%len(strategies)]
		batch := 64 << uint((i/(len(branchedNames)*len(strategies)))%3) // 64, 128, 256
		if name == "" {
			return fmt.Sprintf(`{"model":%s,"strategy":%q,"config":{"batch":%d}}`, branchedModel, strat, batch)
		}
		return fmt.Sprintf(`{"zoo":%q,"strategy":%q,"config":{"batch":%d}}`, name, strat, batch)
	case "beam":
		// The branched zoo names plus the wide-fan model the exact DP
		// refuses, all under the beam search.
		name := branchedNames[i%len(branchedNames)]
		batch := 64 << uint((i/len(branchedNames))%3) // 64, 128, 256
		if name == "" {
			return fmt.Sprintf(`{"model":%s,"strategy":"hypar","config":{"batch":%d,"levels":2,"searchMethod":"beam"}}`, wideFanModel, batch)
		}
		return fmt.Sprintf(`{"zoo":%q,"strategy":"hypar","config":{"batch":%d,"searchMethod":"beam"}}`, name, batch)
	case "sweep":
		// One model, one strategy, one dimension moving: the
		// warm-start-friendly traffic shape of an incremental sweep.
		link := sweepLinks[i%len(sweepLinks)]
		return fmt.Sprintf(`{"zoo":"VGG-A","strategy":"hypar","config":{"linkMbps":%g}}`, link)
	}
	name := zooNames[i%len(zooNames)]
	strat := strategies[(i/len(zooNames))%len(strategies)]
	batch := 64 << uint((i/(len(zooNames)*len(strategies)))%3) // 64, 128, 256
	return fmt.Sprintf(`{"zoo":%q,"strategy":%q,"config":{"batch":%d}}`, name, strat, batch)
}

// batchBody wraps size consecutive mode bodies, starting at global item
// index first, into one /v1/batch request.
func batchBody(mode string, first, size int) string {
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for k := 0; k < size; k++ {
		if k > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(body(mode, first+k))
	}
	sb.WriteString(`]}`)
	return sb.String()
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "hypard host:port (ignored with -cluster)")
		cluster = flag.String("cluster", "", "comma-separated replica host:port list; requests round-robin across the fleet")
		path    = flag.String("endpoint", "/v1/evaluate", "endpoint to hit (ignored with -batch)")
		n       = flag.Int("requests", 200, "total requests")
		batch   = flag.Int("batch", 0, "items per request through /v1/batch (0 = single requests)")
		conc    = flag.Int("concurrency", 8, "concurrent clients")
		mode    = flag.String("mode", "hot", "hot | mixed | branched | degraded | hetero | beam | sweep")
		warm    = flag.Int("warm", 0, "untimed warmup requests before measuring (replays the run's first bodies so hot runs record steady-state cache throughput, not the first compute)")
		wait    = flag.Duration("wait", 15*time.Second, "wait for /healthz before starting")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		retries = flag.Int("retries", 4, "retry budget per request for shed (429/503) responses")
	)
	flag.Parse()
	if *batch > 0 {
		*path = "/v1/batch"
	} else if *mode == "degraded" {
		*path = "/v1/degrade"
	}

	// Targets: one base URL per replica; request i goes to target
	// i%len(targets), so a -cluster run exercises every replica —
	// including the peer-fill path on non-owners — with the same global
	// item sequence a single-target run would issue.
	targets := []string{"http://" + *addr}
	if *cluster != "" {
		targets = targets[:0]
		for _, a := range strings.Split(*cluster, ",") {
			if a = strings.TrimSpace(a); a != "" {
				targets = append(targets, "http://"+a)
			}
		}
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -cluster names no replicas")
			os.Exit(1)
		}
	}
	client := &http.Client{Timeout: *timeout}
	for _, base := range targets {
		if err := waitHealthy(client, base, *wait); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}

	// Warmup: replay the exact bodies the timed run will open with, so
	// their computations (and the daemon's raw-bytes fast path) are
	// primed. Failures here are the measured run's problem to report.
	for i := 0; i < *warm; i++ {
		reqBody := body(*mode, i)
		if *batch > 0 {
			reqBody = batchBody(*mode, i*(*batch), *batch)
		}
		resp, err := client.Post(targets[i%len(targets)]+*path, "application/json", bytes.NewReader([]byte(reqBody)))
		if err != nil {
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var (
		next    atomic.Int64
		errs    atomic.Int64
		shed    atomic.Int64
		retried atomic.Int64
		mu      sync.Mutex
		lats    = make([]float64, 0, *n)
		wg      sync.WaitGroup
		started = time.Now()
	)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(time.Now().UnixNano()))
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				reqBody := body(*mode, i)
				if *batch > 0 {
					reqBody = batchBody(*mode, i*(*batch), *batch)
				}
				t0 := time.Now()
				ok := false
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(targets[i%len(targets)]+*path, "application/json",
						bytes.NewReader([]byte(reqBody)))
					if err != nil {
						errs.Add(1)
						break
					}
					// Shed (429) and refused (503) responses mean the
					// server is protecting itself — back off and retry
					// within the budget, honoring Retry-After; a request
					// still shed afterwards counts as shed, not failed.
					if resp.StatusCode == http.StatusTooManyRequests ||
						resp.StatusCode == http.StatusServiceUnavailable {
						retryAfter := resp.Header.Get("Retry-After")
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if attempt >= *retries {
							shed.Add(1)
							break
						}
						retried.Add(1)
						time.Sleep(backoff(rng, attempt, retryAfter))
						continue
					}
					// /v1/batch answers 200 with per-item failures as
					// in-band {"error":...} NDJSON lines; a benchmark that
					// discarded them would happily measure error-rendering
					// throughput. Count any failed line as a failed request.
					failedItems := false
					if *batch > 0 {
						sc := bufio.NewScanner(resp.Body)
						sc.Buffer(make([]byte, 1<<20), 1<<20)
						for sc.Scan() {
							if bytes.HasPrefix(sc.Bytes(), []byte(`{"error":`)) {
								failedItems = true
							}
						}
						if sc.Err() != nil {
							failedItems = true
						}
					} else {
						_, _ = io.Copy(io.Discard, resp.Body)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || failedItems {
						errs.Add(1)
						break
					}
					ok = true
					break
				}
				if !ok {
					continue
				}
				ms := float64(time.Since(t0).Nanoseconds()) / 1e6
				mu.Lock()
				lats = append(lats, ms)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(started).Seconds()

	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	perReq := 1
	if *batch > 0 {
		perReq = *batch
	}
	out := result{
		Mode:        *mode,
		Endpoint:    *path,
		Requests:    *n,
		BatchSize:   *batch,
		Items:       *n * perReq,
		Concurrency: *conc,
		Errors:      errs.Load(),
		Shed:        shed.Load(),
		Retries:     retried.Load(),
		Seconds:     elapsed,
		RPS:         float64(len(lats)) / elapsed,
		ItemsPerSec: float64(len(lats)*perReq) / elapsed,
		P50Ms:       pct(0.50),
		P90Ms:       pct(0.90),
		P99Ms:       pct(0.99),
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if out.Errors > 0 {
		os.Exit(2)
	}
}

// backoff picks the delay before retrying a shed request: jittered
// exponential (25ms · 2^attempt, up to ~1.6s, ±50% jitter), but never
// less than the server's Retry-After when it names one.
func backoff(rng *rand.Rand, attempt int, retryAfter string) time.Duration {
	if attempt > 6 {
		attempt = 6
	}
	base := 25 * time.Millisecond << uint(attempt)
	d := base/2 + time.Duration(rng.Int63n(int64(base)))
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		if min := time.Duration(s) * time.Second; d < min {
			d = min
		}
	}
	return d
}

// waitHealthy polls /healthz until the daemon answers or the budget is
// spent.
func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hypard at %s not healthy within %s", base, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

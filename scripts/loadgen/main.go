// Command loadgen drives a running hypard with concurrent POST traffic
// and reports throughput and latency percentiles as one JSON object on
// stdout — scripts/bench.sh uses it to record service numbers in
// BENCH_N.json.
//
// Modes:
//
//	-mode hot    every request identical (exercises coalescing + cache:
//	             steady state is pure byte replay)
//	-mode mixed  cycles zoo models × strategies × batch sizes
//	             (exercises the evaluator itself; mostly cache misses
//	             until the cycle wraps)
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -requests 200 -concurrency 8 -mode hot
//	loadgen -addr 127.0.0.1:8080 -wait 10s -mode mixed
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// result is the JSON report.
type result struct {
	Mode        string  `json:"mode"`
	Endpoint    string  `json:"endpoint"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Errors      int64   `json:"errors"`
	Seconds     float64 `json:"seconds"`
	RPS         float64 `json:"rps"`
	P50Ms       float64 `json:"p50Ms"`
	P90Ms       float64 `json:"p90Ms"`
	P99Ms       float64 `json:"p99Ms"`
}

// zoo mirrors the service's model names; kept literal so loadgen works
// against any hypard build without importing the library.
var zooNames = []string{"SFC", "SCONV", "Lenet-c", "Cifar-c", "AlexNet", "VGG-A", "VGG-B", "VGG-C", "VGG-D", "VGG-E"}

var strategies = []string{"hypar", "dp", "mp", "trick"}

// body renders the i-th request body for the mode.
func body(mode string, i int) string {
	if mode == "hot" {
		return `{"zoo":"VGG-A","strategy":"hypar"}`
	}
	name := zooNames[i%len(zooNames)]
	strat := strategies[(i/len(zooNames))%len(strategies)]
	batch := 64 << uint((i/(len(zooNames)*len(strategies)))%3) // 64, 128, 256
	return fmt.Sprintf(`{"zoo":%q,"strategy":%q,"config":{"batch":%d}}`, name, strat, batch)
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "hypard host:port")
		path    = flag.String("endpoint", "/v1/evaluate", "endpoint to hit")
		n       = flag.Int("requests", 200, "total requests")
		conc    = flag.Int("concurrency", 8, "concurrent clients")
		mode    = flag.String("mode", "hot", "hot | mixed")
		wait    = flag.Duration("wait", 15*time.Second, "wait for /healthz before starting")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}
	if err := waitHealthy(client, base, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	var (
		next    atomic.Int64
		errs    atomic.Int64
		mu      sync.Mutex
		lats    = make([]float64, 0, *n)
		wg      sync.WaitGroup
		started = time.Now()
	)
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+*path, "application/json",
					bytes.NewReader([]byte(body(*mode, i))))
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				ms := float64(time.Since(t0).Nanoseconds()) / 1e6
				mu.Lock()
				lats = append(lats, ms)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(started).Seconds()

	sort.Float64s(lats)
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	out := result{
		Mode:        *mode,
		Endpoint:    *path,
		Requests:    *n,
		Concurrency: *conc,
		Errors:      errs.Load(),
		Seconds:     elapsed,
		RPS:         float64(len(lats)) / elapsed,
		P50Ms:       pct(0.50),
		P90Ms:       pct(0.90),
		P99Ms:       pct(0.99),
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if out.Errors > 0 {
		os.Exit(2)
	}
}

// waitHealthy polls /healthz until the daemon answers or the budget is
// spent.
func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hypard at %s not healthy within %s", base, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

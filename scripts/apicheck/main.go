// Command apicheck freezes the partition package's wrapper surface.
//
// Before the unified partition.Solve core landed, every new search
// capability grew a fresh exported variant — a ...Ctx form for
// cancellation, a ...With form for an explicit pool, a ...Weighted or
// ...PerLevel form for cost models — and the matrix multiplied. The
// refactor collapsed all of them into thin wrappers over one
// Request/Solve entry point; this lint keeps it collapsed. Any NEW
// exported function in internal/partition whose name ends in Ctx,
// With, Weighted or PerLevel fails CI: new capabilities belong on
// partition.Request as fields, not on the package as combinatorial
// function variants. The pre-refactor wrappers are grandfathered in
// the frozen allowlist below (they are public API and stay), and
// deleting one merely shrinks the frozen set — apicheck only rejects
// growth.
//
// Usage: go run ./scripts/apicheck [dir]  (default internal/partition)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// frozen is the pre-Solve wrapper surface, verbatim. Do not add to it:
// a new search capability is a new Request field, not a new variant.
var frozen = map[string]bool{
	"AssignmentCostWeighted":  true,
	"BruteForceCtx":           true,
	"BruteForcePerLevelCtx":   true,
	"BruteForcePerLevelWith":  true,
	"BruteForceWeightedCtx":   true,
	"BruteForceWeightedWith":  true,
	"BruteForceWith":          true,
	"DataParallelPerLevel":    true,
	"DataParallelWeighted":    true,
	"EvaluatePerLevel":        true,
	"EvaluateWeighted":        true,
	"ExploreCtx":              true,
	"ExploreWeightedCtx":      true,
	"ExploreWeightedWith":     true,
	"ExploreWith":             true,
	"HierarchicalCtx":         true,
	"HierarchicalPerLevel":    true,
	"HierarchicalPerLevelCtx": true,
	"HierarchicalWeighted":    true,
	"HierarchicalWeightedCtx": true,
	"ModelParallelPerLevel":   true,
	"ModelParallelWeighted":   true,
	"OneWeirdTrickPerLevel":   true,
	"OneWeirdTrickWeighted":   true,
	"TwoWayGraphCtx":          true,
	"TwoWayWeighted":          true,
}

// variantSuffixes are the name shapes the old matrix multiplied along.
var variantSuffixes = []string{"Ctx", "With", "Weighted", "PerLevel"}

func main() {
	dir := filepath.Join("internal", "partition")
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	offenders, err := check(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	if len(offenders) > 0 {
		fmt.Fprintf(os.Stderr, "apicheck: %s grew new exported search variants:\n", dir)
		for _, o := range offenders {
			fmt.Fprintf(os.Stderr, "  %s\n", o)
		}
		fmt.Fprintln(os.Stderr, "add the capability as a partition.Request field served by Solve instead of a new wrapper")
		os.Exit(1)
	}
	fmt.Printf("apicheck: %s wrapper surface unchanged (%d frozen variants)\n", dir, len(frozen))
}

// check parses every non-test file in dir and returns the exported
// top-level functions that match a variant suffix without being in the
// frozen set, as "name (file:line)" strings sorted by name.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var offenders []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil || !fn.Name.IsExported() {
					continue // methods may vary; the lint is about package-level variants
				}
				name := fn.Name.Name
				if !hasVariantSuffix(name) || frozen[name] {
					continue
				}
				pos := fset.Position(fn.Pos())
				offenders = append(offenders,
					fmt.Sprintf("%s (%s:%d)", name, pos.Filename, pos.Line))
			}
		}
	}
	sort.Strings(offenders)
	return offenders, nil
}

func hasVariantSuffix(name string) bool {
	for _, s := range variantSuffixes {
		if strings.HasSuffix(name, s) && name != s {
			return true
		}
	}
	return false
}

package main

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// deltaByName pulls one named delta out of a report.
func deltaByName(t *testing.T, r report, name string) delta {
	t.Helper()
	for _, d := range r.Deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta named %q in %+v", name, r.Deltas)
	return delta{}
}

// TestCompareRaw covers the uncalibrated path: plain new/old ratios,
// band classification on both sides.
func TestCompareRaw(t *testing.T) {
	oldDoc := doc{NsPerOp: map[string]float64{"A": 1000, "B": 1000, "C": 1000}}
	newDoc := doc{NsPerOp: map[string]float64{"A": 1000, "B": 1400, "C": 600}}
	r := compare(oldDoc, newDoc)
	if r.Calibrated || !near(r.Scale, 1) {
		t.Fatalf("uncalibrated compare got scale %v (calibrated=%v)", r.Scale, r.Calibrated)
	}
	const band = 0.25
	if d := deltaByName(t, r, "A"); d.regressed(band) || d.improved(band) {
		t.Errorf("A (1.0x) classified beyond band: %+v", d)
	}
	if d := deltaByName(t, r, "B"); !d.regressed(band) {
		t.Errorf("B (1.4x) not flagged as regression: %+v", d)
	}
	if d := deltaByName(t, r, "C"); !d.improved(band) {
		t.Errorf("C (0.6x) not flagged as improvement: %+v", d)
	}
}

// TestCompareCalibrated proves host-speed normalization: a uniform
// slowdown matching the calibration drift is no regression, and a real
// regression hiding under a fast host is still caught.
func TestCompareCalibrated(t *testing.T) {
	oldDoc := doc{NsPerOp: map[string]float64{calibrationKey: 1000, "Slow": 1000, "Hot": 1000}}
	// Host 2x slower: calibration doubled, "Slow" doubled with it (no
	// real change), "Hot" tripled (a real 1.5x regression under the
	// host drift).
	newDoc := doc{NsPerOp: map[string]float64{calibrationKey: 2000, "Slow": 2000, "Hot": 3000}}
	r := compare(oldDoc, newDoc)
	if !r.Calibrated || !near(r.Scale, 2) {
		t.Fatalf("scale = %v (calibrated=%v), want 2", r.Scale, r.Calibrated)
	}
	const band = 0.25
	if d := deltaByName(t, r, "Slow"); !near(d.Ratio, 1) || d.regressed(band) {
		t.Errorf("host-drift-only entry flagged: %+v", d)
	}
	if d := deltaByName(t, r, "Hot"); !near(d.Ratio, 1.5) || !d.regressed(band) {
		t.Errorf("real regression under host drift missed: %+v", d)
	}
	for _, d := range r.Deltas {
		if d.Name == calibrationKey {
			t.Error("calibration key compared as a benchmark")
		}
	}
}

// TestCompareService covers the inverted service comparison: lower
// throughput is the regression, and the host scale applies inversely.
func TestCompareService(t *testing.T) {
	oldDoc := doc{
		NsPerOp: map[string]float64{calibrationKey: 1000},
		Service: map[string]*svcStat{
			"hot":     {ItemsPerSec: 10000},
			"mixed":   {ItemsPerSec: 5000},
			"skipped": nil,
		},
	}
	newDoc := doc{
		NsPerOp: map[string]float64{calibrationKey: 2000},
		Service: map[string]*svcStat{
			// Host is 2x slower; hot falling to half is pure host drift,
			// mixed falling to an eighth is a real 4x regression.
			"hot":     {ItemsPerSec: 5000},
			"mixed":   {ItemsPerSec: 625},
			"skipped": nil,
		},
	}
	r := compare(oldDoc, newDoc)
	const band = 0.25
	if d := deltaByName(t, r, "service.hot"); !near(d.Ratio, 1) || d.regressed(band) {
		t.Errorf("host-drift-only service entry flagged: %+v", d)
	}
	if d := deltaByName(t, r, "service.mixed"); !near(d.Ratio, 4) || !d.regressed(band) {
		t.Errorf("real service regression missed: %+v", d)
	}
	ns, service := r.regressions(band)
	if len(ns) != 0 {
		t.Errorf("service regressions leaked into the ns list: %v", ns)
	}
	if len(service) != 1 || service[0].Name != "service.mixed" {
		t.Errorf("service regressions = %v, want [service.mixed]", service)
	}
	for _, d := range r.Deltas {
		if d.Name == "service.skipped" {
			t.Error("null (skipped) service stage compared")
		}
	}
}

// TestCompareKeyChurn pins that added/retired benchmarks are listed,
// not failed.
func TestCompareKeyChurn(t *testing.T) {
	oldDoc := doc{NsPerOp: map[string]float64{"Kept": 100, "Retired": 100}}
	newDoc := doc{NsPerOp: map[string]float64{"Kept": 100, "Added": 100}}
	r := compare(oldDoc, newDoc)
	if !reflect.DeepEqual(r.OnlyOld, []string{"Retired"}) {
		t.Errorf("OnlyOld = %v", r.OnlyOld)
	}
	if !reflect.DeepEqual(r.OnlyNew, []string{"Added"}) {
		t.Errorf("OnlyNew = %v", r.OnlyNew)
	}
	if len(r.Deltas) != 1 || r.Deltas[0].Name != "Kept" {
		t.Errorf("Deltas = %v, want just Kept", r.Deltas)
	}
	if ns, svc := r.regressions(0.25); len(ns)+len(svc) != 0 {
		t.Errorf("key churn produced regressions: %v %v", ns, svc)
	}
}

// TestCompareItemsPerSecFallback covers service entries that predate
// itemsPerSec: rps is the figure.
func TestCompareItemsPerSecFallback(t *testing.T) {
	oldDoc := doc{Service: map[string]*svcStat{"hot": {RPS: 1000}}}
	newDoc := doc{Service: map[string]*svcStat{"hot": {RPS: 500}}}
	r := compare(oldDoc, newDoc)
	if d := deltaByName(t, r, "service.hot"); !near(d.Ratio, 2) {
		t.Errorf("rps fallback ratio = %v, want 2", d.Ratio)
	}
}

// TestRender smoke-tests the table: verdict labels land on the right
// rows.
func TestRender(t *testing.T) {
	oldDoc := doc{NsPerOp: map[string]float64{"Fine": 1000, "Worse": 1000}}
	newDoc := doc{NsPerOp: map[string]float64{"Fine": 1010, "Worse": 2000}}
	var sb strings.Builder
	render(&sb, compare(oldDoc, newDoc), 0.25)
	out := sb.String()
	for _, want := range []string{"Fine", "ok", "Worse", "REGRESSED"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

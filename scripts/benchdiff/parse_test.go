package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestNsPerOpAwk regression-tests scripts/ns_per_op.awk against a
// canned `go test -bench` transcript. The transcript bakes in every
// line shape the positional `$3` parser got wrong or would get wrong:
// b.ReportMetric extras, -benchmem columns, a 1-CPU host printing no
// -N name suffix, sub-benchmark names containing dashes, and a line
// with no ns/op figure at all (which `$3` silently misreads as
// nanoseconds and the unit-column parser must skip).
func TestNsPerOpAwk(t *testing.T) {
	awk, err := exec.LookPath("awk")
	if err != nil {
		t.Skip("awk not on PATH")
	}
	transcript, err := os.ReadFile("testdata/bench_transcript.txt")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/ns_per_op.golden")
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(awk, "-f", "../ns_per_op.awk")
	cmd.Stdin = strings.NewReader(string(transcript))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("awk failed: %v\n%s", err, out)
	}
	if got, want := string(out), string(golden); got != want {
		t.Errorf("ns_per_op.awk output drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The fragment must splice into valid JSON exactly as bench.sh
	// wraps it, and must not have picked up the ns-less line.
	var obj map[string]float64
	if err := json.Unmarshal([]byte("{\n"+string(out)+"}"), &obj); err != nil {
		t.Fatalf("fragment is not valid JSON object body: %v", err)
	}
	if _, ok := obj["BenchmarkNoNanoseconds"]; ok {
		t.Error("line without an ns/op figure was recorded (the $3 bug)")
	}
	if got := obj["BenchmarkCalibration"]; got != 2292336 {
		t.Errorf("calibration = %v, want 2292336", got)
	}
	if got := obj["BenchmarkPartitionSearchLinearity/Lenet-c"]; got != 12536 {
		t.Errorf("sub-benchmark with dashed name = %v, want 12536 (suffix strip too greedy?)", got)
	}
}

// Command benchdiff compares two BENCH_N.json trajectory files (see
// scripts/bench.sh) and fails when the newer one regresses beyond a
// noise band, so the perf trajectory is a gate instead of a graph
// someone has to remember to read.
//
// Comparison rules:
//
//   - ns_per_op entries present in both files are compared as
//     new/old ratios; a ratio above 1+band is a regression.
//   - When both files carry BenchmarkCalibration — a fixed
//     host-speed probe, see bench_test.go — its ratio becomes the
//     host-speed scale and every other ns/op ratio is divided by it,
//     separating "this runner is slow today" from "this code is slow
//     now". Files without it (older schemas) compare raw.
//   - service throughput (items/sec, rps when itemsPerSec is absent)
//     is compared inversely — lower is worse — and normalized by the
//     same scale. Service numbers ride host load much harder than
//     microbenchmarks, so -service-warn demotes their regressions to
//     warnings (CI blocks on ns_per_op, flags service drift).
//   - Keys present in only one file are listed, never failed: adding
//     or retiring a benchmark is not a regression.
//
// Usage:
//
//	benchdiff BENCH_5.json BENCH_6.json
//	benchdiff -band 0.30 -service-warn BENCH_5.json BENCH_6.json
//	benchdiff -warn-only old.json new.json   # report, never fail
//
// Exit status: 0 clean (or warnings only), 1 blocking regression,
// 2 usage or unreadable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// calibrationKey is the host-speed probe's ns_per_op entry.
const calibrationKey = "BenchmarkCalibration"

// doc is the slice of BENCH_N.json benchdiff reads; unknown fields
// are ignored so every bench-v* schema parses.
type doc struct {
	Schema    string              `json:"schema"`
	Go        string              `json:"go"`
	CPUs      int                 `json:"cpus"`
	Benchtime string              `json:"benchtime"`
	NsPerOp   map[string]float64  `json:"ns_per_op"`
	Service   map[string]*svcStat `json:"service"`
}

// svcStat is one service stage's throughput; entries are null when
// bench.sh ran with SKIP_SERVICE=1, hence the pointer in doc.Service.
type svcStat struct {
	RPS         float64 `json:"rps"`
	ItemsPerSec float64 `json:"itemsPerSec"`
}

// throughput is the figure compared for a service stage.
func (s *svcStat) throughput() float64 {
	if s.ItemsPerSec > 0 {
		return s.ItemsPerSec
	}
	return s.RPS
}

// delta is one compared entry.
type delta struct {
	Name     string
	Old, New float64
	// Ratio is the calibration-normalized new/old cost ratio: for
	// ns_per_op it is (new/old)/scale, for service throughput it is
	// inverted ((old/new)/scale) so >1 always means "got worse".
	Ratio   float64
	Service bool
}

// regressed reports whether the delta exceeds the noise band.
func (d delta) regressed(band float64) bool { return d.Ratio > 1+band }

// improved reports whether the delta beat the noise band.
func (d delta) improved(band float64) bool { return d.Ratio < 1-band }

// report is a full comparison of two BENCH files.
type report struct {
	Scale      float64 // host-speed scale (new/old calibration), 1 when uncalibrated
	Calibrated bool
	Deltas     []delta  // sorted: ns entries first, then service stages
	OnlyOld    []string // keys retired in new
	OnlyNew    []string // keys added in new
}

// regressions returns the beyond-band deltas, service and not.
func (r report) regressions(band float64) (ns, service []delta) {
	for _, d := range r.Deltas {
		if !d.regressed(band) {
			continue
		}
		if d.Service {
			service = append(service, d)
		} else {
			ns = append(ns, d)
		}
	}
	return ns, service
}

// compare diffs two BENCH documents. Pure so tests can drive it with
// literal docs.
func compare(oldDoc, newDoc doc) report {
	r := report{Scale: 1}
	if o, n := oldDoc.NsPerOp[calibrationKey], newDoc.NsPerOp[calibrationKey]; o > 0 && n > 0 {
		r.Scale = n / o
		r.Calibrated = true
	}

	var nsKeys []string
	for k := range oldDoc.NsPerOp {
		if k == calibrationKey {
			continue
		}
		if _, ok := newDoc.NsPerOp[k]; ok {
			nsKeys = append(nsKeys, k)
		} else {
			r.OnlyOld = append(r.OnlyOld, k)
		}
	}
	for k := range newDoc.NsPerOp {
		if _, ok := oldDoc.NsPerOp[k]; !ok && k != calibrationKey {
			r.OnlyNew = append(r.OnlyNew, k)
		}
	}
	sort.Strings(nsKeys)
	sort.Strings(r.OnlyOld)
	sort.Strings(r.OnlyNew)
	for _, k := range nsKeys {
		o, n := oldDoc.NsPerOp[k], newDoc.NsPerOp[k]
		if o <= 0 || n <= 0 {
			continue
		}
		r.Deltas = append(r.Deltas, delta{Name: k, Old: o, New: n, Ratio: (n / o) / r.Scale})
	}

	var svcKeys []string
	for k, v := range oldDoc.Service {
		if v == nil || v.throughput() <= 0 {
			continue
		}
		if n := newDoc.Service[k]; n != nil && n.throughput() > 0 {
			svcKeys = append(svcKeys, k)
		}
	}
	sort.Strings(svcKeys)
	for _, k := range svcKeys {
		o, n := oldDoc.Service[k].throughput(), newDoc.Service[k].throughput()
		// Throughput: worse means lower, and a slow host lowers it, so
		// the cost ratio inverts both the figure and the scale.
		r.Deltas = append(r.Deltas, delta{Name: "service." + k, Old: o, New: n, Ratio: (o / n) / r.Scale, Service: true})
	}
	return r
}

// render writes the human-readable comparison.
func render(w io.Writer, r report, band float64) {
	if r.Calibrated {
		fmt.Fprintf(w, "calibration: host-speed scale %.3f (new/old; ns ratios normalized by it)\n", r.Scale)
	} else {
		fmt.Fprintf(w, "calibration: absent in one file; comparing raw (noise band %.0f%% must absorb host drift)\n", band*100)
	}
	for _, d := range r.Deltas {
		verdict := "ok"
		switch {
		case d.regressed(band):
			verdict = "REGRESSED"
		case d.improved(band):
			verdict = "improved"
		}
		unit := "ns/op"
		pct := (d.Ratio - 1) * 100
		if d.Service {
			unit = "items/s"
			pct = (1/d.Ratio - 1) * 100 // throughput delta, signed like the user reads it
		}
		fmt.Fprintf(w, "  %-44s %14.1f -> %14.1f %s  %+6.1f%%  %s\n", d.Name, d.Old, d.New, unit, pct, verdict)
	}
	if len(r.OnlyOld) > 0 {
		fmt.Fprintf(w, "retired (old only): %v\n", r.OnlyOld)
	}
	if len(r.OnlyNew) > 0 {
		fmt.Fprintf(w, "added (new only): %v\n", r.OnlyNew)
	}
}

func readDoc(path string) (doc, error) {
	var d doc
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func main() {
	band := flag.Float64("band", 0.25, "noise band as a fraction: ratios within 1±band are neither regressions nor wins")
	warnOnly := flag.Bool("warn-only", false, "report regressions without failing")
	serviceWarn := flag.Bool("service-warn", false, "demote service-throughput regressions to warnings (ns_per_op still blocks)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldDoc, err := readDoc(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := readDoc(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	r := compare(oldDoc, newDoc)
	fmt.Printf("benchdiff: %s -> %s (band ±%.0f%%)\n", flag.Arg(0), flag.Arg(1), *band*100)
	render(os.Stdout, r, *band)

	ns, service := r.regressions(*band)
	fail := false
	for _, d := range ns {
		if *warnOnly {
			fmt.Printf("WARN: %s regressed %.1f%% (beyond ±%.0f%% band)\n", d.Name, (d.Ratio-1)*100, *band*100)
		} else {
			fmt.Printf("FAIL: %s regressed %.1f%% (beyond ±%.0f%% band)\n", d.Name, (d.Ratio-1)*100, *band*100)
			fail = true
		}
	}
	for _, d := range service {
		if *warnOnly || *serviceWarn {
			fmt.Printf("WARN: %s throughput fell %.1f%% (beyond ±%.0f%% band)\n", d.Name, (1-1/d.Ratio)*100, *band*100)
		} else {
			fmt.Printf("FAIL: %s throughput fell %.1f%% (beyond ±%.0f%% band)\n", d.Name, (1-1/d.Ratio)*100, *band*100)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	if len(ns)+len(service) == 0 {
		fmt.Println("benchdiff: no regressions beyond the noise band")
	}
}

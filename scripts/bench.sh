#!/usr/bin/env bash
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Usage:  scripts/bench.sh [N]
#
# Emits BENCH_N.json (default N=1) at the repository root: ns/op for
# every benchmark plus host metadata, so successive PRs can be compared
# point by point. Key pairs to watch:
#
#   BenchmarkFig6Performance    vs BenchmarkFig6PerformanceSerial
#   BenchmarkFig9Exploration    vs BenchmarkFig9ExplorationSerial
#   BenchmarkSimulateStep       vs BenchmarkSimulateStepReusedEngine
#
# BENCHTIME overrides the per-benchmark iteration count (default 10x;
# use a duration like 1s for lower variance on quiet machines).
set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:-1}"
out="BENCH_${n}.json"
benchtime="${BENCHTIME:-10x}"

raw="$(go test -run '^$' -bench . -benchtime "$benchtime" .)"
echo "$raw"

echo "$raw" | awk -v out="$out" -v benchtime="$benchtime" \
	-v goversion="$(go env GOVERSION)" -v maxprocs="$(nproc 2>/dev/null || echo 1)" '
/^Benchmark/ {
	name=$1
	sub(/-[0-9]+$/, "", name)
	ns[name]=$3
	order[++i]=name
}
END {
	printf "{\n" > out
	printf "  \"schema\": \"bench-v1\",\n" >> out
	printf "  \"go\": \"%s\",\n", goversion >> out
	printf "  \"cpus\": %s,\n", maxprocs >> out
	printf "  \"benchtime\": \"%s\",\n", benchtime >> out
	printf "  \"ns_per_op\": {\n" >> out
	for (j=1; j<=i; j++) {
		printf "    \"%s\": %s%s\n", order[j], ns[order[j]], (j<i ? "," : "") >> out
	}
	printf "  }\n}\n" >> out
}'
echo "wrote ${out}"

#!/usr/bin/env bash
# bench.sh — run the benchmark suite and record the perf trajectory.
#
# Usage:  scripts/bench.sh [N]
#
# Emits BENCH_N.json (default N=1) at the repository root: ns/op for
# every benchmark, plus hypard service throughput (hot-cache, mixed and
# batched workloads driven by scripts/loadgen), plus host metadata, so
# successive PRs can be compared point by point. Key pairs to watch:
#
#   BenchmarkFig6Performance    vs BenchmarkFig6PerformanceSerial
#   BenchmarkFig9Exploration    vs BenchmarkFig9ExplorationSerial
#   BenchmarkSimulateStep       vs BenchmarkSimulateStepReusedEngine
#   service.hot.rps             vs service.mixed.rps (cache leverage)
#   service.batch_*.itemsPerSec vs the single-request rps above
#                               (amortized round trips + intra-batch
#                               dedupe: the /v1/batch leverage)
#   service.branched.rps        branched (DAG) workloads: the graph
#                               partition search + DAG simulation path
#   service.degraded.rps        degraded-array replanning: /v1/degrade's
#                               healthy-vs-degraded fan-out per request
#   service.hetero.rps          heterogeneous arrays: per-level platform
#                               assignments through the composite-fabric
#                               evaluation path
#   service.beam.rps            beam partition search on the branched
#                               workloads plus a wide-fan DAG the exact
#                               DP refuses
#   service.sweep.rps           one-dimension bandwidth sweep: the
#                               warm-started incremental replanning path
#
# Successive files are gated, not just eyeballed: `go run
# ./scripts/benchdiff BENCH_5.json BENCH_6.json` compares them point by
# point, normalizing host noise via the BenchmarkCalibration probe that
# rides along in ns_per_op, and fails beyond a noise band. The hot
# service stages warm the daemon first (loadgen -warm) so they record
# steady-state fast-path throughput, not the first cold compute.
#
# BENCHTIME overrides the per-benchmark iteration count (default 10x;
# use a duration like 1s for lower variance on quiet machines).
# HYPARD_PORT overrides the service port (default 18923).
# SKIP_SERVICE=1 skips the service throughput stage.
set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:-1}"
out="BENCH_${n}.json"
benchtime="${BENCHTIME:-10x}"
port="${HYPARD_PORT:-18923}"

raw="$(go test -run '^$' -bench . -benchtime "$benchtime" .)"
echo "$raw"

# Parse ns/op by unit column (scripts/ns_per_op.awk), not by position:
# lines with extra metrics or without an ns/op figure must not be
# misread. BenchmarkCalibration rides along as the host-speed probe
# scripts/benchdiff normalizes against.
ns_per_op="$(echo "$raw" | awk -f scripts/ns_per_op.awk)"

service_hot="null"
service_mixed="null"
service_batch_hot="null"
service_batch_mixed="null"
service_branched="null"
service_degraded="null"
service_hetero="null"
service_beam="null"
service_sweep="null"
daemon_pid=""
if [ "${SKIP_SERVICE:-0}" != "1" ]; then
	tmpdir="$(mktemp -d)"
	trap 'if [ -n "$daemon_pid" ]; then kill "$daemon_pid" 2>/dev/null || true; fi; rm -rf "$tmpdir"' EXIT
	go build -o "$tmpdir/hypard" ./cmd/hypard
	go build -o "$tmpdir/loadgen" ./scripts/loadgen

	"$tmpdir/hypard" -addr "127.0.0.1:${port}" >"$tmpdir/hypard.log" 2>&1 &
	daemon_pid=$!

	echo "service throughput (hot cache):"
	service_hot="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode hot -warm 8 -requests 2000 -concurrency 8)"
	echo "$service_hot"
	echo "service throughput (mixed workload):"
	service_mixed="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode mixed -requests 2000 -concurrency 8)"
	echo "$service_mixed"
	echo "service throughput (batched, hot items: 300 x 16-item /v1/batch):"
	service_batch_hot="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode hot -batch 16 -warm 8 -requests 300 -concurrency 8)"
	echo "$service_batch_hot"
	echo "service throughput (batched, mixed items: 300 x 16-item /v1/batch):"
	service_batch_mixed="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode mixed -batch 16 -requests 300 -concurrency 8)"
	echo "$service_batch_mixed"
	echo "service throughput (branched DAG workloads):"
	service_branched="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode branched -requests 2000 -concurrency 8)"
	echo "$service_branched"
	echo "service throughput (degraded-array replanning):"
	service_degraded="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode degraded -requests 2000 -concurrency 8)"
	echo "$service_degraded"
	echo "service throughput (heterogeneous per-level platforms):"
	service_hetero="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode hetero -requests 2000 -concurrency 8)"
	echo "$service_hetero"
	echo "service throughput (beam search on branched + wide-fan workloads):"
	service_beam="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode beam -requests 2000 -concurrency 8)"
	echo "$service_beam"
	echo "service throughput (warm-start bandwidth sweep):"
	service_sweep="$("$tmpdir/loadgen" -addr "127.0.0.1:${port}" -mode sweep -requests 2000 -concurrency 8)"
	echo "$service_sweep"

	kill "$daemon_pid" 2>/dev/null || true
	wait "$daemon_pid" 2>/dev/null || true
	daemon_pid=""
fi

{
	printf '{\n'
	printf '  "schema": "bench-v8",\n'
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "cpus": %s,\n' "$(nproc 2>/dev/null || echo 1)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "ns_per_op": {\n'
	printf '%s\n' "$ns_per_op"
	printf '  },\n'
	printf '  "service": {\n'
	printf '    "hot": %s,\n' "$service_hot"
	printf '    "mixed": %s,\n' "$service_mixed"
	printf '    "batch_hot": %s,\n' "$service_batch_hot"
	printf '    "batch_mixed": %s,\n' "$service_batch_mixed"
	printf '    "branched": %s,\n' "$service_branched"
	printf '    "degraded": %s,\n' "$service_degraded"
	printf '    "hetero": %s,\n' "$service_hetero"
	printf '    "beam": %s,\n' "$service_beam"
	printf '    "sweep": %s\n' "$service_sweep"
	printf '  }\n'
	printf '}\n'
} >"$out"
echo "wrote ${out}"

// Command doccheck enforces the repository's documentation contract in
// CI (the docs job):
//
//  1. every exported identifier of the public hypar package (the
//     repository root) carries a doc comment, and
//  2. every relative markdown link in README.md, PAPER.md, ROADMAP.md
//     and docs/ points at a file that exists.
//
// Usage:
//
//	go run ./scripts/doccheck [repo-root]
//
// The root defaults to the current directory. doccheck prints one line
// per violation and exits non-zero if it found any.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkDocComments(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Printf("doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// checkDocComments parses the root package and reports every exported
// top-level identifier (functions, methods, types, vars, consts)
// without a doc comment.
func checkDocComments(root string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, root, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("parse %s: %v", root, err)}
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && !(len(d.Specs) == 1 && d.Doc != nil) {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && s.Doc == nil && !(len(d.Specs) == 1 && d.Doc != nil) {
									report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// mdLink matches [text](target) markdown links.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every relative link target in the
// documentation surface exists on disk.
func checkMarkdownLinks(root string) []string {
	files := []string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "PAPER.md"),
		filepath.Join(root, "ROADMAP.md"),
	}
	docs, _ := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	files = append(files, docs...)

	var out []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			if os.IsNotExist(err) && filepath.Base(file) != "README.md" {
				continue // optional surface
			}
			out = append(out, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
					strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					out = append(out, fmt.Sprintf("%s:%d: broken link %q (%s does not exist)", file, i+1, m[1], resolved))
				}
			}
		}
	}
	return out
}

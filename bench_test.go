// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§6), regenerating the same rows/series the paper reports,
// plus ablation benches for the design choices DESIGN.md calls out.
//
// Figure-level metrics are attached via b.ReportMetric so `go test
// -bench=. -benchmem` doubles as the reproduction record:
//
//	gain-vs-dp     HyPar speedup over Data Parallelism (Figs. 6, 13)
//	energy-eff     HyPar energy efficiency over DP (Fig. 7)
//	comm-gb        total communication per step (Fig. 8)
package hypar_test

import (
	"io"
	"testing"

	hypar "repro"
	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/train"
)

// discardTable drops a table (benchmarks exercise generation, not IO).
func discardTable(b *testing.B, t *report.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if err := t.WriteText(io.Discard); err != nil {
		b.Fatal(err)
	}
}

// The *Serial benchmarks run on runner.Serial() (width 1); the
// unsuffixed figure benchmarks use the default (all-CPU) pool, so
// BENCH_*.json records the parallel-vs-serial trajectory.

// BenchmarkFig5PartitionSearch regenerates the optimized parallelism
// maps for all ten networks (Figure 5): ten hierarchical DP searches.
func BenchmarkFig5PartitionSearch(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5(cfg)
		discardTable(b, t, err)
	}
}

// BenchmarkFig6Performance regenerates the performance comparison
// (Figure 6) and reports HyPar's geometric-mean gain.
func BenchmarkFig6Performance(b *testing.B) {
	cfg := hypar.DefaultConfig()
	var gain float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig6(cfg)
		discardTable(b, t, err)
		_ = t
	}
	// One out-of-loop evaluation for the metric.
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		b.Fatal(err)
	}
	cmp, err := hypar.Compare(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	gain = cmp.PerformanceGain(hypar.HyPar)
	b.ReportMetric(gain, "gain-vs-dp")
}

// BenchmarkFig6PerformanceSerial is Fig6 pinned to one worker: the
// serial reference the parallel fan-out is measured against.
func BenchmarkFig6PerformanceSerial(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSessionWithPool(cfg, runner.Serial())
		t, err := s.Fig6()
		discardTable(b, t, err)
	}
}

// BenchmarkFig678SharedComparison measures one session regenerating
// Figures 6, 7 and 8 together: the zoo comparison behind all three is
// evaluated once and shared (the session cache at work).
func BenchmarkFig678SharedComparison(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(cfg)
		for _, fig := range []func() (*report.Table, error){s.Fig6, s.Fig7, s.Fig8} {
			t, err := fig()
			discardTable(b, t, err)
		}
	}
}

// BenchmarkFig7Energy regenerates the energy-efficiency comparison
// (Figure 7).
func BenchmarkFig7Energy(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig7(cfg)
		discardTable(b, t, err)
	}
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		b.Fatal(err)
	}
	cmp, err := hypar.Compare(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(cmp.EnergyEfficiency(hypar.HyPar), "energy-eff")
}

// BenchmarkFig8Communication regenerates the total-communication table
// (Figure 8) and reports the VGG-A HyPar volume in GB.
func BenchmarkFig8Communication(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8(cfg)
		discardTable(b, t, err)
	}
	m, err := hypar.ModelByName("VGG-A")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := hypar.NewPlan(m, hypar.HyPar, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(plan.TotalBytes(hypar.Float32)/1e9, "comm-gb")
}

// BenchmarkFig9Exploration sweeps the 256-point Lenet-c space
// (Figure 9): 256 plan evaluations + simulations per iteration.
func BenchmarkFig9Exploration(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Fig9(cfg)
		discardTable(b, t, err)
	}
}

// BenchmarkFig9ExplorationSerial is Fig9 pinned to one worker.
func BenchmarkFig9ExplorationSerial(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSessionWithPool(cfg, runner.Serial())
		t, _, err := s.Fig9()
		discardTable(b, t, err)
	}
}

// BenchmarkFig10Exploration sweeps the 256-point VGG-A space
// (Figure 10).
func BenchmarkFig10Exploration(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Fig10(cfg)
		discardTable(b, t, err)
	}
}

// BenchmarkFig11Scalability scales VGG-A from 1 to 64 accelerators
// (Figure 11).
func BenchmarkFig11Scalability(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Fig11(cfg, 6)
		discardTable(b, t, err)
	}
}

// BenchmarkFig12Topology compares H-tree against torus across the zoo
// (Figure 12).
func BenchmarkFig12Topology(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig12(cfg)
		discardTable(b, t, err)
	}
}

// BenchmarkFig13Trick compares HyPar against "one weird trick" on the
// six VGG-E layer cases (Figure 13).
func BenchmarkFig13Trick(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig13(cfg)
		discardTable(b, t, err)
	}
}

// BenchmarkTable12CommModel micro-benchmarks the communication model's
// worked examples (Tables 1-2 / §3.4): the per-layer amounts and
// transition costs the whole search is built on.
func BenchmarkTable12CommModel(b *testing.B) {
	m, err := hypar.ModelByName("VGG-E")
	if err != nil {
		b.Fatal(err)
	}
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := hypar.NewPlan(m, hypar.HyPar, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionSearchLinearity demonstrates the O(L) claim: the
// search over the 19-layer VGG-E, per single layer.
func BenchmarkPartitionSearchLinearity(b *testing.B) {
	for _, name := range []string{"Lenet-c", "AlexNet", "VGG-E"} {
		b.Run(name, func(b *testing.B) {
			m, err := hypar.ModelByName(name)
			if err != nil {
				b.Fatal(err)
			}
			cfg := hypar.DefaultConfig()
			for i := 0; i < b.N; i++ {
				if _, err := hypar.NewPlan(m, hypar.HyPar, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBruteForceReference measures the exponential reference
// search Algorithm 1 replaces (Lenet-c, H=2: 2^8 plans).
func BenchmarkBruteForceReference(b *testing.B) {
	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := partition.BruteForce(m, 256, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateStep measures one event-driven training-step
// simulation of the largest network.
func BenchmarkSimulateStep(b *testing.B) {
	m, err := hypar.ModelByName("VGG-E")
	if err != nil {
		b.Fatal(err)
	}
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := hypar.Run(m, hypar.HyPar, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateStepReusedEngine is BenchmarkSimulateStep on one
// Evaluator: the engine's task slab, the arch and the memoized shapes
// are all reused, isolating the caching layer's allocation win.
func BenchmarkSimulateStepReusedEngine(b *testing.B) {
	m, err := hypar.ModelByName("VGG-E")
	if err != nil {
		b.Fatal(err)
	}
	cfg := hypar.DefaultConfig()
	ev := hypar.NewEvaluator()
	plan, err := hypar.NewPlan(m, hypar.HyPar, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Simulate(m, hypar.HyPar, plan, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHierarchyDepth sweeps the hierarchy depth.
func BenchmarkAblationHierarchyDepth(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationDepth(cfg, 6, "VGG-A")
		discardTable(b, t, err)
	}
}

// BenchmarkAblationTopology sweeps htree/torus/ideal fabrics.
func BenchmarkAblationTopology(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationTopology(cfg, "VGG-A")
		discardTable(b, t, err)
	}
}

// BenchmarkAblationBatch sweeps the batch size (§3.4 crossover).
func BenchmarkAblationBatch(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationBatch(cfg, "AlexNet")
		discardTable(b, t, err)
	}
}

// BenchmarkAblationLinkBandwidth sweeps the NoC link speed.
func BenchmarkAblationLinkBandwidth(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationLinkBandwidth(cfg, "VGG-A")
		discardTable(b, t, err)
	}
}

// BenchmarkAblationOverlap compares phase-serial against overlapped
// gradient communication.
func BenchmarkAblationOverlap(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationOverlap(cfg, "VGG-A")
		discardTable(b, t, err)
	}
}

// BenchmarkShardedTrainingStep measures one real hybrid-parallel SGD
// step of the numerical substrate (two groups, mixed dp/mp assignment)
// — the executor the communication-model validation runs on.
func BenchmarkShardedTrainingStep(b *testing.B) {
	m := &hypar.Model{
		Name:  "bench-fc",
		Input: hypar.Input{H: 1, W: 1, C: 256},
		Layers: []hypar.Layer{
			hypar.FCLayer("fc1", 256),
			hypar.FCLayer("fc2", 128),
			hypar.FCLayer("fc3", 10),
		},
	}
	ref, err := train.NewNetwork(m, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	sh, err := train.NewShardedFC(ref, []comm.Parallelism{comm.MP, comm.MP, comm.DP})
	if err != nil {
		b.Fatal(err)
	}
	x, labels, err := train.SyntheticBatch(m, 32, 10, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.Step(x, labels, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchicalTrainingStep measures one four-worker (H=2)
// hierarchical-parallel SGD step.
func BenchmarkHierarchicalTrainingStep(b *testing.B) {
	m := &hypar.Model{
		Name:  "bench-hier",
		Input: hypar.Input{H: 1, W: 1, C: 128},
		Layers: []hypar.Layer{
			hypar.FCLayer("fc1", 128),
			hypar.FCLayer("fc2", 64),
			hypar.FCLayer("fc3", 8),
		},
	}
	plan, err := partition.Hierarchical(m, 16, 2)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := train.NewNetwork(m, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	hier, err := train.NewHierarchicalFC(ref, plan)
	if err != nil {
		b.Fatal(err)
	}
	x, labels, err := train.SyntheticBatch(m, 16, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hier.Step(x, labels, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrecision sweeps fp32/fp16/int8 element widths.
func BenchmarkAblationPrecision(b *testing.B) {
	cfg := hypar.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationPrecision(cfg, "VGG-A")
		discardTable(b, t, err)
	}
}

// BenchmarkCalibration is a fixed, codebase-independent workload —
// pure integer xorshift, no memory traffic — that measures only how
// fast the host is running right now. scripts/benchdiff divides the
// two files' calibration figures to get a host-speed scale and
// normalizes every other ns/op comparison by it, so a noisy or
// throttled CI runner reads as calibration drift, not as a code
// regression. Touching this benchmark invalidates that normalization:
// do not change the loop.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := uint64(0x9E3779B97F4A7C15)
		for j := 0; j < 1_000_000; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		if x == 0 {
			b.Fatal("xorshift collapsed")
		}
	}
}

package hypar_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	hypar "repro"
	"repro/internal/nn"
	"repro/internal/partition"
)

// wideFork builds a DAG with `branches` parallel conv paths between one
// stem and one fc join — frontier width = branches, so 18 exceeds the
// exact graph DP's compiled-in cap of 16.
func wideFork(branches int) *hypar.Model {
	m := &nn.Model{Name: fmt.Sprintf("wide-fork-%d", branches), Input: nn.Input{H: 8, W: 8, C: 3}}
	m.Layers = append(m.Layers, nn.Layer{Name: "stem", Type: nn.Conv, K: 3, Pad: 1, Cout: 4, Act: nn.ReLU})
	var ins []string
	for i := 0; i < branches; i++ {
		name := fmt.Sprintf("b%d", i)
		m.Layers = append(m.Layers, nn.Layer{
			Name: name, Type: nn.Conv, K: 3, Pad: 1, Cout: 4, Act: nn.ReLU, Inputs: []string{"stem"},
		})
		ins = append(ins, name)
	}
	m.Layers = append(m.Layers, nn.Layer{Name: "join", Type: nn.FC, Cout: 10, Inputs: ins, Act: nn.Softmax})
	return m
}

// TestConfigSearchCanonical: search-method spellings canonicalize so
// equal-semantics configs marshal identically (the request-hash
// property), and the default spelling stays byte-identical to the
// pre-searchMethod wire format.
func TestConfigSearchCanonical(t *testing.T) {
	base := hypar.DefaultConfig().Canonical()
	spelled := hypar.DefaultConfig()
	spelled.SearchMethod = "Hierarchical"
	spelled.BeamWidth = 99 // meaningless without beam: dropped
	a, _ := json.Marshal(base)
	b, _ := json.Marshal(spelled.Canonical())
	if string(a) != string(b) {
		t.Errorf("explicit default search method changes canonical JSON:\n%s\n%s", a, b)
	}
	if got := string(a); len(got) > 0 && (reflect.DeepEqual(got, "") || containsAny(got, "searchMethod", "beamWidth")) {
		t.Errorf("default canonical JSON mentions search fields: %s", got)
	}

	beam := hypar.DefaultConfig()
	beam.SearchMethod = "BEAM"
	cb := beam.Canonical()
	if cb.SearchMethod != "beam" || cb.BeamWidth != partition.DefaultBeamWidth {
		t.Errorf("beam canonical = %q width %d, want beam/%d", cb.SearchMethod, cb.BeamWidth, partition.DefaultBeamWidth)
	}
	if err := beam.Validate(); err != nil {
		t.Errorf("beam config invalid: %v", err)
	}

	for name, mutate := range map[string]func(*hypar.Config){
		"unknown method": func(c *hypar.Config) { c.SearchMethod = "quantum" },
		"negative width": func(c *hypar.Config) { c.SearchMethod = "beam"; c.BeamWidth = -1 },
		"huge width":     func(c *hypar.Config) { c.SearchMethod = "beam"; c.BeamWidth = 1 << 20 },
	} {
		c := hypar.DefaultConfig()
		mutate(&c)
		if err := c.Validate(); !errors.Is(err, hypar.ErrConfig) {
			t.Errorf("%s: Validate = %v, want ErrConfig", name, err)
		}
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
		}
	}
	return false
}

// TestBeamPlansWideGraph: the facade refuses a frontier-width-18 DAG
// under the default exact search and plans it under searchMethod beam —
// all the way through a simulated step.
func TestBeamPlansWideGraph(t *testing.T) {
	m := wideFork(18)
	cfg := hypar.DefaultConfig()
	cfg.Batch = 16
	cfg.Levels = 2

	if _, err := hypar.NewPlan(m, hypar.HyPar, cfg); !errors.Is(err, partition.ErrTooWide) {
		t.Fatalf("exact search on width-18 DAG = %v, want ErrTooWide", err)
	}

	cfg.SearchMethod = "beam"
	plan, err := hypar.NewPlan(m, hypar.HyPar, cfg)
	if err != nil {
		t.Fatalf("beam search: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := hypar.Run(m, hypar.HyPar, cfg)
	if err != nil {
		t.Fatalf("beam Run: %v", err)
	}
	if res.Stats == nil || res.Stats.StepSeconds <= 0 {
		t.Error("beam plan simulated to a degenerate step")
	}

	// The brute method also routes through the facade (exhaustive
	// reference on a small chain).
	small, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		t.Fatal(err)
	}
	bcfg := hypar.DefaultConfig()
	bcfg.Levels = 2
	bcfg.SearchMethod = "brute"
	bplan, err := hypar.NewPlan(small, hypar.HyPar, bcfg)
	if err != nil {
		t.Fatalf("brute via facade: %v", err)
	}
	hcfg := bcfg
	hcfg.SearchMethod = ""
	hplan, err := hypar.NewPlan(small, hypar.HyPar, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	if bplan.TotalElems != hplan.TotalElems {
		t.Errorf("brute %g != hierarchical %g on a chain (both exact)", bplan.TotalElems, hplan.TotalElems)
	}
}

// TestEvaluatorWarmSweep: an Evaluator sweeping one dimension that does
// not touch the partition inputs (link bandwidth) re-plans with zero
// new DP cells, and the warm plans match cold solves exactly.
func TestEvaluatorWarmSweep(t *testing.T) {
	m, err := hypar.ModelByName("VGG-A")
	if err != nil {
		t.Fatal(err)
	}
	ev := hypar.NewEvaluator()
	cfg := hypar.DefaultConfig()
	if _, err := ev.Run(m, hypar.HyPar, cfg); err != nil {
		t.Fatal(err)
	}
	for _, link := range []float64{800, 3200, 6400} {
		swept := cfg
		swept.LinkMbps = link
		before := partition.DPCells()
		res, err := ev.Run(m, hypar.HyPar, swept)
		if err != nil {
			t.Fatal(err)
		}
		if d := partition.DPCells() - before; d != 0 {
			t.Errorf("link %g: warm sweep evaluated %d DP cells, want 0 (bandwidth does not enter the DP)", link, d)
		}
		cold, err := hypar.NewPlan(m, hypar.HyPar, swept)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.TotalElems != cold.TotalElems || !reflect.DeepEqual(res.Plan.Levels, cold.Levels) {
			t.Errorf("link %g: warm plan differs from cold plan", link)
		}
	}

	// A batch change mutates every level's amounts: the warm hint must
	// be ignored, not mis-applied.
	swept := cfg
	swept.Batch = 64
	res, err := ev.Run(m, hypar.HyPar, swept)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := hypar.NewPlan(m, hypar.HyPar, swept)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.TotalElems != cold.TotalElems || !reflect.DeepEqual(res.Plan.Levels, cold.Levels) {
		t.Error("batch-swept warm plan differs from cold plan")
	}
}

# Development entry points; CI runs the same commands.
GO ?= go

.PHONY: build test race bench bench-json fmt vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package, including the concurrency
# determinism tests in internal/experiments and internal/runner.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

# Record the perf trajectory (BENCH_N.json; N defaults to 1).
bench-json:
	scripts/bench.sh $(N)

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

check: vet test race
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on: $$unformatted"; exit 1; fi

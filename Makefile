# Development entry points; CI runs the same commands.
GO ?= go

.PHONY: build test race bench bench-json fmt vet check fuzz cover serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package, including the concurrency
# determinism tests in internal/experiments and internal/runner.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 10x .

# Record the perf trajectory (BENCH_N.json; N defaults to 1).
bench-json:
	scripts/bench.sh $(N)

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Short fuzz pass over every fuzz target (CI runs the same budget).
fuzz:
	$(GO) test -fuzz='^FuzzDecodeModel$$' -fuzztime=10s -run '^$$' ./internal/nn
	$(GO) test -fuzz='^FuzzLayerValidate$$' -fuzztime=10s -run '^$$' ./internal/nn

cover:
	$(GO) test -cover -coverprofile=coverage.out ./...

# Run the evaluation service on :8080.
serve:
	$(GO) run ./cmd/hypard -addr :8080

check: vet test race
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on: $$unformatted"; exit 1; fi

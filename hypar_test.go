package hypar_test

import (
	"errors"
	"math"
	"testing"

	hypar "repro"
)

func TestDefaultConfig(t *testing.T) {
	c := hypar.DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	canon := c.Canonical()
	if canon.Batch != 256 || canon.Levels != 4 || canon.Platform != "hmc" ||
		canon.Topology != "htree" || canon.LinkMbps != 1600 {
		t.Errorf("default config diverges from paper §6.1: %+v", canon)
	}
	// Switching Platform on the default config must pick that
	// platform's native fabric, not keep the HMC's H-tree/1600.
	c.Platform = "gpu-hbm"
	canon = c.Canonical()
	if canon.Topology != "torus" || canon.LinkMbps != 200000 {
		t.Errorf("platform switch kept hmc fabric: %+v", canon)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []hypar.Config{
		{Batch: 0, Levels: 4, Topology: "htree", LinkMbps: 1600},
		{Batch: 256, Levels: -1, Topology: "htree", LinkMbps: 1600},
		{Batch: 256, Levels: 25, Topology: "htree", LinkMbps: 1600},
		{Batch: 256, Levels: 4, Topology: "ring", LinkMbps: 1600},
		{Batch: 256, Levels: 4, Topology: "htree", LinkMbps: -1},
		{Batch: 256, Levels: 4, Platform: "quantum", Topology: "htree", LinkMbps: 1600},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, hypar.ErrConfig) {
			t.Errorf("bad config %d accepted: %v", i, err)
		}
	}
	// Zero topology/link/platform are valid: Canonical resolves them to
	// the platform defaults.
	blank := hypar.Config{Batch: 256, Levels: 4}
	if err := blank.Validate(); err != nil {
		t.Errorf("blank platform fields rejected: %v", err)
	}
	canon := blank.Canonical()
	if canon.Platform != "hmc" || canon.Topology != "htree" || canon.LinkMbps != 1600 {
		t.Errorf("canonical defaults = %+v, want hmc/htree/1600", canon)
	}
}

func TestStrategyString(t *testing.T) {
	names := map[hypar.Strategy]string{
		hypar.HyPar:         "HyPar",
		hypar.DataParallel:  "DataParallel",
		hypar.ModelParallel: "ModelParallel",
		hypar.OneWeirdTrick: "OneWeirdTrick",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v.String() = %q", s, s.String())
		}
	}
	if hypar.Strategy(99).String() != "Strategy(99)" {
		t.Error("unknown strategy string wrong")
	}
}

func TestNewPlanStrategies(t *testing.T) {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	cfg := hypar.DefaultConfig()
	for _, s := range hypar.Strategies {
		p, err := hypar.NewPlan(m, s, cfg)
		if err != nil {
			t.Fatalf("NewPlan(%v): %v", s, err)
		}
		if p.NumLevels() != 4 || p.NumAccelerators() != 16 {
			t.Errorf("%v: levels=%d accs=%d", s, p.NumLevels(), p.NumAccelerators())
		}
	}
	if _, err := hypar.NewPlan(m, hypar.Strategy(42), cfg); !errors.Is(err, hypar.ErrConfig) {
		t.Errorf("unknown strategy accepted: %v", err)
	}
	badCfg := cfg
	badCfg.Batch = -1
	if _, err := hypar.NewPlan(m, hypar.HyPar, badCfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBuildArchTopologies(t *testing.T) {
	for _, topo := range []string{"htree", "torus", "ideal"} {
		c := hypar.DefaultConfig()
		c.Topology = topo
		arch, err := hypar.BuildArch(c)
		if err != nil {
			t.Fatalf("BuildArch(%s): %v", topo, err)
		}
		if arch.NoC.Name() != topo {
			t.Errorf("topology = %q, want %q", arch.NoC.Name(), topo)
		}
	}
	bad := hypar.DefaultConfig()
	bad.Topology = "hypercube"
	if _, err := hypar.BuildArch(bad); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunAndCompare(t *testing.T) {
	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		t.Fatal(err)
	}
	cfg := hypar.DefaultConfig()
	cmp, err := hypar.Compare(m, cfg)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if cmp.Model != "Lenet-c" || len(cmp.Results) != len(hypar.Strategies) {
		t.Errorf("comparison incomplete: %+v", cmp)
	}
	if g := cmp.PerformanceGain(hypar.DataParallel); g != 1 {
		t.Errorf("DP gain = %g, want 1", g)
	}
	if g := cmp.PerformanceGain(hypar.HyPar); g <= 1 {
		t.Errorf("HyPar gain = %g, want > 1 on Lenet-c", g)
	}
	if e := cmp.EnergyEfficiency(hypar.HyPar); e <= 1 {
		t.Errorf("HyPar energy efficiency = %g, want > 1 on Lenet-c", e)
	}
	// Missing strategy yields zero rather than panicking.
	empty := &hypar.Comparison{Results: map[hypar.Strategy]*hypar.Result{}}
	if empty.PerformanceGain(hypar.HyPar) != 0 || empty.EnergyEfficiency(hypar.HyPar) != 0 {
		t.Error("missing strategies should report 0")
	}
}

// TestHeadline reproduces the paper's abstract-level claims on this
// substrate: HyPar beats Data Parallelism in both performance and
// energy on the geometric mean of the ten networks, Model Parallelism
// is the worst overall, and the trick sits between DP and HyPar.
func TestHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo comparison")
	}
	cfg := hypar.DefaultConfig()
	var perfHP, perfMP, effHP float64 = 1, 1, 1
	n := 0
	for _, m := range hypar.Zoo() {
		cmp, err := hypar.Compare(m, cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		perfHP *= cmp.PerformanceGain(hypar.HyPar)
		perfMP *= cmp.PerformanceGain(hypar.ModelParallel)
		effHP *= cmp.EnergyEfficiency(hypar.HyPar)
		n++
	}
	pow := 1.0 / float64(n)
	gHP := math.Pow(perfHP, pow)
	gMP := math.Pow(perfMP, pow)
	gEff := math.Pow(effHP, pow)
	if gHP <= 1.3 {
		t.Errorf("HyPar gmean performance gain = %g, want > 1.3 (paper: 3.39)", gHP)
	}
	if gMP >= 1 {
		t.Errorf("MP gmean performance = %g, want < 1 (paper: 0.241)", gMP)
	}
	if gEff <= 1.05 {
		t.Errorf("HyPar gmean energy efficiency = %g, want > 1.05 (paper: 1.51)", gEff)
	}
}

func TestPrecisionConfig(t *testing.T) {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	comms := map[string]float64{}
	for _, prec := range []string{"fp32", "fp16", "int8"} {
		cfg := hypar.DefaultConfig()
		cfg.Precision = prec
		r, err := hypar.Run(m, hypar.HyPar, cfg)
		if err != nil {
			t.Fatalf("%s: %v", prec, err)
		}
		comms[prec] = r.Stats.CommBytes
	}
	if !(comms["int8"] < comms["fp16"] && comms["fp16"] < comms["fp32"]) {
		t.Errorf("communication should shrink with precision: %v", comms)
	}
	if math.Abs(comms["fp32"]/comms["fp16"]-2) > 1e-9 {
		t.Errorf("fp32/fp16 ratio = %g, want 2", comms["fp32"]/comms["fp16"])
	}
	bad := hypar.DefaultConfig()
	bad.Precision = "fp4"
	if err := bad.Validate(); !errors.Is(err, hypar.ErrConfig) {
		t.Errorf("unknown precision accepted: %v", err)
	}
	if _, err := hypar.BuildArch(bad); err == nil {
		t.Error("BuildArch accepted unknown precision")
	}
}

func TestInferencePlan(t *testing.T) {
	m, err := hypar.ModelByName("VGG-E")
	if err != nil {
		t.Fatal(err)
	}
	p, err := hypar.NewInferencePlan(m, hypar.DefaultConfig())
	if err != nil {
		t.Fatalf("NewInferencePlan: %v", err)
	}
	for l := range m.Layers {
		if s := p.LayerString(l); s != "0000" {
			t.Errorf("inference layer %d = %s, want all dp", l, s)
		}
	}
	if p.TotalElems != 0 {
		t.Errorf("inference communication = %g, want 0", p.TotalElems)
	}
	bad := hypar.DefaultConfig()
	bad.Batch = 0
	if _, err := hypar.NewInferencePlan(m, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

package hypar_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	hypar "repro"
)

func TestFaultsValidate(t *testing.T) {
	base := hypar.DefaultConfig() // levels = 4
	cases := []struct {
		name   string
		faults hypar.Faults
		ok     bool
	}{
		{"zero", hypar.Faults{}, true},
		{"one level-1 group", hypar.Faults{Level: 1, Groups: 1}, true},
		{"two level-1 groups", hypar.Faults{Level: 1, Groups: 2}, true},
		{"leaf fault", hypar.Faults{Level: 3, Groups: 1}, true},
		{"negative groups", hypar.Faults{Level: 1, Groups: -1}, false},
		{"negative level", hypar.Faults{Level: -1, Groups: 1}, false},
		{"level beyond hierarchy", hypar.Faults{Level: 4, Groups: 1}, false},
		{"whole array gone", hypar.Faults{Level: 1, Groups: 4}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			c.Faults = tc.faults
			err := c.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, hypar.ErrConfig) {
					t.Fatalf("Validate() = %v, want ErrConfig", err)
				}
			}
		})
	}
}

func TestDegradedTopologyMath(t *testing.T) {
	cases := []struct {
		faults    hypar.Faults
		failed    int
		survivors int
		levels    int
	}{
		{hypar.Faults{}, 0, 16, 4},
		// A level-1 group holds 2^(4-1-1) = 4 accelerators.
		{hypar.Faults{Level: 1, Groups: 1}, 4, 12, 3},
		{hypar.Faults{Level: 1, Groups: 2}, 8, 8, 3},
		{hypar.Faults{Level: 1, Groups: 3}, 12, 4, 2},
		// A leaf (level-3) group is one accelerator.
		{hypar.Faults{Level: 3, Groups: 1}, 1, 15, 3},
		{hypar.Faults{Level: 0, Groups: 1}, 8, 8, 3},
	}
	for _, tc := range cases {
		c := hypar.DefaultConfig()
		c.Faults = tc.faults
		if got := c.FailedAccelerators(); got != tc.failed {
			t.Errorf("%v: FailedAccelerators() = %d, want %d", tc.faults, got, tc.failed)
		}
		if got := c.SurvivingAccelerators(); got != tc.survivors {
			t.Errorf("%v: SurvivingAccelerators() = %d, want %d", tc.faults, got, tc.survivors)
		}
		if got := c.EffectiveLevels(); got != tc.levels {
			t.Errorf("%v: EffectiveLevels() = %d, want %d", tc.faults, got, tc.levels)
		}
	}
}

// TestFaultsJSONStability pins the wire contract the caches and goldens
// depend on: a config without faults marshals without any "faults" key
// (byte-identical to pre-fault-aware builds), and a config with faults
// round-trips.
func TestFaultsJSONStability(t *testing.T) {
	b, err := json.Marshal(hypar.DefaultConfig().Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "faults") {
		t.Fatalf("zero-fault config marshals a faults key: %s", b)
	}

	c := hypar.DefaultConfig()
	c.Faults = hypar.Faults{Level: 1, Groups: 2}
	b, err = json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"faults":{"level":1,"groups":2}`) {
		t.Fatalf("faulted config JSON missing fault spec: %s", b)
	}
	var back hypar.Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Faults != c.Faults {
		t.Fatalf("faults did not round-trip: got %v, want %v", back.Faults, c.Faults)
	}
}

func TestParseFaults(t *testing.T) {
	f, err := hypar.ParseFaults("1:2")
	if err != nil {
		t.Fatal(err)
	}
	if f != (hypar.Faults{Level: 1, Groups: 2}) {
		t.Fatalf("ParseFaults(1:2) = %v", f)
	}
	if f.String() != "1:2" {
		t.Fatalf("String() = %q, want 1:2", f.String())
	}
	if f, err := hypar.ParseFaults(""); err != nil || !f.IsZero() {
		t.Fatalf("ParseFaults(\"\") = %v, %v; want zero, nil", f, err)
	}
	for _, bad := range []string{"1", "x:2", "1:y", "1:2:3"} {
		if _, err := hypar.ParseFaults(bad); !errors.Is(err, hypar.ErrConfig) {
			t.Errorf("ParseFaults(%q) = %v, want ErrConfig", bad, err)
		}
	}
}

// TestDegradedPlanShrinks checks that a faulted config plans over the
// surviving sub-array: the plan's accelerator count matches the
// degraded depth, not the healthy one.
func TestDegradedPlanShrinks(t *testing.T) {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	c := hypar.DefaultConfig()
	c.Faults = hypar.Faults{Level: 1, Groups: 2}
	plan, err := hypar.NewPlan(m, hypar.HyPar, c)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumAccelerators() != 8 {
		t.Fatalf("degraded plan spans %d accelerators, want 8", plan.NumAccelerators())
	}
}

func TestCompareDegraded(t *testing.T) {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	c := hypar.DefaultConfig()

	if _, err := hypar.CompareDegraded(m, c); !errors.Is(err, hypar.ErrConfig) {
		t.Fatalf("CompareDegraded without faults = %v, want ErrConfig", err)
	}

	c.Faults = hypar.Faults{Level: 1, Groups: 2}
	d, err := hypar.CompareDegraded(m, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accelerators != 16 || d.Survivors != 8 || d.DegradedLevels != 3 {
		t.Fatalf("topology = %d/%d at depth %d, want 16/8 at 3",
			d.Accelerators, d.Survivors, d.DegradedLevels)
	}
	// Half the array cannot train faster: every strategy must slow down.
	for _, st := range hypar.Strategies {
		if s := d.Slowdown(st); s <= 1 {
			t.Errorf("Slowdown(%v) = %g, want > 1", st, s)
		}
	}
}

package hypar_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	hypar "repro"
)

func TestFaultsValidate(t *testing.T) {
	base := hypar.DefaultConfig() // levels = 4
	cases := []struct {
		name   string
		faults hypar.Faults
		ok     bool
	}{
		{"zero", hypar.Faults{}, true},
		{"one level-1 group", hypar.Faults{Level: 1, Groups: 1}, true},
		{"two level-1 groups", hypar.Faults{Level: 1, Groups: 2}, true},
		{"leaf fault", hypar.Faults{Level: 3, Groups: 1}, true},
		{"negative groups", hypar.Faults{Level: 1, Groups: -1}, false},
		{"negative level", hypar.Faults{Level: -1, Groups: 1}, false},
		{"level beyond hierarchy", hypar.Faults{Level: 4, Groups: 1}, false},
		{"whole array gone", hypar.Faults{Level: 1, Groups: 4}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			c.Faults = tc.faults
			err := c.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, hypar.ErrConfig) {
					t.Fatalf("Validate() = %v, want ErrConfig", err)
				}
			}
		})
	}
}

func TestDegradedTopologyMath(t *testing.T) {
	cases := []struct {
		faults    hypar.Faults
		failed    int
		survivors int
		levels    int
	}{
		{hypar.Faults{}, 0, 16, 4},
		// A level-1 group holds 2^(4-1-1) = 4 accelerators.
		{hypar.Faults{Level: 1, Groups: 1}, 4, 12, 3},
		{hypar.Faults{Level: 1, Groups: 2}, 8, 8, 3},
		{hypar.Faults{Level: 1, Groups: 3}, 12, 4, 2},
		// A leaf (level-3) group is one accelerator.
		{hypar.Faults{Level: 3, Groups: 1}, 1, 15, 3},
		{hypar.Faults{Level: 0, Groups: 1}, 8, 8, 3},
	}
	for _, tc := range cases {
		c := hypar.DefaultConfig()
		c.Faults = tc.faults
		if got := c.FailedAccelerators(); got != tc.failed {
			t.Errorf("%v: FailedAccelerators() = %d, want %d", tc.faults, got, tc.failed)
		}
		if got := c.SurvivingAccelerators(); got != tc.survivors {
			t.Errorf("%v: SurvivingAccelerators() = %d, want %d", tc.faults, got, tc.survivors)
		}
		if got := c.EffectiveLevels(); got != tc.levels {
			t.Errorf("%v: EffectiveLevels() = %d, want %d", tc.faults, got, tc.levels)
		}
	}
}

// TestFaultsJSONStability pins the wire contract the caches and goldens
// depend on: a config without faults marshals without any "faults" key
// (byte-identical to pre-fault-aware builds), and a config with faults
// round-trips.
func TestFaultsJSONStability(t *testing.T) {
	b, err := json.Marshal(hypar.DefaultConfig().Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "faults") {
		t.Fatalf("zero-fault config marshals a faults key: %s", b)
	}

	c := hypar.DefaultConfig()
	c.Faults = hypar.Faults{Level: 1, Groups: 2}
	b, err = json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"faults":{"level":1,"groups":2}`) {
		t.Fatalf("faulted config JSON missing fault spec: %s", b)
	}
	var back hypar.Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Faults != c.Faults {
		t.Fatalf("faults did not round-trip: got %v, want %v", back.Faults, c.Faults)
	}
}

func TestParseFaults(t *testing.T) {
	f, err := hypar.ParseFaults("1:2")
	if err != nil {
		t.Fatal(err)
	}
	if f != (hypar.Faults{Level: 1, Groups: 2}) {
		t.Fatalf("ParseFaults(1:2) = %v", f)
	}
	if f.String() != "1:2" {
		t.Fatalf("String() = %q, want 1:2", f.String())
	}
	if f, err := hypar.ParseFaults(""); err != nil || !f.IsZero() {
		t.Fatalf("ParseFaults(\"\") = %v, %v; want zero, nil", f, err)
	}
	for _, bad := range []string{"1", "x:2", "1:y", "1:2:3"} {
		if _, err := hypar.ParseFaults(bad); !errors.Is(err, hypar.ErrConfig) {
			t.Errorf("ParseFaults(%q) = %v, want ErrConfig", bad, err)
		}
	}
}

// TestDegradedPlanShrinks checks that a faulted config plans over the
// surviving sub-array: the plan's accelerator count matches the
// degraded depth, not the healthy one.
func TestDegradedPlanShrinks(t *testing.T) {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	c := hypar.DefaultConfig()
	c.Faults = hypar.Faults{Level: 1, Groups: 2}
	plan, err := hypar.NewPlan(m, hypar.HyPar, c)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumAccelerators() != 8 {
		t.Fatalf("degraded plan spans %d accelerators, want 8", plan.NumAccelerators())
	}
}

// TestDegradedGroups pins the survivor-group arithmetic the grouped
// replanning candidate builds on.
func TestDegradedGroups(t *testing.T) {
	cases := []struct {
		faults hypar.Faults
		groups int
		depth  int
	}{
		{hypar.Faults{}, 0, 0},
		{hypar.Faults{Level: 1, Groups: 1}, 3, 2}, // 12 survivors in 3 groups of 4
		{hypar.Faults{Level: 1, Groups: 2}, 2, 2}, // 8 survivors, power of two
		{hypar.Faults{Level: 0, Groups: 1}, 1, 3}, // half the array, one intact group
		{hypar.Faults{Level: 3, Groups: 1}, 15, 0},
		{hypar.Faults{Level: 2, Groups: 3}, 5, 1},
	}
	for _, tc := range cases {
		c := hypar.DefaultConfig() // levels = 4
		c.Faults = tc.faults
		g, d := c.DegradedGroups()
		if g != tc.groups || d != tc.depth {
			t.Errorf("%v: DegradedGroups() = (%d, %d), want (%d, %d)",
				tc.faults, g, d, tc.groups, tc.depth)
		}
	}
}

// TestGroupedReplanNeverSlower checks the non-power-of-two replanning
// contract: for a 1:1 fault (12 survivors, aligned snap uses 8) the
// evaluated result is never slower than the aligned sub-array plan
// alone, across every model in the zoo and every strategy.
func TestGroupedReplanNeverSlower(t *testing.T) {
	c := hypar.DefaultConfig()
	c.Faults = hypar.Faults{Level: 1, Groups: 1}
	sawGrouped := false
	for _, m := range hypar.Zoo() {
		name := m.Name
		for _, s := range hypar.Strategies {
			e := hypar.NewEvaluator()
			aligned, err := hypar.NewPlan(m, s, c)
			if err != nil {
				t.Fatalf("%s/%v: aligned plan: %v", name, s, err)
			}
			base, err := e.Simulate(m, s, aligned, c)
			if err != nil {
				t.Fatalf("%s/%v: aligned simulate: %v", name, s, err)
			}
			res, err := e.Run(m, s, c)
			if err != nil {
				t.Fatalf("%s/%v: Run: %v", name, s, err)
			}
			if res.Stats.StepSeconds > base.Stats.StepSeconds {
				t.Errorf("%s/%v: degraded Run step %g > aligned step %g — grouped candidate made it worse",
					name, s, res.Stats.StepSeconds, base.Stats.StepSeconds)
			}
			switch res.DegradedGroups {
			case 0:
				if res.Stats.StepSeconds != base.Stats.StepSeconds {
					t.Errorf("%s/%v: aligned result with step %g != simulated %g",
						name, s, res.Stats.StepSeconds, base.Stats.StepSeconds)
				}
			case 3:
				sawGrouped = true
				if res.Stats.StepSeconds >= base.Stats.StepSeconds {
					t.Errorf("%s/%v: grouped result kept without improving (%g >= %g)",
						name, s, res.Stats.StepSeconds, base.Stats.StepSeconds)
				}
				if got := res.Plan.NumAccelerators(); got != 4 {
					t.Errorf("%s/%v: grouped plan spans %d accelerators per group, want 4", name, s, got)
				}
				if len(res.Stats.CommSeconds) != c.Levels {
					t.Errorf("%s/%v: grouped CommSeconds has %d levels, want %d",
						name, s, len(res.Stats.CommSeconds), c.Levels)
				}
			default:
				t.Errorf("%s/%v: DegradedGroups = %d, want 0 or 3", name, s, res.DegradedGroups)
			}
		}
	}
	if !sawGrouped {
		t.Error("no model/strategy selected the grouped 3-way candidate; replanning never engaged")
	}
}

// TestGroupedReplanPowerOfTwoUnchanged pins that power-of-two survivor
// counts (the 1:2 spec all goldens use) never take the grouped path:
// Run must be byte-for-byte the aligned plan+simulate.
func TestGroupedReplanPowerOfTwoUnchanged(t *testing.T) {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	c := hypar.DefaultConfig()
	c.Faults = hypar.Faults{Level: 1, Groups: 2}
	e := hypar.NewEvaluator()
	aligned, err := hypar.NewPlan(m, hypar.HyPar, c)
	if err != nil {
		t.Fatal(err)
	}
	base, err := e.Simulate(m, hypar.HyPar, aligned, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(m, hypar.HyPar, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedGroups != 0 {
		t.Fatalf("DegradedGroups = %d for a power-of-two survivor set, want 0", res.DegradedGroups)
	}
	if res.Stats.StepSeconds != base.Stats.StepSeconds {
		t.Fatalf("1:2 Run step %g != aligned step %g", res.Stats.StepSeconds, base.Stats.StepSeconds)
	}
}

func TestCompareDegraded(t *testing.T) {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	c := hypar.DefaultConfig()

	if _, err := hypar.CompareDegraded(m, c); !errors.Is(err, hypar.ErrConfig) {
		t.Fatalf("CompareDegraded without faults = %v, want ErrConfig", err)
	}

	c.Faults = hypar.Faults{Level: 1, Groups: 2}
	d, err := hypar.CompareDegraded(m, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accelerators != 16 || d.Survivors != 8 || d.DegradedLevels != 3 {
		t.Fatalf("topology = %d/%d at depth %d, want 16/8 at 3",
			d.Accelerators, d.Survivors, d.DegradedLevels)
	}
	// Half the array cannot train faster: every strategy must slow down.
	for _, st := range hypar.Strategies {
		if s := d.Slowdown(st); s <= 1 {
			t.Errorf("Slowdown(%v) = %g, want > 1", st, s)
		}
	}
}

// Platforms: run the same network on every registered accelerator
// platform — the paper's HMC array, a GPU-HBM array and a TPU-style
// systolic array — each at its native interconnect, and show how the
// partition DP's dp/mp choices and the resulting gains shift with the
// backend.
//
// Run with:
//
//	go run ./examples/platforms
package main

import (
	"fmt"
	"log"

	hypar "repro"
)

func main() {
	m, err := hypar.ModelByName("AlexNet")
	if err != nil {
		log.Fatal(err)
	}

	// List the registered platforms with their native fabrics.
	for _, name := range hypar.Platforms() {
		p, err := hypar.PlatformByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s %s\n", name, p.Describe())
	}
	fmt.Println()

	// Compare them all on one workload: batch/levels carry over, the
	// interconnect resets to each platform's native default.
	pc, err := hypar.ComparePlatforms(m, hypar.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d accelerators:\n", m.Name, 1<<4)
	fmt.Println("platform       step(s)     gain-vs-DP  energy-eff  last-layer")
	for _, name := range pc.Names {
		cmp := pc.ByPlatform[name]
		hp := cmp.Results[hypar.HyPar]
		fmt.Printf("%-13s %10.4g %10.3f %11.3f  %s\n",
			name, hp.Stats.StepSeconds,
			cmp.PerformanceGain(hypar.HyPar), cmp.EnergyEfficiency(hypar.HyPar),
			hp.Plan.LayerString(len(m.Layers)-1))
	}
}

// Quickstart: plan hybrid parallelism for VGG-A on the paper's sixteen-
// accelerator HMC array and simulate one training step, comparing HyPar
// against the default Data and Model Parallelism.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hypar "repro"
)

func main() {
	m, err := hypar.ModelByName("VGG-A")
	if err != nil {
		log.Fatal(err)
	}
	cfg := hypar.DefaultConfig() // batch 256, 16 accelerators, H-tree

	// 1. The partition HyPar's dynamic program chooses, layer by layer.
	plan, err := hypar.NewPlan(m, hypar.HyPar, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HyPar partition for %s (H1..H4, 0=dp 1=mp):\n", m.Name)
	for l, layer := range m.Layers {
		fmt.Printf("  %-8s %s\n", layer.Name, plan.LayerString(l))
	}
	fmt.Printf("total communication per step: %.2f GB\n\n", plan.TotalBytes(hypar.Float32)/1e9)

	// 2. Simulated training-step comparison against the baselines.
	cmp, err := hypar.Compare(m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy         step(s)   comm(GB)  energy(J)  gain-vs-DP")
	for _, s := range hypar.Strategies {
		r := cmp.Results[s]
		fmt.Printf("%-15s %8.3f %10.3f %10.1f %10.3f\n",
			s, r.Stats.StepSeconds, r.Stats.CommBytes/1e9,
			r.Stats.EnergyTotal(), cmp.PerformanceGain(s))
	}
}

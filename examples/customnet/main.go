// Customnet: bring your own network. The paper's introduction motivates
// HyPar with applications like face detection and speech recognition;
// this example builds two such workloads by hand — a compact face-
// detection-style CNN and a speech-recognition-style MLP with wide
// hidden layers — and shows how the optimal parallelism differs
// completely between them.
//
// Run with:
//
//	go run ./examples/customnet
package main

import (
	"fmt"
	"log"

	hypar "repro"
)

// faceCNN is a DeepID-style face-recognition network: conv-heavy with a
// small embedding head.
func faceCNN() *hypar.Model {
	return &hypar.Model{
		Name:  "FaceCNN",
		Input: hypar.Input{H: 64, W: 64, C: 3},
		Layers: []hypar.Layer{
			hypar.ConvPoolLayer("conv1", 5, 32, 2),
			hypar.ConvPoolLayer("conv2", 3, 64, 2),
			hypar.ConvPoolLayer("conv3", 3, 128, 2),
			hypar.ConvLayer("conv4", 3, 128),
			hypar.FCLayer("embed", 256),
			hypar.FCLayer("ident", 1000),
		},
	}
}

// speechMLP is an acoustic-model-style network: stacked wide
// fully-connected layers over context-window features.
func speechMLP() *hypar.Model {
	return &hypar.Model{
		Name:  "SpeechMLP",
		Input: hypar.Input{H: 1, W: 1, C: 440}, // 11-frame context × 40 filterbanks
		Layers: []hypar.Layer{
			hypar.FCLayer("h1", 2048),
			hypar.FCLayer("h2", 2048),
			hypar.FCLayer("h3", 2048),
			hypar.FCLayer("h4", 2048),
			hypar.FCLayer("out", 9304),
		},
	}
}

func main() {
	cfg := hypar.DefaultConfig()
	for _, m := range []*hypar.Model{faceCNN(), speechMLP()} {
		cmp, err := hypar.Compare(m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		plan := cmp.Results[hypar.HyPar].Plan
		fmt.Printf("%s: HyPar gains %.2fx over Data Parallelism, %.2fx energy\n",
			m.Name, cmp.PerformanceGain(hypar.HyPar), cmp.EnergyEfficiency(hypar.HyPar))
		for l, layer := range m.Layers {
			fmt.Printf("  %-6s %-4s %s\n", layer.Name, layer.Type, plan.LayerString(l))
		}
		fmt.Println()
	}
}

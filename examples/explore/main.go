// Explore: sweep a slice of the parallelism space the way the paper's
// Figure 9 does for Lenet-c — fix two hierarchy levels at HyPar's
// optimum, enumerate all 256 settings of the other two, simulate each,
// and show where HyPar's choice lands relative to the exhaustive peak.
//
// Run with:
//
//	go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"sort"

	hypar "repro"
	"repro/internal/experiments"
)

func main() {
	cfg := hypar.DefaultConfig()
	_, ex, err := experiments.Fig9(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explored %d points of the Lenet-c parallelism space\n", len(ex.Points))
	fmt.Printf("peak:  H1=%s H4=%s gain %.3fx vs Data Parallelism\n",
		ex.Peak.Labels["H1"], ex.Peak.Labels["H4"], ex.Peak.Gain)
	fmt.Printf("HyPar: H1=%s H4=%s gain %.3fx\n\n",
		ex.HyPar.Labels["H1"], ex.HyPar.Labels["H4"], ex.HyPar.Gain)

	// Distribution of the space: best and worst five points.
	pts := make([]experiments.ExplorePoint, len(ex.Points))
	copy(pts, ex.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Gain > pts[j].Gain })
	fmt.Println("best five points:")
	for _, p := range pts[:5] {
		fmt.Printf("  H1=%s H4=%s  %.3fx\n", p.Labels["H1"], p.Labels["H4"], p.Gain)
	}
	fmt.Println("worst five points:")
	for _, p := range pts[len(pts)-5:] {
		fmt.Printf("  H1=%s H4=%s  %.3fx\n", p.Labels["H1"], p.Labels["H4"], p.Gain)
	}
}

package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestExamplesRun go-runs every example program against its built-in
// tiny demo configuration and asserts a zero exit. This is the only
// coverage the examples have — they are main packages, invisible to
// ordinary `go test ./...` — so a signature drift or a panic in any of
// them fails here instead of in a user's first copy-paste.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}

	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, goBin, "run", "./examples/"+dir)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out:\n%s", dir, out)
			}
			if err != nil {
				t.Fatalf("example %s exited non-zero: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", dir)
			}
		})
	}
}

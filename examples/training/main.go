// Training: run *real* hybrid-parallel training. The planner picks a
// parallelism per layer; this example executes actual SGD steps with
// the tensors physically partitioned across two accelerator groups
// exactly as the paper's Figure 1 prescribes, then verifies that
//
//  1. hybrid training matches single-device training bit for bit, and
//  2. the bytes measured on the wire match the paper's communication
//     model (Tables 1-2) — including the §3.1 worked example
//     (56 KB under dp, 25.6 KB under mp for the 70→100 layer).
//
// Run with:
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"

	hypar "repro"
	"repro/internal/comm"
	"repro/internal/train"
)

func main() {
	// A scaled-down SFC-style network (the paper's all-fc extreme case).
	m := &hypar.Model{
		Name:  "sfc-mini",
		Input: hypar.Input{H: 1, W: 1, C: 64},
		Layers: []hypar.Layer{
			hypar.FCLayer("fc1", 128),
			hypar.FCLayer("fc2", 128),
			{Name: "fc3", Type: hypar.FC, Cout: 10},
		},
	}
	const batch = 16

	// Ask the planner which parallelism each layer should use between
	// two groups (one hierarchy level).
	cfg := hypar.DefaultConfig()
	cfg.Batch = batch
	cfg.Levels = 1
	plan, err := hypar.NewPlan(m, hypar.HyPar, cfg)
	if err != nil {
		log.Fatal(err)
	}
	assign := make([]comm.Parallelism, len(m.Layers))
	fmt.Println("planned parallelism between the two groups:")
	for l, layer := range m.Layers {
		assign[l] = plan.At(0, l)
		fmt.Printf("  %-4s %v\n", layer.Name, assign[l])
	}

	// Build matched single-device and sharded executors.
	ref, err := train.NewNetwork(m, batch, 1)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := train.NewShardedFC(ref, assign)
	if err != nil {
		log.Fatal(err)
	}
	x, labels, err := train.SyntheticBatch(m, batch, 10, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Train both for a few steps.
	xNHWC := &train.Tensor{Shape: []int{batch, 1, 1, 64}, Data: x.Data}
	fmt.Println("\nstep   loss(single)   loss(hybrid)   max|ΔW|")
	for step := 1; step <= 5; step++ {
		refLoss, err := ref.TrainStep(xNHWC, labels, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		shLoss, err := sharded.Step(x, labels, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		var worst float64
		for l := 0; l < ref.Layers(); l++ {
			full, err := sharded.FullWeights(l)
			if err != nil {
				log.Fatal(err)
			}
			d, err := train.MaxAbsDiff(ref.Weights(l), full)
			if err != nil {
				log.Fatal(err)
			}
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("%4d   %12.6f   %12.6f   %8.2e\n", step, refLoss, shLoss, worst)
	}

	// Compare measured wire traffic against the analytic model.
	pf, pg, pif, pie := sharded.PredictedExchanges()
	fmt.Println("\nmeasured vs predicted exchange volumes (elements, 5 steps):")
	fmt.Println("layer  category    measured  predicted×steps")
	for l := range pf {
		rows := []struct {
			cat       string
			meas, prd float64
		}{
			{"fwd-psum", sharded.IntraFwd[l], 5 * pf[l]},
			{"grad-psum", sharded.IntraGrad[l], 5 * pg[l]},
			{"interF", sharded.InterF[l], 5 * pif[l]},
			{"interE", sharded.InterE[l], 5 * pie[l]},
		}
		for _, r := range rows {
			if r.meas == 0 && r.prd == 0 {
				continue
			}
			fmt.Printf("%5d  %-10s %9.0f  %9.0f\n", l, r.cat, r.meas, r.prd)
		}
	}
	fmt.Printf("\ntotal remote traffic: %.1f KB over 5 steps\n", sharded.TotalRemote()*4/1024)
}

// Package examples anchors the runnable example programs in the
// subdirectories (quickstart, customnet, explore, scalability,
// training). Each subdirectory is its own main package, run with
// `go run ./examples/<name>`; this package exists so the directory
// carries the compile-and-run smoke test that keeps every example
// working (see examples_test.go).
package examples

// Scalability: grow the accelerator array from 1 to 64 accelerators
// (hierarchy depth 0 to 6) and watch Data Parallelism saturate while
// HyPar keeps scaling — the paper's Figure 11 study, plus the topology
// sensitivity of the result.
//
// Run with:
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"strings"

	hypar "repro"
)

func main() {
	m, err := hypar.ModelByName("VGG-A")
	if err != nil {
		log.Fatal(err)
	}

	base := hypar.DefaultConfig()
	base.Levels = 0
	single, err := hypar.Run(m, hypar.DataParallel, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single accelerator: %.2f s per step\n\n", single.Stats.StepSeconds)

	fmt.Println("accs  gain-HyPar  gain-DP   comm-HyPar(GB)  comm-DP(GB)  bar")
	for levels := 0; levels <= 6; levels++ {
		cfg := hypar.DefaultConfig()
		cfg.Levels = levels
		hp, err := hypar.Run(m, hypar.HyPar, cfg)
		if err != nil {
			log.Fatal(err)
		}
		dp, err := hypar.Run(m, hypar.DataParallel, cfg)
		if err != nil {
			log.Fatal(err)
		}
		gainHP := single.Stats.StepSeconds / hp.Stats.StepSeconds
		gainDP := single.Stats.StepSeconds / dp.Stats.StepSeconds
		fmt.Printf("%4d  %10.2f  %7.2f   %14.2f  %11.2f  %s\n",
			1<<uint(levels), gainHP, gainDP,
			hp.Stats.CommBytes/1e9, dp.Stats.CommBytes/1e9,
			strings.Repeat("#", int(gainHP)))
	}

	// Topology sensitivity at sixteen accelerators.
	fmt.Println("\ntopology sensitivity (16 accelerators, HyPar):")
	for _, topo := range []string{"htree", "torus", "ideal"} {
		cfg := hypar.DefaultConfig()
		cfg.Topology = topo
		r, err := hypar.Run(m, hypar.HyPar, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %.3f s per step\n", topo, r.Stats.StepSeconds)
	}
}
